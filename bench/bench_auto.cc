// Plan-chooser quality gate: engine=auto vs every fixed engine on the
// paper's testbed queries, one family at a time. For each query the six
// fixed engines run once and auto runs once; auto's modeled cost must be
// within kMaxAutoOverhead of the best fixed engine's on EVERY query (the
// chooser may tie, it may not pick a loser), and it must never select a
// candidate it marked non-fitting while a fitting one existed. Emits
// BENCH_auto.json: per-(query, engine) modeled_seconds plus wall qps
// cells, and a per-query "ratios" array (auto / best fixed) that
// bench_compare gates tightly — modeled costs are deterministic, so the
// ratio is bit-stable across hosts.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/json.h"

namespace rdfmr {
namespace bench {
namespace {

// The chooser may not cost the selected plan more than 5% above the best
// fixed engine (ties and near-ties are fine; picking a loser is not).
constexpr double kMaxAutoOverhead = 1.05;

const std::vector<EngineKind>& FixedEngines() {
  static const std::vector<EngineKind> kinds = {
      EngineKind::kPig,          EngineKind::kHive,
      EngineKind::kNtgaEager,    EngineKind::kNtgaLazy,
      EngineKind::kNtgaLazyFull, EngineKind::kNtgaLazyPartial,
  };
  return kinds;
}

EngineOptions BenchOptions(EngineKind kind) {
  EngineOptions options;
  options.kind = kind;
  options.phi_partitions = 1024;
  options.decode_answers = false;
  options.cost = BenchCostModel();
  return options;
}

struct FamilySweep {
  DatasetFamily family;
  const char* label;
  std::vector<std::string> queries;
};

int Main() {
  const std::vector<FamilySweep> sweeps = {
      {DatasetFamily::kBsbm, "BSBM", {"B0", "B1", "B3", "B4", "Q1a"}},
      {DatasetFamily::kBio2Rdf, "Bio2RDF", {"A1", "A2", "A3"}},
      {DatasetFamily::kDbpedia, "DBpedia", {"C1", "C2", "C3", "C4"}},
  };

  // Roomy cluster: every candidate fits, so the sweep exercises the cost
  // ranking (the footprint filter has its own fuzz and unit coverage).
  ClusterConfig cluster;
  cluster.num_nodes = 12;
  cluster.replication = 1;
  cluster.disk_per_node = 8ULL << 30;
  cluster.block_size = 1ULL << 20;
  cluster.num_reducers = 8;

  ShapeChecks checks;
  JsonValue cells = JsonValue::MakeArray();
  JsonValue ratios = JsonValue::MakeArray();
  std::vector<Row> rows;
  bool fitting_violated = false;

  for (const FamilySweep& sweep : sweeps) {
    std::vector<Triple> triples = BenchDataset(sweep.family);
    auto dfs = MakeDfs(triples, cluster);
    std::printf("%s: %zu triples, %s\n", sweep.label, triples.size(),
                HumanBytes(DatasetBytes(triples)).c_str());

    for (const std::string& q : sweep.queries) {
      double best_fixed = 0.0;
      bool have_fixed = false;
      for (EngineKind kind : FixedEngines()) {
        const auto start = std::chrono::steady_clock::now();
        ExecStats stats = RunOne(dfs.get(), q, BenchOptions(kind));
        const double wall =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count();
        rows.push_back(Row{q, EngineKindToString(kind), stats});
        if (!stats.ok()) continue;
        if (!have_fixed || stats.modeled_seconds < best_fixed) {
          best_fixed = stats.modeled_seconds;
          have_fixed = true;
        }
        JsonValue cell = JsonValue::MakeObject();
        cell.Set("query", q);
        cell.Set("engine", EngineKindToString(kind));
        cell.Set("modeled_seconds", stats.modeled_seconds);
        cell.Set("qps", wall > 0.0 ? 1.0 / wall : 0.0);
        cells.Append(std::move(cell));
      }

      const auto start = std::chrono::steady_clock::now();
      ExecStats auto_stats =
          RunOne(dfs.get(), q, BenchOptions(EngineKind::kAuto));
      const double auto_wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      rows.push_back(Row{q, "auto(" + auto_stats.chosen_engine + ")",
                         auto_stats});
      if (!auto_stats.ok() || !have_fixed) {
        checks.Check(q + ": auto run completed", false);
        continue;
      }

      // Auto must never pick a plan it marked non-fitting while a fitting
      // candidate existed.
      bool any_fits = false;
      bool chosen_fits = false;
      for (const PlanCandidate& candidate : auto_stats.plan_candidates) {
        if (candidate.feasible && candidate.fits) any_fits = true;
        if (candidate.chosen) chosen_fits = candidate.fits;
      }
      if (any_fits && !chosen_fits) fitting_violated = true;

      JsonValue cell = JsonValue::MakeObject();
      cell.Set("query", q);
      cell.Set("engine", "auto");
      cell.Set("modeled_seconds", auto_stats.modeled_seconds);
      cell.Set("qps", auto_wall > 0.0 ? 1.0 / auto_wall : 0.0);
      cells.Append(std::move(cell));

      const double ratio =
          best_fixed > 0.0 ? auto_stats.modeled_seconds / best_fixed : 0.0;
      JsonValue ratio_cell = JsonValue::MakeObject();
      ratio_cell.Set("query", q);
      ratio_cell.Set("ratio", ratio);
      ratios.Append(std::move(ratio_cell));
      checks.Check(
          StringFormat("%s: auto (%s, %.1fs) within %.0f%% of best fixed "
                       "engine (%.1fs, ratio %.3f)",
                       q.c_str(), auto_stats.chosen_engine.c_str(),
                       auto_stats.modeled_seconds,
                       (kMaxAutoOverhead - 1.0) * 100.0, best_fixed, ratio),
          ratio <= kMaxAutoOverhead);
    }
  }

  PrintTable("engine=auto vs fixed engines (testbed queries)", rows);
  checks.Check("auto never chose a non-fitting plan while a fitting "
               "candidate existed",
               !fitting_violated);

  JsonValue report = JsonValue::MakeObject();
  report.Set("bench", "auto_chooser");
  report.Set("cells", std::move(cells));
  report.Set("ratios", std::move(ratios));
  std::ofstream out("BENCH_auto.json");
  out << report.Dump() << "\n";
  if (!out) {
    std::fprintf(stderr, "failed to write BENCH_auto.json\n");
    return 1;
  }
  std::printf("wrote BENCH_auto.json\n");

  return checks.Summarize();
}

}  // namespace
}  // namespace bench
}  // namespace rdfmr

int main() { return rdfmr::bench::Main(); }
