// Storage-layer cold-path costs: what `rdfmr index` buys at serve time.
// Measures (a) the one-time cost of building a .rdx image from an
// in-memory relation, (b) cold-open latency of the same dataset from
// .nt (parse + intern every line) vs .rdx (mmap + checksum validation,
// zero-copy), and (c) end-to-end first-query latency through the
// QueryService for both open paths — the mapped path pays its triple
// materialization here, so the pair shows where the decode cost moved,
// not just that it moved. Emits BENCH_index.json alongside the table.
//
// The open-latency ratio is the product's whole claim ("`rdfmr serve`
// opens in milliseconds"), so beyond the baseline-relative bench_compare
// gate this binary hard-fails when mmap-open is not at least 10x faster
// than parse-open.
//
// (d) adds the zero-materialization scan cells: a selective all-bound
// star (two rare feature properties, ~1% of the relation) is answered
// cold and warm on BOTH mapped-dataset modes — mapped scans (the mapping
// is mounted and the engine reads only its postings) vs the `materialize`
// escape hatch (decode the full triple vector, then scan all of it). The
// cold ratio is the tentpole claim (first query without paying the
// decode), hard-failed below kMinColdScanSpeedup; the warm ratio and the
// warm qps rows are bench_compare-gated against the baseline.

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>

#include "bench/bench_util.h"
#include "common/json.h"
#include "query/pattern.h"
#include "service/dataset_io.h"
#include "service/query_service.h"
#include "storage/rdx_reader.h"
#include "storage/rdx_writer.h"

namespace rdfmr {
namespace bench {
namespace {

constexpr int kRepeats = 5;
constexpr double kMinOpenSpeedup = 10.0;
constexpr double kMinColdScanSpeedup = 5.0;

/// Wall seconds of one run of `body`; aborts the bench on failure so a
/// broken step cannot masquerade as a fast one.
template <typename Body>
double TimeOnce(const char* what, Body body) {
  const auto start = std::chrono::steady_clock::now();
  const Status status = body();
  const auto stop = std::chrono::steady_clock::now();
  if (!status.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what,
                 status.ToString().c_str());
    std::exit(1);
  }
  return std::chrono::duration<double>(stop - start).count();
}

/// Best-of-N wall seconds: cold-open noise is one-sided (page cache
/// misses and scheduler preemption only slow a run down), so the minimum
/// estimates the operation's true cost most stably.
template <typename Body>
double TimeBest(const char* what, Body body) {
  double best = 0.0;
  for (int repeat = 0; repeat < kRepeats; ++repeat) {
    const double seconds = TimeOnce(what, body);
    if (repeat == 0 || seconds < best) best = seconds;
  }
  return best;
}

uint64_t FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  return in ? static_cast<uint64_t>(in.tellg()) : 0;
}

int Main() {
  const std::string nt_path = "bench_index_data.nt";
  const std::string rdx_path = "bench_index_data.rdx";
  std::vector<Triple> triples = BsbmAtScale(2000);

  auto query = GetTestbedQuery("B1");
  if (!query.ok()) {
    std::fprintf(stderr, "%s\n", query.status().ToString().c_str());
    return 1;
  }

  Status seeded = service::WriteDatasetFile(nt_path, triples);
  if (!seeded.ok()) {
    std::fprintf(stderr, "%s\n", seeded.ToString().c_str());
    return 1;
  }

  // (a) Index build: in-memory relation -> on-disk .rdx image.
  const double index_build = TimeBest("index build", [&] {
    return storage::WriteRdxFile(rdx_path, triples);
  });

  // (b) Cold open, both formats. The parsed path must materialize every
  // triple; the mapped path validates checksums and returns a view.
  const double parsed_open = TimeBest("parsed open", [&]() -> Status {
    auto loaded = service::ReadDatasetFile(nt_path);
    if (!loaded.ok()) return loaded.status();
    if (loaded->size() != triples.size()) {
      return Status::Unknown("parsed open lost triples");
    }
    return Status::OK();
  });
  const double mmap_open = TimeBest("mmap open", [&]() -> Status {
    auto reader = storage::RdxReader::Open(rdx_path);
    if (!reader.ok()) return reader.status();
    if ((*reader)->triple_count() != triples.size()) {
      return Status::Unknown("mmap open lost triples");
    }
    return Status::OK();
  });

  // (c) First-query latency: cold service, open the dataset, answer B1.
  // The mapped cell pays lazy materialization inside the first query, so
  // this is the honest end-to-end comparison, not just the open call.
  auto first_query = [&](bool mapped) {
    return TimeBest(mapped ? "first query (mapped)" : "first query (parsed)",
                    [&]() -> Status {
                      service::ServiceConfig config;
                      service::QueryService query_service(config);
                      if (mapped) {
                        auto info = query_service.RegisterMappedDataset(
                            "bsbm", rdx_path);
                        if (!info.ok()) return info.status();
                      } else {
                        auto loaded = service::ReadDatasetFile(nt_path);
                        if (!loaded.ok()) return loaded.status();
                        auto info = query_service.LoadDataset(
                            "bsbm", std::move(*loaded));
                        if (!info.ok()) return info.status();
                      }
                      service::ServiceRequest request;
                      request.dataset = "bsbm";
                      request.query = *query;
                      service::ServiceResponse response =
                          query_service.Query(request);
                      if (!response.ok()) return response.status;
                      if (!response.stats.ok()) {
                        return Status::Unknown("first query failed");
                      }
                      return Status::OK();
                    });
  };
  const double first_query_parsed = first_query(false);
  const double first_query_mapped = first_query(true);

  // (d) Scan cells: selective all-bound star over the feature vocabulary.
  // Only ~1% of the relation carries featureLabel/featureType, so the
  // mapped-scan path reads a few hundred postings while the decoded path
  // pays the full materialization plus a whole-relation scan — the cell
  // isolates what zero-materialization buys when the query is selective.
  auto scan_built = GraphPatternQuery::Create(
      "feature_star",
      {TriplePattern::Bound(NodePattern::Var("f"), "featureLabel",
                            NodePattern::Var("l")),
       TriplePattern::Bound(NodePattern::Var("f"), "featureType",
                            NodePattern::Var("t"))});
  if (!scan_built.ok()) {
    std::fprintf(stderr, "%s\n", scan_built.status().ToString().c_str());
    return 1;
  }
  auto scan_query =
      std::make_shared<const GraphPatternQuery>(*std::move(scan_built));
  size_t expected_features = 0;
  for (const Triple& t : triples) {
    if (t.property == "featureType") ++expected_features;
  }

  auto run_scan_query = [&](service::QueryService* svc) -> Status {
    service::ServiceRequest request;
    request.dataset = "bsbm";
    request.query = scan_query;
    request.use_result_cache = false;
    service::ServiceResponse response = svc->Query(request);
    if (!response.ok()) return response.status;
    if (!response.stats.ok() ||
        response.answer_set().size() != expected_features) {
      return Status::Unknown("scan query produced wrong answers");
    }
    return Status::OK();
  };

  // Cold: a fresh service per run, so registration + first query pays the
  // whole dataset-open path (mount vs decode-and-write) each time.
  auto cold_scan = [&](bool materialize) {
    return TimeBest(
        materialize ? "cold scan (decoded)" : "cold scan (mapped)",
        [&]() -> Status {
          service::ServiceConfig config;
          service::QueryService svc(config);
          auto info =
              svc.RegisterMappedDataset("bsbm", rdx_path, materialize);
          if (!info.ok()) return info.status();
          return run_scan_query(&svc);
        });
  };
  const double cold_scan_mapped = cold_scan(false);
  const double cold_scan_decoded = cold_scan(true);

  // Warm: one long-lived service per mode; the dataset is already open
  // (and for the decoded mode, materialized), so this is the steady-state
  // per-query scan cost.
  service::ServiceConfig warm_config;
  service::QueryService warm_mapped_service(warm_config);
  service::QueryService warm_decoded_service(warm_config);
  {
    auto mapped_info =
        warm_mapped_service.RegisterMappedDataset("bsbm", rdx_path);
    auto decoded_info = warm_decoded_service.RegisterMappedDataset(
        "bsbm", rdx_path, /*materialize=*/true);
    if (!mapped_info.ok() || !decoded_info.ok()) {
      std::fprintf(stderr, "warm scan registration failed\n");
      return 1;
    }
    Status warmed = run_scan_query(&warm_mapped_service);
    if (warmed.ok()) warmed = run_scan_query(&warm_decoded_service);
    if (!warmed.ok()) {
      std::fprintf(stderr, "%s\n", warmed.ToString().c_str());
      return 1;
    }
  }
  const double warm_scan_mapped = TimeBest("warm scan (mapped)", [&] {
    return run_scan_query(&warm_mapped_service);
  });
  const double warm_scan_decoded = TimeBest("warm scan (decoded)", [&] {
    return run_scan_query(&warm_decoded_service);
  });

  const uint64_t nt_bytes = FileBytes(nt_path);
  const uint64_t rdx_bytes = FileBytes(rdx_path);
  const double speedup =
      mmap_open > 0.0 ? parsed_open / mmap_open : 0.0;
  const double cold_scan_speedup =
      cold_scan_mapped > 0.0 ? cold_scan_decoded / cold_scan_mapped : 0.0;
  const double warm_scan_speedup =
      warm_scan_mapped > 0.0 ? warm_scan_decoded / warm_scan_mapped : 0.0;

  std::printf("Index/open latency (%zu triples, %.1f KiB .nt, %.1f KiB "
              ".rdx)\n\n",
              triples.size(), nt_bytes / 1024.0, rdx_bytes / 1024.0);
  struct OpRow {
    const char* op;
    double seconds;
  };
  const OpRow rows[] = {
      {"index_build", index_build},
      {"parsed_open", parsed_open},
      {"mmap_open", mmap_open},
      {"first_query_parsed", first_query_parsed},
      {"first_query_mapped", first_query_mapped},
      {"cold_scan_mapped", cold_scan_mapped},
      {"cold_scan_decoded", cold_scan_decoded},
      {"warm_scan_mapped", warm_scan_mapped},
      {"warm_scan_decoded", warm_scan_decoded},
  };
  std::printf("%-20s %12s\n", "op", "millis");
  for (const OpRow& row : rows) {
    std::printf("%-20s %12.3f\n", row.op, row.seconds * 1e3);
  }
  std::printf("\nmmap-open speedup over parse-open: %.1fx\n", speedup);
  std::printf("cold selective scan, mapped over decoded: %.1fx\n",
              cold_scan_speedup);
  std::printf("warm selective scan, mapped over decoded: %.1fx\n",
              warm_scan_speedup);

  JsonValue report = JsonValue::MakeObject();
  report.Set("bench", "index_format");
  report.Set("num_triples", static_cast<uint64_t>(triples.size()));
  report.Set("nt_bytes", nt_bytes);
  report.Set("rdx_bytes", rdx_bytes);
  JsonValue cells = JsonValue::MakeArray();
  for (const OpRow& row : rows) {
    JsonValue o = JsonValue::MakeObject();
    o.Set("op", row.op);
    o.Set("seconds", row.seconds);
    cells.Append(std::move(o));
  }
  report.Set("cells", std::move(cells));
  // The speedup is the only load-insensitive (and therefore gateable)
  // number here: both opens run on the same host in the same process, so
  // their ratio cancels machine speed. It lives in its own top-level
  // array (like bench_service's "scaling") so the bench_compare gate can
  // require it in every row; the wall "seconds" cells stay informative
  // only — bench_compare never gates wall-clock fields.
  JsonValue gates = JsonValue::MakeArray();
  struct GateRow {
    const char* op;
    double value;
  };
  const GateRow gate_rows[] = {
      {"open_speedup", speedup},
      {"cold_scan_speedup", cold_scan_speedup},
      {"warm_scan_speedup", warm_scan_speedup},
  };
  for (const GateRow& row : gate_rows) {
    JsonValue o = JsonValue::MakeObject();
    o.Set("op", row.op);
    o.Set("speedup", row.value);
    gates.Append(std::move(o));
  }
  report.Set("gates", std::move(gates));
  // Warm scan throughput rows, gated separately (qps, like the service
  // bench): same host, same process, so the mapped/decoded pair moves
  // together under load — the ratio gate above is the tight one, these
  // catch absolute collapses.
  JsonValue scan = JsonValue::MakeArray();
  const GateRow scan_rows[] = {
      {"warm_scan_mapped", warm_scan_mapped > 0.0 ? 1.0 / warm_scan_mapped
                                                  : 0.0},
      {"warm_scan_decoded",
       warm_scan_decoded > 0.0 ? 1.0 / warm_scan_decoded : 0.0},
  };
  for (const GateRow& row : scan_rows) {
    JsonValue o = JsonValue::MakeObject();
    o.Set("op", row.op);
    o.Set("qps", row.value);
    scan.Append(std::move(o));
  }
  report.Set("scan", std::move(scan));
  std::ofstream out("BENCH_index.json");
  out << report.Dump() << "\n";
  if (!out) {
    std::fprintf(stderr, "failed to write BENCH_index.json\n");
    return 1;
  }
  std::printf("wrote BENCH_index.json\n");

  std::remove(nt_path.c_str());
  std::remove(rdx_path.c_str());

  if (speedup < kMinOpenSpeedup) {
    std::fprintf(stderr,
                 "shape check failed: mmap-open only %.1fx faster than "
                 "parse-open (need >= %.0fx)\n",
                 speedup, kMinOpenSpeedup);
    return 1;
  }
  if (cold_scan_speedup < kMinColdScanSpeedup) {
    std::fprintf(stderr,
                 "shape check failed: cold selective scan over the mapping "
                 "only %.1fx faster than decode-then-scan (need >= %.0fx)\n",
                 cold_scan_speedup, kMinColdScanSpeedup);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace rdfmr

int main() { return rdfmr::bench::Main(); }
