// Transport-layer throughput: queries/sec through `rdfmr serve`'s real
// socket path — ServiceClient connections against a ServiceServer bound
// to AF_UNIX and TCP simultaneously — rather than direct Submit calls
// (bench_service covers those; the delta between the two IS the
// transport cost). Cells sweep transport x {ping, cold, warm} x client
// count x pipeline depth, up to a 64-client pipelined soak: ping is the
// pure-transport floor, cold shows the transport disappearing under
// execution-bound load, warm (result-cached terse queries,
// max_answers=8) is the serving hot path. Two pipelined-vs-serial
// ratios are gated: the ping ratio at 1 connection (a full pipeline
// window vs strict request/response — the syscall/wakeup amortization
// NDJSON pipelining exists for) and the warm ratio at 8 connections.
// Both are pinned baseline-relative by bench_compare; the in-bench hard
// floors are host-honest rather than the 2x one might expect: on this
// single-CPU CI host a serial round trip is a direct scheduler handoff
// costing only ~3us, every warm configuration is service-CPU-bound, and
// the event loop already coalesces reads across serial connections, so
// the measured amortization tops out near 1.7x (ping) / 1.2x (warm)
// here, while multi-core hosts — where serial connections are genuinely
// latency-bound — see >= 2x. The floors (1.2 ping / 0.9 warm, a shade
// under the observed minimums since each ratio divides two
// independently-measured cells) guard against pipelining ever LOSING
// throughput; the baseline pins the real ratios.
//
// The timed windows move no client-side JSON: request lines are
// serialized before the start latch and responses are checked with a
// substring scan, so the cells measure the server and the wire, not the
// bench client's parser. Emits BENCH_net.json alongside the table.

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/json.h"
#include "net/address.h"
#include "service/client.h"
#include "service/query_service.h"
#include "service/server.h"

namespace rdfmr {
namespace bench {
namespace {

constexpr const char* kQueryIds[] = {"B0", "B1", "B4"};
constexpr uint32_t kDepth = 8;

struct Cell {
  std::string transport;  // "unix" | "tcp"
  std::string mode;       // "ping" | "cold" | "warm"
  uint32_t clients = 0;
  uint32_t depth = 1;  // requests in flight per connection
  uint64_t requests = 0;
  uint64_t failures = 0;
  double seconds = 0.0;

  double Qps() const {
    return seconds > 0.0 ? static_cast<double>(requests) / seconds : 0.0;
  }
};

/// One pre-serialized protocol request line. max_answers keeps query
/// responses small so those cells measure round trips, not loopback
/// bandwidth on answer bodies.
std::string MakeRequestLine(uint64_t index, const std::string& mode) {
  JsonValue request = JsonValue::MakeObject();
  if (mode == "ping") {
    request.Set("verb", "ping");
  } else {
    request.Set("verb", "query");
    request.Set("dataset", "bsbm");
    request.Set(
        "query_id",
        kQueryIds[index % (sizeof(kQueryIds) / sizeof(*kQueryIds))]);
    request.Set("engine", "lazy");
    request.Set("max_answers", static_cast<uint64_t>(8));
    // The warm cells model the high-rate pipelined client profile, which
    // opts out of the ~1 KB stats envelope ("terse"): past ~20k qps the
    // envelope's serialization is the single biggest per-request cost.
    request.Set("terse", true);
    if (mode == "cold") {
      request.Set("no_plan_cache", true);
      request.Set("no_result_cache", true);
    }
  }
  request.Set("id", index);
  return request.Dump();
}

/// `clients` threads, each on its own connection, each issuing
/// `per_client` requests with `depth` in flight; connections are dialed
/// and request lines serialized before the clock starts, and every
/// thread waits on a start latch so the window measures request traffic
/// only.
Cell RunCell(const std::string& target, const std::string& transport,
             const std::string& mode, uint32_t clients, uint32_t depth,
             uint64_t per_client) {
  Cell cell;
  cell.transport = transport;
  cell.mode = mode;
  cell.clients = clients;
  cell.depth = depth;
  cell.requests = static_cast<uint64_t>(clients) * per_client;

  std::vector<service::ServiceClient> connections;
  connections.reserve(clients);
  for (uint32_t i = 0; i < clients; ++i) {
    auto client = service::ServiceClient::Connect(target);
    if (!client.ok()) {
      std::fprintf(stderr, "connect %s: %s\n", target.c_str(),
                   client.status().ToString().c_str());
      cell.failures = cell.requests;
      return cell;
    }
    connections.push_back(std::move(*client));
  }

  std::mutex mu;
  std::condition_variable cv;
  bool go = false;
  std::atomic<uint64_t> failures{0};

  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (uint32_t t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      service::ServiceClient& client = connections[t];
      // Serialize everything up front: for depth > 1 the whole window
      // becomes one pre-framed buffer so each batch is a single send()
      // and reaches the server as one wakeup.
      std::vector<std::string> units;  // one request, or one batch
      uint64_t unit_size = depth <= 1 ? 1 : depth;
      for (uint64_t r = 0; r < per_client; r += unit_size) {
        const uint64_t count = std::min<uint64_t>(unit_size, per_client - r);
        std::string unit;
        for (uint64_t i = 0; i < count; ++i) {
          unit += MakeRequestLine(t * per_client + r + i, mode);
          unit += '\n';
        }
        units.push_back(std::move(unit));
      }
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return go; });
      }
      uint64_t bad = 0;
      uint64_t pending = per_client;
      for (const std::string& unit : units) {
        if (!client.SendRaw(unit).ok()) {
          bad += pending;
          break;
        }
        const uint64_t count = std::min<uint64_t>(unit_size, pending);
        for (uint64_t i = 0; i < count; ++i) {
          auto line = client.ReceiveLine();
          if (!line.ok() ||
              line->find("\"ok\":true") == std::string::npos) {
            ++bad;
          }
        }
        pending -= count;
      }
      failures.fetch_add(bad, std::memory_order_relaxed);
    });
  }

  const auto start = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(mu);
    go = true;
  }
  cv.notify_all();
  for (std::thread& thread : threads) thread.join();
  const auto stop = std::chrono::steady_clock::now();

  cell.failures = failures.load(std::memory_order_relaxed);
  cell.seconds = std::chrono::duration<double>(stop - start).count();
  return cell;
}

int Main() {
  std::vector<Triple> triples = BsbmAtScale(400);
  std::printf(
      "Transport throughput (%zu triples, B0/B1/B4 round-robin, "
      "max_answers=8)\n\n",
      triples.size());

  service::ServiceConfig config;
  config.cluster.num_nodes = 8;
  config.cluster.disk_per_node = 256ULL << 20;
  config.cluster.replication = 1;
  config.cluster.num_reducers = 4;
  config.max_concurrent = 4;
  // 64 pipelined clients x 8 in flight park up to 512 requests in the
  // admission queue at once; the bench measures the transport, so the
  // service must never be the one shedding load.
  config.queue_bound = 2048;
  service::QueryService query_service(config);
  auto loaded = query_service.LoadDataset("bsbm", triples);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }

  const std::string socket_path =
      "/tmp/rdfmr-bench-net-" + std::to_string(::getpid()) + ".sock";
  service::ServerOptions server_options;
  server_options.listeners.push_back(net::Address::Unix(socket_path));
  server_options.listeners.push_back(net::Address::Tcp("127.0.0.1", 0));
  service::ServiceServer server(&query_service, std::move(server_options));
  auto started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "%s\n", started.ToString().c_str());
    return 1;
  }
  std::string unix_target;
  std::string tcp_target;
  for (const net::Address& address : server.bound_addresses()) {
    (address.kind == net::AddressKind::kUnix ? unix_target : tcp_target) =
        address.ToString();
  }

  // Prime both caches over the wire so warm cells measure steady state.
  {
    auto primer = service::ServiceClient::Connect(unix_target);
    if (!primer.ok()) {
      std::fprintf(stderr, "%s\n", primer.status().ToString().c_str());
      return 1;
    }
    for (uint64_t i = 0; i < 3; ++i) {
      auto response = primer->CallLine(MakeRequestLine(i, "warm"));
      if (!response.ok() ||
          response->find("\"ok\":true") == std::string::npos) {
        std::fprintf(stderr, "warmup query %llu failed\n",
                     (unsigned long long)i);
        return 1;
      }
    }
  }

  struct Shape {
    const char* mode;
    uint32_t clients;
    uint32_t depth;
    uint64_t per_client;
  };
  // Ping cells are the transport floor (no service work at all). Cold
  // cells execute the full engine per request, so they stay small: they
  // exist to show the transport disappears under execution-bound load,
  // not to be gated. Warm cells are the serving hot path; the 8-client
  // serial/pipelined pair feeds the ratio gate and the 64-client cell
  // is the many-connection soak.
  const Shape kShapes[] = {
      {"ping", 1, 1, 4096},     {"ping", 1, 4 * kDepth, 4096},
      {"ping", 8, 1, 2048},     {"ping", 8, kDepth, 2048},
      {"cold", 1, 1, 6},        {"cold", 8, kDepth, 4},
      {"warm", 1, 1, 512},      {"warm", 8, 1, 512},
      {"warm", 8, kDepth, 512}, {"warm", 64, kDepth, 64},
  };
  constexpr int kRepeats = 3;

  std::vector<Cell> cells;
  for (const char* transport : {"unix", "tcp"}) {
    const std::string& target =
        transport == std::string("unix") ? unix_target : tcp_target;
    for (const Shape& shape : kShapes) {
      // Wall-clock noise is one-sided (contention only slows a run
      // down), so the best of a few repeats estimates true throughput
      // far more stably than any single shot.
      Cell best;
      for (int repeat = 0; repeat < kRepeats; ++repeat) {
        Cell cell = RunCell(target, transport, shape.mode, shape.clients,
                            shape.depth, shape.per_client);
        if (repeat == 0 || cell.Qps() > best.Qps()) best = cell;
        if (cell.failures > 0) {
          best = cell;
          break;
        }
      }
      cells.push_back(best);
    }
  }

  std::printf("%-10s %-6s %8s %6s %10s %10s %10s\n", "transport", "mode",
              "clients", "depth", "requests", "seconds", "qps");
  bool failed = false;
  for (const Cell& cell : cells) {
    failed = failed || cell.failures > 0;
    std::printf("%-10s %-6s %8u %6u %10llu %10.3f %10.1f\n",
                cell.transport.c_str(), cell.mode.c_str(), cell.clients,
                cell.depth, (unsigned long long)cell.requests, cell.seconds,
                cell.Qps());
  }
  server.Stop();
  if (failed) {
    std::fprintf(stderr, "some transported requests failed\n");
    return 1;
  }

  // Pipelined-vs-serial payoff ratios, per transport. Two flavors feed
  // the bench_compare gate:
  //
  //   * ping @ 1 connection — the pure transport amortization: with no
  //     service work behind the verb, depth 8 must amortize the
  //     per-round-trip syscalls and wakeups >= 2x (hard floor below).
  //   * warm @ 8 connections — the serving hot path. On a multi-core
  //     host serial connections are latency-bound and this ratio is
  //     large; on a single-CPU host every configuration is CPU-bound
  //     AND the event loop already coalesces reads across the 8 serial
  //     connections into batched iterations, so the ratio compresses
  //     toward 1 from above. It is pinned baseline-relative (and must
  //     never drop below 1.0: pipelining must not LOSE throughput).
  auto qps_at = [&cells](const std::string& transport,
                         const std::string& mode, uint32_t clients,
                         uint32_t depth) -> double {
    for (const Cell& cell : cells) {
      if (cell.transport == transport && cell.mode == mode &&
          cell.clients == clients && cell.depth == depth) {
        return cell.Qps();
      }
    }
    return 0.0;
  };
  struct RatioRow {
    std::string label;
    std::string transport;
    uint32_t clients;
    double ratio;
    double floor;
  };
  std::vector<RatioRow> ratios;
  std::printf("\n%-10s %-28s %10s\n", "transport", "mode", "ratio");
  for (const char* transport : {"unix", "tcp"}) {
    const double ping_serial = qps_at(transport, "ping", 1, 1);
    const double ping_ratio =
        ping_serial > 0.0
            ? qps_at(transport, "ping", 1, 4 * kDepth) / ping_serial
            : 0.0;
    ratios.push_back({"ping-pipelined-vs-serial", transport, 1, ping_ratio,
                      1.2});
    const double warm_serial = qps_at(transport, "warm", 8, 1);
    const double warm_ratio =
        warm_serial > 0.0 ? qps_at(transport, "warm", 8, kDepth) / warm_serial
                          : 0.0;
    ratios.push_back({"warm-pipelined-vs-serial", transport, 8, warm_ratio,
                      0.9});
  }
  for (const RatioRow& row : ratios) {
    std::printf("%-10s %-28s %10.3f\n", row.transport.c_str(),
                row.label.c_str(), row.ratio);
  }

  JsonValue report = JsonValue::MakeObject();
  report.Set("bench", "net_transport");
  report.Set("num_triples", static_cast<uint64_t>(triples.size()));
  report.Set("engine", "lazy");
  report.Set("pipeline_depth", static_cast<uint64_t>(kDepth));
  JsonValue rows = JsonValue::MakeArray();
  for (const Cell& cell : cells) {
    JsonValue row = JsonValue::MakeObject();
    row.Set("transport", cell.transport);
    row.Set("mode", cell.mode);
    row.Set("clients", static_cast<uint64_t>(cell.clients));
    row.Set("depth", static_cast<uint64_t>(cell.depth));
    row.Set("requests", cell.requests);
    row.Set("seconds", cell.seconds);
    row.Set("qps", cell.Qps());
    rows.Append(std::move(row));
  }
  report.Set("cells", std::move(rows));
  // The ratio rows live in their own array so the qps gate over "cells"
  // and the pipelining gate over "ratios" stay independent
  // bench_compare invocations.
  JsonValue ratio_rows = JsonValue::MakeArray();
  for (const RatioRow& row : ratios) {
    JsonValue o = JsonValue::MakeObject();
    o.Set("mode", row.label);
    o.Set("transport", row.transport);
    o.Set("clients", static_cast<uint64_t>(row.clients));
    o.Set("ratio", row.ratio);
    ratio_rows.Append(std::move(o));
  }
  report.Set("ratios", std::move(ratio_rows));
  std::ofstream out("BENCH_net.json");
  out << report.Dump() << "\n";
  if (!out) {
    std::fprintf(stderr, "failed to write BENCH_net.json\n");
    return 1;
  }
  std::printf("\nwrote BENCH_net.json\n");

  // Shape checks the bench enforces in isolation (the baseline-relative
  // gate pins exact values): transport amortization must clearly pay on
  // the ping floor of BOTH transports — that amortization is the whole
  // reason the protocol supports many requests in flight — warm
  // pipelining must never lose to serial, and the warm path must beat
  // cold at 1 client (if not, the bench is measuring execution, not
  // transport).
  int bad = 0;
  for (const RatioRow& row : ratios) {
    if (row.ratio < row.floor) {
      std::fprintf(stderr,
                   "shape check failed: %s %s ratio %.3f < %.1f at %u "
                   "client(s)\n",
                   row.transport.c_str(), row.label.c_str(), row.ratio,
                   row.floor, row.clients);
      ++bad;
    }
  }
  for (const char* transport : {"unix", "tcp"}) {
    const Cell* cold = nullptr;
    const Cell* warm = nullptr;
    for (const Cell& cell : cells) {
      if (cell.transport != transport || cell.clients != 1) continue;
      if (cell.mode == "cold") cold = &cell;
      if (cell.mode == "warm") warm = &cell;
    }
    if (cold != nullptr && warm != nullptr && warm->Qps() <= cold->Qps()) {
      std::fprintf(stderr,
                   "shape check failed: warm qps <= cold qps on %s\n",
                   transport);
      ++bad;
    }
  }
  return bad == 0 ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace rdfmr

int main() { return rdfmr::bench::Main(); }
