// Serving-layer throughput: queries/sec through the QueryService, cold
// (caches bypassed: compile + execute every request), warm-plan (plan
// cache on, result cache off: retarget + execute), and warm-result (both
// caches: answers replayed). Cold/warm-plan run at 1 and 4 workers;
// warm-result — the pure serving hot path — runs at 1/2/4/8/16 workers
// and additionally emits a scaling ratio qps(N)/qps(1) per worker count,
// which the CI gate pins so the sharded-cache/lock-free-stats fix cannot
// silently regress back to the old inverse scaling. Emits
// BENCH_service.json alongside the printed table.
//
// Requests go through Submit directly — the same admission/cache/execute
// path `rdfmr serve` drives — so the numbers isolate the service from
// socket transport noise.

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <mutex>

#include "bench/bench_util.h"
#include "common/json.h"
#include "service/query_service.h"

namespace rdfmr {
namespace bench {
namespace {

struct Cell {
  uint32_t workers = 0;
  std::string mode;
  uint64_t requests = 0;
  uint64_t failures = 0;
  double seconds = 0.0;
  uint64_t plan_cache_hits = 0;
  uint64_t result_cache_hits = 0;

  double Qps() const {
    return seconds > 0.0 ? static_cast<double>(requests) / seconds : 0.0;
  }
};

/// Submits `requests` round-robin over `queries` and blocks until every
/// callback fired; returns the wall seconds of the submission+drain.
Cell RunCell(service::QueryService* query_service,
             const std::vector<std::shared_ptr<const GraphPatternQuery>>&
                 queries,
             const EngineOptions& options, uint32_t workers,
             const std::string& mode, uint64_t requests) {
  Cell cell;
  cell.workers = workers;
  cell.mode = mode;
  cell.requests = requests;

  std::mutex mu;
  std::condition_variable cv;
  uint64_t done = 0;
  uint64_t failures = 0;

  const service::ServiceStatsSnapshot before = query_service->Stats();
  const auto start = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < requests; ++i) {
    service::ServiceRequest request;
    request.dataset = "bsbm";
    request.query = queries[i % queries.size()];
    request.options = options;
    request.use_plan_cache = mode != "cold";
    request.use_result_cache = mode == "warm-result";
    query_service->Submit(request, [&](service::ServiceResponse response) {
      std::lock_guard<std::mutex> lock(mu);
      if (!response.ok() || !response.stats.ok()) ++failures;
      ++done;
      cv.notify_one();
    });
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done == requests; });
  }
  const auto stop = std::chrono::steady_clock::now();
  const service::ServiceStatsSnapshot after = query_service->Stats();

  cell.failures = failures;
  cell.seconds = std::chrono::duration<double>(stop - start).count();
  cell.plan_cache_hits = after.plan_cache_hits - before.plan_cache_hits;
  cell.result_cache_hits =
      after.result_cache_hits - before.result_cache_hits;
  return cell;
}

int Main() {
  std::vector<Triple> triples = BsbmAtScale(400);
  std::printf("Service throughput (%zu triples, B0/B1/B4 round-robin)\n\n",
              triples.size());

  std::vector<std::shared_ptr<const GraphPatternQuery>> queries;
  for (const char* id : {"B0", "B1", "B4"}) {
    auto q = GetTestbedQuery(id);
    if (!q.ok()) {
      std::fprintf(stderr, "%s\n", q.status().ToString().c_str());
      return 1;
    }
    queries.push_back(*q);
  }

  EngineOptions options;
  options.kind = EngineKind::kNtgaLazy;

  constexpr uint64_t kRequests = 48;
  constexpr int kRepeats = 3;
  std::vector<Cell> cells;
  for (uint32_t workers : {1u, 2u, 4u, 8u, 16u}) {
    // Cold and warm-plan cells execute the full engine per request; their
    // throughput is execution-bound and 1-vs-4 workers already exposes a
    // serialization bug, so the extra worker counts only measure the
    // warm-result hot path this bench exists to gate.
    const bool execution_modes = workers == 1 || workers == 4;
    std::vector<std::string> modes;
    if (execution_modes) {
      modes = {"cold", "warm-plan", "warm-result"};
    } else {
      modes = {"warm-result"};
    }

    service::ServiceConfig config;
    config.cluster.num_nodes = 8;
    config.cluster.disk_per_node = 256ULL << 20;
    config.cluster.replication = 1;
    config.cluster.num_reducers = 4;
    config.max_concurrent = workers;
    config.queue_bound = kRequests * 10;
    service::QueryService query_service(config);
    auto loaded = query_service.LoadDataset("bsbm", triples);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    // Prime both caches so the warm modes measure steady state.
    for (const auto& query : queries) {
      service::ServiceRequest warmup;
      warmup.dataset = "bsbm";
      warmup.query = query;
      warmup.options = options;
      (void)query_service.Query(warmup);
    }
    for (const std::string& mode : modes) {
      // Result-cache replays are orders of magnitude faster than
      // execution; a 48-request cell finishes in fractions of a second,
      // far too noisy for the CI gate's 20% tolerance. Stretch the
      // measurement window instead of loosening the gate.
      const uint64_t requests =
          mode == "warm-result" ? kRequests * 10 : kRequests;
      // Wall-clock noise is one-sided (contention only slows a run
      // down), so the best of a few repeats estimates true throughput
      // far more stably than any single shot.
      Cell best;
      for (int repeat = 0; repeat < kRepeats; ++repeat) {
        Cell cell = RunCell(&query_service, queries, options, workers,
                            mode, requests);
        if (repeat == 0 || cell.Qps() > best.Qps()) best = cell;
      }
      cells.push_back(best);
    }
  }

  std::printf("%-8s %-12s %10s %10s %10s %10s %10s\n", "workers", "mode",
              "requests", "seconds", "qps", "plan_hits", "result_hits");
  bool failed = false;
  for (const Cell& cell : cells) {
    failed = failed || cell.failures > 0;
    std::printf("%-8u %-12s %10llu %10.3f %10.1f %10llu %10llu\n",
                cell.workers, cell.mode.c_str(),
                (unsigned long long)cell.requests, cell.seconds,
                cell.Qps(), (unsigned long long)cell.plan_cache_hits,
                (unsigned long long)cell.result_cache_hits);
  }
  if (failed) {
    std::fprintf(stderr, "some served requests failed\n");
    return 1;
  }

  // Warm-result scaling ratios vs the 1-worker cell: the serving layer's
  // whole point is that the entirely-cached path must not get SLOWER as
  // workers are added (the pre-sharding service dropped to ~0.5 at 4
  // workers). These rows feed a dedicated bench_compare gate.
  auto warm_qps = [&cells](uint32_t workers) -> double {
    for (const Cell& cell : cells) {
      if (cell.workers == workers && cell.mode == "warm-result") {
        return cell.Qps();
      }
    }
    return 0.0;
  };
  const double warm_base = warm_qps(1);
  struct ScalingRow {
    uint32_t workers;
    double ratio;
  };
  std::vector<ScalingRow> scaling;
  std::printf("\n%-8s %-24s %10s\n", "workers", "mode", "ratio");
  for (uint32_t workers : {2u, 4u, 8u, 16u}) {
    const double ratio =
        warm_base > 0.0 ? warm_qps(workers) / warm_base : 0.0;
    scaling.push_back({workers, ratio});
    std::printf("%-8u %-24s %10.3f\n", workers, "warm-result-vs-1", ratio);
  }

  JsonValue report = JsonValue::MakeObject();
  report.Set("bench", "service_throughput");
  report.Set("num_triples", static_cast<uint64_t>(triples.size()));
  report.Set("engine", "lazy");
  report.Set("requests_per_cell", kRequests);
  JsonValue rows = JsonValue::MakeArray();
  for (const Cell& cell : cells) {
    JsonValue row = JsonValue::MakeObject();
    row.Set("workers", static_cast<uint64_t>(cell.workers));
    row.Set("mode", cell.mode);
    row.Set("requests", cell.requests);
    row.Set("seconds", cell.seconds);
    row.Set("qps", cell.Qps());
    row.Set("plan_cache_hits", cell.plan_cache_hits);
    row.Set("result_cache_hits", cell.result_cache_hits);
    rows.Append(std::move(row));
  }
  report.Set("cells", std::move(rows));
  // The ratio rows live in their own array so the qps gate over "cells"
  // and the ratio gate over "scaling" stay independent bench_compare
  // invocations.
  JsonValue ratio_rows = JsonValue::MakeArray();
  for (const ScalingRow& row : scaling) {
    JsonValue o = JsonValue::MakeObject();
    o.Set("mode", "warm-result-vs-1");
    o.Set("workers", static_cast<uint64_t>(row.workers));
    o.Set("ratio", row.ratio);
    ratio_rows.Append(std::move(o));
  }
  report.Set("scaling", std::move(ratio_rows));
  std::ofstream out("BENCH_service.json");
  out << report.Dump() << "\n";
  if (!out) {
    std::fprintf(stderr, "failed to write BENCH_service.json\n");
    return 1;
  }
  std::printf("\nwrote BENCH_service.json\n");

  // Sanity shapes rather than absolute numbers: warm-result must beat
  // cold (it skips compilation AND execution) at every worker count that
  // ran both, and adding workers must not collapse the warm path (the
  // baseline-relative gate pins the exact ratios; this guards the bench
  // in isolation).
  int bad = 0;
  for (uint32_t workers : {1u, 4u}) {
    const Cell* cold = nullptr;
    const Cell* warm = nullptr;
    for (const Cell& cell : cells) {
      if (cell.workers != workers) continue;
      if (cell.mode == "cold") cold = &cell;
      if (cell.mode == "warm-result") warm = &cell;
    }
    if (cold != nullptr && warm != nullptr && warm->Qps() <= cold->Qps()) {
      std::fprintf(stderr,
                   "shape check failed: warm-result qps <= cold qps at "
                   "%u worker(s)\n",
                   workers);
      ++bad;
    }
  }
  for (const ScalingRow& row : scaling) {
    // Lock serialization — the bug this bench exists to catch — shows up
    // as ratios near 1/N at every worker count (the pre-sharding service
    // was ~0.5 at 4 workers) together with result_cache hits collapsing.
    // The 16-worker cell gets a looser floor: on a small host it is heavy
    // oversubscription (this CI box has 1 CPU) and 16 concurrent
    // answer-set copies exceed glibc's default malloc-arena budget
    // (8 x cores), so that cell mostly measures allocator/scheduler
    // pressure. The baseline-relative bench_compare gate still pins its
    // exact ratio.
    const double floor = row.workers <= 8 ? 0.8 : 0.4;
    if (row.ratio < floor) {
      std::fprintf(stderr,
                   "shape check failed: warm-result scaling ratio %.3f at "
                   "%u workers (floor %.2f; inverse scaling is back)\n",
                   row.ratio, row.workers, floor);
      ++bad;
    }
  }
  return bad == 0 ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace rdfmr

int main() { return rdfmr::bench::Main(); }
