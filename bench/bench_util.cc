#include "bench/bench_util.h"

#include <cstdio>
#include <cstdlib>

#include "common/strings.h"
#include "datagen/bio2rdf.h"
#include "datagen/bsbm.h"
#include "datagen/btc.h"
#include "datagen/dbpedia.h"

namespace rdfmr {
namespace bench {

std::vector<Triple> BsbmAtScale(uint64_t num_products) {
  BsbmConfig config;
  config.num_products = num_products;
  config.num_features = 300;
  config.offers_per_product = 2;
  config.reviews_per_product = 2;
  config.min_features_per_product = 4;
  config.max_features_per_product = 14;
  return GenerateBsbm(config);
}

std::vector<Triple> BenchDataset(DatasetFamily family) {
  switch (family) {
    case DatasetFamily::kBsbm:
      return BsbmAtScale(1200);
    case DatasetFamily::kBio2Rdf: {
      Bio2RdfConfig config;
      config.num_genes = 1500;
      config.num_go_terms = 600;
      config.num_articles = 800;
      config.max_multiplicity = 60;  // the paper's 13K knob, scaled down
      return GenerateBio2Rdf(config);
    }
    case DatasetFamily::kDbpedia: {
      DbpediaConfig config;
      config.num_entities = 3000;
      config.sopranos_fraction = 0.03;
      return GenerateDbpedia(config);
    }
    case DatasetFamily::kBtc: {
      BtcConfig config;
      config.num_dbpedia_entities = 2500;
      config.num_genes = 600;
      config.num_cross_links = 1500;
      return GenerateBtc(config);
    }
  }
  return {};
}

uint64_t DatasetBytes(const std::vector<Triple>& triples) {
  uint64_t bytes = 0;
  for (const Triple& t : triples) bytes += t.Serialize().size() + 1;
  return bytes;
}

uint32_t ThreadsFromEnv() {
  const char* env = std::getenv("RDFMR_THREADS");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  unsigned long value = std::strtoul(env, &end, 10);
  if (end == env || *end != '\0') return 0;
  return static_cast<uint32_t>(value);
}

std::unique_ptr<SimDfs> MakeDfs(const std::vector<Triple>& triples,
                                const ClusterConfig& config) {
  ClusterConfig effective = config;
  uint32_t threads = ThreadsFromEnv();
  if (threads > 0) effective.num_threads = threads;
  auto dfs = std::make_unique<SimDfs>(effective);
  Status st = dfs->WriteFile("base", SerializeTriples(triples));
  if (!st.ok()) {
    std::fprintf(stderr, "FATAL: cannot load base relation: %s\n",
                 st.ToString().c_str());
    std::exit(1);
  }
  dfs->ResetMetrics();
  return dfs;
}

ExecStats RunOne(SimDfs* dfs, const std::string& query_id,
                 const EngineOptions& options) {
  auto query = GetTestbedQuery(query_id);
  if (!query.ok()) {
    std::fprintf(stderr, "FATAL: bad testbed query %s: %s\n",
                 query_id.c_str(), query.status().ToString().c_str());
    std::exit(1);
  }
  auto exec = RunQuery(dfs, "base", *query, options);
  if (!exec.ok()) {
    std::fprintf(stderr, "FATAL: infrastructure error on %s/%s: %s\n",
                 query_id.c_str(), EngineKindToString(options.kind),
                 exec.status().ToString().c_str());
    std::exit(1);
  }
  return exec->stats;
}

void PrintTable(const std::string& title, const std::vector<Row>& rows) {
  std::printf("\n== %s ==\n", title.c_str());
  std::printf(
      "%-9s %-19s %4s %3s %3s %12s %12s %12s %12s %10s %7s\n", "query",
      "engine", "ok", "MR", "FS", "read", "shuffle", "write", "starphase",
      "final", "time(s)");
  for (const Row& row : rows) {
    const ExecStats& s = row.stats;
    if (!s.ok()) {
      std::printf("%-9s %-19s %4s %3zu %3s %12s %12s %12s %12s %10s %7s  "
                  "(%s at job %d)\n",
                  row.query.c_str(), s.engine.c_str(), "X", s.planned_cycles,
                  "-", "-", "-", "-", "-", "-", "-",
                  StatusCodeToString(s.status.code()), s.failed_job_index);
      continue;
    }
    std::printf(
        "%-9s %-19s %4s %3zu %3u %12s %12s %12s %12s %10s %7.1f\n",
        row.query.c_str(), s.engine.c_str(), "ok", s.mr_cycles, s.full_scans,
        HumanBytes(s.hdfs_read_bytes).c_str(),
        HumanBytes(s.shuffle_bytes).c_str(),
        HumanBytes(s.hdfs_write_bytes).c_str(),
        HumanBytes(s.star_phase_write_bytes).c_str(),
        HumanBytes(s.final_output_bytes).c_str(), s.modeled_seconds);
  }
}

void ShapeChecks::Check(const std::string& description, bool passed) {
  entries_.push_back(Entry{description, passed});
}

int ShapeChecks::Summarize() const {
  std::printf("\n-- paper-shape checks --\n");
  int failed = 0;
  for (const Entry& e : entries_) {
    std::printf("[%s] %s\n", e.passed ? "PASS" : "FAIL",
                e.description.c_str());
    if (!e.passed) ++failed;
  }
  std::printf("%d/%zu checks passed\n",
              static_cast<int>(entries_.size()) - failed, entries_.size());
  return failed;
}

std::vector<EngineKind> PaperEngines() {
  return {EngineKind::kPig, EngineKind::kHive, EngineKind::kNtgaEager,
          EngineKind::kNtgaLazy};
}

CostModelConfig BenchCostModel() {
  CostModelConfig cost;
  cost.hdfs_read_mbps = 0.08;
  cost.hdfs_write_mbps = 0.05;
  cost.shuffle_mbps = 0.04;
  cost.sort_mbps = 0.12;
  cost.job_startup_seconds = 15.0;
  return cost;
}

}  // namespace bench
}  // namespace rdfmr
