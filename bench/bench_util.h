// Shared infrastructure for the per-figure experiment harnesses: bench-scale
// dataset construction, engine sweeps, table printing, and paper-shape
// checks. Each fig*_ binary prints the rows/series of one figure or table
// of the paper and verifies the qualitative relationships the paper reports.

#ifndef RDFMR_BENCH_BENCH_UTIL_H_
#define RDFMR_BENCH_BENCH_UTIL_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/strings.h"
#include "datagen/testbed.h"
#include "dfs/sim_dfs.h"
#include "engine/engine.h"
#include "rdf/triple.h"

namespace rdfmr {
namespace bench {

/// Bench-scale dataset for one family (larger than test scale so the
/// redundancy effects dominate fixed costs; still seconds per query).
std::vector<Triple> BenchDataset(DatasetFamily family);

/// BSBM-like dataset at an explicit product scale; `BenchDataset(kBsbm)`
/// is the "BSBM-2M" stand-in, half the scale is the "BSBM-1M" stand-in.
std::vector<Triple> BsbmAtScale(uint64_t num_products);

/// Serialized byte size of a triple set (to size cluster disks).
uint64_t DatasetBytes(const std::vector<Triple>& triples);

/// Execution threads for bench runs: the RDFMR_THREADS environment
/// variable, or 0 when unset/invalid (0 = keep the config's own value).
/// Results are byte-identical for any thread count; only wall time moves.
uint32_t ThreadsFromEnv();

/// Builds a DFS holding `triples` at "base". Applies ThreadsFromEnv() to
/// the cluster config so every fig*_ binary honours RDFMR_THREADS.
std::unique_ptr<SimDfs> MakeDfs(const std::vector<Triple>& triples,
                                const ClusterConfig& config);

/// Runs one testbed query on one engine; aborts the process on
/// infrastructure errors (engine-level failures are data, not errors).
ExecStats RunOne(SimDfs* dfs, const std::string& query_id,
                 const EngineOptions& options);

/// One printable row of a result table.
struct Row {
  std::string query;
  std::string engine;
  ExecStats stats;
};

/// Prints a fixed set of columns for `rows` (failed runs render as 'X',
/// matching the paper's missing bars).
void PrintTable(const std::string& title, const std::vector<Row>& rows);

/// Records / prints a paper-shape check ("who wins / by how much").
class ShapeChecks {
 public:
  void Check(const std::string& description, bool passed);
  /// Prints the summary and returns the number of failed checks.
  int Summarize() const;

 private:
  struct Entry {
    std::string description;
    bool passed;
  };
  std::vector<Entry> entries_;
};

/// Convenience: the usual four engines of the paper's main figures.
std::vector<EngineKind> PaperEngines();  // Pig, Hive, Eager, Lazy

/// Cost model for bench runs. The bench datasets are ~1:1000 stand-ins for
/// the paper's BSBM-2M/Bio2RDF volumes, so per-node bandwidths shrink by
/// the same factor — preserving the paper's regime where I/O time
/// dominates fixed per-job overhead.
CostModelConfig BenchCostModel();

}  // namespace bench
}  // namespace rdfmr

#endif  // RDFMR_BENCH_BENCH_UTIL_H_
