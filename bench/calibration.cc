#include "bench/calibration.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "bench/bench_util.h"
#include "common/strings.h"

namespace rdfmr {
namespace bench {

uint64_t MeasurePeak(const std::vector<Triple>& triples,
                     const std::string& query_id, EngineKind kind) {
  ClusterConfig roomy;
  roomy.num_nodes = 12;
  roomy.replication = 1;
  roomy.disk_per_node = 8ULL << 30;
  roomy.block_size = 1ULL << 20;
  roomy.num_reducers = 8;
  auto dfs = MakeDfs(triples, roomy);
  EngineOptions options;
  options.kind = kind;
  options.decode_answers = false;
  ExecStats stats = RunOne(dfs.get(), query_id, options);
  if (!stats.ok()) {
    std::fprintf(stderr,
                 "FATAL: calibration run failed for %s/%s on an "
                 "unconstrained cluster: %s\n",
                 query_id.c_str(), EngineKindToString(kind),
                 stats.status.ToString().c_str());
    std::exit(1);
  }
  return stats.peak_dfs_used_bytes;
}

Calibration CalibrateBsbmBudget(const std::vector<Triple>& triples) {
  Calibration cal;
  const std::vector<std::string> queries = {"B0", "B1", "B2", "B3",
                                            "B4", "B5", "B6"};
  for (const std::string& q : queries) {
    for (EngineKind kind : PaperEngines()) {
      std::string key = q + "/" + EngineKindToString(kind);
      cal.peaks[key] = MeasurePeak(triples, q, kind);
    }
  }
  auto peak = [&](const std::string& q, const char* e) {
    return cal.peaks.at(q + "/" + e);
  };

  std::printf("\n-- calibration: peak DFS footprint at replication 1 --\n");
  std::printf("%-6s %14s %14s %14s %14s\n", "query", "Pig", "Hive",
              "EagerUnnest", "LazyUnnest");
  for (const std::string& q : queries) {
    std::printf("%-6s %14s %14s %14s %14s\n", q.c_str(),
                HumanBytes(peak(q, "Pig")).c_str(),
                HumanBytes(peak(q, "Hive")).c_str(),
                HumanBytes(peak(q, "EagerUnnest")).c_str(),
                HumanBytes(peak(q, "LazyUnnest")).c_str());
  }

  // Constraint system (paper Figures 9a, 9b, 12); footprints scale with the
  // replication factor, so replication-2 constraints double the peak.
  // Figure 9(a) — BSBM-2M, replication 2, B0-B4: Pig/Hive fail everything,
  // Eager completes B0-B2 but fails B3/B4, Lazy completes everything.
  // Figure 9(b) — same data, replication 1: Pig/Hive complete B0-B2 but
  // fail B3/B4; the NTGA strategies complete everything.
  // Figure 12 — BSBM-1M (half the data) at replication 2, which scales to
  // the replication-1 footprints here: Pig/Hive additionally fail B5/B6;
  // LazyUnnest completes everything (the paper does not state whether
  // EagerUnnest completed B5/B6, so those runs are unconstrained).
  std::vector<std::pair<std::string, uint64_t>> must_pass, must_fail;
  for (const std::string q : {"B0", "B1", "B2"}) {
    must_pass.push_back({q + "/Eager@r2", 2 * peak(q, "EagerUnnest")});
    must_pass.push_back({q + "/Pig@r1", peak(q, "Pig")});
    must_pass.push_back({q + "/Hive@r1", peak(q, "Hive")});
  }
  for (const std::string q : {"B0", "B1", "B2", "B3", "B4"}) {
    must_pass.push_back({q + "/Lazy@r2", 2 * peak(q, "LazyUnnest")});
    must_pass.push_back({q + "/Eager@r1", peak(q, "EagerUnnest")});
  }
  for (const std::string q : {"B5", "B6"}) {
    must_pass.push_back({q + "/Lazy@r1", peak(q, "LazyUnnest")});
  }
  for (const std::string q : {"B0", "B1", "B2", "B3", "B4"}) {
    must_fail.push_back({q + "/Pig@r2", 2 * peak(q, "Pig")});
    must_fail.push_back({q + "/Hive@r2", 2 * peak(q, "Hive")});
  }
  for (const std::string q : {"B3", "B4"}) {
    must_fail.push_back({q + "/Eager@r2", 2 * peak(q, "EagerUnnest")});
    must_fail.push_back({q + "/Pig@r1", peak(q, "Pig")});
    must_fail.push_back({q + "/Hive@r1", peak(q, "Hive")});
  }
  for (const std::string q : {"B5", "B6"}) {
    must_fail.push_back({q + "/Pig@r1", peak(q, "Pig")});
    must_fail.push_back({q + "/Hive@r1", peak(q, "Hive")});
  }

  std::string pass_witness, fail_witness;
  for (const auto& [name, bytes] : must_pass) {
    if (bytes > cal.max_must_pass) {
      cal.max_must_pass = bytes;
      pass_witness = name;
    }
  }
  cal.min_must_fail = UINT64_MAX;
  for (const auto& [name, bytes] : must_fail) {
    if (bytes < cal.min_must_fail) {
      cal.min_must_fail = bytes;
      fail_witness = name;
    }
  }
  cal.feasible = cal.max_must_pass < cal.min_must_fail;
  if (!cal.feasible) {
    std::fprintf(stderr,
                 "FATAL: budget constraints infeasible at this scale: "
                 "largest must-pass %s (%s) >= smallest must-fail %s (%s)\n",
                 pass_witness.c_str(),
                 HumanBytes(cal.max_must_pass).c_str(), fail_witness.c_str(),
                 HumanBytes(cal.min_must_fail).c_str());
    std::exit(1);
  }
  cal.capacity = cal.max_must_pass / 2 + cal.min_must_fail / 2;
  return cal;
}

Calibration CalibrateBudget(const std::vector<Triple>& triples,
                            const std::vector<BudgetConstraint>& must_pass,
                            const std::vector<BudgetConstraint>& must_fail) {
  Calibration cal;
  auto footprint = [&](const BudgetConstraint& c) {
    std::string key = c.query_id + "/" + EngineKindToString(c.engine);
    auto it = cal.peaks.find(key);
    if (it == cal.peaks.end()) {
      it = cal.peaks.emplace(key, MeasurePeak(triples, c.query_id, c.engine))
               .first;
    }
    return it->second * c.replication;
  };
  for (const BudgetConstraint& c : must_pass) {
    cal.max_must_pass = std::max(cal.max_must_pass, footprint(c));
  }
  cal.min_must_fail = UINT64_MAX;
  for (const BudgetConstraint& c : must_fail) {
    cal.min_must_fail = std::min(cal.min_must_fail, footprint(c));
  }
  cal.feasible = cal.max_must_pass < cal.min_must_fail;
  if (cal.feasible) {
    cal.capacity = cal.max_must_pass / 2 + cal.min_must_fail / 2;
  }
  return cal;
}

}  // namespace bench
}  // namespace rdfmr
