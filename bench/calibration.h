// Disk-budget calibration for the failure-reproduction experiments.
//
// The paper ran a fixed 60-node/1.6TB cluster against 85-172GB datasets and
// *observed* which plans exhausted the disk. At bench scale the absolute
// ratios do not transfer (our generators use smaller fan-outs than
// BSBM-2M's 20 offers/product), so each failure figure derives its budget
// from measurements: run every (query, engine) once on an unconstrained
// cluster, record the peak DFS footprint, and pick a capacity strictly
// between the largest footprint the paper reports succeeding and the
// smallest it reports failing. The subsequent failures are then *measured*
// (writes really exceed the budget mid-workflow), not scripted.
// See EXPERIMENTS.md for the discussion.

#ifndef RDFMR_BENCH_CALIBRATION_H_
#define RDFMR_BENCH_CALIBRATION_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "rdf/triple.h"

namespace rdfmr {
namespace bench {

struct Calibration {
  bool feasible = false;
  uint64_t capacity = 0;        ///< chosen total cluster capacity (bytes)
  uint64_t max_must_pass = 0;   ///< largest footprint that must fit
  uint64_t min_must_fail = 0;   ///< smallest footprint that must not fit
  /// Peak DFS usage at replication 1 per (query, engine-name).
  std::map<std::string, uint64_t> peaks;
};

/// \brief Peak footprint of one (query, engine) on an unconstrained cluster
/// at replication 1 (scales linearly with the replication factor).
uint64_t MeasurePeak(const std::vector<Triple>& triples,
                     const std::string& query_id, EngineKind kind);

/// \brief Calibrates the shared BSBM budget from the constraint system of
/// Figures 9(a), 9(b) and 12 (see header comment). Exits the process with
/// a diagnostic if the constraints are infeasible at this scale.
Calibration CalibrateBsbmBudget(const std::vector<Triple>& triples);

/// \brief One constraint of a generic budget calibration: the named run's
/// footprint, scaled by the replication factor it will execute under.
struct BudgetConstraint {
  std::string query_id;
  EngineKind engine;
  uint32_t replication = 1;
};

/// \brief Generic budget calibration: measures each constraint's footprint
/// and returns a capacity strictly between every must-pass and every
/// must-fail footprint; cal.feasible is false when no such capacity exists.
Calibration CalibrateBudget(const std::vector<Triple>& triples,
                            const std::vector<BudgetConstraint>& must_pass,
                            const std::vector<BudgetConstraint>& must_fail);

}  // namespace bench
}  // namespace rdfmr

#endif  // RDFMR_BENCH_CALIBRATION_H_
