// Extension experiment (paper Section 6, future directions):
// unbound-property queries with AGGREGATION constraints.
//
// "How many distinct kinds of relationships does each entity have?" is the
// canonical exploration aggregate: COUNT(DISTINCT ?p) over an unbound
// property, grouped by subject, with a HAVING threshold. The aggregation
// runs as one extra MR cycle appended to each engine's plan; the cycle's
// *input* is the engine's final representation — flat n-tuples for
// Pig/Hive vs nested triplegroups for NTGA — so the lazy strategy's
// concise representation pays off once more: combinations are expanded in
// flight by the aggregation mapper and never touch HDFS.

#include <cstdio>

#include "bench/bench_util.h"
#include "query/sparql_parser.h"

namespace rdfmr {
namespace bench {
namespace {

int Main() {
  std::vector<Triple> triples = BenchDataset(DatasetFamily::kBio2Rdf);
  std::printf("Extension: aggregation over unbound-property queries "
              "(%zu triples)\n\n",
              triples.size());

  auto parsed = ParseSparqlQuery("gene-degree", R"(
      SELECT ?g (COUNT(DISTINCT ?p) AS ?n)
      WHERE {
        ?g <label> ?l . ?g <xGO> ?go . ?g ?p ?x .
      }
      GROUP BY ?g
      HAVING (COUNT(DISTINCT ?p) >= 4))");
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse: %s\n", parsed.status().ToString().c_str());
    return 1;
  }
  auto query =
      std::make_shared<const GraphPatternQuery>(std::move(parsed->query));
  AggregateSpec spec = *parsed->aggregate;

  ClusterConfig cluster;
  cluster.num_nodes = 12;
  cluster.replication = 1;
  cluster.disk_per_node = 8ULL << 30;
  cluster.block_size = 1ULL << 20;
  cluster.num_reducers = 8;
  auto dfs = MakeDfs(triples, cluster);

  std::printf("%-20s %4s %12s %14s %14s %10s %8s\n", "engine", "MR",
              "total read", "agg-cycle in", "agg shuffle", "writes",
              "groups");
  ShapeChecks checks;
  uint64_t hive_agg_in = 0, lazy_agg_in = 0;
  size_t hive_groups = 0, lazy_groups = 0;
  double hive_time = 0, lazy_time = 0;
  for (EngineKind kind : PaperEngines()) {
    EngineOptions options;
    options.kind = kind;
    options.cost = BenchCostModel();
    auto exec = RunAggregateQuery(dfs.get(), "base", query, spec, options);
    if (!exec.ok() || !exec->stats.ok()) {
      std::printf("%-20s failed\n", EngineKindToString(kind));
      continue;
    }
    const ExecStats& s = exec->stats;
    const JobMetrics& agg = s.jobs.back();
    std::printf("%-20s %4zu %12s %14s %14s %10s %8zu\n",
                EngineKindToString(kind), s.mr_cycles,
                HumanBytes(s.hdfs_read_bytes).c_str(),
                HumanBytes(agg.input_bytes).c_str(),
                HumanBytes(agg.map_output_bytes).c_str(),
                HumanBytes(s.hdfs_write_bytes).c_str(),
                exec->answers.size());
    if (kind == EngineKind::kHive) {
      hive_agg_in = agg.input_bytes;
      hive_groups = exec->answers.size();
      hive_time = s.modeled_seconds;
    }
    if (kind == EngineKind::kNtgaLazy) {
      lazy_agg_in = agg.input_bytes;
      lazy_groups = exec->answers.size();
      lazy_time = s.modeled_seconds;
    }
  }

  checks.Check("all engines return the same groups",
               hive_groups == lazy_groups && hive_groups > 0);
  checks.Check(
      StringFormat("the aggregation cycle reads far less from NTGA's "
                   "nested output (%.0fx less)",
                   static_cast<double>(hive_agg_in) /
                       static_cast<double>(lazy_agg_in)),
      lazy_agg_in * 3 < hive_agg_in);
  checks.Check("LazyUnnest end-to-end faster than Hive (modeled)",
               lazy_time < hive_time);
  return checks.Summarize();
}

}  // namespace
}  // namespace bench
}  // namespace rdfmr

int main() { return rdfmr::bench::Main(); }
