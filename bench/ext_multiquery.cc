// Extension experiment: multi-query scan sharing.
//
// The paper's related work highlights MRShare's "sharing of map output
// data across grouping operations on a common input relation"; NTGA gets
// that sharing structurally — γ_S(T) does not depend on the query, so a
// *batch* of exploration queries can share one scan and one
// subject-grouping shuffle, with only the (cheap, filtered) join cycles
// run per query. This harness compares a shared batch against running the
// same queries one at a time.

#include <cstdio>

#include "bench/bench_util.h"

namespace rdfmr {
namespace bench {
namespace {

int Main() {
  std::vector<Triple> triples = BenchDataset(DatasetFamily::kBsbm);
  std::printf("Extension: multi-query scan sharing (%zu triples)\n\n",
              triples.size());

  const std::vector<std::string> ids = {"B0", "B1", "B2", "B4", "B1-4bnd"};
  std::vector<std::shared_ptr<const GraphPatternQuery>> queries;
  for (const std::string& id : ids) {
    auto q = GetTestbedQuery(id);
    if (!q.ok()) {
      std::fprintf(stderr, "%s\n", q.status().ToString().c_str());
      return 1;
    }
    queries.push_back(*q);
  }

  ClusterConfig cluster;
  cluster.num_nodes = 12;
  cluster.replication = 1;
  cluster.disk_per_node = 8ULL << 30;
  cluster.block_size = 1ULL << 20;
  cluster.num_reducers = 8;
  auto dfs = MakeDfs(triples, cluster);

  EngineOptions options;
  options.kind = EngineKind::kNtgaLazy;
  options.cost = BenchCostModel();

  // --- One at a time.
  uint64_t solo_reads = 0, solo_shuffle = 0, solo_writes = 0;
  uint32_t solo_scans = 0;
  size_t solo_cycles = 0;
  double solo_time = 0.0;
  std::vector<size_t> solo_answers;
  for (const auto& query : queries) {
    auto exec = RunQuery(dfs.get(), "base", query, options);
    if (!exec.ok() || !exec->stats.ok()) {
      std::fprintf(stderr, "solo run failed\n");
      return 1;
    }
    solo_reads += exec->stats.hdfs_read_bytes;
    solo_shuffle += exec->stats.shuffle_bytes;
    solo_writes += exec->stats.hdfs_write_bytes;
    solo_scans += exec->stats.full_scans;
    solo_cycles += exec->stats.mr_cycles;
    solo_time += exec->stats.modeled_seconds;
    solo_answers.push_back(exec->answers.size());
  }

  // --- As one shared batch.
  auto batch = RunQueryBatch(dfs.get(), "base", queries, options);
  if (!batch.ok() || !batch->stats.ok()) {
    std::fprintf(stderr, "batch failed\n");
    return 1;
  }

  std::printf("%-14s %4s %3s %12s %12s %12s %9s\n", "mode", "MR", "FS",
              "read", "shuffle", "write", "time(s)");
  std::printf("%-14s %4zu %3u %12s %12s %12s %9.1f\n", "one-at-a-time",
              solo_cycles, solo_scans, HumanBytes(solo_reads).c_str(),
              HumanBytes(solo_shuffle).c_str(),
              HumanBytes(solo_writes).c_str(), solo_time);
  std::printf("%-14s %4zu %3u %12s %12s %12s %9.1f\n", "shared batch",
              batch->stats.mr_cycles, batch->stats.full_scans,
              HumanBytes(batch->stats.hdfs_read_bytes).c_str(),
              HumanBytes(batch->stats.shuffle_bytes).c_str(),
              HumanBytes(batch->stats.hdfs_write_bytes).c_str(),
              batch->stats.modeled_seconds);

  ShapeChecks checks;
  checks.Check(StringFormat("batch scans the input once (vs %u solo scans)",
                            solo_scans),
               batch->stats.full_scans == 1);
  checks.Check(
      StringFormat("batch saves %zu grouping cycles",
                   solo_cycles - batch->stats.mr_cycles),
      batch->stats.mr_cycles == 1 + (solo_cycles - queries.size()));
  checks.Check(
      StringFormat("batch reads %.0f%% less",
                   100.0 * (1.0 - static_cast<double>(
                                      batch->stats.hdfs_read_bytes) /
                                      static_cast<double>(solo_reads))),
      batch->stats.hdfs_read_bytes < solo_reads);
  checks.Check(
      StringFormat("batch shuffles %.0f%% less (one grouping shuffle)",
                   100.0 * (1.0 - static_cast<double>(
                                      batch->stats.shuffle_bytes) /
                                      static_cast<double>(solo_shuffle))),
      batch->stats.shuffle_bytes < solo_shuffle);
  checks.Check("batch is faster end-to-end (modeled)",
               batch->stats.modeled_seconds < solo_time);
  bool same_answers = batch->answers.size() == solo_answers.size();
  for (size_t q = 0; same_answers && q < solo_answers.size(); ++q) {
    same_answers = batch->answers[q].size() == solo_answers[q];
  }
  checks.Check("per-query answers identical to solo runs", same_answers);
  return checks.Summarize();
}

}  // namespace
}  // namespace bench
}  // namespace rdfmr

int main() { return rdfmr::bench::Main(); }
