// Figure 3 (case study): evaluation of different groupings of star-joins
// for two-star queries Q1a/Q1b (O-S), Q2a/Q2b (O-S), Q3a/Q3b (O-O) on the
// BSBM-like dataset.
//
// Paper shape (MR = MapReduce cycles, FS = full scans of the triple
// relation):
//   SJ-per-cycle : MR=3 for all queries, FS=2
//   Sel-SJ-first : MR=2, FS=2 for O-S joins; MR=3, FS=3 for O-O joins
//   NTGA grouping: MR=2, FS=1 for all queries — and fastest overall.

#include <cstdio>

#include "bench/bench_util.h"

namespace rdfmr {
namespace bench {
namespace {

int Main() {
  std::vector<Triple> triples = BenchDataset(DatasetFamily::kBsbm);
  std::printf("Fig 3: groupings of star-joins (%zu triples)\n",
              triples.size());

  ClusterConfig roomy;
  roomy.num_nodes = 10;
  roomy.replication = 1;
  roomy.disk_per_node = 8ULL << 30;
  roomy.block_size = 1ULL << 20;
  roomy.num_reducers = 8;
  auto dfs = MakeDfs(triples, roomy);

  struct Plan {
    const char* name;
    EngineOptions options;
  };
  std::vector<Plan> plans;
  {
    EngineOptions sj_per_cycle;
    sj_per_cycle.kind = EngineKind::kHive;
    sj_per_cycle.grouping = RelationalGrouping::kStarPerCycle;
    plans.push_back({"SJ-per-cycle", sj_per_cycle});
    EngineOptions sel_sj;
    sel_sj.kind = EngineKind::kHive;
    sel_sj.grouping = RelationalGrouping::kSelSJFirst;
    plans.push_back({"Sel-SJ-first", sel_sj});
    EngineOptions ntga;
    ntga.kind = EngineKind::kNtgaLazy;
    plans.push_back({"NTGA", ntga});
  }

  const std::vector<std::string> os_queries = {"Q1a", "Q1b", "Q2a", "Q2b"};
  const std::vector<std::string> oo_queries = {"Q3a", "Q3b"};
  std::vector<std::string> queries = os_queries;
  queries.insert(queries.end(), oo_queries.begin(), oo_queries.end());

  std::vector<Row> rows;
  std::map<std::string, ExecStats> results;
  for (const std::string& q : queries) {
    for (Plan& plan : plans) {
      plan.options.decode_answers = false;
      plan.options.cost = BenchCostModel();
      ExecStats stats = RunOne(dfs.get(), q, plan.options);
      stats.engine = plan.name;  // label rows by plan, not engine
      results[q + "/" + plan.name] = stats;
      rows.push_back(Row{q, plan.name, stats});
    }
  }
  PrintTable("Fig 3: star-join grouping case study", rows);

  auto get = [&](const std::string& q, const char* plan) -> ExecStats& {
    return results.at(q + "/" + plan);
  };

  ShapeChecks checks;
  for (const std::string& q : queries) {
    checks.Check(q + ": SJ-per-cycle uses 3 MR cycles, 2 full scans",
                 get(q, "SJ-per-cycle").mr_cycles == 3 &&
                     get(q, "SJ-per-cycle").full_scans == 2);
    checks.Check(q + ": NTGA uses 2 MR cycles, 1 full scan",
                 get(q, "NTGA").mr_cycles == 2 &&
                     get(q, "NTGA").full_scans == 1);
    checks.Check(q + ": NTGA fastest of the three groupings (modeled)",
                 get(q, "NTGA").modeled_seconds <
                         get(q, "SJ-per-cycle").modeled_seconds &&
                     get(q, "NTGA").modeled_seconds <
                         get(q, "Sel-SJ-first").modeled_seconds);
  }
  for (const std::string& q : os_queries) {
    checks.Check(q + " (O-S): Sel-SJ-first folds into 2 cycles, 2 scans",
                 get(q, "Sel-SJ-first").mr_cycles == 2 &&
                     get(q, "Sel-SJ-first").full_scans == 2);
  }
  for (const std::string& q : oo_queries) {
    checks.Check(q + " (O-O): Sel-SJ-first stays at 3 cycles, 3 scans",
                 get(q, "Sel-SJ-first").mr_cycles == 3 &&
                     get(q, "Sel-SJ-first").full_scans == 3);
  }
  return checks.Summarize();
}

}  // namespace
}  // namespace bench
}  // namespace rdfmr

int main() { return rdfmr::bench::Main(); }
