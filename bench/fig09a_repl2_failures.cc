// Figure 9(a): varying join structures B0-B4 on the BSBM-like dataset with
// HDFS replication factor 2 — demonstrating "how critical it is to
// concisely represent intermediate results".
//
// Paper shape: with replicas doubling every materialization, Pig and Hive
// run out of disk during the last job for ALL five queries; EagerUnnest
// completes B0-B2 (concise multi-valued subgraphs) but fails B3 and B4
// (the β-unnest materializes the redundancy at the star-join phase);
// LazyUnnest completes everything.

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "bench/calibration.h"
#include "dfs/fault_plan.h"
#include "testing/invariants.h"

namespace rdfmr {
namespace bench {
namespace {

int Main() {
  std::vector<Triple> triples = BenchDataset(DatasetFamily::kBsbm);
  std::printf("Fig 9(a): B0-B4, BSBM-like dataset (%zu triples, %s), "
              "replication 2\n",
              triples.size(), HumanBytes(DatasetBytes(triples)).c_str());

  Calibration cal = CalibrateBsbmBudget(triples);
  std::printf("calibrated budget: %s total\n",
              HumanBytes(cal.capacity).c_str());

  ClusterConfig cluster;
  cluster.num_nodes = 12;
  cluster.replication = 2;
  cluster.disk_per_node = cal.capacity / cluster.num_nodes + 1;
  cluster.block_size = std::max<uint64_t>(4096, cluster.disk_per_node / 64);
  cluster.num_reducers = 8;

  auto dfs = MakeDfs(triples, cluster);
  const std::vector<std::string> queries = {"B0", "B1", "B2", "B3", "B4"};
  std::vector<Row> rows;
  for (const std::string& q : queries) {
    for (EngineKind kind : PaperEngines()) {
      EngineOptions options;
      options.kind = kind;
      options.decode_answers = false;
      options.cost = BenchCostModel();
      rows.push_back(
          Row{q, EngineKindToString(kind), RunOne(dfs.get(), q, options)});
    }
  }
  PrintTable("Fig 9(a): execution under replication 2", rows);

  auto stats = [&](const std::string& q, const char* engine) -> ExecStats* {
    for (Row& row : rows) {
      if (row.query == q && row.stats.engine == engine) return &row.stats;
    }
    return nullptr;
  };

  ShapeChecks checks;
  for (const std::string& q : queries) {
    checks.Check(q + " fails on Pig (out of disk)",
                 stats(q, "Pig")->status.IsOutOfSpace());
    checks.Check(q + " fails on Hive (out of disk)",
                 stats(q, "Hive")->status.IsOutOfSpace());
    checks.Check(q + " completes on LazyUnnest",
                 stats(q, "LazyUnnest")->ok());
  }
  for (const std::string q : {"B0", "B1", "B2"}) {
    checks.Check(q + " completes on EagerUnnest",
                 stats(q, "EagerUnnest")->ok());
  }
  for (const std::string q : {"B3", "B4"}) {
    checks.Check(q + " fails on EagerUnnest (redundancy materialized at "
                     "the star-join phase)",
                 stats(q, "EagerUnnest")->status.IsOutOfSpace());
  }
  // Pig/Hive fail during the LAST job (the join between stars), as the
  // paper reports: earlier cycles fit, the accumulated state does not.
  // B3 is the exception the paper itself calls out — its double
  // unbound-property star already materializes too much at the star-join
  // computation phase.
  for (const std::string q : {"B0", "B1", "B2", "B4"}) {
    const ExecStats* pig = stats(q, "Pig");
    checks.Check(q + ": Pig fails at the final join job",
                 pig->failed_job_index ==
                     static_cast<int>(pig->planned_cycles) - 1);
  }
  checks.Check(
      "B3: Pig fails no later than the star-join phase blow-up",
      stats("B3", "Pig")->failed_job_index >= 0);

  // --- Injected-fault sweep: the paper's failed runs are out-of-disk
  // deaths; transient I/O faults, by contrast, are survivable with task
  // retry. Re-run LazyUnnest (the engine that completes everything above)
  // under seeded probabilistic read/write faults and report survived vs
  // failed runs. A survivor must be byte-identical to its fault-free run
  // on every deterministic stat.
  // A LazyUnnest run makes only a handful of DFS ops, so the per-op
  // probabilities must be high enough that 15 runs reliably draw faults.
  std::printf("\nInjected-fault sweep: LazyUnnest, pread=0.08 pwrite=0.04, "
              "max 6 attempts\n");
  std::printf("%-6s %-6s %-10s %10s %10s %12s\n", "query", "seed", "outcome",
              "retried", "attempts", "wasted");
  uint64_t survived = 0, exhausted = 0, other_failures = 0;
  uint64_t mismatched_survivors = 0, total_failed_attempts = 0;
  for (const std::string& q : queries) {
    for (uint64_t seed : {11ULL, 22ULL, 33ULL}) {
      FaultPlan plan;
      plan.seed = seed;
      plan.read_failure_prob = 0.08;
      plan.write_failure_prob = 0.04;
      Status armed = dfs->SetFaultPlan(plan);
      if (!armed.ok()) {
        std::fprintf(stderr, "%s\n", armed.ToString().c_str());
        return 1;
      }
      EngineOptions options;
      options.kind = EngineKind::kNtgaLazy;
      options.decode_answers = false;
      options.cost = BenchCostModel();
      options.runtime.max_attempts = 6;
      ExecStats faulty = RunOne(dfs.get(), q, options);
      // The engine resets DFS metrics per run; the injected-failure count
      // survives in the retry accounting (attempts beyond one per op).
      total_failed_attempts +=
          faulty.task_attempts - faulty.tasks_retried;
      dfs->ClearFaultPlan();

      const char* outcome = "survived";
      if (faulty.ok()) {
        ++survived;
        if (!fuzz::CompareStatsIgnoringWallTimes(*stats(q, "LazyUnnest"),
                                                 faulty)
                 .empty()) {
          ++mismatched_survivors;
          outcome = "MISMATCH";
        }
      } else if (faulty.status.IsIoError() ||
                 faulty.status.IsUnavailable()) {
        ++exhausted;
        outcome = "exhausted";
      } else {
        ++other_failures;
        outcome = "FAILED";
      }
      std::printf("%-6s %-6llu %-10s %10llu %10llu %12s\n", q.c_str(),
                  (unsigned long long)seed, outcome,
                  (unsigned long long)faulty.tasks_retried,
                  (unsigned long long)faulty.task_attempts,
                  HumanBytes(faulty.wasted_bytes).c_str());
    }
  }
  std::printf("fault sweep: %llu survived, %llu exhausted retries, "
              "%llu other failure(s), %llu failed attempt(s) retried\n",
              (unsigned long long)survived, (unsigned long long)exhausted,
              (unsigned long long)other_failures,
              (unsigned long long)total_failed_attempts);
  checks.Check("fault sweep injected at least one fault",
               total_failed_attempts > 0);
  checks.Check("no faulty run failed for a non-transient reason",
               other_failures == 0);
  checks.Check("at least one faulty run survived via retries",
               survived > 0);
  checks.Check("every survivor matched its fault-free run byte-for-byte",
               mismatched_survivors == 0);
  return checks.Summarize();
}

}  // namespace
}  // namespace bench
}  // namespace rdfmr

int main() { return rdfmr::bench::Main(); }
