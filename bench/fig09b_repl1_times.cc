// Figure 9(b): varying join structures B0-B4 on the BSBM-like dataset,
// HDFS replication factor 1 — execution comparison of Pig, Hive,
// EagerUnnest and LazyUnnest.
//
// Paper shape: all approaches complete B0-B2; Pig and Hive fail B3 and B4
// (disk exhaustion from redundant intermediate results); LazyUnnest beats
// EagerUnnest on B1 (partial β-unnest cuts shuffle) and on B3/B4 keeps the
// unbound component nested to the end (80% / 61% fewer HDFS writes).

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "bench/calibration.h"
#include "common/strings.h"

namespace rdfmr {
namespace bench {
namespace {

int Main() {
  std::vector<Triple> triples = BenchDataset(DatasetFamily::kBsbm);
  uint64_t base_bytes = DatasetBytes(triples);
  std::printf("Fig 9(b): B0-B4, BSBM-like dataset (%zu triples, %s), "
              "replication 1\n",
              triples.size(), HumanBytes(base_bytes).c_str());

  const std::vector<std::string> queries = {"B0", "B1", "B2", "B3", "B4"};

  // Disk budget calibrated so the paper's pass/fail pattern is *measurable*:
  // between the largest footprint that must fit and the smallest that must
  // not (see EXPERIMENTS.md).
  Calibration cal = CalibrateBsbmBudget(triples);
  std::printf("calibrated budget: %s total (largest-passing %s, "
              "smallest-failing %s)\n",
              HumanBytes(cal.capacity).c_str(),
              HumanBytes(cal.max_must_pass).c_str(),
              HumanBytes(cal.min_must_fail).c_str());

  ClusterConfig cluster;
  cluster.num_nodes = 12;
  cluster.replication = 1;
  cluster.disk_per_node = cal.capacity / cluster.num_nodes + 1;
  // Keep the paper's ~80 blocks/node ratio so placement is not the binding
  // constraint.
  cluster.block_size = std::max<uint64_t>(4096, cluster.disk_per_node / 64);
  cluster.num_reducers = 8;

  auto dfs = MakeDfs(triples, cluster);
  std::vector<Row> rows;
  for (const std::string& q : queries) {
    for (EngineKind kind : PaperEngines()) {
      EngineOptions options;
      options.kind = kind;
      options.decode_answers = false;
      options.cost = BenchCostModel();
      rows.push_back(Row{q, EngineKindToString(kind),
                         RunOne(dfs.get(), q, options)});
    }
  }
  PrintTable("Fig 9(b): execution under replication 1", rows);

  auto stats = [&](const std::string& q, const char* engine) -> ExecStats* {
    for (Row& row : rows) {
      if (row.query == q && row.stats.engine == engine) return &row.stats;
    }
    return nullptr;
  };

  ShapeChecks checks;
  for (const std::string q : {"B0", "B1", "B2"}) {
    for (const char* e : {"Pig", "Hive", "EagerUnnest", "LazyUnnest"}) {
      checks.Check(q + std::string(" completes on ") + e,
                   stats(q, e)->ok());
    }
  }
  for (const std::string q : {"B3", "B4"}) {
    checks.Check(q + " fails on Pig (out of disk)",
                 !stats(q, "Pig")->ok() &&
                     stats(q, "Pig")->status.IsOutOfSpace());
    checks.Check(q + " fails on Hive (out of disk)",
                 !stats(q, "Hive")->ok() &&
                     stats(q, "Hive")->status.IsOutOfSpace());
    checks.Check(q + " completes on EagerUnnest",
                 stats(q, "EagerUnnest")->ok());
    checks.Check(q + " completes on LazyUnnest",
                 stats(q, "LazyUnnest")->ok());
  }
  checks.Check("B1: LazyUnnest shuffles less than EagerUnnest",
               stats("B1", "LazyUnnest")->shuffle_bytes <
                   stats("B1", "EagerUnnest")->shuffle_bytes);
  checks.Check("B1: LazyUnnest faster than EagerUnnest (modeled)",
               stats("B1", "LazyUnnest")->modeled_seconds <
                   stats("B1", "EagerUnnest")->modeled_seconds);
  checks.Check("B1: LazyUnnest faster than Pig and Hive (modeled)",
               stats("B1", "LazyUnnest")->modeled_seconds <
                       stats("B1", "Pig")->modeled_seconds &&
                   stats("B1", "LazyUnnest")->modeled_seconds <
                       stats("B1", "Hive")->modeled_seconds);
  {
    double lazy = static_cast<double>(
        stats("B3", "LazyUnnest")->hdfs_write_bytes);
    double eager = static_cast<double>(
        stats("B3", "EagerUnnest")->hdfs_write_bytes);
    checks.Check(StringFormat("B3: LazyUnnest writes far less than "
                              "EagerUnnest (paper ~80%%; measured %.0f%%)",
                              100.0 * (1.0 - lazy / eager)),
                 lazy < 0.5 * eager);
  }
  {
    double lazy = static_cast<double>(
        stats("B4", "LazyUnnest")->hdfs_write_bytes);
    double eager = static_cast<double>(
        stats("B4", "EagerUnnest")->hdfs_write_bytes);
    checks.Check(StringFormat("B4: LazyUnnest writes far less than "
                              "EagerUnnest (paper ~61%%; measured %.0f%%)",
                              100.0 * (1.0 - lazy / eager)),
                 lazy < 0.6 * eager);
    checks.Check("B4: LazyUnnest faster than EagerUnnest (modeled)",
                 stats("B4", "LazyUnnest")->modeled_seconds <
                     stats("B4", "EagerUnnest")->modeled_seconds);
  }
  return checks.Summarize();
}

}  // namespace
}  // namespace bench
}  // namespace rdfmr

int main() { return rdfmr::bench::Main(); }
