// Figure 9(c): execution time comparison while varying the number of
// bound-property triple patterns (B1-3bnd .. B1-6bnd) under the tight disk
// budget.
//
// Paper shape: Pig fails for all queries beyond three bound-property
// subpatterns (its per-operand scans and redundant n-tuples grow with the
// arity); LazyUnnest(φ1K) consistently outperforms the other approaches,
// about 25% faster than Hive.

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "bench/calibration.h"

namespace rdfmr {
namespace bench {
namespace {

int Main() {
  std::vector<Triple> triples = BenchDataset(DatasetFamily::kBsbm);
  std::printf("Fig 9(c): execution time, varying bound arity "
              "(%zu triples)\n",
              triples.size());

  // Same cluster budget as Figures 9(a)/9(b). The paper reports Pig failing
  // beyond 3 bound properties; at bench scale the relational footprint
  // grows more slowly with arity, so the crossing lands at the largest
  // arity instead (documented deviation in EXPERIMENTS.md) — the *trend*
  // (Pig's footprint grows fastest and crosses the budget first, NTGA
  // unaffected) is what is checked.
  const std::vector<std::string> queries = {"B1-3bnd", "B1-4bnd", "B1-5bnd",
                                            "B1-6bnd"};
  Calibration cal = CalibrateBsbmBudget(triples);
  uint64_t capacity = cal.capacity;
  std::printf("budget: %s total (shared with Fig 9a/9b)\n",
              HumanBytes(capacity).c_str());

  ClusterConfig cluster;
  cluster.num_nodes = 12;
  cluster.replication = 1;
  cluster.disk_per_node = capacity / cluster.num_nodes + 1;
  cluster.block_size = std::max<uint64_t>(4096, cluster.disk_per_node / 64);
  cluster.num_reducers = 8;
  auto dfs = MakeDfs(triples, cluster);

  std::vector<Row> rows;
  for (const std::string& q : queries) {
    for (EngineKind kind : PaperEngines()) {
      EngineOptions options;
      options.kind = kind;
      options.decode_answers = false;
      options.cost = BenchCostModel();
      options.phi_partitions = 1024;  // the paper's LazyUnnest(φ1K)
      rows.push_back(
          Row{q, EngineKindToString(kind), RunOne(dfs.get(), q, options)});
    }
  }
  PrintTable("Fig 9(c): execution times while varying bound-property count",
             rows);

  auto stats = [&](const std::string& q, const char* engine) -> ExecStats* {
    for (Row& row : rows) {
      if (row.query == q && row.stats.engine == engine) return &row.stats;
    }
    return nullptr;
  };

  ShapeChecks checks;
  checks.Check("B1-3bnd completes on Pig", stats("B1-3bnd", "Pig")->ok());
  checks.Check("Pig fails once the bound arity grows (paper: beyond 3bnd; "
               "measured at the largest arity)",
               stats("B1-6bnd", "Pig")->status.IsOutOfSpace());
  {
    bool monotone = true;
    uint64_t prev = 0;
    for (const std::string& q : queries) {
      const ExecStats* pig = stats(q, "Pig");
      if (!pig->ok()) break;  // failed runs have no total-writes sample
      if (pig->hdfs_write_bytes < prev) monotone = false;
      prev = pig->hdfs_write_bytes;
    }
    checks.Check("Pig writes grow monotonically with bound arity",
                 monotone);
  }
  for (const std::string& q : queries) {
    checks.Check(q + " completes on Hive / Eager / Lazy",
                 stats(q, "Hive")->ok() && stats(q, "EagerUnnest")->ok() &&
                     stats(q, "LazyUnnest")->ok());
    double lazy = stats(q, "LazyUnnest")->modeled_seconds;
    double hive = stats(q, "Hive")->modeled_seconds;
    checks.Check(StringFormat("%s: LazyUnnest faster than Hive "
                              "(paper ~25%%; measured %.0f%%)",
                              q.c_str(), 100.0 * (1.0 - lazy / hive)),
                 lazy < hive);
    checks.Check(
        q + ": LazyUnnest no slower than EagerUnnest",
        stats(q, "LazyUnnest")->modeled_seconds <=
            stats(q, "EagerUnnest")->modeled_seconds + 1e-9);
  }
  return checks.Summarize();
}

}  // namespace
}  // namespace bench
}  // namespace rdfmr

int main() { return rdfmr::bench::Main(); }
