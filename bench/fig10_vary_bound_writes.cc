// Figure 10: total HDFS writes for unbound-property queries with a varying
// number of bound-property triple patterns (B1-3bnd .. B1-6bnd).
//
// Paper shape: relational approaches produce every combination of the
// bound component with each unbound match — reduce output grows with the
// bound arity — while lazy β-unnesting keeps the result concise to the end
// (~80-86% fewer HDFS writes, near-constant reduce output across arities).

#include <cstdio>

#include "bench/bench_util.h"

namespace rdfmr {
namespace bench {
namespace {

int Main() {
  std::vector<Triple> triples = BenchDataset(DatasetFamily::kBsbm);
  std::printf("Fig 10: HDFS writes, varying bound arity (%zu triples)\n",
              triples.size());

  ClusterConfig roomy;
  roomy.num_nodes = 12;
  roomy.replication = 1;
  roomy.disk_per_node = 8ULL << 30;
  roomy.block_size = 1ULL << 20;
  roomy.num_reducers = 8;
  auto dfs = MakeDfs(triples, roomy);

  const std::vector<std::string> queries = {"B1-3bnd", "B1-4bnd", "B1-5bnd",
                                            "B1-6bnd"};
  std::vector<Row> rows;
  for (const std::string& q : queries) {
    for (EngineKind kind : PaperEngines()) {
      EngineOptions options;
      options.kind = kind;
      options.decode_answers = false;
      options.cost = BenchCostModel();
      rows.push_back(
          Row{q, EngineKindToString(kind), RunOne(dfs.get(), q, options)});
    }
  }
  PrintTable("Fig 10: HDFS writes while varying bound-property count", rows);

  auto stats = [&](const std::string& q, const char* engine) -> ExecStats* {
    for (Row& row : rows) {
      if (row.query == q && row.stats.engine == engine) return &row.stats;
    }
    return nullptr;
  };

  // The paper's figure tracks the writes shipped between MR cycles: lazy
  // β-unnesting keeps results concise "till the end of map phase of the
  // last MR job", so its reduce (intermediate) output stays near-constant
  // while Pig/Hive reproduce the bound component per combination.
  ShapeChecks checks;
  for (const std::string& q : queries) {
    double lazy = static_cast<double>(
        stats(q, "LazyUnnest")->intermediate_write_bytes);
    double pig =
        static_cast<double>(stats(q, "Pig")->intermediate_write_bytes);
    double hive =
        static_cast<double>(stats(q, "Hive")->intermediate_write_bytes);
    checks.Check(
        StringFormat("%s: LazyUnnest intermediate writes >=80%% less than "
                     "Pig (paper 80-86%%; measured %.0f%%)",
                     q.c_str(), 100.0 * (1.0 - lazy / pig)),
        lazy < 0.2 * pig);
    checks.Check(
        StringFormat("%s: LazyUnnest intermediate writes >=80%% less than "
                     "Hive (measured %.0f%%)",
                     q.c_str(), 100.0 * (1.0 - lazy / hive)),
        lazy < 0.2 * hive);
    // Final answers too: nested joined triplegroups beat flat n-tuples.
    checks.Check(q + ": LazyUnnest final output smaller than Pig/Hive",
                 stats(q, "LazyUnnest")->final_output_bytes <
                     stats(q, "Pig")->final_output_bytes);
  }
  // Relational reduce output grows with bound arity; Lazy stays near-flat.
  {
    double pig3 = static_cast<double>(
        stats("B1-3bnd", "Pig")->intermediate_write_bytes);
    double pig6 = static_cast<double>(
        stats("B1-6bnd", "Pig")->intermediate_write_bytes);
    checks.Check("Pig intermediate writes grow with bound arity "
                 "(6bnd > 1.2x 3bnd)",
                 pig6 > 1.2 * pig3);
    double lazy3 = static_cast<double>(
        stats("B1-3bnd", "LazyUnnest")->intermediate_write_bytes);
    double lazy6 = static_cast<double>(
        stats("B1-6bnd", "LazyUnnest")->intermediate_write_bytes);
    checks.Check(StringFormat("LazyUnnest reduce output near-constant "
                              "across arity (6bnd/3bnd = %.2f)",
                              lazy6 / lazy3),
                 lazy6 < 1.15 * lazy3);
  }
  return checks.Summarize();
}

}  // namespace
}  // namespace bench
}  // namespace rdfmr

int main() { return rdfmr::bench::Main(); }
