// Figure 11: choice of lazy β-unnesting strategy — execution of the last MR
// cycle (MR_J1), where the join involving the unbound-property triple
// pattern is computed, under lazy FULL vs lazy PARTIAL β-unnest.
//
// Paper shape: queries joining on a fully *unbound* object (the B1 series)
// benefit from partial β-unnest (φ_m keeps same-reducer triplegroups
// nested through the shuffle); for *partially-bound* objects (A3-style,
// small candidate sets) a full β-unnest is already sufficient — the two
// strategies converge. This is the empirical basis for the paper's
// LazyUnnest policy (rule R5). A φ_m sweep is included as an ablation.

#include <cstdio>

#include "bench/bench_util.h"

namespace rdfmr {
namespace bench {
namespace {

struct CycleStats {
  uint64_t shuffle = 0;       // map output of the join cycle
  uint64_t map_records = 0;
  double seconds = 0.0;
  bool ok = false;
};

CycleStats LastCycle(const ExecStats& stats) {
  CycleStats out;
  if (!stats.ok() || stats.jobs.empty()) return out;
  const JobMetrics& last = stats.jobs.back();
  out.shuffle = last.map_output_bytes;
  out.map_records = last.map_output_records;
  out.ok = true;
  return out;
}

int Main() {
  std::printf("Fig 11: lazy full vs lazy partial beta-unnest, last MR "
              "cycle of the unbound join\n");

  ClusterConfig roomy;
  roomy.num_nodes = 12;
  roomy.replication = 1;
  roomy.disk_per_node = 8ULL << 30;
  roomy.block_size = 1ULL << 20;
  roomy.num_reducers = 8;

  ShapeChecks checks;

  // --- B1 series: join on an unbound object.
  {
    std::vector<Triple> triples = BenchDataset(DatasetFamily::kBsbm);
    auto dfs = MakeDfs(triples, roomy);
    std::printf("\n%-10s %-10s %14s %12s %10s\n", "query", "strategy",
                "MRJ1 shuffle", "MRJ1 recs", "time(s)");
    for (const std::string q :
         {"B1", "B1-3bnd", "B1-4bnd", "B1-5bnd", "B1-6bnd"}) {
      CycleStats full, partial;
      for (bool use_partial : {false, true}) {
        EngineOptions options;
        options.kind = use_partial ? EngineKind::kNtgaLazyPartial
                                   : EngineKind::kNtgaLazyFull;
        options.phi_partitions = 1024;
        options.decode_answers = false;
        options.cost = BenchCostModel();
        ExecStats stats = RunOne(dfs.get(), q, options);
        CycleStats cycle = LastCycle(stats);
        cycle.seconds = stats.modeled_seconds;
        std::printf("%-10s %-10s %14s %12llu %10.1f\n", q.c_str(),
                    use_partial ? "partial" : "full",
                    HumanBytes(cycle.shuffle).c_str(),
                    static_cast<unsigned long long>(cycle.map_records),
                    cycle.seconds);
        (use_partial ? partial : full) = cycle;
      }
      checks.Check(
          StringFormat("%s (unbound object): partial shuffles less than "
                       "full (%.0f%% less)",
                       q.c_str(),
                       100.0 * (1.0 - static_cast<double>(partial.shuffle) /
                                          static_cast<double>(full.shuffle))),
          partial.ok && full.ok && partial.shuffle < full.shuffle);
    }

    // Ablation: φ_m sweep on B1 — fewer partitions merge more triplegroups
    // through the shuffle, at the price of larger reduce groups.
    std::printf("\nφ_m ablation on B1 (partial β-unnest):\n");
    uint64_t prev_shuffle = 0;
    bool monotone = true;
    for (uint32_t m : {4096u, 256u, 16u}) {
      EngineOptions options;
      options.kind = EngineKind::kNtgaLazyPartial;
      options.phi_partitions = m;
      options.decode_answers = false;
      options.cost = BenchCostModel();
      ExecStats stats = RunOne(dfs.get(), "B1", options);
      CycleStats cycle = LastCycle(stats);
      std::printf("  phi_m=%-6u MRJ1 shuffle %s\n", m,
                  HumanBytes(cycle.shuffle).c_str());
      if (prev_shuffle != 0 && cycle.shuffle > prev_shuffle) {
        monotone = false;
      }
      prev_shuffle = cycle.shuffle;
    }
    checks.Check("B1: shuffle volume shrinks as phi_m decreases (more "
                 "nesting per partition)",
                 monotone);
  }

  // --- Partially-bound object join (A3-style): full suffices.
  {
    std::vector<Triple> triples = BenchDataset(DatasetFamily::kBio2Rdf);
    auto dfs = MakeDfs(triples, roomy);
    CycleStats full, partial;
    for (bool use_partial : {false, true}) {
      EngineOptions options;
      options.kind = use_partial ? EngineKind::kNtgaLazyPartial
                                 : EngineKind::kNtgaLazyFull;
      options.phi_partitions = 1024;
      options.decode_answers = false;
      options.cost = BenchCostModel();
      ExecStats stats = RunOne(dfs.get(), "A3", options);
      CycleStats cycle = LastCycle(stats);
      cycle.seconds = stats.modeled_seconds;
      std::printf("%-10s %-10s %14s %12llu %10.1f\n", "A3",
                  use_partial ? "partial" : "full",
                  HumanBytes(cycle.shuffle).c_str(),
                  static_cast<unsigned long long>(cycle.map_records),
                  cycle.seconds);
      (use_partial ? partial : full) = cycle;
    }
    double ratio = static_cast<double>(partial.shuffle) /
                   static_cast<double>(full.shuffle);
    checks.Check(
        StringFormat("A3 (partially-bound object): full ~= partial "
                     "(shuffle ratio %.2f)",
                     ratio),
        full.ok && partial.ok && ratio > 0.8 && ratio < 1.25);
  }
  return checks.Summarize();
}

}  // namespace
}  // namespace bench
}  // namespace rdfmr

int main() { return rdfmr::bench::Main(); }
