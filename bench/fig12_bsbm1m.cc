// Figure 12: the BSBM query set B0-B6 on the smaller BSBM-1M stand-in
// (half the products of the Fig. 9 dataset), replication factor 2, on the
// same cluster budget as Figures 9(a)/(b).
//
// Paper shape: Pig and Hive fail B3 and B4 (redundant star-join results
// ripple into the next MR job) and the more complex B5 and B6; the NTGA
// approaches execute everything; LazyUnnest markedly improves on
// EagerUnnest for B3/B4 (54%/65% in the paper) and beats Pig/Hive on B2
// (~75% in the paper).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "bench/bench_util.h"
#include "bench/calibration.h"
#include "common/json.h"

namespace rdfmr {
namespace bench {
namespace {

// Emits the BENCH_fig12.json artifact the CI bench gate diffs against its
// checked-in baseline. Every reported number is deterministic (modeled
// seconds, byte counters) — a >tolerance drift means the plans or the
// cost model actually changed, never scheduler noise.
int WriteReport(const std::vector<Row>& rows, size_t num_triples,
                bool small) {
  JsonValue report = JsonValue::MakeObject();
  report.Set("bench", "fig12_bsbm1m");
  report.Set("num_triples", static_cast<uint64_t>(num_triples));
  report.Set("small", small);
  JsonValue cells = JsonValue::MakeArray();
  for (const Row& row : rows) {
    JsonValue cell = JsonValue::MakeObject();
    cell.Set("query", row.query);
    cell.Set("engine", row.engine);
    cell.Set("ok", row.stats.ok());
    cell.Set("mr_cycles", static_cast<uint64_t>(row.stats.mr_cycles));
    cell.Set("modeled_seconds", row.stats.modeled_seconds);
    cell.Set("hdfs_read_bytes", row.stats.hdfs_read_bytes);
    cell.Set("hdfs_write_bytes", row.stats.hdfs_write_bytes);
    cell.Set("shuffle_bytes", row.stats.shuffle_bytes);
    cells.Append(std::move(cell));
  }
  report.Set("cells", std::move(cells));
  std::ofstream out("BENCH_fig12.json");
  out << report.Dump() << "\n";
  if (!out) {
    std::fprintf(stderr, "failed to write BENCH_fig12.json\n");
    return 1;
  }
  std::printf("\nwrote BENCH_fig12.json\n");
  return 0;
}

// CI configuration: a fraction of the full scale on a roomy cluster (no
// disk-pressure failures — the gate tracks cost drift, not the paper
// shapes) so the whole sweep stays in CI-friendly time.
int SmallMain() {
  std::vector<Triple> triples = BsbmAtScale(150);
  std::printf("Fig 12 (--small CI gate): B0-B2 on %zu triples (%s)\n",
              triples.size(), HumanBytes(DatasetBytes(triples)).c_str());

  ClusterConfig cluster;
  cluster.num_nodes = 8;
  cluster.replication = 2;
  cluster.disk_per_node = 256ULL << 20;
  cluster.block_size = 4096;
  cluster.num_reducers = 4;
  auto dfs = MakeDfs(triples, cluster);

  std::vector<Row> rows;
  bool all_ok = true;
  for (const std::string q : {"B0", "B1", "B2"}) {
    for (EngineKind kind : PaperEngines()) {
      EngineOptions options;
      options.kind = kind;
      options.decode_answers = false;
      options.cost = BenchCostModel();
      rows.push_back(
          Row{q, EngineKindToString(kind), RunOne(dfs.get(), q, options)});
      all_ok = all_ok && rows.back().stats.ok();
    }
  }
  PrintTable("Fig 12 (small): BSBM stand-in on a roomy cluster", rows);
  if (!all_ok) {
    std::fprintf(stderr, "a run failed on the roomy small-scale cluster\n");
    return 1;
  }
  return WriteReport(rows, triples.size(), /*small=*/true);
}

int Main() {
  // Budget calibrated on the full-scale dataset (shared with Fig 9).
  std::vector<Triple> full = BenchDataset(DatasetFamily::kBsbm);
  Calibration cal = CalibrateBsbmBudget(full);

  std::vector<Triple> triples = BsbmAtScale(600);  // the "BSBM-1M" stand-in
  std::printf("Fig 12: B0-B6 on BSBM-1M stand-in (%zu triples, %s), "
              "replication 2, budget %s\n",
              triples.size(), HumanBytes(DatasetBytes(triples)).c_str(),
              HumanBytes(cal.capacity).c_str());

  ClusterConfig cluster;
  cluster.num_nodes = 12;
  cluster.replication = 2;
  cluster.disk_per_node = cal.capacity / cluster.num_nodes + 1;
  cluster.block_size = std::max<uint64_t>(4096, cluster.disk_per_node / 64);
  cluster.num_reducers = 8;
  auto dfs = MakeDfs(triples, cluster);

  const std::vector<std::string> queries = {"B0", "B1", "B2", "B3",
                                            "B4", "B5", "B6"};
  std::vector<Row> rows;
  for (const std::string& q : queries) {
    for (EngineKind kind : PaperEngines()) {
      EngineOptions options;
      options.kind = kind;
      options.decode_answers = false;
      options.cost = BenchCostModel();
      rows.push_back(
          Row{q, EngineKindToString(kind), RunOne(dfs.get(), q, options)});
    }
  }
  PrintTable("Fig 12: BSBM-1M stand-in, replication 2", rows);
  if (WriteReport(rows, triples.size(), /*small=*/false) != 0) return 1;

  auto stats = [&](const std::string& q, const char* engine) -> ExecStats* {
    for (Row& row : rows) {
      if (row.query == q && row.stats.engine == engine) return &row.stats;
    }
    return nullptr;
  };

  ShapeChecks checks;
  for (const std::string q : {"B0", "B1", "B2"}) {
    checks.Check(q + " completes on Pig and Hive",
                 stats(q, "Pig")->ok() && stats(q, "Hive")->ok());
  }
  for (const std::string q : {"B3", "B4", "B5", "B6"}) {
    checks.Check(q + " fails on Pig (out of disk)",
                 stats(q, "Pig")->status.IsOutOfSpace());
    checks.Check(q + " fails on Hive (out of disk)",
                 stats(q, "Hive")->status.IsOutOfSpace());
  }
  for (const std::string& q : queries) {
    checks.Check(q + " completes on LazyUnnest",
                 stats(q, "LazyUnnest")->ok());
  }
  for (const std::string q : {"B0", "B1", "B2", "B3", "B4"}) {
    checks.Check(q + " completes on EagerUnnest",
                 stats(q, "EagerUnnest")->ok());
  }
  for (const std::string q : {"B3", "B4"}) {
    double lazy = stats(q, "LazyUnnest")->modeled_seconds;
    double eager = stats(q, "EagerUnnest")->modeled_seconds;
    checks.Check(StringFormat("%s: LazyUnnest improves on EagerUnnest "
                              "(paper 54-65%%; measured %.0f%%)",
                              q.c_str(), 100.0 * (1.0 - lazy / eager)),
                 lazy < eager);
  }
  {
    double lazy = stats("B2", "LazyUnnest")->modeled_seconds;
    double hive = stats("B2", "Hive")->modeled_seconds;
    double pig = stats("B2", "Pig")->modeled_seconds;
    checks.Check(StringFormat("B2: LazyUnnest much faster than Pig/Hive "
                              "(paper ~75%%; measured %.0f%% vs Hive)",
                              100.0 * (1.0 - lazy / hive)),
                 lazy < 0.6 * hive && lazy < 0.6 * pig);
  }
  return checks.Summarize();
}

}  // namespace
}  // namespace bench
}  // namespace rdfmr

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--small") == 0) {
    return rdfmr::bench::SmallMain();
  }
  return rdfmr::bench::Main();
}
