// Figure 13: real-world unbound-property queries A1-A6 on the
// Bio2RDF-like life-sciences warehouse.
//
// Paper shape:
//  * A1: Pig/Hive produce every combination (~63K tuples); EagerUnnest
//    ~7K triplegroups; LazyUnnest only ~3K concise triplegroups.
//  * A3: relational plans materialize ~20x more star-join output than the
//    NTGA approaches (26GB vs 1.3GB); LazyUnnest adds a further gain over
//    EagerUnnest in the join cycle.
//  * A4: Pig fails (disk); Eager/Lazy write orders of magnitude less than
//    Hive after the star-join phase (1.8GB / 0.6GB vs 152GB).
//  * A5: NTGA needs half the full scans of Hive at equal cycle count.
//  * A6: LazyUnnest substantially faster than Hive (~48%).

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "bench/calibration.h"

namespace rdfmr {
namespace bench {
namespace {

int Main() {
  std::vector<Triple> triples = BenchDataset(DatasetFamily::kBio2Rdf);
  std::printf("Fig 13: Bio2RDF-like queries A1-A6 (%zu triples, %s)\n",
              triples.size(), HumanBytes(DatasetBytes(triples)).c_str());

  const std::vector<std::string> queries = {"A1", "A2", "A3",
                                            "A4", "A5", "A6"};

  // Budget: only Pig/A4 must exceed it (the paper's one bio failure).
  std::vector<BudgetConstraint> must_pass, must_fail;
  for (const std::string& q : queries) {
    for (EngineKind kind : PaperEngines()) {
      if (q == "A4" && kind == EngineKind::kPig) {
        must_fail.push_back({q, kind, 1});
      } else {
        must_pass.push_back({q, kind, 1});
      }
    }
  }
  Calibration cal = CalibrateBudget(triples, must_pass, must_fail);
  ClusterConfig cluster;
  cluster.num_nodes = 20;  // the paper's biggest cluster, scaled
  cluster.replication = 1;
  if (cal.feasible) {
    std::printf("calibrated budget: %s total\n",
                HumanBytes(cal.capacity).c_str());
    cluster.disk_per_node = cal.capacity / cluster.num_nodes + 1;
  } else {
    std::printf("NOTE: Pig/A4 failure not separable at this scale; "
                "running unconstrained\n");
    cluster.disk_per_node = 8ULL << 30;
  }
  cluster.block_size = std::max<uint64_t>(4096, cluster.disk_per_node / 64);
  cluster.num_reducers = 10;
  auto dfs = MakeDfs(triples, cluster);

  std::vector<Row> rows;
  for (const std::string& q : queries) {
    for (EngineKind kind : PaperEngines()) {
      EngineOptions options;
      options.kind = kind;
      options.decode_answers = false;
      options.cost = BenchCostModel();
      rows.push_back(
          Row{q, EngineKindToString(kind), RunOne(dfs.get(), q, options)});
    }
  }
  PrintTable("Fig 13: Bio2RDF-like unbound-property queries", rows);

  auto stats = [&](const std::string& q, const char* engine) -> ExecStats* {
    for (Row& row : rows) {
      if (row.query == q && row.stats.engine == engine) return &row.stats;
    }
    return nullptr;
  };

  ShapeChecks checks;
  // A1: output representation sizes (flat tuples vs TGs vs nested TGs).
  {
    uint64_t pig = stats("A1", "Pig")->jobs.back().output_records;
    uint64_t eager = stats("A1", "EagerUnnest")->jobs.back().output_records;
    uint64_t lazy = stats("A1", "LazyUnnest")->jobs.back().output_records;
    std::printf("\nA1 final records: Pig %llu tuples, Eager %llu TGs, "
                "Lazy %llu TGs (paper: ~63K / ~7K / ~3K)\n",
                static_cast<unsigned long long>(pig),
                static_cast<unsigned long long>(eager),
                static_cast<unsigned long long>(lazy));
    checks.Check("A1: Pig tuples >> Eager TGs >= Lazy TGs",
                 pig > 2 * eager && eager >= lazy);
    checks.Check("A1: Lazy achieves the most concise representation",
                 lazy < eager || stats("A1", "LazyUnnest")->
                                         final_output_bytes <
                                     stats("A1", "EagerUnnest")->
                                         final_output_bytes);
  }
  // A3: star-join phase writes, relational vs NTGA.
  {
    double hive =
        static_cast<double>(stats("A3", "Hive")->star_phase_write_bytes);
    double lazy = static_cast<double>(
        stats("A3", "LazyUnnest")->star_phase_write_bytes);
    checks.Check(StringFormat("A3: NTGA writes far less star-join output "
                              "than Hive (paper 26GB vs 1.3GB; measured "
                              "%.0fx less)",
                              hive / lazy),
                 lazy * 5 < hive);
    checks.Check("A3: LazyUnnest no slower than EagerUnnest",
                 stats("A3", "LazyUnnest")->modeled_seconds <=
                     stats("A3", "EagerUnnest")->modeled_seconds + 1e-9);
  }
  // A4: Pig fails; NTGA star-phase output tiny vs Hive.
  if (cal.feasible) {
    checks.Check("A4: Pig fails (out of disk)",
                 stats("A4", "Pig")->status.IsOutOfSpace());
    checks.Check("A4: Hive and the NTGA approaches complete",
                 stats("A4", "Hive")->ok() &&
                     stats("A4", "EagerUnnest")->ok() &&
                     stats("A4", "LazyUnnest")->ok());
  }
  {
    double hive =
        static_cast<double>(stats("A4", "Hive")->star_phase_write_bytes);
    double eager = static_cast<double>(
        stats("A4", "EagerUnnest")->star_phase_write_bytes);
    double lazy = static_cast<double>(
        stats("A4", "LazyUnnest")->star_phase_write_bytes);
    // The paper's factors (152GB vs 1.8GB/0.6GB) ride on Bio2RDF's 13K
    // property multiplicities; at our deliberately scaled-down multiplicity
    // the same mechanism yields smaller but clearly-ordered factors.
    checks.Check(StringFormat("A4: NTGA star-join output much smaller "
                              "than Hive (measured %.0fx / %.0fx less)",
                              hive / eager, hive / lazy),
                 eager * 3 < hive && lazy * 8 < hive);
    checks.Check("A4: Lazy star-join output smaller than Eager",
                 lazy < eager);
    checks.Check("A4: LazyUnnest faster than Hive (paper 53%)",
                 stats("A4", "LazyUnnest")->modeled_seconds <
                     stats("A4", "Hive")->modeled_seconds);
  }
  // A5: equal cycles, half the full scans.
  checks.Check("A5: Hive uses 2 MR jobs with 2 full scans",
               stats("A5", "Hive")->mr_cycles == 2 &&
                   stats("A5", "Hive")->full_scans == 2);
  checks.Check("A5: NTGA uses 2 MR jobs with 1 full scan",
               stats("A5", "LazyUnnest")->mr_cycles == 2 &&
                   stats("A5", "LazyUnnest")->full_scans == 1);
  checks.Check("A5: NTGA faster than Hive (paper ~22%)",
               stats("A5", "LazyUnnest")->modeled_seconds <
                   stats("A5", "Hive")->modeled_seconds);
  // A6: LazyUnnest gains over Hive.
  {
    double lazy = stats("A6", "LazyUnnest")->modeled_seconds;
    double hive = stats("A6", "Hive")->modeled_seconds;
    checks.Check(StringFormat("A6: LazyUnnest faster than Hive "
                              "(paper ~48%%; measured %.0f%%)",
                              100.0 * (1.0 - lazy / hive)),
                 lazy < hive);
  }
  return checks.Summarize();
}

}  // namespace
}  // namespace bench
}  // namespace rdfmr

int main() { return rdfmr::bench::Main(); }
