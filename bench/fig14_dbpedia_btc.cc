// Figure 14: DBpedia-Infobox queries C1-C4 (small cluster) and BTC-09
// queries C3/C4 (larger cluster).
//
// Paper shape:
//  * C1/C2 (selective single-join lookups on the small DBInfobox data):
//    little NTGA benefit; Pig scans two copies of the input (double the
//    mappers/reads of Hive).
//  * C3/C4 (unknown relationships between entities): redundancy factors
//    >0.6 (C4 close to 0.89-0.93); NTGA ~80% fewer HDFS writes and
//    20-55% gains over Pig/Hive; scan sharing halves NTGA's reads on the
//    two-star queries.
//  * BTC C4 (two unbound properties): redundancy grows into the final
//    output; lazy β-unnesting writes ~98% less and gains 70%/55% over
//    Pig/Hive.

#include <cstdio>

#include "bench/bench_util.h"

namespace rdfmr {
namespace bench {
namespace {

void RunFamily(DatasetFamily family, uint32_t nodes,
               const std::vector<std::string>& queries,
               std::vector<Row>* rows) {
  std::vector<Triple> triples = BenchDataset(family);
  std::printf("\n%s dataset: %zu triples, %s, %u-node cluster\n",
              DatasetFamilyToString(family), triples.size(),
              HumanBytes(DatasetBytes(triples)).c_str(), nodes);
  ClusterConfig cluster;
  cluster.num_nodes = nodes;
  cluster.replication = 1;
  cluster.disk_per_node = 8ULL << 30;
  cluster.block_size = 1ULL << 20;
  cluster.num_reducers = nodes;
  auto dfs = MakeDfs(triples, cluster);
  for (const std::string& q : queries) {
    for (EngineKind kind : PaperEngines()) {
      EngineOptions options;
      options.kind = kind;
      options.decode_answers = false;
      options.cost = BenchCostModel();
      ExecStats stats = RunOne(dfs.get(), q, options);
      rows->push_back(
          Row{std::string(DatasetFamilyToString(family)) + ":" + q,
              EngineKindToString(kind), stats});
    }
  }
}

int Main() {
  std::printf("Fig 14: DBpedia-Infobox C1-C4 and BTC-09 C3/C4\n");
  std::vector<Row> rows;
  RunFamily(DatasetFamily::kDbpedia, 5, {"C1", "C2", "C3", "C4"}, &rows);
  RunFamily(DatasetFamily::kBtc, 10, {"C3", "C4"}, &rows);
  PrintTable("Fig 14: DBpedia / BTC unbound-property queries", rows);

  auto stats = [&](const std::string& q, const char* engine) -> ExecStats* {
    for (Row& row : rows) {
      if (row.query == q && row.stats.engine == engine) return &row.stats;
    }
    return nullptr;
  };
  const std::string dbp = "DBpedia-Infobox:";
  const std::string btc = "BTC-09:";

  ShapeChecks checks;
  // C1/C2: Pig's two input copies double its reads relative to Hive.
  for (const std::string q : {"C1", "C2"}) {
    double pig = static_cast<double>(stats(dbp + q, "Pig")->hdfs_read_bytes);
    double hive =
        static_cast<double>(stats(dbp + q, "Hive")->hdfs_read_bytes);
    checks.Check(StringFormat("%s: Pig reads ~2x Hive (measured %.2fx)",
                              q.c_str(), pig / hive),
                 pig > 1.7 * hive && pig < 2.3 * hive);
  }
  // Redundancy factors of the relational star-join outputs.
  for (const std::string q : {"C1", "C2", "C3", "C4"}) {
    double r = stats(dbp + q, "Hive")->redundancy_factor;
    checks.Check(StringFormat("DBpedia %s: redundancy factor > 0.6 "
                              "(measured %.2f)",
                              q.c_str(), r),
                 r > 0.6);
  }
  {
    // The paper's 0.89/0.93 -> 0.98 figures track C4's redundancy from the
    // star-join phase into the final Pig/Hive output.
    double star = stats(dbp + "C4", "Hive")->redundancy_factor;
    double fin = stats(dbp + "C4", "Hive")->final_redundancy_factor;
    checks.Check(StringFormat("DBpedia C4: redundancy grows into the final "
                              "output (star %.2f -> final %.2f)",
                              star, fin),
                 fin > star && fin > 0.8);
  }
  // C3/C4: NTGA writes and time.
  for (const std::string& prefix : {dbp, btc}) {
    for (const std::string q : {"C3", "C4"}) {
      std::string id = prefix + q;
      double lazy =
          static_cast<double>(stats(id, "LazyUnnest")->hdfs_write_bytes);
      double hive =
          static_cast<double>(stats(id, "Hive")->hdfs_write_bytes);
      // Paper ~80%; our compact stand-in terms cap the flat/nested byte
      // ratio lower (see EXPERIMENTS.md), so the bar is >=55%.
      checks.Check(
          StringFormat("%s: LazyUnnest writes >=55%% less than Hive "
                       "(paper ~80%%; measured %.0f%%)",
                       id.c_str(), 100.0 * (1.0 - lazy / hive)),
          lazy < 0.45 * hive);
      checks.Check(id + ": LazyUnnest faster than Pig and Hive",
                   stats(id, "LazyUnnest")->modeled_seconds <
                           stats(id, "Pig")->modeled_seconds &&
                       stats(id, "LazyUnnest")->modeled_seconds <
                           stats(id, "Hive")->modeled_seconds);
      // Scan sharing: NTGA reads the input once; Pig scans per operand.
      checks.Check(id + ": NTGA reads <=50% of Pig (scan sharing)",
                   2 * stats(id, "LazyUnnest")->hdfs_read_bytes <=
                       stats(id, "Pig")->hdfs_read_bytes);
    }
  }
  // BTC C4: the most redundant case — near-total write elimination.
  {
    double lazy = static_cast<double>(
        stats(btc + "C4", "LazyUnnest")->hdfs_write_bytes);
    double hive =
        static_cast<double>(stats(btc + "C4", "Hive")->hdfs_write_bytes);
    checks.Check(StringFormat("BTC C4: LazyUnnest writes ~80%%+ less "
                              "(paper 98%%; measured %.0f%%)",
                              100.0 * (1.0 - lazy / hive)),
                 lazy < 0.2 * hive);
    double star = stats(btc + "C4", "Hive")->redundancy_factor;
    double fin = stats(btc + "C4", "Hive")->final_redundancy_factor;
    checks.Check(StringFormat("BTC C4: redundancy 0.93 -> 0.98 shape "
                              "(measured star %.2f -> final %.2f)",
                              star, fin),
                 star > 0.6 && fin > star && fin > 0.85);
  }
  return checks.Summarize();
}

}  // namespace
}  // namespace bench
}  // namespace rdfmr

int main() { return rdfmr::bench::Main(); }
