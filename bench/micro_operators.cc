// Operator-level microbenchmarks (google-benchmark): serialization costs
// and the NTGA operators' throughput as a function of candidate-set size
// and φ_m — the knobs that drive the macro results.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/hash.h"
#include "common/metrics.h"
#include "ntga/operators.h"
#include "ntga/triplegroup.h"
#include "query/matcher.h"
#include "query/sparql_parser.h"
#include "rdf/ntriples.h"
#include "rdf/triple.h"

namespace rdfmr {
namespace {

Triple MakeTriple(int i) {
  return Triple("subject" + std::to_string(i % 100),
                "property" + std::to_string(i % 10),
                "object_value_" + std::to_string(i));
}

// A star with two bound patterns and one unbound pattern.
StarPattern TestStar() {
  StarPattern star;
  star.subject_var = "s";
  star.patterns.push_back(TriplePattern::Bound(
      NodePattern::Var("s"), "property0", NodePattern::Var("o0")));
  star.patterns.push_back(TriplePattern::Bound(
      NodePattern::Var("s"), "property1", NodePattern::Var("o1")));
  star.patterns.push_back(TriplePattern::Unbound(
      NodePattern::Var("s"), "up", NodePattern::Var("x")));
  return star;
}

AnnTg TestGroup(int num_candidates) {
  AnnTg tg;
  tg.subject = "subject42";
  tg.star_id = 0;
  tg.AddPair("property0", "bound_object_a");
  tg.AddPair("property1", "bound_object_b");
  for (int i = 0; i < num_candidates; ++i) {
    tg.AddPair("property" + std::to_string(2 + i % 8),
               "candidate_object_" + std::to_string(i));
  }
  return tg;
}

void BM_TripleSerde(benchmark::State& state) {
  Triple t = MakeTriple(7);
  for (auto _ : state) {
    std::string line = t.Serialize();
    auto back = Triple::Deserialize(line);
    benchmark::DoNotOptimize(back);
  }
}
BENCHMARK(BM_TripleSerde);

void BM_NTriplesParseLine(benchmark::State& state) {
  const std::string line =
      "<http://example.org/gene9> <http://example.org/xGO> "
      "\"transcription factor\"@en .";
  for (auto _ : state) {
    auto st = ParseNTriplesLine(line);
    benchmark::DoNotOptimize(st);
  }
}
BENCHMARK(BM_NTriplesParseLine);

void BM_AnnTgSerde(benchmark::State& state) {
  AnnTg tg = TestGroup(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    std::string line = tg.Serialize();
    auto back = AnnTg::Deserialize(line);
    benchmark::DoNotOptimize(back);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_AnnTgSerde)->Arg(4)->Arg(32)->Arg(256);

void BM_BuildAnnTg(benchmark::State& state) {
  StarPattern star = TestStar();
  std::vector<PropObj> pairs;
  for (int i = 0; i < state.range(0); ++i) {
    pairs.push_back(PropObj{"property" + std::to_string(i % 10),
                            "object" + std::to_string(i)});
  }
  pairs.push_back(PropObj{"property0", "a"});
  pairs.push_back(PropObj{"property1", "b"});
  for (auto _ : state) {
    auto tg = BuildAnnTg(star, 0, "subject42", pairs);
    benchmark::DoNotOptimize(tg);
  }
  state.counters["groups_out"] = static_cast<double>(
      BuildAnnTg(star, 0, "subject42", pairs).has_value() ? 1 : 0);
}
BENCHMARK(BM_BuildAnnTg)->Arg(8)->Arg(64)->Arg(512);

void BM_BetaUnnest(benchmark::State& state) {
  StarPattern star = TestStar();
  AnnTg tg = TestGroup(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto out = BetaUnnest(star, tg);
    benchmark::DoNotOptimize(out);
  }
  state.counters["tgs_out"] =
      static_cast<double>(BetaUnnest(star, tg).size());
}
BENCHMARK(BM_BetaUnnest)->Arg(4)->Arg(32)->Arg(256);

void BM_PartialBetaUnnest(benchmark::State& state) {
  StarPattern star = TestStar();
  AnnTg tg = TestGroup(128);
  uint32_t m = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    auto out = PartialBetaUnnest(star, tg, 2, m);
    benchmark::DoNotOptimize(out);
  }
  state.counters["tgs_out"] =
      static_cast<double>(PartialBetaUnnest(star, tg, 2, m).size());
}
BENCHMARK(BM_PartialBetaUnnest)->Arg(4)->Arg(64)->Arg(1024);

void BM_ExpandAnnTg(benchmark::State& state) {
  StarPattern star = TestStar();
  AnnTg tg = TestGroup(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto out = ExpandAnnTg(star, tg);
    benchmark::DoNotOptimize(out);
  }
  state.counters["solutions_out"] =
      static_cast<double>(ExpandAnnTg(star, tg).size());
}
BENCHMARK(BM_ExpandAnnTg)->Arg(4)->Arg(32)->Arg(256);

void BM_MatchStarDetailed(benchmark::State& state) {
  StarPattern star = TestStar();
  std::vector<Triple> triples;
  triples.emplace_back("s", "property0", "a");
  triples.emplace_back("s", "property1", "b");
  for (int i = 0; i < state.range(0); ++i) {
    triples.emplace_back("s", "property" + std::to_string(2 + i % 8),
                         "object" + std::to_string(i));
  }
  for (auto _ : state) {
    auto out = MatchStarDetailed(star, triples);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_MatchStarDetailed)->Arg(4)->Arg(32)->Arg(256);

void BM_Fnv1a(benchmark::State& state) {
  std::string value = "some_join_key_value_of_typical_length";
  for (auto _ : state) {
    benchmark::DoNotOptimize(Fnv1a64(value));
  }
}
BENCHMARK(BM_Fnv1a);

void BM_SparqlParse(benchmark::State& state) {
  const std::string text = R"(SELECT * WHERE {
    ?p <label> ?l . ?p <type> ?t . ?p ?up ?x .
    FILTER(CONTAINS(STR(?x), "feature"))
    ?o <product> ?p . ?o <vendor> ?v . })";
  for (auto _ : state) {
    auto query = ParseSparql("bench", text);
    benchmark::DoNotOptimize(query);
  }
}
BENCHMARK(BM_SparqlParse);

// Exercises the σ^βγ/μ^β operators once more with the global
// operator-metric gate ON and dumps the registry: the per-operator
// `rdfmr_ntga_*` timing histograms and cardinality counters end up on
// stderr without perturbing the timed loops above (which run with the
// gate off, i.e. the production null-sink fast path).
void RunInstrumentedOperatorPass() {
  EnableOperatorMetrics(true);
  StarPattern star = TestStar();
  std::vector<PropObj> pairs;
  for (int i = 0; i < 64; ++i) {
    pairs.push_back(PropObj{"property" + std::to_string(i % 10),
                            "object" + std::to_string(i)});
  }
  pairs.push_back(PropObj{"property0", "a"});
  pairs.push_back(PropObj{"property1", "b"});
  AnnTg group = TestGroup(32);
  for (int i = 0; i < 1000; ++i) {
    auto tg = BuildAnnTg(star, 0, "subject42", pairs);
    benchmark::DoNotOptimize(tg);
    auto unnested = BetaUnnest(star, group);
    benchmark::DoNotOptimize(unnested);
    auto partial = PartialBetaUnnest(star, group, 2, 16);
    benchmark::DoNotOptimize(partial);
    JoinedTg jtg;
    jtg.components.push_back(group);
    auto solutions = ExpandJoinedTg({star}, jtg);
    benchmark::DoNotOptimize(solutions);
  }
  EnableOperatorMetrics(false);
  std::fprintf(stderr, "-- operator metrics (Prometheus text) --\n%s",
               MetricsRegistry::Global().ToPrometheusText().c_str());
}

}  // namespace
}  // namespace rdfmr

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  rdfmr::RunInstrumentedOperatorPass();
  return 0;
}
