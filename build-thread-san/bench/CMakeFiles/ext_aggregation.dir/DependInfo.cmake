
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ext_aggregation.cc" "bench/CMakeFiles/ext_aggregation.dir/ext_aggregation.cc.o" "gcc" "bench/CMakeFiles/ext_aggregation.dir/ext_aggregation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-thread-san/bench/CMakeFiles/rdfmr_bench_util.dir/DependInfo.cmake"
  "/root/repo/build-thread-san/src/engine/CMakeFiles/rdfmr_engine.dir/DependInfo.cmake"
  "/root/repo/build-thread-san/src/datagen/CMakeFiles/rdfmr_datagen.dir/DependInfo.cmake"
  "/root/repo/build-thread-san/src/ntga/CMakeFiles/rdfmr_ntga.dir/DependInfo.cmake"
  "/root/repo/build-thread-san/src/relational/CMakeFiles/rdfmr_relational.dir/DependInfo.cmake"
  "/root/repo/build-thread-san/src/query/CMakeFiles/rdfmr_query.dir/DependInfo.cmake"
  "/root/repo/build-thread-san/src/mapreduce/CMakeFiles/rdfmr_mapreduce.dir/DependInfo.cmake"
  "/root/repo/build-thread-san/src/dfs/CMakeFiles/rdfmr_dfs.dir/DependInfo.cmake"
  "/root/repo/build-thread-san/src/rdf/CMakeFiles/rdfmr_rdf.dir/DependInfo.cmake"
  "/root/repo/build-thread-san/src/common/CMakeFiles/rdfmr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
