file(REMOVE_RECURSE
  "CMakeFiles/ext_aggregation.dir/ext_aggregation.cc.o"
  "CMakeFiles/ext_aggregation.dir/ext_aggregation.cc.o.d"
  "ext_aggregation"
  "ext_aggregation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_aggregation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
