# Empty dependencies file for ext_aggregation.
# This may be replaced when dependencies are built.
