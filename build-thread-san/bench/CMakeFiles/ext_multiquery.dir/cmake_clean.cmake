file(REMOVE_RECURSE
  "CMakeFiles/ext_multiquery.dir/ext_multiquery.cc.o"
  "CMakeFiles/ext_multiquery.dir/ext_multiquery.cc.o.d"
  "ext_multiquery"
  "ext_multiquery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_multiquery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
