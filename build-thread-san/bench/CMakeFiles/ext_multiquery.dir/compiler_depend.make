# Empty compiler generated dependencies file for ext_multiquery.
# This may be replaced when dependencies are built.
