file(REMOVE_RECURSE
  "CMakeFiles/fig03_star_groupings.dir/fig03_star_groupings.cc.o"
  "CMakeFiles/fig03_star_groupings.dir/fig03_star_groupings.cc.o.d"
  "fig03_star_groupings"
  "fig03_star_groupings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_star_groupings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
