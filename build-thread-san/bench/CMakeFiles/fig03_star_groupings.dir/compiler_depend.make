# Empty compiler generated dependencies file for fig03_star_groupings.
# This may be replaced when dependencies are built.
