file(REMOVE_RECURSE
  "CMakeFiles/fig09a_repl2_failures.dir/fig09a_repl2_failures.cc.o"
  "CMakeFiles/fig09a_repl2_failures.dir/fig09a_repl2_failures.cc.o.d"
  "fig09a_repl2_failures"
  "fig09a_repl2_failures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09a_repl2_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
