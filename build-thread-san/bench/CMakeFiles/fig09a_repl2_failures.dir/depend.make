# Empty dependencies file for fig09a_repl2_failures.
# This may be replaced when dependencies are built.
