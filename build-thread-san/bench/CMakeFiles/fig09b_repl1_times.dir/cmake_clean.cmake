file(REMOVE_RECURSE
  "CMakeFiles/fig09b_repl1_times.dir/fig09b_repl1_times.cc.o"
  "CMakeFiles/fig09b_repl1_times.dir/fig09b_repl1_times.cc.o.d"
  "fig09b_repl1_times"
  "fig09b_repl1_times.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09b_repl1_times.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
