# Empty dependencies file for fig09b_repl1_times.
# This may be replaced when dependencies are built.
