file(REMOVE_RECURSE
  "CMakeFiles/fig09c_vary_bound_times.dir/fig09c_vary_bound_times.cc.o"
  "CMakeFiles/fig09c_vary_bound_times.dir/fig09c_vary_bound_times.cc.o.d"
  "fig09c_vary_bound_times"
  "fig09c_vary_bound_times.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09c_vary_bound_times.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
