# Empty dependencies file for fig09c_vary_bound_times.
# This may be replaced when dependencies are built.
