file(REMOVE_RECURSE
  "CMakeFiles/fig10_vary_bound_writes.dir/fig10_vary_bound_writes.cc.o"
  "CMakeFiles/fig10_vary_bound_writes.dir/fig10_vary_bound_writes.cc.o.d"
  "fig10_vary_bound_writes"
  "fig10_vary_bound_writes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_vary_bound_writes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
