# Empty compiler generated dependencies file for fig10_vary_bound_writes.
# This may be replaced when dependencies are built.
