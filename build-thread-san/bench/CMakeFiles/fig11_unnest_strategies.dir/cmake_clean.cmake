file(REMOVE_RECURSE
  "CMakeFiles/fig11_unnest_strategies.dir/fig11_unnest_strategies.cc.o"
  "CMakeFiles/fig11_unnest_strategies.dir/fig11_unnest_strategies.cc.o.d"
  "fig11_unnest_strategies"
  "fig11_unnest_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_unnest_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
