# Empty dependencies file for fig11_unnest_strategies.
# This may be replaced when dependencies are built.
