file(REMOVE_RECURSE
  "CMakeFiles/fig12_bsbm1m.dir/fig12_bsbm1m.cc.o"
  "CMakeFiles/fig12_bsbm1m.dir/fig12_bsbm1m.cc.o.d"
  "fig12_bsbm1m"
  "fig12_bsbm1m.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_bsbm1m.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
