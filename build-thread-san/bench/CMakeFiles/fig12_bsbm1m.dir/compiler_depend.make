# Empty compiler generated dependencies file for fig12_bsbm1m.
# This may be replaced when dependencies are built.
