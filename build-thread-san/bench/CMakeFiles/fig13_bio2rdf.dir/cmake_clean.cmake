file(REMOVE_RECURSE
  "CMakeFiles/fig13_bio2rdf.dir/fig13_bio2rdf.cc.o"
  "CMakeFiles/fig13_bio2rdf.dir/fig13_bio2rdf.cc.o.d"
  "fig13_bio2rdf"
  "fig13_bio2rdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_bio2rdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
