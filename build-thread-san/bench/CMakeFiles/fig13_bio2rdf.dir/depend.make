# Empty dependencies file for fig13_bio2rdf.
# This may be replaced when dependencies are built.
