file(REMOVE_RECURSE
  "CMakeFiles/fig14_dbpedia_btc.dir/fig14_dbpedia_btc.cc.o"
  "CMakeFiles/fig14_dbpedia_btc.dir/fig14_dbpedia_btc.cc.o.d"
  "fig14_dbpedia_btc"
  "fig14_dbpedia_btc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_dbpedia_btc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
