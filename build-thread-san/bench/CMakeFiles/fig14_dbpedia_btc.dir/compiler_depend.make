# Empty compiler generated dependencies file for fig14_dbpedia_btc.
# This may be replaced when dependencies are built.
