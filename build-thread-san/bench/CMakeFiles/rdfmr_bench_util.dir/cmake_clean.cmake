file(REMOVE_RECURSE
  "../lib/librdfmr_bench_util.a"
  "../lib/librdfmr_bench_util.pdb"
  "CMakeFiles/rdfmr_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/rdfmr_bench_util.dir/bench_util.cc.o.d"
  "CMakeFiles/rdfmr_bench_util.dir/calibration.cc.o"
  "CMakeFiles/rdfmr_bench_util.dir/calibration.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdfmr_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
