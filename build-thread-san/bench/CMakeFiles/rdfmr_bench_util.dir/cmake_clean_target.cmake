file(REMOVE_RECURSE
  "../lib/librdfmr_bench_util.a"
)
