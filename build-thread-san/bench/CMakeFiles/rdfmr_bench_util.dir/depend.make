# Empty dependencies file for rdfmr_bench_util.
# This may be replaced when dependencies are built.
