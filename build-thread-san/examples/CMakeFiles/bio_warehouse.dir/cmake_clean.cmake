file(REMOVE_RECURSE
  "CMakeFiles/bio_warehouse.dir/bio_warehouse.cpp.o"
  "CMakeFiles/bio_warehouse.dir/bio_warehouse.cpp.o.d"
  "bio_warehouse"
  "bio_warehouse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bio_warehouse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
