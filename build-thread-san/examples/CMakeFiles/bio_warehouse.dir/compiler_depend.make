# Empty compiler generated dependencies file for bio_warehouse.
# This may be replaced when dependencies are built.
