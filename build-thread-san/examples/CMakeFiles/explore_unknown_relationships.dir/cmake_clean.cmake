file(REMOVE_RECURSE
  "CMakeFiles/explore_unknown_relationships.dir/explore_unknown_relationships.cpp.o"
  "CMakeFiles/explore_unknown_relationships.dir/explore_unknown_relationships.cpp.o.d"
  "explore_unknown_relationships"
  "explore_unknown_relationships.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explore_unknown_relationships.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
