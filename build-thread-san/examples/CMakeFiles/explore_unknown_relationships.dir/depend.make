# Empty dependencies file for explore_unknown_relationships.
# This may be replaced when dependencies are built.
