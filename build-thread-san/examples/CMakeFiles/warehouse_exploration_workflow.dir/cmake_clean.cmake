file(REMOVE_RECURSE
  "CMakeFiles/warehouse_exploration_workflow.dir/warehouse_exploration_workflow.cpp.o"
  "CMakeFiles/warehouse_exploration_workflow.dir/warehouse_exploration_workflow.cpp.o.d"
  "warehouse_exploration_workflow"
  "warehouse_exploration_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warehouse_exploration_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
