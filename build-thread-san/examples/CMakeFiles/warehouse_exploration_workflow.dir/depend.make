# Empty dependencies file for warehouse_exploration_workflow.
# This may be replaced when dependencies are built.
