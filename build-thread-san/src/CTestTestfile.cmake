# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-thread-san/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("rdf")
subdirs("dfs")
subdirs("mapreduce")
subdirs("query")
subdirs("relational")
subdirs("ntga")
subdirs("engine")
subdirs("datagen")
