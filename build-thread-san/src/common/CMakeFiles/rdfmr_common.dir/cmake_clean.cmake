file(REMOVE_RECURSE
  "CMakeFiles/rdfmr_common.dir/logging.cc.o"
  "CMakeFiles/rdfmr_common.dir/logging.cc.o.d"
  "CMakeFiles/rdfmr_common.dir/random.cc.o"
  "CMakeFiles/rdfmr_common.dir/random.cc.o.d"
  "CMakeFiles/rdfmr_common.dir/status.cc.o"
  "CMakeFiles/rdfmr_common.dir/status.cc.o.d"
  "CMakeFiles/rdfmr_common.dir/strings.cc.o"
  "CMakeFiles/rdfmr_common.dir/strings.cc.o.d"
  "CMakeFiles/rdfmr_common.dir/thread_pool.cc.o"
  "CMakeFiles/rdfmr_common.dir/thread_pool.cc.o.d"
  "librdfmr_common.a"
  "librdfmr_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdfmr_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
