file(REMOVE_RECURSE
  "librdfmr_common.a"
)
