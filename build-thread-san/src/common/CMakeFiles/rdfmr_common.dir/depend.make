# Empty dependencies file for rdfmr_common.
# This may be replaced when dependencies are built.
