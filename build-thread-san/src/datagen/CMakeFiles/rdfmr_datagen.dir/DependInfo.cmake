
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/bio2rdf.cc" "src/datagen/CMakeFiles/rdfmr_datagen.dir/bio2rdf.cc.o" "gcc" "src/datagen/CMakeFiles/rdfmr_datagen.dir/bio2rdf.cc.o.d"
  "/root/repo/src/datagen/bsbm.cc" "src/datagen/CMakeFiles/rdfmr_datagen.dir/bsbm.cc.o" "gcc" "src/datagen/CMakeFiles/rdfmr_datagen.dir/bsbm.cc.o.d"
  "/root/repo/src/datagen/btc.cc" "src/datagen/CMakeFiles/rdfmr_datagen.dir/btc.cc.o" "gcc" "src/datagen/CMakeFiles/rdfmr_datagen.dir/btc.cc.o.d"
  "/root/repo/src/datagen/dbpedia.cc" "src/datagen/CMakeFiles/rdfmr_datagen.dir/dbpedia.cc.o" "gcc" "src/datagen/CMakeFiles/rdfmr_datagen.dir/dbpedia.cc.o.d"
  "/root/repo/src/datagen/testbed.cc" "src/datagen/CMakeFiles/rdfmr_datagen.dir/testbed.cc.o" "gcc" "src/datagen/CMakeFiles/rdfmr_datagen.dir/testbed.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-thread-san/src/common/CMakeFiles/rdfmr_common.dir/DependInfo.cmake"
  "/root/repo/build-thread-san/src/rdf/CMakeFiles/rdfmr_rdf.dir/DependInfo.cmake"
  "/root/repo/build-thread-san/src/query/CMakeFiles/rdfmr_query.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
