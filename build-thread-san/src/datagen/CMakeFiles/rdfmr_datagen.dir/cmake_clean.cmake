file(REMOVE_RECURSE
  "CMakeFiles/rdfmr_datagen.dir/bio2rdf.cc.o"
  "CMakeFiles/rdfmr_datagen.dir/bio2rdf.cc.o.d"
  "CMakeFiles/rdfmr_datagen.dir/bsbm.cc.o"
  "CMakeFiles/rdfmr_datagen.dir/bsbm.cc.o.d"
  "CMakeFiles/rdfmr_datagen.dir/btc.cc.o"
  "CMakeFiles/rdfmr_datagen.dir/btc.cc.o.d"
  "CMakeFiles/rdfmr_datagen.dir/dbpedia.cc.o"
  "CMakeFiles/rdfmr_datagen.dir/dbpedia.cc.o.d"
  "CMakeFiles/rdfmr_datagen.dir/testbed.cc.o"
  "CMakeFiles/rdfmr_datagen.dir/testbed.cc.o.d"
  "librdfmr_datagen.a"
  "librdfmr_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdfmr_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
