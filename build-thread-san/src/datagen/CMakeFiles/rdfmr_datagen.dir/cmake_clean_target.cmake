file(REMOVE_RECURSE
  "librdfmr_datagen.a"
)
