# Empty compiler generated dependencies file for rdfmr_datagen.
# This may be replaced when dependencies are built.
