file(REMOVE_RECURSE
  "CMakeFiles/rdfmr_dfs.dir/sim_dfs.cc.o"
  "CMakeFiles/rdfmr_dfs.dir/sim_dfs.cc.o.d"
  "librdfmr_dfs.a"
  "librdfmr_dfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdfmr_dfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
