file(REMOVE_RECURSE
  "librdfmr_dfs.a"
)
