# Empty dependencies file for rdfmr_dfs.
# This may be replaced when dependencies are built.
