file(REMOVE_RECURSE
  "CMakeFiles/rdfmr_engine.dir/advisor.cc.o"
  "CMakeFiles/rdfmr_engine.dir/advisor.cc.o.d"
  "CMakeFiles/rdfmr_engine.dir/engine.cc.o"
  "CMakeFiles/rdfmr_engine.dir/engine.cc.o.d"
  "librdfmr_engine.a"
  "librdfmr_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdfmr_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
