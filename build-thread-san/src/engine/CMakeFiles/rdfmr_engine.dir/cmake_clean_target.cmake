file(REMOVE_RECURSE
  "librdfmr_engine.a"
)
