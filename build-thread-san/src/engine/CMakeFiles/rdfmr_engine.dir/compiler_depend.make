# Empty compiler generated dependencies file for rdfmr_engine.
# This may be replaced when dependencies are built.
