
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mapreduce/cost_model.cc" "src/mapreduce/CMakeFiles/rdfmr_mapreduce.dir/cost_model.cc.o" "gcc" "src/mapreduce/CMakeFiles/rdfmr_mapreduce.dir/cost_model.cc.o.d"
  "/root/repo/src/mapreduce/job_runner.cc" "src/mapreduce/CMakeFiles/rdfmr_mapreduce.dir/job_runner.cc.o" "gcc" "src/mapreduce/CMakeFiles/rdfmr_mapreduce.dir/job_runner.cc.o.d"
  "/root/repo/src/mapreduce/workflow.cc" "src/mapreduce/CMakeFiles/rdfmr_mapreduce.dir/workflow.cc.o" "gcc" "src/mapreduce/CMakeFiles/rdfmr_mapreduce.dir/workflow.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-thread-san/src/common/CMakeFiles/rdfmr_common.dir/DependInfo.cmake"
  "/root/repo/build-thread-san/src/dfs/CMakeFiles/rdfmr_dfs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
