file(REMOVE_RECURSE
  "CMakeFiles/rdfmr_mapreduce.dir/cost_model.cc.o"
  "CMakeFiles/rdfmr_mapreduce.dir/cost_model.cc.o.d"
  "CMakeFiles/rdfmr_mapreduce.dir/job_runner.cc.o"
  "CMakeFiles/rdfmr_mapreduce.dir/job_runner.cc.o.d"
  "CMakeFiles/rdfmr_mapreduce.dir/workflow.cc.o"
  "CMakeFiles/rdfmr_mapreduce.dir/workflow.cc.o.d"
  "librdfmr_mapreduce.a"
  "librdfmr_mapreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdfmr_mapreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
