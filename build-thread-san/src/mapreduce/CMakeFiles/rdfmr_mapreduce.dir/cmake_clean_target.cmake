file(REMOVE_RECURSE
  "librdfmr_mapreduce.a"
)
