# Empty compiler generated dependencies file for rdfmr_mapreduce.
# This may be replaced when dependencies are built.
