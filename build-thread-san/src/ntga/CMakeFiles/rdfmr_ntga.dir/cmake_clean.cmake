file(REMOVE_RECURSE
  "CMakeFiles/rdfmr_ntga.dir/logical_plan.cc.o"
  "CMakeFiles/rdfmr_ntga.dir/logical_plan.cc.o.d"
  "CMakeFiles/rdfmr_ntga.dir/ntga_compiler.cc.o"
  "CMakeFiles/rdfmr_ntga.dir/ntga_compiler.cc.o.d"
  "CMakeFiles/rdfmr_ntga.dir/operators.cc.o"
  "CMakeFiles/rdfmr_ntga.dir/operators.cc.o.d"
  "CMakeFiles/rdfmr_ntga.dir/triplegroup.cc.o"
  "CMakeFiles/rdfmr_ntga.dir/triplegroup.cc.o.d"
  "librdfmr_ntga.a"
  "librdfmr_ntga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdfmr_ntga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
