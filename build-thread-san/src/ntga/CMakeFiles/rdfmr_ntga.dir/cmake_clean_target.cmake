file(REMOVE_RECURSE
  "librdfmr_ntga.a"
)
