# Empty compiler generated dependencies file for rdfmr_ntga.
# This may be replaced when dependencies are built.
