# CMake generated Testfile for 
# Source directory: /root/repo/src/ntga
# Build directory: /root/repo/build-thread-san/src/ntga
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
