
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/aggregate.cc" "src/query/CMakeFiles/rdfmr_query.dir/aggregate.cc.o" "gcc" "src/query/CMakeFiles/rdfmr_query.dir/aggregate.cc.o.d"
  "/root/repo/src/query/matcher.cc" "src/query/CMakeFiles/rdfmr_query.dir/matcher.cc.o" "gcc" "src/query/CMakeFiles/rdfmr_query.dir/matcher.cc.o.d"
  "/root/repo/src/query/pattern.cc" "src/query/CMakeFiles/rdfmr_query.dir/pattern.cc.o" "gcc" "src/query/CMakeFiles/rdfmr_query.dir/pattern.cc.o.d"
  "/root/repo/src/query/solution.cc" "src/query/CMakeFiles/rdfmr_query.dir/solution.cc.o" "gcc" "src/query/CMakeFiles/rdfmr_query.dir/solution.cc.o.d"
  "/root/repo/src/query/sparql_parser.cc" "src/query/CMakeFiles/rdfmr_query.dir/sparql_parser.cc.o" "gcc" "src/query/CMakeFiles/rdfmr_query.dir/sparql_parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-thread-san/src/common/CMakeFiles/rdfmr_common.dir/DependInfo.cmake"
  "/root/repo/build-thread-san/src/rdf/CMakeFiles/rdfmr_rdf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
