file(REMOVE_RECURSE
  "CMakeFiles/rdfmr_query.dir/aggregate.cc.o"
  "CMakeFiles/rdfmr_query.dir/aggregate.cc.o.d"
  "CMakeFiles/rdfmr_query.dir/matcher.cc.o"
  "CMakeFiles/rdfmr_query.dir/matcher.cc.o.d"
  "CMakeFiles/rdfmr_query.dir/pattern.cc.o"
  "CMakeFiles/rdfmr_query.dir/pattern.cc.o.d"
  "CMakeFiles/rdfmr_query.dir/solution.cc.o"
  "CMakeFiles/rdfmr_query.dir/solution.cc.o.d"
  "CMakeFiles/rdfmr_query.dir/sparql_parser.cc.o"
  "CMakeFiles/rdfmr_query.dir/sparql_parser.cc.o.d"
  "librdfmr_query.a"
  "librdfmr_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdfmr_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
