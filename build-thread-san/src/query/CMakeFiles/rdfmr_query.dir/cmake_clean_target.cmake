file(REMOVE_RECURSE
  "librdfmr_query.a"
)
