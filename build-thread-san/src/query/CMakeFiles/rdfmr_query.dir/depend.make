# Empty dependencies file for rdfmr_query.
# This may be replaced when dependencies are built.
