
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rdf/dictionary.cc" "src/rdf/CMakeFiles/rdfmr_rdf.dir/dictionary.cc.o" "gcc" "src/rdf/CMakeFiles/rdfmr_rdf.dir/dictionary.cc.o.d"
  "/root/repo/src/rdf/graph_stats.cc" "src/rdf/CMakeFiles/rdfmr_rdf.dir/graph_stats.cc.o" "gcc" "src/rdf/CMakeFiles/rdfmr_rdf.dir/graph_stats.cc.o.d"
  "/root/repo/src/rdf/ntriples.cc" "src/rdf/CMakeFiles/rdfmr_rdf.dir/ntriples.cc.o" "gcc" "src/rdf/CMakeFiles/rdfmr_rdf.dir/ntriples.cc.o.d"
  "/root/repo/src/rdf/term.cc" "src/rdf/CMakeFiles/rdfmr_rdf.dir/term.cc.o" "gcc" "src/rdf/CMakeFiles/rdfmr_rdf.dir/term.cc.o.d"
  "/root/repo/src/rdf/triple.cc" "src/rdf/CMakeFiles/rdfmr_rdf.dir/triple.cc.o" "gcc" "src/rdf/CMakeFiles/rdfmr_rdf.dir/triple.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-thread-san/src/common/CMakeFiles/rdfmr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
