file(REMOVE_RECURSE
  "CMakeFiles/rdfmr_rdf.dir/dictionary.cc.o"
  "CMakeFiles/rdfmr_rdf.dir/dictionary.cc.o.d"
  "CMakeFiles/rdfmr_rdf.dir/graph_stats.cc.o"
  "CMakeFiles/rdfmr_rdf.dir/graph_stats.cc.o.d"
  "CMakeFiles/rdfmr_rdf.dir/ntriples.cc.o"
  "CMakeFiles/rdfmr_rdf.dir/ntriples.cc.o.d"
  "CMakeFiles/rdfmr_rdf.dir/term.cc.o"
  "CMakeFiles/rdfmr_rdf.dir/term.cc.o.d"
  "CMakeFiles/rdfmr_rdf.dir/triple.cc.o"
  "CMakeFiles/rdfmr_rdf.dir/triple.cc.o.d"
  "librdfmr_rdf.a"
  "librdfmr_rdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdfmr_rdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
