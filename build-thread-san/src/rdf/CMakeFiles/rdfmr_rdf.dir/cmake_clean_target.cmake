file(REMOVE_RECURSE
  "librdfmr_rdf.a"
)
