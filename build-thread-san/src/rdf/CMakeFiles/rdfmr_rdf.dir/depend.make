# Empty dependencies file for rdfmr_rdf.
# This may be replaced when dependencies are built.
