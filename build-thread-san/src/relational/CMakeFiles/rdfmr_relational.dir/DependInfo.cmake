
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/relational/rel_compiler.cc" "src/relational/CMakeFiles/rdfmr_relational.dir/rel_compiler.cc.o" "gcc" "src/relational/CMakeFiles/rdfmr_relational.dir/rel_compiler.cc.o.d"
  "/root/repo/src/relational/rel_tuple.cc" "src/relational/CMakeFiles/rdfmr_relational.dir/rel_tuple.cc.o" "gcc" "src/relational/CMakeFiles/rdfmr_relational.dir/rel_tuple.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-thread-san/src/common/CMakeFiles/rdfmr_common.dir/DependInfo.cmake"
  "/root/repo/build-thread-san/src/rdf/CMakeFiles/rdfmr_rdf.dir/DependInfo.cmake"
  "/root/repo/build-thread-san/src/query/CMakeFiles/rdfmr_query.dir/DependInfo.cmake"
  "/root/repo/build-thread-san/src/mapreduce/CMakeFiles/rdfmr_mapreduce.dir/DependInfo.cmake"
  "/root/repo/build-thread-san/src/dfs/CMakeFiles/rdfmr_dfs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
