file(REMOVE_RECURSE
  "CMakeFiles/rdfmr_relational.dir/rel_compiler.cc.o"
  "CMakeFiles/rdfmr_relational.dir/rel_compiler.cc.o.d"
  "CMakeFiles/rdfmr_relational.dir/rel_tuple.cc.o"
  "CMakeFiles/rdfmr_relational.dir/rel_tuple.cc.o.d"
  "librdfmr_relational.a"
  "librdfmr_relational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdfmr_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
