file(REMOVE_RECURSE
  "librdfmr_relational.a"
)
