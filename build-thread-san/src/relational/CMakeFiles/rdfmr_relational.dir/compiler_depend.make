# Empty compiler generated dependencies file for rdfmr_relational.
# This may be replaced when dependencies are built.
