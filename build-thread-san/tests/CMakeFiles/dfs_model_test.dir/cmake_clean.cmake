file(REMOVE_RECURSE
  "CMakeFiles/dfs_model_test.dir/dfs_model_test.cc.o"
  "CMakeFiles/dfs_model_test.dir/dfs_model_test.cc.o.d"
  "dfs_model_test"
  "dfs_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfs_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
