# Empty dependencies file for dfs_model_test.
# This may be replaced when dependencies are built.
