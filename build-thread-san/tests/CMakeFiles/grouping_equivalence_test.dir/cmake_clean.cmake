file(REMOVE_RECURSE
  "CMakeFiles/grouping_equivalence_test.dir/grouping_equivalence_test.cc.o"
  "CMakeFiles/grouping_equivalence_test.dir/grouping_equivalence_test.cc.o.d"
  "grouping_equivalence_test"
  "grouping_equivalence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grouping_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
