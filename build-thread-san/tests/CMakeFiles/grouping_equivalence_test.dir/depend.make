# Empty dependencies file for grouping_equivalence_test.
# This may be replaced when dependencies are built.
