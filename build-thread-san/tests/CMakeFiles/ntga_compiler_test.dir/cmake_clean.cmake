file(REMOVE_RECURSE
  "CMakeFiles/ntga_compiler_test.dir/ntga_compiler_test.cc.o"
  "CMakeFiles/ntga_compiler_test.dir/ntga_compiler_test.cc.o.d"
  "ntga_compiler_test"
  "ntga_compiler_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntga_compiler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
