# Empty compiler generated dependencies file for ntga_compiler_test.
# This may be replaced when dependencies are built.
