file(REMOVE_RECURSE
  "CMakeFiles/ntga_operators_test.dir/ntga_operators_test.cc.o"
  "CMakeFiles/ntga_operators_test.dir/ntga_operators_test.cc.o.d"
  "ntga_operators_test"
  "ntga_operators_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntga_operators_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
