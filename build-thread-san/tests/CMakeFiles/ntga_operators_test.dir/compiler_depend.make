# Empty compiler generated dependencies file for ntga_operators_test.
# This may be replaced when dependencies are built.
