file(REMOVE_RECURSE
  "CMakeFiles/ntga_plan_test.dir/ntga_plan_test.cc.o"
  "CMakeFiles/ntga_plan_test.dir/ntga_plan_test.cc.o.d"
  "ntga_plan_test"
  "ntga_plan_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntga_plan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
