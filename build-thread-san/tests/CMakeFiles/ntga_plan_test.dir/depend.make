# Empty dependencies file for ntga_plan_test.
# This may be replaced when dependencies are built.
