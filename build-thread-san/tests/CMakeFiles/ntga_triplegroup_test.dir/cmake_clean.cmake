file(REMOVE_RECURSE
  "CMakeFiles/ntga_triplegroup_test.dir/ntga_triplegroup_test.cc.o"
  "CMakeFiles/ntga_triplegroup_test.dir/ntga_triplegroup_test.cc.o.d"
  "ntga_triplegroup_test"
  "ntga_triplegroup_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntga_triplegroup_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
