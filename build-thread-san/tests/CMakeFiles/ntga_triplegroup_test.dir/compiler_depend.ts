# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for ntga_triplegroup_test.
