# Empty dependencies file for ntga_triplegroup_test.
# This may be replaced when dependencies are built.
