file(REMOVE_RECURSE
  "CMakeFiles/rdfmr.dir/rdfmr.cc.o"
  "CMakeFiles/rdfmr.dir/rdfmr.cc.o.d"
  "rdfmr"
  "rdfmr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdfmr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
