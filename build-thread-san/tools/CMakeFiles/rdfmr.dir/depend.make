# Empty dependencies file for rdfmr.
# This may be replaced when dependencies are built.
