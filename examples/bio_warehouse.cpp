// Scenario: a life-sciences warehouse in the Bio2RDF mold. Demonstrates:
//  * loading real N-Triples syntax through the parser + IRI compactor,
//  * a "what is known about the hexokinase gene?" query (unbound property
//    with a partially-bound object, the paper's A6 motif),
//  * the choice of β-unnesting strategy and its I/O consequences.
//
//   ./build/examples/bio_warehouse

#include <cstdio>

#include "common/strings.h"
#include "datagen/bio2rdf.h"
#include "engine/engine.h"
#include "query/sparql_parser.h"
#include "rdf/graph_stats.h"
#include "rdf/ntriples.h"

using namespace rdfmr;

int main() {
  // 1. A hand-written N-Triples fragment, as it would arrive from an
  //    export — full IRIs, typed and language-tagged literals.
  const std::string ntriples_text = R"(
# excerpt of a gene annotation export
<http://bio2rdf.org/geneid:3098> <http://bio2rdf.org/ns/label> "hexokinase 1"@en .
<http://bio2rdf.org/geneid:3098> <http://bio2rdf.org/ns/xGO> <http://bio2rdf.org/go:0004396> .
<http://bio2rdf.org/go:0004396> <http://bio2rdf.org/ns/goLabel> "hexokinase activity" .
)";
  IriCompactor compactor(std::vector<std::pair<std::string, std::string>>{
      {"http://bio2rdf.org/ns/", ""},
      {"http://bio2rdf.org/", ""},
  });
  auto imported = LoadNTriples(ntriples_text, compactor);
  if (!imported.ok()) {
    std::fprintf(stderr, "N-Triples import failed: %s\n",
                 imported.status().ToString().c_str());
    return 1;
  }
  std::printf("imported %zu statements from N-Triples, e.g. (%s, %s, %s)\n",
              imported->size(), (*imported)[0].subject.c_str(),
              (*imported)[0].property.c_str(),
              (*imported)[0].object.c_str());

  // 2. The bulk of the warehouse comes from the synthetic generator, with
  //    the skewed multiplicities of real biological data.
  Bio2RdfConfig config;
  config.num_genes = 1200;
  config.max_multiplicity = 50;
  config.hexokinase_fraction = 0.03;
  std::vector<Triple> triples = GenerateBio2Rdf(config);
  triples.insert(triples.end(), imported->begin(), imported->end());
  GraphStats stats = GraphStats::Compute(triples);
  std::printf("warehouse: %s\n", stats.Summary().c_str());
  PropertyStats xgo = stats.ForProperty(bio::kXGo);
  std::printf("xGO multiplicity: avg %.1f, max %llu\n",
              xgo.avg_multiplicity,
              static_cast<unsigned long long>(xgo.max_multiplicity));

  // 3. "What relates genes to anything hexokinase-ish, and which GO terms
  //    do those genes carry?" — unbound property, partially-bound object.
  auto parsed = ParseSparql("hexokinase", R"(
      SELECT * WHERE {
        ?gene <label> ?name .
        ?gene <xGO> ?term .
        ?gene ?somehow ?hexo .
        FILTER(CONTAINS(STR(?hexo), "hexokinase"))
        ?term <goLabel> ?termLabel .
        ?term <goNamespace> ?ns .
      })");
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 parsed.status().ToString().c_str());
    return 1;
  }
  auto query =
      std::make_shared<const GraphPatternQuery>(parsed.MoveValueUnsafe());

  ClusterConfig cluster;
  cluster.num_nodes = 8;
  cluster.disk_per_node = 128 << 20;
  SimDfs dfs(cluster);
  if (!dfs.WriteFile("base", SerializeTriples(triples)).ok()) return 1;

  // 4. Compare the eager and lazy β-unnesting strategies.
  std::printf("\n%-20s %12s %12s %12s %10s\n", "strategy", "star-phase",
              "total write", "shuffle", "answers");
  for (EngineKind kind : {EngineKind::kNtgaEager, EngineKind::kNtgaLazy}) {
    EngineOptions options;
    options.kind = kind;
    auto exec = RunQuery(&dfs, "base", query, options);
    if (!exec.ok() || !exec->stats.ok()) {
      std::printf("%-20s failed\n", EngineKindToString(kind));
      continue;
    }
    const ExecStats& s = exec->stats;
    std::printf("%-20s %12s %12s %12s %10zu\n", EngineKindToString(kind),
                HumanBytes(s.star_phase_write_bytes).c_str(),
                HumanBytes(s.hdfs_write_bytes).c_str(),
                HumanBytes(s.shuffle_bytes).c_str(), exec->answers.size());
  }

  // 5. Print a couple of answers.
  EngineOptions options;
  options.kind = EngineKind::kNtgaLazy;
  auto exec = RunQuery(&dfs, "base", query, options);
  if (exec.ok() && exec->stats.ok()) {
    std::printf("\nsample answers:\n");
    size_t shown = 0;
    for (const Solution& s : exec->answers) {
      std::printf("  gene=%s somehow=%s term=%s (%s)\n",
                  s.Get("gene")->c_str(), s.Get("somehow")->c_str(),
                  s.Get("term")->c_str(), s.Get("termLabel")->c_str());
      if (++shown == 5) break;
    }
  }
  return 0;
}
