// Scenario: capacity planning for periodic scale-up workloads ("on-demand
// and pay-as-you-go", as the paper frames it). Given a query and a
// dataset, sweep cluster sizes and replication factors to find where each
// engine stops fitting on disk and how the modeled runtime scales — the
// what-if analysis behind Figures 9(a)/9(b).
//
//   ./build/examples/cluster_sizing

#include <cstdio>

#include "bench/bench_util.h"
#include "common/strings.h"
#include "datagen/bsbm.h"
#include "datagen/testbed.h"
#include "engine/engine.h"

using namespace rdfmr;

int main() {
  BsbmConfig config;
  config.num_products = 800;
  std::vector<Triple> triples = GenerateBsbm(config);
  uint64_t base_bytes = 0;
  for (const Triple& t : triples) base_bytes += t.Serialize().size() + 1;
  std::printf("dataset: %zu triples, %s\n", triples.size(),
              HumanBytes(base_bytes).c_str());

  auto query = GetTestbedQuery("B4");
  if (!query.ok()) return 1;
  std::printf("query B4: unbound-property pattern outside the join — the "
              "worst case for eager strategies\n\n");

  std::printf("%-10s %-6s %-20s %8s %12s\n", "capacity", "repl", "engine",
              "status", "modeled(s)");
  for (double capacity_factor : {6.0, 8.0, 16.0}) {
    for (uint32_t repl : {1u, 2u}) {
      ClusterConfig cluster;
      cluster.num_nodes = 8;
      cluster.disk_per_node = static_cast<uint64_t>(
          capacity_factor * static_cast<double>(base_bytes) /
          cluster.num_nodes);
      cluster.replication = repl;
      cluster.block_size = cluster.disk_per_node / 32 + 1;
      SimDfs dfs(cluster);
      if (!dfs.WriteFile("base", SerializeTriples(triples)).ok()) {
        std::printf("%-10.0fx %-6u base does not fit\n", capacity_factor,
                    repl);
        continue;
      }
      for (EngineKind kind :
           {EngineKind::kHive, EngineKind::kNtgaEager,
            EngineKind::kNtgaLazy}) {
        EngineOptions options;
        options.kind = kind;
        options.decode_answers = false;
        auto exec = RunQuery(&dfs, "base", *query, options);
        if (!exec.ok()) continue;
        if (exec->stats.ok()) {
          std::printf("%-10s %-6u %-20s %8s %12.1f\n",
                      StringFormat("%.0fx", capacity_factor).c_str(), repl,
                      EngineKindToString(kind), "ok",
                      exec->stats.modeled_seconds);
        } else {
          std::printf("%-10s %-6u %-20s %8s %12s\n",
                      StringFormat("%.0fx", capacity_factor).c_str(), repl,
                      EngineKindToString(kind), "X", "-");
        }
      }
    }
  }
  std::printf(
      "\nreading the table: the lazy NTGA strategy keeps fitting (and its "
      "runtime flat) where the relational and eager plans exhaust disk — "
      "the smaller the over-provisioning factor, the earlier they die.\n");
  return 0;
}
