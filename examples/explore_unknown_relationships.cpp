// Scenario: exploratory querying of a heterogeneous warehouse whose
// structure is only partially known — "Scientists in some way associated
// to the same city" (the paper's introduction). The relationship label is
// unknown, so the query uses an unbound-property triple pattern, and we
// compare how the relational-style engines and the NTGA strategies pay for
// it on the simulated cluster.
//
//   ./build/examples/explore_unknown_relationships

#include <cstdio>

#include "common/strings.h"
#include "datagen/dbpedia.h"
#include "engine/engine.h"
#include "ntga/logical_plan.h"
#include "query/sparql_parser.h"
#include "rdf/graph_stats.h"

using namespace rdfmr;

int main() {
  // A DBpedia-Infobox-like dataset: scientists connect to cities through
  // birthPlace, almaMater, residence, deathPlace... — the exact edge label
  // is exactly what the analyst does not know.
  DbpediaConfig config;
  config.num_entities = 1500;
  std::vector<Triple> triples = GenerateDbpedia(config);
  GraphStats stats = GraphStats::Compute(triples);
  std::printf("warehouse: %s\n", stats.Summary().c_str());

  auto parsed = ParseSparql("scientists-to-cities", R"(
      SELECT * WHERE {
        ?scientist <type> <Scientist> .
        ?scientist ?relation ?city .
        ?city <type> <City> .
        ?city <name> ?cityName .
      })");
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 parsed.status().ToString().c_str());
    return 1;
  }
  auto query =
      std::make_shared<const GraphPatternQuery>(parsed.MoveValueUnsafe());

  // Show what the rewrite rules do with this query under each strategy.
  for (NtgaStrategy strategy :
       {NtgaStrategy::kEager, NtgaStrategy::kLazyAuto}) {
    auto plan = RewriteToNtga(*query, strategy);
    if (plan.ok()) std::printf("\n%s", plan->ToString(*query).c_str());
  }

  ClusterConfig cluster;
  cluster.num_nodes = 5;
  cluster.disk_per_node = 64 << 20;
  cluster.replication = 1;
  SimDfs dfs(cluster);
  if (!dfs.WriteFile("base", SerializeTriples(triples)).ok()) return 1;

  std::printf("\n%-20s %6s %4s %12s %12s %12s %10s\n", "engine", "cycles",
              "FS", "read", "shuffle", "write", "answers");
  size_t answers = 0;
  for (EngineKind kind :
       {EngineKind::kPig, EngineKind::kHive, EngineKind::kNtgaEager,
        EngineKind::kNtgaLazy}) {
    EngineOptions options;
    options.kind = kind;
    auto exec = RunQuery(&dfs, "base", query, options);
    if (!exec.ok() || !exec->stats.ok()) {
      std::printf("%-20s failed\n", EngineKindToString(kind));
      continue;
    }
    answers = exec->answers.size();
    const ExecStats& s = exec->stats;
    std::printf("%-20s %6zu %4u %12s %12s %12s %10zu\n",
                EngineKindToString(kind), s.mr_cycles, s.full_scans,
                HumanBytes(s.hdfs_read_bytes).c_str(),
                HumanBytes(s.shuffle_bytes).c_str(),
                HumanBytes(s.hdfs_write_bytes).c_str(),
                exec->answers.size());
  }

  std::printf("\nall engines agree on %zu scientist-city relationships; "
              "the NTGA representation just pays far less I/O for them.\n",
              answers);
  return 0;
}
