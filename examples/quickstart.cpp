// Quickstart: load triples, write an unbound-property SPARQL query, run it
// on the NTGA engine over the simulated cluster, and inspect answers and
// execution metrics.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "common/strings.h"
#include "engine/engine.h"
#include "query/sparql_parser.h"
#include "rdf/triple.h"

using namespace rdfmr;

int main() {
  // 1. A small RDF graph: genes with labels, GO cross-references, and a
  //    few other relationships. Multi-valued properties (xGO) are the
  //    source of the redundancy the NTGA representation avoids.
  std::vector<Triple> triples = {
      {"gene9", "label", "retinoid receptor"},
      {"gene9", "synonym", "RCoR-1"},
      {"gene9", "xGO", "go1"},
      {"gene9", "xGO", "go9"},
      {"gene9", "xRef", "ref7"},
      {"gene42", "label", "hexokinase"},
      {"gene42", "xGO", "go1"},
      {"go1", "goLabel", "kinase activity"},
      {"go9", "goLabel", "dna binding"},
  };

  // 2. An unbound-property query: "genes related *in some way* (?up) to a
  //    GO term, and that term's label" — the property name is a variable.
  auto query = ParseSparql("quickstart", R"(
      SELECT * WHERE {
        ?gene <label> ?name .
        ?gene ?up ?term .
        FILTER(CONTAINS(STR(?term), "go"))
        ?term <goLabel> ?termLabel .
      })");
  if (!query.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 query.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", query->ToString().c_str());

  // 3. A simulated 4-node cluster with the triples loaded at "base".
  ClusterConfig cluster;
  cluster.num_nodes = 4;
  cluster.disk_per_node = 16 << 20;
  cluster.replication = 1;
  SimDfs dfs(cluster);
  Status st = dfs.WriteFile("base", SerializeTriples(triples));
  if (!st.ok()) {
    std::fprintf(stderr, "load error: %s\n", st.ToString().c_str());
    return 1;
  }

  // 4. Run with the paper's LazyUnnest strategy.
  EngineOptions options;
  options.kind = EngineKind::kNtgaLazy;
  auto exec = RunQuery(
      &dfs, "base",
      std::make_shared<const GraphPatternQuery>(query.MoveValueUnsafe()),
      options);
  if (!exec.ok() || !exec->stats.ok()) {
    std::fprintf(stderr, "execution failed\n");
    return 1;
  }

  std::printf("\n%zu answers:\n", exec->answers.size());
  for (const Solution& s : exec->answers) {
    std::printf("  %s\n", s.Serialize().c_str());
  }

  const ExecStats& stats = exec->stats;
  std::printf("\nexecution: %zu MapReduce cycles, %u full scan(s), "
              "%s read, %s shuffled, %s written\n",
              stats.mr_cycles, stats.full_scans,
              HumanBytes(stats.hdfs_read_bytes).c_str(),
              HumanBytes(stats.shuffle_bytes).c_str(),
              HumanBytes(stats.hdfs_write_bytes).c_str());
  return 0;
}
