// Scenario: a full exploration session over an unfamiliar warehouse,
// chaining the library's capabilities the way an analyst would:
//
//   1. profile the graph (statistics, multiplicity, multi-valuedness);
//   2. ask the advisor how to evaluate an unbound-property query;
//   3. run it with OPTIONAL enrichment ("add the label if there is one");
//   4. summarize with an aggregation constraint ("which subjects have at
//      least k distinct kinds of relationships?").
//
//   ./build/examples/warehouse_exploration_workflow

#include <cstdio>

#include "common/strings.h"
#include "datagen/btc.h"
#include "engine/advisor.h"
#include "engine/engine.h"
#include "query/sparql_parser.h"
#include "rdf/graph_stats.h"

using namespace rdfmr;

int main() {
  // An unfamiliar, heterogeneous crawl (the BTC-like mixture).
  BtcConfig config;
  config.num_dbpedia_entities = 1200;
  config.num_genes = 300;
  std::vector<Triple> triples = GenerateBtc(config);

  // --- 1. Profile.
  GraphStats stats = GraphStats::Compute(triples);
  std::printf("profile: %s\n", stats.Summary().c_str());
  std::printf("hottest properties by multiplicity:\n");
  int shown = 0;
  for (const auto& [property, ps] : stats.properties()) {
    if (ps.max_multiplicity >= 5 && shown < 4) {
      std::printf("  %-14s avg %.1f max %llu\n", property.c_str(),
                  ps.avg_multiplicity,
                  static_cast<unsigned long long>(ps.max_multiplicity));
      ++shown;
    }
  }

  // --- 2. The exploration query: "scientists related in some way to
  //        something that has a name; add the city's country if known".
  auto parsed = ParseSparql("explore", R"(
      SELECT * WHERE {
        ?s <type> <Scientist> . ?s ?rel ?thing .
        ?thing <name> ?thingName .
        OPTIONAL { ?thing <country> ?country }
      })");
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    return 1;
  }
  auto query =
      std::make_shared<const GraphPatternQuery>(parsed.MoveValueUnsafe());

  ClusterConfig cluster;
  cluster.num_nodes = 10;
  cluster.num_reducers = 10;
  cluster.disk_per_node = 256 << 20;
  StrategyAdvice advice = AdviseStrategy(*query, stats, cluster);
  std::printf("\nadvisor: %s (phi_m=%u)\n  %s\n",
              NtgaStrategyToString(advice.strategy), advice.phi_partitions,
              advice.rationale.c_str());

  // --- 3. Run it as advised.
  SimDfs dfs(cluster);
  if (!dfs.WriteFile("base", SerializeTriples(triples)).ok()) return 1;
  EngineOptions options;
  options.kind = EngineKind::kNtgaLazy;
  options.phi_partitions = advice.phi_partitions;
  auto exec = RunQuery(&dfs, "base", query, options);
  if (!exec.ok() || !exec->stats.ok()) return 1;
  size_t with_country = 0;
  for (const Solution& s : exec->answers) {
    if (s.Has("country")) ++with_country;
  }
  std::printf("\nexploration: %zu relationships found, %zu enriched with a "
              "country (%zu MR cycles, %s written)\n",
              exec->answers.size(), with_country, exec->stats.mr_cycles,
              HumanBytes(exec->stats.hdfs_write_bytes).c_str());

  // --- 4. Aggregate: which scientists have the most kinds of links?
  auto agg_parsed = ParseSparqlQuery("degree", R"(
      SELECT ?s (COUNT(DISTINCT ?rel) AS ?kinds)
      WHERE { ?s <type> <Scientist> . ?s ?rel ?o . }
      GROUP BY ?s
      HAVING (COUNT(DISTINCT ?rel) >= 5))");
  if (!agg_parsed.ok()) return 1;
  auto agg_query = std::make_shared<const GraphPatternQuery>(
      std::move(agg_parsed->query));
  auto agg_exec = RunAggregateQuery(&dfs, "base", agg_query,
                                    *agg_parsed->aggregate, options);
  if (!agg_exec.ok() || !agg_exec->stats.ok()) return 1;
  std::printf("\n%zu scientists connect through >=5 distinct edge kinds; "
              "top examples:\n",
              agg_exec->answers.size());
  shown = 0;
  for (const Solution& s : agg_exec->answers) {
    std::printf("  %s -> %s kinds\n", s.Get("s")->c_str(),
                s.Get("kinds")->c_str());
    if (++shown == 3) break;
  }
  return 0;
}
