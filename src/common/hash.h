// Stable, platform-independent hashing. The MapReduce partitioner must be
// deterministic across runs so experiments are reproducible, so we do not
// use std::hash (implementation-defined).

#ifndef RDFMR_COMMON_HASH_H_
#define RDFMR_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

namespace rdfmr {

/// \brief 64-bit FNV-1a over a byte string.
inline uint64_t Fnv1a64(std::string_view data) {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (unsigned char c : data) {
    h ^= c;
    h *= 0x100000001B3ULL;
  }
  return h;
}

/// \brief Mixes two hashes (boost::hash_combine style, 64-bit).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9E3779B97F4A7C15ULL + (a << 12) + (a >> 4));
}

}  // namespace rdfmr

#endif  // RDFMR_COMMON_HASH_H_
