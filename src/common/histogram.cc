#include "common/histogram.h"

#include <algorithm>
#include <bit>

#include "common/strings.h"

namespace rdfmr {

namespace {

size_t BucketIndex(uint64_t value) {
  if (value == 0) return 0;
  size_t index = static_cast<size_t>(std::bit_width(value));
  return std::min(index, Histogram::kNumBuckets - 1);
}

uint64_t BucketUpperBound(size_t index) {
  if (index == 0) return 0;
  if (index >= 64) return ~0ULL;
  return (1ULL << index) - 1;
}

}  // namespace

void Histogram::Add(uint64_t value) {
  buckets_[BucketIndex(value)] += 1;
  count_ += 1;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  for (size_t i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

uint64_t Histogram::Percentile(double p) const {
  if (count_ == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  // Rank of the percentile sample, 1-based (nearest-rank definition).
  uint64_t rank = static_cast<uint64_t>(p / 100.0 *
                                        static_cast<double>(count_));
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= rank) return std::min(BucketUpperBound(i), max_);
  }
  return max_;
}

void AtomicHistogram::Add(uint64_t value) {
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value,
                                     std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value,
                                     std::memory_order_relaxed)) {
  }
  // The bucket update comes last so a snapshot that counts this sample
  // (count derives from the buckets) has usually seen its sum/min/max too.
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
}

Histogram AtomicHistogram::Snapshot() const {
  Histogram folded;
  for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    const uint64_t n = buckets_[i].load(std::memory_order_relaxed);
    folded.buckets_[i] = n;
    folded.count_ += n;
  }
  folded.sum_ = sum_.load(std::memory_order_relaxed);
  folded.min_ = min_.load(std::memory_order_relaxed);
  folded.max_ = max_.load(std::memory_order_relaxed);
  if (folded.count_ > 0 && folded.min_ == ~0ULL) {
    // A racing Add bumped its bucket before publishing min_: report the
    // smallest defensible value instead of the empty-sentinel.
    folded.min_ = 0;
  }
  return folded;
}

std::string Histogram::ToJson() const {
  return StringFormat(
      "{\"count\":%llu,\"sum\":%llu,\"min\":%llu,\"max\":%llu,"
      "\"mean\":%.3f,\"p50\":%llu,\"p95\":%llu,\"p99\":%llu}",
      static_cast<unsigned long long>(count_),
      static_cast<unsigned long long>(sum_),
      static_cast<unsigned long long>(min()),
      static_cast<unsigned long long>(max_), Mean(),
      static_cast<unsigned long long>(Percentile(50)),
      static_cast<unsigned long long>(Percentile(95)),
      static_cast<unsigned long long>(Percentile(99)));
}

}  // namespace rdfmr
