#include "common/histogram.h"

#include <algorithm>
#include <bit>

#include "common/strings.h"

namespace rdfmr {

namespace {

size_t BucketIndex(uint64_t value) {
  if (value == 0) return 0;
  size_t index = static_cast<size_t>(std::bit_width(value));
  return std::min(index, Histogram::kNumBuckets - 1);
}

uint64_t BucketUpperBound(size_t index) {
  if (index == 0) return 0;
  if (index >= 64) return ~0ULL;
  return (1ULL << index) - 1;
}

}  // namespace

void Histogram::Add(uint64_t value) {
  buckets_[BucketIndex(value)] += 1;
  count_ += 1;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  for (size_t i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

uint64_t Histogram::Percentile(double p) const {
  if (count_ == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  // Rank of the percentile sample, 1-based (nearest-rank definition).
  uint64_t rank = static_cast<uint64_t>(p / 100.0 *
                                        static_cast<double>(count_));
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= rank) return std::min(BucketUpperBound(i), max_);
  }
  return max_;
}

std::string Histogram::ToJson() const {
  return StringFormat(
      "{\"count\":%llu,\"sum\":%llu,\"min\":%llu,\"max\":%llu,"
      "\"mean\":%.3f,\"p50\":%llu,\"p95\":%llu,\"p99\":%llu}",
      static_cast<unsigned long long>(count_),
      static_cast<unsigned long long>(sum_),
      static_cast<unsigned long long>(min()),
      static_cast<unsigned long long>(max_), Mean(),
      static_cast<unsigned long long>(Percentile(50)),
      static_cast<unsigned long long>(Percentile(95)),
      static_cast<unsigned long long>(Percentile(99)));
}

}  // namespace rdfmr
