// Power-of-two bucketed histogram for the query service's latency and
// queue-depth distributions. Fixed memory, O(1) Add, approximate
// percentiles (upper bucket bound), mergeable, JSON-exportable.
//
// Not internally synchronized: owners guard it with their own mutex (the
// service records under its stats lock).

#ifndef RDFMR_COMMON_HISTOGRAM_H_
#define RDFMR_COMMON_HISTOGRAM_H_

#include <array>
#include <cstdint>
#include <string>

namespace rdfmr {

/// \brief Histogram over uint64 samples with buckets [0], [1], [2,3],
/// [4,7], ... (bucket i>0 spans [2^(i-1), 2^i - 1]).
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 41;  // covers up to ~1.1e12

  void Add(uint64_t value);

  /// \brief Accumulates `other` into this.
  void Merge(const Histogram& other);

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double Mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) /
                             static_cast<double>(count_);
  }

  /// \brief Upper bound of the bucket holding the p-th percentile sample
  /// (p in [0, 100]); 0 when empty. Approximate by construction.
  uint64_t Percentile(double p) const;

  const std::array<uint64_t, kNumBuckets>& buckets() const {
    return buckets_;
  }

  /// \brief {"count":..,"sum":..,"min":..,"max":..,"mean":..,
  /// "p50":..,"p95":..,"p99":..} as a JSON object string.
  std::string ToJson() const;

 private:
  std::array<uint64_t, kNumBuckets> buckets_{};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = ~0ULL;
  uint64_t max_ = 0;
};

}  // namespace rdfmr

#endif  // RDFMR_COMMON_HISTOGRAM_H_
