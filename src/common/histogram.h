// Power-of-two bucketed histogram for the query service's latency and
// queue-depth distributions. Fixed memory, O(1) Add, approximate
// percentiles (upper bucket bound), mergeable, JSON-exportable.
//
// Not internally synchronized: owners guard it with their own mutex (the
// service records under its stats lock).

#ifndef RDFMR_COMMON_HISTOGRAM_H_
#define RDFMR_COMMON_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace rdfmr {

/// \brief Histogram over uint64 samples with buckets [0], [1], [2,3],
/// [4,7], ... (bucket i>0 spans [2^(i-1), 2^i - 1]).
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 41;  // covers up to ~1.1e12

  void Add(uint64_t value);

  /// \brief Accumulates `other` into this.
  void Merge(const Histogram& other);

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double Mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) /
                             static_cast<double>(count_);
  }

  /// \brief Upper bound of the bucket holding the p-th percentile sample
  /// (p in [0, 100]); 0 when empty. Approximate by construction.
  uint64_t Percentile(double p) const;

  const std::array<uint64_t, kNumBuckets>& buckets() const {
    return buckets_;
  }

  /// \brief {"count":..,"sum":..,"min":..,"max":..,"mean":..,
  /// "p50":..,"p95":..,"p99":..} as a JSON object string.
  std::string ToJson() const;

 private:
  friend class AtomicHistogram;  // Snapshot() fills these fields directly

  std::array<uint64_t, kNumBuckets> buckets_{};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = ~0ULL;
  uint64_t max_ = 0;
};

/// \brief Lock-free histogram over the same power-of-two buckets: Add is
/// a handful of relaxed atomic RMWs (the same discipline as the
/// operator-metrics gate and Counter in common/metrics.h), so concurrent
/// writers never serialize. Readers fold a point-in-time Histogram with
/// Snapshot(); the fold derives `count` from the bucket array so count
/// and buckets always agree, while `sum`/`min`/`max` are independently
/// relaxed loads — each monotone on its own, but a snapshot taken during
/// an Add may momentarily lag one sample on those fields (the documented
/// price of the lock-free hot path).
class AtomicHistogram {
 public:
  AtomicHistogram() = default;
  AtomicHistogram(const AtomicHistogram&) = delete;
  AtomicHistogram& operator=(const AtomicHistogram&) = delete;

  /// \brief Records `value`. Safe to call from any thread concurrently
  /// with other Add and Snapshot calls; never blocks.
  void Add(uint64_t value);

  /// \brief Folds the current state into a plain Histogram.
  Histogram Snapshot() const;

 private:
  std::array<std::atomic<uint64_t>, Histogram::kNumBuckets> buckets_{};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{~0ULL};
  std::atomic<uint64_t> max_{0};
};

}  // namespace rdfmr

#endif  // RDFMR_COMMON_HISTOGRAM_H_
