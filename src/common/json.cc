#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/strings.h"

namespace rdfmr {

namespace {

const JsonValue& NullValue() {
  static const JsonValue kNull;
  return kNull;
}

}  // namespace

const JsonValue& JsonValue::Get(const std::string& key) const {
  if (!is_object()) return NullValue();
  auto it = object_.find(key);
  return it == object_.end() ? NullValue() : it->second;
}

std::string JsonValue::GetString(const std::string& key,
                                 std::string fallback) const {
  const JsonValue& v = Get(key);
  return v.is_string() ? v.string_ : fallback;
}

uint64_t JsonValue::GetUint(const std::string& key, uint64_t fallback) const {
  const JsonValue& v = Get(key);
  return v.is_number() ? v.AsUint(fallback) : fallback;
}

double JsonValue::GetDouble(const std::string& key, double fallback) const {
  const JsonValue& v = Get(key);
  return v.is_number() ? v.number_ : fallback;
}

bool JsonValue::GetBool(const std::string& key, bool fallback) const {
  const JsonValue& v = Get(key);
  return v.is_bool() ? v.bool_ : fallback;
}

bool JsonValue::Has(const std::string& key) const {
  return is_object() && object_.count(key) > 0;
}

void JsonValue::Set(std::string key, JsonValue value) {
  kind_ = Kind::kObject;
  object_[std::move(key)] = std::move(value);
}

void JsonValue::Append(JsonValue value) {
  kind_ = Kind::kArray;
  array_.push_back(std::move(value));
}

bool JsonValue::operator==(const JsonValue& o) const {
  if (kind_ != o.kind_) return false;
  switch (kind_) {
    case Kind::kNull:
      return true;
    case Kind::kBool:
      return bool_ == o.bool_;
    case Kind::kNumber:
      return number_ == o.number_;
    case Kind::kString:
      return string_ == o.string_;
    case Kind::kArray:
      return array_ == o.array_;
    case Kind::kObject:
      return object_ == o.object_;
  }
  return false;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StringFormat("\\u%04x", c);
        } else {
          out += c;  // UTF-8 bytes pass through unchanged
        }
    }
  }
  return out;
}

void JsonValue::DumpTo(std::string* out) const {
  switch (kind_) {
    case Kind::kNull:
      *out += "null";
      return;
    case Kind::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Kind::kNumber: {
      if (std::isfinite(number_) && number_ == std::floor(number_) &&
          std::fabs(number_) < 9.007199254740992e15) {
        *out += StringFormat("%lld", static_cast<long long>(number_));
      } else if (std::isfinite(number_)) {
        *out += StringFormat("%.17g", number_);
      } else {
        *out += "null";  // JSON has no Inf/NaN
      }
      return;
    }
    case Kind::kString:
      *out += '"';
      *out += JsonEscape(string_);
      *out += '"';
      return;
    case Kind::kArray: {
      *out += '[';
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) *out += ',';
        array_[i].DumpTo(out);
      }
      *out += ']';
      return;
    }
    case Kind::kObject: {
      *out += '{';
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) *out += ',';
        first = false;
        *out += '"';
        *out += JsonEscape(key);
        *out += "\":";
        value.DumpTo(out);
      }
      *out += '}';
      return;
    }
  }
}

std::string JsonValue::Dump() const {
  std::string out;
  DumpTo(&out);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    RDFMR_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& msg) const {
    return Status::IoError(
        StringFormat("JSON parse error at offset %zu: %s", pos_,
                     msg.c_str()));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    if (++depth_ > kMaxDepth) return Error("nesting too deep");
    struct DepthGuard {
      int* d;
      ~DepthGuard() { --*d; }
    } guard{&depth_};
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') {
      RDFMR_ASSIGN_OR_RETURN(std::string s, ParseString());
      return JsonValue(std::move(s));
    }
    if (ConsumeWord("null")) return JsonValue();
    if (ConsumeWord("true")) return JsonValue(true);
    if (ConsumeWord("false")) return JsonValue(false);
    return ParseNumber();
  }

  Result<JsonValue> ParseNumber() {
    size_t start = pos_;
    Consume('-');
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0') {
      return Error("malformed number '" + token + "'");
    }
    return JsonValue(value);
  }

  Result<std::string> ParseString() {
    if (!Consume('"')) return Error("expected '\"'");
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          uint32_t code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<uint32_t>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<uint32_t>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<uint32_t>(h - 'A' + 10);
            } else {
              return Error("bad hex digit in \\u escape");
            }
          }
          // Encode the code point as UTF-8 (surrogate pairs are passed
          // through as two 3-byte sequences; the protocol never emits
          // them, so lossless round-tripping of BMP text suffices).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return Error(std::string("unknown escape '\\") + esc + "'");
      }
    }
    return Error("unterminated string");
  }

  Result<JsonValue> ParseArray() {
    if (!Consume('[')) return Error("expected '['");
    JsonValue::Array items;
    SkipWhitespace();
    if (Consume(']')) return JsonValue(std::move(items));
    while (true) {
      RDFMR_ASSIGN_OR_RETURN(JsonValue item, ParseValue());
      items.push_back(std::move(item));
      SkipWhitespace();
      if (Consume(']')) return JsonValue(std::move(items));
      if (!Consume(',')) return Error("expected ',' or ']' in array");
    }
  }

  Result<JsonValue> ParseObject() {
    if (!Consume('{')) return Error("expected '{'");
    JsonValue::Object members;
    SkipWhitespace();
    if (Consume('}')) return JsonValue(std::move(members));
    while (true) {
      SkipWhitespace();
      RDFMR_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      RDFMR_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
      members[std::move(key)] = std::move(value);
      SkipWhitespace();
      if (Consume('}')) return JsonValue(std::move(members));
      if (!Consume(',')) return Error("expected ',' or '}' in object");
    }
  }

  static constexpr int kMaxDepth = 64;

  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace rdfmr
