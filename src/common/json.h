// Minimal JSON value model, parser, and serializer for the query service's
// newline-delimited JSON protocol and the stats/bench exports. Covers the
// full JSON grammar (null, bool, number, string with escapes, array,
// object); numbers are stored as double (integers up to 2^53 round-trip
// exactly, which covers every counter this codebase emits).
//
// No external dependency: the container ships no JSON library, and the
// protocol needs only a few KB of code.

#ifndef RDFMR_COMMON_JSON_H_
#define RDFMR_COMMON_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace rdfmr {

/// \brief One JSON value. Objects keep insertion order is NOT preserved
/// (std::map, sorted keys) — serialization is therefore canonical, which
/// the tests rely on for byte comparisons.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<JsonValue>;
  using Object = std::map<std::string, JsonValue>;

  JsonValue() : kind_(Kind::kNull) {}
  JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}  // NOLINT
  JsonValue(double n) : kind_(Kind::kNumber), number_(n) {}     // NOLINT
  JsonValue(int64_t n)  // NOLINT
      : kind_(Kind::kNumber), number_(static_cast<double>(n)) {}
  JsonValue(uint64_t n)  // NOLINT
      : kind_(Kind::kNumber), number_(static_cast<double>(n)) {}
  JsonValue(int n) : kind_(Kind::kNumber), number_(n) {}  // NOLINT
  JsonValue(std::string s)  // NOLINT
      : kind_(Kind::kString), string_(std::move(s)) {}
  JsonValue(const char* s) : kind_(Kind::kString), string_(s) {}  // NOLINT
  JsonValue(Array a) : kind_(Kind::kArray), array_(std::move(a)) {}  // NOLINT
  JsonValue(Object o)  // NOLINT
      : kind_(Kind::kObject), object_(std::move(o)) {}

  static JsonValue MakeArray() { return JsonValue(Array{}); }
  static JsonValue MakeObject() { return JsonValue(Object{}); }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool AsBool(bool fallback = false) const {
    return is_bool() ? bool_ : fallback;
  }
  double AsDouble(double fallback = 0.0) const {
    return is_number() ? number_ : fallback;
  }
  uint64_t AsUint(uint64_t fallback = 0) const {
    return is_number() && number_ >= 0 ? static_cast<uint64_t>(number_)
                                       : fallback;
  }
  const std::string& AsString() const { return string_; }
  const Array& AsArray() const { return array_; }
  Array& MutableArray() { return array_; }
  const Object& AsObject() const { return object_; }
  Object& MutableObject() { return object_; }

  /// \brief Object member access; returns a shared null value when absent
  /// or when this is not an object.
  const JsonValue& Get(const std::string& key) const;

  /// \brief Convenience typed getters over Get().
  std::string GetString(const std::string& key,
                        std::string fallback = "") const;
  uint64_t GetUint(const std::string& key, uint64_t fallback = 0) const;
  double GetDouble(const std::string& key, double fallback = 0.0) const;
  bool GetBool(const std::string& key, bool fallback = false) const;
  bool Has(const std::string& key) const;

  /// \brief Sets an object member (this must be an object).
  void Set(std::string key, JsonValue value);

  /// \brief Appends to an array (this must be an array).
  void Append(JsonValue value);

  /// \brief Compact single-line serialization (no trailing newline).
  /// Integral numbers print without a decimal point.
  std::string Dump() const;

  bool operator==(const JsonValue& o) const;

 private:
  void DumpTo(std::string* out) const;

  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// \brief Parses one JSON document; trailing garbage is an error.
Result<JsonValue> ParseJson(std::string_view text);

/// \brief Escapes `s` as the *inside* of a JSON string (no quotes added).
std::string JsonEscape(std::string_view s);

}  // namespace rdfmr

#endif  // RDFMR_COMMON_JSON_H_
