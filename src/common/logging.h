// Minimal leveled logging for the library. Defaults to WARNING so tests and
// benches stay quiet; benches raise verbosity for progress reporting.

#ifndef RDFMR_COMMON_LOGGING_H_
#define RDFMR_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace rdfmr {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// \brief Sets the global minimum level that is emitted to stderr.
void SetLogLevel(LogLevel level);

/// \brief Returns the current global minimum log level.
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink that emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define RDFMR_LOG(level)                                             \
  ::rdfmr::internal::LogMessage(::rdfmr::LogLevel::k##level, __FILE__, \
                                __LINE__)

/// \brief Fatal invariant check; aborts with a message when violated.
#define RDFMR_CHECK(cond)                                           \
  if (!(cond))                                                      \
  ::rdfmr::internal::CheckFailure(#cond, __FILE__, __LINE__).stream()

namespace internal {

class CheckFailure {
 public:
  CheckFailure(const char* expr, const char* file, int line);
  [[noreturn]] ~CheckFailure();
  std::ostringstream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace rdfmr

#endif  // RDFMR_COMMON_LOGGING_H_
