// Byte-bounded LRU cache used by the query service's result cache (and
// entry-bounded, via a unit cost function, by its plan cache).
//
// Not internally synchronized: the owner serializes access (the service
// holds its own mutex across lookup + insert so hit/miss accounting stays
// consistent with the cache state).

#ifndef RDFMR_COMMON_LRU_CACHE_H_
#define RDFMR_COMMON_LRU_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <string>
#include <unordered_map>
#include <utility>

namespace rdfmr {

/// \brief String-keyed LRU cache bounded by the sum of per-entry charges.
///
/// A charge is supplied with each Put (bytes for result payloads, 1 for
/// count-bounded caches). Inserting evicts least-recently-used entries
/// until the total charge fits the capacity; an entry larger than the
/// whole capacity is refused (returns false).
template <typename V>
class LruCache {
 public:
  explicit LruCache(uint64_t capacity) : capacity_(capacity) {}

  /// \brief Looks up `key`, refreshing its recency. Returns nullptr on
  /// miss. The pointer is invalidated by any later Put/Erase/Clear.
  const V* Get(const std::string& key) {
    auto it = index_.find(key);
    if (it == index_.end()) return nullptr;
    entries_.splice(entries_.begin(), entries_, it->second);
    return &it->second->value;
  }

  /// \brief Inserts or replaces `key`. Returns false (cache unchanged
  /// beyond removing any previous entry) when `charge` alone exceeds the
  /// capacity.
  bool Put(std::string key, V value, uint64_t charge) {
    Erase(key);
    if (charge > capacity_) return false;
    entries_.push_front(Entry{std::move(key), std::move(value), charge});
    index_[entries_.front().key] = entries_.begin();
    used_ += charge;
    while (used_ > capacity_ && !entries_.empty()) {
      EraseEntry(std::prev(entries_.end()));
    }
    return true;
  }

  /// \brief Evicts the least-recently-used entry, returning its charge (0
  /// when empty). ShardedLruCache drives its global-budget eviction with
  /// this, one entry at a time across shards.
  uint64_t EvictOne() {
    if (entries_.empty()) return 0;
    auto it = std::prev(entries_.end());
    const uint64_t charge = it->charge;
    EraseEntry(it);
    return charge;
  }

  /// \brief Removes `key` if present; returns whether it was present.
  bool Erase(const std::string& key) {
    auto it = index_.find(key);
    if (it == index_.end()) return false;
    EraseEntry(it->second);
    return true;
  }

  /// \brief Removes every entry whose key satisfies `pred` (dataset-drop
  /// invalidation). Returns the number removed.
  size_t EraseIf(const std::function<bool(const std::string&)>& pred) {
    size_t removed = 0;
    for (auto it = entries_.begin(); it != entries_.end();) {
      auto next = std::next(it);
      if (pred(it->key)) {
        EraseEntry(it);
        ++removed;
      }
      it = next;
    }
    return removed;
  }

  void Clear() {
    entries_.clear();
    index_.clear();
    used_ = 0;
  }

  size_t size() const { return entries_.size(); }
  uint64_t used() const { return used_; }
  uint64_t capacity() const { return capacity_; }

 private:
  struct Entry {
    std::string key;
    V value;
    uint64_t charge;
  };
  using EntryList = std::list<Entry>;

  void EraseEntry(typename EntryList::iterator it) {
    used_ -= it->charge;
    index_.erase(it->key);
    entries_.erase(it);
  }

  uint64_t capacity_;
  uint64_t used_ = 0;
  EntryList entries_;  // front = most recently used
  std::unordered_map<std::string, typename EntryList::iterator> index_;
};

}  // namespace rdfmr

#endif  // RDFMR_COMMON_LRU_CACHE_H_
