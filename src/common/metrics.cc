#include "common/metrics.h"

#include <vector>

#include "common/logging.h"

namespace rdfmr {
namespace {

// Unit suffixes accepted by IsValidMetricName; tools/metrics_lint.py
// enforces the same list over source literals and captured scrapes.
constexpr std::string_view kMetricUnits[] = {
    "total", "bytes",  "seconds", "micros", "records",
    "groups", "calls", "ratio",   "count",
};

std::atomic<bool> g_operator_metrics_enabled{false};

bool IsLowerSnakeToken(std::string_view token) {
  if (token.empty()) return false;
  for (char c : token) {
    if (!((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9'))) return false;
  }
  return true;
}

// Upper bound of power-of-two bucket i: 0, 1, 3, 7, 15, ...
uint64_t BucketUpperBound(size_t i) {
  if (i == 0) return 0;
  return (i >= 64 ? ~0ULL : (1ULL << i) - 1);
}

}  // namespace

void AppendPrometheusHistogram(const std::string& name, const Histogram& h,
                               std::string* out) {
  size_t last_bucket = 0;
  for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    if (h.buckets()[i] > 0) last_bucket = i;
  }
  uint64_t cumulative = 0;
  for (size_t i = 0; i <= last_bucket && h.count() > 0; ++i) {
    cumulative += h.buckets()[i];
    out->append(name);
    out->append("_bucket{le=\"");
    out->append(std::to_string(BucketUpperBound(i)));
    out->append("\"} ");
    out->append(std::to_string(cumulative));
    out->push_back('\n');
  }
  out->append(name);
  out->append("_bucket{le=\"+Inf\"} ");
  out->append(std::to_string(h.count()));
  out->push_back('\n');
  out->append(name);
  out->append("_sum ");
  out->append(std::to_string(h.sum()));
  out->push_back('\n');
  out->append(name);
  out->append("_count ");
  out->append(std::to_string(h.count()));
  out->push_back('\n');
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Entry* MetricsRegistry::GetOrCreate(std::string_view name,
                                                     std::string_view help,
                                                     Kind kind) {
  RDFMR_CHECK(IsValidMetricName(name));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    RDFMR_CHECK(it->second.kind == kind);
    return &it->second;
  }
  Entry entry;
  entry.kind = kind;
  entry.help = std::string(help);
  switch (kind) {
    case Kind::kCounter:
      entry.counter = std::make_unique<Counter>();
      break;
    case Kind::kGauge:
      entry.gauge = std::make_unique<Gauge>();
      break;
    case Kind::kHistogram:
      entry.histogram = std::make_unique<HistogramMetric>();
      break;
  }
  auto inserted = entries_.emplace(std::string(name), std::move(entry));
  return &inserted.first->second;
}

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     std::string_view help) {
  return GetOrCreate(name, help, Kind::kCounter)->counter.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name,
                                 std::string_view help) {
  return GetOrCreate(name, help, Kind::kGauge)->gauge.get();
}

HistogramMetric* MetricsRegistry::GetHistogram(std::string_view name,
                                               std::string_view help) {
  return GetOrCreate(name, help, Kind::kHistogram)->histogram.get();
}

std::string MetricsRegistry::ToPrometheusText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, entry] : entries_) {
    if (!entry.help.empty()) {
      out.append("# HELP ");
      out.append(name);
      out.push_back(' ');
      out.append(PrometheusEscapeHelp(entry.help));
      out.push_back('\n');
    }
    out.append("# TYPE ");
    out.append(name);
    switch (entry.kind) {
      case Kind::kCounter:
        out.append(" counter\n");
        out.append(name);
        out.push_back(' ');
        out.append(std::to_string(entry.counter->Value()));
        out.push_back('\n');
        break;
      case Kind::kGauge:
        out.append(" gauge\n");
        out.append(name);
        out.push_back(' ');
        out.append(std::to_string(entry.gauge->Value()));
        out.push_back('\n');
        break;
      case Kind::kHistogram:
        out.append(" histogram\n");
        AppendPrometheusHistogram(name, entry.histogram->Snapshot(), &out);
        break;
    }
  }
  return out;
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{";
  bool first = true;
  for (const auto& [name, entry] : entries_) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    out.append(name);
    out.append("\":");
    switch (entry.kind) {
      case Kind::kCounter:
        out.append(std::to_string(entry.counter->Value()));
        break;
      case Kind::kGauge:
        out.append(std::to_string(entry.gauge->Value()));
        break;
      case Kind::kHistogram:
        out.append(entry.histogram->Snapshot().ToJson());
        break;
    }
  }
  out.push_back('}');
  return out;
}

void MetricsRegistry::ResetForTesting() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

bool MetricsRegistry::IsValidMetricName(std::string_view name) {
  std::vector<std::string_view> tokens;
  size_t start = 0;
  while (start <= name.size()) {
    size_t end = name.find('_', start);
    if (end == std::string_view::npos) end = name.size();
    tokens.push_back(name.substr(start, end - start));
    start = end + 1;
  }
  // rdfmr + area + at least one name word + unit.
  if (tokens.size() < 4) return false;
  if (tokens.front() != "rdfmr") return false;
  for (std::string_view token : tokens) {
    if (!IsLowerSnakeToken(token)) return false;
  }
  for (std::string_view unit : kMetricUnits) {
    if (tokens.back() == unit) return true;
  }
  return false;
}

std::string PrometheusEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out.append("\\\\");
        break;
      case '\n':
        out.append("\\n");
        break;
      case '"':
        out.append("\\\"");
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string PrometheusEscapeHelp(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out.append("\\\\");
        break;
      case '\n':
        out.append("\\n");
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

void EnableOperatorMetrics(bool enabled) {
  g_operator_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

bool OperatorMetricsEnabled() {
  return g_operator_metrics_enabled.load(std::memory_order_relaxed);
}

}  // namespace rdfmr
