// Process-wide named-metric registry: counters, gauges, and the existing
// power-of-two histograms behind one uniform API, exported as Prometheus
// text exposition format or canonical JSON.
//
// Naming convention (enforced at registration and by tools/metrics_lint.py):
//   rdfmr_<area>_<name>_<unit>
// where <area> is a subsystem slug (mr, ntga, rel, engine, service, ...),
// <name> is one or more lowercase snake_case words, and <unit> is one of
// the units listed in kMetricUnits (total, bytes, seconds, micros,
// records, groups, calls, ratio, count).
//
// Thread-safety: registration is mutex-guarded; Counter/Gauge updates are
// lock-free relaxed atomics; HistogramMetric guards the underlying
// Histogram with its own mutex. Returned metric pointers stay valid until
// ResetForTesting() is called on the owning registry.
//
// The registry also owns the global operator-instrumentation gate: the
// σ^βγ/μ^β operators only take clock readings when a sink (trace export,
// micro-bench, test) has explicitly enabled it, keeping the default path
// at one relaxed atomic load.

#ifndef RDFMR_COMMON_METRICS_H_
#define RDFMR_COMMON_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "common/histogram.h"

namespace rdfmr {

/// \brief Monotonically increasing counter (relaxed atomic).
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  std::atomic<uint64_t> value_{0};
};

/// \brief Instantaneous signed value (relaxed atomic).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  std::atomic<int64_t> value_{0};
};

/// \brief Mutex-guarded power-of-two Histogram (see common/histogram.h).
class HistogramMetric {
 public:
  void Observe(uint64_t value) {
    std::lock_guard<std::mutex> lock(mu_);
    histogram_.Add(value);
  }
  Histogram Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return histogram_;
  }

 private:
  friend class MetricsRegistry;
  mutable std::mutex mu_;
  Histogram histogram_;
};

class MetricsRegistry {
 public:
  /// \brief The process-wide registry used by all instrumentation sites.
  static MetricsRegistry& Global();

  /// \brief Get-or-create by name. The name must satisfy
  /// IsValidMetricName and must not already be registered as a different
  /// metric kind (RDFMR_CHECK on violation). `help` is recorded on first
  /// registration only.
  Counter* GetCounter(std::string_view name, std::string_view help = "");
  Gauge* GetGauge(std::string_view name, std::string_view help = "");
  HistogramMetric* GetHistogram(std::string_view name,
                                std::string_view help = "");

  /// \brief Prometheus text exposition format (HELP/TYPE per metric,
  /// metrics sorted by name, histograms as cumulative `_bucket{le=...}`
  /// series plus `_sum`/`_count`).
  std::string ToPrometheusText() const;

  /// \brief Canonical JSON object string {"name":value-or-histogram,...}.
  std::string ToJson() const;

  /// \brief Drops every registered metric. Invalidates all previously
  /// returned metric pointers — test-only, call between test cases.
  void ResetForTesting();

  /// \brief True iff `name` matches rdfmr_<area>_<name>_<unit> with a
  /// known unit (see header comment).
  static bool IsValidMetricName(std::string_view name);

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<HistogramMetric> histogram;
  };

  Entry* GetOrCreate(std::string_view name, std::string_view help,
                     Kind kind);

  mutable std::mutex mu_;
  std::map<std::string, Entry, std::less<>> entries_;
};

/// \brief Appends one histogram as Prometheus cumulative `_bucket{le=..}`
/// series plus `_sum`/`_count` (no HELP/TYPE lines). Shared by the
/// registry export and the service's stats exposition.
void AppendPrometheusHistogram(const std::string& name, const Histogram& h,
                               std::string* out);

/// \brief Escapes a label value for Prometheus exposition (backslash,
/// double quote, newline).
std::string PrometheusEscape(std::string_view s);

/// \brief Escapes HELP text (backslash and newline only, per the text
/// exposition format).
std::string PrometheusEscapeHelp(std::string_view s);

/// \brief Global gate for per-operator timing instrumentation. Disabled
/// by default; enabled by `--trace`, `--trace-dir`, bench/micro_operators
/// and the observability tests.
void EnableOperatorMetrics(bool enabled);
bool OperatorMetricsEnabled();

/// \brief Records elapsed microseconds into a histogram metric on
/// destruction. Only constructed behind OperatorMetricsEnabled().
class ScopedTimerMicros {
 public:
  explicit ScopedTimerMicros(HistogramMetric* sink)
      : sink_(sink), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimerMicros() {
    if (sink_ == nullptr) return;
    sink_->Observe(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start_)
            .count()));
  }
  ScopedTimerMicros(const ScopedTimerMicros&) = delete;
  ScopedTimerMicros& operator=(const ScopedTimerMicros&) = delete;

 private:
  HistogramMetric* sink_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace rdfmr

#endif  // RDFMR_COMMON_METRICS_H_
