#include "common/random.h"

#include <cmath>

#include "common/logging.h"

namespace rdfmr {

uint64_t Rng::Next() {
  // splitmix64 (public domain, Sebastiano Vigna).
  uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rng::Uniform(uint64_t bound) {
  RDFMR_CHECK(bound > 0) << "Uniform bound must be positive";
  // Rejection sampling to avoid modulo bias for large bounds.
  uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  RDFMR_CHECK(lo <= hi) << "UniformRange requires lo <= hi";
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::Chance(double p) { return NextDouble() < p; }

Rng Rng::Fork() { return Rng(Next()); }

ZipfSampler::ZipfSampler(uint64_t n, double s) : n_(n) {
  RDFMR_CHECK(n > 0) << "ZipfSampler needs n > 0";
  cdf_.reserve(n);
  double total = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i), s);
    cdf_.push_back(total);
  }
  for (double& v : cdf_) v /= total;
}

uint64_t ZipfSampler::Sample(Rng* rng) const {
  double u = rng->NextDouble();
  // Binary search for the first cdf entry >= u.
  uint64_t lo = 0, hi = n_ - 1;
  while (lo < hi) {
    uint64_t mid = (lo + hi) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace rdfmr
