// Deterministic pseudo-random number generation for data generators and
// property tests. All generators in rdfmr are seeded explicitly so every
// experiment is exactly reproducible.

#ifndef RDFMR_COMMON_RANDOM_H_
#define RDFMR_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

namespace rdfmr {

/// \brief splitmix64-based PRNG: tiny, fast, and identical across platforms.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed + 0x9E3779B97F4A7C15ULL) {}

  /// \brief Next raw 64-bit value.
  uint64_t Next();

  /// \brief Uniform integer in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound);

  /// \brief Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// \brief Uniform double in [0, 1).
  double NextDouble();

  /// \brief Bernoulli trial with probability p of true.
  bool Chance(double p);

  /// \brief Forks an independent stream (stable given the same call order).
  Rng Fork();

 private:
  uint64_t state_;
};

/// \brief Zipf-distributed sampler over {0, .., n-1} with exponent s.
///
/// Used to model skewed property multiplicity in real-world RDF data
/// (Bio2RDF property multiplicity reaches 13K for a few hot properties).
class ZipfSampler {
 public:
  ZipfSampler(uint64_t n, double s);

  /// \brief Samples a rank; rank 0 is the most probable.
  uint64_t Sample(Rng* rng) const;

  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  std::vector<double> cdf_;
};

}  // namespace rdfmr

#endif  // RDFMR_COMMON_RANDOM_H_
