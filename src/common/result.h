// Result<T>: value-or-Status, in the style of arrow::Result.

#ifndef RDFMR_COMMON_RESULT_H_
#define RDFMR_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace rdfmr {

/// \brief Holds either a value of type T or a non-OK Status.
///
/// Use `RDFMR_ASSIGN_OR_RETURN` to unwrap in fallible functions.
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit, like arrow::Result).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from a non-OK status. Asserts the status is not OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok());
  }

  bool ok() const { return value_.has_value(); }

  const Status& status() const {
    static const Status kOk;
    return value_.has_value() ? kOk : status_;
  }

  /// \brief Access the contained value; requires ok().
  T& ValueOrDie() {
    assert(ok());
    return *value_;
  }
  const T& ValueOrDie() const {
    assert(ok());
    return *value_;
  }

  T& operator*() { return ValueOrDie(); }
  const T& operator*() const { return ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }

  /// \brief Moves the value out; requires ok().
  T MoveValueUnsafe() {
    assert(ok());
    return std::move(*value_);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

/// \brief Unwraps a Result into `lhs`, or returns its error status.
#define RDFMR_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                \
  lhs = tmp.MoveValueUnsafe()

#define RDFMR_CONCAT_INNER(a, b) a##b
#define RDFMR_CONCAT(a, b) RDFMR_CONCAT_INNER(a, b)

#define RDFMR_ASSIGN_OR_RETURN(lhs, rexpr) \
  RDFMR_ASSIGN_OR_RETURN_IMPL(RDFMR_CONCAT(_res_, __LINE__), lhs, rexpr)

}  // namespace rdfmr

#endif  // RDFMR_COMMON_RESULT_H_
