#include "common/runtime_options.h"

#include <cstdlib>

namespace rdfmr {
namespace {

uint32_t Resolve(uint32_t value, bool cli_pinned, const char* env_name,
                 uint32_t config_default) {
  if (cli_pinned && value > 0) return value;
  uint32_t env = EnvRuntimeValue(env_name);
  if (env > 0) return env;
  if (value > 0) return value;
  return config_default;
}

}  // namespace

uint32_t EnvRuntimeValue(const char* name) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return 0;
  char* end = nullptr;
  unsigned long parsed = std::strtoul(raw, &end, 10);  // NOLINT(runtime/int)
  if (end == raw || *end != '\0') return 0;
  if (parsed == 0 || parsed > 0xffffffffUL) return 0;
  return static_cast<uint32_t>(parsed);
}

uint32_t ResolveNumThreads(const RuntimeOptions& options,
                           uint32_t config_default) {
  return Resolve(options.num_threads, options.cli_pinned, "RDFMR_THREADS",
                 config_default);
}

uint32_t ResolveMaxAttempts(const RuntimeOptions& options,
                            uint32_t config_default) {
  return Resolve(options.max_attempts, options.cli_pinned,
                 "RDFMR_MAX_ATTEMPTS", config_default);
}

}  // namespace rdfmr
