// RuntimeOptions: the single host-side runtime tuning surface shared by
// the engine, workflow runner, service, and CLI. Collapses the previously
// duplicated `num_threads` / `max_attempts` knobs from EngineOptions and
// ClusterConfig behind one documented precedence rule:
//
//   CLI flag  >  environment  >  programmatic option  >  config default
//
//   1. CLI flag: `rdfmr run --threads/--max-attempts` set the field and
//      mark it `cli_pinned`, which outranks everything.
//   2. Environment: RDFMR_THREADS / RDFMR_MAX_ATTEMPTS (positive
//      integers; unset, empty, or unparsable values are ignored).
//   3. Programmatic option: a nonzero field set by library callers
//      (including the deprecated EngineOptions aliases).
//   4. Config default: ClusterConfig::num_threads /
//      ClusterConfig::max_task_attempts.
//
// A field value of 0 always means "unset, fall through". Both knobs are
// wall-clock/retry-policy only and are excluded from the service's plan
// and result cache fingerprints where they cannot change deterministic
// results (num_threads never can; max_attempts changes retry accounting
// and therefore *is* fingerprinted).

#ifndef RDFMR_COMMON_RUNTIME_OPTIONS_H_
#define RDFMR_COMMON_RUNTIME_OPTIONS_H_

#include <cstdint>

namespace rdfmr {

struct RuntimeOptions {
  /// Host-side execution parallelism (map tasks / reducer partitions run
  /// concurrently). 0 = unset. Output and metrics are byte-identical for
  /// any value by the runtime's determinism contract.
  uint32_t num_threads = 0;

  /// Maximum attempts per DFS task operation before the job fails
  /// (transient failures only). 0 = unset, 1 disables retry.
  uint32_t max_attempts = 0;

  /// True when the nonzero fields above came from explicit CLI flags, in
  /// which case they outrank the RDFMR_* environment variables.
  bool cli_pinned = false;
};

/// \brief Applies the precedence rule for the thread count. Returns a
/// value >= 1 given `config_default >= 1`.
uint32_t ResolveNumThreads(const RuntimeOptions& options,
                           uint32_t config_default);

/// \brief Applies the precedence rule for the attempt budget.
uint32_t ResolveMaxAttempts(const RuntimeOptions& options,
                            uint32_t config_default);

/// \brief Reads a positive uint32 from environment variable `name`;
/// returns 0 when unset, empty, non-numeric, zero, or out of range.
uint32_t EnvRuntimeValue(const char* name);

}  // namespace rdfmr

#endif  // RDFMR_COMMON_RUNTIME_OPTIONS_H_
