// Lock-striped LRU cache: N independent LruCache shards, each behind its
// own mutex, selected by a stable hash of the key. Concurrent Get/Put on
// different shards never contend, so the query service's warm hot path
// scales with its worker count instead of serializing on one cache lock
// (the inverse-scaling bug BENCH_service.json used to show).
//
// The charge budget is GLOBAL, not sliced per shard: every shard's
// LruCache is given the full capacity (so admission matches the single
// LruCache it replaced — only an entry larger than the whole cache is
// refused), and a relaxed atomic tracks the total charge. When an insert
// pushes the total past the capacity, eviction walks the shards via a
// round-robin cursor, popping one LRU entry per visited shard until the
// budget holds again (the inserting key's own shard is skipped on the
// first pass so a fresh entry is not its own first victim). Eviction
// order across shards is therefore approximate LRU — within a shard it is
// exact — and concurrent inserts may briefly over-evict; both are the
// price of never holding two locks. A naive per-shard capacity slice was
// tried first and rejected: slices shrink as shards scale with workers,
// silently refusing large entries the unsharded cache accepted
// (bench_service's biggest answer set became uncacheable at 16 workers,
// which re-created the very inverse scaling the striping exists to fix).
//
// Semantics otherwise match LruCache: overwrite releases the old charge
// before adding the new one, and EraseByPrefix visits every shard (prefix
// keys hash anywhere), which is what keeps dataset-epoch invalidation
// exact.
//
// Lock discipline: shard mutexes are leaf locks. No ShardedLruCache call
// acquires more than one shard at a time — the whole-cache sweeps
// (EraseByPrefix / EraseIf / Clear / size) and the eviction walk take
// shards one by one and never hold two at once.

#ifndef RDFMR_COMMON_SHARDED_LRU_CACHE_H_
#define RDFMR_COMMON_SHARDED_LRU_CACHE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "common/lru_cache.h"

namespace rdfmr {

/// \brief Rounds `n` up to the next power of two (minimum 1).
inline size_t NextPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// \brief String-keyed, charge-bounded LRU cache striped over power-of-two
/// shards with one global charge budget. Thread-safe; values are returned
/// by copy (hand it a shared_ptr), since a reference into a shard would
/// dangle once the shard's lock is released.
template <typename V>
class ShardedLruCache {
 public:
  /// \brief `capacity` is the total charge budget shared by all
  /// `num_shards` stripes (rounded up to a power of two). An entry is
  /// refused only when its charge alone exceeds the whole budget —
  /// exactly LruCache's admission rule, regardless of shard count.
  ShardedLruCache(uint64_t capacity, size_t num_shards)
      : num_shards_(NextPowerOfTwo(num_shards == 0 ? 1 : num_shards)),
        capacity_(capacity) {
    shards_.reserve(num_shards_);
    for (size_t i = 0; i < num_shards_; ++i) {
      shards_.push_back(std::make_unique<Shard>(capacity_));
    }
  }

  /// \brief Copies the value for `key` into `*out` and refreshes its
  /// recency; returns false on miss (`*out` untouched).
  bool Get(const std::string& key, V* out) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    const V* hit = shard.cache.Get(key);
    if (hit == nullptr) return false;
    *out = *hit;
    return true;
  }

  /// \brief Inserts or replaces `key` in its shard, then evicts across
  /// shards until the global budget holds. Returns false when `charge`
  /// alone exceeds the capacity (any previous entry under the key is
  /// still removed, exactly like LruCache::Put).
  bool Put(std::string key, V value, uint64_t charge) {
    const size_t home = ShardOf(key);
    Shard& shard = *shards_[home];
    uint64_t before = 0;
    uint64_t after = 0;
    bool admitted = false;
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      before = shard.cache.used();
      admitted = shard.cache.Put(std::move(key), std::move(value), charge);
      after = shard.cache.used();
    }
    AddUsedDelta(before, after);
    if (admitted) EvictToBudget(home);
    return admitted;
  }

  /// \brief Removes `key` if present; returns whether it was present.
  bool Erase(const std::string& key) {
    Shard& shard = ShardFor(key);
    uint64_t before = 0;
    uint64_t after = 0;
    bool present = false;
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      before = shard.cache.used();
      present = shard.cache.Erase(key);
      after = shard.cache.used();
    }
    AddUsedDelta(before, after);
    return present;
  }

  /// \brief Removes every entry whose key starts with `prefix`, across
  /// ALL shards (epoch/dataset invalidation). Returns the number removed.
  size_t EraseByPrefix(const std::string& prefix) {
    return EraseIf([&prefix](const std::string& key) {
      return key.compare(0, prefix.size(), prefix) == 0;
    });
  }

  /// \brief Removes every entry satisfying `pred`, across all shards.
  size_t EraseIf(const std::function<bool(const std::string&)>& pred) {
    size_t removed = 0;
    for (auto& shard : shards_) {
      uint64_t before = 0;
      uint64_t after = 0;
      {
        std::lock_guard<std::mutex> lock(shard->mu);
        before = shard->cache.used();
        removed += shard->cache.EraseIf(pred);
        after = shard->cache.used();
      }
      AddUsedDelta(before, after);
    }
    return removed;
  }

  void Clear() {
    for (auto& shard : shards_) {
      uint64_t freed = 0;
      {
        std::lock_guard<std::mutex> lock(shard->mu);
        freed = shard->cache.used();
        shard->cache.Clear();
      }
      used_.fetch_sub(freed, std::memory_order_relaxed);
    }
  }

  /// \brief Total entries across shards. Each shard is read under its own
  /// lock; the sum is a consistent-per-shard (not globally atomic) view.
  size_t size() const {
    size_t total = 0;
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      total += shard->cache.size();
    }
    return total;
  }

  /// \brief Total charge held (one relaxed load of the global-budget
  /// accumulator; exact whenever no mutation is in flight).
  uint64_t used() const { return used_.load(std::memory_order_relaxed); }

  uint64_t capacity() const { return capacity_; }
  size_t num_shards() const { return num_shards_; }

  /// \brief Shard index `key` maps to (exposed so tests can construct
  /// same-shard / cross-shard key sets deterministically).
  size_t ShardOf(const std::string& key) const {
    return static_cast<size_t>(Fnv1a64(key)) & (num_shards_ - 1);
  }

 private:
  struct Shard {
    explicit Shard(uint64_t budget) : cache(budget) {}
    mutable std::mutex mu;
    LruCache<V> cache;  // guarded by mu
  };

  Shard& ShardFor(const std::string& key) {
    return *shards_[ShardOf(key)];
  }

  void AddUsedDelta(uint64_t before, uint64_t after) {
    if (after >= before) {
      used_.fetch_add(after - before, std::memory_order_relaxed);
    } else {
      used_.fetch_sub(before - after, std::memory_order_relaxed);
    }
  }

  /// \brief Pops LRU entries shard-by-shard (round-robin cursor, one lock
  /// at a time) until the global budget holds. Skips `home` on the first
  /// rotation so the entry just inserted there is not its own first
  /// victim; a rotation that frees nothing ends the walk (cache drained
  /// concurrently).
  void EvictToBudget(size_t home) {
    bool skip_home = true;
    while (used_.load(std::memory_order_relaxed) > capacity_) {
      bool any_freed = false;
      for (size_t i = 0; i < num_shards_; ++i) {
        if (used_.load(std::memory_order_relaxed) <= capacity_) return;
        const size_t victim =
            cursor_.fetch_add(1, std::memory_order_relaxed) &
            (num_shards_ - 1);
        if (skip_home && victim == home) continue;
        uint64_t freed = 0;
        {
          std::lock_guard<std::mutex> lock(shards_[victim]->mu);
          freed = shards_[victim]->cache.EvictOne();
        }
        if (freed > 0) {
          used_.fetch_sub(freed, std::memory_order_relaxed);
          any_freed = true;
        }
      }
      if (!any_freed && !skip_home) return;
      skip_home = false;
    }
  }

  const size_t num_shards_;
  const uint64_t capacity_;
  std::atomic<uint64_t> used_{0};    ///< global charge accumulator
  std::atomic<size_t> cursor_{0};    ///< eviction round-robin position
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace rdfmr

#endif  // RDFMR_COMMON_SHARDED_LRU_CACHE_H_
