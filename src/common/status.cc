#include "common/status.h"

namespace rdfmr {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfSpace:
      return "OutOfSpace";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kExecutionError:
      return "ExecutionError";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kUnknown:
      return "Unknown";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDataLoss:
      return "DataLoss";
  }
  return "InvalidCode";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

Status Status::WithContext(const std::string& context) const {
  if (ok()) return *this;
  return Status(code(), context + ": " + message());
}

}  // namespace rdfmr
