// Status: lightweight error propagation in the style of Apache Arrow /
// RocksDB. No exceptions cross public API boundaries in rdfmr; fallible
// functions return Status (or Result<T>, see result.h).

#ifndef RDFMR_COMMON_STATUS_H_
#define RDFMR_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <utility>

namespace rdfmr {

/// \brief Machine-readable classification of an error.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfSpace = 4,    // simulated cluster ran out of HDFS capacity
  kIoError = 5,       // serialization / parse / file errors
  kExecutionError = 6,  // a MapReduce job failed mid-flight
  kNotImplemented = 7,
  kUnknown = 8,
  kUnavailable = 9,        // admission control rejected the request
  kCancelled = 10,         // caller cancelled a queued request
  kDeadlineExceeded = 11,  // request deadline expired before completion
  kResourceExhausted = 12,  // projected footprint exceeds cluster capacity
  kDataLoss = 13,  // persistent data failed validation (checksum, truncation)
};

/// \brief Human-readable name of a StatusCode ("OutOfSpace", ...).
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of a fallible operation: a code plus an optional message.
///
/// An OK status carries no allocation; error statuses hold a heap state with
/// code and message. Statuses are cheap to move and to copy-on-ok.
class Status {
 public:
  /// Constructs an OK status.
  Status() noexcept = default;

  Status(StatusCode code, std::string msg)
      : state_(code == StatusCode::kOk
                   ? nullptr
                   : std::make_shared<State>(State{code, std::move(msg)})) {}

  /// \brief Returns an OK status.
  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfSpace(std::string msg) {
    return Status(StatusCode::kOutOfSpace, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ExecutionError(std::string msg) {
    return Status(StatusCode::kExecutionError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Unknown(std::string msg) {
    return Status(StatusCode::kUnknown, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  bool IsOutOfSpace() const { return code() == StatusCode::kOutOfSpace; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsExecutionError() const {
    return code() == StatusCode::kExecutionError;
  }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsIoError() const { return code() == StatusCode::kIoError; }
  bool IsDataLoss() const { return code() == StatusCode::kDataLoss; }

  StatusCode code() const {
    return state_ == nullptr ? StatusCode::kOk : state_->code;
  }

  /// \brief Error message; empty for OK.
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ == nullptr ? kEmpty : state_->msg;
  }

  /// \brief "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// \brief Returns this status with extra context prepended to the message.
  Status WithContext(const std::string& context) const;

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  std::shared_ptr<State> state_;  // nullptr == OK
};

/// \brief Propagates a non-OK Status to the caller.
#define RDFMR_RETURN_NOT_OK(expr)             \
  do {                                        \
    ::rdfmr::Status _st = (expr);             \
    if (!_st.ok()) return _st;                \
  } while (0)

}  // namespace rdfmr

#endif  // RDFMR_COMMON_STATUS_H_
