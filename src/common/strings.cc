#include "common/strings.h"

#include <cstdarg>
#include <cstdio>

#include "common/logging.h"

namespace rdfmr {

std::vector<std::string> Split(std::string_view input, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= input.size(); ++i) {
    if (i == input.size() || input[i] == sep) {
      out.emplace_back(input.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitN(std::string_view input, char sep,
                                size_t max_fields) {
  RDFMR_CHECK(max_fields >= 1) << "SplitN requires max_fields >= 1";
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i < input.size() && out.size() + 1 < max_fields; ++i) {
    if (input[i] == sep) {
      out.emplace_back(input.substr(start, i - start));
      start = i + 1;
    }
  }
  out.emplace_back(input.substr(start));
  return out;
}

std::string Join(const std::vector<std::string>& parts, char sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.push_back(sep);
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\r' ||
                   s[b] == '\n')) {
    ++b;
  }
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r' ||
                   s[e - 1] == '\n')) {
    --e;
  }
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string EscapeField(std::string_view field, char sep) {
  std::string out;
  out.reserve(field.size());
  for (char c : field) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == sep) {
      out.push_back('\\');
      out.push_back('s');
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string UnescapeField(std::string_view field, char sep) {
  std::string out;
  out.reserve(field.size());
  for (size_t i = 0; i < field.size(); ++i) {
    if (field[i] == '\\' && i + 1 < field.size()) {
      char n = field[++i];
      if (n == '\\') {
        out.push_back('\\');
      } else if (n == 's') {
        out.push_back(sep);
      } else if (n == 'n') {
        out.push_back('\n');
      } else {
        out.push_back(n);
      }
    } else {
      out.push_back(field[i]);
    }
  }
  return out;
}

std::vector<std::string> SplitEscaped(std::string_view input, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (size_t i = 0; i < input.size(); ++i) {
    char c = input[i];
    if (c == '\\' && i + 1 < input.size()) {
      cur.push_back(c);
      cur.push_back(input[++i]);
    } else if (c == sep) {
      out.push_back(UnescapeField(cur, sep));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(UnescapeField(cur, sep));
  return out;
}

std::string JoinEscaped(const std::vector<std::string>& fields, char sep) {
  std::string out;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out.push_back(sep);
    out += EscapeField(fields[i], sep);
  }
  return out;
}

std::string HumanBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", v, kUnits[unit]);
  }
  return buf;
}

std::string PadRight(std::string s, size_t width) {
  if (s.size() < width) s.append(width - s.size(), ' ');
  return s;
}

std::string PadLeft(std::string s, size_t width) {
  if (s.size() < width) s.insert(0, width - s.size(), ' ');
  return s;
}

std::string StringFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace rdfmr
