// Small string helpers used across the codebase (splitting serialized
// records, formatting table output, escaping literal values).

#ifndef RDFMR_COMMON_STRINGS_H_
#define RDFMR_COMMON_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace rdfmr {

/// \brief Splits `input` on `sep`; keeps empty fields.
std::vector<std::string> Split(std::string_view input, char sep);

/// \brief Splits into at most `max_fields` pieces; the last piece keeps any
/// remaining separators. max_fields must be >= 1.
std::vector<std::string> SplitN(std::string_view input, char sep,
                                size_t max_fields);

/// \brief Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, char sep);

/// \brief Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// \brief Escapes `sep` and backslash occurrences so a field can be embedded
/// in a separator-delimited record losslessly.
std::string EscapeField(std::string_view field, char sep);

/// \brief Inverse of EscapeField.
std::string UnescapeField(std::string_view field, char sep);

/// \brief Splits a record on `sep`, honoring EscapeField escaping.
std::vector<std::string> SplitEscaped(std::string_view input, char sep);

/// \brief Joins fields with `sep`, escaping each with EscapeField.
std::string JoinEscaped(const std::vector<std::string>& fields, char sep);

/// \brief "12.3 MB"-style human formatting of a byte count.
std::string HumanBytes(uint64_t bytes);

/// \brief Fixed-width, space-padded cell for table printing.
std::string PadRight(std::string s, size_t width);
std::string PadLeft(std::string s, size_t width);

/// \brief printf-style formatting into a std::string.
std::string StringFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace rdfmr

#endif  // RDFMR_COMMON_STRINGS_H_
