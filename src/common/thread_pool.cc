#include "common/thread_pool.h"

#include <atomic>
#include <memory>

namespace rdfmr {

ThreadPool::ThreadPool(uint32_t num_threads)
    : num_threads_(num_threads < 1 ? 1 : num_threads) {
  workers_.reserve(num_threads_ - 1);
  for (uint32_t t = 0; t + 1 < num_threads_; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Shared cursor + completion latch. `fn` is captured by pointer: safe
  // because this function blocks until every runner has finished.
  struct ForState {
    std::atomic<size_t> next{0};
    size_t n;
    const std::function<void(size_t)>* fn;
    std::mutex mu;
    std::condition_variable done_cv;
    size_t finished = 0;
  };
  auto state = std::make_shared<ForState>();
  state->n = n;
  state->fn = &fn;

  auto runner = [state] {
    for (size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
         i < state->n;
         i = state->next.fetch_add(1, std::memory_order_relaxed)) {
      (*state->fn)(i);
    }
    {
      std::lock_guard<std::mutex> lock(state->mu);
      state->finished += 1;
    }
    state->done_cv.notify_one();
  };

  size_t runners = workers_.size() + 1;
  if (runners > n) runners = n;
  for (size_t r = 0; r + 1 < runners; ++r) Submit(runner);
  runner();  // the calling thread is one of the runners

  std::unique_lock<std::mutex> lock(state->mu);
  state->done_cv.wait(lock,
                      [&] { return state->finished == runners; });
}

}  // namespace rdfmr
