// Fixed-size worker pool for the deterministic multi-threaded MR runtime.
//
// The pool owns `num_threads - 1` worker threads; the thread that calls
// ParallelFor participates as the remaining worker, so a pool built with
// `num_threads == 1` spawns nothing and executes everything inline — the
// single-threaded path has zero synchronization overhead and is bitwise
// the sequential execution.
//
// Tasks must not throw: an exception escaping a task run on a worker
// thread terminates the process (Status/Result is the error channel
// everywhere in this codebase).

#ifndef RDFMR_COMMON_THREAD_POOL_H_
#define RDFMR_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rdfmr {

class ThreadPool {
 public:
  /// \brief Creates a pool providing `num_threads` total execution slots
  /// (the caller of ParallelFor counts as one, so `num_threads - 1` OS
  /// threads are spawned). Values <= 1 create a no-thread inline pool.
  explicit ThreadPool(uint32_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// \brief Drains queued tasks and joins all workers.
  ~ThreadPool();

  uint32_t num_threads() const { return num_threads_; }

  /// \brief Enqueues one task for asynchronous execution on a worker.
  /// With an inline pool (num_threads <= 1) the task runs immediately on
  /// the calling thread.
  void Submit(std::function<void()> task);

  /// \brief Runs `fn(i)` for every i in [0, n), distributing indices over
  /// the workers plus the calling thread, and blocks until all calls have
  /// returned. Index-to-thread assignment is dynamic (work stealing via a
  /// shared atomic cursor), so callers needing determinism must give each
  /// index its own output slot and merge in index order afterwards.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  uint32_t num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
};

}  // namespace rdfmr

#endif  // RDFMR_COMMON_THREAD_POOL_H_
