#include "common/trace.h"

#include "common/json.h"

namespace rdfmr {
namespace {

void AppendEvent(const TraceSpan& span, bool with_times, bool* first,
                 std::string* out) {
  if (!*first) out->push_back(',');
  *first = false;
  out->append("\n{\"name\":\"");
  out->append(JsonEscape(span.name));
  out->append("\",\"ph\":\"X\",\"pid\":1,\"tid\":1");
  if (with_times) {
    out->append(",\"ts\":");
    out->append(std::to_string(span.start_micros));
    out->append(",\"dur\":");
    out->append(std::to_string(span.duration_micros));
  }
  out->append(",\"args\":{");
  for (size_t i = 0; i < span.attrs.size(); ++i) {
    if (i > 0) out->push_back(',');
    out->push_back('"');
    out->append(JsonEscape(span.attrs[i].first));
    out->append("\":\"");
    out->append(JsonEscape(span.attrs[i].second));
    out->push_back('"');
  }
  out->append("}}");
  for (const auto& child : span.children) {
    AppendEvent(*child, with_times, first, out);
  }
}

std::string DumpTrace(const TraceSpan& root, bool with_times) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  AppendEvent(root, with_times, &first, &out);
  out.append("\n]}\n");
  return out;
}

}  // namespace

Trace::Trace() : epoch_(std::chrono::steady_clock::now()) {
  root_.name = "trace";
}

int64_t Trace::ElapsedMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

std::string Trace::ToChromeJson() const { return DumpTrace(root_, true); }

std::string Trace::ToCanonicalJson() const {
  return DumpTrace(root_, false);
}

ScopedSpan::ScopedSpan(const RunContext& parent, std::string_view name) {
  if (parent.span_ == nullptr) return;  // disabled: no allocation, no clock
  trace_ = parent.trace_;
  auto child = std::make_unique<TraceSpan>();
  child->name = std::string(name);
  child->start_micros = trace_->ElapsedMicros();
  span_ = child.get();
  parent.span_->children.push_back(std::move(child));
}

void ScopedSpan::Attr(std::string_view key, std::string_view value) {
  if (span_ == nullptr) return;
  span_->attrs.emplace_back(std::string(key), std::string(value));
}

void ScopedSpan::Attr(std::string_view key, uint64_t value) {
  if (span_ == nullptr) return;
  span_->attrs.emplace_back(std::string(key), std::to_string(value));
}

void ScopedSpan::Attr(std::string_view key, int64_t value) {
  if (span_ == nullptr) return;
  span_->attrs.emplace_back(std::string(key), std::to_string(value));
}

void ScopedSpan::Close() {
  if (span_ == nullptr) return;
  span_->duration_micros = trace_->ElapsedMicros() - span_->start_micros;
  span_ = nullptr;
}

}  // namespace rdfmr
