// Hierarchical span tracing for the execution path (query -> mr_cycle ->
// job -> map/shuffle/sort/reduce phase -> operator) plus Chrome
// trace-event JSON export.
//
// Design contract (mirrors the ExecStats determinism discipline):
//   * Span structure and every non-time attribute are byte-identical
//     across thread counts. To guarantee this, spans are only ever
//     created and annotated on the thread that coordinates the traced
//     section (the job runner's controlling thread), never inside worker
//     tasks. Worker-side cost surfaces through deterministic counters
//     that the coordinator folds into span attributes at merge barriers.
//   * Instrumentation is zero-cost when no sink is installed: a
//     default-constructed RunContext is "disabled" (null span pointer);
//     every tracing call starts with one branch on that pointer and no
//     clock read happens on the disabled path.
//
// Wall-clock times (`start_micros`/`duration_micros`) are recorded for
// enabled traces only and are explicitly excluded from the determinism
// contract; exports provide a canonical form that strips them so tests
// can byte-compare 1-thread vs N-thread trees.

#ifndef RDFMR_COMMON_TRACE_H_
#define RDFMR_COMMON_TRACE_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rdfmr {

class Trace;

/// \brief One node in the span tree. Attributes keep insertion order;
/// instrumentation sites must therefore add them in a fixed code order
/// (they all do — attribute order is part of the golden-trace contract).
struct TraceSpan {
  std::string name;
  std::vector<std::pair<std::string, std::string>> attrs;
  int64_t start_micros = 0;     // relative to the owning trace's epoch
  int64_t duration_micros = 0;  // 0 until the span is closed
  std::vector<std::unique_ptr<TraceSpan>> children;
};

/// \brief Owner of one span tree. Not thread-safe: all spans of a trace
/// are opened/closed from the coordinating thread (see header comment).
class Trace {
 public:
  Trace();

  TraceSpan* root() { return &root_; }
  const TraceSpan& root() const { return root_; }

  /// \brief Microseconds since the trace was constructed (steady clock).
  int64_t ElapsedMicros() const;

  /// \brief Full Chrome trace-event JSON ("X" complete events, depth-first
  /// pre-order, pid/tid pinned to 1). Loadable in chrome://tracing and
  /// Perfetto. Ends with a newline.
  std::string ToChromeJson() const;

  /// \brief Same document with every `ts`/`dur` field removed — the
  /// canonical byte-comparable form used by the golden span-tree tests.
  std::string ToCanonicalJson() const;

 private:
  TraceSpan root_;
  std::chrono::steady_clock::time_point epoch_;
};

/// \brief Handle threaded through the execution path: engine -> workflow
/// -> job runner -> service. Cheap to copy (two pointers). The default
/// instance is disabled and makes every downstream tracing call a no-op.
class RunContext {
 public:
  /// \brief Disabled context (null sink): all spans below it vanish.
  RunContext() = default;

  /// \brief Context whose spans attach to `trace`'s root. `trace` must
  /// outlive every span opened beneath the returned context.
  static RunContext ForTrace(Trace* trace) {
    return RunContext(trace, trace == nullptr ? nullptr : trace->root());
  }

  bool enabled() const { return span_ != nullptr; }

 private:
  friend class ScopedSpan;
  RunContext(Trace* trace, TraceSpan* span) : trace_(trace), span_(span) {}

  Trace* trace_ = nullptr;
  TraceSpan* span_ = nullptr;
};

/// \brief RAII span: opens a child of `parent`'s span on construction,
/// stamps the duration on destruction (or Close()). When `parent` is
/// disabled, construction is a pointer copy and everything else no-ops.
class ScopedSpan {
 public:
  ScopedSpan(const RunContext& parent, std::string_view name);
  ~ScopedSpan() { Close(); }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  bool enabled() const { return span_ != nullptr; }

  /// \brief Context for opening children beneath this span.
  RunContext context() const { return RunContext(trace_, span_); }

  /// \brief Adds a deterministic attribute (insertion-ordered). Must be
  /// called before any child span is closed out of order with it only in
  /// the sense of code order — attrs and children serialize separately.
  void Attr(std::string_view key, std::string_view value);
  void Attr(std::string_view key, uint64_t value);
  void Attr(std::string_view key, int64_t value);
  void Attr(std::string_view key, int value) {
    Attr(key, static_cast<int64_t>(value));
  }

  /// \brief Stamps duration_micros now instead of at destruction.
  void Close();

 private:
  Trace* trace_ = nullptr;
  TraceSpan* span_ = nullptr;
};

}  // namespace rdfmr

#endif  // RDFMR_COMMON_TRACE_H_
