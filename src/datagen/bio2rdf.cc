#include "datagen/bio2rdf.h"

#include <algorithm>

#include "common/random.h"
#include "common/strings.h"

namespace rdfmr {

std::vector<Triple> GenerateBio2Rdf(const Bio2RdfConfig& config) {
  Rng rng(config.seed);
  std::vector<Triple> triples;

  auto gene_name = [](uint64_t g) {
    return StringFormat("gene%llu", static_cast<unsigned long long>(g));
  };

  // --- GO terms.
  for (uint64_t t = 0; t < config.num_go_terms; ++t) {
    std::string subject =
        StringFormat("go_%llu", static_cast<unsigned long long>(t));
    triples.emplace_back(subject, bio::kGoLabel,
                         StringFormat("go term %llu",
                                      static_cast<unsigned long long>(t)));
    uint64_t nsyn = rng.Uniform(3);
    for (uint64_t s = 0; s < nsyn; ++s) {
      triples.emplace_back(
          subject, bio::kGoSynonym,
          StringFormat("gosyn %llu_%llu", static_cast<unsigned long long>(t),
                       static_cast<unsigned long long>(s)));
    }
    triples.emplace_back(
        subject, bio::kGoNamespace,
        t % 3 == 0 ? "molecular_function"
                   : (t % 3 == 1 ? "biological_process"
                                 : "cellular_component"));
  }

  // --- Articles.
  for (uint64_t a = 0; a < config.num_articles; ++a) {
    std::string subject =
        StringFormat("pmid_%llu", static_cast<unsigned long long>(a));
    triples.emplace_back(subject, bio::kArticleTitle,
                         StringFormat("article %llu on gene regulation",
                                      static_cast<unsigned long long>(a)));
    triples.emplace_back(subject, bio::kArticleYear,
                         StringFormat("%llu", 1990 + static_cast<unsigned
                                      long long>(a % 25)));
  }

  // --- Taxa.
  for (uint64_t t = 0; t < config.num_taxa; ++t) {
    triples.emplace_back(
        StringFormat("taxon_%llu", static_cast<unsigned long long>(t)),
        bio::kTaxonLabel,
        StringFormat("taxon %llu", static_cast<unsigned long long>(t)));
  }

  // --- Genes. Multiplicity is Zipf-skewed: the first genes are "hot" with
  // multiplicity up to max_multiplicity, the tail has 1-2 references.
  ZipfSampler go_sampler(config.num_go_terms, config.zipf_exponent);
  ZipfSampler article_sampler(config.num_articles, config.zipf_exponent);
  for (uint64_t g = 0; g < config.num_genes; ++g) {
    std::string gene = gene_name(g);
    bool hexo = rng.Chance(config.hexokinase_fraction);
    triples.emplace_back(
        gene, bio::kLabel,
        StringFormat("%s gene %llu", hexo ? "hexokinase" : "regulator",
                     static_cast<unsigned long long>(g)));
    uint64_t nsyn = rng.Uniform(4);
    for (uint64_t s = 0; s < nsyn; ++s) {
      triples.emplace_back(
          gene, bio::kSynonym,
          StringFormat("syn %llu_%llu", static_cast<unsigned long long>(g),
                       static_cast<unsigned long long>(s)));
    }
    triples.emplace_back(
        gene, bio::kSubType,
        g % 4 == 0 ? "protein_coding" : (g % 4 == 1 ? "pseudo" : "ncRNA"));
    triples.emplace_back(
        gene, bio::kXTaxon,
        StringFormat("taxon_%llu", static_cast<unsigned long long>(
                                       rng.Uniform(config.num_taxa))));

    // Zipf head genes get high multiplicity (the paper's 13K knob, scaled).
    double hotness =
        1.0 / (1.0 + static_cast<double>(g) * 4.0 /
                         static_cast<double>(config.num_genes));
    uint32_t n_go = 2 + static_cast<uint32_t>(
                            hotness * (config.max_multiplicity - 2) *
                            rng.NextDouble());
    for (uint32_t i = 0; i < n_go; ++i) {
      triples.emplace_back(gene, bio::kXGo,
                           StringFormat("go_%llu",
                                        static_cast<unsigned long long>(
                                            go_sampler.Sample(&rng))));
    }
    uint32_t n_ref = 2 + static_cast<uint32_t>(
                             hotness * (config.max_multiplicity - 2) *
                             rng.NextDouble() * 0.6);
    for (uint32_t i = 0; i < n_ref; ++i) {
      triples.emplace_back(gene, bio::kXRef,
                           StringFormat("ref_%llu",
                                        static_cast<unsigned long long>(
                                            rng.Uniform(1000))));
    }
    uint32_t n_pub = 1 + static_cast<uint32_t>(rng.Uniform(4));
    for (uint32_t i = 0; i < n_pub; ++i) {
      triples.emplace_back(gene, bio::kXPubMed,
                           StringFormat("pmid_%llu",
                                        static_cast<unsigned long long>(
                                            article_sampler.Sample(&rng))));
    }
    if (rng.Chance(config.nur77_link_fraction)) {
      triples.emplace_back(gene, bio::kInteractsWith, "gene_nur77");
    }
    if (rng.Chance(0.1)) {
      triples.emplace_back(gene, bio::kInteractsWith,
                           gene_name(rng.Uniform(config.num_genes)));
    }
  }

  // The nur77 gene itself (a join target for A5-style queries).
  triples.emplace_back("gene_nur77", bio::kLabel, "nur77 nuclear receptor");
  triples.emplace_back("gene_nur77", bio::kSubType, "protein_coding");
  triples.emplace_back("gene_nur77", bio::kXTaxon, "taxon_0");

  // Deduplicate (set semantics of RDF graphs).
  std::sort(triples.begin(), triples.end());
  triples.erase(std::unique(triples.begin(), triples.end()), triples.end());
  return triples;
}

}  // namespace rdfmr
