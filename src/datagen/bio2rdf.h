// Bio2RDF-like synthetic life-sciences dataset generator.
//
// Models the biological data warehouse of the paper's A-query evaluation:
// genes cross-referenced to Gene Ontology terms, PubMed articles, and other
// genes, with *highly* multi-valued properties (Zipf-skewed; real Uniprot
// properties reach multiplicity 13K — scale the knob with the dataset).
// Object identifiers carry recognizable prefixes ("go_", "pmid_") so the
// paper's partially-bound-object queries have something to grip, and a few
// genes are the "nur77"/"hexokinase" entities named by queries A5/A6.

#ifndef RDFMR_DATAGEN_BIO2RDF_H_
#define RDFMR_DATAGEN_BIO2RDF_H_

#include <cstdint>
#include <vector>

#include "rdf/triple.h"

namespace rdfmr {

struct Bio2RdfConfig {
  uint64_t num_genes = 500;
  uint64_t num_go_terms = 300;
  uint64_t num_articles = 400;
  uint64_t num_taxa = 20;
  /// Maximum xGO/xRef multiplicity for the hottest genes (Zipf head).
  uint32_t max_multiplicity = 40;
  double zipf_exponent = 1.1;
  /// Fraction of genes whose label mentions "hexokinase".
  double hexokinase_fraction = 0.02;
  /// Fraction of genes cross-referencing the nur77 gene.
  double nur77_link_fraction = 0.05;
  uint64_t seed = 7;
};

/// \brief Property names of the Bio2RDF-like vocabulary.
namespace bio {
inline constexpr const char* kLabel = "label";
inline constexpr const char* kSynonym = "synonym";
inline constexpr const char* kSubType = "subType";
inline constexpr const char* kXGo = "xGO";
inline constexpr const char* kXRef = "xRef";
inline constexpr const char* kXPubMed = "xPubMed";
inline constexpr const char* kXTaxon = "xTaxon";
inline constexpr const char* kInteractsWith = "interactsWith";
inline constexpr const char* kGoLabel = "goLabel";
inline constexpr const char* kGoSynonym = "goSynonym";
inline constexpr const char* kGoNamespace = "goNamespace";
inline constexpr const char* kArticleTitle = "articleTitle";
inline constexpr const char* kArticleYear = "articleYear";
inline constexpr const char* kTaxonLabel = "taxonLabel";
}  // namespace bio

/// \brief Generates the triple set for `config`.
std::vector<Triple> GenerateBio2Rdf(const Bio2RdfConfig& config);

}  // namespace rdfmr

#endif  // RDFMR_DATAGEN_BIO2RDF_H_
