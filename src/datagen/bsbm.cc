#include "datagen/bsbm.h"

#include "common/random.h"
#include "common/strings.h"

namespace rdfmr {

std::vector<Triple> GenerateBsbm(const BsbmConfig& config) {
  Rng rng(config.seed);
  std::vector<Triple> triples;
  triples.reserve(config.num_products *
                  (6 + config.max_features_per_product +
                   5 * config.offers_per_product +
                   5 * config.reviews_per_product));

  // --- Features.
  for (uint64_t f = 0; f < config.num_features; ++f) {
    std::string subject = StringFormat("feature%llu",
                                       static_cast<unsigned long long>(f));
    triples.emplace_back(subject, bsbm::kFeatureLabel,
                         StringFormat("feature label %llu",
                                      static_cast<unsigned long long>(f)));
    triples.emplace_back(
        subject, bsbm::kFeatureType,
        StringFormat("ftype%llu", static_cast<unsigned long long>(f % 7)));
  }

  // --- Producers.
  for (uint64_t p = 0; p < config.num_producers; ++p) {
    std::string subject = StringFormat("producer%llu",
                                       static_cast<unsigned long long>(p));
    triples.emplace_back(subject, bsbm::kLabel,
                         StringFormat("producer label %llu",
                                      static_cast<unsigned long long>(p)));
  }

  // --- Products.
  for (uint64_t i = 0; i < config.num_products; ++i) {
    std::string product =
        StringFormat("product%llu", static_cast<unsigned long long>(i));
    bool gold = rng.Chance(config.gold_label_fraction);
    triples.emplace_back(
        product, bsbm::kLabel,
        StringFormat("product %llu %s edition",
                     static_cast<unsigned long long>(i),
                     gold ? "gold" : "standard"));
    triples.emplace_back(
        product, bsbm::kType,
        StringFormat("ptype%llu", static_cast<unsigned long long>(i % 11)));
    triples.emplace_back(
        product, bsbm::kProducer,
        StringFormat("producer%llu", static_cast<unsigned long long>(
                                         rng.Uniform(config.num_producers))));
    triples.emplace_back(product, bsbm::kPropertyNum1,
                         StringFormat("num1_%llu",
                                      static_cast<unsigned long long>(
                                          rng.Uniform(2000))));
    triples.emplace_back(product, bsbm::kPropertyNum2,
                         StringFormat("num2_%llu",
                                      static_cast<unsigned long long>(
                                          rng.Uniform(500))));
    triples.emplace_back(product, bsbm::kPropertyTex1,
                         StringFormat("tex1 token%llu",
                                      static_cast<unsigned long long>(
                                          rng.Uniform(300))));
    // Multi-valued prodFeature (the redundancy driver).
    uint32_t nfeatures = static_cast<uint32_t>(rng.UniformRange(
        config.min_features_per_product, config.max_features_per_product));
    for (uint32_t f = 0; f < nfeatures; ++f) {
      triples.emplace_back(
          product, bsbm::kProdFeature,
          StringFormat("feature%llu", static_cast<unsigned long long>(
                                          rng.Uniform(config.num_features))));
    }

    // --- Offers for this product.
    for (uint32_t o = 0; o < config.offers_per_product; ++o) {
      std::string offer = StringFormat(
          "offer%llu_%u", static_cast<unsigned long long>(i), o);
      triples.emplace_back(offer, bsbm::kProduct, product);
      triples.emplace_back(
          offer, bsbm::kVendor,
          StringFormat("vendor%llu", static_cast<unsigned long long>(
                                         rng.Uniform(config.num_vendors))));
      triples.emplace_back(offer, bsbm::kPrice,
                           StringFormat("price_%llu",
                                        static_cast<unsigned long long>(
                                            rng.Uniform(10000))));
      triples.emplace_back(offer, bsbm::kDeliveryDays,
                           StringFormat("days_%llu",
                                        static_cast<unsigned long long>(
                                            1 + rng.Uniform(7))));
    }

    // --- Reviews for this product.
    for (uint32_t r = 0; r < config.reviews_per_product; ++r) {
      std::string review = StringFormat(
          "review%llu_%u", static_cast<unsigned long long>(i), r);
      bool awful = rng.Chance(config.awful_title_fraction);
      triples.emplace_back(review, bsbm::kReviewFor, product);
      triples.emplace_back(
          review, bsbm::kReviewer,
          StringFormat("person%llu", static_cast<unsigned long long>(
                                         rng.Uniform(config.num_persons))));
      triples.emplace_back(review, bsbm::kRating1,
                           StringFormat("rating_%llu",
                                        static_cast<unsigned long long>(
                                            1 + rng.Uniform(10))));
      triples.emplace_back(
          review, bsbm::kTitle,
          StringFormat("review %llu_%u %s product",
                       static_cast<unsigned long long>(i), r,
                       awful ? "awful" : "decent"));
    }
  }
  return triples;
}

}  // namespace rdfmr
