// BSBM-like synthetic dataset generator (Berlin SPARQL Benchmark flavor).
//
// Models the paper's BSBM-1M/2M scalability datasets, scaled by the number
// of products. The schema carries the features the paper's B-queries
// exercise: a multi-valued `prodFeature` property ("impacts redundancy"),
// several single-valued bound properties per product (for the
// varying-bound-arity sweep B1-3bnd..B1-6bnd), feature entities joinable
// through an unbound object, and offer/review stars for inter-star joins.
//
// All values are deterministic functions of the seed.

#ifndef RDFMR_DATAGEN_BSBM_H_
#define RDFMR_DATAGEN_BSBM_H_

#include <cstdint>
#include <vector>

#include "rdf/triple.h"

namespace rdfmr {

struct BsbmConfig {
  uint64_t num_products = 1000;
  uint32_t min_features_per_product = 3;
  uint32_t max_features_per_product = 12;
  uint32_t offers_per_product = 2;
  uint32_t reviews_per_product = 2;
  uint64_t num_features = 200;
  uint64_t num_producers = 50;
  uint64_t num_vendors = 30;
  uint64_t num_persons = 100;
  /// Fraction of product labels containing the selective token "gold".
  double gold_label_fraction = 0.05;
  /// Fraction of review titles containing the selective token "awful".
  double awful_title_fraction = 0.05;
  uint64_t seed = 42;
};

/// \brief Property names of the BSBM-like vocabulary.
namespace bsbm {
inline constexpr const char* kLabel = "label";
inline constexpr const char* kType = "type";
inline constexpr const char* kProducer = "producer";
inline constexpr const char* kProdFeature = "prodFeature";
inline constexpr const char* kPropertyNum1 = "propertyNum1";
inline constexpr const char* kPropertyNum2 = "propertyNum2";
inline constexpr const char* kPropertyTex1 = "propertyTex1";
inline constexpr const char* kFeatureLabel = "featureLabel";
inline constexpr const char* kFeatureType = "featureType";
inline constexpr const char* kProduct = "product";
inline constexpr const char* kVendor = "vendor";
inline constexpr const char* kPrice = "price";
inline constexpr const char* kDeliveryDays = "deliveryDays";
inline constexpr const char* kReviewFor = "reviewFor";
inline constexpr const char* kReviewer = "reviewer";
inline constexpr const char* kRating1 = "rating1";
inline constexpr const char* kTitle = "title";
}  // namespace bsbm

/// \brief Generates the triple set for `config`.
std::vector<Triple> GenerateBsbm(const BsbmConfig& config);

}  // namespace rdfmr

#endif  // RDFMR_DATAGEN_BSBM_H_
