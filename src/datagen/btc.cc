#include "datagen/btc.h"

#include "common/random.h"
#include "common/strings.h"
#include "datagen/bio2rdf.h"
#include "datagen/dbpedia.h"

namespace rdfmr {

std::vector<Triple> GenerateBtc(const BtcConfig& config) {
  Rng rng(config.seed);

  DbpediaConfig dbp_config;
  dbp_config.num_entities = config.num_dbpedia_entities;
  dbp_config.seed = config.seed * 31 + 1;
  std::vector<Triple> triples = GenerateDbpedia(dbp_config);

  Bio2RdfConfig bio_config;
  bio_config.num_genes = config.num_genes;
  bio_config.num_go_terms = config.num_genes;
  bio_config.num_articles = config.num_genes;
  bio_config.seed = config.seed * 31 + 2;
  std::vector<Triple> bio = GenerateBio2Rdf(bio_config);
  triples.insert(triples.end(), bio.begin(), bio.end());

  // Crawl-style cross-domain links.
  for (uint64_t i = 0; i < config.num_cross_links; ++i) {
    std::string from = StringFormat(
        "ent%llu",
        static_cast<unsigned long long>(
            rng.Uniform(config.num_dbpedia_entities)));
    std::string to =
        rng.Chance(0.5)
            ? StringFormat("gene%llu", static_cast<unsigned long long>(
                                           rng.Uniform(config.num_genes)))
            : StringFormat("ent%llu",
                           static_cast<unsigned long long>(rng.Uniform(
                               config.num_dbpedia_entities)));
    triples.emplace_back(from, rng.Chance(0.5) ? btc::kSameAs : btc::kSeeAlso,
                         to);
  }
  return triples;
}

}  // namespace rdfmr
