// Billion-Triple-Challenge-like synthetic dataset generator.
//
// BTC-09 is a multi-domain web crawl; we model it as a union of the
// DBpedia-like and Bio2RDF-like generators plus crawl-style `sameAs` /
// `seeAlso` cross-links, which gives it the property heterogeneity and
// multi-valuedness the paper's C3/C4 runs on BTC exercise.

#ifndef RDFMR_DATAGEN_BTC_H_
#define RDFMR_DATAGEN_BTC_H_

#include <cstdint>
#include <vector>

#include "rdf/triple.h"

namespace rdfmr {

struct BtcConfig {
  uint64_t num_dbpedia_entities = 1500;
  uint64_t num_genes = 300;
  uint64_t num_cross_links = 600;
  uint64_t seed = 23;
};

namespace btc {
inline constexpr const char* kSameAs = "sameAs";
inline constexpr const char* kSeeAlso = "seeAlso";
}  // namespace btc

/// \brief Generates the triple set for `config`.
std::vector<Triple> GenerateBtc(const BtcConfig& config);

}  // namespace rdfmr

#endif  // RDFMR_DATAGEN_BTC_H_
