#include "datagen/dbpedia.h"

#include <algorithm>

#include "common/random.h"
#include "common/strings.h"

namespace rdfmr {

std::vector<Triple> GenerateDbpedia(const DbpediaConfig& config) {
  Rng rng(config.seed);
  std::vector<Triple> triples;
  triples.reserve(config.num_entities * 8);

  // Entity identifiers carry a DBpedia-style resource prefix: real infobox
  // subjects are long IRIs, and their repetition per column group is part
  // of the flat representation's redundancy.
  auto ent = [](uint64_t i) {
    return StringFormat("dbpedia_resource_ent%llu",
                        static_cast<unsigned long long>(i));
  };

  // Class layout: first 10% cities (join targets), then a mix.
  uint64_t num_cities = std::max<uint64_t>(1, config.num_entities / 10);

  for (uint64_t i = 0; i < config.num_entities; ++i) {
    std::string subject = ent(i);
    std::string cls;
    if (i < num_cities) {
      cls = dbp::kCity;
    } else {
      switch (rng.Uniform(4)) {
        case 0:
          cls = dbp::kScientist;
          break;
        case 1:
          cls = dbp::kTvSeries;
          break;
        case 2:
          cls = dbp::kFilm;
          break;
        default:
          cls = dbp::kBand;
      }
    }
    triples.emplace_back(subject, dbp::kType, cls);
    if (rng.Chance(0.1)) {
      triples.emplace_back(subject, dbp::kType, "Thing");  // dual-typed
    }

    if (cls == dbp::kCity) {
      triples.emplace_back(subject, dbp::kName,
                           StringFormat("city %llu",
                                        static_cast<unsigned long long>(i)));
      triples.emplace_back(
          subject, dbp::kCountry,
          StringFormat("country%llu",
                       static_cast<unsigned long long>(i % 30)));
      if (rng.Chance(0.2)) {  // historically disputed cities
        triples.emplace_back(
            subject, dbp::kCountry,
            StringFormat("country%llu", static_cast<unsigned long long>(
                                            rng.Uniform(30))));
      }
      triples.emplace_back(subject, dbp::kPopulation,
                           StringFormat("pop_%llu",
                                        static_cast<unsigned long long>(
                                            rng.Uniform(9000000))));
    } else if (cls == dbp::kScientist) {
      triples.emplace_back(subject, dbp::kName,
                           StringFormat("scientist %llu",
                                        static_cast<unsigned long long>(i)));
      if (rng.Chance(0.3)) {  // alias
        triples.emplace_back(
            subject, dbp::kName,
            StringFormat("dr s %llu", static_cast<unsigned long long>(i)));
      }
      // Scientists link to cities through several distinct property types —
      // exactly the "unknown relationship to the same city" scenario.
      triples.emplace_back(subject, dbp::kBirthPlace,
                           ent(rng.Uniform(num_cities)));
      if (rng.Chance(0.6)) {
        triples.emplace_back(subject, dbp::kAlmaMater,
                             ent(rng.Uniform(num_cities)));
      }
      if (rng.Chance(0.5)) {
        triples.emplace_back(subject, "residence",
                             ent(rng.Uniform(num_cities)));
      }
      if (rng.Chance(0.4)) {
        triples.emplace_back(subject, "deathPlace",
                             ent(rng.Uniform(num_cities)));
      }
      uint64_t nfields = 1 + rng.Uniform(2);
      for (uint64_t f = 0; f < nfields; ++f) {
        triples.emplace_back(
            subject, dbp::kField,
            StringFormat("field%llu",
                         static_cast<unsigned long long>(rng.Uniform(12))));
      }
      uint64_t nknown = 1 + rng.Uniform(5);
      for (uint64_t k = 0; k < nknown; ++k) {
        triples.emplace_back(subject, dbp::kKnownFor,
                             StringFormat("topic%llu",
                                          static_cast<unsigned long long>(
                                              rng.Uniform(100))));
      }
    } else if (cls == dbp::kTvSeries) {
      bool sopranos = rng.Chance(config.sopranos_fraction);
      triples.emplace_back(
          subject, dbp::kName,
          sopranos ? StringFormat("The Sopranos season %llu",
                                  static_cast<unsigned long long>(i % 7))
                   : StringFormat("series %llu",
                                  static_cast<unsigned long long>(i)));
      uint64_t nstar = 1 + rng.Uniform(5);
      for (uint64_t s = 0; s < nstar; ++s) {
        triples.emplace_back(subject, dbp::kStarring,
                             ent(rng.Uniform(config.num_entities)));
      }
      uint64_t ngenres = 1 + rng.Uniform(2);
      for (uint64_t g = 0; g < ngenres; ++g) {
        triples.emplace_back(
            subject, dbp::kGenre,
            StringFormat("genre%llu",
                         static_cast<unsigned long long>(rng.Uniform(9))));
      }
      triples.emplace_back(
          subject, dbp::kNetwork,
          StringFormat("network%llu",
                       static_cast<unsigned long long>(rng.Uniform(15))));
    } else {  // Film / Band
      triples.emplace_back(subject, dbp::kName,
                           StringFormat("%s %llu", cls.c_str(),
                                        static_cast<unsigned long long>(i)));
      triples.emplace_back(
          subject, dbp::kGenre,
          StringFormat("genre%llu",
                       static_cast<unsigned long long>(rng.Uniform(9))));
    }

    // Generic multi-valued noise links (heterogeneous crawl flavor).
    uint64_t nlinks = rng.Uniform(config.max_links_per_entity);
    for (uint64_t l = 0; l < nlinks; ++l) {
      triples.emplace_back(subject, dbp::kWikiLink,
                           ent(rng.Uniform(config.num_entities)));
    }
  }
  return triples;
}

}  // namespace rdfmr
