// DBpedia-Infobox-like synthetic dataset generator.
//
// Models the heterogeneous, schema-light infobox extraction data of the
// paper's C-query evaluation: entities of mixed classes (Scientist, City,
// TVSeries, Film, Band) with class-specific property sets, generic noise
// properties, and >45% multi-valued properties with varying multiplicity.

#ifndef RDFMR_DATAGEN_DBPEDIA_H_
#define RDFMR_DATAGEN_DBPEDIA_H_

#include <cstdint>
#include <vector>

#include "rdf/triple.h"

namespace rdfmr {

struct DbpediaConfig {
  uint64_t num_entities = 2000;
  uint32_t max_links_per_entity = 12;
  double sopranos_fraction = 0.01;  ///< TV series named like "Sopranos"
  uint64_t seed = 11;
};

namespace dbp {
inline constexpr const char* kType = "type";
inline constexpr const char* kName = "name";
inline constexpr const char* kBirthPlace = "birthPlace";
inline constexpr const char* kField = "field";
inline constexpr const char* kAlmaMater = "almaMater";
inline constexpr const char* kKnownFor = "knownFor";
inline constexpr const char* kCountry = "country";
inline constexpr const char* kPopulation = "population";
inline constexpr const char* kStarring = "starring";
inline constexpr const char* kGenre = "genre";
inline constexpr const char* kNetwork = "network";
inline constexpr const char* kWikiLink = "wikiLink";

inline constexpr const char* kScientist = "Scientist";
inline constexpr const char* kCity = "City";
inline constexpr const char* kTvSeries = "TVSeries";
inline constexpr const char* kFilm = "Film";
inline constexpr const char* kBand = "Band";
}  // namespace dbp

/// \brief Generates the triple set for `config`.
std::vector<Triple> GenerateDbpedia(const DbpediaConfig& config);

}  // namespace rdfmr

#endif  // RDFMR_DATAGEN_DBPEDIA_H_
