#include "datagen/testbed.h"

#include <map>
#include <mutex>

#include "query/sparql_parser.h"

namespace rdfmr {

const char* DatasetFamilyToString(DatasetFamily family) {
  switch (family) {
    case DatasetFamily::kBsbm:
      return "BSBM";
    case DatasetFamily::kBio2Rdf:
      return "Bio2RDF";
    case DatasetFamily::kDbpedia:
      return "DBpedia-Infobox";
    case DatasetFamily::kBtc:
      return "BTC-09";
  }
  return "?";
}

const std::vector<TestbedEntry>& TestbedCatalog() {
  static const std::vector<TestbedEntry> kCatalog = {
      // ---- Fig. 3 case study: all-bound two-star queries -----------------
      {"Q1a", DatasetFamily::kBsbm,
       R"(SELECT * WHERE {
            ?o <product> ?p . ?o <vendor> ?v . ?o <price> ?pr .
            ?p <label> ?l . ?p <type> ?t . ?p <prodFeature> ?f . })",
       "Object-Subject join, offer star x product star"},
      {"Q1b", DatasetFamily::kBsbm,
       R"(SELECT * WHERE {
            ?o <product> ?p . ?o <vendor> ?v . ?o <deliveryDays> ?d .
            FILTER(CONTAINS(STR(?d), "days_1"))
            ?p <label> ?l . FILTER(CONTAINS(STR(?l), "gold"))
            ?p <type> ?t . ?p <prodFeature> ?f . })",
       "Q1a with selective filters on both stars"},
      {"Q2a", DatasetFamily::kBsbm,
       R"(SELECT * WHERE {
            ?r <reviewFor> ?p . ?r <rating1> ?x . ?r <title> ?ti .
            ?p <label> ?l . ?p <producer> ?pd . ?p <propertyNum1> ?n1 . })",
       "Object-Subject join, review star x product star"},
      {"Q2b", DatasetFamily::kBsbm,
       R"(SELECT * WHERE {
            ?r <reviewFor> ?p . ?r <rating1> ?x . ?r <title> ?ti .
            FILTER(CONTAINS(STR(?ti), "awful"))
            ?p <label> ?l . FILTER(CONTAINS(STR(?l), "gold"))
            ?p <producer> ?pd . ?p <propertyNum1> ?n1 . })",
       "Q2a with selective filters on both stars"},
      {"Q3a", DatasetFamily::kBsbm,
       R"(SELECT * WHERE {
            ?o <product> ?p . ?o <vendor> ?v . ?o <price> ?pr .
            ?r <reviewFor> ?p . ?r <title> ?ti . ?r <rating1> ?x . })",
       "Object-Object join, offer star x review star"},
      {"Q3b", DatasetFamily::kBsbm,
       R"(SELECT * WHERE {
            ?o <product> ?p . ?o <vendor> ?v . ?o <deliveryDays> ?d .
            FILTER(CONTAINS(STR(?d), "days_1"))
            ?r <reviewFor> ?p . ?r <title> ?ti .
            FILTER(CONTAINS(STR(?ti), "awful"))
            ?r <rating1> ?x . })",
       "Q3a with selective filters on both stars"},

      // ---- Varying join structures: B0-B6 --------------------------------
      {"B0", DatasetFamily::kBsbm,
       R"(SELECT * WHERE {
            ?p <label> ?l . ?p <type> ?t . ?p <prodFeature> ?f .
            ?o <product> ?p . ?o <vendor> ?v . ?o <price> ?pr . })",
       "baseline: two stars, all bound, multi-valued prodFeature"},
      {"B1", DatasetFamily::kBsbm,
       R"(SELECT * WHERE {
            ?p <label> ?l . ?p <type> ?t . ?p ?up ?x .
            ?x <featureLabel> ?fl . ?x <featureType> ?ft . })",
       "one unbound-property pattern, join on the unbound object"},
      {"B2", DatasetFamily::kBsbm,
       R"(SELECT * WHERE {
            ?p <label> ?l . ?p <prodFeature> ?f . ?p ?up ?x .
            FILTER(CONTAINS(STR(?x), "producer"))
            ?o <product> ?p . ?o <vendor> ?v . ?o <price> ?pr . })",
       "one unbound property with a partially-bound object"},
      {"B3", DatasetFamily::kBsbm,
       R"(SELECT * WHERE {
            ?p <label> ?l . ?p ?up1 ?x1 .
            FILTER(CONTAINS(STR(?x1), "producer"))
            ?p ?up2 ?x2 .
            ?o <product> ?p . ?o <vendor> ?v . ?o <price> ?pr . })",
       "two unbound patterns in one star, one partially-bound object"},
      {"B4", DatasetFamily::kBsbm,
       R"(SELECT * WHERE {
            ?p <label> ?l . ?p <type> ?t . ?p ?up ?x .
            ?o <product> ?p . ?o <vendor> ?v . ?o <price> ?pr . })",
       "unbound pattern not participating in the inter-star join"},
      {"B5", DatasetFamily::kBsbm,
       R"(SELECT * WHERE {
            ?p <label> ?l . ?p ?up ?x .
            ?x <featureLabel> ?fl .
            ?o <product> ?p . ?o <vendor> ?v . ?o <price> ?pr . })",
       "three stars; join on unbound object plus a bound join"},
      {"B6", DatasetFamily::kBsbm,
       R"(SELECT * WHERE {
            ?p <label> ?l . ?p ?up1 ?x .
            ?x <featureLabel> ?fl .
            ?o <product> ?p . ?o ?up2 ?y .
            FILTER(CONTAINS(STR(?y), "vendor"))
            ?o <price> ?pr . })",
       "three stars; unbound join plus a second unbound pattern"},

      // ---- Varying number of bound-property edges -------------------------
      {"B1-3bnd", DatasetFamily::kBsbm,
       R"(SELECT * WHERE {
            ?p <label> ?l . ?p <type> ?t . ?p <producer> ?pd . ?p ?up ?x .
            ?x <featureLabel> ?fl . ?x <featureType> ?ft . })",
       "B1 with 3 bound properties"},
      {"B1-4bnd", DatasetFamily::kBsbm,
       R"(SELECT * WHERE {
            ?p <label> ?l . ?p <type> ?t . ?p <producer> ?pd .
            ?p <propertyNum1> ?n1 . ?p ?up ?x .
            ?x <featureLabel> ?fl . ?x <featureType> ?ft . })",
       "B1 with 4 bound properties"},
      {"B1-5bnd", DatasetFamily::kBsbm,
       R"(SELECT * WHERE {
            ?p <label> ?l . ?p <type> ?t . ?p <producer> ?pd .
            ?p <propertyNum1> ?n1 . ?p <propertyNum2> ?n2 . ?p ?up ?x .
            ?x <featureLabel> ?fl . ?x <featureType> ?ft . })",
       "B1 with 5 bound properties"},
      {"B1-6bnd", DatasetFamily::kBsbm,
       R"(SELECT * WHERE {
            ?p <label> ?l . ?p <type> ?t . ?p <producer> ?pd .
            ?p <propertyNum1> ?n1 . ?p <propertyNum2> ?n2 .
            ?p <propertyTex1> ?x1 . ?p ?up ?x .
            ?x <featureLabel> ?fl . ?x <featureType> ?ft . })",
       "B1 with 6 bound properties"},

      // ---- Real-world bio queries: A1-A6 ----------------------------------
      {"A1", DatasetFamily::kBio2Rdf,
       R"(SELECT * WHERE {
            ?g <label> ?l . ?g <xRef> ?ref . ?g ?up ?x .
            FILTER(CONTAINS(STR(?x), "go_")) })",
       "single star, unbound property with partially-bound object; the "
       "multi-valued xRef makes the relational combinations explode"},
      {"A2", DatasetFamily::kBio2Rdf,
       R"(SELECT * WHERE {
            ?g <subType> ?st . ?g <xTaxon> ?tx . ?g ?up ?x .
            FILTER(CONTAINS(STR(?x), "pmid_")) })",
       "single star, unbound property toward PubMed references"},
      {"A3", DatasetFamily::kBio2Rdf,
       R"(SELECT * WHERE {
            ?g <label> ?l . ?g <xRef> ?ref . ?g ?up1 ?go .
            FILTER(CONTAINS(STR(?go), "go_"))
            ?go <goLabel> ?gl . ?go ?up2 ?y . })",
       "two stars, one unbound each (one partially bound); join on ?go"},
      {"A4", DatasetFamily::kBio2Rdf,
       R"(SELECT * WHERE {
            ?g <subType> ?st . ?g <xGO> ?go . ?g ?up1 ?r .
            FILTER(CONTAINS(STR(?r), "pmid_"))
            ?r <articleTitle> ?t . ?r ?up2 ?y . })",
       "two stars, one unbound each; join on the unbound object ?r"},
      {"A5", DatasetFamily::kBio2Rdf,
       R"(SELECT * WHERE {
            ?g <subType> ?st . ?g ?up1 ?o1 .
            FILTER(CONTAINS(STR(?o1), "nur77"))
            ?g ?up2 ?a .
            ?a <label> ?al . })",
       "star with two unbound patterns (one matching gene nur77), joined "
       "to a single label-retrieving edge"},
      {"A6", DatasetFamily::kBio2Rdf,
       R"(SELECT * WHERE {
            ?g <label> ?l . ?g <xGO> ?go . ?g ?up ?x .
            FILTER(CONTAINS(STR(?x), "hexokinase"))
            ?go <goLabel> ?gl . ?go <goNamespace> ?ns . })",
       "unbound property partially binding the object to 'hexokinase'"},

      // ---- DBpedia / BTC queries: C1-C4 ------------------------------------
      {"C1", DatasetFamily::kDbpedia,
       R"(SELECT * WHERE { ?s <type> <Scientist> . ?s ?p ?o . })",
       "all information about Scientists (selective single join)"},
      {"C2", DatasetFamily::kDbpedia,
       R"(SELECT * WHERE {
            ?s <name> ?n . FILTER(CONTAINS(STR(?n), "Sopranos"))
            ?s ?p ?o . })",
       "all information about the Sopranos TV series (selective)"},
      {"C3", DatasetFamily::kDbpedia,
       R"(SELECT * WHERE {
            ?s <type> <Scientist> . ?s ?up ?x .
            ?x <type> <City> . ?x <name> ?cn . })",
       "unknown relationship between scientists and cities"},
      {"C4", DatasetFamily::kDbpedia,
       R"(SELECT * WHERE {
            ?s <type> <Scientist> . ?s ?up1 ?x .
            ?x <name> ?cn . ?x ?up2 ?y . })",
       "unbound property in each of the two star patterns"},
  };
  return kCatalog;
}

Result<TestbedEntry> GetTestbedEntry(const std::string& id) {
  for (const TestbedEntry& entry : TestbedCatalog()) {
    if (entry.id == id) return entry;
  }
  return Status::NotFound("no testbed query with id: " + id);
}

Result<std::shared_ptr<const GraphPatternQuery>> GetTestbedQuery(
    const std::string& id) {
  // The catalog is immutable, so each query is parsed once per process:
  // the query service resolves "query_id" requests through here on every
  // protocol line, and re-parsing SPARQL per request would put the
  // parser on the warm serving path.
  static std::mutex mu;
  static auto* cache = new std::map<
      std::string, std::shared_ptr<const GraphPatternQuery>>();
  {
    std::lock_guard<std::mutex> lock(mu);
    auto it = cache->find(id);
    if (it != cache->end()) return it->second;
  }
  RDFMR_ASSIGN_OR_RETURN(TestbedEntry entry, GetTestbedEntry(id));
  RDFMR_ASSIGN_OR_RETURN(GraphPatternQuery query,
                         ParseSparql(entry.id, entry.sparql));
  auto parsed = std::make_shared<const GraphPatternQuery>(std::move(query));
  std::lock_guard<std::mutex> lock(mu);
  cache->emplace(id, parsed);
  return parsed;
}

}  // namespace rdfmr
