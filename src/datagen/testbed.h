// The paper's testbed query catalog, expressed in the SPARQL subset and
// targeting the synthetic generators' vocabularies:
//
//   Fig. 3 case study  : Q1a Q1b Q2a Q2b Q3a Q3b      (BSBM, all bound)
//   Varying structure  : B0 B1 B2 B3 B4 B5 B6          (BSBM)
//   Varying bound arity: B1-3bnd B1-4bnd B1-5bnd B1-6bnd (BSBM)
//   Real-world bio     : A1 A2 A3 A4 A5 A6             (Bio2RDF-like)
//   DBpedia/BTC        : C1 C2 C3 C4                   (DBpedia/BTC-like)
//
// Each entry records the query text and which dataset family it targets,
// mirroring the paper's experimental setup (Figure 8 and Section 5).

#ifndef RDFMR_DATAGEN_TESTBED_H_
#define RDFMR_DATAGEN_TESTBED_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "query/pattern.h"

namespace rdfmr {

enum class DatasetFamily { kBsbm, kBio2Rdf, kDbpedia, kBtc };

const char* DatasetFamilyToString(DatasetFamily family);

struct TestbedEntry {
  std::string id;
  DatasetFamily dataset;
  std::string sparql;
  std::string description;
};

/// \brief The whole catalog in presentation order.
const std::vector<TestbedEntry>& TestbedCatalog();

/// \brief Finds a catalog entry by id ("B1", "A3", ...).
Result<TestbedEntry> GetTestbedEntry(const std::string& id);

/// \brief Parses a catalog entry into an executable query.
Result<std::shared_ptr<const GraphPatternQuery>> GetTestbedQuery(
    const std::string& id);

}  // namespace rdfmr

#endif  // RDFMR_DATAGEN_TESTBED_H_
