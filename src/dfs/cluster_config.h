// Configuration of the simulated cluster: node count, per-node disk budget,
// HDFS block size and replication factor.
//
// Mirrors the paper's testbed knobs: 5..80-node clusters, 20GB disk per
// node, 256MB block size, dfs.replication 1 or 2.

#ifndef RDFMR_DFS_CLUSTER_CONFIG_H_
#define RDFMR_DFS_CLUSTER_CONFIG_H_

#include <cstdint>

namespace rdfmr {

struct ClusterConfig {
  /// Number of worker nodes.
  uint32_t num_nodes = 10;

  /// Disk capacity per node, in bytes. The paper's VCL nodes had 20GB; we
  /// scale proportionally with the dataset.
  uint64_t disk_per_node = 64ULL << 20;  // 64 MB default for tests

  /// HDFS replication factor (paper: 1 or 2).
  uint32_t replication = 1;

  /// HDFS block size; determines how many map tasks scan a file.
  uint64_t block_size = 1ULL << 20;  // 1 MB default for tests

  /// Number of reduce tasks per job (paper: proportional to cluster size).
  uint32_t num_reducers = 4;

  /// Host-side execution parallelism of the simulator runtime: how many
  /// map tasks / reducer partitions run concurrently on the machine
  /// executing the simulation. Purely a wall-clock knob — it affects no
  /// simulated metric, no modeled time, and the runtime guarantees output
  /// and metrics byte-identical to `num_threads = 1`. This is the
  /// *config-default* layer of the RuntimeOptions precedence rule
  /// (common/runtime_options.h): CLI flag > RDFMR_THREADS env >
  /// programmatic RuntimeOptions > this field.
  uint32_t num_threads = 1;

  /// Maximum attempts per DFS task operation before the job fails, in the
  /// spirit of Hadoop's mapreduce.map.maxattempts (default 4 there too).
  /// Only transient failures (kIoError, kUnavailable) are re-attempted;
  /// kOutOfSpace and semantic errors fail the job on the first attempt,
  /// preserving the paper's failed-execution behavior. 1 disables retry.
  /// Config-default layer of the same precedence rule as num_threads
  /// (overridden by --max-attempts / RDFMR_MAX_ATTEMPTS / RuntimeOptions).
  uint32_t max_task_attempts = 4;

  /// Modeled base for exponential retry backoff: a task's n-th failed
  /// attempt accounts base * 2^(n-1) seconds in
  /// JobMetrics::retry_backoff_seconds. Accounting only — the simulator
  /// never sleeps, and the backoff does not enter the cost model (so a
  /// recovered run keeps the fault-free modeled time).
  double retry_backoff_seconds = 1.0;

  uint64_t TotalCapacity() const {
    return static_cast<uint64_t>(num_nodes) * disk_per_node;
  }
};

/// \brief Deterministic cost model translating measured I/O volumes into a
/// modeled execution time. Bandwidths are per-node aggregate figures; the
/// totals below are divided by the cluster's parallelism.
struct CostModelConfig {
  double hdfs_read_mbps = 80.0;    ///< per-node HDFS scan bandwidth
  double hdfs_write_mbps = 50.0;   ///< per-node HDFS write bandwidth
  double shuffle_mbps = 40.0;      ///< per-node network shuffle bandwidth
  double sort_mbps = 120.0;        ///< per-node in-memory sort throughput
  double job_startup_seconds = 15.0;  ///< fixed MR job scheduling overhead
};

}  // namespace rdfmr

#endif  // RDFMR_DFS_CLUSTER_CONFIG_H_
