#include "dfs/fault_plan.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>

#include "common/strings.h"

namespace rdfmr {

namespace {

Result<uint64_t> ParseU64(std::string_view text, const std::string& clause) {
  if (text.empty()) {
    return Status::InvalidArgument("fault plan: empty number in '" + clause +
                                   "'");
  }
  errno = 0;
  char* end = nullptr;
  const std::string buf(text);
  const unsigned long long value = std::strtoull(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("fault plan: bad number '" + buf +
                                   "' in '" + clause + "'");
  }
  return static_cast<uint64_t>(value);
}

Result<double> ParseProb(std::string_view text, const std::string& clause) {
  errno = 0;
  char* end = nullptr;
  const std::string buf(text);
  const double value = std::strtod(buf.c_str(), &end);
  if (buf.empty() || errno != 0 || end != buf.c_str() + buf.size() ||
      value < 0.0 || value > 1.0) {
    return Status::InvalidArgument("fault plan: probability '" + buf +
                                   "' in '" + clause +
                                   "' must be a number in [0, 1]");
  }
  return value;
}

/// Parses "K:NODE" (both decimal) for node-fault clauses.
Result<FaultPlan::NodeFault> ParseNodeFault(std::string_view body,
                                            FaultPlan::NodeFaultKind kind,
                                            const std::string& clause) {
  const size_t colon = body.find(':');
  if (colon == std::string_view::npos) {
    return Status::InvalidArgument("fault plan: '" + clause +
                                   "' needs the form ...@OPS:NODE");
  }
  FaultPlan::NodeFault fault;
  fault.kind = kind;
  RDFMR_ASSIGN_OR_RETURN(fault.after_ops,
                         ParseU64(body.substr(0, colon), clause));
  RDFMR_ASSIGN_OR_RETURN(uint64_t node,
                         ParseU64(body.substr(colon + 1), clause));
  fault.node = static_cast<uint32_t>(node);
  return fault;
}

}  // namespace

std::string FaultPlan::ToString() const {
  std::vector<std::string> clauses;
  clauses.push_back(StringFormat("seed=%llu",
                                 static_cast<unsigned long long>(seed)));
  if (read_failure_prob > 0.0) {
    clauses.push_back(StringFormat("pread=%g", read_failure_prob));
  }
  if (write_failure_prob > 0.0) {
    clauses.push_back(StringFormat("pwrite=%g", write_failure_prob));
  }
  for (uint64_t ordinal : fail_reads) {
    clauses.push_back(
        StringFormat("read@%llu", static_cast<unsigned long long>(ordinal)));
  }
  for (uint64_t ordinal : fail_writes) {
    clauses.push_back(
        StringFormat("write@%llu", static_cast<unsigned long long>(ordinal)));
  }
  for (const NodeFault& fault : node_faults) {
    clauses.push_back(StringFormat(
        "%s@%llu:%u",
        fault.kind == NodeFaultKind::kLoss ? "lose-node" : "fill-node",
        static_cast<unsigned long long>(fault.after_ops), fault.node));
  }
  return Join(clauses, ',');
}

Result<FaultPlan> FaultPlan::Parse(const std::string& spec) {
  FaultPlan plan;
  for (const std::string& raw : Split(spec, ',')) {
    const std::string clause(Trim(raw));
    if (clause.empty()) continue;
    const size_t eq = clause.find('=');
    const size_t at = clause.find('@');
    if (eq != std::string::npos && (at == std::string::npos || eq < at)) {
      const std::string key = clause.substr(0, eq);
      const std::string_view value = std::string_view(clause).substr(eq + 1);
      if (key == "seed") {
        RDFMR_ASSIGN_OR_RETURN(plan.seed, ParseU64(value, clause));
      } else if (key == "pread") {
        RDFMR_ASSIGN_OR_RETURN(plan.read_failure_prob,
                               ParseProb(value, clause));
      } else if (key == "pwrite") {
        RDFMR_ASSIGN_OR_RETURN(plan.write_failure_prob,
                               ParseProb(value, clause));
      } else {
        return Status::InvalidArgument(
            "fault plan: unknown key '" + key +
            "' (expected seed, pread, or pwrite)");
      }
      continue;
    }
    if (at == std::string::npos) {
      return Status::InvalidArgument(
          "fault plan: unrecognized clause '" + clause +
          "' (expected key=value or kind@ordinal)");
    }
    const std::string kind = clause.substr(0, at);
    const std::string_view body = std::string_view(clause).substr(at + 1);
    if (kind == "read") {
      RDFMR_ASSIGN_OR_RETURN(uint64_t ordinal, ParseU64(body, clause));
      if (ordinal == 0) {
        return Status::InvalidArgument(
            "fault plan: read ordinals are 1-based in '" + clause + "'");
      }
      plan.fail_reads.push_back(ordinal);
    } else if (kind == "write") {
      RDFMR_ASSIGN_OR_RETURN(uint64_t ordinal, ParseU64(body, clause));
      if (ordinal == 0) {
        return Status::InvalidArgument(
            "fault plan: write ordinals are 1-based in '" + clause + "'");
      }
      plan.fail_writes.push_back(ordinal);
    } else if (kind == "lose-node") {
      RDFMR_ASSIGN_OR_RETURN(
          NodeFault fault, ParseNodeFault(body, NodeFaultKind::kLoss, clause));
      plan.node_faults.push_back(fault);
    } else if (kind == "fill-node") {
      RDFMR_ASSIGN_OR_RETURN(
          NodeFault fault,
          ParseNodeFault(body, NodeFaultKind::kDiskFull, clause));
      plan.node_faults.push_back(fault);
    } else {
      return Status::InvalidArgument(
          "fault plan: unknown fault kind '" + kind +
          "' (expected read, write, lose-node, or fill-node)");
    }
  }
  std::sort(plan.fail_reads.begin(), plan.fail_reads.end());
  std::sort(plan.fail_writes.begin(), plan.fail_writes.end());
  std::sort(plan.node_faults.begin(), plan.node_faults.end(),
            [](const NodeFault& a, const NodeFault& b) {
              return a.after_ops < b.after_ops;
            });
  return plan;
}

}  // namespace rdfmr
