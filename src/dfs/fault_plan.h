// Seeded, policy-driven fault injection for the simulated DFS.
//
// A FaultPlan describes *when* the simulated cluster misbehaves:
// probabilistic or scheduled read/write failures (transient, as a flaky
// datanode or network partition would produce), per-node disk exhaustion,
// and whole-node loss. Node loss interacts with block placement: a block
// whose replicas all lived on lost nodes becomes permanently unavailable
// (kUnavailable), while replication >= 2 lets reads survive a single node
// loss — the behaviour behind the paper's dfs.replication=2 experiments.
//
// Determinism: all probabilistic draws come from a splitmix64 stream
// seeded by the plan, and all DFS I/O of a workflow happens on the
// workflow's driver thread in a fixed order, so a given plan injects the
// exact same fault sequence at any host thread count. That is what makes
// the fault-tolerance contract testable: a recovered run must be
// byte-identical to a fault-free run.

#ifndef RDFMR_DFS_FAULT_PLAN_H_
#define RDFMR_DFS_FAULT_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace rdfmr {

struct FaultPlan {
  /// \brief Kinds of node-scoped faults.
  enum class NodeFaultKind {
    kLoss,      ///< node crashes: replicas gone, no further placements
    kDiskFull,  ///< node accepts no further blocks (existing data readable)
  };

  /// \brief One node-scoped fault, triggered once the DFS has served
  /// `after_ops` read+write operations (0 = before any operation).
  struct NodeFault {
    uint64_t after_ops = 0;
    uint32_t node = 0;
    NodeFaultKind kind = NodeFaultKind::kLoss;
  };

  /// Seed of the probabilistic failure stream.
  uint64_t seed = 1;
  /// Per-ReadFile probability of a transient kIoError (before any bytes
  /// are served; a retry re-draws).
  double read_failure_prob = 0.0;
  /// Per-WriteFile probability of a transient kIoError (before placement).
  double write_failure_prob = 0.0;
  /// 1-based read-operation ordinals that fail once with kIoError. A
  /// retried read is a new operation with the next ordinal.
  std::vector<uint64_t> fail_reads;
  /// 1-based write-operation ordinals that fail once with kIoError.
  std::vector<uint64_t> fail_writes;
  /// Node-scoped faults, applied when the total op count crosses the
  /// threshold.
  std::vector<NodeFault> node_faults;

  /// \brief True when the plan injects nothing.
  bool empty() const {
    return read_failure_prob == 0.0 && write_failure_prob == 0.0 &&
           fail_reads.empty() && fail_writes.empty() && node_faults.empty();
  }

  /// \brief Canonical spec-string rendering (parseable by Parse).
  std::string ToString() const;

  /// \brief Parses the CLI spec grammar: comma-separated clauses
  ///   seed=N | pread=P | pwrite=P | read@K | write@K |
  ///   lose-node@K:NODE | fill-node@K:NODE
  /// where K is an op ordinal (reads/writes) or total-op threshold (node
  /// faults) and P a probability in [0, 1]. Example:
  ///   "seed=7,pread=0.05,write@3,lose-node@12:2"
  static Result<FaultPlan> Parse(const std::string& spec);
};

}  // namespace rdfmr

#endif  // RDFMR_DFS_FAULT_PLAN_H_
