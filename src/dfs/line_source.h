// A lazily-decoded source of record lines, mountable into SimDfs.
//
// SimDfs files are ordered lists of record lines. A LineSource is the
// zero-materialization counterpart: it knows how many lines it holds and
// how long each serialized line would be, and it materializes individual
// lines on demand. Mounting one (SimDfs::MountMapped) gives engines a
// base relation whose bytes, block layout, and metering are identical to
// a written file, without ever building the full line vector.
//
// The interface lives in src/dfs/ (which links only rdfmr_common) and is
// deliberately storage-agnostic: properties are opaque strings, so the
// mmap-backed implementation in src/storage/ can sit above this layer.

#ifndef RDFMR_DFS_LINE_SOURCE_H_
#define RDFMR_DFS_LINE_SOURCE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace rdfmr {

/// \brief Read-only, indexable provider of serialized record lines.
///
/// Implementations must be immutable after construction and safe for
/// concurrent use from any number of threads without external locking:
/// map tasks of the multi-threaded job runner call Line() concurrently.
class LineSource {
 public:
  virtual ~LineSource() = default;

  /// \brief Number of record lines.
  virtual uint64_t line_count() const = 0;

  /// \brief Total logical bytes: sum over lines of line.size() + 1 (the
  /// trailing newline), matching how SimDfs sizes written files.
  virtual uint64_t total_bytes() const = 0;

  /// \brief Serialized length (excluding the newline) of line `index`.
  /// Must equal Line(index).size() without materializing the line.
  virtual uint64_t LineBytes(uint64_t index) const = 0;

  /// \brief Materializes line `index` (no trailing newline).
  virtual std::string Line(uint64_t index) const = 0;

  /// \brief Ascending indices of the lines whose property term is in
  /// `properties` (exact string match; order/duplicates in `properties`
  /// do not matter). An empty `properties` selects nothing.
  virtual std::vector<uint64_t> MatchingLines(
      const std::vector<std::string>& properties) const = 0;
};

}  // namespace rdfmr

#endif  // RDFMR_DFS_LINE_SOURCE_H_
