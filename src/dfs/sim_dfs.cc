#include "dfs/sim_dfs.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"
#include "common/strings.h"

namespace rdfmr {

namespace {

uint64_t LinesBytes(const std::vector<std::string>& lines) {
  uint64_t bytes = 0;
  for (const std::string& line : lines) bytes += line.size() + 1;  // +\n
  return bytes;
}

}  // namespace

SimDfs::SimDfs(ClusterConfig config) : config_(config) {
  RDFMR_CHECK(config_.num_nodes > 0) << "cluster needs at least one node";
  RDFMR_CHECK(config_.replication >= 1) << "replication must be >= 1";
  RDFMR_CHECK(config_.replication <= config_.num_nodes)
      << "replication cannot exceed node count";
  RDFMR_CHECK(config_.block_size > 0) << "block size must be positive";
  node_used_.assign(config_.num_nodes, 0);
  node_alive_.assign(config_.num_nodes, true);
  node_full_.assign(config_.num_nodes, false);
}

Status SimDfs::SetFaultPlan(FaultPlan plan) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const FaultPlan::NodeFault& fault : plan.node_faults) {
    if (fault.node >= config_.num_nodes) {
      return Status::InvalidArgument(StringFormat(
          "fault plan names node %u but the cluster has %u nodes",
          fault.node, config_.num_nodes));
    }
  }
  fault_plan_ = std::move(plan);
  have_fault_plan_ = !fault_plan_.empty();
  fault_rng_ = Rng(fault_plan_.seed);
  fault_read_ops_ = 0;
  fault_write_ops_ = 0;
  fault_total_ops_ = 0;
  next_node_fault_ = 0;
  node_alive_.assign(config_.num_nodes, true);
  node_full_.assign(config_.num_nodes, false);
  return Status::OK();
}

void SimDfs::ClearFaultPlan() {
  std::lock_guard<std::mutex> lock(mu_);
  fault_plan_ = FaultPlan{};
  have_fault_plan_ = false;
  fault_read_ops_ = 0;
  fault_write_ops_ = 0;
  fault_total_ops_ = 0;
  next_node_fault_ = 0;
  node_alive_.assign(config_.num_nodes, true);
  node_full_.assign(config_.num_nodes, false);
}

void SimDfs::ApplyNodeFaultsLocked() const {
  while (next_node_fault_ < fault_plan_.node_faults.size() &&
         fault_plan_.node_faults[next_node_fault_].after_ops <=
             fault_total_ops_) {
    const FaultPlan::NodeFault& fault =
        fault_plan_.node_faults[next_node_fault_++];
    if (fault.kind == FaultPlan::NodeFaultKind::kLoss) {
      node_alive_[fault.node] = false;
    } else {
      node_full_[fault.node] = true;
    }
  }
}

Status SimDfs::MaybeInjectFaultLocked(bool is_read,
                                      const std::string& path) const {
  // Node faults trigger once the total op count reaches their threshold,
  // i.e. before the (after_ops+1)-th operation starts.
  ApplyNodeFaultsLocked();
  ++fault_total_ops_;
  uint64_t& ordinal = is_read ? fault_read_ops_ : fault_write_ops_;
  ++ordinal;
  const std::vector<uint64_t>& scheduled =
      is_read ? fault_plan_.fail_reads : fault_plan_.fail_writes;
  const double prob = is_read ? fault_plan_.read_failure_prob
                              : fault_plan_.write_failure_prob;
  bool fail =
      std::binary_search(scheduled.begin(), scheduled.end(), ordinal);
  // Draw only when the probability is armed so scheduled-only plans do not
  // depend on the RNG stream at all.
  if (prob > 0.0 && fault_rng_.Chance(prob)) fail = true;
  if (!fail) return Status::OK();
  if (is_read) {
    ++metrics_.injected_read_failures;
    return Status::IoError(StringFormat(
        "injected transient read failure (read op %llu): %s",
        static_cast<unsigned long long>(ordinal), path.c_str()));
  }
  ++metrics_.injected_write_failures;
  return Status::IoError(StringFormat(
      "injected transient write failure (write op %llu): %s",
      static_cast<unsigned long long>(ordinal), path.c_str()));
}

Result<std::vector<uint32_t>> SimDfs::PlaceBlock(uint64_t size) {
  // Choose the `replication` least-loaded nodes that can still hold the
  // block (standard balanced placement). Dead and disk-full nodes are
  // never candidates.
  std::vector<uint32_t> order(config_.num_nodes);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    if (node_used_[a] != node_used_[b]) return node_used_[a] < node_used_[b];
    return a < b;
  });
  std::vector<uint32_t> chosen;
  for (uint32_t node : order) {
    if (!node_alive_[node] || node_full_[node]) continue;
    if (node_used_[node] + size <= config_.disk_per_node) {
      chosen.push_back(node);
      if (chosen.size() == config_.replication) break;
    }
  }
  if (chosen.size() < config_.replication) {
    return Status::OutOfSpace(StringFormat(
        "cannot place %llu-byte block with replication %u (free %llu bytes)",
        static_cast<unsigned long long>(size), config_.replication,
        static_cast<unsigned long long>(config_.TotalCapacity() -
                                        UsedBytesLocked())));
  }
  for (uint32_t node : chosen) node_used_[node] += size;
  return chosen;
}

Status SimDfs::WriteFile(const std::string& path,
                         std::vector<std::string> lines) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t bytes = LinesBytes(lines);
  return CreateEntryLocked(path, bytes, std::move(lines), nullptr);
}

Status SimDfs::MountMapped(const std::string& path,
                           std::shared_ptr<const LineSource> source) {
  RDFMR_CHECK(source != nullptr) << "MountMapped needs a source";
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t bytes = source->total_bytes();
  return CreateEntryLocked(path, bytes, {}, std::move(source));
}

Status SimDfs::CreateEntryLocked(const std::string& path, uint64_t bytes,
                                 std::vector<std::string> lines,
                                 std::shared_ptr<const LineSource> source) {
  if (write_failure_countdown_ > 0 && --write_failure_countdown_ == 0) {
    return Status::IoError("injected write failure: " + path);
  }
  if (FaultsActiveLocked()) {
    RDFMR_RETURN_NOT_OK(MaybeInjectFaultLocked(/*is_read=*/false, path));
  }
  if (files_.count(path) > 0) {
    return Status::AlreadyExists("file exists: " + path);
  }
  FileEntry entry;
  entry.bytes = bytes;
  entry.blocks = static_cast<uint32_t>(
      std::max<uint64_t>(1, (entry.bytes + config_.block_size - 1) /
                                config_.block_size));

  // Place blocks one by one; on failure roll back already-placed replicas.
  uint64_t remaining = entry.bytes;
  for (uint32_t b = 0; b < entry.blocks; ++b) {
    uint64_t block_bytes = std::min<uint64_t>(remaining, config_.block_size);
    if (entry.bytes == 0) block_bytes = 0;
    auto placed = PlaceBlock(block_bytes);
    if (!placed.ok()) {
      // Roll back.
      for (uint32_t pb = 0; pb < entry.placements.size(); ++pb) {
        uint64_t sz = std::min<uint64_t>(
            entry.bytes - static_cast<uint64_t>(pb) * config_.block_size,
            config_.block_size);
        for (uint32_t node : entry.placements[pb]) node_used_[node] -= sz;
      }
      return placed.status().WithContext("WriteFile(" + path + ")");
    }
    entry.placements.push_back(placed.MoveValueUnsafe());
    remaining -= block_bytes;
  }

  metrics_.bytes_written += entry.bytes;
  metrics_.bytes_written_replicated += entry.bytes * config_.replication;
  metrics_.files_created += 1;
  metrics_.write_ops += 1;
  entry.lines = std::move(lines);
  entry.source = std::move(source);
  files_.emplace(path, std::move(entry));
  return Status::OK();
}

Result<const SimDfs::FileEntry*> SimDfs::OpenForReadLocked(
    const std::string& path) const {
  if (FaultsActiveLocked()) {
    RDFMR_RETURN_NOT_OK(MaybeInjectFaultLocked(/*is_read=*/true, path));
  }
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  // Replica-aware availability: a block is readable while at least one of
  // its replicas sits on a live node. This is cluster state rather than an
  // injected draw, so it holds even while faults are suspended.
  const FileEntry& entry = it->second;
  for (uint32_t b = 0; b < entry.placements.size(); ++b) {
    bool available = false;
    for (uint32_t node : entry.placements[b]) {
      if (node_alive_[node]) {
        available = true;
        break;
      }
    }
    if (!available) {
      return Status::Unavailable(StringFormat(
          "block %u of %s lost: every replica was on a dead node", b,
          path.c_str()));
    }
  }
  metrics_.bytes_read += entry.bytes;
  metrics_.read_ops += 1;
  return &entry;
}

Result<std::vector<std::string>> SimDfs::ReadFile(
    const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto entry = OpenForReadLocked(path);
  RDFMR_RETURN_NOT_OK(entry.status());
  const FileEntry& file = **entry;
  if (file.source == nullptr) return file.lines;
  // Mapped file: materialize every line for the caller. Scans should use
  // OpenScan instead; this path keeps whole-file readers (preflight,
  // registry snapshots) working against mounted datasets.
  std::vector<std::string> lines;
  lines.reserve(file.source->line_count());
  for (uint64_t i = 0; i < file.source->line_count(); ++i) {
    lines.push_back(file.source->Line(i));
  }
  return lines;
}

Result<SimDfs::ScanHandle> SimDfs::OpenScan(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto entry = OpenForReadLocked(path);
  RDFMR_RETURN_NOT_OK(entry.status());
  const FileEntry& file = **entry;
  ScanHandle handle;
  handle.bytes_ = file.bytes;
  if (file.source != nullptr) {
    handle.source_ = file.source;
  } else {
    handle.lines_ = file.lines;
  }
  return handle;
}

bool SimDfs::IsMapped(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  return it != files_.end() && it->second.source != nullptr;
}

Result<uint64_t> SimDfs::FileSize(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  return it->second.bytes;
}

Result<uint32_t> SimDfs::BlockCount(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  return it->second.blocks;
}

bool SimDfs::Exists(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.count(path) > 0;
}

Status SimDfs::DeleteFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  const FileEntry& entry = it->second;
  for (uint32_t b = 0; b < entry.placements.size(); ++b) {
    uint64_t sz = std::min<uint64_t>(
        entry.bytes - static_cast<uint64_t>(b) * config_.block_size,
        config_.block_size);
    for (uint32_t node : entry.placements[b]) node_used_[node] -= sz;
  }
  metrics_.files_deleted += 1;
  files_.erase(it);
  return Status::OK();
}

std::vector<std::string> SimDfs::ListFiles() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(files_.size());
  for (const auto& [path, _] : files_) out.push_back(path);
  return out;
}

uint64_t SimDfs::UsedBytesLocked() const {
  uint64_t used = 0;
  for (uint64_t u : node_used_) used += u;
  return used;
}

uint64_t SimDfs::UsedBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return UsedBytesLocked();
}

uint64_t SimDfs::FreeBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return config_.TotalCapacity() - UsedBytesLocked();
}

}  // namespace rdfmr
