// Simulated distributed file system.
//
// Files are ordered lists of record lines. Writing a file splits it into
// blocks, places `replication` replicas of each block on the least-loaded
// distinct nodes, and fails with kOutOfSpace when placement is impossible —
// reproducing the paper's failed executions ("marked with 'X'") when
// relational plans materialize more intermediate data than the cluster
// holds. All reads and writes are metered.

#ifndef RDFMR_DFS_SIM_DFS_H_
#define RDFMR_DFS_SIM_DFS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "dfs/cluster_config.h"

namespace rdfmr {

/// \brief Cumulative DFS metrics (monotonic; sampled before/after a job to
/// get per-job deltas).
struct DfsMetrics {
  uint64_t bytes_read = 0;             ///< logical bytes served to readers
  uint64_t bytes_written = 0;          ///< logical bytes accepted
  uint64_t bytes_written_replicated = 0;  ///< physical bytes incl. replicas
  uint64_t files_created = 0;
  uint64_t files_deleted = 0;
  uint64_t read_ops = 0;
  uint64_t write_ops = 0;
};

/// \brief One simulated HDFS namespace over a set of nodes.
///
/// Thread-safe: all file, placement, and metric state is guarded by an
/// internal mutex, so concurrent map/reduce tasks of the multi-threaded
/// job runner (and concurrent engines sharing one namespace) may call any
/// method. Metric accessors return snapshots by value.
class SimDfs {
 public:
  explicit SimDfs(ClusterConfig config);

  /// \brief Creates `path` with the given record lines. Fails with
  /// kAlreadyExists if present, kOutOfSpace if replicas do not fit.
  Status WriteFile(const std::string& path,
                   std::vector<std::string> lines);

  /// \brief Reads all record lines of `path` (metered).
  Result<std::vector<std::string>> ReadFile(const std::string& path) const;

  /// \brief Logical size in bytes of `path`.
  Result<uint64_t> FileSize(const std::string& path) const;

  /// \brief Number of blocks of `path` (== map tasks needed to scan it).
  Result<uint32_t> BlockCount(const std::string& path) const;

  bool Exists(const std::string& path) const;

  /// \brief Removes a file, reclaiming its replicas' space.
  Status DeleteFile(const std::string& path);

  /// \brief All file paths, sorted.
  std::vector<std::string> ListFiles() const;

  /// \brief Physical bytes currently stored across all nodes.
  uint64_t UsedBytes() const;

  /// \brief Physical bytes still available across all nodes.
  uint64_t FreeBytes() const;

  /// \brief Per-node physical usage (snapshot).
  std::vector<uint64_t> NodeUsage() const {
    std::lock_guard<std::mutex> lock(mu_);
    return node_used_;
  }

  /// \brief Cumulative metrics (snapshot).
  DfsMetrics metrics() const {
    std::lock_guard<std::mutex> lock(mu_);
    return metrics_;
  }

  /// \brief Immutable after construction; safe to read without locking.
  const ClusterConfig& config() const { return config_; }

  /// \brief Zeroes the cumulative metrics (files stay).
  void ResetMetrics() {
    std::lock_guard<std::mutex> lock(mu_);
    metrics_ = DfsMetrics{};
  }

  /// \brief Fault injection: the `countdown`-th subsequent WriteFile call
  /// (1 = the very next one) fails with kIoError before any placement, as
  /// a crashed datanode would. 0 disarms. Used to test that workflows and
  /// engines fail cleanly at arbitrary points.
  void InjectWriteFailureAfter(uint32_t countdown) {
    std::lock_guard<std::mutex> lock(mu_);
    write_failure_countdown_ = countdown;
  }

 private:
  struct FileEntry {
    std::vector<std::string> lines;
    uint64_t bytes = 0;
    uint32_t blocks = 0;
    // node ids holding each replica of each block, for space reclamation
    std::vector<std::vector<uint32_t>> placements;
  };

  /// Places one block of `size` bytes on `replication` distinct least-loaded
  /// nodes; returns the chosen node ids or kOutOfSpace. Requires mu_ held.
  Result<std::vector<uint32_t>> PlaceBlock(uint64_t size);

  uint64_t UsedBytesLocked() const;

  ClusterConfig config_;
  /// Guards files_, node_used_, metrics_, and write_failure_countdown_.
  mutable std::mutex mu_;
  std::map<std::string, FileEntry> files_;
  std::vector<uint64_t> node_used_;
  mutable DfsMetrics metrics_;
  uint32_t write_failure_countdown_ = 0;
};

}  // namespace rdfmr

#endif  // RDFMR_DFS_SIM_DFS_H_
