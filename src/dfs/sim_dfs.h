// Simulated distributed file system.
//
// Files are ordered lists of record lines. Writing a file splits it into
// blocks, places `replication` replicas of each block on the least-loaded
// distinct nodes, and fails with kOutOfSpace when placement is impossible —
// reproducing the paper's failed executions ("marked with 'X'") when
// relational plans materialize more intermediate data than the cluster
// holds. All reads and writes are metered.
//
// Fault injection: a seeded FaultPlan can make reads/writes fail
// transiently (kIoError, retryable), mark nodes disk-full, or lose nodes
// outright. Losing a node removes its replicas from service: a block whose
// replicas all lived on lost nodes reads as kUnavailable until the file is
// rewritten, while replication >= 2 keeps data readable through a single
// node loss. Placement skips dead and full nodes.

#ifndef RDFMR_DFS_SIM_DFS_H_
#define RDFMR_DFS_SIM_DFS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "dfs/cluster_config.h"
#include "dfs/fault_plan.h"
#include "dfs/line_source.h"

namespace rdfmr {

/// \brief Cumulative DFS metrics (monotonic; sampled before/after a job to
/// get per-job deltas).
struct DfsMetrics {
  uint64_t bytes_read = 0;             ///< logical bytes served to readers
  uint64_t bytes_written = 0;          ///< logical bytes accepted
  uint64_t bytes_written_replicated = 0;  ///< physical bytes incl. replicas
  uint64_t files_created = 0;
  uint64_t files_deleted = 0;
  uint64_t read_ops = 0;
  uint64_t write_ops = 0;
  uint64_t injected_read_failures = 0;   ///< transient faults served to reads
  uint64_t injected_write_failures = 0;  ///< transient faults served to writes
};

/// \brief One simulated HDFS namespace over a set of nodes.
///
/// Thread-safe: all file, placement, metric, and fault state is guarded by
/// an internal mutex, so concurrent map/reduce tasks of the multi-threaded
/// job runner (and concurrent engines sharing one namespace) may call any
/// method. Metric accessors return snapshots by value.
class SimDfs {
 public:
  explicit SimDfs(ClusterConfig config);

  /// \brief Creates `path` with the given record lines. Fails with
  /// kAlreadyExists if present, kOutOfSpace if replicas do not fit.
  Status WriteFile(const std::string& path,
                   std::vector<std::string> lines);

  /// \brief Creates `path` backed by a LineSource instead of stored
  /// lines: bytes, block layout, placement, and metering are exactly what
  /// WriteFile of the materialized lines would produce, but lines stay in
  /// the source and are decoded on demand (ReadFile materializes them;
  /// OpenScan iterates them lazily). Same failure modes as WriteFile.
  Status MountMapped(const std::string& path,
                     std::shared_ptr<const LineSource> source);

  /// \brief True iff `path` exists and is backed by a mounted LineSource.
  bool IsMapped(const std::string& path) const;

  /// \brief Reads all record lines of `path` (metered).
  Result<std::vector<std::string>> ReadFile(const std::string& path) const;

  /// \brief One metered open of `path` for a sequential scan. Exactly the
  /// fault-injection, availability, and metering behavior of ReadFile
  /// (bytes_read += file bytes, read_ops += 1), but the lines are served
  /// through the handle without materializing a mapped file.
  class ScanHandle {
   public:
    uint64_t line_count() const {
      return source_ ? source_->line_count() : lines_.size();
    }
    /// Logical file bytes (== FileSize of the path at open time).
    uint64_t total_bytes() const { return bytes_; }
    /// Serialized length of line `i` excluding the newline.
    uint64_t LineBytes(uint64_t i) const {
      return source_ ? source_->LineBytes(i) : lines_[i].size();
    }
    /// Line `i`; mapped files decode it on demand.
    std::string Line(uint64_t i) const {
      return source_ ? source_->Line(i) : lines_[i];
    }
    /// Line `i` without copying materialized lines: mapped files decode
    /// into `*scratch` and return it, materialized files return the
    /// stored line directly.
    const std::string& LineRef(uint64_t i, std::string* scratch) const {
      if (source_ == nullptr) return lines_[i];
      *scratch = source_->Line(i);
      return *scratch;
    }
    bool mapped() const { return source_ != nullptr; }
    /// For mapped files: ascending indices of lines matching any of
    /// `properties` (empty selects nothing). Null for materialized files
    /// (callers scan every line).
    std::vector<uint64_t> MatchingLines(
        const std::vector<std::string>& properties) const {
      return source_->MatchingLines(properties);
    }

   private:
    friend class SimDfs;
    std::shared_ptr<const LineSource> source_;  // mapped files
    std::vector<std::string> lines_;            // materialized files
    uint64_t bytes_ = 0;
  };
  Result<ScanHandle> OpenScan(const std::string& path) const;

  /// \brief Logical size in bytes of `path`.
  Result<uint64_t> FileSize(const std::string& path) const;

  /// \brief Number of blocks of `path` (== map tasks needed to scan it).
  Result<uint32_t> BlockCount(const std::string& path) const;

  bool Exists(const std::string& path) const;

  /// \brief Removes a file, reclaiming its replicas' space.
  Status DeleteFile(const std::string& path);

  /// \brief All file paths, sorted.
  std::vector<std::string> ListFiles() const;

  /// \brief Physical bytes currently stored across all nodes.
  uint64_t UsedBytes() const;

  /// \brief Physical bytes still available across all nodes.
  uint64_t FreeBytes() const;

  /// \brief Per-node physical usage (snapshot).
  std::vector<uint64_t> NodeUsage() const {
    std::lock_guard<std::mutex> lock(mu_);
    return node_used_;
  }

  /// \brief Cumulative metrics (snapshot).
  DfsMetrics metrics() const {
    std::lock_guard<std::mutex> lock(mu_);
    return metrics_;
  }

  /// \brief Immutable after construction; safe to read without locking.
  const ClusterConfig& config() const { return config_; }

  /// \brief Zeroes the cumulative metrics (files and fault state stay).
  void ResetMetrics() {
    std::lock_guard<std::mutex> lock(mu_);
    metrics_ = DfsMetrics{};
  }

  /// \brief Fault injection: the `countdown`-th subsequent WriteFile call
  /// (1 = the very next one) fails with kIoError before any placement, as
  /// a crashed datanode would. 0 disarms. Used to test that workflows and
  /// engines fail cleanly at arbitrary points.
  void InjectWriteFailureAfter(uint32_t countdown) {
    std::lock_guard<std::mutex> lock(mu_);
    write_failure_countdown_ = countdown;
  }

  /// \brief Installs a seeded fault plan and resets fault state: op
  /// ordinals restart at 1, the probabilistic stream is reseeded from
  /// `plan.seed`, and every node is revived / marked not-full. Fails with
  /// kInvalidArgument if the plan names a node >= num_nodes.
  Status SetFaultPlan(FaultPlan plan);

  /// \brief Removes any fault plan and revives all nodes. Blocks already
  /// unreadable stay lost only while their nodes are dead, so this also
  /// restores availability (the namespace never forgets file contents).
  void ClearFaultPlan();

  /// \brief True iff a non-empty fault plan is installed.
  bool HasFaultPlan() const {
    std::lock_guard<std::mutex> lock(mu_);
    return have_fault_plan_;
  }

  /// \brief Snapshot of the installed plan (empty plan if none).
  FaultPlan fault_plan() const {
    std::lock_guard<std::mutex> lock(mu_);
    return fault_plan_;
  }

  /// \brief Per-node liveness snapshot (false = lost).
  std::vector<bool> NodeAlive() const {
    std::lock_guard<std::mutex> lock(mu_);
    return node_alive_;
  }

  /// \brief Suspends fault injection (reentrant). While suspended, ops are
  /// not counted against the plan and no probabilistic draws happen — used
  /// by the engine's post-success observation reads so measurement does
  /// not perturb the deterministic fault sequence. Node loss still makes
  /// lost blocks unavailable: that is cluster state, not injection.
  void SuspendFaults() {
    std::lock_guard<std::mutex> lock(mu_);
    ++fault_suspend_depth_;
  }

  /// \brief Undoes one SuspendFaults.
  void ResumeFaults() {
    std::lock_guard<std::mutex> lock(mu_);
    if (fault_suspend_depth_ > 0) --fault_suspend_depth_;
  }

  /// \brief RAII SuspendFaults/ResumeFaults.
  class ScopedFaultSuspension {
   public:
    explicit ScopedFaultSuspension(SimDfs* dfs) : dfs_(dfs) {
      dfs_->SuspendFaults();
    }
    ~ScopedFaultSuspension() { dfs_->ResumeFaults(); }
    ScopedFaultSuspension(const ScopedFaultSuspension&) = delete;
    ScopedFaultSuspension& operator=(const ScopedFaultSuspension&) = delete;

   private:
    SimDfs* dfs_;
  };

 private:
  struct FileEntry {
    std::vector<std::string> lines;
    /// Non-null for mounted mapped files; `lines` stays empty for them.
    std::shared_ptr<const LineSource> source;
    uint64_t bytes = 0;
    uint32_t blocks = 0;
    // node ids holding each replica of each block, for space reclamation
    std::vector<std::vector<uint32_t>> placements;
  };

  /// Shared body of WriteFile and MountMapped: injection, existence and
  /// placement checks, write metering, entry insertion. Requires mu_ held
  /// via the caller's lock. `bytes` is the logical file size.
  Status CreateEntryLocked(const std::string& path, uint64_t bytes,
                           std::vector<std::string> lines,
                           std::shared_ptr<const LineSource> source);

  /// Shared fault/availability/metering preamble of ReadFile and
  /// OpenScan; returns the entry. Requires mu_ held.
  Result<const FileEntry*> OpenForReadLocked(const std::string& path) const;

  /// Places one block of `size` bytes on `replication` distinct least-loaded
  /// alive, not-full nodes; returns the chosen node ids or kOutOfSpace.
  /// Requires mu_ held.
  Result<std::vector<uint32_t>> PlaceBlock(uint64_t size);

  uint64_t UsedBytesLocked() const;

  /// True while a plan is installed and not suspended. Requires mu_ held.
  bool FaultsActiveLocked() const {
    return have_fault_plan_ && fault_suspend_depth_ == 0;
  }

  /// Applies node faults whose after_ops threshold has been reached.
  /// Requires mu_ held.
  void ApplyNodeFaultsLocked() const;

  /// Counts one read/write op against the plan and returns a non-OK status
  /// if this op is scheduled or drawn to fail. Requires mu_ held.
  Status MaybeInjectFaultLocked(bool is_read, const std::string& path) const;

  ClusterConfig config_;
  /// Guards everything below.
  mutable std::mutex mu_;
  std::map<std::string, FileEntry> files_;
  std::vector<uint64_t> node_used_;
  mutable DfsMetrics metrics_;
  uint32_t write_failure_countdown_ = 0;

  // Fault-plan state. Counters/rng are mutable: ReadFile is const but
  // consumes plan ordinals and probabilistic draws.
  bool have_fault_plan_ = false;
  FaultPlan fault_plan_;
  uint32_t fault_suspend_depth_ = 0;
  mutable Rng fault_rng_{1};
  mutable uint64_t fault_read_ops_ = 0;
  mutable uint64_t fault_write_ops_ = 0;
  mutable uint64_t fault_total_ops_ = 0;
  mutable size_t next_node_fault_ = 0;
  mutable std::vector<bool> node_alive_;
  mutable std::vector<bool> node_full_;
};

}  // namespace rdfmr

#endif  // RDFMR_DFS_SIM_DFS_H_
