#include "engine/advisor.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace rdfmr {

namespace {

// Rough serialized size of one term (identifier or literal).
constexpr double kAvgTermBytes = 12.0;
// Serialized size of one (s, p, o) column group in a flat tuple.
constexpr double kTripleBytes = 3 * kAvgTermBytes + 3;
// Serialized size of one nested (property, object) pair.
constexpr double kPairBytes = 2 * kAvgTermBytes + 2;

// Object-constraint selectivity for one pattern.
double ObjectSelectivity(const TriplePattern& tp, const GraphStats& stats) {
  if (tp.object.is_constant()) {
    // Equality on one value out of the property's objects; approximate by
    // the inverse subject count (at least one subject matches).
    PropertyStats ps = stats.ForProperty(tp.property);
    return ps.subject_count > 0 ? 1.0 / static_cast<double>(ps.subject_count)
                                : 0.0;
  }
  if (tp.object.partially_bound()) return kContainsFilterSelectivity;
  return 1.0;
}

struct StarEstimate {
  double qualifying_subjects = 0.0;  // subjects passing the group filter
  double combos_per_subject = 1.0;   // relational combinations per subject
  double nested_pairs = 0.0;         // pairs retained in the nested AnnTG
  double unbound_combos = 1.0;       // product over unbound candidates only
};

StarEstimate EstimateStar(const StarPattern& star, const GraphStats& stats) {
  StarEstimate est;
  // Candidate pool for unbound patterns: every pair of the subject.
  double avg_pairs = stats.AvgTriplesPerSubject();

  // Subjects qualifying: the rarest mandatory bound property dominates
  // (bound properties of one star co-occur on its entity class in all our
  // schemas; the min is the standard independence-free estimate).
  double subjects = static_cast<double>(stats.distinct_subjects());
  bool any_bound = false;
  for (const TriplePattern& tp : star.patterns) {
    if (tp.optional) continue;
    if (tp.property_bound) {
      any_bound = true;
      PropertyStats ps = stats.ForProperty(tp.property);
      double with_filter = static_cast<double>(ps.subject_count);
      if (tp.object.partially_bound()) {
        with_filter *= kContainsFilterSelectivity;
      } else if (tp.object.is_constant()) {
        // Class-membership style lookup: a uniform prior over the
        // property's value domain, approximated by a fixed fraction of its
        // carriers.
        with_filter *= 0.25;
      }
      subjects = std::min(subjects, with_filter);
    }
  }
  if (!any_bound) {
    // Only unbound mandatory patterns: any subject with a matching pair.
    subjects = static_cast<double>(stats.distinct_subjects());
  }
  est.qualifying_subjects = std::max(subjects, 0.0);

  // Per-subject combinations and the nested footprint.
  double nested_pairs = 0.0;
  for (const TriplePattern& tp : star.patterns) {
    double multiplicity = 1.0;
    if (tp.property_bound) {
      PropertyStats ps = stats.ForProperty(tp.property);
      multiplicity = std::max(1.0, ps.avg_multiplicity) *
                     ObjectSelectivity(tp, stats);
      nested_pairs += std::max(1.0, ps.avg_multiplicity);
    } else {
      multiplicity = avg_pairs * ObjectSelectivity(tp, stats);
      nested_pairs = std::max(nested_pairs + 0.0, avg_pairs);
      if (!tp.optional) {
        est.unbound_combos *= std::max(1.0, multiplicity);
      }
    }
    if (!tp.optional) {
      est.combos_per_subject *= std::max(1.0, multiplicity);
    }
  }
  est.nested_pairs = std::max(nested_pairs, 1.0);
  return est;
}

}  // namespace

StrategyAdvice AdviseStrategy(const GraphPatternQuery& query,
                              const GraphStats& stats,
                              const ClusterConfig& cluster) {
  StrategyAdvice advice;
  double relational = 0.0, eager = 0.0, lazy = 0.0;
  double flat_total = 0.0, nested_total = 0.0;

  for (const StarPattern& star : query.stars()) {
    StarEstimate est = EstimateStar(star, stats);
    double arity = static_cast<double>(star.Arity());
    double flat = est.qualifying_subjects * est.combos_per_subject *
                  arity * kTripleBytes;
    double nested = est.qualifying_subjects *
                    (kAvgTermBytes + est.nested_pairs * kPairBytes);
    // Eager keeps bound components nested but materializes one group per
    // unbound combination.
    double eager_star =
        est.qualifying_subjects * est.unbound_combos *
        (kAvgTermBytes + (est.nested_pairs / std::max(1.0, arity)) *
                             kPairBytes +
         kPairBytes);
    relational += flat;
    eager += star.HasUnbound() ? eager_star : nested;
    lazy += nested;
    flat_total += flat;
    nested_total += nested;
  }
  advice.relational_star_bytes = relational;
  advice.eager_star_bytes = eager;
  advice.lazy_star_bytes = lazy;
  advice.predicted_redundancy =
      flat_total > 0.0 ? std::max(0.0, 1.0 - nested_total / flat_total)
                       : 0.0;

  // Strategy choice: the rewrite rules already pick full-vs-partial per
  // join (rule R5); the advisor's job is eager-vs-lazy and φ_m.
  advice.strategy = NtgaStrategy::kLazyAuto;

  // φ_m (paper Section 4.1): input size over reducer capacity, scaled by
  // the redundancy to be eliminated.
  bool partial_join = false;
  auto plan = RewriteToNtga(query, NtgaStrategy::kLazyAuto);
  if (plan.ok()) {
    for (const JoinCyclePlan& join : plan->joins) {
      if (join.partial) partial_join = true;
    }
  }
  if (partial_join) {
    double input_tuples = static_cast<double>(stats.triple_count());
    double phi = input_tuples *
                 std::max(0.1, advice.predicted_redundancy) /
                 kTuplesPerReducer *
                 static_cast<double>(cluster.num_reducers);
    advice.phi_partitions = static_cast<uint32_t>(std::clamp(
        phi, 16.0, 65536.0));
  } else {
    advice.phi_partitions = 1;
  }

  advice.rationale = StringFormat(
      "predicted star-join output: relational %s, eager %s, lazy %s "
      "(redundancy %.2f); %s",
      HumanBytes(static_cast<uint64_t>(relational)).c_str(),
      HumanBytes(static_cast<uint64_t>(eager)).c_str(),
      HumanBytes(static_cast<uint64_t>(lazy)).c_str(),
      advice.predicted_redundancy,
      partial_join
          ? StringFormat("join on an unbound object -> TG_OptUnbJoin with "
                         "phi_m=%u",
                         advice.phi_partitions)
              .c_str()
          : "no unbound-object join -> plain lazy evaluation");
  return advice;
}

FootprintProjection ProjectFootprint(const StrategyAdvice& advice,
                                     const std::string& family,
                                     uint64_t used_bytes,
                                     const ClusterConfig& cluster) {
  double star = advice.lazy_star_bytes;
  if (family == "relational") {
    star = advice.relational_star_bytes;
  } else if (family == "eager") {
    star = advice.eager_star_bytes;
  }
  FootprintProjection projection;
  projection.star_bytes = static_cast<uint64_t>(std::max(0.0, star));
  // Intermediates are replicated like any other HDFS file and accumulate
  // until the workflow finishes (fault-tolerance materialization).
  double peak =
      static_cast<double>(used_bytes) +
      star * kPeakGrowthFactor * static_cast<double>(cluster.replication);
  projection.peak_bytes = static_cast<uint64_t>(std::max(0.0, peak));
  projection.capacity_bytes = cluster.TotalCapacity();
  projection.fits = projection.peak_bytes <= projection.capacity_bytes;
  return projection;
}

}  // namespace rdfmr
