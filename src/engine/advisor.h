// Statistics-based strategy advisor.
//
// Predicts, from graph statistics alone, the star-join-phase footprint of
// the relational, eager, and lazy interpretations of a query, the
// redundancy factor of the relational representation, and a φ_m partition
// factor for TG_OptUnbJoin — the paper's own guidance: "the partition
// factor used by φ depends on the size of input, potential redundancy
// factor, and average number of tuples that can be processed by a
// reducer". Predictions are coarse (selectivity of contains-filters is a
// fixed prior), but they order the strategies correctly, which is all a
// plan chooser needs.

#ifndef RDFMR_ENGINE_ADVISOR_H_
#define RDFMR_ENGINE_ADVISOR_H_

#include <string>

#include "dfs/cluster_config.h"
#include "ntga/logical_plan.h"
#include "query/pattern.h"
#include "rdf/graph_stats.h"

namespace rdfmr {

/// \brief Per-strategy footprint predictions and the recommendation.
struct StrategyAdvice {
  /// Predicted star-join phase output, bytes.
  double relational_star_bytes = 0.0;
  double eager_star_bytes = 0.0;
  double lazy_star_bytes = 0.0;
  /// Predicted redundancy factor of the relational star-join output.
  double predicted_redundancy = 0.0;
  /// Recommended unnesting strategy.
  NtgaStrategy strategy = NtgaStrategy::kLazyAuto;
  /// Recommended φ_m for TG_OptUnbJoin (1 when no partial join is planned).
  uint32_t phi_partitions = 1;
  /// Human-readable reasoning.
  std::string rationale;
};

/// \brief Selectivity prior for a contains-filter on an object (the
/// advisor has no value histograms; this matches the testbed's filters to
/// within a small factor).
inline constexpr double kContainsFilterSelectivity = 0.3;

/// \brief Tuples one reducer comfortably processes per cycle (the paper's
/// "average number of tuples that can be processed by a reducer" knob).
inline constexpr double kTuplesPerReducer = 4096.0;

/// \brief Produces footprint predictions and a strategy recommendation for
/// `query` over a graph described by `stats` on `cluster`.
StrategyAdvice AdviseStrategy(const GraphPatternQuery& query,
                              const GraphStats& stats,
                              const ClusterConfig& cluster);

/// \brief Projected peak DFS footprint of executing one strategy family.
struct FootprintProjection {
  uint64_t star_bytes = 0;      ///< predicted star-join output, logical
  uint64_t peak_bytes = 0;      ///< projected physical peak incl. base
  uint64_t capacity_bytes = 0;  ///< cluster total capacity
  bool fits = false;            ///< peak_bytes <= capacity_bytes
};

/// \brief Intermediate accumulation factor over the star-join output: the
/// star phase materializes its output AND the subsequent join cycle's
/// output of comparable size before any cleanup runs (fault-tolerance
/// materialization), so the projected peak charges the star bytes twice.
inline constexpr double kPeakGrowthFactor = 2.0;

/// \brief Selects which of `advice`'s per-strategy star predictions to
/// project: "relational" (Pig/Hive flat tuples), "eager", or anything
/// else = lazy. `used_bytes` is the DFS usage before the run (the base
/// relation and any neighbors).
FootprintProjection ProjectFootprint(const StrategyAdvice& advice,
                                     const std::string& family,
                                     uint64_t used_bytes,
                                     const ClusterConfig& cluster);

}  // namespace rdfmr

#endif  // RDFMR_ENGINE_ADVISOR_H_
