// The common output type of all plan compilers (relational and NTGA): an
// executable MapReduce workflow plus a decoder that expands the engine's
// final output file into canonical solution mappings for verification.
//
// The decoder exists because engines differ in their *final representation*
// (flat n-tuples vs. nested triplegroups — the paper's LazyUnnest keeps
// results "compact till the end"); answer comparison must not charge that
// expansion to the engine's I/O.

#ifndef RDFMR_ENGINE_COMPILED_PLAN_H_
#define RDFMR_ENGINE_COMPILED_PLAN_H_

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "mapreduce/workflow.h"
#include "query/solution.h"

namespace rdfmr {

/// \brief Expands an engine's final output lines into solutions.
using AnswerDecoder = std::function<Result<SolutionSet>(
    const std::vector<std::string>& lines)>;

/// \brief Expands ONE final-output record into the solutions it implicitly
/// represents (a flat tuple yields one; a nested joined triplegroup may
/// yield many). Used by post-processing cycles, e.g. aggregation.
using RecordDecoder = std::function<Result<std::vector<Solution>>(
    const std::string& record)>;

/// \brief A fully compiled, executable query plan.
struct CompiledPlan {
  WorkflowSpec workflow;
  AnswerDecoder decoder;
  RecordDecoder record_decoder;
  /// DFS paths holding the star-join phase outputs (inputs to later join
  /// cycles); used for the paper's "redundancy factor" and "HDFS writes
  /// after the star-join computation phase" metrics.
  std::vector<std::string> star_phase_paths;
};

}  // namespace rdfmr

#endif  // RDFMR_ENGINE_COMPILED_PLAN_H_
