#include "engine/engine.h"

#include <atomic>
#include <map>
#include <set>

#include "common/strings.h"
#include "engine/advisor.h"
#include "engine/plan_chooser.h"
#include "ntga/ntga_compiler.h"
#include "rdf/graph_stats.h"
#include "rdf/triple.h"

namespace rdfmr {

const char* EngineKindToString(EngineKind kind) {
  switch (kind) {
    case EngineKind::kPig:
      return "Pig";
    case EngineKind::kHive:
      return "Hive";
    case EngineKind::kNtgaEager:
      return "EagerUnnest";
    case EngineKind::kNtgaLazyFull:
      return "LazyUnnest-full";
    case EngineKind::kNtgaLazyPartial:
      return "LazyUnnest-partial";
    case EngineKind::kNtgaLazy:
      return "LazyUnnest";
    case EngineKind::kAuto:
      return "Auto";
  }
  return "?";
}

Result<EngineKind> EngineKindFromString(const std::string& name) {
  if (name == "pig") return EngineKind::kPig;
  if (name == "hive") return EngineKind::kHive;
  if (name == "eager") return EngineKind::kNtgaEager;
  if (name == "lazyfull") return EngineKind::kNtgaLazyFull;
  if (name == "lazypartial") return EngineKind::kNtgaLazyPartial;
  if (name == "lazy") return EngineKind::kNtgaLazy;
  if (name == "auto") return EngineKind::kAuto;
  return Status::InvalidArgument(
      "unknown engine: " + name +
      " (want pig|hive|eager|lazyfull|lazypartial|lazy|auto)");
}

RuntimeOptions EffectiveRuntime(const EngineOptions& options) {
  RuntimeOptions runtime = options.runtime;
  // The single place that still reads the deprecated aliases: folding
  // them into the RuntimeOptions fields for pre-RuntimeOptions callers.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  if (runtime.num_threads == 0) runtime.num_threads = options.num_threads;
  if (runtime.max_attempts == 0) runtime.max_attempts = options.max_attempts;
#pragma GCC diagnostic pop
  return runtime;
}

namespace {

Result<CompiledPlan> Compile(std::shared_ptr<const GraphPatternQuery> query,
                             const std::string& base_path,
                             const std::string& tmp_prefix,
                             const EngineOptions& options) {
  switch (options.kind) {
    case EngineKind::kPig:
    case EngineKind::kHive: {
      RelationalOptions rel;
      rel.style = options.kind == EngineKind::kPig ? RelationalStyle::kPig
                                                   : RelationalStyle::kHive;
      rel.grouping = options.grouping;
      return CompileRelationalPlan(query, base_path, tmp_prefix, rel);
    }
    case EngineKind::kNtgaEager:
    case EngineKind::kNtgaLazyFull:
    case EngineKind::kNtgaLazyPartial:
    case EngineKind::kNtgaLazy: {
      NtgaOptions ntga;
      ntga.phi_partitions = options.phi_partitions;
      switch (options.kind) {
        case EngineKind::kNtgaEager:
          ntga.strategy = NtgaStrategy::kEager;
          break;
        case EngineKind::kNtgaLazyFull:
          ntga.strategy = NtgaStrategy::kLazyFull;
          break;
        case EngineKind::kNtgaLazyPartial:
          ntga.strategy = NtgaStrategy::kLazyPartial;
          break;
        default:
          ntga.strategy = NtgaStrategy::kLazyAuto;
      }
      return CompileNtgaPlan(query, base_path, tmp_prefix, ntga);
    }
    case EngineKind::kAuto:
      return Status::InvalidArgument(
          "engine auto must be resolved by the plan chooser before "
          "compilation");
  }
  return Status::InvalidArgument("unknown engine kind");
}

uint64_t SafeFileSize(const SimDfs& dfs, const std::string& path) {
  Result<uint64_t> size = dfs.FileSize(path);
  return size.ok() ? *size : 0;
}

// Appends the COUNT/GROUP BY/HAVING cycle to a compiled plan. The mapper
// expands each final-output record in flight (nested triplegroups never
// materialize their combinations); in DISTINCT mode only the counted value
// is shipped (duplicate-proof), otherwise the full solution is shipped so
// the reducer can deduplicate rows before counting.
void AppendAggregationCycle(CompiledPlan* plan, const AggregateSpec& spec,
                            const std::string& tmp_prefix,
                            bool use_combiner) {
  RecordDecoder decode = plan->record_decoder;
  JobSpec job;
  job.name = "aggregate-count";
  MapInput aggregate_input;
  aggregate_input.path = plan->workflow.final_output_path;
  aggregate_input.map =
      [decode, spec](const std::string& record, const MapEmit& emit,
                     Counters* counters) {
        Result<std::vector<Solution>> solutions = decode(record);
        if (!solutions.ok()) {
          (*counters)["bad_records"] += 1;
          return;
        }
        for (const Solution& sol : *solutions) {
          Solution key;
          bool complete = true;
          for (const std::string& v : spec.group_vars) {
            const std::string* value = sol.Get(v);
            if (value == nullptr) {
              complete = false;
              break;
            }
            key.Bind(v, *value);
          }
          const std::string* counted = sol.Get(spec.counted_var);
          if (!complete || counted == nullptr) {
            (*counters)["incomplete_solutions"] += 1;
            continue;
          }
          emit(key.Serialize(),
               spec.distinct ? *counted : sol.Serialize());
        }
      };
  job.inputs.push_back(std::move(aggregate_input));
  job.reduce = [spec](const std::string& key,
                      const std::vector<std::string>& values,
                      const RecordEmit& emit, Counters* counters) {
    uint64_t count = 0;
    if (spec.distinct) {
      count = std::set<std::string>(values.begin(), values.end()).size();
    } else {
      // Deduplicate solution rows (set semantics), then count them.
      std::set<std::string> rows(values.begin(), values.end());
      count = rows.size();
    }
    if (count < spec.min_count) {
      (*counters)["groups_below_threshold"] += 1;
      return;
    }
    Result<Solution> group = Solution::Deserialize(key);
    if (!group.ok()) {
      (*counters)["bad_records"] += 1;
      return;
    }
    group->Bind(spec.count_var, std::to_string(count));
    emit(group->Serialize());
  };
  if (use_combiner) {
    // Both modes ultimately count distinct values per group (DISTINCT
    // counts distinct counted values; the row mode deduplicates full
    // solutions), so per-task deduplication is a correct combiner: it is
    // idempotent and any cross-task duplicates are re-deduplicated at the
    // reducer.
    job.combine = [](const std::string& /*key*/,
                     const std::vector<std::string>& values,
                     Counters* counters) {
      std::set<std::string> distinct(values.begin(), values.end());
      (*counters)["combine_output_records"] += distinct.size();
      return std::vector<std::string>(distinct.begin(), distinct.end());
    };
  }
  job.output_path = tmp_prefix + "/aggregate";

  plan->workflow.intermediate_paths.push_back(
      plan->workflow.final_output_path);
  plan->workflow.final_output_path = job.output_path;
  plan->workflow.jobs.push_back(std::move(job));
  plan->decoder = [](const std::vector<std::string>& lines) {
    return ParseSolutionFile(lines);
  };
}

// Shared execution core: run the workflow, sample metrics, decode answers,
// and scrub every temporary of this run from the DFS.
Result<Execution> ExecutePlan(SimDfs* dfs, CompiledPlan plan,
                              const std::string& tmp_prefix,
                              const std::string& query_name,
                              const EngineOptions& options,
                              RunContext ctx) {
  WorkflowSpec workflow = plan.workflow;
  size_t planned_cycles = workflow.jobs.size();
  workflow.intermediate_paths.clear();
  std::string final_path = workflow.final_output_path;
  workflow.final_output_path.clear();
  // Keep partial outputs around for stat sampling below; everything under
  // tmp_prefix is scrubbed at the end of this function anyway.
  workflow.cleanup_demuxed_on_failure = false;

  ScopedSpan query_span(ctx, "query");
  query_span.Attr("engine", EngineKindToString(options.kind));
  query_span.Attr("query", query_name);
  query_span.Attr("planned_cycles", static_cast<uint64_t>(planned_cycles));
  WorkflowRunOptions wf_options;
  wf_options.cost = options.cost;
  wf_options.runtime = EffectiveRuntime(options);
  wf_options.ctx = query_span.context();
  WorkflowResult result = RunWorkflow(dfs, workflow, wf_options);
  query_span.Attr("mr_cycles",
                  static_cast<uint64_t>(result.num_mr_cycles()));
  query_span.Attr("status", result.status.ok()
                                ? std::string("ok")
                                : result.status.ToString());
  query_span.Close();

  // Everything below is observation (stat sampling, answer decoding,
  // cleanup), not engine work: it must not consume the fault plan's op
  // ordinals or probabilistic draws, or the injected fault sequence — and
  // with it the retry accounting — would depend on how much we measure.
  SimDfs::ScopedFaultSuspension suspend_faults(dfs);

  Execution exec;
  ExecStats& stats = exec.stats;
  stats.engine = EngineKindToString(options.kind);
  stats.query = query_name;
  stats.status = result.status;
  stats.failed_job_index = result.failed_job_index;
  stats.mr_cycles = result.num_mr_cycles();
  stats.planned_cycles = planned_cycles;
  stats.full_scans = result.totals.full_scans_of_base;
  stats.hdfs_read_bytes = result.totals.input_bytes;
  stats.hdfs_write_bytes = result.totals.output_bytes;
  stats.hdfs_write_bytes_replicated = result.totals.output_bytes_replicated;
  stats.shuffle_bytes = result.totals.map_output_bytes;
  stats.peak_dfs_used_bytes = result.peak_dfs_used_bytes;
  stats.modeled_seconds = result.modeled_seconds;
  stats.map_seconds = result.totals.map_seconds;
  stats.shuffle_sort_seconds = result.totals.shuffle_sort_seconds;
  stats.reduce_seconds = result.totals.reduce_seconds;
  stats.task_attempts = result.totals.task_attempts;
  stats.tasks_retried = result.totals.tasks_retried;
  stats.wasted_bytes = result.totals.wasted_bytes;
  stats.retry_backoff_seconds = result.totals.retry_backoff_seconds;
  stats.counters = result.totals.counters;
  stats.jobs = result.job_metrics;

  for (const std::string& path : plan.star_phase_paths) {
    stats.star_phase_write_bytes += SafeFileSize(*dfs, path);
  }
  stats.final_output_bytes = SafeFileSize(*dfs, final_path);
  stats.intermediate_write_bytes =
      stats.hdfs_write_bytes - stats.final_output_bytes;

  // Redundancy factor over the star-join phase outputs.
  {
    std::vector<std::string> star_lines;
    for (const std::string& path : plan.star_phase_paths) {
      Result<std::vector<std::string>> lines = dfs->ReadFile(path);
      if (lines.ok()) {
        star_lines.insert(star_lines.end(), lines->begin(), lines->end());
      }
    }
    stats.redundancy_factor = ComputeRedundancyFactor(star_lines);
  }
  if (result.ok() && dfs->Exists(final_path)) {
    Result<std::vector<std::string>> lines = dfs->ReadFile(final_path);
    if (lines.ok()) {
      stats.final_redundancy_factor = ComputeRedundancyFactor(*lines);
    }
  }

  // Decode answers for verification (uncharged).
  if (result.ok() && options.decode_answers && dfs->Exists(final_path)) {
    RDFMR_ASSIGN_OR_RETURN(std::vector<std::string> lines,
                           dfs->ReadFile(final_path));
    RDFMR_ASSIGN_OR_RETURN(exec.answers, plan.decoder(lines));
  }

  // The reads above (stat sampling + decode) are observation, not engine
  // work; rebuilding the metric from job totals keeps accounting honest.
  dfs->ResetMetrics();

  // Remove every temporary of this run so the DFS is reusable.
  for (const std::string& path : dfs->ListFiles()) {
    if (StartsWith(path, tmp_prefix)) {
      RDFMR_RETURN_NOT_OK(dfs->DeleteFile(path));
    }
  }
  return exec;
}

std::string NextTmpPrefix() {
  static std::atomic<uint64_t> run_counter{0};
  return StringFormat("tmp/run%llu",
                      static_cast<unsigned long long>(run_counter++));
}

// ---- plan retargeting -----------------------------------------------------
//
// Every DFS path a compiled plan mentions lives in plain string fields
// (MapInput::path, JobSpec::output_path / ensure_outputs, the workflow's
// intermediate / final paths, star_phase_paths); the map/reduce closures
// capture query structure only. Rewriting those strings therefore fully
// retargets a plan to a new temporary namespace while sharing the
// (expensive to build) closures with the template.

std::string RetargetPath(const std::string& path,
                         const std::string& old_prefix,
                         const std::string& new_prefix) {
  if (!StartsWith(path, old_prefix)) return path;
  return new_prefix + path.substr(old_prefix.size());
}

void RetargetWorkflow(WorkflowSpec* workflow, const std::string& old_prefix,
                      const std::string& new_prefix) {
  for (JobSpec& job : workflow->jobs) {
    for (MapInput& input : job.inputs) {
      input.path = RetargetPath(input.path, old_prefix, new_prefix);
    }
    job.output_path = RetargetPath(job.output_path, old_prefix, new_prefix);
    for (std::string& path : job.ensure_outputs) {
      path = RetargetPath(path, old_prefix, new_prefix);
    }
  }
  for (std::string& path : workflow->intermediate_paths) {
    path = RetargetPath(path, old_prefix, new_prefix);
  }
  workflow->final_output_path =
      RetargetPath(workflow->final_output_path, old_prefix, new_prefix);
}

CompiledPlan RetargetPlan(const CompiledPlan& plan,
                          const std::string& new_prefix) {
  CompiledPlan out = plan;
  RetargetWorkflow(&out.workflow, kPlanTemplatePrefix, new_prefix);
  for (std::string& path : out.star_phase_paths) {
    path = RetargetPath(path, kPlanTemplatePrefix, new_prefix);
  }
  return out;
}

NtgaBatchPlan RetargetBatchPlan(const NtgaBatchPlan& plan,
                                const std::string& new_prefix) {
  NtgaBatchPlan out = plan;
  RetargetWorkflow(&out.workflow, kPlanTemplatePrefix, new_prefix);
  for (std::string& path : out.star_phase_paths) {
    path = RetargetPath(path, kPlanTemplatePrefix, new_prefix);
  }
  for (std::string& path : out.final_output_paths) {
    path = RetargetPath(path, kPlanTemplatePrefix, new_prefix);
  }
  return out;
}

Status CheckBasePath(const std::string& base_path) {
  if (StartsWith(base_path, kPlanTemplatePrefix)) {
    return Status::InvalidArgument(
        "base relation must not live under the plan-template namespace: " +
        base_path);
  }
  return Status::OK();
}

// ---- disk-pressure preflight ---------------------------------------------

/// Which of the advisor's per-strategy footprint predictions applies.
const char* FootprintFamily(EngineKind kind) {
  switch (kind) {
    case EngineKind::kPig:
    case EngineKind::kHive:
      return "relational";
    case EngineKind::kNtgaEager:
      return "eager";
    default:
      return "lazy";
  }
}

struct PreflightOutcome {
  EngineOptions options;      ///< possibly degraded engine options
  std::string degraded_from;  ///< original engine name when degraded
  std::string note;           ///< decision rationale for ExecStats
  Status refusal;             ///< non-OK => fail fast without running
};

// Computes the base relation's statistics by scanning it, with faults
// suspended — planning reads must not consume the fault plan's
// deterministic op sequence. The scan goes through the same handle the
// map phase uses: on a mounted (.rdx-mapped) base this decodes one record
// at a time into a scratch buffer instead of materializing the whole line
// vector.
Result<GraphStats> ComputeBaseStats(SimDfs* dfs,
                                    const std::string& base_path) {
  SimDfs::ScopedFaultSuspension suspend_faults(dfs);
  RDFMR_ASSIGN_OR_RETURN(SimDfs::ScanHandle scan, dfs->OpenScan(base_path));
  std::vector<Triple> triples;
  triples.reserve(scan.line_count());
  std::string scratch;
  for (uint64_t i = 0; i < scan.line_count(); ++i) {
    RDFMR_ASSIGN_OR_RETURN(Triple triple,
                           Triple::Deserialize(scan.LineRef(i, &scratch)));
    triples.push_back(std::move(triple));
  }
  return GraphStats::Compute(triples);
}

// Projects the query's intermediate footprint from graph statistics and
// decides: proceed, degrade Eager→Lazy, or refuse with ResourceExhausted.
Result<PreflightOutcome> DiskPressurePreflight(
    SimDfs* dfs, const std::string& base_path,
    const GraphPatternQuery& query, const EngineOptions& options) {
  PreflightOutcome out;
  out.options = options;
  RDFMR_ASSIGN_OR_RETURN(const GraphStats graph_stats,
                         ComputeBaseStats(dfs, base_path));
  SimDfs::ScopedFaultSuspension suspend_faults(dfs);
  const StrategyAdvice advice =
      AdviseStrategy(query, graph_stats, dfs->config());
  const uint64_t used = dfs->UsedBytes();
  FootprintProjection projection = ProjectFootprint(
      advice, FootprintFamily(options.kind), used, dfs->config());
  if (projection.fits) {
    out.note = StringFormat(
        "preflight: projected peak %s fits capacity %s",
        HumanBytes(projection.peak_bytes).c_str(),
        HumanBytes(projection.capacity_bytes).c_str());
    return out;
  }
  // Eager is the only strategy with a cheaper sibling that answers the
  // same query with the same engine family: partial/lazy β-unnest. The
  // relational engines have no such fallback (switching them to NTGA would
  // change the system under test), and an over-capacity lazy projection
  // has nowhere left to go.
  if (options.disk_pressure == DiskPressurePolicy::kDegrade &&
      options.kind == EngineKind::kNtgaEager) {
    FootprintProjection lazy =
        ProjectFootprint(advice, "lazy", used, dfs->config());
    if (lazy.fits) {
      out.degraded_from = EngineKindToString(options.kind);
      out.options.kind = EngineKind::kNtgaLazy;
      out.note = StringFormat(
          "preflight: eager projection %s exceeds capacity %s; degraded "
          "to LazyUnnest (projected peak %s)",
          HumanBytes(projection.peak_bytes).c_str(),
          HumanBytes(projection.capacity_bytes).c_str(),
          HumanBytes(lazy.peak_bytes).c_str());
      return out;
    }
  }
  out.note = StringFormat(
      "preflight: projected peak %s exceeds capacity %s; refusing to "
      "launch",
      HumanBytes(projection.peak_bytes).c_str(),
      HumanBytes(projection.capacity_bytes).c_str());
  out.refusal = Status::ResourceExhausted(
      StringFormat("%s: projected intermediate footprint %s exceeds "
                   "cluster capacity %s for engine %s",
                   query.name().c_str(),
                   HumanBytes(projection.peak_bytes).c_str(),
                   HumanBytes(projection.capacity_bytes).c_str(),
                   EngineKindToString(options.kind)));
  return out;
}

// Builds the measured failure recorded for a preflight refusal: the run
// never launched, so it burned zero MR cycles — unlike the paper's
// mid-workflow deaths, which waste hours before the 'X'.
ExecStats RefusedStats(const PreflightOutcome& outcome,
                       const EngineOptions& options,
                       const std::string& query_name,
                       size_t planned_cycles) {
  ExecStats stats;
  stats.engine = EngineKindToString(options.kind);
  stats.query = query_name;
  stats.status = outcome.refusal;
  stats.failed_job_index = 0;
  stats.planned_cycles = planned_cycles;
  stats.preflight = outcome.note;
  return stats;
}

}  // namespace

double ComputeRedundancyFactor(const std::vector<std::string>& lines) {
  // The redundancy of a flat relational representation is measured against
  // the nested triplegroup footprint of the same content: per subject, the
  // subject once plus each distinct (Property, Object) pair once.
  // Relational outputs repeat the subject per column group and the whole
  // bound component per combination — that repetition is the redundancy.
  uint64_t flat_bytes = 0;
  uint64_t concise_bytes = 0;
  std::map<std::string, std::set<std::string>> per_subject;
  for (const std::string& line : lines) {
    flat_bytes += line.size() + 1;
    std::vector<std::string> fields = SplitEscaped(line, '\t');
    if (fields.size() < 3 || fields.size() % 3 != 0) {
      concise_bytes += line.size() + 1;  // not a flat tuple; keep as-is
      continue;
    }
    for (size_t i = 0; i < fields.size(); i += 3) {
      per_subject[fields[i]].insert(fields[i + 1] + "\t" + fields[i + 2]);
    }
  }
  for (const auto& [subject, pairs] : per_subject) {
    concise_bytes += subject.size() + 1;
    for (const std::string& po : pairs) concise_bytes += po.size() + 1;
  }
  if (flat_bytes == 0 || concise_bytes >= flat_bytes) return 0.0;
  return 1.0 - static_cast<double>(concise_bytes) /
                   static_cast<double>(flat_bytes);
}

Result<CompiledPlan> CompileQueryPlanTemplate(
    std::shared_ptr<const GraphPatternQuery> query,
    const std::string& base_path,
    const std::optional<AggregateSpec>& aggregate,
    const EngineOptions& options) {
  if (query == nullptr) {
    return Status::InvalidArgument("CompileQueryPlanTemplate needs a query");
  }
  RDFMR_RETURN_NOT_OK(CheckBasePath(base_path));
  if (aggregate.has_value()) {
    RDFMR_RETURN_NOT_OK(aggregate->Validate(*query));
  }
  RDFMR_ASSIGN_OR_RETURN(
      CompiledPlan plan,
      Compile(query, base_path, kPlanTemplatePrefix, options));
  if (aggregate.has_value()) {
    AppendAggregationCycle(&plan, *aggregate, kPlanTemplatePrefix,
                           options.aggregation_combiner);
  }
  return plan;
}

Result<Execution> RunCompiledQuery(SimDfs* dfs, const CompiledPlan& plan,
                                   const std::string& query_name,
                                   const EngineOptions& options,
                                   RunContext ctx) {
  if (dfs == nullptr) {
    return Status::InvalidArgument("RunCompiledQuery needs a dfs");
  }
  const std::string tmp_prefix = NextTmpPrefix();
  return ExecutePlan(dfs, RetargetPlan(plan, tmp_prefix), tmp_prefix,
                     query_name, options, ctx);
}

Result<NtgaBatchPlan> CompileBatchPlanTemplate(
    const std::vector<std::shared_ptr<const GraphPatternQuery>>& queries,
    const std::string& base_path, const EngineOptions& options) {
  RDFMR_RETURN_NOT_OK(CheckBasePath(base_path));
  NtgaOptions ntga;
  ntga.phi_partitions = options.phi_partitions;
  switch (options.kind) {
    case EngineKind::kNtgaEager:
      ntga.strategy = NtgaStrategy::kEager;
      break;
    case EngineKind::kNtgaLazyFull:
      ntga.strategy = NtgaStrategy::kLazyFull;
      break;
    case EngineKind::kNtgaLazyPartial:
      ntga.strategy = NtgaStrategy::kLazyPartial;
      break;
    case EngineKind::kNtgaLazy:
      ntga.strategy = NtgaStrategy::kLazyAuto;
      break;
    default:
      return Status::InvalidArgument(
          "RunQueryBatch shares the NTGA grouping cycle; relational "
          "engines have nothing to share — run them per query");
  }
  return CompileSharedNtgaPlan(queries, base_path, kPlanTemplatePrefix,
                               ntga);
}

Result<BatchExecution> RunCompiledBatch(SimDfs* dfs,
                                        const NtgaBatchPlan& plan_template,
                                        const EngineOptions& options,
                                        RunContext ctx) {
  if (dfs == nullptr) {
    return Status::InvalidArgument("RunCompiledBatch needs a dfs");
  }
  const std::string tmp_prefix = NextTmpPrefix();
  NtgaBatchPlan plan = RetargetBatchPlan(plan_template, tmp_prefix);
  const size_t num_queries = plan.final_output_paths.size();

  WorkflowSpec workflow = plan.workflow;
  size_t planned_cycles = workflow.jobs.size();
  workflow.intermediate_paths.clear();
  workflow.final_output_path.clear();
  workflow.cleanup_demuxed_on_failure = false;  // tmp_prefix scrub below
  ScopedSpan query_span(ctx, "query");
  query_span.Attr("engine", EngineKindToString(options.kind));
  query_span.Attr("query", StringFormat("batch-of-%zu", num_queries));
  query_span.Attr("planned_cycles", static_cast<uint64_t>(planned_cycles));
  WorkflowRunOptions wf_options;
  wf_options.cost = options.cost;
  wf_options.runtime = EffectiveRuntime(options);
  wf_options.ctx = query_span.context();
  WorkflowResult result = RunWorkflow(dfs, workflow, wf_options);
  query_span.Attr("mr_cycles",
                  static_cast<uint64_t>(result.num_mr_cycles()));
  query_span.Attr("status", result.status.ok()
                                ? std::string("ok")
                                : result.status.ToString());
  query_span.Close();

  // Observation below must not consume fault-plan draws (see ExecutePlan).
  SimDfs::ScopedFaultSuspension suspend_faults(dfs);

  BatchExecution exec;
  ExecStats& stats = exec.stats;
  stats.engine = EngineKindToString(options.kind);
  stats.query = StringFormat("batch-of-%zu", num_queries);
  stats.status = result.status;
  stats.failed_job_index = result.failed_job_index;
  stats.mr_cycles = result.num_mr_cycles();
  stats.planned_cycles = planned_cycles;
  stats.full_scans = result.totals.full_scans_of_base;
  stats.hdfs_read_bytes = result.totals.input_bytes;
  stats.hdfs_write_bytes = result.totals.output_bytes;
  stats.hdfs_write_bytes_replicated = result.totals.output_bytes_replicated;
  stats.shuffle_bytes = result.totals.map_output_bytes;
  stats.peak_dfs_used_bytes = result.peak_dfs_used_bytes;
  stats.modeled_seconds = result.modeled_seconds;
  stats.map_seconds = result.totals.map_seconds;
  stats.shuffle_sort_seconds = result.totals.shuffle_sort_seconds;
  stats.reduce_seconds = result.totals.reduce_seconds;
  stats.task_attempts = result.totals.task_attempts;
  stats.tasks_retried = result.totals.tasks_retried;
  stats.wasted_bytes = result.totals.wasted_bytes;
  stats.retry_backoff_seconds = result.totals.retry_backoff_seconds;
  stats.counters = result.totals.counters;
  stats.jobs = result.job_metrics;
  for (const std::string& path : plan.star_phase_paths) {
    stats.star_phase_write_bytes += SafeFileSize(*dfs, path);
  }
  for (const std::string& path : plan.final_output_paths) {
    stats.final_output_bytes += SafeFileSize(*dfs, path);
  }
  stats.intermediate_write_bytes =
      stats.hdfs_write_bytes - stats.final_output_bytes;

  if (result.ok() && options.decode_answers) {
    for (size_t q = 0; q < num_queries; ++q) {
      if (!dfs->Exists(plan.final_output_paths[q])) {
        exec.answers.emplace_back();
        continue;
      }
      RDFMR_ASSIGN_OR_RETURN(std::vector<std::string> lines,
                             dfs->ReadFile(plan.final_output_paths[q]));
      RDFMR_ASSIGN_OR_RETURN(SolutionSet answers, plan.decoders[q](lines));
      exec.answers.push_back(std::move(answers));
    }
  }
  dfs->ResetMetrics();
  for (const std::string& path : dfs->ListFiles()) {
    if (StartsWith(path, tmp_prefix)) {
      RDFMR_RETURN_NOT_OK(dfs->DeleteFile(path));
    }
  }
  return exec;
}

namespace {

// The single-query flow shared by the kSingle payload and the RunQuery /
// RunAggregateQuery wrappers: preflight, compile, execute.
Result<Execution> RunSingle(SimDfs* dfs, const std::string& base_path,
                            std::shared_ptr<const GraphPatternQuery> query,
                            const std::optional<AggregateSpec>& aggregate,
                            const EngineOptions& options, RunContext ctx) {
  const std::string query_name =
      aggregate.has_value() ? query->name() + "+count" : query->name();
  EngineOptions effective = options;
  PreflightOutcome preflight;
  if (options.disk_pressure != DiskPressurePolicy::kNone) {
    RDFMR_ASSIGN_OR_RETURN(
        preflight, DiskPressurePreflight(dfs, base_path, *query, options));
    effective = preflight.options;
  }
  RDFMR_ASSIGN_OR_RETURN(
      CompiledPlan plan,
      CompileQueryPlanTemplate(query, base_path, aggregate, effective));
  if (!preflight.refusal.ok()) {
    Execution exec;
    exec.stats = RefusedStats(preflight, options, query_name,
                              plan.workflow.jobs.size());
    return exec;
  }
  RDFMR_ASSIGN_OR_RETURN(
      Execution exec,
      RunCompiledQuery(dfs, plan, query_name, effective, ctx));
  exec.stats.degraded_from = preflight.degraded_from;
  exec.stats.preflight = preflight.note;
  return exec;
}

Status CheckExecRequest(const ExecRequest& request) {
  if (request.payload == ExecPayload::kSingle) {
    if (request.query == nullptr) {
      return Status::InvalidArgument(
          "Exec needs a query for the single payload");
    }
    return Status::OK();
  }
  if (request.aggregate.has_value()) {
    return Status::InvalidArgument(
        "Exec: aggregate applies to the single payload only");
  }
  if (request.queries.empty()) {
    return Status::InvalidArgument(
        "Exec needs at least one query for a batch/union payload");
  }
  return Status::OK();
}

}  // namespace

Result<ExecResult> Exec(SimDfs* dfs, const std::string& base_path,
                        const ExecRequest& request,
                        const EngineOptions& options, RunContext ctx) {
  if (dfs == nullptr) {
    return Status::InvalidArgument("Exec needs a dfs");
  }
  RDFMR_RETURN_NOT_OK(CheckExecRequest(request));
  if (!dfs->Exists(base_path)) {
    return Status::NotFound("base triple relation missing: " + base_path);
  }

  // kAuto: resolve to a concrete engine before compilation. Everything
  // downstream (including ExecStats.engine) sees the chosen kind, so an
  // auto run is byte-identical to running the chosen engine explicitly.
  EngineOptions effective = options;
  PlanChoice choice;
  bool chose = false;
  if (options.kind == EngineKind::kAuto) {
    std::shared_ptr<const GraphStats> stats = request.stats;
    if (stats == nullptr) {
      RDFMR_ASSIGN_OR_RETURN(GraphStats computed,
                             ComputeBaseStats(dfs, base_path));
      stats = std::make_shared<const GraphStats>(std::move(computed));
    }
    // Sizing reads are planning, not engine work — keep them off the
    // fault plan's deterministic op sequence.
    SimDfs::ScopedFaultSuspension suspend_faults(dfs);
    Result<uint64_t> base_size = dfs->FileSize(base_path);
    RDFMR_ASSIGN_OR_RETURN(
        choice, ChoosePlan(request, *stats, base_size.ok() ? *base_size : 0,
                           dfs->UsedBytes(), dfs->config(), options));
    effective.kind = choice.kind;
    chose = true;
  }

  ExecResult result;
  switch (request.payload) {
    case ExecPayload::kSingle: {
      RDFMR_ASSIGN_OR_RETURN(
          Execution exec, RunSingle(dfs, base_path, request.query,
                                    request.aggregate, effective, ctx));
      result.stats = std::move(exec.stats);
      result.answers = std::move(exec.answers);
      break;
    }
    case ExecPayload::kBatch: {
      RDFMR_ASSIGN_OR_RETURN(
          NtgaBatchPlan plan,
          CompileBatchPlanTemplate(request.queries, base_path, effective));
      RDFMR_ASSIGN_OR_RETURN(BatchExecution batch,
                             RunCompiledBatch(dfs, plan, effective, ctx));
      result.stats = std::move(batch.stats);
      result.per_query = std::move(batch.answers);
      break;
    }
    case ExecPayload::kUnion: {
      RDFMR_ASSIGN_OR_RETURN(
          NtgaBatchPlan plan,
          CompileBatchPlanTemplate(request.queries, base_path, effective));
      RDFMR_ASSIGN_OR_RETURN(BatchExecution batch,
                             RunCompiledBatch(dfs, plan, effective, ctx));
      result.stats = std::move(batch.stats);
      result.stats.query =
          StringFormat("union-of-%zu", request.queries.size());
      for (SolutionSet& answers : batch.answers) {
        result.answers.insert(answers.begin(), answers.end());
      }
      break;
    }
  }
  if (chose) {
    result.stats.chosen_engine = EngineKindToString(choice.kind);
    result.stats.plan_candidates = std::move(choice.candidates);
    result.stats.plan_rationale = std::move(choice.rationale);
  }
  return result;
}

// ---- legacy entry points (thin wrappers over Exec) ------------------------

Result<Execution> RunQuery(SimDfs* dfs, const std::string& base_path,
                           std::shared_ptr<const GraphPatternQuery> query,
                           const EngineOptions& options, RunContext ctx) {
  if (dfs == nullptr || query == nullptr) {
    return Status::InvalidArgument("RunQuery needs a dfs and a query");
  }
  ExecRequest request;
  request.payload = ExecPayload::kSingle;
  request.query = std::move(query);
  RDFMR_ASSIGN_OR_RETURN(ExecResult result,
                         Exec(dfs, base_path, request, options, ctx));
  Execution exec;
  exec.stats = std::move(result.stats);
  exec.answers = std::move(result.answers);
  return exec;
}

Result<Execution> RunAggregateQuery(
    SimDfs* dfs, const std::string& base_path,
    std::shared_ptr<const GraphPatternQuery> query,
    const AggregateSpec& spec, const EngineOptions& options,
    RunContext ctx) {
  if (dfs == nullptr || query == nullptr) {
    return Status::InvalidArgument(
        "RunAggregateQuery needs a dfs and a query");
  }
  ExecRequest request;
  request.payload = ExecPayload::kSingle;
  request.query = std::move(query);
  request.aggregate = spec;
  RDFMR_ASSIGN_OR_RETURN(ExecResult result,
                         Exec(dfs, base_path, request, options, ctx));
  Execution exec;
  exec.stats = std::move(result.stats);
  exec.answers = std::move(result.answers);
  return exec;
}

Result<BatchExecution> RunQueryBatch(
    SimDfs* dfs, const std::string& base_path,
    const std::vector<std::shared_ptr<const GraphPatternQuery>>& queries,
    const EngineOptions& options, RunContext ctx) {
  if (dfs == nullptr) {
    return Status::InvalidArgument("RunQueryBatch needs a dfs");
  }
  ExecRequest request;
  request.payload = ExecPayload::kBatch;
  request.queries = queries;
  RDFMR_ASSIGN_OR_RETURN(ExecResult result,
                         Exec(dfs, base_path, request, options, ctx));
  BatchExecution exec;
  exec.stats = std::move(result.stats);
  exec.answers = std::move(result.per_query);
  return exec;
}

Result<Execution> RunUnionQuery(
    SimDfs* dfs, const std::string& base_path,
    const std::vector<std::shared_ptr<const GraphPatternQuery>>& branches,
    const EngineOptions& options, RunContext ctx) {
  if (dfs == nullptr) {
    return Status::InvalidArgument("RunUnionQuery needs a dfs");
  }
  ExecRequest request;
  request.payload = ExecPayload::kUnion;
  request.queries = branches;
  RDFMR_ASSIGN_OR_RETURN(ExecResult result,
                         Exec(dfs, base_path, request, options, ctx));
  Execution exec;
  exec.stats = std::move(result.stats);
  exec.answers = std::move(result.answers);
  return exec;
}

}  // namespace rdfmr
