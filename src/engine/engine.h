// Unified query execution façade: compiles a query for a chosen engine
// (Pig-style, Hive-style, or NTGA with an unnesting strategy), runs the MR
// workflow on a simulated cluster, and collects every metric the paper's
// evaluation reports.

#ifndef RDFMR_ENGINE_ENGINE_H_
#define RDFMR_ENGINE_ENGINE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "dfs/sim_dfs.h"
#include "engine/compiled_plan.h"
#include "mapreduce/workflow.h"
#include "ntga/logical_plan.h"
#include "ntga/ntga_compiler.h"
#include "query/aggregate.h"
#include "query/pattern.h"
#include "query/solution.h"
#include "rdf/graph_stats.h"
#include "relational/rel_compiler.h"

namespace rdfmr {

/// \brief The systems compared in the paper's evaluation, plus kAuto:
/// cost-based selection among them by the plan chooser.
enum class EngineKind {
  kPig,              ///< relational, per-operand scans, flat n-tuples
  kHive,             ///< relational, shared scan per cycle, flat n-tuples
  kNtgaEager,        ///< NTGA, β-unnest at the star-join (grouping) cycle
  kNtgaLazyFull,     ///< NTGA, full β-unnest at the join's map phase
  kNtgaLazyPartial,  ///< NTGA, partial β-unnest (φ_m) at the join's map phase
  kNtgaLazy,         ///< NTGA, the paper's LazyUnnest policy (auto choice)
  kAuto,             ///< pick the modeled-cheapest of the above per query
};

const char* EngineKindToString(EngineKind kind);

/// \brief Parses the CLI / wire-protocol engine names
/// (pig|hive|eager|lazyfull|lazypartial|lazy|auto).
Result<EngineKind> EngineKindFromString(const std::string& name);

/// \brief What the engine does when the advisor projects that a query's
/// intermediate footprint will not fit the cluster.
enum class DiskPressurePolicy {
  /// No preflight: run and let the workflow die mid-flight with
  /// kOutOfSpace, exactly the paper's Fig 9(a) failed executions.
  kNone,
  /// Pre-emptively switch an Eager plan to Lazy (partial β-unnest) when
  /// the lazy projection fits; otherwise fail fast like kFailFast.
  kDegrade,
  /// Refuse to launch: return a measured kResourceExhausted failure
  /// without burning any MR cycle.
  kFailFast,
};

struct EngineOptions {
  // The deprecated alias members below would otherwise make every
  // synthesized special member warn at each construction/copy site; the
  // aliases should only warn where they are *named*.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  EngineOptions() = default;
  EngineOptions(const EngineOptions&) = default;
  EngineOptions(EngineOptions&&) = default;
  EngineOptions& operator=(const EngineOptions&) = default;
  EngineOptions& operator=(EngineOptions&&) = default;
  ~EngineOptions() = default;
#pragma GCC diagnostic pop

  EngineKind kind = EngineKind::kNtgaLazy;
  /// φ_m partition count for TG_OptUnbJoin.
  uint32_t phi_partitions = 1024;
  /// Relational grouping variant (Fig. 3 case study).
  RelationalGrouping grouping = RelationalGrouping::kStarPerCycle;
  /// Decode the final output into a solution set (verification; the
  /// decode cost is NOT charged to the engine's metrics).
  bool decode_answers = true;
  /// Use a map-side combiner (value deduplication) in the aggregation
  /// cycle of RunAggregateQuery; off exposes the raw shuffle volume for
  /// ablation.
  bool aggregation_combiner = true;
  /// Host-side runtime knobs (thread count, retry budget), resolved via
  /// the RuntimeOptions precedence rule: CLI flag > RDFMR_THREADS /
  /// RDFMR_MAX_ATTEMPTS env > this struct > ClusterConfig default.
  /// Outputs and all byte/record metrics are byte-identical for any
  /// thread count — only real wall time changes; max_attempts affects
  /// retry accounting only (recovered runs stay byte-identical to
  /// fault-free runs everywhere else).
  RuntimeOptions runtime;
  /// Deprecated alias for runtime.num_threads (used only when the
  /// runtime field is unset); kept so pre-RuntimeOptions callers compile.
  [[deprecated("set options.runtime.num_threads instead")]]
  uint32_t num_threads = 0;
  /// Deprecated alias for runtime.max_attempts (used only when the
  /// runtime field is unset).
  [[deprecated("set options.runtime.max_attempts instead")]]
  uint32_t max_attempts = 0;
  /// Disk-pressure preflight policy (see DiskPressurePolicy). Applies to
  /// RunQuery/RunAggregateQuery, where the advisor's projection is
  /// available before any job launches.
  DiskPressurePolicy disk_pressure = DiskPressurePolicy::kNone;
  /// Cost model for the modeled execution time.
  CostModelConfig cost;
};

/// \brief Folds the deprecated EngineOptions aliases into the runtime
/// field: a nonzero legacy `num_threads` / `max_attempts` fills the
/// corresponding unset RuntimeOptions field. Shared by the engine, the
/// service's cache fingerprinting, and the CLI.
RuntimeOptions EffectiveRuntime(const EngineOptions& options);

/// \brief One scored row of the kAuto plan chooser's candidate table.
struct PlanCandidate {
  EngineKind kind = EngineKind::kNtgaLazy;
  /// Projected execution time under the calibrated cost model, summed
  /// over the candidate's planned MR cycles.
  double modeled_seconds = 0.0;
  size_t planned_cycles = 0;
  /// Advisor prediction of the candidate's star-join phase output.
  uint64_t star_bytes = 0;
  /// Projected physical peak DFS footprint (incl. existing usage).
  uint64_t peak_bytes = 0;
  bool fits = true;      ///< peak within cluster capacity
  bool feasible = true;  ///< the engine can run this payload at all
  bool chosen = false;
  std::string note;  ///< infeasibility / rejection reason, if any
};

/// \brief Everything the paper's figures report about one execution.
struct ExecStats {
  std::string engine;
  std::string query;
  Status status;              ///< non-OK == the figures' failed runs ('X')
  int failed_job_index = -1;

  size_t mr_cycles = 0;       ///< jobs completed (planned cycles if failed)
  size_t planned_cycles = 0;  ///< length of the compiled workflow
  uint32_t full_scans = 0;    ///< scans of the base triple relation
  uint64_t hdfs_read_bytes = 0;
  uint64_t hdfs_write_bytes = 0;             ///< logical
  uint64_t hdfs_write_bytes_replicated = 0;  ///< physical incl. replicas
  uint64_t shuffle_bytes = 0;                ///< map output volume
  uint64_t star_phase_write_bytes = 0;  ///< output of the star-join phase
  uint64_t intermediate_write_bytes = 0;  ///< all writes minus final output
  uint64_t final_output_bytes = 0;
  uint64_t peak_dfs_used_bytes = 0;
  /// Redundancy factor of the star-join phase output: fraction of its
  /// bytes in excess of the nested triplegroup footprint of the same
  /// content. Meaningful for flat relational intermediates, ~0 for nested
  /// representations.
  double redundancy_factor = 0.0;
  /// Same measure over the final output (the paper's C4 numbers report
  /// both: 0.93 at the star-join phase growing to 0.98 in the final
  /// Pig/Hive output).
  double final_redundancy_factor = 0.0;
  double modeled_seconds = 0.0;
  /// Real (host) wall-clock seconds the simulator spent per MR phase,
  /// summed over jobs — perf attribution for the runtime itself, NOT a
  /// simulated quantity (and the one part of ExecStats that is not
  /// deterministic across runs or thread counts).
  double map_seconds = 0.0;
  double shuffle_sort_seconds = 0.0;
  double reduce_seconds = 0.0;
  /// Fault-tolerance accounting over all jobs (see JobMetrics): zero on a
  /// fault-free run, deterministic given a FaultPlan, and excluded from
  /// the byte-identical-stats contract so a recovered run still matches
  /// the fault-free stats everywhere else.
  uint64_t task_attempts = 0;
  uint64_t tasks_retried = 0;
  uint64_t wasted_bytes = 0;
  double retry_backoff_seconds = 0.0;
  /// Engine the run was degraded away from by the disk-pressure preflight
  /// ("EagerUnnest" after an Eager→Lazy switch); empty when no
  /// degradation happened.
  std::string degraded_from;
  /// Human-readable outcome of the disk-pressure preflight; empty when
  /// the policy is kNone.
  std::string preflight;
  /// Engine the plan chooser selected when the request asked for
  /// EngineKind::kAuto (same value as `engine`); empty on explicit-engine
  /// runs. Like degraded_from/preflight, the chooser fields are outside
  /// the byte-identical-stats contract: an auto run matches its concrete
  /// engine everywhere else.
  std::string chosen_engine;
  /// The chooser's full scored candidate table (kAuto runs only).
  std::vector<PlanCandidate> plan_candidates;
  /// One-line decision rationale (kAuto runs only).
  std::string plan_rationale;
  Counters counters;
  std::vector<JobMetrics> jobs;

  bool ok() const { return status.ok(); }
};

/// \brief An execution's stats plus (when decoded) its answers.
struct Execution {
  ExecStats stats;
  SolutionSet answers;
};

// ---- Unified execution entry point ----------------------------------------
//
// One request struct covers everything the four historical entry points
// (RunQuery / RunAggregateQuery / RunQueryBatch / RunUnionQuery) did; they
// remain as thin wrappers over Exec below, so the unified and the legacy
// paths are byte-identical by construction.

/// \brief Payload shape of an ExecRequest.
enum class ExecPayload {
  kSingle,  ///< one query (optionally with an aggregation cycle)
  kBatch,   ///< several queries sharing one NTGA grouping cycle
  kUnion,   ///< a batch whose per-query answers are unioned
};

/// \brief A complete execution request: what to run, in which shape.
struct ExecRequest {
  ExecPayload payload = ExecPayload::kSingle;
  /// The query (kSingle). Ignored for batch/union payloads.
  std::shared_ptr<const GraphPatternQuery> query;
  /// Optional COUNT/GROUP BY/HAVING cycle (kSingle only).
  std::optional<AggregateSpec> aggregate;
  /// The member queries (kBatch / kUnion). Ignored for kSingle.
  std::vector<std::shared_ptr<const GraphPatternQuery>> queries;
  /// Optional precomputed statistics catalog for the base relation. Used
  /// only by EngineKind::kAuto: when set, the plan chooser scores
  /// candidates against it without touching the DFS; when null, Exec
  /// computes statistics by scanning the base (with faults suspended,
  /// like the disk-pressure preflight).
  std::shared_ptr<const GraphStats> stats;
};

/// \brief Exec's result: one set of workflow stats, the merged answers,
/// and (for batch payloads) the per-query answer sets.
struct ExecResult {
  ExecStats stats;
  /// kSingle: the query's answers. kUnion: the union over branches.
  /// kBatch: empty (use per_query).
  SolutionSet answers;
  /// kBatch: aligned with request.queries. Empty otherwise.
  std::vector<SolutionSet> per_query;
};

/// \brief Runs `request` against the triple relation at `base_path` on
/// `dfs` using the engine selected in `options` — or, with
/// EngineKind::kAuto, the modeled-cheapest candidate the plan chooser
/// picks; the decision is recorded in stats.chosen_engine /
/// plan_candidates / plan_rationale, and every other stat is
/// byte-identical to running the chosen engine explicitly.
///
/// All temporary DFS state is removed before returning (also on failure),
/// so one SimDfs instance can host an engine-comparison sweep. A run that
/// fails *inside* the workflow (e.g. kOutOfSpace) still returns OK from
/// this function, with the failure recorded in ExecStats — callers
/// distinguish infrastructure errors (non-OK Result) from the measured
/// engine failures the paper plots.
Result<ExecResult> Exec(SimDfs* dfs, const std::string& base_path,
                        const ExecRequest& request,
                        const EngineOptions& options,
                        RunContext ctx = RunContext());

/// \brief Thin wrapper over Exec with a kSingle payload.
Result<Execution> RunQuery(SimDfs* dfs, const std::string& base_path,
                           std::shared_ptr<const GraphPatternQuery> query,
                           const EngineOptions& options,
                           RunContext ctx = RunContext());

/// \brief Runs `query` with a COUNT/GROUP BY/HAVING constraint appended as
/// one extra MR cycle (the paper's "unbound-property queries with
/// aggregation constraints" future direction).
///
/// The aggregation cycle reads the engine's final output in its native
/// representation: the NTGA engines feed it nested triplegroups —
/// combinations are never materialized on HDFS, the mapper expands them in
/// flight and ships only (group key, counted value) pairs — while the
/// relational engines read their flat n-tuples. Answers are canonical
/// solutions binding the group variables plus the count.
///
/// Thin wrapper over Exec (kSingle payload + aggregate).
Result<Execution> RunAggregateQuery(
    SimDfs* dfs, const std::string& base_path,
    std::shared_ptr<const GraphPatternQuery> query,
    const AggregateSpec& spec, const EngineOptions& options,
    RunContext ctx = RunContext());

/// \brief A multi-query batch execution: one set of shared-workflow stats
/// plus each query's answers.
struct BatchExecution {
  ExecStats stats;
  std::vector<SolutionSet> answers;  ///< aligned with the input queries
};

/// \brief Runs several queries as ONE NTGA workflow sharing a single scan
/// and a single subject-grouping cycle (MRShare-style sharing, which the
/// TripleGroup model gets structurally: γ_S(T) is query-independent).
/// Requires an NTGA engine kind; relational engines have no shared
/// grouping to exploit — run them per query and sum.
///
/// Thin wrapper over Exec (kBatch payload).
Result<BatchExecution> RunQueryBatch(
    SimDfs* dfs, const std::string& base_path,
    const std::vector<std::shared_ptr<const GraphPatternQuery>>& queries,
    const EngineOptions& options, RunContext ctx = RunContext());

/// \brief Evaluates a UNION of conjunctive queries — the shape produced by
/// rewriting ontological queries (Section 1: such rewritings are a major
/// source of unbound-property subqueries) — as one shared-scan batch whose
/// per-query answers are unioned.
///
/// Thin wrapper over Exec (kUnion payload).
Result<Execution> RunUnionQuery(
    SimDfs* dfs, const std::string& base_path,
    const std::vector<std::shared_ptr<const GraphPatternQuery>>& branches,
    const EngineOptions& options, RunContext ctx = RunContext());

/// \brief Computes the redundancy factor of serialized flat tuples: bytes
/// in excess of one copy of each distinct triple per subject, divided by
/// total bytes. Lines that are not flat tuples contribute no redundancy.
double ComputeRedundancyFactor(const std::vector<std::string>& lines);

// ---- Plan templates (compile once, execute many) --------------------------
//
// The serving layer pays query compilation once and executes the compiled
// plan for every subsequent request. A *plan template* is an ordinary
// CompiledPlan whose temporary paths live under the canonical
// kPlanTemplatePrefix; executing it clones the plan structs (the map /
// reduce closures are shared — they capture only query structure, never
// DFS paths) and rewrites every template-prefixed path to a fresh per-run
// prefix, so any number of executions of one template may run concurrently
// against the same SimDfs. RunQuery/RunAggregateQuery/RunQueryBatch are
// themselves implemented as compile-template + execute, so the cached and
// the one-shot paths are byte-identical by construction.

/// \brief Canonical temporary prefix of compiled plan templates. Base
/// relations must not live under it (compilation rejects such paths).
inline constexpr const char kPlanTemplatePrefix[] = "tmp/plan-template";

/// \brief Compiles `query` (with an optional trailing aggregation cycle)
/// for the engine in `options`, placing every temporary under
/// kPlanTemplatePrefix. The result is immutable and reusable: execute it
/// any number of times, from any thread, via RunCompiledQuery.
Result<CompiledPlan> CompileQueryPlanTemplate(
    std::shared_ptr<const GraphPatternQuery> query,
    const std::string& base_path,
    const std::optional<AggregateSpec>& aggregate,
    const EngineOptions& options);

/// \brief Executes a plan template compiled by CompileQueryPlanTemplate
/// under a fresh run-unique tmp prefix. Safe to call concurrently with
/// other executions sharing `dfs` (each run touches only its own prefix);
/// under such concurrency every ExecStats field is still deterministic
/// except peak_dfs_used_bytes, which then includes other runs' temporaries.
/// The caller must ensure the template's base relation exists; a missing
/// base surfaces as a measured in-workflow failure, not an error Result.
Result<Execution> RunCompiledQuery(SimDfs* dfs, const CompiledPlan& plan,
                                   const std::string& query_name,
                                   const EngineOptions& options,
                                   RunContext ctx = RunContext());

/// \brief Batch analogue of CompileQueryPlanTemplate (NTGA engines only —
/// see RunQueryBatch for why relational engines are rejected).
Result<NtgaBatchPlan> CompileBatchPlanTemplate(
    const std::vector<std::shared_ptr<const GraphPatternQuery>>& queries,
    const std::string& base_path, const EngineOptions& options);

/// \brief Batch analogue of RunCompiledQuery.
Result<BatchExecution> RunCompiledBatch(SimDfs* dfs,
                                        const NtgaBatchPlan& plan,
                                        const EngineOptions& options,
                                        RunContext ctx = RunContext());

}  // namespace rdfmr

#endif  // RDFMR_ENGINE_ENGINE_H_
