#include "engine/plan_chooser.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>

#include "common/strings.h"
#include "engine/advisor.h"
#include "mapreduce/cost_model.h"

namespace rdfmr {

namespace {

// Base-path placeholder for the throwaway candidate compilations; the
// chooser never touches a DFS, it only needs to recognize which compiled
// inputs scan the base relation.
constexpr char kChooserBase[] = "auto-chooser/base";

// Byte priors mirroring the advisor's (rough serialized term / pair /
// column-group sizes).
constexpr double kTermBytes = 12.0;
constexpr double kTripleBytes = 3 * kTermBytes + 3;
constexpr double kPairBytes = 2 * kTermBytes + 2;

// Join and aggregation cycles keep roughly this fraction of their input
// (equi-joins on star subjects are selective but not degenerate).
constexpr double kJoinOutputFraction = 0.5;

// Candidate order: the paper's default adaptive policy (LazyUnnest)
// precedes its fixed full/partial variants so exact-cost ties resolve to
// the engine a caller would get without the chooser.
const EngineKind kCandidateOrder[] = {
    EngineKind::kPig,          EngineKind::kHive,
    EngineKind::kNtgaEager,    EngineKind::kNtgaLazy,
    EngineKind::kNtgaLazyFull, EngineKind::kNtgaLazyPartial,
};

bool IsRelational(EngineKind kind) {
  return kind == EngineKind::kPig || kind == EngineKind::kHive;
}

// Which of the advisor's per-strategy footprint predictions applies
// (mirrors the disk-pressure preflight's family mapping).
const char* Family(EngineKind kind) {
  if (IsRelational(kind)) return "relational";
  if (kind == EngineKind::kNtgaEager) return "eager";
  return "lazy";
}

double FamilyStarBytes(const StrategyAdvice& advice, EngineKind kind) {
  if (IsRelational(kind)) return advice.relational_star_bytes;
  if (kind == EngineKind::kNtgaEager) return advice.eager_star_bytes;
  return advice.lazy_star_bytes;
}

// Bytes of base-relation triples matching any of the query's patterns —
// the shuffle volume of a relational star-phase map, which filters at the
// mapper (unlike the NTGA grouping cycle, which ships every triple to
// group by subject). Priors match the advisor's EstimateStar.
double MatchedTripleBytes(const GraphPatternQuery& query,
                          const GraphStats& stats) {
  double bytes = 0.0;
  for (const StarPattern& star : query.stars()) {
    for (const TriplePattern& tp : star.patterns) {
      double matched;
      if (tp.property_bound) {
        matched = static_cast<double>(stats.ForProperty(tp.property)
                                          .triple_count) *
                  kTripleBytes;
      } else {
        matched = static_cast<double>(stats.triple_count()) * kTripleBytes;
      }
      if (tp.object.is_constant()) {
        matched *= 0.25;
      } else if (tp.object.partially_bound()) {
        matched *= kContainsFilterSelectivity;
      }
      bytes += matched;
    }
  }
  return bytes;
}

// Everything the per-candidate scoring needs, precomputed once per
// request (candidate-independent).
struct RequestModel {
  StrategyAdvice summed;  ///< per-family star bytes, summed over queries
  double matched_bytes = 0.0;
  double flat_growth = 1.0;  ///< flat/nested ratio: full-unnest expansion
  bool partial_join = false;
};

RequestModel
ModelRequest(const std::vector<std::shared_ptr<const GraphPatternQuery>>&
                 queries,
             const GraphStats& stats, const ClusterConfig& cluster) {
  RequestModel model;
  for (const auto& query : queries) {
    if (query == nullptr) continue;
    StrategyAdvice advice = AdviseStrategy(*query, stats, cluster);
    model.summed.relational_star_bytes += advice.relational_star_bytes;
    model.summed.eager_star_bytes += advice.eager_star_bytes;
    model.summed.lazy_star_bytes += advice.lazy_star_bytes;
    model.summed.phi_partitions =
        std::max(model.summed.phi_partitions, advice.phi_partitions);
    model.matched_bytes += MatchedTripleBytes(*query, stats);
    if (advice.phi_partitions > 1) model.partial_join = true;
  }
  if (model.summed.lazy_star_bytes > 0.0) {
    model.flat_growth = std::max(
        1.0,
        model.summed.relational_star_bytes / model.summed.lazy_star_bytes);
  }
  return model;
}

// Shuffle expansion at non-star cycles: a lazy-full join map β-unnests
// its nested input to flat tuples before shipping; partial unnest (and
// the adaptive policy, wherever it plans a partial join) keeps the nested
// representation on the wire.
double ShuffleGrowth(EngineKind kind, const RequestModel& model) {
  switch (kind) {
    case EngineKind::kNtgaLazyFull:
      return model.flat_growth;
    case EngineKind::kNtgaLazyPartial:
      return 1.0;
    case EngineKind::kNtgaLazy:
      return model.partial_join ? 1.0 : model.flat_growth;
    default:
      return 1.0;  // relational and eager intermediates are already flat
  }
}

// Compiles the candidate's plan (errors => the candidate cannot run this
// payload) and returns its workflow plus star-phase output paths.
struct CandidatePlan {
  WorkflowSpec workflow;
  std::vector<std::string> star_phase_paths;
};

Result<CandidatePlan> CompileCandidate(const ExecRequest& request,
                                       const EngineOptions& options) {
  CandidatePlan plan;
  if (request.payload == ExecPayload::kSingle) {
    RDFMR_ASSIGN_OR_RETURN(
        CompiledPlan compiled,
        CompileQueryPlanTemplate(request.query, kChooserBase,
                                 request.aggregate, options));
    plan.workflow = std::move(compiled.workflow);
    plan.star_phase_paths = std::move(compiled.star_phase_paths);
    return plan;
  }
  RDFMR_ASSIGN_OR_RETURN(
      NtgaBatchPlan batch,
      CompileBatchPlanTemplate(request.queries, kChooserBase, options));
  plan.workflow = std::move(batch.workflow);
  plan.star_phase_paths = std::move(batch.star_phase_paths);
  return plan;
}

// Projects the candidate's modeled execution time: walk the compiled
// workflow in order, estimate each job's I/O from the advisor predictions
// and property cardinalities, and price it with the calibrated cost model.
double ScoreCandidate(const CandidatePlan& plan, EngineKind kind,
                      const RequestModel& model, uint64_t base_bytes,
                      const ClusterConfig& cluster,
                      const CostModelConfig& cost) {
  const double star_total = std::max(
      0.0, FamilyStarBytes(model.summed, kind));
  std::map<std::string, double> sizes;
  sizes[kChooserBase] = static_cast<double>(base_bytes);

  // Star cycles share the family's predicted output evenly.
  size_t num_star_jobs = 0;
  auto is_star_job = [&plan](const JobSpec& job) {
    for (const std::string& path : plan.star_phase_paths) {
      if (path == job.output_path) return true;
      for (const std::string& ensured : job.ensure_outputs) {
        if (path == ensured) return true;
      }
    }
    return false;
  };
  for (const JobSpec& job : plan.workflow.jobs) {
    if (is_star_job(job)) ++num_star_jobs;
  }

  double total_seconds = 0.0;
  for (const JobSpec& job : plan.workflow.jobs) {
    double input = 0.0;
    for (const MapInput& in : job.inputs) {
      auto it = sizes.find(in.path);
      if (it != sizes.end()) input += it->second;
    }
    const bool map_only = !job.reduce;
    const bool star_job = is_star_job(job);

    double shuffle = 0.0;
    double output = 0.0;
    if (star_job) {
      output = star_total / static_cast<double>(std::max<size_t>(
                                num_star_jobs, 1));
      if (!map_only) {
        // Relational star maps filter pattern-matching triples before the
        // shuffle; the NTGA grouping cycle ships every record to group by
        // subject (γ_S(T) is query-independent).
        shuffle = IsRelational(kind)
                      ? std::min(input,
                                 model.matched_bytes /
                                     static_cast<double>(std::max<size_t>(
                                         num_star_jobs, 1)))
                      : input;
      }
    } else if (map_only) {
      // Pig's filter/compress pre-pass: keeps only pattern-relevant
      // triples.
      output = std::min(input, model.matched_bytes);
    } else {
      shuffle = input * ShuffleGrowth(kind, model);
      output = input * kJoinOutputFraction;
    }

    JobMetrics metrics;
    metrics.input_bytes = static_cast<uint64_t>(input);
    metrics.map_output_bytes = static_cast<uint64_t>(shuffle);
    metrics.map_output_records =
        static_cast<uint64_t>(shuffle / kPairBytes);
    metrics.output_bytes_replicated = static_cast<uint64_t>(
        output * static_cast<double>(cluster.replication));
    total_seconds += ModelJobSeconds(metrics, cluster, cost);

    sizes[job.output_path] = output;
    if (!job.ensure_outputs.empty()) {
      const double share =
          output / static_cast<double>(job.ensure_outputs.size());
      for (const std::string& path : job.ensure_outputs) {
        sizes[path] = share;
      }
    }
  }
  return total_seconds;
}

}  // namespace

Result<PlanChoice> ChoosePlan(const ExecRequest& request,
                              const GraphStats& stats, uint64_t base_bytes,
                              uint64_t used_bytes,
                              const ClusterConfig& cluster,
                              const EngineOptions& options) {
  std::vector<std::shared_ptr<const GraphPatternQuery>> queries;
  if (request.payload == ExecPayload::kSingle) {
    queries.push_back(request.query);
  } else {
    queries = request.queries;
  }
  const RequestModel model = ModelRequest(queries, stats, cluster);

  PlanChoice choice;
  std::string first_failure;
  bool any_fits = false;
  for (EngineKind kind : kCandidateOrder) {
    PlanCandidate candidate;
    candidate.kind = kind;
    EngineOptions candidate_options = options;
    candidate_options.kind = kind;
    Result<CandidatePlan> plan =
        CompileCandidate(request, candidate_options);
    if (!plan.ok()) {
      candidate.feasible = false;
      candidate.fits = false;
      candidate.note = plan.status().message();
      if (first_failure.empty()) first_failure = plan.status().message();
      choice.candidates.push_back(std::move(candidate));
      continue;
    }
    candidate.planned_cycles = plan->workflow.jobs.size();
    candidate.modeled_seconds = ScoreCandidate(
        *plan, kind, model, base_bytes, cluster, options.cost);
    FootprintProjection projection =
        ProjectFootprint(model.summed, Family(kind), used_bytes, cluster);
    candidate.star_bytes = projection.star_bytes;
    candidate.peak_bytes = projection.peak_bytes;
    candidate.fits = projection.fits;
    if (!candidate.fits) {
      candidate.note = StringFormat(
          "projected peak %s exceeds capacity %s",
          HumanBytes(projection.peak_bytes).c_str(),
          HumanBytes(projection.capacity_bytes).c_str());
    }
    any_fits = any_fits || candidate.fits;
    choice.candidates.push_back(std::move(candidate));
  }

  // Pick the modeled-cheapest candidate, never selecting a non-fitting
  // plan while a fitting one exists. Strictly-less comparison in the
  // fixed candidate order makes ties deterministic.
  const PlanCandidate* best = nullptr;
  for (const PlanCandidate& candidate : choice.candidates) {
    if (!candidate.feasible) continue;
    if (any_fits && !candidate.fits) continue;
    if (best == nullptr ||
        candidate.modeled_seconds < best->modeled_seconds) {
      best = &candidate;
    }
  }
  if (best == nullptr) {
    return Status::InvalidArgument(
        "auto: no candidate engine can run this request" +
        (first_failure.empty() ? std::string()
                               : " (" + first_failure + ")"));
  }
  choice.kind = best->kind;

  const PlanCandidate* runner_up = nullptr;
  for (const PlanCandidate& candidate : choice.candidates) {
    if (&candidate == best || !candidate.feasible) continue;
    if (any_fits && !candidate.fits) continue;
    if (runner_up == nullptr ||
        candidate.modeled_seconds < runner_up->modeled_seconds) {
      runner_up = &candidate;
    }
  }
  choice.rationale = StringFormat(
      "auto: chose %s (modeled %.1fs, %zu cycle(s), star phase %s)",
      EngineKindToString(best->kind), best->modeled_seconds,
      best->planned_cycles, HumanBytes(best->star_bytes).c_str());
  if (runner_up != nullptr) {
    choice.rationale += StringFormat(
        " over %s (modeled %.1fs)", EngineKindToString(runner_up->kind),
        runner_up->modeled_seconds);
  }
  for (PlanCandidate& candidate : choice.candidates) {
    candidate.chosen = candidate.kind == choice.kind;
  }
  return choice;
}

std::string RenderPlanChoice(const PlanChoice& choice) {
  std::string out = StringFormat(
      "%-19s %10s %7s %11s %11s %5s %7s\n", "engine", "modeled(s)",
      "cycles", "star-bytes", "peak-bytes", "fits", "chosen");
  for (const PlanCandidate& candidate : choice.candidates) {
    if (!candidate.feasible) {
      out += StringFormat("%-19s %10s %7s %11s %11s %5s %7s  (%s)\n",
                          EngineKindToString(candidate.kind), "-", "-", "-",
                          "-", "-", "-", candidate.note.c_str());
      continue;
    }
    const std::string note =
        candidate.note.empty() ? "" : "  (" + candidate.note + ")";
    out += StringFormat(
        "%-19s %10.1f %7zu %11s %11s %5s %7s%s\n",
        EngineKindToString(candidate.kind), candidate.modeled_seconds,
        candidate.planned_cycles, HumanBytes(candidate.star_bytes).c_str(),
        HumanBytes(candidate.peak_bytes).c_str(),
        candidate.fits ? "yes" : "no", candidate.chosen ? "<==" : "",
        note.c_str());
  }
  out += choice.rationale + "\n";
  return out;
}

}  // namespace rdfmr
