// Cost-based plan chooser behind EngineKind::kAuto.
//
// Scores every candidate engine for one ExecRequest against a per-dataset
// GraphStats catalog: each candidate's plan is compiled (cheap — no DFS
// work) to obtain its exact MR cycle structure, per-cycle I/O volumes are
// projected from the advisor's star-phase predictions plus per-pattern
// property cardinalities, and the calibrated cost model prices the
// resulting synthetic job metrics. The modeled-cheapest candidate whose
// projected footprint fits the cluster wins; a non-fitting plan is never
// selected while a fitting candidate exists.

#ifndef RDFMR_ENGINE_PLAN_CHOOSER_H_
#define RDFMR_ENGINE_PLAN_CHOOSER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "dfs/cluster_config.h"
#include "engine/engine.h"
#include "rdf/graph_stats.h"

namespace rdfmr {

/// \brief The chooser's decision: the engine to run plus the full scored
/// candidate table (recorded in ExecStats and served by the protocol's
/// `explain` verb).
struct PlanChoice {
  EngineKind kind = EngineKind::kNtgaLazy;
  std::vector<PlanCandidate> candidates;
  std::string rationale;
};

/// \brief Scores every candidate engine for `request` and picks the
/// modeled-cheapest plan.
///
/// Deterministic: a pure function of (request queries, stats, base_bytes,
/// used_bytes, cluster, options). Candidates whose projected footprint
/// does not fit the cluster are excluded as long as at least one fitting
/// candidate remains; exact-cost ties break toward the earlier candidate
/// in the fixed order pig|hive|eager|lazy|lazyfull|lazypartial (the
/// paper's adaptive LazyUnnest policy before its fixed variants, so a tie
/// resolves to the engine a caller would get without the chooser).
/// `base_bytes` is the serialized size of the base triple relation and
/// `used_bytes` the DFS usage before the run (for the footprint filter).
///
/// Fails with InvalidArgument when no candidate can run the payload at
/// all (e.g. an empty batch).
Result<PlanChoice> ChoosePlan(const ExecRequest& request,
                              const GraphStats& stats, uint64_t base_bytes,
                              uint64_t used_bytes,
                              const ClusterConfig& cluster,
                              const EngineOptions& options);

/// \brief Renders a PlanChoice as the human-readable candidate table
/// printed by `rdfmr run --engine auto --explain`.
std::string RenderPlanChoice(const PlanChoice& choice);

}  // namespace rdfmr

#endif  // RDFMR_ENGINE_PLAN_CHOOSER_H_
