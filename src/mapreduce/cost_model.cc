#include "mapreduce/cost_model.h"

#include <cmath>

namespace rdfmr {

namespace {
constexpr double kMB = 1024.0 * 1024.0;
}

double ModelJobSeconds(const JobMetrics& metrics, const ClusterConfig& cluster,
                       const CostModelConfig& cost) {
  double nodes = static_cast<double>(cluster.num_nodes);
  double read_s =
      static_cast<double>(metrics.input_bytes) / kMB / cost.hdfs_read_mbps;
  double shuffle_s = static_cast<double>(metrics.map_output_bytes) / kMB /
                     cost.shuffle_mbps;
  // Sort both on the map side (spill sort) and the merge on the reduce side
  // touch the shuffle volume; log factor models multi-pass merges.
  double sort_passes =
      metrics.map_output_records > 1
          ? std::log2(static_cast<double>(metrics.map_output_records)) / 16.0
          : 0.0;
  double sort_s = static_cast<double>(metrics.map_output_bytes) / kMB /
                  cost.sort_mbps * (1.0 + sort_passes);
  double write_s = static_cast<double>(metrics.output_bytes_replicated) /
                   kMB / cost.hdfs_write_mbps;
  return cost.job_startup_seconds +
         (read_s + shuffle_s + sort_s + write_s) / nodes;
}

double ModelWorkflowSeconds(const std::vector<JobMetrics>& jobs,
                            const ClusterConfig& cluster,
                            const CostModelConfig& cost) {
  double total = 0.0;
  for (const JobMetrics& m : jobs) {
    total += ModelJobSeconds(m, cluster, cost);
  }
  return total;
}

}  // namespace rdfmr
