// Deterministic execution-time model.
//
// The paper reports wall-clock times measured on VCL clusters; every gap it
// explains is an I/O-volume gap (HDFS reads/writes, shuffle bytes, number
// of MR cycles). This model turns the simulator's measured byte counters
// into a modeled time so the figures' *shapes* can be compared; absolute
// seconds are not expected to match the authors' hardware.

#ifndef RDFMR_MAPREDUCE_COST_MODEL_H_
#define RDFMR_MAPREDUCE_COST_MODEL_H_

#include "dfs/cluster_config.h"
#include "mapreduce/job.h"

namespace rdfmr {

/// \brief Computes modeled seconds for one executed job on a cluster.
///
/// t = startup + (read/BW_r + shuffle/BW_s + sort(shuffle)/BW_sort +
///     write_physical/BW_w) / num_nodes
double ModelJobSeconds(const JobMetrics& metrics, const ClusterConfig& cluster,
                       const CostModelConfig& cost);

/// \brief Sum of ModelJobSeconds over a workflow's jobs.
double ModelWorkflowSeconds(const std::vector<JobMetrics>& jobs,
                            const ClusterConfig& cluster,
                            const CostModelConfig& cost);

}  // namespace rdfmr

#endif  // RDFMR_MAPREDUCE_COST_MODEL_H_
