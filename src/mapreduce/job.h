// MapReduce job specification and metrics.
//
// A job reads one or more DFS input files (each with its own map function —
// the Hadoop MultipleInputs idiom, needed by reduce-side joins), shuffles
// (hash partition + sort by key), reduces, and writes one DFS output file.
// Map-only jobs skip the shuffle and write map emissions directly.
//
// Map and reduce functions are std::function objects so plan compilers can
// close over query structure; everything that flows between phases is a
// serialized string, making every byte the simulated cluster moves real.

#ifndef RDFMR_MAPREDUCE_JOB_H_
#define RDFMR_MAPREDUCE_JOB_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace rdfmr {

/// \brief Free-form named counters, akin to Hadoop job counters.
using Counters = std::map<std::string, uint64_t>;

/// \brief Emission callback for map functions: (shuffle key, value).
using MapEmit = std::function<void(std::string key, std::string value)>;

/// \brief Emission callback for reduce / map-only outputs: one record line.
using RecordEmit = std::function<void(std::string record)>;

/// \brief Map function: one input record -> zero or more (key, value).
using MapFn =
    std::function<void(const std::string& record, const MapEmit& emit,
                       Counters* counters)>;

/// \brief Reduce function: (key, all values for key) -> output records.
using ReduceFn = std::function<void(
    const std::string& key, const std::vector<std::string>& values,
    const RecordEmit& emit, Counters* counters)>;

/// \brief Combine function (map-side pre-aggregation, Hadoop combiner):
/// rewrites the values emitted for one key by one map task before they are
/// shuffled. Must be idempotent and safe to apply to any subset of a key's
/// values (the framework may run it zero or more times).
using CombineFn = std::function<std::vector<std::string>(
    const std::string& key, const std::vector<std::string>& values,
    Counters* counters)>;

/// \brief One input of a job: a DFS path plus the mapper applied to it.
struct MapInput {
  std::string path;
  MapFn map;
  /// Optional vertical-partition scan hint for mapped (LineSource-backed)
  /// inputs: the set of property terms whose records the mapper can act
  /// on. The compiler may set it ONLY when the mapper provably no-ops
  /// (zero emissions, zero counter changes) on every well-formed record
  /// whose property is outside the set — then a mapped scan may skip
  /// those records without changing any deterministic metric. Null means
  /// scan everything; an empty set means no record matches (pure rescan
  /// accounting). Ignored for materialized inputs.
  std::shared_ptr<const std::vector<std::string>> scan_properties;
};

/// \brief Full specification of one MapReduce job.
struct JobSpec {
  std::string name;
  std::vector<MapInput> inputs;
  /// Null reduce => map-only job; map values become output records.
  ReduceFn reduce;
  /// Optional map-side combiner; applied per block-sized map task before
  /// the shuffle (Hadoop semantics: one combiner scope per map task, not
  /// per input file), so shuffle volume is metered post-combining.
  CombineFn combine;
  std::string output_path;
  /// Optional output demultiplexer (Hadoop MultipleOutputs): maps an output
  /// record to a path suffix; the record is written unchanged to
  /// `output_path + suffix`. Null writes everything to `output_path`.
  std::function<std::string(const std::string& record)> demux;
  /// With demux: full paths that must exist after the job even when no
  /// record routed to them (empty files are created), so downstream jobs
  /// can rely on their inputs existing.
  std::vector<std::string> ensure_outputs;
  /// Reduce task count; <=0 uses the cluster default.
  int num_reducers = 0;
  /// True if this job scans the full base triple relation through each
  /// listed input (used for the paper's "full scans" metric).
  uint32_t full_scans_of_base = 0;
};

/// \brief Measured I/O of one executed job.
struct JobMetrics {
  std::string job_name;
  uint64_t input_records = 0;
  uint64_t input_bytes = 0;          ///< HDFS bytes read
  /// Shuffle volume: records/bytes entering the (post-combine) shuffle.
  /// Map-only jobs have no shuffle; their emissions are metered in
  /// map_direct_output_* instead and never count here.
  uint64_t map_output_records = 0;
  uint64_t map_output_bytes = 0;     ///< shuffle volume (key+value bytes)
  /// Map-only jobs: records/bytes emitted straight to the output file
  /// (no shuffle, no sort; bytes are as-written, value + newline).
  uint64_t map_direct_output_records = 0;
  uint64_t map_direct_output_bytes = 0;
  uint64_t reduce_input_groups = 0;
  uint64_t output_records = 0;
  uint64_t output_bytes = 0;         ///< logical HDFS bytes written
  uint64_t output_bytes_replicated = 0;  ///< physical incl. replicas
  uint32_t full_scans_of_base = 0;
  /// Real (host) wall-clock seconds per phase of this job's execution —
  /// diagnostic only, NOT deterministic and NOT part of the simulated
  /// cost model. map_seconds covers input scan + map tasks + partition
  /// merge; shuffle_sort_seconds the per-partition sorts; reduce_seconds
  /// the reduce calls + output merge.
  double map_seconds = 0.0;
  double shuffle_sort_seconds = 0.0;
  double reduce_seconds = 0.0;
  /// Fault-tolerance accounting, all zero on a fault-free run. These are
  /// deterministic given a FaultPlan, but they are intentionally excluded
  /// from the byte-identical-stats contract: a recovered run matches the
  /// fault-free run on every *other* deterministic metric while these
  /// record what the recovery cost.
  uint64_t task_attempts = 0;   ///< attempts (incl. final) of retried ops
  uint64_t tasks_retried = 0;   ///< DFS ops that needed more than 1 attempt
  uint64_t wasted_bytes = 0;    ///< logical bytes re-processed by retries
  /// Modeled exponential backoff accrued before retries (base * 2^(n-1)
  /// for the n-th failed attempt); never slept, never in modeled_seconds.
  double retry_backoff_seconds = 0.0;
  Counters counters;

  /// \brief Accumulates `other` into this (for workflow totals).
  void Accumulate(const JobMetrics& other);
};

}  // namespace rdfmr

#endif  // RDFMR_MAPREDUCE_JOB_H_
