#include "mapreduce/job_runner.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <utility>

#include "common/hash.h"
#include "common/logging.h"

namespace rdfmr {

namespace {

struct ShuffleRecord {
  std::string key;
  std::string value;
  uint64_t seq;  // preserves map emission order for stable grouping
};

// One per-block map task: a contiguous line range of one input, mirroring
// an HDFS input split (a record belongs to the block containing its first
// byte, so the task count per input never exceeds SimDfs::BlockCount).
struct MapTask {
  size_t input_index = 0;
  size_t begin = 0;  // first line (inclusive)
  size_t end = 0;    // last line (exclusive)
};

// Private output of one map task, merged deterministically at the phase
// barrier: emissions in emission order, counters into the job counters.
struct MapTaskOutput {
  std::vector<std::pair<std::string, std::string>> emits;
  Counters counters;
};

// Private output of one reducer partition.
struct ReduceTaskOutput {
  std::vector<std::string> records;
  Counters counters;
  uint64_t groups = 0;
};

void MergeCounters(Counters* into, const Counters& from) {
  for (const auto& [name, value] : from) (*into)[name] += value;
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Transient failures are re-attempted; everything else (kOutOfSpace in
// particular, the paper's failure mode) kills the job immediately.
bool IsTransient(const Status& status) {
  return status.code() == StatusCode::kIoError ||
         status.code() == StatusCode::kUnavailable;
}

// Shared retry bookkeeping: `failed_attempts` transient failures happened
// before this op's final attempt, which may itself have failed on
// exhaustion — either way the op made failed_attempts + 1 attempts.
void AccountRetries(JobMetrics* metrics, uint32_t failed_attempts,
                    uint64_t op_bytes, double backoff_base) {
  if (failed_attempts == 0) return;
  metrics->tasks_retried += 1;
  metrics->task_attempts += failed_attempts + 1;
  metrics->wasted_bytes += op_bytes * failed_attempts;
  for (uint32_t n = 1; n <= failed_attempts; ++n) {
    metrics->retry_backoff_seconds +=
        backoff_base * static_cast<double>(1ULL << (n - 1));
  }
}

// Opens `path` for scanning, re-attempting transient failures up to
// `max_attempts` total attempts (Hadoop re-runs the whole map attempt, so
// each retry re-reads — and wastes — the full input).
Result<SimDfs::ScanHandle> OpenScanWithRetry(SimDfs* dfs,
                                             const std::string& path,
                                             uint32_t max_attempts,
                                             double backoff_base,
                                             JobMetrics* metrics) {
  uint32_t failed = 0;
  for (;;) {
    auto scan = dfs->OpenScan(path);
    if (scan.ok()) {
      AccountRetries(metrics, failed, scan->total_bytes(), backoff_base);
      return scan;
    }
    if (!IsTransient(scan.status()) || failed + 1 >= max_attempts) {
      AccountRetries(metrics, failed, 0, backoff_base);
      return scan.status();
    }
    ++failed;
  }
}

// Writes `path`, re-attempting transient failures. Retry needs the lines
// kept alive across attempts; that copy is only paid when a fault plan is
// installed (the legacy one-shot write-failure hook models an
// unrecoverable crash and is never retried).
Status WriteWithRetry(SimDfs* dfs, const std::string& path,
                      std::vector<std::string> lines, uint64_t op_bytes,
                      uint32_t max_attempts, double backoff_base,
                      JobMetrics* metrics) {
  const bool may_retry = max_attempts > 1 && dfs->HasFaultPlan();
  uint32_t failed = 0;
  for (;;) {
    const bool last = !may_retry || failed + 1 >= max_attempts;
    Status st = dfs->WriteFile(path, last ? std::move(lines) : lines);
    if (st.ok()) {
      AccountRetries(metrics, failed, op_bytes, backoff_base);
      return st;
    }
    if (last || !IsTransient(st)) {
      AccountRetries(metrics, failed, op_bytes, backoff_base);
      return st;
    }
    ++failed;
  }
}

// Runs fn(i) for i in [0, n) — concurrently when a pool is supplied,
// inline otherwise.
void ForEachTask(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn) {
  if (pool != nullptr) {
    pool->ParallelFor(n, fn);
  } else {
    for (size_t i = 0; i < n; ++i) fn(i);
  }
}

// Executes one map task against its line range: either plain mapping or
// the per-task combiner path (buffer -> combine per key -> emit), exactly
// the Hadoop combiner scope.
//
// `selected` (nullable) is the input's resolved vertical-partition hint:
// ascending indices of the lines whose property the mapper can act on.
// When set (mapped inputs only), the task feeds the mapper just the
// selected lines inside its range — legal because the compiler guarantees
// the mapper no-ops on every skipped line, so emissions and counters are
// byte-identical to the full scan.
void RunMapTask(const JobSpec& spec, const MapTask& task,
                const SimDfs::ScanHandle& scan,
                const std::vector<uint64_t>* selected, bool map_only,
                MapTaskOutput* out) {
  const MapFn& map = spec.inputs[task.input_index].map;
  std::string scratch;
  const auto for_each_record = [&](const MapEmit& emit) {
    if (selected == nullptr) {
      for (size_t i = task.begin; i < task.end; ++i) {
        map(scan.LineRef(i, &scratch), emit, &out->counters);
      }
      return;
    }
    auto it = std::lower_bound(selected->begin(), selected->end(),
                               static_cast<uint64_t>(task.begin));
    for (; it != selected->end() && *it < task.end; ++it) {
      map(scan.LineRef(*it, &scratch), emit, &out->counters);
    }
  };
  if (spec.combine == nullptr || map_only) {
    MapEmit emit = [out](std::string key, std::string value) {
      out->emits.emplace_back(std::move(key), std::move(value));
    };
    for_each_record(emit);
    return;
  }
  // Combiner path: buffer this task's output, combine per key, then hand
  // the combined pairs on (insertion order preserved).
  std::map<std::string, std::vector<std::string>> task_output;
  std::vector<std::string> key_order;
  MapEmit emit = [&](std::string key, std::string value) {
    out->counters["combine_input_records"] += 1;
    auto [it, inserted] = task_output.try_emplace(std::move(key));
    if (inserted) key_order.push_back(it->first);
    it->second.push_back(std::move(value));
  };
  for_each_record(emit);
  for (const std::string& key : key_order) {
    std::vector<std::string> combined =
        spec.combine(key, task_output.at(key), &out->counters);
    for (std::string& value : combined) {
      out->emits.emplace_back(key, std::move(value));
    }
  }
}

// Synthesizes operator spans beneath a phase span from `op.`-prefixed
// counters (key convention `op.<operator>.<field>`). Counters merge
// deterministically at phase barriers, so the resulting span structure is
// byte-identical across thread counts; Counters is a sorted map, so the
// operator order is fixed too.
void AddOperatorSpans(const RunContext& phase_ctx, const Counters& counters) {
  std::map<std::string, std::vector<std::pair<std::string, uint64_t>>> ops;
  for (const auto& [key, value] : counters) {
    if (key.rfind("op.", 0) != 0) continue;
    size_t dot = key.find('.', 3);
    if (dot == std::string::npos) continue;
    ops[key.substr(3, dot - 3)].emplace_back(key.substr(dot + 1), value);
  }
  for (const auto& [op, fields] : ops) {
    ScopedSpan span(phase_ctx, op);
    for (const auto& [field, value] : fields) span.Attr(field, value);
  }
}

}  // namespace

JobRunResult RunJob(SimDfs* dfs, const JobSpec& spec,
                    const JobRunOptions& options) {
  RDFMR_CHECK(dfs != nullptr);
  JobRunResult run;
  JobMetrics& metrics = run.metrics;
  if (spec.inputs.empty()) {
    run.status =
        Status::InvalidArgument("job '" + spec.name + "' has no inputs");
    return run;
  }
  if (spec.output_path.empty()) {
    run.status =
        Status::InvalidArgument("job '" + spec.name + "' has no output");
    return run;
  }
  ThreadPool* pool = options.pool;
  uint32_t max_attempts = options.max_attempts;
  if (max_attempts == 0) max_attempts = dfs->config().max_task_attempts;
  if (max_attempts == 0) max_attempts = 1;
  const double backoff_base = dfs->config().retry_backoff_seconds;

  ScopedSpan job_span(options.ctx, "job");
  job_span.Attr("job", spec.name);
  const RunContext job_ctx = job_span.context();
  const bool tracing = job_span.enabled();

  metrics.job_name = spec.name;
  metrics.full_scans_of_base = spec.full_scans_of_base;

  const bool map_only = (spec.reduce == nullptr);
  int num_reducers = spec.num_reducers > 0
                         ? spec.num_reducers
                         : static_cast<int>(dfs->config().num_reducers);
  RDFMR_CHECK(num_reducers > 0);

  // ---- Map phase -------------------------------------------------------
  // Open the inputs for scanning (metered, on the calling thread) and cut
  // each into per-block map tasks; a line belongs to the block holding
  // its first byte, as a Hadoop input split would. Task structure and
  // input metering always cover the FULL file — a vertical-partition
  // hint prunes which lines reach the mapper, never what the job reads.
  auto map_start = std::chrono::steady_clock::now();
  ScopedSpan map_span(job_ctx, "map");
  const uint64_t block_size = dfs->config().block_size;
  std::vector<SimDfs::ScanHandle> scans(spec.inputs.size());
  // Resolved per-input hints; null = feed every line to the mapper.
  std::vector<std::unique_ptr<std::vector<uint64_t>>> selected(
      spec.inputs.size());
  std::vector<MapTask> tasks;
  for (size_t in = 0; in < spec.inputs.size(); ++in) {
    const MapInput& input = spec.inputs[in];
    auto scan = OpenScanWithRetry(dfs, input.path, max_attempts,
                                  backoff_base, &metrics);
    if (!scan.ok()) {
      run.status =
          scan.status().WithContext("job '" + spec.name + "' input");
      return run;
    }
    scans[in] = scan.MoveValueUnsafe();
    metrics.input_records += scans[in].line_count();
    metrics.input_bytes += scans[in].total_bytes();
    if (scans[in].mapped() && input.scan_properties != nullptr) {
      selected[in] = std::make_unique<std::vector<uint64_t>>(
          scans[in].MatchingLines(*input.scan_properties));
    }

    const uint64_t line_count = scans[in].line_count();
    uint64_t offset = 0;
    uint64_t task_block = 0;
    size_t task_begin = 0;
    for (size_t i = 0; i < line_count; ++i) {
      uint64_t block = offset / block_size;
      if (block != task_block) {
        tasks.push_back(MapTask{in, task_begin, i});
        task_block = block;
        task_begin = i;
      }
      offset += scans[in].LineBytes(i) + 1;
    }
    if (task_begin < line_count) {
      tasks.push_back(MapTask{in, task_begin, line_count});
    }
  }

  std::vector<MapTaskOutput> task_outputs(tasks.size());
  ForEachTask(pool, tasks.size(), [&](size_t t) {
    RunMapTask(spec, tasks[t], scans[tasks[t].input_index],
               selected[tasks[t].input_index].get(), map_only,
               &task_outputs[t]);
  });

  if (tracing) {
    map_span.Attr("tasks", static_cast<uint64_t>(tasks.size()));
    map_span.Attr("input_records", metrics.input_records);
    map_span.Attr("input_bytes", metrics.input_bytes);
    // Operator spans from the map tasks' deterministic counters (extra
    // tracing-only pass; job counters merge unchanged below).
    Counters map_phase_counters;
    for (const MapTaskOutput& out : task_outputs) {
      MergeCounters(&map_phase_counters, out.counters);
    }
    AddOperatorSpans(map_span.context(), map_phase_counters);
  }
  map_span.Close();

  // Barrier reached: merge the per-task buffers in (input, block) order —
  // the exact emission order of a sequential run — assigning shuffle
  // sequence numbers and metering the shuffle volume. Map-only emissions
  // go straight to the output buffer and are metered separately (they
  // never cross a shuffle).
  ScopedSpan shuffle_span(job_ctx, "shuffle");
  std::vector<std::vector<ShuffleRecord>> partitions(
      map_only ? 1 : static_cast<size_t>(num_reducers));
  std::vector<std::string> map_only_output;
  uint64_t seq = 0;
  for (MapTaskOutput& out : task_outputs) {
    for (auto& [key, value] : out.emits) {
      if (map_only) {
        metrics.map_direct_output_records += 1;
        metrics.map_direct_output_bytes += value.size() + 1;
        map_only_output.push_back(std::move(value));
      } else {
        metrics.map_output_records += 1;
        metrics.map_output_bytes += key.size() + value.size() + 2;
        size_t p = static_cast<size_t>(Fnv1a64(key) %
                                       static_cast<uint64_t>(num_reducers));
        partitions[p].push_back(
            ShuffleRecord{std::move(key), std::move(value), seq++});
      }
    }
    MergeCounters(&metrics.counters, out.counters);
  }
  scans.clear();
  selected.clear();
  task_outputs.clear();
  metrics.map_seconds = SecondsSince(map_start);
  if (tracing) {
    if (map_only) {
      shuffle_span.Attr("direct_records", metrics.map_direct_output_records);
      shuffle_span.Attr("direct_bytes", metrics.map_direct_output_bytes);
    } else {
      shuffle_span.Attr("partitions", static_cast<uint64_t>(num_reducers));
      shuffle_span.Attr("shuffle_records", metrics.map_output_records);
      shuffle_span.Attr("shuffle_bytes", metrics.map_output_bytes);
    }
  }
  shuffle_span.Close();

  // ---- Shuffle + reduce phase -------------------------------------------
  std::vector<std::string> output;
  if (map_only) {
    output = std::move(map_only_output);
  } else {
    // Per-partition stable sort, all partitions concurrently.
    auto sort_start = std::chrono::steady_clock::now();
    ScopedSpan sort_span(job_ctx, "sort");
    sort_span.Attr("partitions", static_cast<uint64_t>(num_reducers));
    ForEachTask(pool, partitions.size(), [&](size_t p) {
      std::vector<ShuffleRecord>& part = partitions[p];
      // Secondary sort: by key, ties broken by emission order (stable).
      std::sort(part.begin(), part.end(),
                [](const ShuffleRecord& a, const ShuffleRecord& b) {
                  if (a.key != b.key) return a.key < b.key;
                  return a.seq < b.seq;
                });
    });
    sort_span.Close();
    metrics.shuffle_sort_seconds = SecondsSince(sort_start);

    // Per-partition reduce with private output buffers and counters,
    // merged in partition order behind the barrier — the sequential
    // partition-loop order.
    auto reduce_start = std::chrono::steady_clock::now();
    ScopedSpan reduce_span(job_ctx, "reduce");
    std::vector<ReduceTaskOutput> reduce_outputs(partitions.size());
    ForEachTask(pool, partitions.size(), [&](size_t p) {
      std::vector<ShuffleRecord>& part = partitions[p];
      ReduceTaskOutput& out = reduce_outputs[p];
      RecordEmit emit = [&out](std::string record) {
        out.records.push_back(std::move(record));
      };
      size_t i = 0;
      while (i < part.size()) {
        size_t j = i;
        std::vector<std::string> values;
        while (j < part.size() && part[j].key == part[i].key) {
          values.push_back(std::move(part[j].value));
          ++j;
        }
        out.groups += 1;
        spec.reduce(part[i].key, values, emit, &out.counters);
        i = j;
      }
      part.clear();
      part.shrink_to_fit();
    });
    Counters reduce_phase_counters;
    for (ReduceTaskOutput& out : reduce_outputs) {
      metrics.reduce_input_groups += out.groups;
      for (std::string& record : out.records) {
        output.push_back(std::move(record));
      }
      MergeCounters(&metrics.counters, out.counters);
      if (tracing) MergeCounters(&reduce_phase_counters, out.counters);
    }
    if (tracing) {
      reduce_span.Attr("groups", metrics.reduce_input_groups);
      AddOperatorSpans(reduce_span.context(), reduce_phase_counters);
    }
    reduce_span.Close();
    metrics.reduce_seconds = SecondsSince(reduce_start);
  }

  // ---- Output materialization --------------------------------------------
  ScopedSpan write_span(job_ctx, "write");
  metrics.output_records = output.size();
  for (const std::string& line : output) {
    metrics.output_bytes += line.size() + 1;
  }
  metrics.output_bytes_replicated =
      metrics.output_bytes * dfs->config().replication;
  if (tracing) {
    write_span.Attr("output_records", metrics.output_records);
    write_span.Attr("output_bytes", metrics.output_bytes);
    write_span.Attr("replicated_bytes", metrics.output_bytes_replicated);
  }

  if (spec.demux == nullptr) {
    Status st = WriteWithRetry(dfs, spec.output_path, std::move(output),
                               metrics.output_bytes, max_attempts,
                               backoff_base, &metrics);
    if (!st.ok()) {
      run.status = st.WithContext("job '" + spec.name + "' output");
      return run;
    }
  } else {
    // MultipleOutputs: route records to per-suffix files (stable order).
    std::map<std::string, std::vector<std::string>> demuxed;
    for (std::string& line : output) {
      demuxed[spec.demux(line)].push_back(std::move(line));
    }
    write_span.Attr("demuxed_files", static_cast<uint64_t>(demuxed.size()));
    for (auto& [suffix, lines] : demuxed) {
      uint64_t suffix_bytes = 0;
      for (const std::string& line : lines) suffix_bytes += line.size() + 1;
      Status st = WriteWithRetry(dfs, spec.output_path + suffix,
                                 std::move(lines), suffix_bytes,
                                 max_attempts, backoff_base, &metrics);
      if (!st.ok()) {
        run.status = st.WithContext("job '" + spec.name + "' output");
        return run;
      }
    }
    for (const std::string& path : spec.ensure_outputs) {
      if (!dfs->Exists(path)) {
        Status st = WriteWithRetry(dfs, path, {}, 0, max_attempts,
                                   backoff_base, &metrics);
        if (!st.ok()) {
          run.status = st.WithContext("job '" + spec.name + "' output");
          return run;
        }
      }
    }
  }
  return run;
}

Result<JobMetrics> RunJob(SimDfs* dfs, const JobSpec& spec,
                          ThreadPool* pool, uint32_t max_attempts,
                          JobMetrics* failed_job_metrics) {
  JobRunOptions options;
  options.pool = pool;
  options.max_attempts = max_attempts;
  JobRunResult run = RunJob(dfs, spec, options);
  if (!run.ok()) {
    if (failed_job_metrics != nullptr) *failed_job_metrics = run.metrics;
    return std::move(run.status);
  }
  return std::move(run.metrics);
}

void JobMetrics::Accumulate(const JobMetrics& other) {
  input_records += other.input_records;
  input_bytes += other.input_bytes;
  map_output_records += other.map_output_records;
  map_output_bytes += other.map_output_bytes;
  map_direct_output_records += other.map_direct_output_records;
  map_direct_output_bytes += other.map_direct_output_bytes;
  reduce_input_groups += other.reduce_input_groups;
  output_records += other.output_records;
  output_bytes += other.output_bytes;
  output_bytes_replicated += other.output_bytes_replicated;
  full_scans_of_base += other.full_scans_of_base;
  map_seconds += other.map_seconds;
  shuffle_sort_seconds += other.shuffle_sort_seconds;
  reduce_seconds += other.reduce_seconds;
  task_attempts += other.task_attempts;
  tasks_retried += other.tasks_retried;
  wasted_bytes += other.wasted_bytes;
  retry_backoff_seconds += other.retry_backoff_seconds;
  for (const auto& [name, value] : other.counters) {
    counters[name] += value;
  }
}

}  // namespace rdfmr
