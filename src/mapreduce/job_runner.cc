#include "mapreduce/job_runner.h"

#include <algorithm>

#include "common/hash.h"
#include "common/logging.h"

namespace rdfmr {

namespace {

struct ShuffleRecord {
  std::string key;
  std::string value;
  uint64_t seq;  // preserves map emission order for stable grouping
};

}  // namespace

Result<JobMetrics> RunJob(SimDfs* dfs, const JobSpec& spec) {
  RDFMR_CHECK(dfs != nullptr);
  if (spec.inputs.empty()) {
    return Status::InvalidArgument("job '" + spec.name + "' has no inputs");
  }
  if (spec.output_path.empty()) {
    return Status::InvalidArgument("job '" + spec.name + "' has no output");
  }

  JobMetrics metrics;
  metrics.job_name = spec.name;
  metrics.full_scans_of_base = spec.full_scans_of_base;

  const bool map_only = (spec.reduce == nullptr);
  int num_reducers = spec.num_reducers > 0
                         ? spec.num_reducers
                         : static_cast<int>(dfs->config().num_reducers);
  RDFMR_CHECK(num_reducers > 0);

  // ---- Map phase -------------------------------------------------------
  std::vector<std::vector<ShuffleRecord>> partitions(
      map_only ? 1 : static_cast<size_t>(num_reducers));
  std::vector<std::string> map_only_output;
  uint64_t seq = 0;

  // Routes one post-combine (key, value) pair into the shuffle, charging
  // the metered shuffle volume.
  auto route = [&](std::string key, std::string value) {
    metrics.map_output_records += 1;
    metrics.map_output_bytes += key.size() + value.size() + 2;
    if (map_only) {
      map_only_output.push_back(std::move(value));
    } else {
      size_t p = static_cast<size_t>(Fnv1a64(key) %
                                     static_cast<uint64_t>(num_reducers));
      partitions[p].push_back(
          ShuffleRecord{std::move(key), std::move(value), seq++});
    }
  };

  for (const MapInput& input : spec.inputs) {
    auto lines = dfs->ReadFile(input.path);
    if (!lines.ok()) {
      return lines.status().WithContext("job '" + spec.name + "' input");
    }
    metrics.input_records += lines->size();
    RDFMR_ASSIGN_OR_RETURN(uint64_t in_bytes, dfs->FileSize(input.path));
    metrics.input_bytes += in_bytes;

    if (spec.combine == nullptr || map_only) {
      MapEmit emit = [&](std::string key, std::string value) {
        route(std::move(key), std::move(value));
      };
      for (const std::string& record : *lines) {
        input.map(record, emit, &metrics.counters);
      }
    } else {
      // Combiner path: buffer this map task's output, combine per key,
      // then shuffle the combined pairs (insertion order preserved).
      std::map<std::string, std::vector<std::string>> task_output;
      std::vector<std::string> key_order;
      MapEmit emit = [&](std::string key, std::string value) {
        metrics.counters["combine_input_records"] += 1;
        auto [it, inserted] = task_output.try_emplace(std::move(key));
        if (inserted) key_order.push_back(it->first);
        it->second.push_back(std::move(value));
      };
      for (const std::string& record : *lines) {
        input.map(record, emit, &metrics.counters);
      }
      for (const std::string& key : key_order) {
        std::vector<std::string> combined =
            spec.combine(key, task_output.at(key), &metrics.counters);
        for (std::string& value : combined) {
          route(key, std::move(value));
        }
      }
    }
  }

  // ---- Shuffle + reduce phase -------------------------------------------
  std::vector<std::string> output;
  if (map_only) {
    output = std::move(map_only_output);
  } else {
    for (std::vector<ShuffleRecord>& part : partitions) {
      // Secondary sort: by key, ties broken by emission order (stable).
      std::sort(part.begin(), part.end(),
                [](const ShuffleRecord& a, const ShuffleRecord& b) {
                  if (a.key != b.key) return a.key < b.key;
                  return a.seq < b.seq;
                });
      RecordEmit emit = [&](std::string record) {
        output.push_back(std::move(record));
      };
      size_t i = 0;
      while (i < part.size()) {
        size_t j = i;
        std::vector<std::string> values;
        while (j < part.size() && part[j].key == part[i].key) {
          values.push_back(std::move(part[j].value));
          ++j;
        }
        metrics.reduce_input_groups += 1;
        spec.reduce(part[i].key, values, emit, &metrics.counters);
        i = j;
      }
      part.clear();
      part.shrink_to_fit();
    }
  }

  // ---- Output materialization --------------------------------------------
  metrics.output_records = output.size();
  for (const std::string& line : output) {
    metrics.output_bytes += line.size() + 1;
  }
  metrics.output_bytes_replicated =
      metrics.output_bytes * dfs->config().replication;

  if (spec.demux == nullptr) {
    Status st = dfs->WriteFile(spec.output_path, std::move(output));
    if (!st.ok()) {
      return st.WithContext("job '" + spec.name + "' output");
    }
  } else {
    // MultipleOutputs: route records to per-suffix files (stable order).
    std::map<std::string, std::vector<std::string>> demuxed;
    for (std::string& line : output) {
      demuxed[spec.demux(line)].push_back(std::move(line));
    }
    for (auto& [suffix, lines] : demuxed) {
      Status st = dfs->WriteFile(spec.output_path + suffix, std::move(lines));
      if (!st.ok()) {
        return st.WithContext("job '" + spec.name + "' output");
      }
    }
    for (const std::string& path : spec.ensure_outputs) {
      if (!dfs->Exists(path)) {
        Status st = dfs->WriteFile(path, {});
        if (!st.ok()) {
          return st.WithContext("job '" + spec.name + "' output");
        }
      }
    }
  }
  return metrics;
}

void JobMetrics::Accumulate(const JobMetrics& other) {
  input_records += other.input_records;
  input_bytes += other.input_bytes;
  map_output_records += other.map_output_records;
  map_output_bytes += other.map_output_bytes;
  reduce_input_groups += other.reduce_input_groups;
  output_records += other.output_records;
  output_bytes += other.output_bytes;
  output_bytes_replicated += other.output_bytes_replicated;
  full_scans_of_base += other.full_scans_of_base;
  for (const auto& [name, value] : other.counters) {
    counters[name] += value;
  }
}

}  // namespace rdfmr
