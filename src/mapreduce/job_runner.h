// Executes a single MapReduce job against a SimDfs instance.

#ifndef RDFMR_MAPREDUCE_JOB_RUNNER_H_
#define RDFMR_MAPREDUCE_JOB_RUNNER_H_

#include "common/result.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "dfs/sim_dfs.h"
#include "mapreduce/job.h"

namespace rdfmr {

/// \brief Execution knobs + observability sink for one job run.
struct JobRunOptions {
  /// Runs map tasks / reducer partitions concurrently when non-null (the
  /// runtime guarantees byte-identical output and metrics either way).
  ThreadPool* pool = nullptr;

  /// Total attempts per DFS task operation for transient failures; 0
  /// defers to ClusterConfig::max_task_attempts, 1 disables retry.
  uint32_t max_attempts = 0;

  /// Span sink: when enabled, the runner opens a "job" span with
  /// map/shuffle/sort/reduce/write phase children (operator spans are
  /// synthesized beneath map/reduce from `op.`-prefixed counters). The
  /// default disabled context costs one pointer compare per phase.
  RunContext ctx;
};

/// \brief Outcome of RunJob: status plus metrics that are *always*
/// populated — complete on success, partial on failure (in particular the
/// retry accounting of an exhausted op, which workflow totals must keep).
/// This replaces the former `failed_job_metrics` out-param.
struct JobRunResult {
  Status status;
  JobMetrics metrics;

  bool ok() const { return status.ok(); }
};

/// \brief Runs `spec` to completion on `dfs`.
///
/// Phases: scan inputs (metered reads) -> map -> hash-partition by
/// Fnv1a64(key) % R -> per-partition stable sort by key -> reduce ->
/// write output (can fail with kOutOfSpace, which is how the paper's
/// failed executions arise).
///
/// When `options.pool` is non-null, the map phase is decomposed into one
/// task per HDFS block of each input (the same granularity
/// SimDfs::BlockCount reports) and tasks run concurrently, each with a
/// private emit buffer and counter map; buffers are merged in (input,
/// block) order behind a barrier. The shuffle's per-partition sort and the
/// per-partition reduce likewise run concurrently across reducer
/// partitions and merge in partition order. Output and every metric
/// except the wall-clock *_seconds fields are therefore byte-identical to
/// the sequential run. The same discipline covers spans: they are opened
/// only on the calling thread, so span structure and non-time attributes
/// are byte-identical across thread counts.
///
/// Fault tolerance: transient DFS failures (kIoError, kUnavailable — the
/// kinds a FaultPlan injects) are re-attempted up to
/// `options.max_attempts` total attempts per read/write, Hadoop-attempt
/// style. Retries are accounted in the metrics' task_attempts /
/// tasks_retried / wasted_bytes / retry_backoff_seconds and never perturb
/// any other metric, so a recovered run is byte-identical to a fault-free
/// run everywhere else. kOutOfSpace and semantic errors are never
/// retried. Output writes are only re-attempted while a FaultPlan is
/// installed (the legacy one-shot InjectWriteFailureAfter hook models an
/// unrecoverable crash).
JobRunResult RunJob(SimDfs* dfs, const JobSpec& spec,
                    const JobRunOptions& options);

/// \brief Deprecated alias for the pre-RunContext signature; forwards to
/// the JobRunOptions overload and copies partial metrics into
/// `failed_job_metrics` on failure. Prefer the overload above.
Result<JobMetrics> RunJob(SimDfs* dfs, const JobSpec& spec,
                          ThreadPool* pool = nullptr,
                          uint32_t max_attempts = 0,
                          JobMetrics* failed_job_metrics = nullptr);

}  // namespace rdfmr

#endif  // RDFMR_MAPREDUCE_JOB_RUNNER_H_
