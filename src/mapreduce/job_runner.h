// Executes a single MapReduce job against a SimDfs instance.

#ifndef RDFMR_MAPREDUCE_JOB_RUNNER_H_
#define RDFMR_MAPREDUCE_JOB_RUNNER_H_

#include "common/result.h"
#include "dfs/sim_dfs.h"
#include "mapreduce/job.h"

namespace rdfmr {

/// \brief Runs `spec` to completion on `dfs`.
///
/// Phases: scan inputs (metered reads) -> map -> hash-partition by
/// Fnv1a64(key) % R -> per-partition stable sort by key -> reduce ->
/// write output (can fail with kOutOfSpace, which is how the paper's
/// failed executions arise). On success returns the job's metrics.
Result<JobMetrics> RunJob(SimDfs* dfs, const JobSpec& spec);

}  // namespace rdfmr

#endif  // RDFMR_MAPREDUCE_JOB_RUNNER_H_
