// Executes a single MapReduce job against a SimDfs instance.

#ifndef RDFMR_MAPREDUCE_JOB_RUNNER_H_
#define RDFMR_MAPREDUCE_JOB_RUNNER_H_

#include "common/result.h"
#include "common/thread_pool.h"
#include "dfs/sim_dfs.h"
#include "mapreduce/job.h"

namespace rdfmr {

/// \brief Runs `spec` to completion on `dfs`.
///
/// Phases: scan inputs (metered reads) -> map -> hash-partition by
/// Fnv1a64(key) % R -> per-partition stable sort by key -> reduce ->
/// write output (can fail with kOutOfSpace, which is how the paper's
/// failed executions arise). On success returns the job's metrics.
///
/// When `pool` is non-null, the map phase is decomposed into one task per
/// HDFS block of each input (the same granularity SimDfs::BlockCount
/// reports) and tasks run concurrently, each with a private emit buffer
/// and counter map; buffers are merged in (input, block) order behind a
/// barrier. The shuffle's per-partition sort and the per-partition reduce
/// likewise run concurrently across reducer partitions and merge in
/// partition order. Output and every metric except the wall-clock
/// *_seconds fields are therefore byte-identical to the sequential run
/// (`pool == nullptr` or a 1-thread pool).
///
/// Fault tolerance: transient DFS failures (kIoError, kUnavailable — the
/// kinds a FaultPlan injects) are re-attempted up to `max_attempts` total
/// attempts per read/write, Hadoop-attempt style; 0 defers to
/// `ClusterConfig::max_task_attempts`. Retries are accounted in the
/// metrics' task_attempts / tasks_retried / wasted_bytes /
/// retry_backoff_seconds and never perturb any other metric, so a
/// recovered run is byte-identical to a fault-free run everywhere else.
/// kOutOfSpace and semantic errors are never retried. Output writes are
/// only re-attempted while a FaultPlan is installed (the legacy one-shot
/// InjectWriteFailureAfter hook models an unrecoverable crash).
///
/// On failure the job's partial metrics — in particular the retry
/// accounting of the exhausted op — are copied into `failed_job_metrics`
/// when non-null, so retry exhaustion stays observable in workflow totals.
Result<JobMetrics> RunJob(SimDfs* dfs, const JobSpec& spec,
                          ThreadPool* pool = nullptr,
                          uint32_t max_attempts = 0,
                          JobMetrics* failed_job_metrics = nullptr);

}  // namespace rdfmr

#endif  // RDFMR_MAPREDUCE_JOB_RUNNER_H_
