// Executes a single MapReduce job against a SimDfs instance.

#ifndef RDFMR_MAPREDUCE_JOB_RUNNER_H_
#define RDFMR_MAPREDUCE_JOB_RUNNER_H_

#include "common/result.h"
#include "common/thread_pool.h"
#include "dfs/sim_dfs.h"
#include "mapreduce/job.h"

namespace rdfmr {

/// \brief Runs `spec` to completion on `dfs`.
///
/// Phases: scan inputs (metered reads) -> map -> hash-partition by
/// Fnv1a64(key) % R -> per-partition stable sort by key -> reduce ->
/// write output (can fail with kOutOfSpace, which is how the paper's
/// failed executions arise). On success returns the job's metrics.
///
/// When `pool` is non-null, the map phase is decomposed into one task per
/// HDFS block of each input (the same granularity SimDfs::BlockCount
/// reports) and tasks run concurrently, each with a private emit buffer
/// and counter map; buffers are merged in (input, block) order behind a
/// barrier. The shuffle's per-partition sort and the per-partition reduce
/// likewise run concurrently across reducer partitions and merge in
/// partition order. Output and every metric except the wall-clock
/// *_seconds fields are therefore byte-identical to the sequential run
/// (`pool == nullptr` or a 1-thread pool).
Result<JobMetrics> RunJob(SimDfs* dfs, const JobSpec& spec,
                          ThreadPool* pool = nullptr);

}  // namespace rdfmr

#endif  // RDFMR_MAPREDUCE_JOB_RUNNER_H_
