#include "mapreduce/workflow.h"

#include <algorithm>
#include <memory>

#include "common/logging.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "mapreduce/job_runner.h"

namespace rdfmr {

std::string DescribeWorkflow(const WorkflowSpec& spec) {
  std::string out = "workflow '" + spec.name + "' (" +
                    std::to_string(spec.jobs.size()) + " MR cycle(s))\n";
  for (size_t i = 0; i < spec.jobs.size(); ++i) {
    const JobSpec& job = spec.jobs[i];
    out += "  MR" + std::to_string(i + 1) + " " + job.name + ": ";
    for (size_t k = 0; k < job.inputs.size(); ++k) {
      if (k > 0) out += " + ";
      out += job.inputs[k].path;
    }
    out += " -> " + job.output_path;
    if (job.demux != nullptr) out += "<demuxed>";
    if (job.reduce == nullptr) out += "  [map-only]";
    if (job.combine != nullptr) out += "  [combiner]";
    if (job.full_scans_of_base > 0) {
      out += "  [" + std::to_string(job.full_scans_of_base) +
             " full scan(s)]";
    }
    out += "\n";
  }
  if (!spec.final_output_path.empty()) {
    out += "  final: " + spec.final_output_path + "\n";
  }
  return out;
}

WorkflowResult RunWorkflow(SimDfs* dfs, const WorkflowSpec& spec,
                           const WorkflowRunOptions& options) {
  WorkflowResult result;
  result.peak_dfs_used_bytes = dfs->UsedBytes();

  // One pool for the whole workflow; with <= 1 thread no workers are
  // spawned and every job runs inline on this thread.
  uint32_t num_threads =
      ResolveNumThreads(options.runtime, dfs->config().num_threads);
  uint32_t max_attempts =
      ResolveMaxAttempts(options.runtime, dfs->config().max_task_attempts);
  std::unique_ptr<ThreadPool> pool;
  if (num_threads > 1) pool = std::make_unique<ThreadPool>(num_threads);

  for (size_t i = 0; i < spec.jobs.size(); ++i) {
    const JobSpec& job = spec.jobs[i];
    RDFMR_LOG(Info) << "workflow '" << spec.name << "': running job "
                    << (i + 1) << "/" << spec.jobs.size() << " '" << job.name
                    << "'";
    ScopedSpan cycle_span(options.ctx, "mr_cycle");
    cycle_span.Attr("cycle", static_cast<uint64_t>(i + 1));
    cycle_span.Attr("job", job.name);
    JobRunOptions job_options;
    job_options.pool = pool.get();
    job_options.max_attempts = max_attempts;
    job_options.ctx = cycle_span.context();
    JobRunResult run = RunJob(dfs, job, job_options);
    if (!run.ok()) {
      result.status =
          run.status.WithContext("workflow '" + spec.name + "'");
      result.failed_job_index = static_cast<int>(i);
      // The failed job's retry accounting (attempts burned before
      // exhaustion) must stay visible in the totals; its other metrics are
      // partial and are deliberately dropped.
      result.totals.task_attempts += run.metrics.task_attempts;
      result.totals.tasks_retried += run.metrics.tasks_retried;
      result.totals.wasted_bytes += run.metrics.wasted_bytes;
      result.totals.retry_backoff_seconds +=
          run.metrics.retry_backoff_seconds;
      break;
    }
    result.job_metrics.push_back(std::move(run.metrics));
    result.totals.Accumulate(result.job_metrics.back());
    result.peak_dfs_used_bytes =
        std::max(result.peak_dfs_used_bytes, dfs->UsedBytes());
  }

  result.modeled_seconds =
      ModelWorkflowSeconds(result.job_metrics, dfs->config(), options.cost);

  // Clean up intermediates (and any partial final output on failure) so the
  // DFS can be reused by the next engine under test.
  for (const std::string& path : spec.intermediate_paths) {
    if (dfs->Exists(path)) {
      Status st = dfs->DeleteFile(path);
      if (!st.ok()) {
        RDFMR_LOG(Warning) << "cleanup failed for " << path << ": "
                           << st.ToString();
      }
    }
  }
  if (!result.ok() && !spec.final_output_path.empty() &&
      dfs->Exists(spec.final_output_path)) {
    (void)dfs->DeleteFile(spec.final_output_path);
  }
  // Demuxed jobs write `output_path + suffix` files whose suffixes are
  // data-dependent, so intermediate_paths cannot list them; sweep them by
  // prefix after a failure (including the failed job itself, which may
  // have materialized some suffix files before running out of space).
  if (!result.ok() && spec.cleanup_demuxed_on_failure) {
    size_t ran_or_failed =
        std::min(spec.jobs.size(),
                 static_cast<size_t>(result.failed_job_index) + 1);
    for (size_t i = 0; i < ran_or_failed; ++i) {
      const JobSpec& job = spec.jobs[i];
      if (job.demux == nullptr) continue;
      for (const std::string& path : dfs->ListFiles()) {
        if (StartsWith(path, job.output_path)) {
          (void)dfs->DeleteFile(path);
        }
      }
      for (const std::string& path : job.ensure_outputs) {
        if (dfs->Exists(path)) (void)dfs->DeleteFile(path);
      }
    }
  }
  return result;
}

WorkflowResult RunWorkflow(SimDfs* dfs, const WorkflowSpec& spec,
                           const CostModelConfig& cost,
                           uint32_t num_threads, uint32_t max_attempts) {
  WorkflowRunOptions options;
  options.cost = cost;
  options.runtime.num_threads = num_threads;
  options.runtime.max_attempts = max_attempts;
  return RunWorkflow(dfs, spec, options);
}

}  // namespace rdfmr
