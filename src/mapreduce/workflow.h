// Multi-job MapReduce workflows.
//
// A workflow is an ordered list of jobs; later jobs consume earlier jobs'
// outputs. As on a real Hadoop deployment, intermediate outputs stay in the
// DFS until the whole workflow finishes (fault-tolerance materialization) —
// this accumulation is exactly what exhausts disk space for redundant
// relational plans in the paper's failed runs.

#ifndef RDFMR_MAPREDUCE_WORKFLOW_H_
#define RDFMR_MAPREDUCE_WORKFLOW_H_

#include <string>
#include <vector>

#include "common/runtime_options.h"
#include "common/status.h"
#include "common/trace.h"
#include "dfs/sim_dfs.h"
#include "mapreduce/cost_model.h"
#include "mapreduce/job.h"

namespace rdfmr {

/// \brief Workflow specification: jobs in execution order plus the paths to
/// clean up afterwards (everything but the final output, typically).
struct WorkflowSpec {
  std::string name;
  std::vector<JobSpec> jobs;
  /// Intermediate DFS paths deleted after the workflow completes or fails.
  std::vector<std::string> intermediate_paths;
  /// Path of the final query answer file.
  std::string final_output_path;
  /// On failure, also delete every file a demuxed job wrote (its
  /// `output_path + suffix` family plus `ensure_outputs`). Demux suffixes
  /// are data-dependent, so `intermediate_paths` cannot enumerate them up
  /// front; without this sweep a failed workflow leaks partial demuxed
  /// outputs into the next run. Callers that scrub a temporary namespace
  /// themselves (e.g. the engine's tmp-prefix cleanup) may disable it to
  /// keep partial outputs observable for post-mortem stats.
  bool cleanup_demuxed_on_failure = true;
};

/// \brief Outcome of executing a workflow.
struct WorkflowResult {
  Status status;                   ///< OK, or the failing job's error
  int failed_job_index = -1;       ///< -1 when status.ok()
  std::vector<JobMetrics> job_metrics;  ///< metrics of completed jobs
  JobMetrics totals;               ///< accumulated over completed jobs
  double modeled_seconds = 0.0;    ///< cost-model time of completed jobs
  uint64_t peak_dfs_used_bytes = 0;  ///< high-water physical DFS usage

  bool ok() const { return status.ok(); }
  size_t num_mr_cycles() const { return job_metrics.size(); }
};

/// \brief Human-readable rendering of a workflow's job graph: one line per
/// job with its inputs, output, and operator hints (used by `rdfmr run
/// --plan` and plan tests).
std::string DescribeWorkflow(const WorkflowSpec& spec);

/// \brief Execution knobs + observability sink for one workflow run.
struct WorkflowRunOptions {
  CostModelConfig cost;

  /// Host-side parallelism and retry budget, resolved against the
  /// cluster config via the RuntimeOptions precedence rule (CLI flag >
  /// RDFMR_THREADS / RDFMR_MAX_ATTEMPTS env > option > config default).
  RuntimeOptions runtime;

  /// Span sink: when enabled, every job runs under an "mr_cycle" span
  /// (attrs: cycle ordinal, job name) whose child is the runner's "job"
  /// span tree. Disabled (default) costs one branch per job.
  RunContext ctx;
};

/// \brief Runs every job in order; stops at the first failure.
///
/// Intermediate paths are removed afterwards in both the success and the
/// failure case (so a failed engine run leaves the DFS reusable for the
/// next engine in a benchmark), but the recorded peak usage reflects the
/// accumulation while the workflow ran.
///
/// `options.runtime.num_threads` selects the host-side execution
/// parallelism of every job's map and reduce phases. Any value yields
/// byte-identical outputs, metrics, and span structure (only wall times
/// differ) — see RunJob.
///
/// `options.runtime.max_attempts` bounds the per-op attempt count for
/// transient DFS failures in every job; retry accounting lands in the job
/// metrics and totals (a failed job's retry accounting is folded into the
/// totals too). Whenever the workflow succeeds, its outputs and every
/// non-retry, non-wall-time metric are byte-identical to a fault-free run.
WorkflowResult RunWorkflow(SimDfs* dfs, const WorkflowSpec& spec,
                           const WorkflowRunOptions& options);

/// \brief Deprecated alias for the pre-RunContext signature; forwards to
/// the WorkflowRunOptions overload. Prefer the overload above.
WorkflowResult RunWorkflow(SimDfs* dfs, const WorkflowSpec& spec,
                           const CostModelConfig& cost = CostModelConfig{},
                           uint32_t num_threads = 0,
                           uint32_t max_attempts = 0);

}  // namespace rdfmr

#endif  // RDFMR_MAPREDUCE_WORKFLOW_H_
