#include "net/address.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/strings.h"

namespace rdfmr {
namespace net {

namespace {

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  return Status::OK();
}

/// Resolves a numeric-or-well-known TCP host. A resolver library is
/// deliberately out of scope: the serving layer binds loopback or
/// wildcard in every deployment this simulator targets, and clients dial
/// numeric addresses.
Result<in_addr> ResolveHost(const std::string& host, bool for_listen) {
  in_addr out{};
  if (host.empty() || host == "*") {
    if (!for_listen) {
      return Status::InvalidArgument(
          "tcp connect address needs an explicit host");
    }
    out.s_addr = htonl(INADDR_ANY);
    return out;
  }
  if (host == "localhost") {
    out.s_addr = htonl(INADDR_LOOPBACK);
    return out;
  }
  if (::inet_pton(AF_INET, host.c_str(), &out) == 1) return out;
  return Status::InvalidArgument("cannot resolve tcp host: " + host +
                                 " (want a numeric IPv4 address, "
                                 "\"localhost\", or \"*\")");
}

Result<sockaddr_un> UnixSockaddr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty()) {
    return Status::InvalidArgument("unix address needs a socket path");
  }
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

Address Address::Unix(std::string socket_path) {
  Address a;
  a.kind = AddressKind::kUnix;
  a.path = std::move(socket_path);
  return a;
}

Address Address::Tcp(std::string tcp_host, uint16_t tcp_port) {
  Address a;
  a.kind = AddressKind::kTcp;
  a.host = std::move(tcp_host);
  a.port = tcp_port;
  return a;
}

Result<Address> Address::Parse(const std::string& spec) {
  if (StartsWith(spec, "unix:")) {
    std::string path = spec.substr(5);
    if (path.empty()) {
      return Status::InvalidArgument("unix address needs a path: " + spec);
    }
    return Unix(std::move(path));
  }
  if (StartsWith(spec, "tcp:")) {
    const std::string rest = spec.substr(4);
    const size_t colon = rest.rfind(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument(
          "tcp address needs HOST:PORT (got \"" + spec + "\")");
    }
    const std::string host = rest.substr(0, colon);
    const std::string port_text = rest.substr(colon + 1);
    if (port_text.empty() ||
        port_text.find_first_not_of("0123456789") != std::string::npos) {
      return Status::InvalidArgument("bad tcp port in \"" + spec + "\"");
    }
    unsigned long port = std::stoul(port_text);
    if (port > 65535) {
      return Status::InvalidArgument("tcp port out of range in \"" + spec +
                                     "\"");
    }
    return Tcp(host, static_cast<uint16_t>(port));
  }
  if (spec.empty()) {
    return Status::InvalidArgument("empty listen/connect address");
  }
  // Bare path: the pre-net `--socket PATH` spelling.
  return Unix(spec);
}

std::string Address::ToString() const {
  if (kind == AddressKind::kUnix) return "unix:" + path;
  return "tcp:" + (host.empty() ? std::string("*") : host) + ":" +
         std::to_string(port);
}

Result<Listener> Listen(const Address& address, int backlog) {
  Listener listener;
  listener.bound = address;
  if (address.kind == AddressKind::kUnix) {
    RDFMR_ASSIGN_OR_RETURN(sockaddr_un addr, UnixSockaddr(address.path));
    listener.fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listener.fd < 0) return Errno("socket");
    ::unlink(address.path.c_str());  // replace a stale socket file
    if (::bind(listener.fd, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      Status st = Errno("bind " + address.ToString());
      ::close(listener.fd);
      return st;
    }
  } else {
    RDFMR_ASSIGN_OR_RETURN(in_addr host, ResolveHost(address.host, true));
    listener.fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listener.fd < 0) return Errno("socket");
    int one = 1;
    ::setsockopt(listener.fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr = host;
    addr.sin_port = htons(address.port);
    if (::bind(listener.fd, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      Status st = Errno("bind " + address.ToString());
      ::close(listener.fd);
      return st;
    }
    if (address.port == 0) {
      // Report the kernel-assigned ephemeral port back to the caller
      // (tests and scripts need it to connect).
      sockaddr_in bound{};
      socklen_t len = sizeof(bound);
      if (::getsockname(listener.fd, reinterpret_cast<sockaddr*>(&bound),
                        &len) == 0) {
        listener.bound.port = ntohs(bound.sin_port);
      }
    }
  }
  if (::listen(listener.fd, backlog) != 0) {
    Status st = Errno("listen " + address.ToString());
    ::close(listener.fd);
    if (address.kind == AddressKind::kUnix) ::unlink(address.path.c_str());
    return st;
  }
  Status st = SetNonBlocking(listener.fd);
  if (!st.ok()) {
    ::close(listener.fd);
    if (address.kind == AddressKind::kUnix) ::unlink(address.path.c_str());
    return st;
  }
  return listener;
}

Result<int> Dial(const Address& address, int* out_errno) {
  if (out_errno != nullptr) *out_errno = 0;
  int fd = -1;
  if (address.kind == AddressKind::kUnix) {
    auto addr = UnixSockaddr(address.path);
    if (!addr.ok()) return addr.status();
    fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
      if (out_errno != nullptr) *out_errno = errno;
      return Errno("socket");
    }
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&*addr),
                  sizeof(*addr)) != 0) {
      if (out_errno != nullptr) *out_errno = errno;
      Status st = Errno("connect " + address.ToString());
      ::close(fd);
      return st;
    }
  } else {
    auto host = ResolveHost(address.host, false);
    if (!host.ok()) return host.status();
    fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
      if (out_errno != nullptr) *out_errno = errno;
      return Errno("socket");
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr = *host;
    addr.sin_port = htons(address.port);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      if (out_errno != nullptr) *out_errno = errno;
      Status st = Errno("connect " + address.ToString());
      ::close(fd);
      return st;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  return fd;
}

}  // namespace net
}  // namespace rdfmr
