// Transport addresses for the serving layer: a parsed `unix:PATH` or
// `tcp:HOST:PORT` endpoint plus the socket plumbing both sides share
// (listener creation for the event loop, Dial for clients).
//
// Accepted spectra:
//   unix:/tmp/rdfmr.sock   AF_UNIX stream socket at that path
//   tcp:127.0.0.1:7687     TCP endpoint; HOST may be a numeric IPv4
//                          address, "localhost", or empty/"*" meaning
//                          INADDR_ANY (listeners only); PORT 0 asks the
//                          kernel for an ephemeral port (the bound
//                          address is reported back via Listen)
//   /tmp/rdfmr.sock        bare paths keep working as AF_UNIX for
//                          backward compatibility with --socket
//
// All sockets are SOCK_STREAM; TCP sockets get TCP_NODELAY (the NDJSON
// protocol writes whole frames, so Nagle only adds latency to pipelined
// round trips).

#ifndef RDFMR_NET_ADDRESS_H_
#define RDFMR_NET_ADDRESS_H_

#include <cstdint>
#include <string>

#include "common/result.h"

namespace rdfmr {
namespace net {

enum class AddressKind { kUnix, kTcp };

struct Address {
  AddressKind kind = AddressKind::kUnix;
  std::string path;  ///< AF_UNIX socket path
  std::string host;  ///< TCP host (empty / "*" = INADDR_ANY for listeners)
  uint16_t port = 0; ///< TCP port (0 = kernel-assigned, listeners only)

  static Address Unix(std::string socket_path);
  static Address Tcp(std::string tcp_host, uint16_t tcp_port);

  /// \brief Parses "unix:PATH", "tcp:HOST:PORT", or a bare AF_UNIX path.
  static Result<Address> Parse(const std::string& spec);

  /// \brief Canonical "unix:..." / "tcp:..." rendering (round-trips
  /// through Parse).
  std::string ToString() const;
};

/// \brief A bound, listening, non-blocking socket plus the address it
/// actually bound (TCP port 0 is resolved to the kernel-assigned port).
struct Listener {
  int fd = -1;
  Address bound;
};

/// \brief Binds and listens on `address` (unlinking a stale AF_UNIX
/// socket file first). The returned fd is non-blocking and close-on-exec.
Result<Listener> Listen(const Address& address, int backlog = 128);

/// \brief Connects a blocking stream socket to `address`. On failure
/// `*out_errno` (when non-null) receives the connect/socket errno so
/// callers can classify transient failures (ECONNREFUSED, ENOENT, ...).
Result<int> Dial(const Address& address, int* out_errno = nullptr);

}  // namespace net
}  // namespace rdfmr

#endif  // RDFMR_NET_ADDRESS_H_
