#include "net/frame.h"

#include <cstring>

namespace rdfmr {
namespace net {

bool LineDecoder::Feed(const char* data, size_t size,
                       std::vector<std::string>* lines) {
  if (overflowed_) return false;
  size_t offset = 0;
  while (offset < size) {
    const char* nl = static_cast<const char*>(
        std::memchr(data + offset, '\n', size - offset));
    const size_t take =
        nl == nullptr ? size - offset : static_cast<size_t>(nl - (data + offset));
    // The cap covers the whole logical line, whether it arrives torn
    // across reads or complete in one chunk.
    if (max_line_bytes_ > 0 && buffer_.size() + take > max_line_bytes_) {
      overflowed_ = true;
      buffer_.clear();
      return false;
    }
    if (nl == nullptr) {
      buffer_.append(data + offset, take);
      break;
    }
    if (buffer_.empty()) {
      if (take > 0) lines->emplace_back(data + offset, take);
    } else {
      buffer_.append(data + offset, take);
      lines->push_back(std::move(buffer_));
      buffer_.clear();
    }
    offset += take + 1;  // skip the newline
  }
  return true;
}

}  // namespace net
}  // namespace rdfmr
