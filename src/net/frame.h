// Incremental NDJSON frame codec. The wire format is one request or
// response per '\n'-terminated line; the decoder turns an arbitrary
// sequence of byte chunks (torn reads included) back into complete
// lines, enforcing a hard per-line byte cap so a runaway or malicious
// peer cannot make the server buffer unbounded input.
//
// The decoder is a plain state machine with no I/O: the event loop feeds
// it recv() chunks, tests feed it adversarial splits directly.

#ifndef RDFMR_NET_FRAME_H_
#define RDFMR_NET_FRAME_H_

#include <cstdint>
#include <string>
#include <vector>

namespace rdfmr {
namespace net {

class LineDecoder {
 public:
  /// \brief `max_line_bytes` caps one line's payload (the '\n' itself is
  /// not counted). 0 means unlimited.
  explicit LineDecoder(uint64_t max_line_bytes = 0)
      : max_line_bytes_(max_line_bytes) {}

  /// \brief Appends `data` and moves every now-complete line into
  /// `*lines` (empty lines are dropped — they are keepalive padding in
  /// NDJSON). Returns false when the partial line exceeds the cap; the
  /// decoder is then poisoned and every later Feed fails too (a stream
  /// cannot resynchronize after an oversize frame).
  bool Feed(const char* data, size_t size, std::vector<std::string>* lines);

  /// \brief Bytes buffered for the current (incomplete) line.
  size_t pending_bytes() const { return buffer_.size(); }
  bool overflowed() const { return overflowed_; }
  uint64_t max_line_bytes() const { return max_line_bytes_; }

 private:
  const uint64_t max_line_bytes_;
  std::string buffer_;
  bool overflowed_ = false;
};

/// \brief Frames one line for the wire: strips nothing, appends '\n'.
/// `line` must not itself contain '\n' (RDFMR_CHECKed by callers that
/// build lines from JsonValue::Dump, which never emits raw newlines).
inline std::string EncodeLine(std::string line) {
  line.push_back('\n');
  return line;
}

}  // namespace net
}  // namespace rdfmr

#endif  // RDFMR_NET_FRAME_H_
