#include "net/net_server.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/metrics.h"

namespace rdfmr {
namespace net {

namespace {
using Clock = std::chrono::steady_clock;
constexpr int kPollMillis = 200;
/// Compact the outbound buffer once the consumed prefix passes this.
constexpr size_t kCompactThreshold = 1ULL << 20;
}  // namespace

struct NetServer::Conn {
  explicit Conn(uint64_t max_line_bytes) : decoder(max_line_bytes) {}

  uint64_t id = 0;
  int fd = -1;
  LineDecoder decoder;

  std::string outbound;
  size_t out_offset = 0;

  bool stalled = false;           ///< POLLIN off until outbound halves
  bool ordered = false;           ///< emit responses in request order
  bool peer_closed = false;       ///< read side hit EOF
  bool close_after_drain = false; ///< oversize frame: flush, then close
  bool broken = false;            ///< write error; close at next sweep

  uint64_t next_seq = 0;   ///< sequence assigned to the next inbound line
  uint64_t next_emit = 0;  ///< ordered mode: next sequence to write
  std::map<uint64_t, std::string> held;  ///< ordered-mode early completions
  uint64_t inflight = 0;

  Clock::time_point last_activity;

  size_t outbound_bytes() const { return outbound.size() - out_offset; }
};

/// Instance counters (relaxed atomics, read by stats()) paired with the
/// process-wide rdfmr_net_* registry series updated in lockstep.
struct NetServer::StatCells {
  std::atomic<uint64_t> accepted{0};
  std::atomic<uint64_t> rejected{0};
  std::atomic<uint64_t> closed{0};
  std::atomic<uint64_t> idle_evicted{0};
  std::atomic<uint64_t> oversize{0};
  std::atomic<uint64_t> stalls{0};
  std::atomic<uint64_t> dispatched{0};
  std::atomic<uint64_t> completed{0};
  std::atomic<uint64_t> read_bytes{0};
  std::atomic<uint64_t> write_bytes{0};
  std::atomic<uint64_t> open{0};
  std::atomic<uint64_t> inflight{0};

  Counter* m_accepted;
  Counter* m_rejected;
  Counter* m_closed;
  Counter* m_idle_evicted;
  Counter* m_oversize;
  Counter* m_stalls;
  Counter* m_requests;
  Counter* m_responses;
  Counter* m_read_bytes;
  Counter* m_write_bytes;
  Gauge* m_open;
  Gauge* m_inflight;

  StatCells() {
    MetricsRegistry& reg = MetricsRegistry::Global();
    m_accepted = reg.GetCounter("rdfmr_net_accepted_total",
                                "connections accepted");
    m_rejected = reg.GetCounter("rdfmr_net_rejected_total",
                                "accepts rejected over the connection limit");
    m_closed = reg.GetCounter("rdfmr_net_closed_total",
                              "connections closed (any reason)");
    m_idle_evicted = reg.GetCounter("rdfmr_net_idle_evicted_total",
                                    "connections evicted by idle timeout");
    m_oversize = reg.GetCounter("rdfmr_net_oversize_frames_total",
                                "inbound frames over the line cap");
    m_stalls = reg.GetCounter(
        "rdfmr_net_backpressure_stalls_total",
        "times a connection's reads were paused on outbound pressure");
    m_requests = reg.GetCounter("rdfmr_net_requests_total",
                                "inbound lines dispatched to the handler");
    m_responses = reg.GetCounter("rdfmr_net_responses_total",
                                 "responses completed back to connections");
    m_read_bytes =
        reg.GetCounter("rdfmr_net_read_bytes", "bytes read from peers");
    m_write_bytes =
        reg.GetCounter("rdfmr_net_write_bytes", "bytes written to peers");
    m_open = reg.GetGauge("rdfmr_net_open_count", "open connections");
    m_inflight = reg.GetGauge("rdfmr_net_inflight_count",
                              "dispatched requests not yet completed");
  }
};

NetServer::NetServer(NetServerOptions options, LineHandler handler)
    : options_(std::move(options)),
      handler_(std::move(handler)),
      stats_(std::make_unique<StatCells>()) {}

NetServer::~NetServer() { Stop(); }

Status NetServer::Start() {
  if (options_.listeners.empty()) {
    return Status::InvalidArgument("net server needs at least one listener");
  }
  int pipe_fds[2];
  if (::pipe2(pipe_fds, O_NONBLOCK | O_CLOEXEC) != 0) {
    return Status::IoError(std::string("pipe2: ") + std::strerror(errno));
  }
  wakeup_read_ = pipe_fds[0];
  wakeup_write_ = pipe_fds[1];

  auto abort_start = [this](Status st) {
    for (Listener& listener : listeners_) {
      ::close(listener.fd);
      if (listener.bound.kind == AddressKind::kUnix) {
        ::unlink(listener.bound.path.c_str());
      }
    }
    listeners_.clear();
    bound_.clear();
    ::close(wakeup_read_);
    ::close(wakeup_write_);
    wakeup_read_ = wakeup_write_ = -1;
    return st;
  };

  for (const Address& address : options_.listeners) {
    Result<Listener> listener = Listen(address);
    if (!listener.ok()) return abort_start(listener.status());
    listeners_.push_back(*listener);
    bound_.push_back(listener->bound);
  }

  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    started_ = true;
  }
  loop_thread_ = std::thread([this] { Loop(); });
  loop_thread_id_ = loop_thread_.get_id();
  return Status::OK();
}

void NetServer::Wait() {
  std::unique_lock<std::mutex> lock(lifecycle_mu_);
  stopped_cv_.wait(lock, [this] {
    return stopped_.load(std::memory_order_acquire) || !started_;
  });
}

void NetServer::Stop() {
  std::thread to_join;
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    if (!started_) return;
    started_ = false;
    to_join = std::move(loop_thread_);
  }
  RequestStop();
  if (to_join.joinable()) to_join.join();
  if (wakeup_read_ >= 0) ::close(wakeup_read_);
  if (wakeup_write_ >= 0) ::close(wakeup_write_);
  wakeup_read_ = wakeup_write_ = -1;
}

void NetServer::RequestStop() {
  bool was_empty;
  {
    std::lock_guard<std::mutex> lock(command_mu_);
    was_empty = commands_.empty();
    Command command;
    command.stop = true;
    commands_.push_back(std::move(command));
  }
  if (was_empty) Wake();
}

void NetServer::Complete(uint64_t conn_id, uint64_t seq, std::string line) {
  if (std::this_thread::get_id() ==
      loop_thread_id_.load(std::memory_order_acquire)) {
    ApplyCompletion(conn_id, seq, std::move(line));
    return;
  }
  // The wakeup byte only matters for the FIRST command the loop has not
  // seen yet: the loop swaps the whole queue out under command_mu_, so a
  // burst of completions (a drained pipeline window) costs one pipe
  // write, not one per response.
  bool was_empty;
  {
    std::lock_guard<std::mutex> lock(command_mu_);
    was_empty = commands_.empty();
    Command command;
    command.conn_id = conn_id;
    command.seq = seq;
    command.line = std::move(line);
    commands_.push_back(std::move(command));
  }
  if (was_empty) Wake();
}

void NetServer::SetOrdered(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  Conn* conn = it->second.get();
  // Only the connection's first request may elect ordered mode: at most
  // that one response can already be on the wire (a fast verb completing
  // inline during its own dispatch), so request order and emission order
  // still coincide.
  if (conn->next_seq <= 1 && conn->next_emit <= 1 && conn->held.empty()) {
    conn->ordered = true;
  }
}

NetServerStats NetServer::stats() const {
  NetServerStats out;
  out.accepted = stats_->accepted.load(std::memory_order_relaxed);
  out.rejected_over_limit = stats_->rejected.load(std::memory_order_relaxed);
  out.closed = stats_->closed.load(std::memory_order_relaxed);
  out.idle_evicted = stats_->idle_evicted.load(std::memory_order_relaxed);
  out.oversize_frames = stats_->oversize.load(std::memory_order_relaxed);
  out.backpressure_stalls = stats_->stalls.load(std::memory_order_relaxed);
  out.lines_dispatched = stats_->dispatched.load(std::memory_order_relaxed);
  out.lines_completed = stats_->completed.load(std::memory_order_relaxed);
  out.read_bytes = stats_->read_bytes.load(std::memory_order_relaxed);
  out.write_bytes = stats_->write_bytes.load(std::memory_order_relaxed);
  out.open_connections = stats_->open.load(std::memory_order_relaxed);
  out.inflight_requests = stats_->inflight.load(std::memory_order_relaxed);
  return out;
}

void NetServer::Wake() {
  if (wakeup_write_ < 0) return;
  const char byte = 1;
  // EAGAIN means the pipe already holds a wakeup; that is enough.
  (void)!::write(wakeup_write_, &byte, 1);
}

void NetServer::DrainWakeupPipe() {
  char sink[256];
  while (::read(wakeup_read_, sink, sizeof(sink)) > 0) {
  }
}

void NetServer::Loop() {
  loop_thread_id_.store(std::this_thread::get_id(),
                        std::memory_order_release);
  std::vector<pollfd> pfds;
  std::vector<uint64_t> pfd_conn_ids;

  for (;;) {
    const bool stopping = stop_requested_.load(std::memory_order_acquire);
    if (stopping && !listeners_closed_) {
      for (Listener& listener : listeners_) {
        ::close(listener.fd);
        if (listener.bound.kind == AddressKind::kUnix) {
          ::unlink(listener.bound.path.c_str());
        }
      }
      listeners_closed_ = true;
    }

    pfds.clear();
    pfd_conn_ids.clear();
    pfds.push_back({wakeup_read_, POLLIN, 0});
    const size_t listener_base = pfds.size();
    if (!listeners_closed_) {
      for (const Listener& listener : listeners_) {
        pfds.push_back({listener.fd, POLLIN, 0});
      }
    }
    const size_t conn_base = pfds.size();
    for (const auto& [id, conn] : conns_) {
      short events = 0;
      if (!stopping && !conn->stalled && !conn->peer_closed &&
          !conn->close_after_drain && !conn->broken) {
        events |= POLLIN;
      }
      if (conn->outbound_bytes() > 0) events |= POLLOUT;
      pfds.push_back({conn->fd, events, 0});
      pfd_conn_ids.push_back(id);
    }

    int timeout = kPollMillis;
    if (options_.idle_timeout_ms > 0) {
      const int granularity =
          static_cast<int>(options_.idle_timeout_ms / 4 + 1);
      if (granularity < timeout) timeout = granularity;
    }
    ::poll(pfds.data(), pfds.size(), timeout);

    if ((pfds[0].revents & POLLIN) != 0) DrainWakeupPipe();

    // Cross-thread commands: completions from worker threads, stop.
    std::vector<Command> commands;
    {
      std::lock_guard<std::mutex> lock(command_mu_);
      commands.swap(commands_);
    }
    for (Command& command : commands) {
      if (command.stop) {
        stop_requested_.store(true, std::memory_order_release);
      } else {
        ApplyCompletion(command.conn_id, command.seq,
                        std::move(command.line));
      }
    }

    if (!listeners_closed_) {
      for (size_t i = 0; i < listeners_.size(); ++i) {
        if ((pfds[listener_base + i].revents & POLLIN) != 0) {
          AcceptFrom(listeners_[i]);
        }
      }
    }

    for (size_t i = 0; i < pfd_conn_ids.size(); ++i) {
      auto it = conns_.find(pfd_conn_ids[i]);
      if (it == conns_.end()) continue;
      Conn* conn = it->second.get();
      const short revents = pfds[conn_base + i].revents;
      if ((revents & (POLLERR | POLLNVAL)) != 0) {
        conn->broken = true;
        continue;
      }
      if ((revents & POLLHUP) != 0 && (revents & POLLIN) == 0) {
        // Peer fully gone and nothing left to read: no point writing.
        conn->broken = true;
        continue;
      }
      if ((revents & POLLOUT) != 0) WriteConn(conn);
      if ((revents & POLLIN) != 0 && !conn->broken) ReadConn(conn);
    }

    // Sweep: broken connections, drained close-after (oversize) and
    // peer-closed connections with nothing pending, idle evictions.
    const Clock::time_point now = Clock::now();
    std::vector<uint64_t> to_close;
    std::vector<bool> evicted;
    for (const auto& [id, conn] : conns_) {
      const bool drained =
          conn->inflight == 0 && conn->outbound_bytes() == 0;
      if (conn->broken ||
          ((conn->peer_closed || conn->close_after_drain) && drained)) {
        to_close.push_back(id);
        evicted.push_back(false);
        continue;
      }
      if (!stopping && options_.idle_timeout_ms > 0 && drained &&
          now - conn->last_activity >=
              std::chrono::milliseconds(options_.idle_timeout_ms)) {
        to_close.push_back(id);
        evicted.push_back(true);
      }
    }
    for (size_t i = 0; i < to_close.size(); ++i) {
      CloseConn(to_close[i], evicted[i]);
    }

    if (stopping && outstanding_.load(std::memory_order_acquire) == 0) {
      bool flushed = true;
      for (const auto& [id, conn] : conns_) {
        if (conn->outbound_bytes() > 0 && !conn->broken) {
          flushed = false;
          break;
        }
      }
      if (flushed) break;
    }
  }

  std::vector<uint64_t> remaining;
  remaining.reserve(conns_.size());
  for (const auto& [id, conn] : conns_) remaining.push_back(id);
  for (uint64_t id : remaining) CloseConn(id, false);

  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    stopped_.store(true, std::memory_order_release);
  }
  stopped_cv_.notify_all();
}

void NetServer::AcceptFrom(const Listener& listener) {
  for (;;) {
    int fd = ::accept4(listener.fd, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN or a transient accept error: next poll retries
    }
    if (conns_.size() >= options_.max_connections) {
      stats_->rejected.fetch_add(1, std::memory_order_relaxed);
      stats_->m_rejected->Increment();
      if (!options_.reject_line.empty()) {
        // Best effort: a loopback socket buffer always takes one line.
        const std::string framed = EncodeLine(options_.reject_line);
        (void)!::send(fd, framed.data(), framed.size(), MSG_NOSIGNAL);
      }
      ::close(fd);
      continue;
    }
    if (listener.bound.kind == AddressKind::kTcp) {
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }
    auto conn = std::make_unique<Conn>(options_.max_line_bytes);
    conn->id = next_conn_id_++;
    conn->fd = fd;
    conn->last_activity = Clock::now();
    stats_->accepted.fetch_add(1, std::memory_order_relaxed);
    stats_->m_accepted->Increment();
    stats_->open.fetch_add(1, std::memory_order_relaxed);
    stats_->m_open->Add(1);
    conns_.emplace(conn->id, std::move(conn));
  }
}

void NetServer::ReadConn(Conn* conn) {
  char chunk[65536];
  std::vector<std::string> lines;
  for (int round = 0; round < 4; ++round) {
    const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n == 0) {
      conn->peer_closed = true;
      break;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno != EAGAIN && errno != EWOULDBLOCK) conn->broken = true;
      break;
    }
    conn->last_activity = Clock::now();
    stats_->read_bytes.fetch_add(static_cast<uint64_t>(n),
                                 std::memory_order_relaxed);
    stats_->m_read_bytes->Increment(static_cast<uint64_t>(n));

    lines.clear();
    const bool frame_ok =
        conn->decoder.Feed(chunk, static_cast<size_t>(n), &lines);
    // Lines completed before an oversize frame are valid requests.
    for (std::string& line : lines) {
      const uint64_t seq = conn->next_seq++;
      conn->inflight++;
      outstanding_.fetch_add(1, std::memory_order_acq_rel);
      stats_->dispatched.fetch_add(1, std::memory_order_relaxed);
      stats_->m_requests->Increment();
      stats_->inflight.fetch_add(1, std::memory_order_relaxed);
      stats_->m_inflight->Add(1);
      handler_(conn->id, seq, std::move(line));
      if (conn->broken) return;
    }
    if (!frame_ok) {
      stats_->oversize.fetch_add(1, std::memory_order_relaxed);
      stats_->m_oversize->Increment();
      if (!options_.oversize_line.empty()) {
        EmitLine(conn, options_.oversize_line);
      }
      conn->close_after_drain = true;
      break;
    }
    if (conn->stalled || conn->close_after_drain) break;
    if (static_cast<size_t>(n) < sizeof(chunk)) break;  // socket drained
  }
}

void NetServer::WriteConn(Conn* conn) {
  while (conn->outbound_bytes() > 0) {
    const ssize_t n =
        ::send(conn->fd, conn->outbound.data() + conn->out_offset,
               conn->outbound_bytes(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno != EAGAIN && errno != EWOULDBLOCK) conn->broken = true;
      break;
    }
    conn->out_offset += static_cast<size_t>(n);
    conn->last_activity = Clock::now();
    stats_->write_bytes.fetch_add(static_cast<uint64_t>(n),
                                  std::memory_order_relaxed);
    stats_->m_write_bytes->Increment(static_cast<uint64_t>(n));
  }
  if (conn->out_offset == conn->outbound.size()) {
    conn->outbound.clear();
    conn->out_offset = 0;
  } else if (conn->out_offset >= kCompactThreshold) {
    conn->outbound.erase(0, conn->out_offset);
    conn->out_offset = 0;
  }
  UpdateStall(conn);
}

void NetServer::EmitLine(Conn* conn, std::string line) {
  conn->outbound += line;
  conn->outbound += '\n';
  // Write eagerly: pipelined responses usually fit the socket buffer and
  // skipping the poll round trip keeps serial callers fast too.
  WriteConn(conn);
}

void NetServer::UpdateStall(Conn* conn) {
  const size_t pending = conn->outbound_bytes();
  if (!conn->stalled && pending > options_.max_outbound_bytes) {
    conn->stalled = true;
    stats_->stalls.fetch_add(1, std::memory_order_relaxed);
    stats_->m_stalls->Increment();
  } else if (conn->stalled &&
             pending <= options_.max_outbound_bytes / 2) {
    conn->stalled = false;
  }
}

void NetServer::ApplyCompletion(uint64_t conn_id, uint64_t seq,
                                std::string line) {
  outstanding_.fetch_sub(1, std::memory_order_acq_rel);
  stats_->completed.fetch_add(1, std::memory_order_relaxed);
  stats_->m_responses->Increment();
  stats_->inflight.fetch_sub(1, std::memory_order_relaxed);
  stats_->m_inflight->Add(-1);
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;  // connection gone: response dropped
  Conn* conn = it->second.get();
  if (conn->inflight > 0) conn->inflight--;
  if (!conn->ordered) {
    // Track the emission frontier anyway so a SetOrdered() that races a
    // first request's inline completion still lines up.
    if (seq + 1 > conn->next_emit) conn->next_emit = seq + 1;
    EmitLine(conn, std::move(line));
    return;
  }
  if (seq != conn->next_emit) {
    conn->held.emplace(seq, std::move(line));
    return;
  }
  EmitLine(conn, std::move(line));
  conn->next_emit++;
  while (!conn->held.empty() &&
         conn->held.begin()->first == conn->next_emit) {
    if (conn->broken) break;
    EmitLine(conn, std::move(conn->held.begin()->second));
    conn->held.erase(conn->held.begin());
    conn->next_emit++;
  }
}

void NetServer::CloseConn(uint64_t conn_id, bool evicted) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  ::close(it->second->fd);
  conns_.erase(it);
  stats_->closed.fetch_add(1, std::memory_order_relaxed);
  stats_->m_closed->Increment();
  stats_->open.fetch_sub(1, std::memory_order_relaxed);
  stats_->m_open->Add(-1);
  if (evicted) {
    stats_->idle_evicted.fetch_add(1, std::memory_order_relaxed);
    stats_->m_idle_evicted->Increment();
  }
}

}  // namespace net
}  // namespace rdfmr
