// Poll(2)-driven transport server: one event-loop thread owns every
// listener and connection (ursadb-coordinator style), speaking
// newline-delimited frames with request pipelining.
//
// Division of labor:
//   * The loop thread accepts, reads, splits frames (net/frame.h), and
//     hands each complete line to the LineHandler together with a
//     (connection id, sequence) pair. The handler runs ON the loop
//     thread and must not block: slow work goes to another thread (the
//     query service's worker pool) and finishes by calling Complete().
//   * Complete(conn, seq, line) is thread-safe and may be called from
//     any thread, inline from the handler or much later; the response is
//     routed back to the loop thread (lock-free fast path when already
//     on it) and written to the connection. Every dispatched line must
//     be completed exactly once — Stop() drains to that contract.
//
// Pipelining: a client may have any number of frames in flight on one
// connection. By default responses are written in COMPLETION order (the
// protocol correlates them by id); a connection switched to ordered mode
// (SetOrdered, first request only) has its responses buffered and
// released strictly in request order.
//
// Backpressure: each connection has a bounded outbound buffer. When a
// peer stops reading and the buffer passes the high watermark, the loop
// stops reading from that connection (POLLIN off) until the buffer
// drains below half the watermark — the kernel socket buffer then fills
// and the peer's sends block, propagating the pressure end to end.
//
// Limits: over-limit accepts receive `reject_line` and are closed;
// oversize frames receive `oversize_line` and the connection drains then
// closes (a stream cannot resynchronize after an oversize frame); idle
// connections (no in-flight requests, nothing buffered) are evicted
// after `idle_timeout_ms`.
//
// Shutdown is cooperative and TSan-clean: RequestStop() (any thread)
// makes the loop stop accepting and reading, finish every in-flight
// request, flush every outbound buffer, then close and exit; Stop()
// additionally joins. All connection state is owned by the loop thread —
// cross-thread traffic is confined to the command queue mutex, a wakeup
// pipe, and relaxed stat atomics.

#ifndef RDFMR_NET_NET_SERVER_H_
#define RDFMR_NET_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "net/address.h"
#include "net/frame.h"

namespace rdfmr {
class Counter;
class Gauge;
}  // namespace rdfmr

namespace rdfmr {
namespace net {

struct NetServerOptions {
  /// Endpoints to listen on (AF_UNIX and TCP freely mixed). TCP port 0
  /// binds an ephemeral port, reported back via bound_addresses().
  std::vector<Address> listeners;
  /// Open connections beyond this are sent `reject_line` and closed.
  uint32_t max_connections = 256;
  /// Hard cap on one inbound line (0 = unlimited).
  uint64_t max_line_bytes = 64ULL << 20;
  /// Outbound high watermark per connection: past it the loop stops
  /// reading from that connection until the buffer halves.
  uint64_t max_outbound_bytes = 8ULL << 20;
  /// Evict connections with no in-flight work after this long (0 = never).
  uint64_t idle_timeout_ms = 0;
  /// Pre-framed line (no '\n') sent to an over-limit accept before close.
  std::string reject_line;
  /// Pre-framed line (no '\n') sent before closing on an oversize frame.
  std::string oversize_line;
};

/// \brief Monotonic per-instance counters (relaxed atomics; the same
/// increments also feed the process-wide rdfmr_net_* registry metrics).
struct NetServerStats {
  uint64_t accepted = 0;
  uint64_t rejected_over_limit = 0;
  uint64_t closed = 0;
  uint64_t idle_evicted = 0;
  uint64_t oversize_frames = 0;
  uint64_t backpressure_stalls = 0;
  uint64_t lines_dispatched = 0;
  uint64_t lines_completed = 0;
  uint64_t read_bytes = 0;
  uint64_t write_bytes = 0;
  uint64_t open_connections = 0;   ///< gauge
  uint64_t inflight_requests = 0;  ///< gauge
};

class NetServer {
 public:
  /// \brief Called on the loop thread for every complete inbound line.
  /// `seq` counts lines per connection from 0; the pair (conn_id, seq)
  /// must be answered with exactly one Complete() call.
  using LineHandler =
      std::function<void(uint64_t conn_id, uint64_t seq, std::string line)>;

  NetServer(NetServerOptions options, LineHandler handler);
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// \brief Binds every listener and starts the loop thread. On any bind
  /// failure nothing is left listening.
  Status Start();

  /// \brief Blocks until the loop has fully stopped.
  void Wait();

  /// \brief RequestStop() + join. Idempotent, callable concurrently.
  void Stop();

  /// \brief Asynchronous stop from any thread (e.g. a shutdown verb's
  /// completion): drains in-flight requests and flushes before closing.
  void RequestStop();

  /// \brief Queues `line` as the response to dispatched request
  /// (conn_id, seq). Thread-safe; if the connection is already gone the
  /// response is dropped (the request still counts as drained).
  void Complete(uint64_t conn_id, uint64_t seq, std::string line);

  /// \brief Switches `conn_id` to ordered response emission. Loop-thread
  /// only (i.e. from inside the LineHandler), and honored only while the
  /// first request of the connection is being dispatched — pipelined
  /// streams cannot change ordering mid-flight.
  void SetOrdered(uint64_t conn_id);

  /// \brief The addresses actually bound (TCP port 0 resolved). Valid
  /// after a successful Start().
  const std::vector<Address>& bound_addresses() const { return bound_; }

  bool stopped() const { return stopped_.load(std::memory_order_acquire); }

  NetServerStats stats() const;

 private:
  struct Conn;
  struct Command {
    uint64_t conn_id = 0;
    uint64_t seq = 0;
    std::string line;
    bool stop = false;
  };

  void Loop();
  void AcceptFrom(const Listener& listener);
  void ReadConn(Conn* conn);
  void WriteConn(Conn* conn);
  void EmitLine(Conn* conn, std::string line);
  void ApplyCompletion(uint64_t conn_id, uint64_t seq, std::string line);
  void UpdateStall(Conn* conn);
  void CloseConn(uint64_t conn_id, bool evicted);
  void DrainWakeupPipe();
  void Wake();

  const NetServerOptions options_;
  const LineHandler handler_;

  std::vector<Listener> listeners_;
  std::vector<Address> bound_;
  int wakeup_read_ = -1;
  int wakeup_write_ = -1;

  std::thread loop_thread_;
  std::atomic<std::thread::id> loop_thread_id_{};

  // Loop-thread-owned state.
  std::unordered_map<uint64_t, std::unique_ptr<Conn>> conns_;
  uint64_t next_conn_id_ = 1;
  bool listeners_closed_ = false;

  // Cross-thread command queue (completions, stop).
  std::mutex command_mu_;
  std::vector<Command> commands_;

  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<uint64_t> outstanding_{0};  ///< dispatched, not yet completed

  std::mutex lifecycle_mu_;  ///< guards started_ and the join in Stop()
  bool started_ = false;
  std::condition_variable stopped_cv_;

  // Instance stats (relaxed) + registry metrics (see net_server.cc).
  struct StatCells;
  std::unique_ptr<StatCells> stats_;
};

}  // namespace net
}  // namespace rdfmr

#endif  // RDFMR_NET_NET_SERVER_H_
