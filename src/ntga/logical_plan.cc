#include "ntga/logical_plan.h"

#include <functional>
#include <numeric>

#include "common/strings.h"

namespace rdfmr {

const char* NtgaStrategyToString(NtgaStrategy strategy) {
  switch (strategy) {
    case NtgaStrategy::kEager:
      return "EagerUnnest";
    case NtgaStrategy::kLazyFull:
      return "LazyUnnest(full)";
    case NtgaStrategy::kLazyPartial:
      return "LazyUnnest(partial)";
    case NtgaStrategy::kLazyAuto:
      return "LazyUnnest";
  }
  return "?";
}

namespace {

// Resolves where the join variable lives within one side's relation.
// Preference order: star subject, bound-pattern object, unbound-pattern
// object — joining on a subject or bound object never forces an unnest.
Result<JoinSidePlan> ResolveSide(const GraphPatternQuery& query,
                                 std::vector<uint32_t> stars,
                                 const std::string& var) {
  JoinSidePlan side;
  side.stars = std::move(stars);
  for (uint32_t s : side.stars) {
    if (query.stars()[s].subject_var == var) {
      side.site_star = s;
      side.site_tp = -1;
      side.site_unbound = false;
      return side;
    }
  }
  for (uint32_t s : side.stars) {
    const StarPattern& star = query.stars()[s];
    for (size_t p = 0; p < star.patterns.size(); ++p) {
      const TriplePattern& tp = star.patterns[p];
      if (tp.property_bound && tp.object.is_variable() &&
          tp.object.value == var) {
        side.site_star = s;
        side.site_tp = static_cast<int>(p);
        side.site_unbound = false;
        return side;
      }
    }
  }
  for (uint32_t s : side.stars) {
    const StarPattern& star = query.stars()[s];
    for (size_t p = 0; p < star.patterns.size(); ++p) {
      const TriplePattern& tp = star.patterns[p];
      if (!tp.property_bound && tp.object.is_variable() &&
          tp.object.value == var) {
        side.site_star = s;
        side.site_tp = static_cast<int>(p);
        side.site_unbound = true;
        return side;
      }
    }
  }
  return Status::InvalidArgument("join variable ?" + var +
                                 " not found on one side");
}

// Chooses the unnest placement for a join side (rules R4/R5).
UnnestPlacement PlaceUnnest(const GraphPatternQuery& query,
                            const JoinSidePlan& side, NtgaStrategy strategy) {
  if (!side.site_unbound) return UnnestPlacement::kNone;
  if (strategy == NtgaStrategy::kEager) {
    // Already unnested at the grouping cycle; the map just reads the pin.
    return UnnestPlacement::kNone;
  }
  if (strategy == NtgaStrategy::kLazyFull) return UnnestPlacement::kLazyFull;
  if (strategy == NtgaStrategy::kLazyPartial) {
    return UnnestPlacement::kLazyPartial;
  }
  // kLazyAuto: partially-bound objects shrink the candidate set enough that
  // a full unnest is cheap; fully unbound objects benefit from φ_m.
  const TriplePattern& tp =
      query.stars()[side.site_star]
          .patterns[static_cast<size_t>(side.site_tp)];
  if (tp.object.partially_bound() || tp.object.is_constant()) {
    return UnnestPlacement::kLazyFull;
  }
  return UnnestPlacement::kLazyPartial;
}

}  // namespace

Result<NtgaLogicalPlan> RewriteToNtga(const GraphPatternQuery& query,
                                      NtgaStrategy strategy) {
  NtgaLogicalPlan plan;
  plan.strategy = strategy;

  // R1/R2/R3: one grouping cycle; per star, group-filter flavor and (for
  // the eager strategy) an immediate μ^β.
  for (const StarPattern& star : query.stars()) {
    plan.beta_filter.push_back(star.HasUnbound());
    plan.eager_unnest.push_back(strategy == NtgaStrategy::kEager &&
                                star.HasUnbound());
  }

  // Join cycles: union-find over stars; residual predicates (joins between
  // stars already connected) are enforced during expansion.
  std::vector<size_t> component(query.stars().size());
  std::iota(component.begin(), component.end(), 0);
  std::vector<std::vector<uint32_t>> members(query.stars().size());
  for (size_t s = 0; s < query.stars().size(); ++s) {
    members[s] = {static_cast<uint32_t>(s)};
  }
  std::function<size_t(size_t)> find = [&](size_t x) {
    while (component[x] != x) x = component[x] = component[component[x]];
    return x;
  };

  for (const StarJoin& join : query.joins()) {
    size_t a = find(join.left_star);
    size_t b = find(join.right_star);
    if (a == b) continue;

    JoinCyclePlan cycle;
    cycle.variable = join.variable;
    cycle.kind = join.kind;
    RDFMR_ASSIGN_OR_RETURN(cycle.left,
                           ResolveSide(query, members[a], join.variable));
    RDFMR_ASSIGN_OR_RETURN(cycle.right,
                           ResolveSide(query, members[b], join.variable));
    cycle.left.unnest = PlaceUnnest(query, cycle.left, strategy);
    cycle.right.unnest = PlaceUnnest(query, cycle.right, strategy);
    cycle.partial = cycle.left.unnest == UnnestPlacement::kLazyPartial ||
                    cycle.right.unnest == UnnestPlacement::kLazyPartial;
    plan.joins.push_back(std::move(cycle));

    members[a].insert(members[a].end(), members[b].begin(), members[b].end());
    members[b].clear();
    component[b] = a;
  }
  return plan;
}

std::string NtgaLogicalPlan::ToString(const GraphPatternQuery& query) const {
  std::string out =
      StringFormat("NTGA plan [%s] for %s\n", NtgaStrategyToString(strategy),
                   query.name().c_str());
  out += "  MR1: \xCE\xB3_S(T) -> ";  // γ
  for (size_t s = 0; s < query.stars().size(); ++s) {
    if (s > 0) out += " \xE2\x88\xAA ";  // ∪
    const StarPattern& star = query.stars()[s];
    std::string props;
    for (const std::string& p : star.BoundProperties()) {
      if (!props.empty()) props += ",";
      props += p;
    }
    out += StringFormat("%s_{%s}[EC%zu]",
                        beta_filter[s] ? "\xCF\x83^\xCE\xB2\xCE\xB3"   // σ^βγ
                                       : "\xCF\x83^\xCE\xB3",          // σ^γ
                        props.c_str(), s);
    if (eager_unnest[s]) out += " |> \xCE\xBC^\xCE\xB2";  // μ^β
  }
  out += "\n";
  for (size_t j = 0; j < joins.size(); ++j) {
    const JoinCyclePlan& cycle = joins[j];
    auto side_str = [&](const JoinSidePlan& side) {
      std::string s = StringFormat("EC%u", side.site_star);
      if (side.unnest == UnnestPlacement::kLazyFull) {
        s += ".map:\xCE\xBC^\xCE\xB2";  // μ^β
      } else if (side.unnest == UnnestPlacement::kLazyPartial) {
        s += ".map:\xCE\xBC^\xCE\xB2_\xCF\x86m";  // μ^β_φm
      }
      return s;
    };
    out += StringFormat(
        "  MR%zu: %s \xE2\x8B\x88_{?%s} %s  (%s%s)\n", j + 2,
        side_str(cycle.left).c_str(), cycle.variable.c_str(),
        side_str(cycle.right).c_str(), StarJoinKindToString(cycle.kind),
        cycle.partial ? ", TG_OptUnbJoin" : "");
  }
  return out;
}

}  // namespace rdfmr
