// Query rewrite rules: translation of (unbound-property) graph pattern
// queries into NTGA logical plans.
//
// The rewrite implements the paper's rules:
//   R1  all-bound star St           ->  σ^γ_{P}(γ_S(T))
//   R2  unbound star St_u           ->  μ^β(σ^βγ_{P_bnd}(γ_S(T)))   (Lemma 1)
//   R3  n stars                     ->  ONE γ_S(T) + disjunctive selection
//                                       (all star-joins in a single MR cycle)
//   R4  lazy placement: delay μ^β to the map phase of the first MR cycle
//       whose join key is the unbound pattern's object; unbound patterns
//       never joined on are never unnested (stay implicit to the end)
//   R5  partial substitution: μ^β -> μ^β_φm when the joining object is
//       fully unbound; a full μ^β suffices for partially-bound objects
//       (the paper's empirically chosen LazyUnnest policy, Fig. 11)

#ifndef RDFMR_NTGA_LOGICAL_PLAN_H_
#define RDFMR_NTGA_LOGICAL_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "query/pattern.h"

namespace rdfmr {

/// \brief β-unnesting evaluation strategies (Section 4 of the paper).
enum class NtgaStrategy {
  kEager,        ///< μ^β at the reduce side of the star-join cycle
  kLazyFull,     ///< full μ^β at the map side of the join that needs it
  kLazyPartial,  ///< μ^β_φm at the map side of the join that needs it
  kLazyAuto,     ///< paper's LazyUnnest: full for partially-bound objects,
                 ///< partial for unbound objects
};

const char* NtgaStrategyToString(NtgaStrategy strategy);

/// \brief What happens to an unbound pattern at a join's map phase.
enum class UnnestPlacement { kNone, kLazyFull, kLazyPartial };

/// \brief One side of a planned triplegroup join.
struct JoinSidePlan {
  /// Stars contained in this side's relation (one for a star EC, several
  /// for the output of earlier joins).
  std::vector<uint32_t> stars;
  /// Star whose pattern carries the join variable.
  uint32_t site_star = 0;
  /// Pattern index within site_star whose object is the join variable;
  /// -1 when the variable is the star's subject.
  int site_tp = -1;
  /// True when site_tp refers to an unbound-property pattern.
  bool site_unbound = false;
  /// Unnest action at this join's map phase.
  UnnestPlacement unnest = UnnestPlacement::kNone;
};

/// \brief One planned join cycle (TG_Join / TG_UnbJoin / TG_OptUnbJoin).
struct JoinCyclePlan {
  std::string variable;
  StarJoinKind kind = StarJoinKind::kObjectSubject;
  JoinSidePlan left;
  JoinSidePlan right;
  /// φ_m-keyed join (TG_OptUnbJoin) when any side partially unnests.
  bool partial = false;
};

/// \brief Whole-query NTGA logical plan.
struct NtgaLogicalPlan {
  NtgaStrategy strategy = NtgaStrategy::kLazyAuto;
  /// Per star: does the grouping cycle apply σ^βγ (true) or σ^γ (false)?
  std::vector<bool> beta_filter;
  /// Per star: eager μ^β applied at the grouping cycle's reduce side?
  std::vector<bool> eager_unnest;
  /// Join cycles in execution order (residual predicates are enforced
  /// during expansion, not as separate cycles).
  std::vector<JoinCyclePlan> joins;

  /// \brief Algebra-style rendering (used by docs and rewrite-rule tests).
  std::string ToString(const GraphPatternQuery& query) const;
};

/// \brief Applies the rewrite rules to `query` under `strategy`.
Result<NtgaLogicalPlan> RewriteToNtga(const GraphPatternQuery& query,
                                      NtgaStrategy strategy);

}  // namespace rdfmr

#endif  // RDFMR_NTGA_LOGICAL_PLAN_H_
