#include "ntga/ntga_compiler.h"

#include <map>
#include <memory>
#include <set>

#include "common/strings.h"
#include "ntga/operators.h"
#include "query/matcher.h"

namespace rdfmr {

namespace {

using QueryPtr = std::shared_ptr<const GraphPatternQuery>;

// Vertical-partition hint for the shared group scan over `queries`: the
// union of every pattern's property constant when ALL patterns across all
// queries are property-bound, null (scan everything) as soon as any
// pattern's property is a variable. Sound: the group mappers below emit
// nothing and touch no counter for a well-formed triple whose property
// matches no bound pattern, so a mapped scan may skip those triples
// without changing answers or deterministic metrics.
std::shared_ptr<const std::vector<std::string>> GroupScanHint(
    const std::vector<QueryPtr>& queries) {
  std::vector<std::string> properties;
  for (const QueryPtr& q : queries) {
    for (const TriplePattern& tp : q->patterns()) {
      if (!tp.property_bound) return nullptr;
      properties.push_back(tp.property);
    }
  }
  return std::make_shared<const std::vector<std::string>>(
      std::move(properties));
}

std::string EcPath(const std::string& tmp_prefix, size_t star) {
  return StringFormat("%s/ec%zu", tmp_prefix.c_str(), star);
}

// Replaces the component of `jtg` belonging to `star_id` with `replacement`.
JoinedTg ReplaceComponent(const JoinedTg& jtg, uint32_t star_id,
                          AnnTg replacement) {
  JoinedTg out = jtg;
  for (AnnTg& c : out.components) {
    if (c.star_id == star_id) {
      c = std::move(replacement);
      return out;
    }
  }
  out.components.push_back(std::move(replacement));
  return out;
}

// ---- Job 1: TG_GroupBy + TG_(Unb)GrpFilter ---------------------------------

MapFn MakeGroupMapper(QueryPtr query) {
  return [query](const std::string& record, const MapEmit& emit,
                 Counters* counters) {
    Result<Triple> t = Triple::Deserialize(record);
    if (!t.ok()) {
      (*counters)["bad_records"] += 1;
      return;
    }
    // NTGA's shared scan: the triple is shuffled once if relevant to any
    // pattern of any star subpattern.
    for (const TriplePattern& tp : query->patterns()) {
      bool property_ok =
          tp.property_bound ? tp.property == t->property : true;
      if (property_ok && tp.object.Matches(t->object)) {
        emit(t->subject, record);
        return;
      }
    }
  };
}

ReduceFn MakeGroupReducer(QueryPtr query, NtgaLogicalPlan plan) {
  return [query, plan = std::move(plan)](
             const std::string& key, const std::vector<std::string>& values,
             const RecordEmit& emit, Counters* counters) {
    std::set<PropObj> distinct;
    for (const std::string& v : values) {
      Result<Triple> t = Triple::Deserialize(v);
      if (t.ok()) distinct.insert(PropObj{t->property, t->object});
    }
    std::vector<PropObj> pairs(distinct.begin(), distinct.end());
    (*counters)["subject_groups"] += 1;

    bool matched_any = false;
    for (size_t s = 0; s < query->stars().size(); ++s) {
      const StarPattern& star = query->stars()[s];
      const bool unbound = star.HasUnbound();
      (*counters)[unbound ? "op.sigma_beta_gamma.input_groups"
                          : "op.sigma_gamma.input_groups"] += 1;
      std::optional<AnnTg> tg =
          BuildAnnTg(star, static_cast<uint32_t>(s), key, pairs);
      if (!tg.has_value()) continue;
      (*counters)[unbound ? "op.sigma_beta_gamma.output_groups"
                          : "op.sigma_gamma.output_groups"] += 1;
      matched_any = true;
      if (plan.eager_unnest[s]) {
        std::vector<AnnTg> unnested = BetaUnnest(star, *tg);
        (*counters)["eager_unnest_tgs"] += unnested.size();
        (*counters)["op.mu_beta.calls"] += 1;
        (*counters)["op.mu_beta.output_groups"] += unnested.size();
        for (const AnnTg& out : unnested) emit(out.Serialize());
      } else {
        tg->Compact(star);
        (*counters)["anntgs"] += 1;
        emit(tg->Serialize());
      }
    }
    if (!matched_any) (*counters)["filtered_groups"] += 1;
  };
}

// ---- Job 2..k: TG_Join / TG_UnbJoin / TG_OptUnbJoin -------------------------

// Enumerates the concrete join-key values of `jtg` at `side`'s site. For an
// unbound site the candidates are the (possibly overridden/pinned) pairs;
// each candidate yields a pinned copy of the triplegroup.
std::vector<std::pair<std::string, JoinedTg>> JoinValueExpansions(
    const StarPattern& star, const JoinSidePlan& side, const JoinedTg& jtg) {
  std::vector<std::pair<std::string, JoinedTg>> out;
  const AnnTg* comp = jtg.ComponentForStar(side.site_star);
  if (comp == nullptr) return out;

  if (side.site_tp < 0) {
    out.emplace_back(comp->subject, jtg);
    return out;
  }
  const TriplePattern& tp =
      star.patterns[static_cast<size_t>(side.site_tp)];
  if (!side.site_unbound) {
    auto it = comp->pairs.find(tp.property);
    if (it == comp->pairs.end()) return out;
    for (const std::string& o : it->second) {
      if (tp.object.Matches(o)) out.emplace_back(o, jtg);
    }
    return out;
  }
  // Unbound site: pin each candidate (completes the β-unnest).
  for (const PropObj& cand :
       UnboundCandidates(star, *comp, static_cast<size_t>(side.site_tp))) {
    AnnTg pinned = *comp;
    pinned.overrides[static_cast<uint32_t>(side.site_tp)] = {cand};
    pinned.Compact(star);
    out.emplace_back(cand.object,
                     ReplaceComponent(jtg, side.site_star, std::move(pinned)));
  }
  return out;
}

MapFn MakeJoinSideMapper(StarPattern star, JoinSidePlan side,
                         std::string tag, bool partial, uint32_t m) {
  return [star = std::move(star), side = std::move(side),
          tag = std::move(tag), partial,
          m](const std::string& record, const MapEmit& emit,
             Counters* counters) {
    Result<JoinedTg> jtg = JoinedTg::Deserialize(record);
    if (!jtg.ok()) {
      (*counters)["bad_records"] += 1;
      return;
    }
    const AnnTg* comp = jtg->ComponentForStar(side.site_star);
    if (comp == nullptr) {
      (*counters)["bad_records"] += 1;
      return;
    }

    if (side.unnest == UnnestPlacement::kLazyPartial) {
      // TG_OptUnbJoin map: partial β-unnest; one output per φ_m partition,
      // keyed by the partition — triplegroups bound for the same reducer
      // stay implicitly represented.
      auto partitions = PartialBetaUnnest(
          star, *comp, static_cast<size_t>(side.site_tp), m);
      (*counters)["partial_unnest_tgs"] += partitions.size();
      (*counters)["op.mu_beta_phi.calls"] += 1;
      (*counters)["op.mu_beta_phi.output_groups"] += partitions.size();
      for (auto& [partition, restricted] : partitions) {
        JoinedTg out =
            ReplaceComponent(*jtg, side.site_star, std::move(restricted));
        emit("p" + std::to_string(partition), tag + "|" + out.Serialize());
      }
      return;
    }

    // Subject / bound-object sites, or full β-unnest at the map side
    // (TG_UnbJoin): enumerate concrete join values.
    std::vector<std::pair<std::string, JoinedTg>> expansions =
        JoinValueExpansions(star, side, *jtg);
    if (side.site_unbound) {
      (*counters)["map_beta_unnest_tgs"] += expansions.size();
      (*counters)["op.mu_beta.calls"] += 1;
      (*counters)["op.mu_beta.output_groups"] += expansions.size();
    }
    if (!partial) {
      for (auto& [value, out] : expansions) {
        emit(value, tag + "|" + out.Serialize());
      }
    } else {
      // The other side of a TG_OptUnbJoin: key by the value's partition.
      // A nested group with several values in one partition is sent once.
      std::map<uint32_t, std::vector<std::pair<std::string, JoinedTg>>>
          by_partition;
      for (auto& [value, out] : expansions) {
        by_partition[PhiPartition(value, m)].emplace_back(value,
                                                          std::move(out));
      }
      for (auto& [partition, entries] : by_partition) {
        if (side.site_unbound || side.site_tp < 0) {
          // Pinned copies differ; send each.
          for (auto& [value, out] : entries) {
            emit("p" + std::to_string(partition),
                 tag + "|" + out.Serialize());
          }
        } else {
          // Bound-object site: the group itself is unchanged across its
          // values — one copy per partition suffices.
          emit("p" + std::to_string(partition),
               tag + "|" + entries.front().second.Serialize());
        }
      }
    }
  };
}

ReduceFn MakePlainJoinReducer() {
  return [](const std::string& /*key*/,
            const std::vector<std::string>& values, const RecordEmit& emit,
            Counters* counters) {
    std::vector<JoinedTg> lefts, rights;
    for (const std::string& v : values) {
      std::vector<std::string> parts = SplitN(v, '|', 2);
      if (parts.size() != 2) continue;
      Result<JoinedTg> jtg = JoinedTg::Deserialize(parts[1]);
      if (!jtg.ok()) {
        (*counters)["bad_records"] += 1;
        continue;
      }
      (parts[0] == "L" ? lefts : rights).push_back(jtg.MoveValueUnsafe());
    }
    (*counters)["op.tg_join.input_groups"] += lefts.size() + rights.size();
    for (const JoinedTg& l : lefts) {
      for (const JoinedTg& r : rights) {
        JoinedTg joined = l;
        joined.components.insert(joined.components.end(),
                                 r.components.begin(), r.components.end());
        (*counters)["joined_tgs"] += 1;
        (*counters)["op.tg_join.output_groups"] += 1;
        emit(joined.Serialize());
      }
    }
  };
}

// TG_OptUnbJoin reduce (Algorithm 3): all groups of one φ_m partition land
// here; complete the β-unnest, hash by the actual join key, and join.
ReduceFn MakePartialJoinReducer(StarPattern left_star, JoinSidePlan left,
                                StarPattern right_star,
                                JoinSidePlan right) {
  return [left_star = std::move(left_star), left = std::move(left),
          right_star = std::move(right_star), right = std::move(right)](
             const std::string& /*key*/,
             const std::vector<std::string>& values, const RecordEmit& emit,
             Counters* counters) {
    std::map<std::string, std::vector<JoinedTg>> left_hash, right_hash;
    for (const std::string& v : values) {
      std::vector<std::string> parts = SplitN(v, '|', 2);
      if (parts.size() != 2) continue;
      Result<JoinedTg> jtg = JoinedTg::Deserialize(parts[1]);
      if (!jtg.ok()) {
        (*counters)["bad_records"] += 1;
        continue;
      }
      const JoinSidePlan& side = parts[0] == "L" ? left : right;
      const StarPattern& star = parts[0] == "L" ? left_star : right_star;
      auto& hash = parts[0] == "L" ? left_hash : right_hash;
      for (auto& [value, expanded] :
           JoinValueExpansions(star, side, *jtg)) {
        hash[value].push_back(std::move(expanded));
      }
    }
    for (const auto& [value, lefts] : left_hash) {
      auto it = right_hash.find(value);
      if (it == right_hash.end()) continue;
      for (const JoinedTg& l : lefts) {
        for (const JoinedTg& r : it->second) {
          JoinedTg joined = l;
          joined.components.insert(joined.components.end(),
                                   r.components.begin(), r.components.end());
          (*counters)["joined_tgs"] += 1;
          (*counters)["op.tg_join.output_groups"] += 1;
          emit(joined.Serialize());
        }
      }
    }
  };
}

// Builds the join cycles of one query within a (possibly batched) plan.
// `star_offset` maps the query's local star indexes to the global ids its
// records carry; EC files follow the global numbering.
void AppendJoinCycles(QueryPtr query, const NtgaLogicalPlan& plan,
                      uint32_t star_offset, const std::string& tmp_prefix,
                      const std::string& name_prefix,
                      const std::string& path_prefix,
                      const NtgaOptions& options, WorkflowSpec* workflow,
                      std::string* final_path) {
  std::map<uint32_t, std::string> current_path;
  for (size_t s = 0; s < query->stars().size(); ++s) {
    current_path[static_cast<uint32_t>(s)] =
        EcPath(tmp_prefix, star_offset + s);
  }
  for (size_t j = 0; j < plan.joins.size(); ++j) {
    JoinCyclePlan cycle = plan.joins[j];
    const std::string& left_path = current_path[cycle.left.stars[0]];
    const std::string& right_path = current_path[cycle.right.stars[0]];
    const StarPattern& left_star = query->stars()[cycle.left.site_star];
    const StarPattern& right_star = query->stars()[cycle.right.site_star];

    // Records carry global component ids.
    JoinSidePlan left_side = cycle.left;
    left_side.site_star += star_offset;
    JoinSidePlan right_side = cycle.right;
    right_side.site_star += star_offset;

    JobSpec job;
    job.name = StringFormat(
        "%s%s-%zu-on-%s", name_prefix.c_str(),
        cycle.partial ? "tg-optunbjoin"
                      : (cycle.left.unnest != UnnestPlacement::kNone ||
                                 cycle.right.unnest != UnnestPlacement::kNone
                             ? "tg-unbjoin"
                             : "tg-join"),
        j, cycle.variable.c_str());
    job.inputs.push_back(
        MapInput{left_path,
                 MakeJoinSideMapper(left_star, left_side, "L",
                                    cycle.partial, options.phi_partitions)});
    job.inputs.push_back(
        MapInput{right_path,
                 MakeJoinSideMapper(right_star, right_side, "R",
                                    cycle.partial, options.phi_partitions)});
    job.reduce = cycle.partial
                     ? MakePartialJoinReducer(left_star, left_side,
                                              right_star, right_side)
                     : MakePlainJoinReducer();
    job.output_path = StringFormat("%s/%sjoin%zu", tmp_prefix.c_str(),
                                   path_prefix.c_str(), j);
    std::string new_path = job.output_path;
    workflow->jobs.push_back(std::move(job));

    for (uint32_t s : cycle.left.stars) current_path[s] = new_path;
    for (uint32_t s : cycle.right.stars) current_path[s] = new_path;
  }
  *final_path = plan.joins.empty()
                    ? EcPath(tmp_prefix, star_offset)
                    : StringFormat("%s/%sjoin%zu", tmp_prefix.c_str(),
                                   path_prefix.c_str(),
                                   plan.joins.size() - 1);
}

}  // namespace

Result<NtgaBatchPlan> CompileSharedNtgaPlan(
    const std::vector<QueryPtr>& queries, const std::string& base_path,
    const std::string& tmp_prefix, const NtgaOptions& options) {
  if (queries.empty()) {
    return Status::InvalidArgument("empty query batch");
  }
  for (const QueryPtr& q : queries) {
    if (q == nullptr) return Status::InvalidArgument("null query in batch");
  }

  // Global star numbering + per-query rewritten plans.
  std::vector<uint32_t> offsets;
  std::vector<StarPattern> all_stars;
  std::vector<NtgaLogicalPlan> plans;
  for (const QueryPtr& q : queries) {
    offsets.push_back(static_cast<uint32_t>(all_stars.size()));
    all_stars.insert(all_stars.end(), q->stars().begin(), q->stars().end());
    RDFMR_ASSIGN_OR_RETURN(NtgaLogicalPlan plan,
                           RewriteToNtga(*q, options.strategy));
    plans.push_back(std::move(plan));
  }

  NtgaBatchPlan out;
  out.workflow.name = StringFormat(
      "batch-of-%zu/ntga-%s", queries.size(),
      NtgaStrategyToString(options.strategy));

  // --- Shared Job 1: one scan, one subject-grouping shuffle, every
  // query's group filters applied to each subject group.
  JobSpec job1;
  job1.name = "tg-group-filter-shared";
  job1.full_scans_of_base = 1;
  job1.inputs.push_back(MapInput{
      base_path,
      [queries](const std::string& record, const MapEmit& emit,
                Counters* counters) {
        Result<Triple> t = Triple::Deserialize(record);
        if (!t.ok()) {
          (*counters)["bad_records"] += 1;
          return;
        }
        for (const QueryPtr& q : queries) {
          for (const TriplePattern& tp : q->patterns()) {
            bool property_ok =
                tp.property_bound ? tp.property == t->property : true;
            if (property_ok && tp.object.Matches(t->object)) {
              emit(t->subject, record);
              return;  // shuffled once for the whole batch
            }
          }
        }
      },
      GroupScanHint(queries)});
  job1.reduce = [queries, offsets, plans](
                    const std::string& key,
                    const std::vector<std::string>& values,
                    const RecordEmit& emit, Counters* counters) {
    std::set<PropObj> distinct;
    for (const std::string& v : values) {
      Result<Triple> t = Triple::Deserialize(v);
      if (t.ok()) distinct.insert(PropObj{t->property, t->object});
    }
    std::vector<PropObj> pairs(distinct.begin(), distinct.end());
    (*counters)["subject_groups"] += 1;
    for (size_t q = 0; q < queries.size(); ++q) {
      for (size_t s = 0; s < queries[q]->stars().size(); ++s) {
        const StarPattern& star = queries[q]->stars()[s];
        const bool unbound = star.HasUnbound();
        (*counters)[unbound ? "op.sigma_beta_gamma.input_groups"
                            : "op.sigma_gamma.input_groups"] += 1;
        std::optional<AnnTg> tg = BuildAnnTg(
            star, offsets[q] + static_cast<uint32_t>(s), key, pairs);
        if (!tg.has_value()) continue;
        (*counters)[unbound ? "op.sigma_beta_gamma.output_groups"
                            : "op.sigma_gamma.output_groups"] += 1;
        if (plans[q].eager_unnest[s]) {
          std::vector<AnnTg> unnested = BetaUnnest(star, *tg);
          (*counters)["op.mu_beta.calls"] += 1;
          (*counters)["op.mu_beta.output_groups"] += unnested.size();
          for (const AnnTg& out : unnested) {
            emit(out.Serialize());
          }
        } else {
          tg->Compact(star);
          emit(tg->Serialize());
        }
      }
    }
  };
  job1.output_path = tmp_prefix + "/ec";
  job1.demux = [](const std::string& record) {
    Result<uint32_t> star = AnnTg::PeekStarId(record);
    return star.ok() ? std::to_string(*star) : std::string("x");
  };
  for (size_t g = 0; g < all_stars.size(); ++g) {
    job1.ensure_outputs.push_back(EcPath(tmp_prefix, g));
    out.star_phase_paths.push_back(EcPath(tmp_prefix, g));
  }
  out.workflow.jobs.push_back(std::move(job1));

  // --- Per-query join pipelines.
  for (size_t q = 0; q < queries.size(); ++q) {
    std::string final_path;
    AppendJoinCycles(queries[q], plans[q], offsets[q], tmp_prefix,
                     StringFormat("q%zu-", q), StringFormat("q%zu-", q),
                     options, &out.workflow, &final_path);
    out.final_output_paths.push_back(final_path);
    out.decoders.push_back(
        [all_stars](const std::vector<std::string>& lines)
            -> Result<SolutionSet> {
          SolutionSet answers;
          for (const std::string& line : lines) {
            RDFMR_ASSIGN_OR_RETURN(JoinedTg jtg,
                                   JoinedTg::Deserialize(line));
            for (Solution& s : ExpandJoinedTg(all_stars, jtg)) {
              answers.insert(std::move(s));
            }
          }
          return answers;
        });
  }

  // --- Cleanup bookkeeping (everything that is not some query's final).
  std::set<std::string> finals(out.final_output_paths.begin(),
                               out.final_output_paths.end());
  for (size_t g = 0; g < all_stars.size(); ++g) {
    if (finals.count(EcPath(tmp_prefix, g)) == 0) {
      out.workflow.intermediate_paths.push_back(EcPath(tmp_prefix, g));
    }
  }
  out.workflow.intermediate_paths.push_back(tmp_prefix + "/ecx");
  for (const JobSpec& job : out.workflow.jobs) {
    if (!job.output_path.empty() && job.demux == nullptr &&
        finals.count(job.output_path) == 0) {
      out.workflow.intermediate_paths.push_back(job.output_path);
    }
  }
  return out;
}

Result<CompiledPlan> CompileNtgaPlan(QueryPtr query,
                                     const std::string& base_path,
                                     const std::string& tmp_prefix,
                                     const NtgaOptions& options) {
  if (query == nullptr) return Status::InvalidArgument("null query");
  RDFMR_ASSIGN_OR_RETURN(NtgaLogicalPlan plan,
                         RewriteToNtga(*query, options.strategy));

  CompiledPlan out;
  out.workflow.name = StringFormat("%s/ntga-%s", query->name().c_str(),
                                   NtgaStrategyToString(options.strategy));

  // --- Job 1: one grouping cycle for ALL star subpatterns.
  JobSpec job1;
  job1.name = "tg-group-filter";
  job1.inputs.push_back(MapInput{base_path, MakeGroupMapper(query),
                                 GroupScanHint({query})});
  job1.full_scans_of_base = 1;
  job1.reduce = MakeGroupReducer(query, plan);
  job1.output_path = tmp_prefix + "/ec";
  job1.demux = [](const std::string& record) {
    Result<uint32_t> star = AnnTg::PeekStarId(record);
    return star.ok() ? std::to_string(*star) : std::string("x");
  };
  for (size_t s = 0; s < query->stars().size(); ++s) {
    job1.ensure_outputs.push_back(EcPath(tmp_prefix, s));
    out.star_phase_paths.push_back(EcPath(tmp_prefix, s));
  }
  out.workflow.jobs.push_back(std::move(job1));

  // --- Join cycles (shared with the batched compiler).
  std::string final_path;
  AppendJoinCycles(query, plan, /*star_offset=*/0, tmp_prefix,
                   /*name_prefix=*/"", /*path_prefix=*/"tg", options,
                   &out.workflow, &final_path);

  out.workflow.final_output_path = final_path;
  for (size_t s = 0; s < query->stars().size(); ++s) {
    if (EcPath(tmp_prefix, s) != out.workflow.final_output_path) {
      out.workflow.intermediate_paths.push_back(EcPath(tmp_prefix, s));
    }
  }
  out.workflow.intermediate_paths.push_back(tmp_prefix + "/ecx");
  for (size_t j = 0; j + 1 < plan.joins.size(); ++j) {
    out.workflow.intermediate_paths.push_back(
        StringFormat("%s/tgjoin%zu", tmp_prefix.c_str(), j));
  }

  std::vector<StarPattern> stars = query->stars();
  out.decoder = [stars](const std::vector<std::string>& lines)
      -> Result<SolutionSet> {
    SolutionSet answers;
    for (const std::string& line : lines) {
      RDFMR_ASSIGN_OR_RETURN(JoinedTg jtg, JoinedTg::Deserialize(line));
      for (Solution& s : ExpandJoinedTg(stars, jtg)) {
        answers.insert(std::move(s));
      }
    }
    return answers;
  };
  out.record_decoder = [stars](const std::string& record)
      -> Result<std::vector<Solution>> {
    RDFMR_ASSIGN_OR_RETURN(JoinedTg jtg, JoinedTg::Deserialize(record));
    return ExpandJoinedTg(stars, jtg);
  };
  return out;
}

}  // namespace rdfmr
