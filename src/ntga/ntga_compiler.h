// Physical NTGA plan compiler: turns the rewritten logical plan into a
// MapReduce workflow over the simulated cluster.
//
// Physical operators (Algorithms 1-3 of the paper):
//  * Job 1, "TG_GroupBy + TG_(Unb)GrpFilter": ONE cycle computes every star
//    subpattern — map tags triples by subject, reduce assembles subject
//    triplegroups, applies the disjunctive (β) group-filter, and (eager
//    strategy only) β-unnests. Output is demuxed into one file per
//    equivalence class.
//  * Job 2..k, "TG_Join / TG_UnbJoin / TG_OptUnbJoin": one cycle per star
//    join. TG_UnbJoin β-unnests at the map side when the join key is an
//    unbound pattern's object; TG_OptUnbJoin partially β-unnests with φ_m,
//    shuffles by partition key, and completes the unnest at the reduce side
//    with a per-partition hash join.

#ifndef RDFMR_NTGA_NTGA_COMPILER_H_
#define RDFMR_NTGA_NTGA_COMPILER_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "engine/compiled_plan.h"
#include "ntga/logical_plan.h"
#include "query/pattern.h"

namespace rdfmr {

struct NtgaOptions {
  NtgaStrategy strategy = NtgaStrategy::kLazyAuto;
  /// φ_m partition count for TG_OptUnbJoin (paper uses φ_1K).
  uint32_t phi_partitions = 1024;
};

/// \brief Compiles `query` into an NTGA MR workflow reading the triple
/// relation at `base_path`; intermediates go under `tmp_prefix`.
Result<CompiledPlan> CompileNtgaPlan(
    std::shared_ptr<const GraphPatternQuery> query,
    const std::string& base_path, const std::string& tmp_prefix,
    const NtgaOptions& options);

/// \brief A compiled multi-query batch: ONE shared grouping cycle (γ is
/// query-independent, so a batch of queries shares a single scan and a
/// single subject-grouping shuffle — MRShare-style sharing, which NTGA
/// gets structurally) followed by each query's join pipeline.
struct NtgaBatchPlan {
  WorkflowSpec workflow;
  /// Per query: its answer file and decoder.
  std::vector<std::string> final_output_paths;
  std::vector<AnswerDecoder> decoders;
  /// The shared grouping cycle's equivalence-class files.
  std::vector<std::string> star_phase_paths;
};

/// \brief Compiles several queries into one shared-scan NTGA workflow.
Result<NtgaBatchPlan> CompileSharedNtgaPlan(
    const std::vector<std::shared_ptr<const GraphPatternQuery>>& queries,
    const std::string& base_path, const std::string& tmp_prefix,
    const NtgaOptions& options);

}  // namespace rdfmr

#endif  // RDFMR_NTGA_NTGA_COMPILER_H_
