#include "ntga/operators.h"

#include <algorithm>
#include <atomic>

#include "common/hash.h"
#include "common/logging.h"
#include "common/metrics.h"

namespace rdfmr {

namespace {
std::atomic<bool> g_flip_beta_group_filter{false};

// Per-operator instrumentation, resolved from the global registry only
// when a sink enabled operator metrics: the disabled path is one relaxed
// atomic load and no clock read. Wall times are observation-only and
// never feed deterministic outputs or counters.
struct OperatorProbe {
  explicit OperatorProbe(const char* op) {
    if (!OperatorMetricsEnabled()) return;
    MetricsRegistry& registry = MetricsRegistry::Global();
    std::string base = std::string("rdfmr_ntga_") + op;
    registry.GetCounter(base + "_calls", "operator invocations")
        ->Increment();
    outputs_ = registry.GetCounter(base + "_output_groups",
                                   "triplegroups / solutions produced");
    timer_.emplace(registry.GetHistogram(base + "_micros",
                                         "operator wall time per call"));
  }
  void Outputs(uint64_t n) {
    if (outputs_ != nullptr) outputs_->Increment(n);
  }

 private:
  Counter* outputs_ = nullptr;
  std::optional<ScopedTimerMicros> timer_;
};
}  // namespace

void SetBetaGroupFilterFlipForTesting(bool enabled) {
  g_flip_beta_group_filter.store(enabled, std::memory_order_relaxed);
}

bool BetaGroupFilterFlippedForTesting() {
  return g_flip_beta_group_filter.load(std::memory_order_relaxed);
}

uint32_t PhiPartition(const std::string& value, uint32_t m) {
  RDFMR_CHECK(m > 0) << "phi partition count must be positive";
  return static_cast<uint32_t>(Fnv1a64(value) % m);
}

std::optional<AnnTg> BuildAnnTg(const StarPattern& star, uint32_t star_id,
                                const std::string& subject,
                                const std::vector<PropObj>& subject_pairs) {
  OperatorProbe probe("build_anntg");
  AnnTg tg;
  tg.subject = subject;
  tg.star_id = star_id;

  // Keep pairs relevant to at least one pattern of this star. For bound
  // patterns relevance means property equality plus the object constraint;
  // for unbound patterns any pair passing the object constraint is a
  // candidate (β group-filter keeps the implicit candidate set).
  for (const PropObj& po : subject_pairs) {
    bool relevant = false;
    for (const TriplePattern& tp : star.patterns) {
      if (tp.property_bound) {
        if (tp.property == po.property && tp.object.Matches(po.object)) {
          relevant = true;
          break;
        }
      } else {
        if (tp.object.Matches(po.object)) {
          relevant = true;
          break;
        }
      }
    }
    if (relevant) tg.AddPair(po.property, po.object);
  }

  // Structural validation: every mandatory bound property present with a
  // pair that passes its pattern's object constraint, and every mandatory
  // unbound pattern with at least one candidate. Optional patterns impose
  // no requirement (their pairs, if any, were retained above).
  for (const TriplePattern& tp : star.patterns) {
    if (tp.optional) continue;
    bool satisfied = false;
    if (tp.property_bound) {
      auto it = tg.pairs.find(tp.property);
      if (it != tg.pairs.end()) {
        for (const std::string& o : it->second) {
          if (tp.object.Matches(o)) {
            satisfied = true;
            break;
          }
        }
      }
    } else {
      for (const auto& [property, objects] : tg.pairs) {
        (void)property;
        for (const std::string& o : objects) {
          if (tp.object.Matches(o)) {
            satisfied = true;
            break;
          }
        }
        if (satisfied) break;
      }
      if (g_flip_beta_group_filter.load(std::memory_order_relaxed)) {
        satisfied = !satisfied;
      }
    }
    if (!satisfied) return std::nullopt;
  }
  probe.Outputs(1);
  return tg;
}

std::vector<PropObj> UnboundCandidates(const StarPattern& star,
                                       const AnnTg& tg, size_t tp_index) {
  RDFMR_CHECK(tp_index < star.patterns.size());
  const TriplePattern& tp = star.patterns[tp_index];
  RDFMR_CHECK(tp.unbound_property())
      << "candidates requested for a bound pattern";
  auto it = tg.overrides.find(static_cast<uint32_t>(tp_index));
  if (it != tg.overrides.end()) return it->second;
  std::vector<PropObj> out;
  for (const auto& [property, objects] : tg.pairs) {
    for (const std::string& o : objects) {
      if (tp.object.Matches(o)) out.push_back(PropObj{property, o});
    }
  }
  return out;
}

std::vector<AnnTg> BetaUnnest(const StarPattern& star, const AnnTg& tg,
                              std::vector<size_t> tp_indexes) {
  OperatorProbe probe("beta_unnest");
  if (tp_indexes.empty()) {
    for (size_t idx : star.UnboundIndexes()) {
      // Optional patterns stay implicit: pinning one would wrongly force a
      // match where the left join should keep the solution unextended.
      if (star.patterns[idx].optional) continue;
      if (tg.overrides.count(static_cast<uint32_t>(idx)) == 0 ||
          tg.overrides.at(static_cast<uint32_t>(idx)).size() > 1) {
        tp_indexes.push_back(idx);
      }
    }
  }
  std::vector<AnnTg> current = {tg};
  for (size_t idx : tp_indexes) {
    std::vector<AnnTg> next;
    for (const AnnTg& base : current) {
      for (const PropObj& cand : UnboundCandidates(star, base, idx)) {
        AnnTg pinned = base;
        pinned.overrides[static_cast<uint32_t>(idx)] = {cand};
        next.push_back(std::move(pinned));
      }
    }
    current = std::move(next);
  }
  for (AnnTg& out : current) out.Compact(star);
  probe.Outputs(current.size());
  return current;
}

std::vector<std::pair<uint32_t, AnnTg>> PartialBetaUnnest(
    const StarPattern& star, const AnnTg& tg, size_t tp_index, uint32_t m) {
  OperatorProbe probe("partial_beta_unnest");
  std::map<uint32_t, std::vector<PropObj>> partitions;
  for (const PropObj& cand : UnboundCandidates(star, tg, tp_index)) {
    partitions[PhiPartition(cand.object, m)].push_back(cand);
  }
  std::vector<std::pair<uint32_t, AnnTg>> out;
  out.reserve(partitions.size());
  for (auto& [partition, cands] : partitions) {
    AnnTg restricted = tg;
    restricted.overrides[static_cast<uint32_t>(tp_index)] = std::move(cands);
    restricted.Compact(star);
    out.emplace_back(partition, std::move(restricted));
  }
  probe.Outputs(out.size());
  return out;
}

namespace {

// Recursively merges per-pattern candidate bindings.
void ExpandRecurse(const std::vector<std::vector<Solution>>& candidates,
                   size_t level, const Solution& partial,
                   std::vector<Solution>* out) {
  if (level == candidates.size()) {
    out->push_back(partial);
    return;
  }
  for (const Solution& cand : candidates[level]) {
    Result<Solution> merged = partial.Merge(cand);
    if (merged.ok()) {
      ExpandRecurse(candidates, level + 1, *merged, out);
    }
  }
}

}  // namespace

std::vector<Solution> ExpandAnnTg(const StarPattern& star, const AnnTg& tg) {
  std::vector<std::vector<Solution>> candidates(star.patterns.size());
  std::vector<std::vector<Solution>> mandatory;
  for (size_t i = 0; i < star.patterns.size(); ++i) {
    const TriplePattern& tp = star.patterns[i];
    auto add = [&](const std::string& property, const std::string& object) {
      Solution s;
      if (tp.subject.is_variable()) s.Bind(tp.subject.value, tg.subject);
      if (!tp.property_bound && !s.Bind(tp.property, property)) return;
      if (tp.object.is_variable() && !s.Bind(tp.object.value, object)) {
        return;
      }
      candidates[i].push_back(std::move(s));
    };
    if (tp.property_bound) {
      auto it = tg.pairs.find(tp.property);
      if (it != tg.pairs.end()) {
        for (const std::string& o : it->second) {
          if (tp.object.Matches(o)) add(tp.property, o);
        }
      }
    } else {
      for (const PropObj& cand : UnboundCandidates(star, tg, i)) {
        if (tp.object.Matches(cand.object)) {
          add(cand.property, cand.object);
        }
      }
    }
    if (tp.optional) continue;
    if (candidates[i].empty()) return {};
    mandatory.push_back(candidates[i]);
  }
  std::vector<Solution> out;
  ExpandRecurse(mandatory, 0, Solution{}, &out);

  // Left-join the optional patterns (extend when compatible, else keep).
  for (size_t i = 0; i < star.patterns.size(); ++i) {
    if (!star.patterns[i].optional) continue;
    std::vector<Solution> extended;
    for (Solution& s : out) {
      bool any = false;
      for (const Solution& cand : candidates[i]) {
        Result<Solution> merged = s.Merge(cand);
        if (merged.ok()) {
          any = true;
          extended.push_back(merged.MoveValueUnsafe());
        }
      }
      if (!any) extended.push_back(std::move(s));
    }
    out = std::move(extended);
  }
  return out;
}

std::vector<Solution> ExpandJoinedTg(const std::vector<StarPattern>& stars,
                                     const JoinedTg& jtg) {
  OperatorProbe probe("expand_joined_tg");
  std::vector<Solution> acc = {Solution{}};
  for (const AnnTg& component : jtg.components) {
    RDFMR_CHECK(component.star_id < stars.size())
        << "joined component references unknown star";
    std::vector<Solution> expanded =
        ExpandAnnTg(stars[component.star_id], component);
    std::vector<Solution> next;
    for (const Solution& a : acc) {
      for (const Solution& b : expanded) {
        Result<Solution> merged = a.Merge(b);
        if (merged.ok()) next.push_back(merged.MoveValueUnsafe());
      }
    }
    acc = std::move(next);
    if (acc.empty()) break;
  }
  probe.Outputs(acc.size());
  return acc;
}

}  // namespace rdfmr
