// The NTGA operators from the paper, over AnnTg values:
//
//  * BuildAnnTg            — γ + σ^γ / σ^βγ reduce-side assembly: builds the
//                            annotated triplegroup of one subject for one
//                            star subpattern, or nothing if the group fails
//                            the (β) group-filter (Definition 1 /
//                            Algorithm 2, TG_UnbGrpFilter).
//  * UnboundCandidates     — the implicit candidate set of an unbound
//                            pattern: its override if present, else every
//                            pair passing the pattern's object constraint.
//  * BetaUnnest            — μ^β (Definition 2): expands a triplegroup into
//                            "perfect" triplegroups, one per combination of
//                            unbound-pattern candidates (generalized to any
//                            number of unbound patterns per star).
//  * PartialBetaUnnest     — μ^β_φm (Definition 3): restricts one unbound
//                            pattern's candidates per φ_m partition of the
//                            join key, producing ≤ m triplegroups.
//  * ExpandAnnTg/ExpandJoinedTg — final answer extraction: enumerates the
//                            solution mappings a (joined) triplegroup
//                            implicitly represents (content equivalence,
//                            Lemma 1).

#ifndef RDFMR_NTGA_OPERATORS_H_
#define RDFMR_NTGA_OPERATORS_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "ntga/triplegroup.h"
#include "query/pattern.h"
#include "query/solution.h"
#include "rdf/triple.h"

namespace rdfmr {

/// \brief Test-only fault injection: when enabled, BuildAnnTg inverts the
/// satisfaction verdict of mandatory *unbound* patterns in the β
/// group-filter — a realistic operator bug (σ^βγ admitting exactly the
/// wrong groups) that only the NTGA engines exhibit. The differential fuzz
/// harness uses it to prove it can catch and shrink a seeded defect; it
/// must never be enabled outside tests.
void SetBetaGroupFilterFlipForTesting(bool enabled);
bool BetaGroupFilterFlippedForTesting();

/// \brief The partition function φ_m over join-key values.
uint32_t PhiPartition(const std::string& value, uint32_t m);

/// \brief Builds the AnnTg of one subject for star `star_id`, applying the
/// group-filter (all-bound stars: σ^γ) or β group-filter (unbound stars:
/// σ^βγ). Pairs irrelevant to every pattern of the star are dropped; for
/// unbound stars all relevant pairs are retained as implicit candidates.
/// Returns nullopt when the group fails the filter.
std::optional<AnnTg> BuildAnnTg(const StarPattern& star, uint32_t star_id,
                                const std::string& subject,
                                const std::vector<PropObj>& subject_pairs);

/// \brief Candidate pairs of unbound pattern `tp_index` in `tg` (override
/// if present, else implicit set filtered by the pattern's object
/// constraint).
std::vector<PropObj> UnboundCandidates(const StarPattern& star,
                                       const AnnTg& tg, size_t tp_index);

/// \brief Full β-unnest of `tg` with respect to the unbound patterns listed
/// in `tp_indexes` (empty => all unbound patterns of the star). Each output
/// is compacted. A triplegroup with u candidates for a single unbound
/// pattern yields exactly u outputs; multiple unbound patterns yield the
/// cartesian product.
std::vector<AnnTg> BetaUnnest(const StarPattern& star, const AnnTg& tg,
                              std::vector<size_t> tp_indexes = {});

/// \brief Partial β-unnest: restricts unbound pattern `tp_index` to one
/// partition of φ_m over the candidate objects; yields ≤ m triplegroups,
/// each paired with its partition id.
std::vector<std::pair<uint32_t, AnnTg>> PartialBetaUnnest(
    const StarPattern& star, const AnnTg& tg, size_t tp_index, uint32_t m);

/// \brief Enumerates the solution mappings `tg` implicitly represents for
/// `star` (bound pairs x unbound candidates, with shared-variable
/// consistency).
std::vector<Solution> ExpandAnnTg(const StarPattern& star, const AnnTg& tg);

/// \brief Expands a joined triplegroup across its components and merges
/// bindings; inconsistent combinations (residual join predicates) drop out.
std::vector<Solution> ExpandJoinedTg(const std::vector<StarPattern>& stars,
                                     const JoinedTg& jtg);

}  // namespace rdfmr

#endif  // RDFMR_NTGA_OPERATORS_H_
