#include "ntga/triplegroup.h"

#include <algorithm>
#include <set>

#include "common/strings.h"

namespace rdfmr {

namespace {
// Nested separators for the record format; escaped via EscapeField.
constexpr char kFieldSep = '\x1F';   // top-level fields
constexpr char kEntrySep = '\x1D';   // entries within a field
constexpr char kItemSep = ',';       // items within an entry
constexpr char kComponentSep = '\x1E';  // JoinedTg components
}  // namespace

void AnnTg::AddPair(const std::string& property, const std::string& object) {
  std::vector<std::string>& objs = pairs[property];
  auto it = std::lower_bound(objs.begin(), objs.end(), object);
  if (it == objs.end() || *it != object) objs.insert(it, object);
}

std::vector<PropObj> AnnTg::AllPairs() const {
  std::vector<PropObj> out;
  for (const auto& [property, objects] : pairs) {
    for (const std::string& object : objects) {
      out.push_back(PropObj{property, object});
    }
  }
  return out;
}

size_t AnnTg::PairCount() const {
  size_t n = 0;
  for (const auto& [_, objects] : pairs) n += objects.size();
  return n;
}

std::vector<Triple> AnnTg::ToTriples() const {
  std::set<Triple> distinct;
  for (const auto& [property, objects] : pairs) {
    for (const std::string& object : objects) {
      distinct.insert(Triple(subject, property, object));
    }
  }
  for (const auto& [_, pinned] : overrides) {
    for (const PropObj& po : pinned) {
      distinct.insert(Triple(subject, po.property, po.object));
    }
  }
  return std::vector<Triple>(distinct.begin(), distinct.end());
}

void AnnTg::Compact(const StarPattern& star) {
  // A pair must stay only while something can still consume it: a bound
  // pattern of the star, or an unbound pattern whose candidates are not yet
  // overridden and whose object constraint the pair satisfies. Everything
  // else is dead weight for the rest of the workflow (in particular, once
  // the joining unbound pattern is pinned, candidate pairs kept for a
  // *filtered* second unbound pattern shrink to the filter's matches).
  std::set<std::string> bound = star.AllBoundProperties();
  std::vector<const TriplePattern*> open_unbound;
  for (size_t idx : star.UnboundIndexes()) {
    if (overrides.count(static_cast<uint32_t>(idx)) == 0) {
      open_unbound.push_back(&star.patterns[idx]);
    }
  }
  for (auto it = pairs.begin(); it != pairs.end();) {
    if (bound.count(it->first) > 0) {
      ++it;
      continue;
    }
    std::vector<std::string>& objects = it->second;
    objects.erase(std::remove_if(objects.begin(), objects.end(),
                                 [&](const std::string& o) {
                                   for (const TriplePattern* tp :
                                        open_unbound) {
                                     if (tp->object.Matches(o)) return false;
                                   }
                                   return true;
                                 }),
                  objects.end());
    if (objects.empty()) {
      it = pairs.erase(it);
    } else {
      ++it;
    }
  }
}

std::string AnnTg::Serialize() const {
  // pairs field: entries "prop,obj1,obj2,..."
  std::vector<std::string> pair_entries;
  pair_entries.reserve(pairs.size());
  for (const auto& [property, objects] : pairs) {
    std::vector<std::string> items;
    items.reserve(objects.size() + 1);
    items.push_back(property);
    for (const std::string& o : objects) items.push_back(o);
    pair_entries.push_back(JoinEscaped(items, kItemSep));
  }
  // overrides field: entries "tp_index,prop1,obj1,prop2,obj2,..."
  std::vector<std::string> override_entries;
  for (const auto& [tp_index, pinned] : overrides) {
    std::vector<std::string> items;
    items.reserve(pinned.size() * 2 + 1);
    items.push_back(std::to_string(tp_index));
    for (const PropObj& po : pinned) {
      items.push_back(po.property);
      items.push_back(po.object);
    }
    override_entries.push_back(JoinEscaped(items, kItemSep));
  }
  return JoinEscaped({subject, std::to_string(star_id),
                      JoinEscaped(pair_entries, kEntrySep),
                      JoinEscaped(override_entries, kEntrySep)},
                     kFieldSep);
}

Result<AnnTg> AnnTg::Deserialize(const std::string& line) {
  std::vector<std::string> fields = SplitEscaped(line, kFieldSep);
  if (fields.size() != 4) {
    return Status::IoError("AnnTg record needs 4 fields, got " +
                           std::to_string(fields.size()));
  }
  AnnTg tg;
  tg.subject = std::move(fields[0]);
  try {
    tg.star_id = static_cast<uint32_t>(std::stoul(fields[1]));
  } catch (...) {
    return Status::IoError("bad star id: " + fields[1]);
  }
  if (!fields[2].empty()) {
    for (const std::string& entry : SplitEscaped(fields[2], kEntrySep)) {
      std::vector<std::string> items = SplitEscaped(entry, kItemSep);
      if (items.size() < 2) {
        return Status::IoError("bad pair entry: " + entry);
      }
      std::vector<std::string> objects(items.begin() + 1, items.end());
      tg.pairs.emplace(std::move(items[0]), std::move(objects));
    }
  }
  if (!fields[3].empty()) {
    for (const std::string& entry : SplitEscaped(fields[3], kEntrySep)) {
      std::vector<std::string> items = SplitEscaped(entry, kItemSep);
      if (items.empty() || items.size() % 2 != 1) {
        return Status::IoError("bad override entry: " + entry);
      }
      uint32_t tp_index;
      try {
        tp_index = static_cast<uint32_t>(std::stoul(items[0]));
      } catch (...) {
        return Status::IoError("bad override index: " + items[0]);
      }
      std::vector<PropObj> pinned;
      for (size_t i = 1; i + 1 < items.size() + 1; i += 2) {
        pinned.push_back(PropObj{items[i], items[i + 1]});
      }
      tg.overrides.emplace(tp_index, std::move(pinned));
    }
  }
  return tg;
}

Result<uint32_t> AnnTg::PeekStarId(const std::string& line) {
  std::vector<std::string> fields = SplitEscaped(line, kFieldSep);
  if (fields.size() != 4) {
    return Status::IoError("AnnTg record needs 4 fields");
  }
  try {
    return static_cast<uint32_t>(std::stoul(fields[1]));
  } catch (...) {
    return Status::IoError("bad star id: " + fields[1]);
  }
}

const AnnTg* JoinedTg::ComponentForStar(uint32_t star_id) const {
  for (const AnnTg& c : components) {
    if (c.star_id == star_id) return &c;
  }
  return nullptr;
}

std::string JoinedTg::Serialize() const {
  std::vector<std::string> parts;
  parts.reserve(components.size());
  for (const AnnTg& c : components) parts.push_back(c.Serialize());
  return JoinEscaped(parts, kComponentSep);
}

Result<JoinedTg> JoinedTg::Deserialize(const std::string& line) {
  JoinedTg out;
  for (const std::string& part : SplitEscaped(line, kComponentSep)) {
    RDFMR_ASSIGN_OR_RETURN(AnnTg tg, AnnTg::Deserialize(part));
    out.components.push_back(std::move(tg));
  }
  return out;
}

}  // namespace rdfmr
