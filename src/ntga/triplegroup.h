// The TripleGroup data model (NTGA), extended for unbound-property queries.
//
// An annotated triplegroup (AnnTG) is the paper's "extended multi-map":
// a subject, the star subpattern (equivalence class) it matches, and the
// subject's (Property, Object) pairs stored once, with multi-valued
// properties nested under a single property entry. This implicit
// representation is what keeps intermediate results concise.
//
// The `overrides` map records the outcome of (partial) β-unnesting: for an
// unbound-property triple pattern (identified by its index within the
// star), the candidate (Property, Object) pairs have been restricted to a
// subset — a single pair after a full β-unnest ("perfect" triplegroup), or
// a φ_m partition after a partial β-unnest. Patterns without an override
// keep the full implicit candidate set (every pair of the group that
// passes the pattern's object constraint).

#ifndef RDFMR_NTGA_TRIPLEGROUP_H_
#define RDFMR_NTGA_TRIPLEGROUP_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "query/pattern.h"
#include "rdf/triple.h"

namespace rdfmr {

/// \brief One (Property, Object) pair of a triplegroup.
struct PropObj {
  std::string property;
  std::string object;

  bool operator==(const PropObj& o) const {
    return property == o.property && object == o.object;
  }
  bool operator<(const PropObj& o) const {
    if (property != o.property) return property < o.property;
    return object < o.object;
  }
};

/// \brief Nested property map: property -> sorted distinct objects.
using PropMap = std::map<std::string, std::vector<std::string>>;

/// \brief Annotated triplegroup.
class AnnTg {
 public:
  std::string subject;
  /// Equivalence class: index of the star subpattern this group matches.
  uint32_t star_id = 0;
  /// The group's (Property, Object) pairs, nested per property.
  PropMap pairs;
  /// β-unnest state: unbound-pattern index -> restricted candidate pairs.
  std::map<uint32_t, std::vector<PropObj>> overrides;

  /// \brief Adds a pair (idempotent; keeps objects sorted and distinct).
  void AddPair(const std::string& property, const std::string& object);

  /// \brief True if `property` is present.
  bool HasProperty(const std::string& property) const {
    return pairs.count(property) > 0;
  }

  /// \brief All pairs, flattened in property order.
  std::vector<PropObj> AllPairs() const;

  /// \brief Number of (Property, Object) pairs.
  size_t PairCount() const;

  /// \brief Reconstructs the triples this group represents (its pairs plus
  /// any override pairs, deduplicated).
  std::vector<Triple> ToTriples() const;

  /// \brief Drops pairs that nothing can consume anymore: a pair stays only
  /// if its property is bound in `star`, or it satisfies the object
  /// constraint of an unbound pattern that has no override yet. A fully
  /// β-unnested ("perfect") triplegroup thus sheds its candidate list
  /// before serialization; a partially pinned one keeps only the candidates
  /// its remaining unbound patterns can still use.
  void Compact(const StarPattern& star);

  /// \brief Serializes into a single record line.
  std::string Serialize() const;

  static Result<AnnTg> Deserialize(const std::string& line);

  /// \brief Reads only the star_id field of a serialized record (cheap path
  /// used by MultipleOutputs demuxing).
  static Result<uint32_t> PeekStarId(const std::string& line);

  bool operator==(const AnnTg& o) const {
    return subject == o.subject && star_id == o.star_id && pairs == o.pairs &&
           overrides == o.overrides;
  }
};

/// \brief The result of joining triplegroups across stars: one component
/// per star reached so far. (A nested triplegroup in the paper's terms; we
/// keep components flat with their star annotations, which is equivalent
/// and composes over any number of joins.)
class JoinedTg {
 public:
  std::vector<AnnTg> components;

  /// \brief Finds the component for `star_id`, or nullptr.
  const AnnTg* ComponentForStar(uint32_t star_id) const;

  std::string Serialize() const;
  static Result<JoinedTg> Deserialize(const std::string& line);

  bool operator==(const JoinedTg& o) const {
    return components == o.components;
  }
};

}  // namespace rdfmr

#endif  // RDFMR_NTGA_TRIPLEGROUP_H_
