#include "query/aggregate.h"

#include <algorithm>
#include <map>
#include <set>

#include "query/matcher.h"

namespace rdfmr {

Status AggregateSpec::Validate(const GraphPatternQuery& query) const {
  if (group_vars.empty()) {
    return Status::InvalidArgument("GROUP BY needs at least one variable");
  }
  const std::vector<std::string>& vars = query.variables();
  auto known = [&](const std::string& v) {
    return std::find(vars.begin(), vars.end(), v) != vars.end();
  };
  for (const std::string& v : group_vars) {
    if (!known(v)) {
      return Status::InvalidArgument("GROUP BY variable ?" + v +
                                     " is not bound by the pattern");
    }
  }
  if (counted_var.empty() || !known(counted_var)) {
    return Status::InvalidArgument("COUNT variable ?" + counted_var +
                                   " is not bound by the pattern");
  }
  if (count_var.empty()) {
    return Status::InvalidArgument("the count needs an output name");
  }
  if (known(count_var)) {
    return Status::InvalidArgument("count output ?" + count_var +
                                   " collides with a pattern variable");
  }
  return Status::OK();
}

SolutionSet AggregateSolutions(const SolutionSet& solutions,
                               const AggregateSpec& spec) {
  // group key (serialized bindings) -> counted values / row count
  std::map<Solution, std::multiset<std::string>> groups;
  for (const Solution& s : solutions) {
    Solution key;
    bool complete = true;
    for (const std::string& v : spec.group_vars) {
      const std::string* value = s.Get(v);
      if (value == nullptr) {
        complete = false;
        break;
      }
      key.Bind(v, *value);
    }
    const std::string* counted = s.Get(spec.counted_var);
    if (!complete || counted == nullptr) continue;
    groups[key].insert(*counted);
  }
  SolutionSet out;
  for (const auto& [key, values] : groups) {
    uint64_t count;
    if (spec.distinct) {
      count = std::set<std::string>(values.begin(), values.end()).size();
    } else {
      count = values.size();
    }
    if (count < spec.min_count) continue;
    Solution result = key;
    result.Bind(spec.count_var, std::to_string(count));
    out.insert(std::move(result));
  }
  return out;
}

SolutionSet EvaluateAggregateInMemory(const GraphPatternQuery& query,
                                      const AggregateSpec& spec,
                                      const std::vector<Triple>& triples) {
  return AggregateSolutions(EvaluateQueryInMemory(query, triples), spec);
}

}  // namespace rdfmr
