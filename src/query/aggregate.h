// Aggregation constraints over graph pattern queries — the paper's stated
// future direction ("unbound-property queries with aggregation
// constraints"). Supports the COUNT family:
//
//   SELECT ?g (COUNT(DISTINCT ?p) AS ?n)
//   WHERE  { ?g <label> ?l . ?g ?p ?x . }
//   GROUP BY ?g
//   HAVING (COUNT(DISTINCT ?p) >= 3)
//
// i.e., "subjects related through at least 3 distinct kinds of edges" —
// counting over the matches of an unbound property. Execution appends one
// aggregation MR cycle to any engine's plan; NTGA feeds it from nested
// triplegroups (small reads), the relational engines from flat tuples.

#ifndef RDFMR_QUERY_AGGREGATE_H_
#define RDFMR_QUERY_AGGREGATE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "query/pattern.h"
#include "query/solution.h"
#include "rdf/triple.h"

namespace rdfmr {

/// \brief COUNT aggregation with grouping and a HAVING threshold.
struct AggregateSpec {
  /// GROUP BY variables (must be non-empty and bound by the BGP).
  std::vector<std::string> group_vars;
  /// The variable counted per group.
  std::string counted_var;
  /// Output variable name carrying the count.
  std::string count_var = "count";
  /// COUNT(DISTINCT ?v) when true, COUNT(?v) over solutions otherwise.
  bool distinct = true;
  /// HAVING (COUNT >= min_count); 0 disables the constraint.
  uint64_t min_count = 0;

  /// \brief Validates the spec against the query's variables.
  Status Validate(const GraphPatternQuery& query) const;
};

/// \brief Aggregates a solution set per the spec: one output solution per
/// surviving group, binding the group variables and the count.
SolutionSet AggregateSolutions(const SolutionSet& solutions,
                               const AggregateSpec& spec);

/// \brief Ground-truth: evaluate the BGP in memory, then aggregate.
SolutionSet EvaluateAggregateInMemory(const GraphPatternQuery& query,
                                      const AggregateSpec& spec,
                                      const std::vector<Triple>& triples);

}  // namespace rdfmr

#endif  // RDFMR_QUERY_AGGREGATE_H_
