#include "query/matcher.h"

#include <map>

#include "common/logging.h"

namespace rdfmr {

std::optional<Solution> MatchTriplePattern(const TriplePattern& pattern,
                                           const Triple& triple) {
  Solution s;
  // Subject.
  if (pattern.subject.is_constant()) {
    if (triple.subject != pattern.subject.value) return std::nullopt;
  } else {
    if (!pattern.subject.Matches(triple.subject)) return std::nullopt;
    if (!s.Bind(pattern.subject.value, triple.subject)) return std::nullopt;
  }
  // Property.
  if (pattern.property_bound) {
    if (triple.property != pattern.property) return std::nullopt;
  } else {
    if (!s.Bind(pattern.property, triple.property)) return std::nullopt;
  }
  // Object.
  if (!pattern.object.Matches(triple.object)) return std::nullopt;
  if (pattern.object.is_variable()) {
    if (!s.Bind(pattern.object.value, triple.object)) return std::nullopt;
  }
  return s;
}

namespace {

struct Candidate {
  const Triple* triple;
  Solution solution;
};

void Recurse(const std::vector<std::vector<Candidate>>& candidates,
             size_t level, std::vector<const Triple*>* chosen,
             const Solution& partial, std::vector<StarMatch>* out) {
  if (level == candidates.size()) {
    StarMatch match;
    match.matched.reserve(chosen->size());
    for (const Triple* t : *chosen) match.matched.push_back(*t);
    match.solution = partial;
    out->push_back(std::move(match));
    return;
  }
  for (const Candidate& cand : candidates[level]) {
    Result<Solution> merged = partial.Merge(cand.solution);
    if (!merged.ok()) continue;
    chosen->push_back(cand.triple);
    Recurse(candidates, level + 1, chosen, *merged, out);
    chosen->pop_back();
  }
}

}  // namespace

std::vector<StarMatch> MatchStarDetailed(
    const StarPattern& star, const std::vector<Triple>& subject_triples) {
  // Per-pattern candidates. A mandatory pattern with no candidate kills
  // the star; an optional one merely stops extending solutions.
  std::vector<std::vector<Candidate>> candidates(star.patterns.size());
  std::vector<std::vector<Candidate>> mandatory;
  std::vector<size_t> mandatory_index;
  for (size_t p = 0; p < star.patterns.size(); ++p) {
    for (const Triple& t : subject_triples) {
      std::optional<Solution> m = MatchTriplePattern(star.patterns[p], t);
      if (m.has_value()) {
        candidates[p].push_back(Candidate{&t, std::move(*m)});
      }
    }
    if (star.patterns[p].optional) continue;
    if (candidates[p].empty()) return {};  // star cannot match
    mandatory.push_back(candidates[p]);
    mandatory_index.push_back(p);
  }

  // Product of the mandatory patterns with consistency merging.
  std::vector<StarMatch> base;
  std::vector<const Triple*> chosen;
  Recurse(mandatory, 0, &chosen, Solution{}, &base);

  // Re-align the matched triples to pattern positions, with the SPARQL
  // "unbound" placeholder (an all-empty triple) at optional positions.
  std::vector<StarMatch> out;
  out.reserve(base.size());
  for (StarMatch& m : base) {
    StarMatch aligned;
    aligned.solution = std::move(m.solution);
    aligned.matched.assign(star.patterns.size(), Triple());
    for (size_t i = 0; i < mandatory_index.size(); ++i) {
      aligned.matched[mandatory_index[i]] = std::move(m.matched[i]);
    }
    out.push_back(std::move(aligned));
  }

  // Left-join each optional pattern in turn: extend every solution with
  // every compatible candidate, or keep it unextended when none fits.
  for (size_t p = 0; p < star.patterns.size(); ++p) {
    if (!star.patterns[p].optional) continue;
    std::vector<StarMatch> extended;
    for (StarMatch& m : out) {
      bool any = false;
      for (const Candidate& cand : candidates[p]) {
        Result<Solution> merged = m.solution.Merge(cand.solution);
        if (!merged.ok()) continue;
        any = true;
        StarMatch e = m;
        e.solution = merged.MoveValueUnsafe();
        e.matched[p] = *cand.triple;
        extended.push_back(std::move(e));
      }
      if (!any) extended.push_back(std::move(m));
    }
    out = std::move(extended);
  }
  return out;
}

std::vector<Solution> MatchStar(const StarPattern& star,
                                const std::vector<Triple>& subject_triples) {
  std::vector<StarMatch> detailed = MatchStarDetailed(star, subject_triples);
  std::vector<Solution> out;
  out.reserve(detailed.size());
  for (StarMatch& m : detailed) out.push_back(std::move(m.solution));
  return out;
}

SolutionSet EvaluateQueryInMemory(const GraphPatternQuery& query,
                                  const std::vector<Triple>& triples) {
  // Group triples by subject.
  std::map<std::string, std::vector<Triple>> by_subject;
  for (const Triple& t : triples) by_subject[t.subject].push_back(t);

  // Per-star solutions.
  std::vector<std::vector<Solution>> star_solutions(query.stars().size());
  for (size_t s = 0; s < query.stars().size(); ++s) {
    for (const auto& [subject, subject_triples] : by_subject) {
      std::vector<Solution> matches =
          MatchStar(query.stars()[s], subject_triples);
      for (Solution& m : matches) {
        star_solutions[s].push_back(std::move(m));
      }
    }
  }

  // Fold stars together with nested-loop merge joins (fine for tests; the
  // MR engines are the scalable path). Connectivity of the join graph is
  // guaranteed by GraphPatternQuery::Create, so Merge enforces real joins.
  std::vector<Solution> acc = std::move(star_solutions[0]);
  for (size_t s = 1; s < star_solutions.size(); ++s) {
    std::vector<Solution> next;
    for (const Solution& a : acc) {
      for (const Solution& b : star_solutions[s]) {
        Result<Solution> merged = a.Merge(b);
        if (merged.ok()) next.push_back(merged.MoveValueUnsafe());
      }
    }
    acc = std::move(next);
  }
  return SolutionSet(acc.begin(), acc.end());
}

}  // namespace rdfmr
