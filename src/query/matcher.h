// Reference matcher: enumerates solution mappings of star patterns over a
// subject's triples. Used by the relational engines at star-join reducers,
// by the NTGA engines when converting (β-unnested) triplegroups into final
// answers, and by tests as the ground-truth oracle.

#ifndef RDFMR_QUERY_MATCHER_H_
#define RDFMR_QUERY_MATCHER_H_

#include <optional>
#include <vector>

#include "query/pattern.h"
#include "query/solution.h"
#include "rdf/triple.h"

namespace rdfmr {

/// \brief Matches one triple against one pattern; bindings for subject,
/// property (if unbound), and object variables. nullopt on mismatch.
std::optional<Solution> MatchTriplePattern(const TriplePattern& pattern,
                                           const Triple& triple);

/// \brief One complete match of a star: the triple chosen for each pattern
/// (in pattern order) plus the combined bindings. A single triple may
/// satisfy several patterns simultaneously — including both a bound and the
/// unbound pattern, the paper's "triple plays multiple roles" case.
struct StarMatch {
  std::vector<Triple> matched;  ///< one triple per pattern, aligned
  Solution solution;
};

/// \brief Enumerates all matches of `star` over the triples of one subject
/// (all entries must share the same subject value).
std::vector<StarMatch> MatchStarDetailed(
    const StarPattern& star, const std::vector<Triple>& subject_triples);

/// \brief Bindings-only variant of MatchStarDetailed.
std::vector<Solution> MatchStar(const StarPattern& star,
                                const std::vector<Triple>& subject_triples);

/// \brief Ground-truth evaluation of a whole query by in-memory join of the
/// per-star matches (tests and the quickstart example use this; the MR
/// engines must agree with it — Lemma 1).
SolutionSet EvaluateQueryInMemory(const GraphPatternQuery& query,
                                  const std::vector<Triple>& triples);

}  // namespace rdfmr

#endif  // RDFMR_QUERY_MATCHER_H_
