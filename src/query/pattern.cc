#include "query/pattern.h"

#include <algorithm>
#include <map>

#include "common/strings.h"

namespace rdfmr {

bool NodePattern::Matches(const std::string& term) const {
  if (is_constant()) return term == value;
  if (!contains_filter.empty()) {
    return term.find(contains_filter) != std::string::npos;
  }
  return true;
}

std::vector<std::string> TriplePattern::Variables() const {
  std::vector<std::string> vars;
  if (subject.is_variable()) vars.push_back(subject.value);
  if (!property_bound) vars.push_back(property);
  if (object.is_variable()) vars.push_back(object.value);
  return vars;
}

std::string TriplePattern::ToString() const {
  auto node = [](const NodePattern& n) {
    if (n.is_constant()) return "<" + n.value + ">";
    std::string s = "?" + n.value;
    if (!n.contains_filter.empty()) s += "{~" + n.contains_filter + "}";
    return s;
  };
  std::string prop =
      property_bound ? "<" + property + ">" : "?" + property;
  std::string body = node(subject) + " " + prop + " " + node(object) + " .";
  return optional ? "OPTIONAL { " + body + " }" : body;
}

std::set<std::string> StarPattern::BoundProperties() const {
  std::set<std::string> props;
  for (const TriplePattern& tp : patterns) {
    if (tp.property_bound && !tp.optional) props.insert(tp.property);
  }
  return props;
}

std::set<std::string> StarPattern::AllBoundProperties() const {
  std::set<std::string> props;
  for (const TriplePattern& tp : patterns) {
    if (tp.property_bound) props.insert(tp.property);
  }
  return props;
}

std::vector<size_t> StarPattern::UnboundIndexes() const {
  std::vector<size_t> idx;
  for (size_t i = 0; i < patterns.size(); ++i) {
    if (patterns[i].unbound_property()) idx.push_back(i);
  }
  return idx;
}

std::vector<size_t> StarPattern::OptionalIndexes() const {
  std::vector<size_t> idx;
  for (size_t i = 0; i < patterns.size(); ++i) {
    if (patterns[i].optional) idx.push_back(i);
  }
  return idx;
}

std::string StarPattern::ToString() const {
  std::string out = "Star(?" + subject_var + ") {\n";
  for (const TriplePattern& tp : patterns) {
    out += "  " + tp.ToString() + "\n";
  }
  out += "}";
  return out;
}

const char* StarJoinKindToString(StarJoinKind kind) {
  switch (kind) {
    case StarJoinKind::kObjectSubject:
      return "Object-Subject";
    case StarJoinKind::kObjectObject:
      return "Object-Object";
    case StarJoinKind::kSubjectSubject:
      return "Subject-Subject";
  }
  return "?";
}

bool StarJoin::LeftOnUnbound(const std::vector<StarPattern>& stars) const {
  if (left_pattern_index < 0) return false;
  return stars[left_star]
      .patterns[static_cast<size_t>(left_pattern_index)]
      .unbound_property();
}

bool StarJoin::RightOnUnbound(const std::vector<StarPattern>& stars) const {
  if (right_pattern_index < 0) return false;
  return stars[right_star]
      .patterns[static_cast<size_t>(right_pattern_index)]
      .unbound_property();
}

Result<GraphPatternQuery> GraphPatternQuery::Create(
    std::string name, std::vector<TriplePattern> patterns) {
  if (patterns.empty()) {
    return Status::InvalidArgument("query has no triple patterns");
  }
  GraphPatternQuery q;
  q.name_ = std::move(name);
  q.patterns_ = std::move(patterns);

  // --- Decompose into stars by subject variable (first-appearance order).
  std::map<std::string, size_t> star_of_subject;
  for (const TriplePattern& tp : q.patterns_) {
    if (!tp.subject.is_variable()) {
      return Status::NotImplemented(
          "constant subjects are not supported: " + tp.ToString());
    }
    auto [it, inserted] =
        star_of_subject.emplace(tp.subject.value, q.stars_.size());
    if (inserted) {
      StarPattern star;
      star.subject_var = tp.subject.value;
      q.stars_.push_back(std::move(star));
    }
    q.stars_[it->second].patterns.push_back(tp);
  }

  // --- Optional patterns: star-local left joins with fresh variables.
  for (const StarPattern& star : q.stars_) {
    size_t mandatory = 0;
    for (const TriplePattern& tp : star.patterns) {
      if (!tp.optional) ++mandatory;
    }
    if (mandatory == 0) {
      return Status::InvalidArgument(
          "star ?" + star.subject_var +
          " consists only of OPTIONAL patterns");
    }
  }
  for (const TriplePattern& tp : q.patterns_) {
    if (!tp.optional) continue;
    std::set<std::string> optional_vars;
    if (!tp.property_bound) optional_vars.insert(tp.property);
    if (tp.object.is_variable()) optional_vars.insert(tp.object.value);
    for (const TriplePattern& other : q.patterns_) {
      if (&other == &tp) continue;
      for (const std::string& v : other.Variables()) {
        if (optional_vars.count(v) > 0) {
          return Status::NotImplemented(
              "OPTIONAL patterns must introduce only fresh variables; ?" +
              v + " is shared");
        }
      }
    }
  }

  // --- Collect variables; reject a variable used as property AND node.
  std::set<std::string> vars;
  std::set<std::string> prop_vars;
  for (const TriplePattern& tp : q.patterns_) {
    for (const std::string& v : tp.Variables()) vars.insert(v);
    if (tp.unbound_property()) prop_vars.insert(tp.property);
  }
  for (const std::string& pv : prop_vars) {
    for (const TriplePattern& tp : q.patterns_) {
      if ((tp.subject.is_variable() && tp.subject.value == pv) ||
          (tp.object.is_variable() && tp.object.value == pv)) {
        return Status::NotImplemented(
            "property variable also used in node position: ?" + pv);
      }
    }
  }
  q.variables_.assign(vars.begin(), vars.end());

  // --- Derive star joins from shared node variables across stars.
  // Index: variable -> list of (star index, pattern index or -1 for subject).
  std::map<std::string, std::vector<std::pair<size_t, int>>> occurrences;
  for (size_t s = 0; s < q.stars_.size(); ++s) {
    const StarPattern& star = q.stars_[s];
    occurrences[star.subject_var].push_back({s, -1});
    for (size_t p = 0; p < star.patterns.size(); ++p) {
      const NodePattern& obj = star.patterns[p].object;
      if (obj.is_variable()) {
        occurrences[obj.value].push_back({s, static_cast<int>(p)});
      }
    }
  }
  for (const auto& [variable, occ] : occurrences) {
    // Connect consecutive distinct-star occurrences of a shared variable.
    for (size_t i = 1; i < occ.size(); ++i) {
      auto [ls, lp] = occ[i - 1];
      auto [rs, rp] = occ[i];
      if (ls == rs) continue;  // same-star sharing is handled by the matcher
      StarJoin join;
      join.left_star = ls;
      join.right_star = rs;
      join.variable = variable;
      join.left_pattern_index = lp;
      join.right_pattern_index = rp;
      if (lp == -1 && rp == -1) {
        join.kind = StarJoinKind::kSubjectSubject;
      } else if (lp != -1 && rp != -1) {
        join.kind = StarJoinKind::kObjectObject;
      } else {
        join.kind = StarJoinKind::kObjectSubject;
        if (lp == -1) {
          // Normalize: "left" side carries the object.
          std::swap(join.left_star, join.right_star);
          std::swap(join.left_pattern_index, join.right_pattern_index);
        }
      }
      q.joins_.push_back(join);
    }
  }

  // --- Connectivity check (engines evaluate joins pairwise).
  if (q.stars_.size() > 1) {
    std::vector<bool> reached(q.stars_.size(), false);
    std::vector<size_t> frontier = {0};
    reached[0] = true;
    while (!frontier.empty()) {
      size_t s = frontier.back();
      frontier.pop_back();
      for (const StarJoin& j : q.joins_) {
        size_t other;
        if (j.left_star == s) {
          other = j.right_star;
        } else if (j.right_star == s) {
          other = j.left_star;
        } else {
          continue;
        }
        if (!reached[other]) {
          reached[other] = true;
          frontier.push_back(other);
        }
      }
    }
    for (bool r : reached) {
      if (!r) {
        return Status::InvalidArgument(
            "query '" + q.name_ + "' has a disconnected star join graph");
      }
    }
  }
  return q;
}

bool GraphPatternQuery::HasUnbound() const {
  for (const StarPattern& star : stars_) {
    if (star.HasUnbound()) return true;
  }
  return false;
}

size_t GraphPatternQuery::NumUnbound() const {
  size_t n = 0;
  for (const StarPattern& star : stars_) n += star.NumUnbound();
  return n;
}

std::string GraphPatternQuery::ToString() const {
  std::string out = "Query " + name_ + " {\n";
  for (const StarPattern& star : stars_) {
    out += star.ToString() + "\n";
  }
  for (const StarJoin& join : joins_) {
    out += StringFormat("  join ?%s: star%zu <-> star%zu (%s)\n",
                        join.variable.c_str(), join.left_star,
                        join.right_star, StarJoinKindToString(join.kind));
  }
  out += "}";
  return out;
}

}  // namespace rdfmr
