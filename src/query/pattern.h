// Graph pattern model: triple patterns with possibly unbound properties,
// star subpatterns, and basic graph patterns (BGPs).
//
// Terminology follows the paper:
//  * bound-property triple pattern:    ?s <label> ?o
//  * unbound-property triple pattern:  ?s ?p ?o       ("don't care" edge)
//  * partially-bound object:           ?s ?p ?o . FILTER(CONTAINS(?o, "..."))
//    — the property is unknown but something is known about the object.

#ifndef RDFMR_QUERY_PATTERN_H_
#define RDFMR_QUERY_PATTERN_H_

#include <set>
#include <string>
#include <vector>

#include "common/result.h"

namespace rdfmr {

/// \brief Subject or object position of a triple pattern.
struct NodePattern {
  enum class Kind { kVariable, kConstant };

  Kind kind = Kind::kVariable;
  /// Variable name (without '?') or constant value.
  std::string value;
  /// Optional substring filter on the matched value (only for variables) —
  /// this is how "partially-bound" objects are expressed.
  std::string contains_filter;

  static NodePattern Var(std::string name, std::string contains = "") {
    NodePattern n;
    n.kind = Kind::kVariable;
    n.value = std::move(name);
    n.contains_filter = std::move(contains);
    return n;
  }
  static NodePattern Const(std::string value) {
    NodePattern n;
    n.kind = Kind::kConstant;
    n.value = std::move(value);
    return n;
  }

  bool is_variable() const { return kind == Kind::kVariable; }
  bool is_constant() const { return kind == Kind::kConstant; }
  bool partially_bound() const {
    return is_variable() && !contains_filter.empty();
  }

  /// \brief True iff the concrete `term` satisfies this position (constant
  /// equality or contains filter; an unconstrained variable matches all).
  bool Matches(const std::string& term) const;

  bool operator==(const NodePattern& o) const {
    return kind == o.kind && value == o.value &&
           contains_filter == o.contains_filter;
  }
};

/// \brief One triple pattern.
struct TriplePattern {
  NodePattern subject;
  /// True when the property is a constant edge label.
  bool property_bound = true;
  /// Property constant when bound; property *variable name* when unbound.
  std::string property;
  NodePattern object;
  /// SPARQL OPTIONAL semantics: solutions are extended with this pattern's
  /// matches when compatible ones exist and kept unextended otherwise.
  /// Optional patterns introduce only fresh variables (validated at query
  /// construction) so the left join stays star-local.
  bool optional = false;

  static TriplePattern Bound(NodePattern s, std::string property,
                             NodePattern o) {
    TriplePattern tp;
    tp.subject = std::move(s);
    tp.property_bound = true;
    tp.property = std::move(property);
    tp.object = std::move(o);
    return tp;
  }

  static TriplePattern Unbound(NodePattern s, std::string property_var,
                               NodePattern o) {
    TriplePattern tp;
    tp.subject = std::move(s);
    tp.property_bound = false;
    tp.property = std::move(property_var);
    tp.object = std::move(o);
    return tp;
  }

  bool unbound_property() const { return !property_bound; }

  /// \brief All variable names mentioned by this pattern.
  std::vector<std::string> Variables() const;

  std::string ToString() const;

  bool operator==(const TriplePattern& o) const {
    return subject == o.subject && property_bound == o.property_bound &&
           property == o.property && object == o.object &&
           optional == o.optional;
  }
};

/// \brief A star subpattern: triple patterns sharing one subject variable.
struct StarPattern {
  std::string subject_var;
  std::vector<TriplePattern> patterns;

  /// \brief Constants of the non-optional bound-property patterns (the
  /// paper's P_bnd): what the (β) group-filter requires.
  std::set<std::string> BoundProperties() const;

  /// \brief Constants of ALL bound-property patterns including optional
  /// ones (what a triplegroup must retain for expansion).
  std::set<std::string> AllBoundProperties() const;

  /// \brief Indexes of patterns with unbound properties (P_unbnd),
  /// including optional ones.
  std::vector<size_t> UnboundIndexes() const;

  /// \brief Indexes of optional patterns.
  std::vector<size_t> OptionalIndexes() const;

  bool HasUnbound() const { return !UnboundIndexes().empty(); }
  size_t NumUnbound() const { return UnboundIndexes().size(); }

  /// \brief Number of triple patterns (the star's arity).
  size_t Arity() const { return patterns.size(); }

  std::string ToString() const;
};

/// \brief Kind of a join connecting two star subpatterns.
enum class StarJoinKind { kObjectSubject, kObjectObject, kSubjectSubject };

const char* StarJoinKindToString(StarJoinKind kind);

/// \brief A join edge between two stars of a decomposed BGP.
struct StarJoin {
  size_t left_star = 0;
  size_t right_star = 0;
  std::string variable;  ///< the shared variable
  StarJoinKind kind = StarJoinKind::kObjectSubject;
  /// Index of the triple pattern (within its star) whose *object* carries
  /// the variable; -1 means the variable is that star's subject.
  int left_pattern_index = -1;
  int right_pattern_index = -1;

  /// \brief True when the joining object belongs to an unbound-property
  /// triple pattern on the given side — the case that forces β-unnesting
  /// before the join (Section 4 of the paper).
  bool LeftOnUnbound(const std::vector<StarPattern>& stars) const;
  bool RightOnUnbound(const std::vector<StarPattern>& stars) const;
};

/// \brief A basic graph pattern plus its star decomposition.
class GraphPatternQuery {
 public:
  /// \brief Builds a query from triple patterns; decomposes into stars
  /// (grouped by subject variable, in first-appearance order) and derives
  /// the star join graph. Fails if the join graph is disconnected or a
  /// subject position is constant (not needed by the testbed).
  static Result<GraphPatternQuery> Create(std::string name,
                                          std::vector<TriplePattern> patterns);

  const std::string& name() const { return name_; }
  const std::vector<StarPattern>& stars() const { return stars_; }
  const std::vector<StarJoin>& joins() const { return joins_; }
  const std::vector<TriplePattern>& patterns() const { return patterns_; }

  /// \brief All variable names in the query, sorted.
  const std::vector<std::string>& variables() const { return variables_; }

  /// \brief True if any star has an unbound-property pattern.
  bool HasUnbound() const;

  /// \brief Total number of unbound-property triple patterns.
  size_t NumUnbound() const;

  std::string ToString() const;

 private:
  std::string name_;
  std::vector<TriplePattern> patterns_;
  std::vector<StarPattern> stars_;
  std::vector<StarJoin> joins_;
  std::vector<std::string> variables_;
};

}  // namespace rdfmr

#endif  // RDFMR_QUERY_PATTERN_H_
