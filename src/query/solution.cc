#include "query/solution.h"

#include "common/strings.h"

namespace rdfmr {

bool Solution::Bind(const std::string& var, const std::string& value) {
  auto [it, inserted] = bindings_.emplace(var, value);
  return inserted || it->second == value;
}

const std::string* Solution::Get(const std::string& var) const {
  auto it = bindings_.find(var);
  return it == bindings_.end() ? nullptr : &it->second;
}

Result<Solution> Solution::Merge(const Solution& other) const {
  Solution merged = *this;
  for (const auto& [var, value] : other.bindings_) {
    if (!merged.Bind(var, value)) {
      return Status::InvalidArgument("inconsistent binding for ?" + var);
    }
  }
  return merged;
}

std::string Solution::Serialize() const {
  std::vector<std::string> parts;
  parts.reserve(bindings_.size());
  for (const auto& [var, value] : bindings_) {
    parts.push_back(EscapeField(var, '=') + "=" + EscapeField(value, '='));
  }
  return JoinEscaped(parts, ';');
}

Result<Solution> Solution::Deserialize(const std::string& line) {
  Solution s;
  if (line.empty()) return s;
  for (const std::string& part : SplitEscaped(line, ';')) {
    std::vector<std::string> kv = SplitEscaped(part, '=');
    if (kv.size() != 2) {
      return Status::IoError("malformed solution field: " + part);
    }
    if (!s.Bind(kv[0], kv[1])) {
      return Status::IoError("duplicate inconsistent var in: " + line);
    }
  }
  return s;
}

Result<SolutionSet> ParseSolutionFile(const std::vector<std::string>& lines) {
  SolutionSet out;
  for (const std::string& line : lines) {
    RDFMR_ASSIGN_OR_RETURN(Solution s, Solution::Deserialize(line));
    out.insert(std::move(s));
  }
  return out;
}

}  // namespace rdfmr
