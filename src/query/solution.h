// Solution mappings (variable -> value bindings) and their canonical
// serialization. Every engine's final MR output is a file of canonical
// solution lines, which makes cross-engine answer comparison (the Lemma 1
// content-equivalence check) a direct set comparison.

#ifndef RDFMR_QUERY_SOLUTION_H_
#define RDFMR_QUERY_SOLUTION_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"

namespace rdfmr {

/// \brief One solution mapping: variable name -> bound value.
class Solution {
 public:
  Solution() = default;

  /// \brief Binds `var` to `value`. Returns false (and changes nothing) if
  /// `var` is already bound to a different value — the consistency rule for
  /// merging partial matches.
  bool Bind(const std::string& var, const std::string& value);

  /// \brief Returns the value bound to `var`, or nullptr.
  const std::string* Get(const std::string& var) const;

  bool Has(const std::string& var) const { return bindings_.count(var) > 0; }

  size_t size() const { return bindings_.size(); }

  const std::map<std::string, std::string>& bindings() const {
    return bindings_;
  }

  /// \brief Merges `other` into a copy of this; empty result if inconsistent.
  Result<Solution> Merge(const Solution& other) const;

  /// \brief Canonical line: "var=value;var=value" sorted by var, escaped.
  std::string Serialize() const;

  static Result<Solution> Deserialize(const std::string& line);

  bool operator==(const Solution& o) const { return bindings_ == o.bindings_; }
  bool operator<(const Solution& o) const { return bindings_ < o.bindings_; }

 private:
  std::map<std::string, std::string> bindings_;
};

/// \brief A set of solutions (set semantics, as produced by BGP matching on
/// set-based RDF graphs).
using SolutionSet = std::set<Solution>;

/// \brief Parses a whole answer file into a solution set.
Result<SolutionSet> ParseSolutionFile(const std::vector<std::string>& lines);

}  // namespace rdfmr

#endif  // RDFMR_QUERY_SOLUTION_H_
