#include "query/sparql_parser.h"

#include <array>
#include <cctype>
#include <map>
#include <vector>

#include "common/strings.h"

namespace rdfmr {

namespace {

// ---- Tokenizer ------------------------------------------------------------

struct Token {
  enum class Kind {
    kKeyword,   // SELECT WHERE FILTER CONTAINS STR COUNT DISTINCT AS ...
    kVar,       // ?name
    kIri,       // <...>
    kLiteral,   // "..."
    kNumber,    // digits (HAVING thresholds)
    kPunct,     // { } ( ) . , = * >=
    kEnd,
  };
  Kind kind;
  std::string text;
};

class Tokenizer {
 public:
  explicit Tokenizer(const std::string& input) : input_(input) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    while (pos_ < input_.size()) {
      char c = input_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (c == '#') {  // comment to end of line
        while (pos_ < input_.size() && input_[pos_] != '\n') ++pos_;
        continue;
      }
      if (c == '?') {
        ++pos_;
        std::string name = ReadName();
        if (name.empty()) return Err("variable with empty name");
        out.push_back({Token::Kind::kVar, name});
        continue;
      }
      if (c == '<') {
        size_t end = input_.find('>', pos_);
        if (end == std::string::npos) return Err("unterminated IRI");
        out.push_back(
            {Token::Kind::kIri, input_.substr(pos_ + 1, end - pos_ - 1)});
        pos_ = end + 1;
        continue;
      }
      if (c == '"') {
        std::string lit;
        ++pos_;
        while (pos_ < input_.size() && input_[pos_] != '"') {
          if (input_[pos_] == '\\' && pos_ + 1 < input_.size()) ++pos_;
          lit.push_back(input_[pos_++]);
        }
        if (pos_ >= input_.size()) return Err("unterminated literal");
        ++pos_;
        out.push_back({Token::Kind::kLiteral, lit});
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c))) {
        std::string word = ReadName();
        std::string upper;
        for (char w : word) {
          upper.push_back(
              static_cast<char>(std::toupper(static_cast<unsigned char>(w))));
        }
        out.push_back({Token::Kind::kKeyword, upper});
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        std::string number;
        while (pos_ < input_.size() &&
               std::isdigit(static_cast<unsigned char>(input_[pos_]))) {
          number.push_back(input_[pos_++]);
        }
        out.push_back({Token::Kind::kNumber, number});
        continue;
      }
      if (c == '>' && pos_ + 1 < input_.size() && input_[pos_ + 1] == '=') {
        out.push_back({Token::Kind::kPunct, ">="});
        pos_ += 2;
        continue;
      }
      if (std::string("{}().,=*;").find(c) != std::string::npos) {
        out.push_back({Token::Kind::kPunct, std::string(1, c)});
        ++pos_;
        continue;
      }
      return Err(std::string("unexpected character '") + c + "'");
    }
    out.push_back({Token::Kind::kEnd, ""});
    return out;
  }

 private:
  std::string ReadName() {
    std::string name;
    while (pos_ < input_.size() &&
           (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
            input_[pos_] == '_')) {
      name.push_back(input_[pos_++]);
    }
    return name;
  }

  Status Err(const std::string& msg) {
    return Status::IoError("SPARQL tokenizer: " + msg + " at offset " +
                           std::to_string(pos_));
  }

  const std::string& input_;
  size_t pos_ = 0;
};

// ---- Parser ---------------------------------------------------------------

struct RawTerm {
  enum class Kind { kVar, kIri, kLiteral } kind;
  std::string text;
};

struct RawTriple {
  std::array<RawTerm, 3> terms;
  bool optional = false;
};

struct Filter {
  enum class Kind { kContains, kEquals } kind;
  std::string var;
  std::string value;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<ParsedQuery> Parse(const std::string& name) {
    RDFMR_RETURN_NOT_OK(ExpectKeyword("SELECT"));
    std::optional<AggregateSpec> aggregate;
    // Projection list (we evaluate SELECT * semantics for the BGP; named
    // projections are accepted, COUNT expressions start an aggregation).
    if (Peek().kind == Token::Kind::kPunct && Peek().text == "*") {
      Advance();
    } else {
      std::vector<std::string> projected_vars;
      while (true) {
        if (Peek().kind == Token::Kind::kVar) {
          projected_vars.push_back(Peek().text);
          Advance();
          continue;
        }
        if (Peek().kind == Token::Kind::kPunct && Peek().text == "(") {
          // '(' COUNT '(' DISTINCT? var ')' AS var ')'
          Advance();
          if (aggregate.has_value()) {
            return Status::NotImplemented(
                "only one COUNT expression is supported");
          }
          aggregate.emplace();
          RDFMR_RETURN_NOT_OK(
              ParseCountExpr(&aggregate->counted_var, &aggregate->distinct));
          RDFMR_RETURN_NOT_OK(ExpectKeyword("AS"));
          if (Peek().kind != Token::Kind::kVar) {
            return Status::IoError("COUNT(...) AS needs a variable");
          }
          aggregate->count_var = Peek().text;
          Advance();
          RDFMR_RETURN_NOT_OK(ExpectPunct(")"));
          continue;
        }
        break;
      }
      if (aggregate.has_value()) {
        // The projected plain variables default the GROUP BY list when no
        // explicit GROUP BY clause follows.
        aggregate->group_vars = projected_vars;
      }
    }
    RDFMR_RETURN_NOT_OK(ExpectKeyword("WHERE"));
    RDFMR_RETURN_NOT_OK(ExpectPunct("{"));

    std::vector<RawTriple> raw_triples;
    std::vector<Filter> filters;
    while (!(Peek().kind == Token::Kind::kPunct && Peek().text == "}")) {
      if (Peek().kind == Token::Kind::kKeyword && Peek().text == "FILTER") {
        RDFMR_ASSIGN_OR_RETURN(Filter f, ParseFilter());
        filters.push_back(std::move(f));
        continue;
      }
      if (Peek().kind == Token::Kind::kKeyword &&
          Peek().text == "OPTIONAL") {
        // OPTIONAL '{' triple '.'? '}' — one pattern per optional group.
        Advance();
        RDFMR_RETURN_NOT_OK(ExpectPunct("{"));
        RawTriple triple;
        triple.optional = true;
        RDFMR_ASSIGN_OR_RETURN(triple.terms[0], ParseTerm());
        RDFMR_ASSIGN_OR_RETURN(triple.terms[1], ParseTerm());
        RDFMR_ASSIGN_OR_RETURN(triple.terms[2], ParseTerm());
        if (Peek().kind == Token::Kind::kPunct && Peek().text == ".") {
          Advance();
        }
        if (!(Peek().kind == Token::Kind::kPunct && Peek().text == "}")) {
          return Status::NotImplemented(
              "OPTIONAL groups are limited to one triple pattern");
        }
        Advance();  // consume the group's '}'
        raw_triples.push_back(std::move(triple));
        continue;
      }
      RawTriple triple;
      RDFMR_ASSIGN_OR_RETURN(triple.terms[0], ParseTerm());
      RDFMR_ASSIGN_OR_RETURN(triple.terms[1], ParseTerm());
      RDFMR_ASSIGN_OR_RETURN(triple.terms[2], ParseTerm());
      raw_triples.push_back(std::move(triple));
      // Triple separator: '.' (optional before '}').
      if (Peek().kind == Token::Kind::kPunct && Peek().text == ".") Advance();
    }
    Advance();  // consume '}'

    // Optional GROUP BY and HAVING clauses.
    if (Peek().kind == Token::Kind::kKeyword && Peek().text == "GROUP") {
      Advance();
      RDFMR_RETURN_NOT_OK(ExpectKeyword("BY"));
      if (!aggregate.has_value()) {
        return Status::InvalidArgument(
            "GROUP BY without a COUNT expression in the projection");
      }
      aggregate->group_vars.clear();
      while (Peek().kind == Token::Kind::kVar) {
        aggregate->group_vars.push_back(Peek().text);
        Advance();
      }
      if (aggregate->group_vars.empty()) {
        return Status::IoError("GROUP BY needs at least one variable");
      }
    }
    if (Peek().kind == Token::Kind::kKeyword && Peek().text == "HAVING") {
      Advance();
      if (!aggregate.has_value()) {
        return Status::InvalidArgument(
            "HAVING without a COUNT expression in the projection");
      }
      RDFMR_RETURN_NOT_OK(ExpectPunct("("));
      std::string having_var;
      bool having_distinct = false;
      RDFMR_RETURN_NOT_OK(ParseCountExpr(&having_var, &having_distinct));
      if (having_var != aggregate->counted_var ||
          having_distinct != aggregate->distinct) {
        return Status::NotImplemented(
            "HAVING must use the projected COUNT expression");
      }
      RDFMR_RETURN_NOT_OK(ExpectPunct(">="));
      if (Peek().kind != Token::Kind::kNumber) {
        return Status::IoError("HAVING threshold must be a number");
      }
      try {
        aggregate->min_count = std::stoull(Peek().text);
      } catch (...) {
        return Status::IoError("bad HAVING threshold: " + Peek().text);
      }
      Advance();
      RDFMR_RETURN_NOT_OK(ExpectPunct(")"));
    }
    if (Peek().kind != Token::Kind::kEnd) {
      return Status::IoError("trailing tokens after query: '" +
                             Peek().text + "'");
    }

    if (raw_triples.empty()) {
      return Status::InvalidArgument("query '" + name + "' has empty BGP");
    }

    // Apply filters: equality pins a variable to a constant; contains
    // becomes the node's contains_filter.
    std::map<std::string, std::string> equals;
    std::map<std::string, std::string> contains;
    for (const Filter& f : filters) {
      if (f.kind == Filter::Kind::kEquals) {
        equals[f.var] = f.value;
      } else {
        contains[f.var] = f.value;
      }
    }

    auto to_node = [&](const RawTerm& t) -> NodePattern {
      switch (t.kind) {
        case RawTerm::Kind::kIri:
        case RawTerm::Kind::kLiteral:
          return NodePattern::Const(t.text);
        case RawTerm::Kind::kVar: {
          auto eq = equals.find(t.text);
          if (eq != equals.end()) return NodePattern::Const(eq->second);
          auto ct = contains.find(t.text);
          if (ct != contains.end()) {
            return NodePattern::Var(t.text, ct->second);
          }
          return NodePattern::Var(t.text);
        }
      }
      return NodePattern::Var(t.text);
    };

    std::vector<TriplePattern> patterns;
    for (const RawTriple& raw : raw_triples) {
      const RawTerm& s = raw.terms[0];
      const RawTerm& p = raw.terms[1];
      const RawTerm& o = raw.terms[2];
      if (p.kind == RawTerm::Kind::kLiteral) {
        return Status::InvalidArgument("literal in property position");
      }
      TriplePattern tp;
      tp.subject = to_node(s);
      tp.object = to_node(o);
      tp.optional = raw.optional;
      if (p.kind == RawTerm::Kind::kIri) {
        tp.property_bound = true;
        tp.property = p.text;
      } else {
        auto eq = equals.find(p.text);
        if (eq != equals.end()) {
          tp.property_bound = true;  // FILTER pinned the property
          tp.property = eq->second;
        } else {
          tp.property_bound = false;
          tp.property = p.text;
        }
      }
      patterns.push_back(std::move(tp));
    }
    RDFMR_ASSIGN_OR_RETURN(
        GraphPatternQuery query,
        GraphPatternQuery::Create(name, std::move(patterns)));
    if (aggregate.has_value()) {
      if (aggregate->group_vars.empty()) {
        return Status::InvalidArgument(
            "aggregate query needs projected variables or GROUP BY");
      }
      RDFMR_RETURN_NOT_OK(aggregate->Validate(query));
    }
    ParsedQuery out{std::move(query), std::move(aggregate)};
    return out;
  }

 private:
  // COUNT '(' DISTINCT? var ')'
  Status ParseCountExpr(std::string* var, bool* distinct) {
    RDFMR_RETURN_NOT_OK(ExpectKeyword("COUNT"));
    RDFMR_RETURN_NOT_OK(ExpectPunct("("));
    *distinct = false;
    if (Peek().kind == Token::Kind::kKeyword && Peek().text == "DISTINCT") {
      *distinct = true;
      Advance();
    }
    if (Peek().kind != Token::Kind::kVar) {
      return Status::IoError("COUNT needs a variable");
    }
    *var = Peek().text;
    Advance();
    return ExpectPunct(")");
  }

  const Token& Peek() const { return tokens_[pos_]; }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }

  Status ExpectKeyword(const std::string& kw) {
    if (Peek().kind != Token::Kind::kKeyword || Peek().text != kw) {
      return Status::IoError("expected " + kw + ", got '" + Peek().text +
                             "'");
    }
    Advance();
    return Status::OK();
  }

  Status ExpectPunct(const std::string& p) {
    if (Peek().kind != Token::Kind::kPunct || Peek().text != p) {
      return Status::IoError("expected '" + p + "', got '" + Peek().text +
                             "'");
    }
    Advance();
    return Status::OK();
  }

  Result<RawTerm> ParseTerm() {
    const Token& t = Peek();
    switch (t.kind) {
      case Token::Kind::kVar: {
        RawTerm out{RawTerm::Kind::kVar, t.text};
        Advance();
        return out;
      }
      case Token::Kind::kIri: {
        RawTerm out{RawTerm::Kind::kIri, t.text};
        Advance();
        return out;
      }
      case Token::Kind::kLiteral: {
        RawTerm out{RawTerm::Kind::kLiteral, t.text};
        Advance();
        return out;
      }
      default:
        return Status::IoError("expected term, got '" + t.text + "'");
    }
  }

  // FILTER '(' CONTAINS '(' STR '(' var ')' ',' literal ')' ')'
  // FILTER '(' var '=' (literal|iri) ')'
  Result<Filter> ParseFilter() {
    RDFMR_RETURN_NOT_OK(ExpectKeyword("FILTER"));
    RDFMR_RETURN_NOT_OK(ExpectPunct("("));
    Filter f;
    if (Peek().kind == Token::Kind::kKeyword && Peek().text == "CONTAINS") {
      Advance();
      RDFMR_RETURN_NOT_OK(ExpectPunct("("));
      if (Peek().kind == Token::Kind::kKeyword && Peek().text == "STR") {
        Advance();
        RDFMR_RETURN_NOT_OK(ExpectPunct("("));
        if (Peek().kind != Token::Kind::kVar) {
          return Status::IoError("CONTAINS(STR(...)) needs a variable");
        }
        f.var = Peek().text;
        Advance();
        RDFMR_RETURN_NOT_OK(ExpectPunct(")"));
      } else if (Peek().kind == Token::Kind::kVar) {
        f.var = Peek().text;
        Advance();
      } else {
        return Status::IoError("CONTAINS needs a variable argument");
      }
      RDFMR_RETURN_NOT_OK(ExpectPunct(","));
      if (Peek().kind != Token::Kind::kLiteral) {
        return Status::IoError("CONTAINS needs a literal pattern");
      }
      f.value = Peek().text;
      Advance();
      RDFMR_RETURN_NOT_OK(ExpectPunct(")"));
      f.kind = Filter::Kind::kContains;
    } else if (Peek().kind == Token::Kind::kVar) {
      f.var = Peek().text;
      Advance();
      RDFMR_RETURN_NOT_OK(ExpectPunct("="));
      if (Peek().kind != Token::Kind::kLiteral &&
          Peek().kind != Token::Kind::kIri) {
        return Status::IoError("equality filter needs a literal or IRI");
      }
      f.value = Peek().text;
      Advance();
      f.kind = Filter::Kind::kEquals;
    } else {
      return Status::IoError("unsupported FILTER expression");
    }
    RDFMR_RETURN_NOT_OK(ExpectPunct(")"));
    return f;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<ParsedQuery> ParseSparqlQuery(const std::string& name,
                                     const std::string& text) {
  Tokenizer tokenizer(text);
  RDFMR_ASSIGN_OR_RETURN(std::vector<Token> tokens, tokenizer.Tokenize());
  Parser parser(std::move(tokens));
  return parser.Parse(name);
}

Result<GraphPatternQuery> ParseSparql(const std::string& name,
                                      const std::string& text) {
  RDFMR_ASSIGN_OR_RETURN(ParsedQuery parsed, ParseSparqlQuery(name, text));
  if (parsed.aggregate.has_value()) {
    return Status::InvalidArgument(
        "query '" + name +
        "' uses COUNT aggregation; use ParseSparqlQuery");
  }
  return std::move(parsed.query);
}

}  // namespace rdfmr
