// Parser for the SPARQL subset exercised by the paper's testbed:
// SELECT * / SELECT ?v..., a single BGP of triple patterns (bound or
// unbound properties), FILTER(CONTAINS(STR(?v), "...")) / FILTER(?v = ...)
// constraints for (partially-)bound objects, and COUNT aggregation with
// GROUP BY / HAVING (the future-work extension).
//
// Grammar (informal):
//   query    := 'SELECT' projection 'WHERE' '{' clause* '}' group? having?
//   projection := '*' | (var | count_expr)+
//   count_expr := '(' 'COUNT' '(' 'DISTINCT'? var ')' 'AS' var ')'
//   clause   := triple '.' | filter
//   triple   := term term term
//   term     := var | '<' iri '>' | '"' literal '"'
//   filter   := 'FILTER' '(' 'CONTAINS' '(' 'STR' '(' var ')' ',' lit ')' ')'
//             | 'FILTER' '(' var '=' (lit | iri) ')'
//   group    := 'GROUP' 'BY' var+
//   having   := 'HAVING' '(' 'COUNT' '(' 'DISTINCT'? var ')' '>=' number ')'
//   var      := '?' name

#ifndef RDFMR_QUERY_SPARQL_PARSER_H_
#define RDFMR_QUERY_SPARQL_PARSER_H_

#include <optional>
#include <string>

#include "common/result.h"
#include "query/aggregate.h"
#include "query/pattern.h"

namespace rdfmr {

/// \brief A parsed query: the BGP plus an optional aggregation constraint.
struct ParsedQuery {
  GraphPatternQuery query;
  std::optional<AggregateSpec> aggregate;
};

/// \brief Parses the full subset including COUNT/GROUP BY/HAVING.
Result<ParsedQuery> ParseSparqlQuery(const std::string& name,
                                     const std::string& text);

/// \brief Parses `text` into a plain GraphPatternQuery named `name`;
/// rejects aggregate queries (use ParseSparqlQuery for those).
///
/// Equality filters turn the variable's occurrences into constants;
/// CONTAINS filters become contains-filters on the variable's node pattern
/// ("partially-bound" objects in the paper's terminology).
Result<GraphPatternQuery> ParseSparql(const std::string& name,
                                      const std::string& text);

}  // namespace rdfmr

#endif  // RDFMR_QUERY_SPARQL_PARSER_H_
