#include "rdf/dictionary.h"

#include "common/logging.h"

namespace rdfmr {

uint32_t Dictionary::Intern(std::string_view term) {
  auto it = index_.find(std::string(term));
  if (it != index_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(terms_.size());
  terms_.emplace_back(term);
  string_bytes_ += term.size();
  index_.emplace(terms_.back(), id);
  return id;
}

Result<uint32_t> Dictionary::Lookup(std::string_view term) const {
  auto it = index_.find(std::string(term));
  if (it == index_.end()) {
    return Status::NotFound("term not in dictionary: " + std::string(term));
  }
  return it->second;
}

const std::string& Dictionary::At(uint32_t id) const {
  RDFMR_CHECK(id < terms_.size()) << "dictionary id out of range";
  return terms_[id];
}

}  // namespace rdfmr
