#include "rdf/dictionary.h"

#include <mutex>

#include "common/logging.h"

namespace rdfmr {

uint32_t Dictionary::Intern(std::string_view term) {
  // Fast path: already interned — shared lock only, so concurrent
  // re-interning of known terms never serializes readers behind writers.
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = index_.find(term);
    if (it != index_.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = index_.find(term);  // re-check: another writer may have won
  if (it != index_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(terms_.size());
  terms_.emplace_back(term);
  string_bytes_ += term.size();
  index_.emplace(terms_.back(), id);
  return id;
}

Result<uint32_t> Dictionary::Lookup(std::string_view term) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = index_.find(term);
  if (it == index_.end()) {
    return Status::NotFound("term not in dictionary: " + std::string(term));
  }
  return it->second;
}

const std::string& Dictionary::At(uint32_t id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  RDFMR_CHECK(id < terms_.size()) << "dictionary id out of range";
  // Safe to return by reference after unlocking: deque elements are never
  // relocated and interned terms are never mutated or removed.
  return terms_[id];
}

}  // namespace rdfmr
