// Bidirectional term dictionary (string <-> dense id).
//
// Used by graph statistics and the vertical-partitioning store to avoid
// repeated string comparisons, and by the N-Triples loader to compact long
// IRIs into short local names.

#ifndef RDFMR_RDF_DICTIONARY_H_
#define RDFMR_RDF_DICTIONARY_H_

#include <cstdint>
#include <deque>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/result.h"

namespace rdfmr {

/// \brief Append-only string interning table with dense uint32 ids.
///
/// Thread-safe for the serving layer's shared read paths: Intern takes an
/// exclusive lock; Lookup/At/size/StringBytes take a shared lock, so any
/// number of concurrent readers may run against a dictionary that is still
/// being extended. Terms live in a std::deque, whose elements are never
/// relocated, so the reference At() returns stays valid for the
/// dictionary's lifetime even across later Intern calls.
class Dictionary {
 public:
  Dictionary() = default;

  Dictionary(const Dictionary&) = delete;
  Dictionary& operator=(const Dictionary&) = delete;

  /// \brief Returns the id for `term`, inserting it if new.
  uint32_t Intern(std::string_view term);

  /// \brief Returns the id for `term` or NotFound.
  Result<uint32_t> Lookup(std::string_view term) const;

  /// \brief Returns the string for `id`; id must be < size(). The
  /// reference remains valid for the dictionary's lifetime.
  const std::string& At(uint32_t id) const;

  size_t size() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return terms_.size();
  }

  /// \brief Total bytes of all interned strings (dictionary footprint).
  size_t StringBytes() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return string_bytes_;
  }

 private:
  /// Guards index_, terms_, and string_bytes_ (shared for reads,
  /// exclusive for Intern).
  mutable std::shared_mutex mu_;
  std::unordered_map<std::string_view, uint32_t> index_;
  /// Deque, not vector: growth must not relocate the strings that
  /// index_'s string_view keys and At()'s returned references point into.
  std::deque<std::string> terms_;
  size_t string_bytes_ = 0;
};

}  // namespace rdfmr

#endif  // RDFMR_RDF_DICTIONARY_H_
