// Bidirectional term dictionary (string <-> dense id).
//
// Used by graph statistics and the vertical-partitioning store to avoid
// repeated string comparisons, and by the N-Triples loader to compact long
// IRIs into short local names.

#ifndef RDFMR_RDF_DICTIONARY_H_
#define RDFMR_RDF_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"

namespace rdfmr {

/// \brief Append-only string interning table with dense uint32 ids.
class Dictionary {
 public:
  Dictionary() = default;

  /// \brief Returns the id for `term`, inserting it if new.
  uint32_t Intern(std::string_view term);

  /// \brief Returns the id for `term` or NotFound.
  Result<uint32_t> Lookup(std::string_view term) const;

  /// \brief Returns the string for `id`; id must be < size().
  const std::string& At(uint32_t id) const;

  size_t size() const { return terms_.size(); }

  /// \brief Total bytes of all interned strings (dictionary footprint).
  size_t StringBytes() const { return string_bytes_; }

 private:
  std::unordered_map<std::string, uint32_t> index_;
  std::vector<std::string> terms_;
  size_t string_bytes_ = 0;
};

}  // namespace rdfmr

#endif  // RDFMR_RDF_DICTIONARY_H_
