#include "rdf/graph_stats.h"

#include <unordered_map>
#include <unordered_set>

#include "common/strings.h"

namespace rdfmr {

GraphStats GraphStats::Compute(const std::vector<Triple>& triples) {
  GraphStats stats;
  stats.triple_count_ = triples.size();

  std::unordered_set<std::string> subjects;
  // (property -> subject -> count)
  std::unordered_map<std::string, std::unordered_map<std::string, uint64_t>>
      per_property;
  for (const Triple& t : triples) {
    subjects.insert(t.subject);
    per_property[t.property][t.subject]++;
  }
  stats.distinct_subjects_ = subjects.size();

  for (const auto& [property, subject_counts] : per_property) {
    PropertyStats ps;
    ps.subject_count = subject_counts.size();
    for (const auto& [_, count] : subject_counts) {
      ps.triple_count += count;
      ps.max_multiplicity = std::max(ps.max_multiplicity, count);
    }
    ps.avg_multiplicity =
        ps.subject_count == 0
            ? 0.0
            : static_cast<double>(ps.triple_count) /
                  static_cast<double>(ps.subject_count);
    stats.properties_[property] = ps;
  }
  return stats;
}

GraphStats GraphStats::FromParts(
    uint64_t triple_count, uint64_t distinct_subjects,
    std::map<std::string, PropertyStats> properties) {
  GraphStats stats;
  stats.triple_count_ = triple_count;
  stats.distinct_subjects_ = distinct_subjects;
  stats.properties_ = std::move(properties);
  for (auto& [_, ps] : stats.properties_) {
    ps.avg_multiplicity =
        ps.subject_count == 0
            ? 0.0
            : static_cast<double>(ps.triple_count) /
                  static_cast<double>(ps.subject_count);
  }
  return stats;
}

PropertyStats GraphStats::ForProperty(const std::string& property) const {
  auto it = properties_.find(property);
  if (it == properties_.end()) return PropertyStats{};
  return it->second;
}

double GraphStats::MultiValuedFraction() const {
  if (properties_.empty()) return 0.0;
  uint64_t multi = 0;
  for (const auto& [_, ps] : properties_) {
    if (ps.multi_valued()) ++multi;
  }
  return static_cast<double>(multi) / static_cast<double>(properties_.size());
}

double GraphStats::AvgTriplesPerSubject() const {
  if (distinct_subjects_ == 0) return 0.0;
  return static_cast<double>(triple_count_) /
         static_cast<double>(distinct_subjects_);
}

std::string GraphStats::Summary() const {
  return StringFormat(
      "triples=%llu subjects=%llu properties=%llu multi-valued=%.0f%% "
      "avg-star=%.1f",
      static_cast<unsigned long long>(triple_count_),
      static_cast<unsigned long long>(distinct_subjects_),
      static_cast<unsigned long long>(distinct_properties()),
      MultiValuedFraction() * 100.0, AvgTriplesPerSubject());
}

}  // namespace rdfmr
