// Graph statistics used by the planner and by the experiment harnesses:
// property selectivity, multiplicity (multi-valuedness), subject counts.
//
// The paper's redundancy analysis hinges on property multiplicity: Bio2RDF
// properties reach multiplicity 13K, and >45% of DBpedia/BTC properties are
// multi-valued. These statistics quantify that for any loaded graph.

#ifndef RDFMR_RDF_GRAPH_STATS_H_
#define RDFMR_RDF_GRAPH_STATS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "rdf/triple.h"

namespace rdfmr {

/// \brief Per-property aggregate statistics.
struct PropertyStats {
  uint64_t triple_count = 0;     ///< number of triples with this property
  uint64_t subject_count = 0;    ///< distinct subjects carrying it
  uint64_t max_multiplicity = 0; ///< max #objects for one subject
  double avg_multiplicity = 0.0; ///< triple_count / subject_count

  bool multi_valued() const { return max_multiplicity > 1; }
};

/// \brief Whole-graph statistics.
class GraphStats {
 public:
  /// \brief Computes statistics over a triple set in one pass.
  static GraphStats Compute(const std::vector<Triple>& triples);

  /// \brief Reassembles a catalog from already-aggregated parts (the rdx
  /// stats-section decode path). `avg_multiplicity` is recomputed from
  /// each entry's counts, so callers only supply the persisted integers.
  static GraphStats FromParts(uint64_t triple_count,
                              uint64_t distinct_subjects,
                              std::map<std::string, PropertyStats> properties);

  uint64_t triple_count() const { return triple_count_; }
  uint64_t distinct_subjects() const { return distinct_subjects_; }
  uint64_t distinct_properties() const {
    return static_cast<uint64_t>(properties_.size());
  }

  /// \brief Stats for one property; zeroed entry if absent.
  PropertyStats ForProperty(const std::string& property) const;

  /// \brief All per-property stats, keyed by property name.
  const std::map<std::string, PropertyStats>& properties() const {
    return properties_;
  }

  /// \brief Fraction of properties with max multiplicity > 1.
  double MultiValuedFraction() const;

  /// \brief Average number of triples per subject (star fan-out).
  double AvgTriplesPerSubject() const;

  /// \brief One-line summary for logs and bench headers.
  std::string Summary() const;

 private:
  uint64_t triple_count_ = 0;
  uint64_t distinct_subjects_ = 0;
  std::map<std::string, PropertyStats> properties_;
};

}  // namespace rdfmr

#endif  // RDFMR_RDF_GRAPH_STATS_H_
