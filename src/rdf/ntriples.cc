#include "rdf/ntriples.h"

#include <algorithm>

#include "common/strings.h"

namespace rdfmr {

namespace {

// Scans one whitespace-delimited N-Triples token starting at `pos`,
// respecting quoted literals. Returns the token and advances pos.
Result<std::string_view> NextToken(std::string_view line, size_t* pos) {
  while (*pos < line.size() && (line[*pos] == ' ' || line[*pos] == '\t')) {
    ++*pos;
  }
  if (*pos >= line.size()) return Status::IoError("unexpected end of line");
  size_t start = *pos;
  if (line[*pos] == '"') {
    ++*pos;
    while (*pos < line.size()) {
      if (line[*pos] == '\\') {
        *pos += 2;
      } else if (line[*pos] == '"') {
        ++*pos;
        break;
      } else {
        ++*pos;
      }
    }
    // Consume any datatype/lang suffix.
    while (*pos < line.size() && line[*pos] != ' ' && line[*pos] != '\t') {
      ++*pos;
    }
  } else {
    while (*pos < line.size() && line[*pos] != ' ' && line[*pos] != '\t') {
      ++*pos;
    }
  }
  return line.substr(start, *pos - start);
}

}  // namespace

Result<Statement> ParseNTriplesLine(const std::string& line) {
  std::string_view body = Trim(line);
  if (body.empty() || body.front() == '#') {
    return Status::NotFound("blank or comment line");
  }
  size_t pos = 0;
  RDFMR_ASSIGN_OR_RETURN(std::string_view stok, NextToken(body, &pos));
  RDFMR_ASSIGN_OR_RETURN(std::string_view ptok, NextToken(body, &pos));
  RDFMR_ASSIGN_OR_RETURN(std::string_view otok, NextToken(body, &pos));
  std::string_view tail = Trim(body.substr(pos));
  if (tail != ".") {
    return Status::IoError("N-Triples line must end with '.': " + line);
  }
  Statement st;
  RDFMR_ASSIGN_OR_RETURN(st.subject, Term::FromNTriples(stok));
  RDFMR_ASSIGN_OR_RETURN(st.predicate, Term::FromNTriples(ptok));
  RDFMR_ASSIGN_OR_RETURN(st.object, Term::FromNTriples(otok));
  if (st.subject.is_literal()) {
    return Status::IoError("subject cannot be a literal: " + line);
  }
  if (!st.predicate.is_iri()) {
    return Status::IoError("predicate must be an IRI: " + line);
  }
  return st;
}

Result<std::vector<Statement>> ParseNTriples(const std::string& text) {
  std::vector<Statement> out;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    std::string line = text.substr(start, end - start);
    start = end + 1;
    if (Trim(line).empty() || Trim(line).front() == '#') continue;
    RDFMR_ASSIGN_OR_RETURN(Statement st, ParseNTriplesLine(line));
    out.push_back(std::move(st));
    if (end == text.size()) break;
  }
  return out;
}

std::string WriteNTriples(const std::vector<Statement>& statements) {
  std::string out;
  for (const Statement& st : statements) {
    out += st.subject.ToNTriples();
    out += " ";
    out += st.predicate.ToNTriples();
    out += " ";
    out += st.object.ToNTriples();
    out += " .\n";
  }
  return out;
}

IriCompactor::IriCompactor(
    std::vector<std::pair<std::string, std::string>> prefixes)
    : prefixes_(std::move(prefixes)) {
  // Longest prefix first so the most specific namespace wins.
  std::sort(prefixes_.begin(), prefixes_.end(),
            [](const auto& a, const auto& b) {
              return a.first.size() > b.first.size();
            });
}

std::string IriCompactor::Compact(const Term& term) const {
  switch (term.kind()) {
    case TermKind::kBlank:
      return "_:" + term.value();
    case TermKind::kLiteral:
      return term.value();
    case TermKind::kIri: {
      for (const auto& [prefix, replacement] : prefixes_) {
        if (StartsWith(term.value(), prefix)) {
          return replacement + term.value().substr(prefix.size());
        }
      }
      return term.value();
    }
  }
  return term.value();
}

Triple IriCompactor::ToTriple(const Statement& st) const {
  return Triple(Compact(st.subject), Compact(st.predicate),
                Compact(st.object));
}

Result<std::vector<Triple>> LoadNTriples(const std::string& text,
                                         const IriCompactor& compactor) {
  RDFMR_ASSIGN_OR_RETURN(std::vector<Statement> statements,
                         ParseNTriples(text));
  std::vector<Triple> out;
  out.reserve(statements.size());
  for (const Statement& st : statements) {
    out.push_back(compactor.ToTriple(st));
  }
  return out;
}

}  // namespace rdfmr
