// N-Triples reader and writer.
//
// The on-disk interchange format for RDF warehouses in the paper is
// n-triple; this module loads/saves those files and can compact long IRIs
// to local names via a prefix map (the engines operate on compact terms).

#ifndef RDFMR_RDF_NTRIPLES_H_
#define RDFMR_RDF_NTRIPLES_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "rdf/term.h"
#include "rdf/triple.h"

namespace rdfmr {

/// \brief A fully-typed parsed statement.
struct Statement {
  Term subject;
  Term predicate;
  Term object;
};

/// \brief Parses one N-Triples line ("<s> <p> <o> ."). Returns NotFound for
/// blank/comment lines (callers skip those).
Result<Statement> ParseNTriplesLine(const std::string& line);

/// \brief Parses a whole N-Triples document; skips blank lines and comments.
Result<std::vector<Statement>> ParseNTriples(const std::string& text);

/// \brief Serializes statements to N-Triples text.
std::string WriteNTriples(const std::vector<Statement>& statements);

/// \brief Maps IRIs to compact local names using `prefixes`
/// (e.g. "http://bio2rdf.org/ns/" -> ""). Longest prefix wins. Literals keep
/// their lexical form; blank nodes keep "_:" labels.
class IriCompactor {
 public:
  /// \param prefixes pairs of (iri_prefix, replacement)
  explicit IriCompactor(
      std::vector<std::pair<std::string, std::string>> prefixes);

  /// \brief Compacts one term to an engine-level identifier string.
  std::string Compact(const Term& term) const;

  /// \brief Converts a typed statement to an engine Triple.
  Triple ToTriple(const Statement& st) const;

 private:
  std::vector<std::pair<std::string, std::string>> prefixes_;
};

/// \brief Convenience: parse an N-Triples document straight to engine
/// triples using the given compactor.
Result<std::vector<Triple>> LoadNTriples(const std::string& text,
                                         const IriCompactor& compactor);

}  // namespace rdfmr

#endif  // RDFMR_RDF_NTRIPLES_H_
