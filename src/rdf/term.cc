#include "rdf/term.h"

#include "common/strings.h"

namespace rdfmr {

namespace {

std::string EscapeLiteral(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

Result<std::string> UnescapeLiteral(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') {
      out.push_back(s[i]);
      continue;
    }
    if (i + 1 >= s.size()) {
      return Status::IoError("dangling escape in literal");
    }
    switch (s[++i]) {
      case '"':
        out.push_back('"');
        break;
      case '\\':
        out.push_back('\\');
        break;
      case 'n':
        out.push_back('\n');
        break;
      case 'r':
        out.push_back('\r');
        break;
      case 't':
        out.push_back('\t');
        break;
      default:
        return Status::IoError("unknown escape in literal");
    }
  }
  return out;
}

}  // namespace

std::string Term::ToNTriples() const {
  switch (kind_) {
    case TermKind::kIri:
      return "<" + value_ + ">";
    case TermKind::kBlank:
      return "_:" + value_;
    case TermKind::kLiteral: {
      // Built with insert-free appends: `"\"" + <rvalue string>` trips a
      // GCC 12 -Wrestrict false positive (PR105329) at -O2 and up.
      std::string out = "\"";
      out += EscapeLiteral(value_);
      out += '"';
      if (!language_.empty()) {
        out += "@" + language_;
      } else if (!datatype_.empty()) {
        out += "^^<" + datatype_ + ">";
      }
      return out;
    }
  }
  return "";
}

Result<Term> Term::FromNTriples(std::string_view token) {
  token = Trim(token);
  if (token.empty()) return Status::IoError("empty term token");
  if (token.front() == '<') {
    if (token.back() != '>' || token.size() < 2) {
      return Status::IoError("malformed IRI: " + std::string(token));
    }
    return Term::Iri(std::string(token.substr(1, token.size() - 2)));
  }
  if (StartsWith(token, "_:")) {
    return Term::Blank(std::string(token.substr(2)));
  }
  if (token.front() == '"') {
    // Find the closing unescaped quote.
    size_t end = std::string_view::npos;
    for (size_t i = 1; i < token.size(); ++i) {
      if (token[i] == '\\') {
        ++i;
      } else if (token[i] == '"') {
        end = i;
        break;
      }
    }
    if (end == std::string_view::npos) {
      return Status::IoError("unterminated literal: " + std::string(token));
    }
    RDFMR_ASSIGN_OR_RETURN(std::string lexical,
                           UnescapeLiteral(token.substr(1, end - 1)));
    std::string_view rest = token.substr(end + 1);
    if (rest.empty()) return Term::Literal(std::move(lexical));
    if (rest.front() == '@') {
      return Term::Literal(std::move(lexical), "",
                           std::string(rest.substr(1)));
    }
    if (StartsWith(rest, "^^<") && rest.back() == '>') {
      return Term::Literal(std::move(lexical),
                           std::string(rest.substr(3, rest.size() - 4)));
    }
    return Status::IoError("malformed literal suffix: " + std::string(token));
  }
  return Status::IoError("unrecognized term: " + std::string(token));
}

}  // namespace rdfmr
