// RDF terms: IRIs, literals and blank nodes, with N-Triples lexical forms.
//
// Inside the execution engines triples travel as plain strings (the
// serialized record layer measures real byte footprints); Term is the typed
// view used by the parser/writer layer and by data generators.

#ifndef RDFMR_RDF_TERM_H_
#define RDFMR_RDF_TERM_H_

#include <string>
#include <string_view>

#include "common/result.h"

namespace rdfmr {

enum class TermKind : uint8_t { kIri = 0, kLiteral = 1, kBlank = 2 };

/// \brief A single RDF term.
///
/// For literals, `value` is the lexical form and `datatype`/`language`
/// optionally qualify it. For IRIs and blank nodes only `value` is used.
class Term {
 public:
  Term() : kind_(TermKind::kIri) {}

  static Term Iri(std::string iri) {
    Term t;
    t.kind_ = TermKind::kIri;
    t.value_ = std::move(iri);
    return t;
  }

  static Term Literal(std::string lexical, std::string datatype = "",
                      std::string language = "") {
    Term t;
    t.kind_ = TermKind::kLiteral;
    t.value_ = std::move(lexical);
    t.datatype_ = std::move(datatype);
    t.language_ = std::move(language);
    return t;
  }

  static Term Blank(std::string label) {
    Term t;
    t.kind_ = TermKind::kBlank;
    t.value_ = std::move(label);
    return t;
  }

  TermKind kind() const { return kind_; }
  bool is_iri() const { return kind_ == TermKind::kIri; }
  bool is_literal() const { return kind_ == TermKind::kLiteral; }
  bool is_blank() const { return kind_ == TermKind::kBlank; }

  const std::string& value() const { return value_; }
  const std::string& datatype() const { return datatype_; }
  const std::string& language() const { return language_; }

  /// \brief Serializes to N-Triples syntax (<iri>, "lit"^^<dt>, _:b).
  std::string ToNTriples() const;

  /// \brief Parses a single N-Triples term token.
  static Result<Term> FromNTriples(std::string_view token);

  bool operator==(const Term& o) const {
    return kind_ == o.kind_ && value_ == o.value_ &&
           datatype_ == o.datatype_ && language_ == o.language_;
  }
  bool operator!=(const Term& o) const { return !(*this == o); }
  bool operator<(const Term& o) const {
    if (kind_ != o.kind_) return kind_ < o.kind_;
    if (value_ != o.value_) return value_ < o.value_;
    if (datatype_ != o.datatype_) return datatype_ < o.datatype_;
    return language_ < o.language_;
  }

 private:
  TermKind kind_;
  std::string value_;
  std::string datatype_;
  std::string language_;
};

}  // namespace rdfmr

#endif  // RDFMR_RDF_TERM_H_
