#include "rdf/triple.h"

#include "common/strings.h"

namespace rdfmr {

std::string Triple::Serialize() const {
  return JoinEscaped({subject, property, object}, '\t');
}

Result<Triple> Triple::Deserialize(const std::string& line) {
  std::vector<std::string> fields = SplitEscaped(line, '\t');
  if (fields.size() != 3) {
    return Status::IoError("triple record must have 3 fields, got " +
                           std::to_string(fields.size()) + ": " + line);
  }
  return Triple(std::move(fields[0]), std::move(fields[1]),
                std::move(fields[2]));
}

std::vector<std::string> SerializeTriples(const std::vector<Triple>& triples) {
  std::vector<std::string> out;
  out.reserve(triples.size());
  for (const Triple& t : triples) out.push_back(t.Serialize());
  return out;
}

Result<std::vector<Triple>> DeserializeTriples(
    const std::vector<std::string>& lines) {
  std::vector<Triple> out;
  out.reserve(lines.size());
  for (const std::string& line : lines) {
    RDFMR_ASSIGN_OR_RETURN(Triple t, Triple::Deserialize(line));
    out.push_back(std::move(t));
  }
  return out;
}

}  // namespace rdfmr
