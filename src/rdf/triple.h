// The engine-level triple representation: three flat strings.
//
// Terms are pre-resolved to compact identifiers ("gene9", "xGO", literal
// text). The engines serialize triples into tab-separated record lines so
// every byte the simulated cluster moves is real and measurable.

#ifndef RDFMR_RDF_TRIPLE_H_
#define RDFMR_RDF_TRIPLE_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace rdfmr {

/// \brief A (Subject, Property, Object) triple over compact identifiers.
struct Triple {
  std::string subject;
  std::string property;
  std::string object;

  Triple() = default;
  Triple(std::string s, std::string p, std::string o)
      : subject(std::move(s)), property(std::move(p)), object(std::move(o)) {}

  bool operator==(const Triple& o) const {
    return subject == o.subject && property == o.property &&
           object == o.object;
  }
  bool operator<(const Triple& o) const {
    if (subject != o.subject) return subject < o.subject;
    if (property != o.property) return property < o.property;
    return object < o.object;
  }

  /// \brief Tab-separated record line (fields escaped for embedded tabs).
  std::string Serialize() const;

  /// \brief Parses a line produced by Serialize().
  static Result<Triple> Deserialize(const std::string& line);

  /// \brief Approximate in-memory / on-disk footprint of this triple.
  size_t ByteSize() const {
    return subject.size() + property.size() + object.size() + 3;
  }
};

/// \brief Serializes a batch of triples, one record line each.
std::vector<std::string> SerializeTriples(const std::vector<Triple>& triples);

/// \brief Parses a batch of record lines into triples.
Result<std::vector<Triple>> DeserializeTriples(
    const std::vector<std::string>& lines);

}  // namespace rdfmr

#endif  // RDFMR_RDF_TRIPLE_H_
