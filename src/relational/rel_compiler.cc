#include "relational/rel_compiler.h"

#include <algorithm>
#include <memory>
#include <numeric>
#include <set>

#include "common/strings.h"
#include "query/matcher.h"
#include "relational/rel_tuple.h"

namespace rdfmr {

namespace {

using QueryPtr = std::shared_ptr<const GraphPatternQuery>;

// ---- Vertical-partition scan hints -----------------------------------------

using ScanHint = std::shared_ptr<const std::vector<std::string>>;

// Hint for a mapper that only reacts to triples matching one of
// `patterns`: the set of property constants when EVERY pattern is
// property-bound, null (scan everything) when any pattern's property is a
// variable. Sound because each mapper below ignores — no emissions, no
// counter changes — any well-formed record whose property matches no
// pattern, so a mapped scan may skip those records without changing
// answers or deterministic metrics.
ScanHint HintForPatterns(const std::vector<TriplePattern>& patterns) {
  std::vector<std::string> properties;
  for (const TriplePattern& tp : patterns) {
    if (!tp.property_bound) return nullptr;
    properties.push_back(tp.property);
  }
  return std::make_shared<const std::vector<std::string>>(
      std::move(properties));
}

// Hint selecting nothing: for pure rescan-accounting inputs whose mapper
// never emits regardless of the record.
ScanHint EmptyHint() {
  return std::make_shared<const std::vector<std::string>>();
}

// ---- Map-side helpers -------------------------------------------------------

// True iff `t` can contribute to any triple pattern of the query (used by
// Pig's initial filter/compress job).
bool RelevantToAnyPattern(const GraphPatternQuery& query, const Triple& t) {
  for (const TriplePattern& tp : query.patterns()) {
    if (MatchTriplePattern(tp, t).has_value()) return true;
  }
  return false;
}

// Mapper scanning for ONE triple pattern (a VP relation operand, Pig-style).
MapFn MakeSinglePatternMapper(QueryPtr query, size_t star, size_t tp_index) {
  return [query, star, tp_index](const std::string& record,
                                 const MapEmit& emit, Counters* counters) {
    Result<Triple> t = Triple::Deserialize(record);
    if (!t.ok()) {
      (*counters)["bad_records"] += 1;
      return;
    }
    const TriplePattern& tp = query->stars()[star].patterns[tp_index];
    if (MatchTriplePattern(tp, *t).has_value()) {
      (*counters)["vp_matches"] += 1;
      (*counters)["op.vp_scan.output_records"] += 1;
      emit(t->subject, record);
    }
  };
}

// Mapper scanning for ALL patterns of one star in a single pass
// (Hive-style shared scan). A triple matching several patterns is emitted
// once per pattern, mirroring its membership in several VP relations.
MapFn MakeStarMapper(QueryPtr query, size_t star) {
  return [query, star](const std::string& record, const MapEmit& emit,
                       Counters* counters) {
    Result<Triple> t = Triple::Deserialize(record);
    if (!t.ok()) {
      (*counters)["bad_records"] += 1;
      return;
    }
    for (const TriplePattern& tp : query->stars()[star].patterns) {
      if (MatchTriplePattern(tp, *t).has_value()) {
        (*counters)["vp_matches"] += 1;
        (*counters)["op.vp_scan.output_records"] += 1;
        emit(t->subject, record);
      }
    }
  };
}

// Star-join reducer: assembles all distinct triples of one subject and
// enumerates the star's n-tuples (relational arity 3k).
ReduceFn MakeStarReducer(QueryPtr query, size_t star) {
  return [query, star](const std::string& /*key*/,
                       const std::vector<std::string>& values,
                       const RecordEmit& emit, Counters* counters) {
    std::set<Triple> distinct;
    for (const std::string& v : values) {
      Result<Triple> t = Triple::Deserialize(v);
      if (t.ok()) distinct.insert(t.MoveValueUnsafe());
    }
    std::vector<Triple> triples(distinct.begin(), distinct.end());
    std::vector<StarMatch> matches =
        MatchStarDetailed(query->stars()[star], triples);
    (*counters)["star_tuples"] += matches.size();
    (*counters)["op.star_join.input_groups"] += 1;
    (*counters)["op.star_join.output_records"] += matches.size();
    for (StarMatch& m : matches) {
      emit(RelTuple{std::move(m.matched)}.Serialize());
    }
  };
}

// Tags a relational intermediate tuple with its join-key value.
MapFn MakeJoinMapper(RelSchema schema, std::string var, std::string tag) {
  return [schema = std::move(schema), var = std::move(var),
          tag = std::move(tag)](const std::string& record,
                                const MapEmit& emit, Counters* counters) {
    Result<RelTuple> tuple = RelTuple::Deserialize(record, schema.size());
    if (!tuple.ok()) {
      (*counters)["bad_records"] += 1;
      return;
    }
    Result<std::string> key = ExtractJoinKey(schema, *tuple, var);
    if (!key.ok()) {
      (*counters)["bad_records"] += 1;
      return;
    }
    emit(*key, tag + "|" + record);
  };
}

// Reduce-side join of two relational intermediates; enforces consistency of
// ALL shared variables (not only the shuffle key) so multi-predicate joins
// between the same pair of stars stay correct.
ReduceFn MakeJoinReducer(RelSchema left_schema, RelSchema right_schema) {
  return [left_schema = std::move(left_schema),
          right_schema = std::move(right_schema)](
             const std::string& /*key*/,
             const std::vector<std::string>& values, const RecordEmit& emit,
             Counters* counters) {
    std::vector<std::pair<RelTuple, Solution>> lefts, rights;
    for (const std::string& v : values) {
      std::vector<std::string> parts = SplitN(v, '|', 2);
      if (parts.size() != 2) continue;
      const RelSchema& schema =
          parts[0] == "L" ? left_schema : right_schema;
      Result<RelTuple> tuple = RelTuple::Deserialize(parts[1], schema.size());
      if (!tuple.ok()) {
        (*counters)["bad_records"] += 1;
        continue;
      }
      Result<Solution> sol = tuple->ToSolution(schema);
      if (!sol.ok()) {
        (*counters)["bad_records"] += 1;
        continue;
      }
      auto& side = parts[0] == "L" ? lefts : rights;
      side.emplace_back(tuple.MoveValueUnsafe(), sol.MoveValueUnsafe());
    }
    (*counters)["op.rel_join.input_records"] += lefts.size() + rights.size();
    for (const auto& [lt, ls] : lefts) {
      for (const auto& [rt, rs] : rights) {
        Result<Solution> merged = ls.Merge(rs);
        if (!merged.ok()) continue;  // residual predicate rejected the pair
        RelTuple joined;
        joined.triples = lt.triples;
        joined.triples.insert(joined.triples.end(), rt.triples.begin(),
                              rt.triples.end());
        (*counters)["join_tuples"] += 1;
        (*counters)["op.rel_join.output_records"] += 1;
        emit(joined.Serialize());
      }
    }
  };
}

// ---- Plan assembly ----------------------------------------------------------

struct RelationState {
  std::string path;
  RelSchema schema;
  /// Single-pattern stars need no star-join cycle: the pattern's VP scan is
  /// folded directly into the map side of the join cycle that consumes it
  /// (this is how Hive/Pig evaluate a lone edge pattern, e.g. A5's label
  /// lookup: 2 jobs, both scanning the triple relation).
  bool inline_single_pattern = false;
  size_t star_index = 0;
};

// Mapper for an inlined single-pattern star inside a join cycle: scans the
// (compressed) triple relation, emits arity-1 tuples keyed by the join
// variable.
MapFn MakeInlineSingleTpJoinMapper(QueryPtr query, size_t star,
                                   std::string var, std::string tag) {
  return [query, star, var = std::move(var), tag = std::move(tag)](
             const std::string& record, const MapEmit& emit,
             Counters* counters) {
    Result<Triple> t = Triple::Deserialize(record);
    if (!t.ok()) {
      (*counters)["bad_records"] += 1;
      return;
    }
    const TriplePattern& tp = query->stars()[star].patterns[0];
    if (!MatchTriplePattern(tp, *t).has_value()) return;
    RelTuple tuple;
    tuple.triples.push_back(t.MoveValueUnsafe());
    Result<std::string> key = ExtractJoinKey({tp}, tuple, var);
    if (!key.ok()) {
      (*counters)["bad_records"] += 1;
      return;
    }
    emit(*key, tag + "|" + tuple.Serialize());
  };
}

// Builds the standard plan: one star-join cycle per star, then one join
// cycle per spanning star join.
Result<CompiledPlan> CompileStarPerCycle(QueryPtr query,
                                         const std::string& base_path,
                                         const std::string& tmp_prefix,
                                         const RelationalOptions& options) {
  CompiledPlan plan;
  plan.workflow.name = query->name() + "/" +
                       (options.style == RelationalStyle::kPig ? "pig"
                                                               : "hive");
  std::string scan_path = base_path;
  bool scanning_base = true;

  // Pig prepends a map-only filter/compress job for unbound multi-star
  // queries (the paper's observed A4/A6 behaviour).
  if (options.style == RelationalStyle::kPig && query->HasUnbound() &&
      query->stars().size() > 1) {
    JobSpec job;
    job.name = "pig-filter-compress";
    job.full_scans_of_base = 1;
    job.inputs.push_back(MapInput{
        base_path, [query](const std::string& record, const MapEmit& emit,
                           Counters* counters) {
          Result<Triple> t = Triple::Deserialize(record);
          if (!t.ok()) {
            (*counters)["bad_records"] += 1;
            return;
          }
          if (RelevantToAnyPattern(*query, *t)) emit("", record);
        }});
    job.output_path = tmp_prefix + "/compressed";
    plan.workflow.jobs.push_back(std::move(job));
    plan.workflow.intermediate_paths.push_back(tmp_prefix + "/compressed");
    scan_path = tmp_prefix + "/compressed";
    scanning_base = false;
  }

  // --- Star-join cycles.
  std::vector<RelationState> relations(query->stars().size());
  for (size_t s = 0; s < query->stars().size(); ++s) {
    const StarPattern& star = query->stars()[s];
    if (star.patterns.size() == 1 && query->stars().size() > 1) {
      // Lone edge pattern: fold its scan into the consuming join cycle.
      relations[s] = RelationState{scan_path, star.patterns, true, s};
      continue;
    }
    JobSpec job;
    job.name = StringFormat("star-join-%zu", s);
    if (options.style == RelationalStyle::kPig) {
      // One scan per join operand (VP relation).
      for (size_t i = 0; i < star.patterns.size(); ++i) {
        job.inputs.push_back(
            MapInput{scan_path, MakeSinglePatternMapper(query, s, i),
                     HintForPatterns({star.patterns[i]})});
      }
      job.full_scans_of_base =
          scanning_base ? static_cast<uint32_t>(star.patterns.size()) : 0;
    } else {
      job.inputs.push_back(MapInput{scan_path, MakeStarMapper(query, s),
                                    HintForPatterns(star.patterns)});
      job.full_scans_of_base = scanning_base ? 1 : 0;
    }
    job.reduce = MakeStarReducer(query, s);
    job.output_path = StringFormat("%s/star%zu", tmp_prefix.c_str(), s);
    relations[s] = RelationState{job.output_path, star.patterns};
    plan.star_phase_paths.push_back(job.output_path);
    plan.workflow.jobs.push_back(std::move(job));
  }

  // --- Join cycles (union-find over stars).
  std::vector<size_t> component(query->stars().size());
  std::iota(component.begin(), component.end(), 0);
  std::function<size_t(size_t)> find = [&](size_t x) {
    while (component[x] != x) x = component[x] = component[component[x]];
    return x;
  };

  size_t join_count = 0;
  for (const StarJoin& join : query->joins()) {
    size_t a = find(join.left_star);
    size_t b = find(join.right_star);
    if (a == b) continue;  // residual predicate; enforced inside reducers
    const RelationState& left = relations[a];
    const RelationState& right = relations[b];

    JobSpec job;
    job.name = StringFormat("join-%zu-on-%s", join_count,
                            join.variable.c_str());
    auto add_side = [&](const RelationState& rel, const char* tag) {
      if (rel.inline_single_pattern) {
        job.inputs.push_back(MapInput{
            rel.path,
            MakeInlineSingleTpJoinMapper(query, rel.star_index,
                                         join.variable, tag),
            HintForPatterns({query->stars()[rel.star_index].patterns[0]})});
        if (scanning_base) job.full_scans_of_base += 1;
      } else {
        job.inputs.push_back(MapInput{
            rel.path, MakeJoinMapper(rel.schema, join.variable, tag)});
      }
    };
    add_side(left, "L");
    add_side(right, "R");
    job.reduce = MakeJoinReducer(left.schema, right.schema);
    job.output_path = StringFormat("%s/join%zu", tmp_prefix.c_str(),
                                   join_count);
    RelSchema joined_schema = left.schema;
    joined_schema.insert(joined_schema.end(), right.schema.begin(),
                         right.schema.end());
    component[b] = a;
    relations[a] = RelationState{job.output_path, std::move(joined_schema)};
    plan.workflow.jobs.push_back(std::move(job));
    ++join_count;
  }

  const RelationState& final_rel = relations[find(0)];
  plan.workflow.final_output_path = final_rel.path;
  for (const JobSpec& job : plan.workflow.jobs) {
    if (job.output_path != final_rel.path &&
        job.output_path != tmp_prefix + "/compressed") {
      plan.workflow.intermediate_paths.push_back(job.output_path);
    }
  }
  RelSchema final_schema = final_rel.schema;
  plan.decoder = [final_schema](const std::vector<std::string>& lines) {
    return DecodeRelationalAnswers(final_schema, lines);
  };
  plan.record_decoder = [final_schema](const std::string& record)
      -> Result<std::vector<Solution>> {
    RDFMR_ASSIGN_OR_RETURN(RelTuple tuple,
                           RelTuple::Deserialize(record,
                                                 final_schema.size()));
    RDFMR_ASSIGN_OR_RETURN(Solution solution,
                           tuple.ToSolution(final_schema));
    return std::vector<Solution>{std::move(solution)};
  };
  return plan;
}

// Builds the Fig. 3 "Sel-SJ-first" grouping for two-star queries.
Result<CompiledPlan> CompileSelSJFirst(QueryPtr query,
                                       const std::string& base_path,
                                       const std::string& tmp_prefix) {
  if (query->stars().size() != 2 || query->joins().empty()) {
    return Status::NotImplemented(
        "Sel-SJ-first grouping is defined for two-star queries");
  }
  const StarJoin& join = query->joins()[0];

  CompiledPlan plan;
  plan.workflow.name = query->name() + "/sel-sj-first";

  if (join.kind == StarJoinKind::kObjectSubject) {
    // The star whose SUBJECT is the join variable can be folded into the
    // join cycle; the other star ("first") is computed in cycle 1.
    size_t first = join.left_star;    // carries the object side
    size_t folded = join.right_star;  // subject side, folded into cycle 2

    // Cycle 1: compute `first`.
    JobSpec job1;
    job1.name = StringFormat("selsj-star-%zu", first);
    job1.inputs.push_back(
        MapInput{base_path, MakeStarMapper(query, first),
                 HintForPatterns(query->stars()[first].patterns)});
    job1.full_scans_of_base = 1;
    job1.reduce = MakeStarReducer(query, first);
    job1.output_path = tmp_prefix + "/selsj-first";
    plan.star_phase_paths.push_back(job1.output_path);
    plan.workflow.jobs.push_back(std::move(job1));

    // Cycle 2: scan base for `folded`'s patterns keyed by subject, join
    // with cycle 1's tuples keyed by the join variable.
    RelSchema first_schema = query->stars()[first].patterns;
    RelSchema folded_schema = query->stars()[folded].patterns;

    JobSpec job2;
    job2.name = "selsj-join";
    job2.inputs.push_back(
        MapInput{tmp_prefix + "/selsj-first",
                 MakeJoinMapper(first_schema, join.variable, "L")});
    job2.inputs.push_back(MapInput{
        base_path,
        [query, folded](const std::string& record, const MapEmit& emit,
                        Counters* counters) {
          Result<Triple> t = Triple::Deserialize(record);
          if (!t.ok()) {
            (*counters)["bad_records"] += 1;
            return;
          }
          for (const TriplePattern& tp : query->stars()[folded].patterns) {
            if (MatchTriplePattern(tp, *t).has_value()) {
              emit(t->subject, "B|" + record);
              break;  // routing only; the reducer re-derives matches
            }
          }
        },
        HintForPatterns(query->stars()[folded].patterns)});
    job2.full_scans_of_base = 1;
    job2.reduce = [query, folded, first_schema, folded_schema](
                      const std::string& /*key*/,
                      const std::vector<std::string>& values,
                      const RecordEmit& emit, Counters* counters) {
      std::set<Triple> triples;
      std::vector<std::pair<RelTuple, Solution>> lefts;
      for (const std::string& v : values) {
        std::vector<std::string> parts = SplitN(v, '|', 2);
        if (parts.size() != 2) continue;
        if (parts[0] == "B") {
          Result<Triple> t = Triple::Deserialize(parts[1]);
          if (t.ok()) triples.insert(t.MoveValueUnsafe());
        } else {
          Result<RelTuple> tuple =
              RelTuple::Deserialize(parts[1], first_schema.size());
          if (!tuple.ok()) continue;
          Result<Solution> sol = tuple->ToSolution(first_schema);
          if (!sol.ok()) continue;
          lefts.emplace_back(tuple.MoveValueUnsafe(), sol.MoveValueUnsafe());
        }
      }
      if (lefts.empty() || triples.empty()) return;
      std::vector<Triple> star_triples(triples.begin(), triples.end());
      std::vector<StarMatch> matches =
          MatchStarDetailed(query->stars()[folded], star_triples);
      for (const auto& [lt, ls] : lefts) {
        for (const StarMatch& m : matches) {
          Result<Solution> merged = ls.Merge(m.solution);
          if (!merged.ok()) continue;
          RelTuple joined;
          joined.triples = lt.triples;
          joined.triples.insert(joined.triples.end(), m.matched.begin(),
                                m.matched.end());
          (*counters)["join_tuples"] += 1;
          emit(joined.Serialize());
        }
      }
    };
    job2.output_path = tmp_prefix + "/selsj-out";
    plan.workflow.jobs.push_back(std::move(job2));

    plan.workflow.final_output_path = tmp_prefix + "/selsj-out";
    plan.workflow.intermediate_paths.push_back(tmp_prefix + "/selsj-first");
    RelSchema final_schema = first_schema;
    final_schema.insert(final_schema.end(), folded_schema.begin(),
                        folded_schema.end());
    plan.decoder = [final_schema](const std::vector<std::string>& lines) {
      return DecodeRelationalAnswers(final_schema, lines);
    };
    plan.record_decoder = [final_schema](const std::string& record)
        -> Result<std::vector<Solution>> {
      RDFMR_ASSIGN_OR_RETURN(RelTuple tuple,
                             RelTuple::Deserialize(record,
                                                   final_schema.size()));
      RDFMR_ASSIGN_OR_RETURN(Solution solution,
                             tuple.ToSolution(final_schema));
      return std::vector<Solution>{std::move(solution)};
    };
    return plan;
  }

  // Object-Object (or Subject-Subject) joins cannot fold a star into the
  // join cycle: fall back to 3 cycles, with the join cycle re-scanning the
  // base relation (reproducing the case study's observation that
  // Sel-SJ-first does a full scan in all 3 cycles for O-O joins).
  RelationalOptions hive;
  hive.style = RelationalStyle::kHive;
  RDFMR_ASSIGN_OR_RETURN(
      CompiledPlan plan3,
      CompileStarPerCycle(query, base_path, tmp_prefix, hive));
  plan3.workflow.name = query->name() + "/sel-sj-first";
  if (!plan3.workflow.jobs.empty()) {
    JobSpec& join_job = plan3.workflow.jobs.back();
    join_job.inputs.push_back(MapInput{
        base_path,
        [](const std::string&, const MapEmit&, Counters*) { /* rescan */ },
        EmptyHint()});
    join_job.full_scans_of_base += 1;
  }
  return plan3;
}

}  // namespace

Result<CompiledPlan> CompileRelationalPlan(
    std::shared_ptr<const GraphPatternQuery> query,
    const std::string& base_path, const std::string& tmp_prefix,
    const RelationalOptions& options) {
  if (query == nullptr) {
    return Status::InvalidArgument("null query");
  }
  if (options.grouping == RelationalGrouping::kSelSJFirst) {
    return CompileSelSJFirst(query, base_path, tmp_prefix);
  }
  return CompileStarPerCycle(query, base_path, tmp_prefix, options);
}

}  // namespace rdfmr
