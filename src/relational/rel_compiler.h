// Relational-style MapReduce plan compilers, modeling how Apache Pig and
// Apache Hive evaluate SPARQL BGPs over a triple relation (Section 2.1 and
// "Choice of Systems" in Section 5 of the paper):
//
//  * one star-join per MR cycle, then one MR cycle per join between stars;
//  * vertical partitioning at the map side: each triple pattern acts as a
//    VP relation scan — an unbound-property pattern scans the union of all
//    VP relations (i.e., everything);
//  * Pig reads one copy of the input per join operand (no scan sharing;
//    "Pig processes two copies of the input relation ... double the number
//    of mappers") and prepends a map-only filter/compress job for
//    unbound-property multi-star queries (its A4/A6 behaviour);
//  * Hive shares a single scan of the triple relation per MR cycle;
//  * intermediate results are flat n-tuples of relational arity 3k — the
//    redundant representation whose footprint the paper measures.
//
// The Fig. 3 case-study groupings are also provided: SJ-per-cycle (the
// default) and Sel-SJ-first (fold the second star's computation into the
// join cycle when the join lands on its subject; Object-Object joins stay
// at 3 cycles with a base rescan, reproducing the case study's full-scan
// accounting).

#ifndef RDFMR_RELATIONAL_REL_COMPILER_H_
#define RDFMR_RELATIONAL_REL_COMPILER_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "engine/compiled_plan.h"
#include "query/pattern.h"

namespace rdfmr {

enum class RelationalStyle { kPig, kHive };

enum class RelationalGrouping { kStarPerCycle, kSelSJFirst };

struct RelationalOptions {
  RelationalStyle style = RelationalStyle::kHive;
  RelationalGrouping grouping = RelationalGrouping::kStarPerCycle;
};

/// \brief Compiles `query` into a relational-style MR workflow reading the
/// triple relation at `base_path`; intermediates go under `tmp_prefix`.
Result<CompiledPlan> CompileRelationalPlan(
    std::shared_ptr<const GraphPatternQuery> query,
    const std::string& base_path, const std::string& tmp_prefix,
    const RelationalOptions& options);

}  // namespace rdfmr

#endif  // RDFMR_RELATIONAL_REL_COMPILER_H_
