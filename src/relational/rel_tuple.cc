#include "relational/rel_tuple.h"

#include "common/strings.h"
#include "query/matcher.h"

namespace rdfmr {

std::string RelTuple::Serialize() const {
  std::vector<std::string> fields;
  fields.reserve(triples.size() * 3);
  for (const Triple& t : triples) {
    fields.push_back(t.subject);
    fields.push_back(t.property);
    fields.push_back(t.object);
  }
  return JoinEscaped(fields, '\t');
}

Result<RelTuple> RelTuple::Deserialize(const std::string& line,
                                       size_t arity) {
  std::vector<std::string> fields = SplitEscaped(line, '\t');
  if (fields.size() != arity * 3) {
    return Status::IoError(StringFormat(
        "relational tuple needs %zu fields, got %zu", arity * 3,
        fields.size()));
  }
  RelTuple tuple;
  tuple.triples.reserve(arity);
  for (size_t i = 0; i < arity; ++i) {
    tuple.triples.emplace_back(std::move(fields[3 * i]),
                               std::move(fields[3 * i + 1]),
                               std::move(fields[3 * i + 2]));
  }
  return tuple;
}

namespace {
// The SPARQL "unbound" placeholder at optional positions: all-empty triple.
bool IsNullTriple(const Triple& t) {
  return t.subject.empty() && t.property.empty() && t.object.empty();
}
}  // namespace

Result<Solution> RelTuple::ToSolution(const RelSchema& schema) const {
  if (schema.size() != triples.size()) {
    return Status::InvalidArgument("tuple arity does not match schema");
  }
  Solution out;
  for (size_t i = 0; i < schema.size(); ++i) {
    if (IsNullTriple(triples[i])) {
      if (schema[i].optional) continue;  // unmatched optional pattern
      return Status::InvalidArgument(
          "null triple at mandatory column " + std::to_string(i));
    }
    std::optional<Solution> m = MatchTriplePattern(schema[i], triples[i]);
    if (!m.has_value()) {
      return Status::InvalidArgument("tuple column " + std::to_string(i) +
                                     " does not match its pattern");
    }
    RDFMR_ASSIGN_OR_RETURN(out, out.Merge(*m));
  }
  return out;
}

Result<SolutionSet> DecodeRelationalAnswers(
    const RelSchema& schema, const std::vector<std::string>& lines) {
  SolutionSet out;
  for (const std::string& line : lines) {
    RDFMR_ASSIGN_OR_RETURN(RelTuple tuple,
                           RelTuple::Deserialize(line, schema.size()));
    RDFMR_ASSIGN_OR_RETURN(Solution s, tuple.ToSolution(schema));
    out.insert(std::move(s));
  }
  return out;
}

Result<std::string> ExtractJoinKey(const RelSchema& schema,
                                   const RelTuple& tuple,
                                   const std::string& var) {
  for (size_t i = 0; i < schema.size(); ++i) {
    const TriplePattern& tp = schema[i];
    if (IsNullTriple(tuple.triples[i])) continue;  // unmatched optional
    if (tp.subject.is_variable() && tp.subject.value == var) {
      return tuple.triples[i].subject;
    }
    if (tp.object.is_variable() && tp.object.value == var) {
      return tuple.triples[i].object;
    }
  }
  return Status::NotFound("variable ?" + var + " not in schema");
}

}  // namespace rdfmr
