// Relational n-tuple representation of (joined) star matches.
//
// A star-join over k triple patterns yields tuples of relational arity 3k —
// (Sub, Prop, Obj) columns per pattern, subject repeated in every column
// group, exactly as the paper describes for vertically-partitioned
// relational processing. This repetition *is* the redundancy under study:
// the byte footprint of these serialized tuples is what the relational
// engines ship between MR cycles.

#ifndef RDFMR_RELATIONAL_REL_TUPLE_H_
#define RDFMR_RELATIONAL_REL_TUPLE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "query/pattern.h"
#include "query/solution.h"
#include "rdf/triple.h"

namespace rdfmr {

/// \brief The schema of a relational intermediate: the ordered triple
/// patterns whose matches the tuple columns hold.
using RelSchema = std::vector<TriplePattern>;

/// \brief One tuple: a matched triple per schema pattern, aligned.
struct RelTuple {
  std::vector<Triple> triples;

  /// \brief Serializes as 3k tab-separated fields.
  std::string Serialize() const;

  /// \brief Parses a record with exactly `arity` triples.
  static Result<RelTuple> Deserialize(const std::string& line, size_t arity);

  /// \brief Derives the solution mapping by re-matching each triple against
  /// its schema pattern; fails if the tuple is inconsistent.
  Result<Solution> ToSolution(const RelSchema& schema) const;
};

/// \brief Decodes a whole relational output file (schema-wide tuples) into
/// a solution set.
Result<SolutionSet> DecodeRelationalAnswers(
    const RelSchema& schema, const std::vector<std::string>& lines);

/// \brief Extracts the value of variable `var` from a tuple under `schema`
/// (subject or object position of the first pattern carrying it).
Result<std::string> ExtractJoinKey(const RelSchema& schema,
                                   const RelTuple& tuple,
                                   const std::string& var);

}  // namespace rdfmr

#endif  // RDFMR_RELATIONAL_REL_TUPLE_H_
