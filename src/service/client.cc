#include "service/client.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <unordered_map>
#include <utility>

#include "net/address.h"

namespace rdfmr {
namespace service {

namespace {

bool TransientConnectErrno(int err) {
  // The server may not be up yet (socket file not created / listener not
  // bound) or may be briefly saturated.
  return err == ECONNREFUSED || err == ENOENT || err == EAGAIN ||
         err == ECONNRESET || err == EINTR;
}

}  // namespace

Result<ServiceClient> ServiceClient::Connect(const std::string& target) {
  RDFMR_ASSIGN_OR_RETURN(net::Address address, net::Address::Parse(target));
  RDFMR_ASSIGN_OR_RETURN(int fd, net::Dial(address));
  return ServiceClient(fd);
}

Result<ServiceClient> ServiceClient::ConnectWithRetry(
    const std::string& target, uint32_t attempts, uint64_t backoff_ms) {
  RDFMR_ASSIGN_OR_RETURN(net::Address address, net::Address::Parse(target));
  if (attempts == 0) attempts = 1;
  uint64_t sleep_ms = backoff_ms;
  for (uint32_t attempt = 1;; ++attempt) {
    int dial_errno = 0;
    Result<int> fd = net::Dial(address, &dial_errno);
    if (fd.ok()) return ServiceClient(*fd);
    if (attempt >= attempts || !TransientConnectErrno(dial_errno)) {
      return fd.status();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    sleep_ms *= 2;
  }
}

ServiceClient::ServiceClient(ServiceClient&& other) noexcept
    : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
  other.fd_ = -1;
}

ServiceClient& ServiceClient::operator=(ServiceClient&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
  }
  return *this;
}

ServiceClient::~ServiceClient() {
  if (fd_ >= 0) ::close(fd_);
}

Status ServiceClient::SendLine(const std::string& line) {
  std::string framed = line;
  framed += '\n';
  return SendRaw(framed);
}

Status ServiceClient::SendRaw(const std::string& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status ServiceClient::Send(const JsonValue& request) {
  return SendLine(request.Dump());
}

Result<std::string> ServiceClient::ReadLine() {
  char chunk[4096];
  for (;;) {
    size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      return line;
    }
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) {
      return Status::IoError("server closed the connection");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("recv: ") + std::strerror(errno));
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

Result<std::string> ServiceClient::ReceiveLine() { return ReadLine(); }

Result<JsonValue> ServiceClient::Receive() {
  RDFMR_ASSIGN_OR_RETURN(std::string line, ReadLine());
  return ParseJson(line);
}

Result<std::string> ServiceClient::CallLine(const std::string& line) {
  RDFMR_RETURN_NOT_OK(SendLine(line));
  return ReadLine();
}

Result<JsonValue> ServiceClient::Call(const JsonValue& request) {
  RDFMR_ASSIGN_OR_RETURN(std::string line, CallLine(request.Dump()));
  return ParseJson(line);
}

Result<std::vector<JsonValue>> ServiceClient::CallPipelined(
    std::vector<JsonValue> requests) {
  // Responses come back in completion order, so every request needs a
  // distinguishable echoed "id" to find its slot again.
  std::unordered_map<std::string, size_t> slot_by_id;
  slot_by_id.reserve(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    if (!requests[i].is_object()) {
      return Status::InvalidArgument(
          "pipelined request must be a JSON object");
    }
    if (!requests[i].Has("id")) {
      requests[i].Set("id", static_cast<uint64_t>(i));
    }
    if (!slot_by_id.emplace(requests[i].Get("id").Dump(), i).second) {
      return Status::InvalidArgument(
          "pipelined requests carry a duplicate \"id\": " +
          requests[i].Get("id").Dump());
    }
  }
  // One send for the whole window: the server reads the batch in one
  // wakeup and its responses coalesce the same way, which is where
  // pipelining's syscall amortization comes from.
  std::string batch;
  for (const JsonValue& request : requests) {
    batch += request.Dump();
    batch += '\n';
  }
  RDFMR_RETURN_NOT_OK(SendRaw(batch));
  std::vector<JsonValue> responses(requests.size());
  std::vector<bool> matched(requests.size(), false);
  for (size_t received = 0; received < requests.size(); ++received) {
    RDFMR_ASSIGN_OR_RETURN(std::string line, ReadLine());
    RDFMR_ASSIGN_OR_RETURN(JsonValue response, ParseJson(line));
    if (!response.is_object() || !response.Has("id")) {
      return Status::IoError("pipelined response carries no \"id\": " +
                             line);
    }
    auto it = slot_by_id.find(response.Get("id").Dump());
    if (it == slot_by_id.end() || matched[it->second]) {
      return Status::IoError(
          "pipelined response \"id\" matches no outstanding request: " +
          line);
    }
    matched[it->second] = true;
    responses[it->second] = std::move(response);
  }
  return responses;
}

}  // namespace service
}  // namespace rdfmr
