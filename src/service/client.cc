#include "service/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace rdfmr {
namespace service {

Result<ServiceClient> ServiceClient::Connect(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path too long: " + socket_path);
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status st = Status::IoError("connect " + socket_path + ": " +
                                std::strerror(errno));
    ::close(fd);
    return st;
  }
  return ServiceClient(fd);
}

ServiceClient::ServiceClient(ServiceClient&& other) noexcept
    : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
  other.fd_ = -1;
}

ServiceClient& ServiceClient::operator=(ServiceClient&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
  }
  return *this;
}

ServiceClient::~ServiceClient() {
  if (fd_ >= 0) ::close(fd_);
}

Status ServiceClient::SendLine(const std::string& line) {
  std::string framed = line;
  framed += '\n';
  size_t sent = 0;
  while (sent < framed.size()) {
    ssize_t n = ::send(fd_, framed.data() + sent, framed.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<std::string> ServiceClient::ReadLine() {
  char chunk[4096];
  for (;;) {
    size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      return line;
    }
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) {
      return Status::IoError("server closed the connection");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("recv: ") + std::strerror(errno));
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

Result<std::string> ServiceClient::CallLine(const std::string& line) {
  RDFMR_RETURN_NOT_OK(SendLine(line));
  return ReadLine();
}

Result<JsonValue> ServiceClient::Call(const JsonValue& request) {
  RDFMR_ASSIGN_OR_RETURN(std::string line, CallLine(request.Dump()));
  return ParseJson(line);
}

}  // namespace service
}  // namespace rdfmr
