// Blocking client for the query service's NDJSON socket protocol. Two
// usage modes over one connection:
//
//   * Serial: Call()/CallLine() — one request line out, one response
//     line back.
//   * Pipelined: Send() any number of requests without waiting, then
//     Receive() responses as the server finishes them (possibly out of
//     request order — correlate by "id"), or use CallPipelined() which
//     stamps ids, sends the whole batch, and hands back the responses
//     re-matched to request order.
//
// Targets are `unix:PATH`, `tcp:HOST:PORT`, or a bare AF_UNIX path (the
// pre-TCP spelling). Used by the rdfmr CLI's `client` subcommand, the
// service tests, the fuzz harness, and bench_net.

#ifndef RDFMR_SERVICE_CLIENT_H_
#define RDFMR_SERVICE_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/result.h"

namespace rdfmr {
namespace service {

class ServiceClient {
 public:
  /// \brief Connects to a listening server; IoError when nobody listens.
  static Result<ServiceClient> Connect(const std::string& target);

  /// \brief Connect() with retry on transient failures (server not up
  /// yet: ECONNREFUSED, ENOENT, EAGAIN, ECONNRESET). Sleeps
  /// `backoff_ms` before the second attempt, doubling each retry. Permanent
  /// errors (bad address, unresolvable host) fail immediately.
  static Result<ServiceClient> ConnectWithRetry(const std::string& target,
                                                uint32_t attempts,
                                                uint64_t backoff_ms = 50);

  ServiceClient(ServiceClient&& other) noexcept;
  ServiceClient& operator=(ServiceClient&& other) noexcept;
  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;
  ~ServiceClient();

  /// \brief Sends `request` and blocks for the next response line.
  Result<JsonValue> Call(const JsonValue& request);

  /// \brief Raw line round-trip (request must not contain '\n').
  Result<std::string> CallLine(const std::string& line);

  // ---- pipelined mode ------------------------------------------------------

  /// \brief Queues one request on the wire without waiting. Pair each
  /// Send with exactly one later Receive; carry an "id" to correlate.
  Status Send(const JsonValue& request);
  Status SendLine(const std::string& line);

  /// \brief Writes pre-framed bytes as-is (callers terminate each
  /// request with '\n' themselves). One SendRaw carrying N lines reaches
  /// the server as one wakeup — the cheapest way to open a pipeline
  /// window.
  Status SendRaw(const std::string& bytes);

  /// \brief Blocks for the next response line, whichever request it
  /// answers (the server responds in completion order by default).
  Result<JsonValue> Receive();
  Result<std::string> ReceiveLine();

  /// \brief Sends every request back-to-back, then collects every
  /// response and returns them matched back to request order. Requests
  /// without an "id" get one stamped (their index); duplicate ids are an
  /// error since they make matching ambiguous.
  Result<std::vector<JsonValue>> CallPipelined(
      std::vector<JsonValue> requests);

 private:
  explicit ServiceClient(int fd) : fd_(fd) {}

  Result<std::string> ReadLine();

  int fd_ = -1;
  std::string buffer_;  ///< bytes read past the last returned line
};

}  // namespace service
}  // namespace rdfmr

#endif  // RDFMR_SERVICE_CLIENT_H_
