// Minimal blocking client for the query service's socket protocol: one
// request line out, one response line back. Used by the rdfmr CLI's
// `client` subcommand, the service tests, and the fuzz harness's
// --service replay mode.

#ifndef RDFMR_SERVICE_CLIENT_H_
#define RDFMR_SERVICE_CLIENT_H_

#include <string>

#include "common/json.h"
#include "common/result.h"

namespace rdfmr {
namespace service {

class ServiceClient {
 public:
  /// \brief Connects to a listening server; IoError when nobody listens.
  static Result<ServiceClient> Connect(const std::string& socket_path);

  ServiceClient(ServiceClient&& other) noexcept;
  ServiceClient& operator=(ServiceClient&& other) noexcept;
  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;
  ~ServiceClient();

  /// \brief Sends `request` and blocks for the matching response line.
  Result<JsonValue> Call(const JsonValue& request);

  /// \brief Raw line round-trip (request must not contain '\n').
  Result<std::string> CallLine(const std::string& line);

 private:
  explicit ServiceClient(int fd) : fd_(fd) {}

  Status SendLine(const std::string& line);
  Result<std::string> ReadLine();

  int fd_ = -1;
  std::string buffer_;  ///< bytes read past the last returned line
};

}  // namespace service
}  // namespace rdfmr

#endif  // RDFMR_SERVICE_CLIENT_H_
