#include "service/dataset_io.h"

#include <fstream>
#include <sstream>
#include <utility>

#include "common/strings.h"
#include "datagen/bio2rdf.h"
#include "datagen/bsbm.h"
#include "datagen/btc.h"
#include "datagen/dbpedia.h"
#include "rdf/ntriples.h"
#include "storage/rdx_reader.h"

namespace rdfmr {
namespace service {

Result<std::vector<Triple>> ReadDatasetFile(const std::string& path) {
  if (storage::IsRdxPath(path)) {
    RDFMR_ASSIGN_OR_RETURN(std::shared_ptr<const storage::RdxReader> reader,
                           storage::RdxReader::Open(path));
    return reader->Triples();
  }
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open: " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string text = buffer.str();
  if (EndsWith(path, ".nt")) {
    IriCompactor compactor(
        std::vector<std::pair<std::string, std::string>>{{kIriPrefix, ""}});
    return LoadNTriples(text, compactor);
  }
  std::vector<Triple> triples;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    RDFMR_ASSIGN_OR_RETURN(Triple t, Triple::Deserialize(line));
    triples.push_back(std::move(t));
  }
  return triples;
}

Status WriteDatasetFile(const std::string& path,
                        const std::vector<Triple>& triples) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  if (EndsWith(path, ".nt")) {
    for (const Triple& t : triples) {
      // Objects that look like identifiers become IRIs, the rest literals.
      bool iri_object = t.object.find(' ') == std::string::npos;
      out << "<" << kIriPrefix << t.subject << "> <" << kIriPrefix
          << t.property << "> ";
      if (iri_object) {
        out << "<" << kIriPrefix << t.object << ">";
      } else {
        out << Term::Literal(t.object).ToNTriples();
      }
      out << " .\n";
    }
  } else {
    for (const Triple& t : triples) out << t.Serialize() << "\n";
  }
  return out.good() ? Status::OK() : Status::IoError("write failed: " + path);
}

Result<std::vector<Triple>> GenerateFamilyDataset(const std::string& family,
                                                  uint64_t scale,
                                                  uint64_t seed) {
  if (family == "bsbm") {
    BsbmConfig config;
    config.num_products = scale;
    config.seed = seed;
    return GenerateBsbm(config);
  }
  if (family == "bio2rdf") {
    Bio2RdfConfig config;
    config.num_genes = scale;
    config.seed = seed;
    return GenerateBio2Rdf(config);
  }
  if (family == "dbpedia") {
    DbpediaConfig config;
    config.num_entities = scale;
    config.seed = seed;
    return GenerateDbpedia(config);
  }
  if (family == "btc") {
    BtcConfig config;
    config.num_dbpedia_entities = scale;
    config.num_genes = scale / 4 + 1;
    config.seed = seed;
    return GenerateBtc(config);
  }
  return Status::InvalidArgument("unknown family: " + family +
                                 " (want bsbm|bio2rdf|dbpedia|btc)");
}

}  // namespace service
}  // namespace rdfmr
