// Host-filesystem dataset I/O and synthetic-family generation, shared by
// the rdfmr CLI and the query service's "load" verb. Files ending in .nt
// are N-Triples with the canonical example IRI prefix; anything else is
// the engines' tab-separated record format.

#ifndef RDFMR_SERVICE_DATASET_IO_H_
#define RDFMR_SERVICE_DATASET_IO_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "rdf/triple.h"

namespace rdfmr {
namespace service {

/// \brief IRI prefix compacted away when reading / added when writing .nt.
inline constexpr const char kIriPrefix[] = "http://rdfmr.example/";

/// \brief Reads a dataset file (.nt or .tsv record lines).
Result<std::vector<Triple>> ReadDatasetFile(const std::string& path);

/// \brief Writes a dataset file (.nt renders IRIs/literals, else records).
Status WriteDatasetFile(const std::string& path,
                        const std::vector<Triple>& triples);

/// \brief Generates one of the paper's synthetic families
/// (bsbm|bio2rdf|dbpedia|btc) at the given scale and seed.
Result<std::vector<Triple>> GenerateFamilyDataset(const std::string& family,
                                                  uint64_t scale,
                                                  uint64_t seed);

}  // namespace service
}  // namespace rdfmr

#endif  // RDFMR_SERVICE_DATASET_IO_H_
