#include "service/dataset_registry.h"

#include <utility>

#include "storage/mapped_dataset.h"

namespace rdfmr {
namespace service {

constexpr const char DatasetHandle::kBasePath[];

Status DatasetHandle::EnsureLoaded() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (attempted_) return load_status_;
  attempted_ = true;
  TripleLoader loader = std::move(loader_);
  loader_ = nullptr;
  if (mapped_ != nullptr && !materialize_) {
    // Zero-materialization path: mount the mapping as the base relation.
    // Nothing is decoded now — scans pull individual records out of the
    // mapped postings/dictionary on demand.
    auto dfs = std::make_unique<SimDfs>(cluster_);
    Status st = dfs->MountMapped(
        kBasePath, std::make_shared<const storage::MappedDataset>(mapped_));
    if (!st.ok()) {
      load_status_ = st;
      return load_status_;
    }
    num_triples_ = mapped_->triple_count();
    auto size = dfs->FileSize(kBasePath);
    base_bytes_ = size.ok() ? *size : 0;
    dfs_ = std::move(dfs);
    // v2 files carry the catalog as a section — zero triples decoded.
    stats_ = std::make_shared<const GraphStats>(mapped_->DecodeGraphStats());
    load_status_ = Status::OK();
    return load_status_;
  }
  if (!loader) {
    load_status_ = Status::Unknown("dataset has no loader: " + name_);
    return load_status_;
  }
  Result<std::vector<Triple>> triples = loader();
  if (!triples.ok()) {
    load_status_ = triples.status();
    return load_status_;
  }
  auto dfs = std::make_unique<SimDfs>(cluster_);
  Status st = dfs->WriteFile(kBasePath, SerializeTriples(*triples));
  if (!st.ok()) {
    load_status_ = st;
    return load_status_;
  }
  num_triples_ = triples->size();
  auto size = dfs->FileSize(kBasePath);
  base_bytes_ = size.ok() ? *size : 0;
  dfs_ = std::move(dfs);
  stats_ = std::make_shared<const GraphStats>(
      mapped_ != nullptr ? mapped_->DecodeGraphStats()
                         : GraphStats::Compute(*triples));
  load_status_ = Status::OK();
  return load_status_;
}

SimDfs* DatasetHandle::dfs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dfs_.get();
}

std::shared_ptr<const GraphStats> DatasetHandle::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

DatasetInfo DatasetHandle::Info() const {
  std::lock_guard<std::mutex> lock(mu_);
  DatasetInfo info;
  info.name = name_;
  info.epoch = epoch_;
  info.loaded = dfs_ != nullptr;
  info.num_triples = num_triples_;
  info.base_bytes = base_bytes_;
  if (mapped_ != nullptr) {
    info.mapped = true;
    info.mapped_bytes = mapped_->file_bytes();
    info.mapped_scans = !materialize_;
    // The mapping knows the relation size before materialization.
    if (!info.loaded) info.num_triples = mapped_->triple_count();
  }
  return info;
}

std::shared_ptr<DatasetHandle> DatasetRegistry::Replace(
    const std::string& name, TripleLoader loader,
    std::shared_ptr<const storage::RdxReader> mapped, bool materialize) {
  std::lock_guard<std::mutex> lock(mu_);
  auto handle = std::shared_ptr<DatasetHandle>(
      new DatasetHandle(name, next_epoch_++, cluster_, std::move(loader),
                        std::move(mapped), materialize));
  datasets_[name] = handle;
  return handle;
}

Result<DatasetInfo> DatasetRegistry::Register(const std::string& name,
                                              TripleLoader loader) {
  if (name.empty()) {
    return Status::InvalidArgument("dataset name must be non-empty");
  }
  if (!loader) {
    return Status::InvalidArgument("dataset loader must be non-null");
  }
  return Replace(name, std::move(loader))->Info();
}

Result<DatasetInfo> DatasetRegistry::Load(const std::string& name,
                                          std::vector<Triple> triples) {
  if (name.empty()) {
    return Status::InvalidArgument("dataset name must be non-empty");
  }
  auto shared = std::make_shared<std::vector<Triple>>(std::move(triples));
  auto handle = Replace(name, [shared]() -> Result<std::vector<Triple>> {
    return *shared;
  });
  RDFMR_RETURN_NOT_OK(handle->EnsureLoaded());
  return handle->Info();
}

Result<DatasetInfo> DatasetRegistry::RegisterMapped(const std::string& name,
                                                    const std::string& path,
                                                    bool materialize) {
  if (name.empty()) {
    return Status::InvalidArgument("dataset name must be non-empty");
  }
  RDFMR_ASSIGN_OR_RETURN(std::shared_ptr<const storage::RdxReader> reader,
                         storage::RdxReader::Open(path));
  auto handle = Replace(
      name,
      [reader]() -> Result<std::vector<Triple>> { return reader->Triples(); },
      reader, materialize);
  return handle->Info();
}

Status DatasetRegistry::Drop(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = datasets_.find(name);
  if (it == datasets_.end()) {
    return Status::NotFound("no such dataset: " + name);
  }
  datasets_.erase(it);
  return Status::OK();
}

Result<std::shared_ptr<const DatasetHandle>> DatasetRegistry::Acquire(
    const std::string& name) const {
  std::shared_ptr<DatasetHandle> handle;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = datasets_.find(name);
    if (it == datasets_.end()) {
      return Status::NotFound("no such dataset: " + name);
    }
    handle = it->second;
  }
  // Materialize outside the registry lock: a slow load must not block
  // Acquire/List for other datasets.
  RDFMR_RETURN_NOT_OK(handle->EnsureLoaded());
  return std::shared_ptr<const DatasetHandle>(handle);
}

uint64_t DatasetRegistry::Epoch(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = datasets_.find(name);
  return it == datasets_.end() ? 0 : it->second->epoch();
}

std::vector<DatasetInfo> DatasetRegistry::List() const {
  std::vector<std::shared_ptr<DatasetHandle>> handles;
  {
    std::lock_guard<std::mutex> lock(mu_);
    handles.reserve(datasets_.size());
    for (const auto& [name, handle] : datasets_) handles.push_back(handle);
  }
  std::vector<DatasetInfo> infos;
  infos.reserve(handles.size());
  for (const auto& handle : handles) infos.push_back(handle->Info());
  return infos;
}

size_t DatasetRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return datasets_.size();
}

}  // namespace service
}  // namespace rdfmr
