// Named-dataset registry for the query service.
//
// Each dataset is one SimDfs instance whose base triple relation lives at
// a fixed path ("base"), built lazily from a TripleLoader the first time a
// query needs it — the load cost (parsing, DFS write) is paid once and the
// loaded base is shared, read-only, by every concurrent query.
//
// Handles are refcounted (std::shared_ptr): Drop or reload removes a
// dataset from the registry immediately, but in-flight queries holding the
// old handle keep its SimDfs alive until they finish. Every (re)load bumps
// a registry-wide epoch, which the service folds into its cache keys so
// entries for a replaced or dropped dataset become unreachable at once.

#ifndef RDFMR_SERVICE_DATASET_REGISTRY_H_
#define RDFMR_SERVICE_DATASET_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "dfs/sim_dfs.h"
#include "rdf/graph_stats.h"
#include "rdf/triple.h"
#include "storage/rdx_reader.h"

namespace rdfmr {
namespace service {

/// \brief Snapshot of one registry entry.
struct DatasetInfo {
  std::string name;
  uint64_t epoch = 0;
  bool loaded = false;       ///< base relation materialized?
  size_t num_triples = 0;    ///< 0 until loaded (mapped: known at once)
  uint64_t base_bytes = 0;   ///< logical bytes of the base relation
  bool mapped = false;       ///< backed by a memory-mapped rdx file?
  uint64_t mapped_bytes = 0; ///< on-disk bytes of the mapping, if mapped
  /// Mapped dataset serving zero-materialization scans (base mounted as a
  /// LineSource over the mapping instead of decoded into line vectors).
  bool mapped_scans = false;
};

/// \brief Deferred triple source (file read, generator, in-memory copy).
using TripleLoader = std::function<Result<std::vector<Triple>>()>;

/// \brief One registered dataset: a lazily-materialized SimDfs base.
///
/// Thread-safe: EnsureLoaded serializes the one-time materialization;
/// afterwards dfs() is an immutable pointer to a SimDfs whose base file is
/// only ever read (SimDfs itself is internally synchronized).
class DatasetHandle {
 public:
  const std::string& name() const { return name_; }
  uint64_t epoch() const { return epoch_; }
  /// \brief DFS path of the base triple relation.
  static constexpr const char kBasePath[] = "base";

  /// \brief Materializes the base relation if not yet done; idempotent.
  /// A failed load is cached — later calls return the same error without
  /// re-running the loader (deterministic, and a bad source stays bad).
  Status EnsureLoaded() const;

  /// \brief The dataset's DFS; non-null iff EnsureLoaded returned OK.
  SimDfs* dfs() const;

  /// \brief The planner catalog, built once at load: decoded from the
  /// rdx v2 stats section for mapped datasets (no triple decode), computed
  /// in one pass over the triples otherwise. Non-null iff loaded.
  std::shared_ptr<const GraphStats> stats() const;

  DatasetInfo Info() const;

  /// \brief The rdx mapping backing this dataset, or null when the
  /// dataset was loaded from memory / a deferred loader.
  const std::shared_ptr<const storage::RdxReader>& mapped_reader() const {
    return mapped_;
  }

  /// \brief True when queries run zero-materialization scans over the
  /// mapping (mapped dataset registered without the materialize escape
  /// hatch).
  bool mapped_scans() const { return mapped_ != nullptr && !materialize_; }

 private:
  friend class DatasetRegistry;
  DatasetHandle(std::string name, uint64_t epoch, ClusterConfig cluster,
                TripleLoader loader,
                std::shared_ptr<const storage::RdxReader> mapped,
                bool materialize)
      : name_(std::move(name)),
        epoch_(epoch),
        cluster_(cluster),
        mapped_(std::move(mapped)),
        materialize_(materialize),
        loader_(std::move(loader)) {}

  const std::string name_;
  const uint64_t epoch_;
  const ClusterConfig cluster_;
  /// Validated mapping kept alive for the handle's lifetime (null unless
  /// registered via RegisterMapped). Immutable after construction.
  const std::shared_ptr<const storage::RdxReader> mapped_;
  /// Mapped datasets only: decode into a materialized base on first query
  /// instead of mounting the mapping for zero-materialization scans.
  const bool materialize_ = false;

  /// Guards the one-time load and the fields below.
  mutable std::mutex mu_;
  mutable TripleLoader loader_;  // cleared after the load attempt
  mutable bool attempted_ = false;
  mutable Status load_status_;
  mutable std::unique_ptr<SimDfs> dfs_;
  mutable std::shared_ptr<const GraphStats> stats_;
  mutable size_t num_triples_ = 0;
  mutable uint64_t base_bytes_ = 0;
};

/// \brief Thread-safe name -> DatasetHandle map with epoching.
class DatasetRegistry {
 public:
  explicit DatasetRegistry(ClusterConfig cluster) : cluster_(cluster) {}

  /// \brief Registers (or replaces) `name` with a deferred source; the
  /// loader runs on first Acquire. Replacing bumps the epoch — queries
  /// already running keep the old handle.
  Result<DatasetInfo> Register(const std::string& name, TripleLoader loader);

  /// \brief Registers `name` and materializes it immediately.
  Result<DatasetInfo> Load(const std::string& name,
                           std::vector<Triple> triples);

  /// \brief Registers `name` backed by the memory-mapped rdx file at
  /// `path`. The file is mapped and fully validated now — milliseconds,
  /// independent of triple count, so corruption surfaces at registration.
  /// By default the first query MOUNTS the mapping into the dataset's
  /// SimDfs (zero-materialization: scans decode records lazily straight
  /// from the mapped postings); `materialize` is the escape hatch that
  /// restores the old decode-into-a-triple-vector-on-first-query path.
  Result<DatasetInfo> RegisterMapped(const std::string& name,
                                     const std::string& path,
                                     bool materialize = false);

  /// \brief Removes `name`; NotFound if absent. In-flight queries keep
  /// their handles.
  Status Drop(const std::string& name);

  /// \brief Returns the loaded handle for `name` (materializing it on
  /// first use), or NotFound / the cached load error.
  Result<std::shared_ptr<const DatasetHandle>> Acquire(
      const std::string& name) const;

  /// \brief Current epoch of `name`, 0 when absent.
  uint64_t Epoch(const std::string& name) const;

  std::vector<DatasetInfo> List() const;

  size_t size() const;

  const ClusterConfig& cluster() const { return cluster_; }

 private:
  std::shared_ptr<DatasetHandle> Replace(
      const std::string& name, TripleLoader loader,
      std::shared_ptr<const storage::RdxReader> mapped = nullptr,
      bool materialize = false);

  const ClusterConfig cluster_;
  mutable std::mutex mu_;
  uint64_t next_epoch_ = 1;
  std::map<std::string, std::shared_ptr<DatasetHandle>> datasets_;
};

}  // namespace service
}  // namespace rdfmr

#endif  // RDFMR_SERVICE_DATASET_REGISTRY_H_
