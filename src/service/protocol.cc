#include "service/protocol.h"

#include <memory>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/strings.h"
#include "datagen/testbed.h"
#include "query/solution.h"
#include "query/sparql_parser.h"
#include "service/dataset_io.h"
#include "storage/rdx_reader.h"

namespace rdfmr {
namespace service {

namespace {

JsonValue ErrorResponse(const Status& status) {
  JsonValue o = JsonValue::MakeObject();
  o.Set("ok", false);
  o.Set("error", status.message());
  o.Set("code", StatusCodeToString(status.code()));
  return o;
}

JsonValue OkResponse() {
  JsonValue o = JsonValue::MakeObject();
  o.Set("ok", true);
  return o;
}

JsonValue PlanCandidateJson(const PlanCandidate& candidate) {
  JsonValue o = JsonValue::MakeObject();
  o.Set("engine", EngineKindToString(candidate.kind));
  o.Set("modeled_seconds", candidate.modeled_seconds);
  o.Set("cycles", static_cast<uint64_t>(candidate.planned_cycles));
  o.Set("star_bytes", candidate.star_bytes);
  o.Set("peak_bytes", candidate.peak_bytes);
  o.Set("fits", candidate.fits);
  o.Set("feasible", candidate.feasible);
  o.Set("chosen", candidate.chosen);
  if (!candidate.note.empty()) o.Set("note", candidate.note);
  return o;
}

JsonValue DatasetInfoJson(const DatasetInfo& info) {
  JsonValue o = JsonValue::MakeObject();
  o.Set("name", info.name);
  o.Set("epoch", info.epoch);
  o.Set("loaded", info.loaded);
  o.Set("triples", static_cast<uint64_t>(info.num_triples));
  o.Set("bytes", info.base_bytes);
  o.Set("mapped", info.mapped);
  if (info.mapped) {
    o.Set("mapped_bytes", info.mapped_bytes);
    o.Set("mapped_scans", info.mapped_scans);
  }
  return o;
}

Result<NodePattern> NodeFromJson(const JsonValue& value) {
  if (!value.is_object()) {
    return Status::InvalidArgument("pattern position must be an object");
  }
  const bool has_var = value.Has("var");
  const bool has_const = value.Has("const");
  if (has_var == has_const) {
    return Status::InvalidArgument(
        "pattern position needs exactly one of \"var\" or \"const\"");
  }
  if (has_const) {
    if (value.Has("contains")) {
      return Status::InvalidArgument(
          "\"contains\" applies to variables only");
    }
    return NodePattern::Const(value.GetString("const"));
  }
  return NodePattern::Var(value.GetString("var"),
                          value.GetString("contains"));
}

JsonValue NodeToJson(const NodePattern& node) {
  JsonValue o = JsonValue::MakeObject();
  if (node.is_constant()) {
    o.Set("const", node.value);
  } else {
    o.Set("var", node.value);
    if (!node.contains_filter.empty()) o.Set("contains", node.contains_filter);
  }
  return o;
}

/// Builds the executable query + optional aggregate out of one query spec
/// object ("query_id" | "sparql" | "patterns").
struct ParsedQuerySpec {
  std::shared_ptr<const GraphPatternQuery> query;
  std::optional<AggregateSpec> aggregate;
};

Result<ParsedQuerySpec> QuerySpecFromJson(const JsonValue& spec) {
  ParsedQuerySpec out;
  const bool has_id = spec.Has("query_id");
  const bool has_sparql = spec.Has("sparql");
  const bool has_patterns = spec.Has("patterns");
  if (has_id + has_sparql + has_patterns != 1) {
    return Status::InvalidArgument(
        "query spec needs exactly one of \"query_id\", \"sparql\", or "
        "\"patterns\"");
  }
  if (has_id) {
    RDFMR_ASSIGN_OR_RETURN(out.query,
                           GetTestbedQuery(spec.GetString("query_id")));
  } else if (has_sparql) {
    RDFMR_ASSIGN_OR_RETURN(
        ParsedQuery parsed,
        ParseSparqlQuery(spec.GetString("name", "inline"),
                         spec.GetString("sparql")));
    out.query = std::make_shared<const GraphPatternQuery>(
        std::move(parsed.query));
    out.aggregate = std::move(parsed.aggregate);
  } else {
    const JsonValue& patterns = spec.Get("patterns");
    if (!patterns.is_array() || patterns.AsArray().empty()) {
      return Status::InvalidArgument(
          "\"patterns\" must be a non-empty array");
    }
    std::vector<TriplePattern> parsed;
    parsed.reserve(patterns.AsArray().size());
    for (const JsonValue& p : patterns.AsArray()) {
      RDFMR_ASSIGN_OR_RETURN(TriplePattern tp, PatternFromJson(p));
      parsed.push_back(std::move(tp));
    }
    RDFMR_ASSIGN_OR_RETURN(
        GraphPatternQuery query,
        GraphPatternQuery::Create(spec.GetString("name", "adhoc"),
                                  std::move(parsed)));
    out.query =
        std::make_shared<const GraphPatternQuery>(std::move(query));
  }
  if (spec.Has("aggregate")) {
    RDFMR_ASSIGN_OR_RETURN(AggregateSpec agg,
                           AggregateFromJson(spec.Get("aggregate")));
    out.aggregate = std::move(agg);
  }
  return out;
}

Result<EngineOptions> OptionsFromJson(const JsonValue& request) {
  EngineOptions options;
  if (request.Has("engine")) {
    RDFMR_ASSIGN_OR_RETURN(options.kind,
                           EngineKindFromString(request.GetString("engine")));
  }
  options.phi_partitions = static_cast<uint32_t>(
      request.GetUint("phi", options.phi_partitions));
  options.runtime.num_threads =
      static_cast<uint32_t>(request.GetUint("threads", 0));
  return options;
}

JsonValue AnswersJson(const SolutionSet& answers, uint64_t max_answers) {
  JsonValue array = JsonValue::MakeArray();
  uint64_t emitted = 0;
  for (const Solution& solution : answers) {
    if (max_answers > 0 && emitted >= max_answers) break;
    array.Append(solution.Serialize());
    ++emitted;
  }
  return array;
}

/// Response shaping for the query/batch verbs, shared by the synchronous
/// dispatch and the Submit() completion path of the async dispatch. A
/// terse response carries only the verdict and the answers: the stats
/// envelope is ~1 KB and costs more to serialize than the whole rest of
/// the warm path, so pipelined high-throughput clients opt out of it.
JsonValue ShapeQueryResponse(const ServiceResponse& response,
                             uint64_t max_answers, bool per_query,
                             bool terse) {
  if (!response.ok()) return ErrorResponse(response.status);
  JsonValue o = OkResponse();
  if (!terse) {
    o.Set("epoch", response.epoch);
    o.Set("plan_cache_hit", response.plan_cache_hit);
    o.Set("result_cache_hit", response.result_cache_hit);
    o.Set("queue_micros", response.queue_micros);
    o.Set("exec_micros", response.exec_micros);
    o.Set("stats", ExecStatsToJson(response.stats));
  }
  if (per_query) {
    JsonValue answers = JsonValue::MakeArray();
    JsonValue counts = JsonValue::MakeArray();
    for (const SolutionSet& set : response.batch_answer_sets()) {
      answers.Append(AnswersJson(set, max_answers));
      counts.Append(static_cast<uint64_t>(set.size()));
    }
    o.Set("answers", std::move(answers));
    o.Set("num_answers", std::move(counts));
  } else {
    o.Set("answers", AnswersJson(response.answer_set(), max_answers));
    o.Set("num_answers",
          static_cast<uint64_t>(response.answer_set().size()));
  }
  return o;
}

/// True when the batch verb's response reports answers per input query
/// (mode "batch") rather than as one merged set.
bool IsPerQuery(const ServiceRequest& service_request) {
  return service_request.query == nullptr &&
         service_request.batch_mode == BatchMode::kPerQuery;
}

/// Runs a built query/batch request synchronously and shapes the result.
JsonValue RunServiceRequest(QueryService* query_service,
                            ServiceRequest service_request,
                            const JsonValue& request) {
  const uint64_t max_answers = request.GetUint("max_answers", 0);
  const bool per_query = IsPerQuery(service_request);
  const bool terse = request.GetBool("terse");
  ServiceResponse response =
      query_service->Query(std::move(service_request));
  return ShapeQueryResponse(response, max_answers, per_query, terse);
}

JsonValue HandleLoad(QueryService* query_service, const JsonValue& request) {
  const std::string dataset = request.GetString("dataset");
  if (dataset.empty()) {
    return ErrorResponse(
        Status::InvalidArgument("load: need a \"dataset\" name"));
  }
  const bool has_path = request.Has("path");
  const bool has_family = request.Has("family");
  const bool has_triples = request.Has("triples");
  if (has_path + has_family + has_triples != 1) {
    return ErrorResponse(Status::InvalidArgument(
        "load: need exactly one of \"path\", \"family\", or \"triples\""));
  }
  Result<DatasetInfo> info = Status::Unknown("unreachable");
  if (has_triples) {
    const JsonValue& rows = request.Get("triples");
    if (!rows.is_array()) {
      return ErrorResponse(Status::InvalidArgument(
          "load: \"triples\" must be an array of [s,p,o] arrays"));
    }
    std::vector<Triple> triples;
    triples.reserve(rows.AsArray().size());
    for (const JsonValue& row : rows.AsArray()) {
      if (!row.is_array() || row.AsArray().size() != 3) {
        return ErrorResponse(Status::InvalidArgument(
            "load: each triple must be a [s,p,o] array"));
      }
      const JsonValue::Array& fields = row.AsArray();
      triples.emplace_back(fields[0].AsString(), fields[1].AsString(),
                           fields[2].AsString());
    }
    info = query_service->LoadDataset(dataset, std::move(triples));
  } else {
    TripleLoader loader;
    if (has_path) {
      const std::string path = request.GetString("path");
      if (storage::IsRdxPath(path) && !request.GetBool("eager")) {
        // rdx files map zero-copy: validated now, served by mapped scans
        // from the first query on. "materialize" keeps the mapping but
        // decodes into a triple vector on first query; "eager" still
        // forces an immediate parse-and-decode below.
        info = query_service->RegisterMappedDataset(
            dataset, path, request.GetBool("materialize"));
        if (!info.ok()) return ErrorResponse(info.status());
        JsonValue mapped_ok = OkResponse();
        mapped_ok.Set("dataset", DatasetInfoJson(*info));
        return mapped_ok;
      }
      loader = [path] { return ReadDatasetFile(path); };
    } else {
      const std::string family = request.GetString("family");
      const uint64_t scale = request.GetUint("scale", 100);
      const uint64_t seed = request.GetUint("seed", 42);
      loader = [family, scale, seed] {
        return GenerateFamilyDataset(family, scale, seed);
      };
    }
    if (request.GetBool("eager")) {
      Result<std::vector<Triple>> triples = loader();
      if (!triples.ok()) return ErrorResponse(triples.status());
      info = query_service->LoadDataset(dataset, *std::move(triples));
    } else {
      info = query_service->RegisterDataset(dataset, std::move(loader));
    }
  }
  if (!info.ok()) return ErrorResponse(info.status());
  JsonValue o = OkResponse();
  o.Set("dataset", DatasetInfoJson(*info));
  return o;
}

/// Options shared by the query and batch verbs.
Status FillCommonQueryFields(const JsonValue& request,
                             ServiceRequest* service_request) {
  RDFMR_ASSIGN_OR_RETURN(service_request->options,
                         OptionsFromJson(request));
  service_request->deadline_ms = request.GetUint("deadline_ms", 0);
  service_request->use_plan_cache = !request.GetBool("no_plan_cache");
  service_request->use_result_cache = !request.GetBool("no_result_cache");
  return Status::OK();
}

Result<ServiceRequest> BuildQueryRequest(const JsonValue& request) {
  ServiceRequest service_request;
  service_request.dataset = request.GetString("dataset");
  RDFMR_ASSIGN_OR_RETURN(ParsedQuerySpec spec, QuerySpecFromJson(request));
  service_request.query = spec.query;
  service_request.aggregate = spec.aggregate;
  RDFMR_RETURN_NOT_OK(FillCommonQueryFields(request, &service_request));
  return service_request;
}

Result<ServiceRequest> BuildBatchRequest(const JsonValue& request) {
  ServiceRequest service_request;
  service_request.dataset = request.GetString("dataset");
  if (request.Has("query_ids")) {
    const JsonValue& ids = request.Get("query_ids");
    if (!ids.is_array()) {
      return Status::InvalidArgument(
          "batch: \"query_ids\" must be an array of catalog ids");
    }
    for (const JsonValue& id : ids.AsArray()) {
      RDFMR_ASSIGN_OR_RETURN(auto query, GetTestbedQuery(id.AsString()));
      service_request.batch.push_back(std::move(query));
    }
  } else if (request.Has("queries")) {
    const JsonValue& specs = request.Get("queries");
    if (!specs.is_array()) {
      return Status::InvalidArgument(
          "batch: \"queries\" must be an array of query objects");
    }
    for (const JsonValue& spec : specs.AsArray()) {
      RDFMR_ASSIGN_OR_RETURN(ParsedQuerySpec parsed,
                             QuerySpecFromJson(spec));
      if (parsed.aggregate.has_value()) {
        return Status::InvalidArgument(
            "batch: aggregation is not supported in batches");
      }
      service_request.batch.push_back(parsed.query);
    }
  }
  if (service_request.batch.empty()) {
    return Status::InvalidArgument(
        "batch: need a non-empty \"query_ids\" or \"queries\" array");
  }
  const std::string mode = request.GetString("mode", "batch");
  if (mode == "union") {
    service_request.batch_mode = BatchMode::kUnion;
  } else if (mode == "batch") {
    service_request.batch_mode = BatchMode::kPerQuery;
  } else {
    return Status::InvalidArgument(
        "batch: \"mode\" must be \"batch\" or \"union\"");
  }
  RDFMR_RETURN_NOT_OK(FillCommonQueryFields(request, &service_request));
  return service_request;
}

JsonValue HandleQuery(QueryService* query_service, const JsonValue& request) {
  Result<ServiceRequest> built = BuildQueryRequest(request);
  if (!built.ok()) return ErrorResponse(built.status());
  return RunServiceRequest(query_service, *std::move(built), request);
}

JsonValue HandleBatch(QueryService* query_service, const JsonValue& request) {
  Result<ServiceRequest> built = BuildBatchRequest(request);
  if (!built.ok()) return ErrorResponse(built.status());
  return RunServiceRequest(query_service, *std::move(built), request);
}

/// The `explain` verb: scores every candidate engine for the request's
/// query (or batch) against the dataset's statistics catalog and returns
/// the table WITHOUT executing anything. Accepts the same body as the
/// query verb (single spec) or the batch verb ("query_ids"/"queries").
JsonValue HandleExplain(QueryService* query_service,
                        const JsonValue& request) {
  const bool batch_shape =
      request.Has("query_ids") || request.Has("queries");
  Result<ServiceRequest> built = batch_shape ? BuildBatchRequest(request)
                                             : BuildQueryRequest(request);
  if (!built.ok()) return ErrorResponse(built.status());
  Result<PlanChoice> choice = query_service->Explain(*built);
  if (!choice.ok()) return ErrorResponse(choice.status());
  JsonValue o = OkResponse();
  o.Set("chosen", EngineKindToString(choice->kind));
  o.Set("rationale", choice->rationale);
  JsonValue candidates = JsonValue::MakeArray();
  for (const PlanCandidate& candidate : choice->candidates) {
    candidates.Append(PlanCandidateJson(candidate));
  }
  o.Set("candidates", std::move(candidates));
  return o;
}

JsonValue HandleStats(QueryService* query_service, const JsonValue& request) {
  const std::string format = request.GetString("format", "json");
  ServiceStatsSnapshot snapshot = query_service->Stats();
  if (format == "prometheus") {
    JsonValue o = OkResponse();
    o.Set("prometheus", snapshot.ToPrometheus());
    return o;
  }
  if (format != "json") {
    return ErrorResponse(Status::InvalidArgument(
        "stats: \"format\" must be \"json\" or \"prometheus\""));
  }
  auto stats = ParseJson(snapshot.ToJson());
  JsonValue o = OkResponse();
  o.Set("stats", stats.ok() ? *stats : JsonValue());
  return o;
}

JsonValue HandleMetrics(QueryService* query_service,
                        const JsonValue& request) {
  const std::string format = request.GetString("format", "prometheus");
  ServiceStatsSnapshot snapshot = query_service->Stats();
  if (format == "prometheus") {
    JsonValue o = OkResponse();
    o.Set("prometheus", MetricsRegistry::Global().ToPrometheusText() +
                            snapshot.ToPrometheus());
    return o;
  }
  if (format != "json") {
    return ErrorResponse(Status::InvalidArgument(
        "metrics: \"format\" must be \"prometheus\" or \"json\""));
  }
  auto metrics = ParseJson(MetricsRegistry::Global().ToJson());
  auto stats = ParseJson(snapshot.ToJson());
  JsonValue o = OkResponse();
  o.Set("metrics", metrics.ok() ? *metrics : JsonValue());
  o.Set("stats", stats.ok() ? *stats : JsonValue());
  return o;
}

}  // namespace

Result<TriplePattern> PatternFromJson(const JsonValue& value) {
  if (!value.is_object()) {
    return Status::InvalidArgument("pattern must be an object");
  }
  RDFMR_ASSIGN_OR_RETURN(NodePattern subject, NodeFromJson(value.Get("s")));
  RDFMR_ASSIGN_OR_RETURN(NodePattern object, NodeFromJson(value.Get("o")));
  const JsonValue& property = value.Get("p");
  if (!property.is_object() ||
      (property.Has("var") == property.Has("const"))) {
    return Status::InvalidArgument(
        "pattern \"p\" needs exactly one of \"var\" or \"const\"");
  }
  TriplePattern tp;
  if (property.Has("const")) {
    tp = TriplePattern::Bound(std::move(subject),
                              property.GetString("const"),
                              std::move(object));
  } else {
    tp = TriplePattern::Unbound(std::move(subject),
                                property.GetString("var"),
                                std::move(object));
  }
  tp.optional = value.GetBool("optional");
  return tp;
}

JsonValue PatternToJson(const TriplePattern& pattern) {
  JsonValue o = JsonValue::MakeObject();
  o.Set("s", NodeToJson(pattern.subject));
  JsonValue p = JsonValue::MakeObject();
  p.Set(pattern.property_bound ? "const" : "var", pattern.property);
  o.Set("p", std::move(p));
  o.Set("o", NodeToJson(pattern.object));
  if (pattern.optional) o.Set("optional", true);
  return o;
}

Result<AggregateSpec> AggregateFromJson(const JsonValue& value) {
  if (!value.is_object()) {
    return Status::InvalidArgument("aggregate must be an object");
  }
  AggregateSpec spec;
  const JsonValue& group = value.Get("group");
  if (!group.is_array() || group.AsArray().empty()) {
    return Status::InvalidArgument(
        "aggregate \"group\" must be a non-empty array of variables");
  }
  for (const JsonValue& var : group.AsArray()) {
    spec.group_vars.push_back(var.AsString());
  }
  spec.counted_var = value.GetString("counted");
  if (spec.counted_var.empty()) {
    return Status::InvalidArgument("aggregate needs a \"counted\" variable");
  }
  spec.count_var = value.GetString("as", spec.count_var);
  spec.distinct = value.GetBool("distinct", true);
  spec.min_count = value.GetUint("min_count", 0);
  return spec;
}

JsonValue AggregateToJson(const AggregateSpec& spec) {
  JsonValue o = JsonValue::MakeObject();
  JsonValue group = JsonValue::MakeArray();
  for (const std::string& var : spec.group_vars) group.Append(var);
  o.Set("group", std::move(group));
  o.Set("counted", spec.counted_var);
  o.Set("as", spec.count_var);
  o.Set("distinct", spec.distinct);
  o.Set("min_count", spec.min_count);
  return o;
}

JsonValue ExecStatsToJson(const ExecStats& stats) {
  JsonValue o = JsonValue::MakeObject();
  o.Set("engine", stats.engine);
  o.Set("query", stats.query);
  o.Set("ok", stats.ok());
  if (!stats.ok()) {
    o.Set("error", stats.status.ToString());
    o.Set("failed_job_index", static_cast<int64_t>(stats.failed_job_index));
  }
  o.Set("mr_cycles", static_cast<uint64_t>(stats.mr_cycles));
  o.Set("planned_cycles", static_cast<uint64_t>(stats.planned_cycles));
  o.Set("full_scans", static_cast<uint64_t>(stats.full_scans));
  o.Set("hdfs_read_bytes", stats.hdfs_read_bytes);
  o.Set("hdfs_write_bytes", stats.hdfs_write_bytes);
  o.Set("hdfs_write_bytes_replicated", stats.hdfs_write_bytes_replicated);
  o.Set("shuffle_bytes", stats.shuffle_bytes);
  o.Set("star_phase_write_bytes", stats.star_phase_write_bytes);
  o.Set("intermediate_write_bytes", stats.intermediate_write_bytes);
  o.Set("final_output_bytes", stats.final_output_bytes);
  o.Set("peak_dfs_used_bytes", stats.peak_dfs_used_bytes);
  o.Set("redundancy_factor", stats.redundancy_factor);
  o.Set("final_redundancy_factor", stats.final_redundancy_factor);
  o.Set("modeled_seconds", stats.modeled_seconds);
  o.Set("map_seconds", stats.map_seconds);
  o.Set("shuffle_sort_seconds", stats.shuffle_sort_seconds);
  o.Set("reduce_seconds", stats.reduce_seconds);
  // engine=auto runs carry the chooser's decision alongside the stats of
  // the concrete engine it resolved to.
  if (!stats.chosen_engine.empty()) {
    o.Set("chosen_engine", stats.chosen_engine);
    o.Set("plan_rationale", stats.plan_rationale);
    JsonValue candidates = JsonValue::MakeArray();
    for (const PlanCandidate& candidate : stats.plan_candidates) {
      candidates.Append(PlanCandidateJson(candidate));
    }
    o.Set("plan_candidates", std::move(candidates));
  }
  return o;
}

namespace {

bool VersionOk(const JsonValue& request) {
  if (!request.Has("v")) return true;
  const JsonValue& version = request.Get("v");
  return version.is_number() && version.AsUint() == kProtocolVersion;
}

void StampEnvelope(const JsonValue& request, JsonValue* response) {
  response->Set("v", kProtocolVersion);
  if (request.is_object() && request.Has("id")) {
    response->Set("id", request.Get("id"));
  }
}

}  // namespace

HandleResult HandleRequest(QueryService* query_service,
                           const JsonValue& request) {
  HandleResult result;
  if (!request.is_object()) {
    result.response = ErrorResponse(
        Status::InvalidArgument("request must be a JSON object"));
    StampEnvelope(request, &result.response);
    return result;
  }
  if (!VersionOk(request)) {
    result.response = ErrorResponse(Status::InvalidArgument(
        "unsupported protocol version (supported: " +
        std::to_string(kProtocolVersion) + ")"));
    StampEnvelope(request, &result.response);
    return result;
  }
  const std::string verb = request.GetString("verb");
  if (verb == "ping") {
    result.response = OkResponse();
  } else if (verb == "load") {
    result.response = HandleLoad(query_service, request);
  } else if (verb == "drop") {
    Status st = query_service->DropDataset(request.GetString("dataset"));
    result.response = st.ok() ? OkResponse() : ErrorResponse(st);
  } else if (verb == "list") {
    JsonValue datasets = JsonValue::MakeArray();
    for (const DatasetInfo& info : query_service->ListDatasets()) {
      datasets.Append(DatasetInfoJson(info));
    }
    result.response = OkResponse();
    result.response.Set("datasets", std::move(datasets));
  } else if (verb == "query") {
    result.response = HandleQuery(query_service, request);
  } else if (verb == "batch") {
    result.response = HandleBatch(query_service, request);
  } else if (verb == "explain") {
    result.response = HandleExplain(query_service, request);
  } else if (verb == "stats") {
    result.response = HandleStats(query_service, request);
  } else if (verb == "metrics") {
    result.response = HandleMetrics(query_service, request);
  } else if (verb == "shutdown") {
    result.response = OkResponse();
    result.shutdown = true;
  } else {
    result.response = ErrorResponse(Status::InvalidArgument(
        "unknown verb: \"" + verb +
        "\" (want ping|load|drop|list|explain|query|batch|stats|metrics|"
        "shutdown)"));
  }
  StampEnvelope(request, &result.response);
  return result;
}

HandleResult HandleRequestLine(QueryService* query_service,
                               const std::string& line) {
  Result<JsonValue> request = ParseJson(line);
  if (!request.ok()) {
    HandleResult result;
    result.response = ErrorResponse(request.status());
    result.response.Set("v", kProtocolVersion);
    return result;
  }
  return HandleRequest(query_service, *request);
}

AsyncDispatch HandleRequestLineAsync(QueryService* query_service,
                                     const std::string& line,
                                     HandleDone done) {
  AsyncDispatch dispatch;
  Result<JsonValue> parsed = ParseJson(line);
  if (!parsed.ok()) {
    JsonValue response = ErrorResponse(parsed.status());
    response.Set("v", kProtocolVersion);
    done(std::move(response), false);
    return dispatch;
  }
  const JsonValue& request = *parsed;
  if (request.is_object()) {
    dispatch.ordered_requested = request.GetBool("ordered");
  }
  const std::string verb =
      request.is_object() ? request.GetString("verb") : std::string();
  const bool slow_verb = verb == "query" || verb == "batch";
  if (!request.is_object() || !VersionOk(request) || !slow_verb) {
    // Fast verbs (and every error path) are cheap enough for the caller's
    // thread: complete inline.
    HandleResult result = HandleRequest(query_service, request);
    done(std::move(result.response), result.shutdown);
    return dispatch;
  }
  Result<ServiceRequest> built = verb == "query"
                                     ? BuildQueryRequest(request)
                                     : BuildBatchRequest(request);
  if (!built.ok()) {
    JsonValue response = ErrorResponse(built.status());
    StampEnvelope(request, &response);
    done(std::move(response), false);
    return dispatch;
  }
  const uint64_t max_answers = request.GetUint("max_answers", 0);
  const bool per_query = IsPerQuery(*built);
  const bool terse = request.GetBool("terse");
  const bool has_id = request.Has("id");
  JsonValue id = has_id ? request.Get("id") : JsonValue();
  query_service->Submit(
      *std::move(built),
      [done = std::move(done), max_answers, per_query, terse, has_id,
       id = std::move(id)](ServiceResponse response) {
        JsonValue shaped =
            ShapeQueryResponse(response, max_answers, per_query, terse);
        shaped.Set("v", kProtocolVersion);
        if (has_id) shaped.Set("id", id);
        done(std::move(shaped), false);
      });
  return dispatch;
}

}  // namespace service
}  // namespace rdfmr
