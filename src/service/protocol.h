// Newline-delimited JSON protocol of the query service.
//
// One request per line, one response per line. Every response is an
// object with "ok": true|false and "v" (the protocol version it speaks);
// errors carry "error" (message) and "code" (status code name); a
// request's "id" member, when present, is echoed. Requests may carry
// "v": a request whose "v" is not kProtocolVersion is rejected with a
// structured kInvalidArgument error; an absent "v" means version 1.
// docs/PROTOCOL.md documents the full wire contract.
//
// Verbs (the "verb" member):
//   ping      -> {"ok":true}
//   load      dataset + one source: "path" (host file, lazy), "family" +
//             "scale"/"seed" (generator, lazy), or "triples" ([[s,p,o],..],
//             eager). "eager":true forces immediate materialization.
//   drop      dataset
//   list      -> {"ok":true,"datasets":[{name,epoch,loaded,triples,bytes}]}
//   query     dataset + one query source: "query_id" (testbed catalog),
//             "sparql" (inline text), or "patterns" (see PatternFromJson)
//             with optional "name" and "aggregate". Options: "engine",
//             "phi", "threads", "deadline_ms", "no_plan_cache",
//             "no_result_cache", "max_answers".
//   batch     dataset + "query_ids" or "queries" (array of query objects),
//             "mode":"batch"|"union". Same options as query.
//   stats     -> {"ok":true,"stats":{...ServiceStats...}}; with
//             "format":"prometheus" the snapshot is returned instead as
//             text exposition format in a "prometheus" string member.
//   metrics   -> {"ok":true,"prometheus":...} — the process-wide
//             MetricsRegistry plus the service snapshot, as Prometheus
//             text; "format":"json" returns the registry as a "metrics"
//             JSON object (plus "stats") instead.
//   shutdown  -> {"ok":true}; the server stops after responding.
//
// The dispatch is a pure function of (service, request line) so tests can
// exercise the whole protocol without a socket.

#ifndef RDFMR_SERVICE_PROTOCOL_H_
#define RDFMR_SERVICE_PROTOCOL_H_

#include <cstdint>
#include <functional>
#include <string>

#include "common/json.h"
#include "common/result.h"
#include "engine/engine.h"
#include "query/aggregate.h"
#include "query/pattern.h"
#include "service/query_service.h"

namespace rdfmr {
namespace service {

/// \brief Version of the NDJSON wire protocol this build speaks. Stamped
/// as "v" on every response; requests carrying a different "v" are
/// rejected before dispatch.
inline constexpr uint64_t kProtocolVersion = 1;

/// \brief Outcome of one protocol line.
struct HandleResult {
  JsonValue response;
  bool shutdown = false;  ///< the request asked the server to stop
};

/// \brief Parses and executes one request line against `query_service`.
/// Never fails: malformed input yields an "ok":false response object.
HandleResult HandleRequestLine(QueryService* query_service,
                               const std::string& line);

/// \brief Same, for an already-parsed request object.
HandleResult HandleRequest(QueryService* query_service,
                           const JsonValue& request);

/// \brief Completion of one asynchronously dispatched line: the response
/// (envelope stamped: "v", echoed "id") plus whether the request asked
/// the server to stop.
using HandleDone = std::function<void(JsonValue response, bool shutdown)>;

/// \brief Transport-level facts the dispatcher learned from the request
/// before execution; the event-loop server acts on them.
struct AsyncDispatch {
  /// The request carried "ordered":true. Only honored by the transport on
  /// a connection's first request (see NetServer::SetOrdered).
  bool ordered_requested = false;
};

/// \brief HandleRequestLine for the event-loop server: the slow verbs
/// ("query"/"batch") are parsed and validated inline but executed on the
/// query service's worker pool, so `done` may fire later from a worker
/// thread (or inline, on admission rejection). Every other verb executes
/// inline and `done` fires before this returns. `done` is called exactly
/// once either way, and must be safe to call from any thread.
AsyncDispatch HandleRequestLineAsync(QueryService* query_service,
                                     const std::string& line,
                                     HandleDone done);

// ---- conversions (exposed for the client helper and the fuzz harness) ------

/// \brief {"s":{"var":..|"const":..,"contains":..},"p":{..},"o":{..},
/// "optional":bool} <-> TriplePattern. The property position accepts only
/// "var" (unbound) or "const" (bound edge label).
Result<TriplePattern> PatternFromJson(const JsonValue& value);
JsonValue PatternToJson(const TriplePattern& pattern);

/// \brief {"group":[vars],"counted":var,"as":var,"distinct":bool,
/// "min_count":n} <-> AggregateSpec.
Result<AggregateSpec> AggregateFromJson(const JsonValue& value);
JsonValue AggregateToJson(const AggregateSpec& spec);

/// \brief Stable JSON rendering of the deterministic ExecStats fields
/// (plus the host wall-clock phase seconds, which are not deterministic).
JsonValue ExecStatsToJson(const ExecStats& stats);

}  // namespace service
}  // namespace rdfmr

#endif  // RDFMR_SERVICE_PROTOCOL_H_
