#include "service/query_service.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <utility>

#include "common/json.h"
#include "common/metrics.h"
#include "common/strings.h"

namespace rdfmr {
namespace service {

namespace {

using Clock = std::chrono::steady_clock;

uint64_t MicrosSince(Clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            start)
          .count());
}

uint32_t DeriveMaxConcurrent(const ServiceConfig& config) {
  if (config.max_concurrent > 0) return config.max_concurrent;
  return config.cluster.num_threads > 0 ? config.cluster.num_threads : 1;
}

uint32_t DeriveCacheShards(const ServiceConfig& config,
                           uint32_t max_concurrent) {
  if (config.cache_shards > 0) {
    return static_cast<uint32_t>(NextPowerOfTwo(config.cache_shards));
  }
  // Auto: ~2 stripes per worker so concurrent warm lookups rarely share a
  // shard mutex, clamped so tiny services still stripe and huge worker
  // counts don't shred the LRU working set.
  const size_t derived =
      NextPowerOfTwo(2 * static_cast<size_t>(max_concurrent));
  return static_cast<uint32_t>(
      std::min<size_t>(64, std::max<size_t>(8, derived)));
}

/// The name RunQuery / RunAggregateQuery would stamp on the stats.
std::string SingleQueryName(const ServiceRequest& request) {
  std::string name = request.query->name();
  if (request.aggregate.has_value()) name += "+count";
  return name;
}

uint64_t EstimateSetCharge(const SolutionSet& set) {
  uint64_t bytes = 32;
  for (const Solution& solution : set) {
    for (const auto& [var, value] : solution.bindings()) {
      bytes += var.size() + value.size() + 16;
    }
  }
  return bytes;
}

/// The ExecRequest equivalent of a ServiceRequest (for the plan chooser).
ExecRequest ToExecRequest(const ServiceRequest& request) {
  ExecRequest exec;
  if (request.query != nullptr) {
    exec.payload = ExecPayload::kSingle;
    exec.query = request.query;
    exec.aggregate = request.aggregate;
  } else {
    exec.payload = request.batch_mode == BatchMode::kUnion
                       ? ExecPayload::kUnion
                       : ExecPayload::kBatch;
    exec.queries = request.batch;
  }
  return exec;
}

Status CheckRequestShape(const ServiceRequest& request) {
  const bool single = request.query != nullptr;
  const bool batch = !request.batch.empty();
  if (single == batch) {
    return Status::InvalidArgument(
        "request must carry exactly one of a single query or a batch");
  }
  if (request.aggregate.has_value() && !single) {
    return Status::InvalidArgument(
        "aggregation applies to single queries only");
  }
  return Status::OK();
}

JsonValue HistogramJson(const Histogram& hist) {
  JsonValue o = JsonValue::MakeObject();
  o.Set("count", hist.count());
  o.Set("sum", hist.sum());
  o.Set("min", hist.min());
  o.Set("max", hist.max());
  o.Set("mean", hist.Mean());
  o.Set("p50", hist.Percentile(50));
  o.Set("p95", hist.Percentile(95));
  o.Set("p99", hist.Percentile(99));
  return o;
}

}  // namespace

// ---- cache keys -------------------------------------------------------------

std::string EngineOptionsFingerprint(const EngineOptions& options) {
  // The thread count is excluded on purpose: it changes only host
  // wall-clock fields, never answers or deterministic stats. The retry
  // budget and the disk-pressure policy ARE included: retry accounting
  // and preflight refusals/degradations are part of the stats a cached
  // result replays. The budget is fingerprinted fully resolved (runtime
  // field, deprecated alias, and RDFMR_MAX_ATTEMPTS env) so two requests
  // that execute differently never share an entry.
  return StringFormat(
      "kind=%s;phi=%u;grouping=%d;decode=%d;combiner=%d;attempts=%u;"
      "pressure=%d;cost=%.17g,%.17g,%.17g,%.17g,%.17g",
      EngineKindToString(options.kind), options.phi_partitions,
      static_cast<int>(options.grouping), options.decode_answers ? 1 : 0,
      options.aggregation_combiner ? 1 : 0,
      ResolveMaxAttempts(EffectiveRuntime(options), 0),
      static_cast<int>(options.disk_pressure), options.cost.hdfs_read_mbps,
      options.cost.hdfs_write_mbps, options.cost.shuffle_mbps,
      options.cost.sort_mbps, options.cost.job_startup_seconds);
}

std::string CanonicalQueryText(const ServiceRequest& request) {
  std::string out;
  auto append_query = [&out](const GraphPatternQuery& query) {
    for (const TriplePattern& tp : query.patterns()) {
      out += tp.ToString();
      out += '\n';
    }
  };
  if (request.query != nullptr) {
    append_query(*request.query);
    if (request.aggregate.has_value()) {
      const AggregateSpec& spec = *request.aggregate;
      out += "AGG group=";
      for (const std::string& var : spec.group_vars) {
        out += var;
        out += ',';
      }
      out += StringFormat(" counted=%s as=%s distinct=%d min=%llu\n",
                          spec.counted_var.c_str(), spec.count_var.c_str(),
                          spec.distinct ? 1 : 0,
                          static_cast<unsigned long long>(spec.min_count));
    }
  } else {
    // The batch *mode* (per-query vs union) is deliberately absent: union
    // is a response-time fold over the same execution, so both modes share
    // plan and result cache entries.
    for (const auto& query : request.batch) {
      out += "BRANCH\n";
      append_query(*query);
    }
  }
  return out;
}

std::string RequestCacheKey(const ServiceRequest& request, uint64_t epoch) {
  std::string key = request.dataset;
  key += '\x1f';
  key += std::to_string(epoch);
  key += '\x1f';
  key += EngineOptionsFingerprint(request.options);
  key += '\x1f';
  key += CanonicalQueryText(request);
  return key;
}

// ---- stats ------------------------------------------------------------------

std::string ServiceStatsSnapshot::ToJson() const {
  JsonValue o = JsonValue::MakeObject();
  o.Set("submitted", submitted);
  o.Set("served", served);
  o.Set("failed", failed);
  o.Set("rejected", rejected);
  o.Set("cancelled", cancelled);
  o.Set("deadline_expired", deadline_expired);
  o.Set("datasets", datasets);
  o.Set("queued", queued);
  o.Set("running", running);
  o.Set("cache_shards", cache_shards);
  JsonValue plan = JsonValue::MakeObject();
  plan.Set("hits", plan_cache_hits);
  plan.Set("misses", plan_cache_misses);
  plan.Set("lookups", plan_cache_lookups);
  plan.Set("entries", plan_cache_entries);
  o.Set("plan_cache", std::move(plan));
  JsonValue result = JsonValue::MakeObject();
  result.Set("hits", result_cache_hits);
  result.Set("misses", result_cache_misses);
  result.Set("lookups", result_cache_lookups);
  result.Set("entries", result_cache_entries);
  result.Set("bytes", result_cache_bytes);
  o.Set("result_cache", std::move(result));
  o.Set("queue_depth", HistogramJson(queue_depth));
  o.Set("queue_wait_micros", HistogramJson(queue_wait_micros));
  o.Set("exec_micros", HistogramJson(exec_micros));
  return o.Dump();
}

std::string ServiceStatsSnapshot::ToPrometheus() const {
  std::string out;
  auto counter = [&out](const char* name, const char* help,
                        uint64_t value) {
    out += "# HELP ";
    out += name;
    out += ' ';
    out += help;
    out += "\n# TYPE ";
    out += name;
    out += " counter\n";
    out += name;
    out += ' ';
    out += std::to_string(value);
    out += '\n';
  };
  auto gauge = [&out](const char* name, const char* help, uint64_t value) {
    out += "# HELP ";
    out += name;
    out += ' ';
    out += help;
    out += "\n# TYPE ";
    out += name;
    out += " gauge\n";
    out += name;
    out += ' ';
    out += std::to_string(value);
    out += '\n';
  };
  auto histogram = [&out](const char* name, const char* help,
                          const Histogram& h) {
    out += "# HELP ";
    out += name;
    out += ' ';
    out += help;
    out += "\n# TYPE ";
    out += name;
    out += " histogram\n";
    AppendPrometheusHistogram(name, h, &out);
  };
  counter("rdfmr_service_submitted_total", "Requests admitted or rejected.",
          submitted);
  counter("rdfmr_service_served_total", "Requests answered with OK status.",
          served);
  counter("rdfmr_service_failed_total",
          "Infrastructure or bad-request errors.", failed);
  counter("rdfmr_service_rejected_total", "Queue-bound rejections.",
          rejected);
  counter("rdfmr_service_cancelled_total", "Cancelled queued requests.",
          cancelled);
  counter("rdfmr_service_deadline_expired_total",
          "Requests past their deadline.", deadline_expired);
  counter("rdfmr_service_plan_cache_hits_total", "Plan cache hits.",
          plan_cache_hits);
  counter("rdfmr_service_plan_cache_misses_total", "Plan cache misses.",
          plan_cache_misses);
  counter("rdfmr_service_result_cache_hits_total", "Result cache hits.",
          result_cache_hits);
  counter("rdfmr_service_result_cache_misses_total", "Result cache misses.",
          result_cache_misses);
  counter("rdfmr_service_plan_cache_lookups_total",
          "Plan cache lookups (hits + misses).", plan_cache_lookups);
  counter("rdfmr_service_result_cache_lookups_total",
          "Result cache lookups (hits + misses).", result_cache_lookups);
  gauge("rdfmr_service_cache_shards_count",
        "Lock stripes per service cache.", cache_shards);
  gauge("rdfmr_service_plan_cache_entries_count",
        "Plan templates currently cached.", plan_cache_entries);
  gauge("rdfmr_service_result_cache_entries_count",
        "Result sets currently cached.", result_cache_entries);
  gauge("rdfmr_service_result_cache_bytes",
        "Approximate bytes held by the result cache.", result_cache_bytes);
  gauge("rdfmr_service_datasets_count", "Datasets currently registered.",
        datasets);
  gauge("rdfmr_service_queued_count", "Requests admitted but not running.",
        queued);
  gauge("rdfmr_service_running_count", "Requests currently executing.",
        running);
  histogram("rdfmr_service_queue_depth_count",
            "Queue depth sampled at each admission.", queue_depth);
  histogram("rdfmr_service_queue_wait_micros",
            "Queue wait per executed request.", queue_wait_micros);
  histogram("rdfmr_service_exec_micros",
            "Execution time per executed request.", exec_micros);
  return out;
}

// ---- service ---------------------------------------------------------------

struct QueryService::Pending {
  uint64_t ticket = 0;
  ServiceRequest request;
  std::function<void(ServiceResponse)> done;
  Clock::time_point submit_time;
  uint64_t deadline_ms = 0;
  bool cancelled = false;  // guarded by the service mutex
};

QueryService::QueryService(ServiceConfig config)
    : config_(std::move(config)),
      max_concurrent_(DeriveMaxConcurrent(config_)),
      cache_shards_(DeriveCacheShards(config_, max_concurrent_)),
      registry_(config_.cluster),
      plan_cache_(config_.plan_cache_entries, cache_shards_),
      result_cache_(config_.result_cache_bytes, cache_shards_),
      // One extra slot because ThreadPool reserves the final slot for a
      // ParallelFor caller: max_concurrent_ + 1 spawns exactly
      // max_concurrent_ asynchronous workers for Submit tasks.
      pool_(std::make_unique<ThreadPool>(max_concurrent_ + 1)) {}

QueryService::~QueryService() {
  // ThreadPool's destructor drains every queued task before joining, so
  // all admitted requests get their callback; pool_ is declared last,
  // hence destroyed before any state those tasks touch.
}

Result<DatasetInfo> QueryService::LoadDataset(const std::string& name,
                                              std::vector<Triple> triples) {
  RDFMR_ASSIGN_OR_RETURN(DatasetInfo info,
                         registry_.Load(name, std::move(triples)));
  // Epoch-keyed entries of the replaced generation are already
  // unreachable; purge them eagerly so they stop occupying capacity. The
  // sharded purge sweeps every stripe (keys hash across all of them), one
  // shard lock at a time — no service-wide lock involved.
  const std::string prefix = name + '\x1f';
  plan_cache_.EraseByPrefix(prefix);
  result_cache_.EraseByPrefix(prefix);
  return info;
}

Result<DatasetInfo> QueryService::RegisterDataset(const std::string& name,
                                                  TripleLoader loader) {
  return registry_.Register(name, std::move(loader));
}

Result<DatasetInfo> QueryService::RegisterMappedDataset(
    const std::string& name, const std::string& path, bool materialize) {
  RDFMR_ASSIGN_OR_RETURN(DatasetInfo info,
                         registry_.RegisterMapped(name, path, materialize));
  const std::string prefix = name + '\x1f';
  plan_cache_.EraseByPrefix(prefix);
  result_cache_.EraseByPrefix(prefix);
  return info;
}

Status QueryService::DropDataset(const std::string& name) {
  RDFMR_RETURN_NOT_OK(registry_.Drop(name));
  const std::string prefix = name + '\x1f';
  plan_cache_.EraseByPrefix(prefix);
  result_cache_.EraseByPrefix(prefix);
  return Status::OK();
}

std::vector<DatasetInfo> QueryService::ListDatasets() const {
  return registry_.List();
}

uint64_t QueryService::Submit(ServiceRequest request,
                              std::function<void(ServiceResponse)> done) {
  auto pending = std::make_shared<Pending>();
  pending->request = std::move(request);
  pending->done = std::move(done);
  pending->submit_time = Clock::now();
  pending->deadline_ms = pending->request.deadline_ms > 0
                             ? pending->request.deadline_ms
                             : config_.default_deadline_ms;
  stats_.submitted.fetch_add(1, std::memory_order_relaxed);
  // Reserve a queue slot first, then publish: the fetch_add makes the
  // bound check exact under concurrent submitters without any lock.
  const uint64_t depth =
      stats_.queued.fetch_add(1, std::memory_order_relaxed) + 1;
  if (depth > config_.queue_bound) {
    stats_.queued.fetch_sub(1, std::memory_order_relaxed);
    stats_.rejected.fetch_add(1, std::memory_order_relaxed);
    ServiceResponse response;
    response.status = Status::Unavailable(
        "admission queue full (bound " +
        std::to_string(config_.queue_bound) + ")");
    pending->done(std::move(response));
    return 0;
  }
  pending->ticket = next_ticket_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending_[pending->ticket] = pending;
  }
  stats_.queue_depth.Add(depth);
  pool_->Submit([this, pending] { RunPending(pending); });
  return pending->ticket;
}

ServiceResponse QueryService::Query(ServiceRequest request) {
  std::promise<ServiceResponse> promise;
  std::future<ServiceResponse> future = promise.get_future();
  Submit(std::move(request), [&promise](ServiceResponse response) {
    promise.set_value(std::move(response));
  });
  return future.get();
}

bool QueryService::Cancel(uint64_t ticket) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pending_.find(ticket);
  if (it == pending_.end() || it->second->cancelled) return false;
  it->second->cancelled = true;
  return true;
}

void QueryService::RunPending(const std::shared_ptr<Pending>& pending) {
  const Clock::time_point start = Clock::now();
  const uint64_t queue_micros = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          start - pending->submit_time)
          .count());
  bool cancelled = false;
  {
    // mu_ covers only the pending-map removal and the cancelled flag; the
    // stats updates below are lock-free.
    std::lock_guard<std::mutex> lock(mu_);
    pending_.erase(pending->ticket);
    cancelled = pending->cancelled;
  }
  stats_.queued.fetch_sub(1, std::memory_order_relaxed);
  ServiceResponse early;
  bool has_early = false;
  if (cancelled) {
    stats_.cancelled.fetch_add(1, std::memory_order_relaxed);
    early.status = Status::Cancelled("request cancelled while queued");
    has_early = true;
  } else if (pending->deadline_ms > 0 &&
             queue_micros >= pending->deadline_ms * 1000) {
    stats_.deadline_expired.fetch_add(1, std::memory_order_relaxed);
    early.status =
        Status::DeadlineExceeded("deadline expired while queued");
    has_early = true;
  } else {
    stats_.running.fetch_add(1, std::memory_order_relaxed);
    stats_.queue_wait_micros.Add(queue_micros);
  }
  if (has_early) {
    early.queue_micros = queue_micros;
    pending->done(std::move(early));
    return;
  }

  ServiceResponse response = Execute(pending->request);
  const uint64_t exec_micros = MicrosSince(start);
  response.queue_micros = queue_micros;
  response.exec_micros = exec_micros;
  const bool expired =
      pending->deadline_ms > 0 &&
      queue_micros + exec_micros >= pending->deadline_ms * 1000;
  if (expired && response.ok()) {
    // The run completed (and warmed the caches) but the caller's deadline
    // passed: report expiry, withhold the payload.
    response.status =
        Status::DeadlineExceeded("request completed past its deadline");
    response.answers.reset();
    response.batch_answers.reset();
  }
  stats_.running.fetch_sub(1, std::memory_order_relaxed);
  stats_.exec_micros.Add(exec_micros);
  if (response.ok()) {
    stats_.served.fetch_add(1, std::memory_order_relaxed);
  } else if (response.status.code() == StatusCode::kDeadlineExceeded) {
    stats_.deadline_expired.fetch_add(1, std::memory_order_relaxed);
  } else {
    stats_.failed.fetch_add(1, std::memory_order_relaxed);
  }
  pending->done(std::move(response));
}

ServiceResponse QueryService::Execute(const ServiceRequest& request) {
  ServiceResponse response;
  Status shape = CheckRequestShape(request);
  if (!shape.ok()) {
    response.status = shape;
    return response;
  }
  auto handle = registry_.Acquire(request.dataset);
  if (!handle.ok()) {
    response.status = handle.status();
    return response;
  }
  return ExecuteOnDataset(request, **handle);
}

Result<PlanChoice> QueryService::ChooseForDataset(
    const ServiceRequest& request, const DatasetHandle& dataset) const {
  std::shared_ptr<const GraphStats> stats = dataset.stats();
  SimDfs* dfs = dataset.dfs();
  if (stats == nullptr || dfs == nullptr) {
    return Status::Unknown("dataset not loaded: " + dataset.name());
  }
  auto base_size = dfs->FileSize(DatasetHandle::kBasePath);
  return ChoosePlan(ToExecRequest(request), *stats,
                    base_size.ok() ? *base_size : 0, dfs->UsedBytes(),
                    dfs->config(), request.options);
}

Result<PlanChoice> QueryService::Explain(const ServiceRequest& request) {
  RDFMR_RETURN_NOT_OK(CheckRequestShape(request));
  RDFMR_ASSIGN_OR_RETURN(std::shared_ptr<const DatasetHandle> handle,
                         registry_.Acquire(request.dataset));
  return ChooseForDataset(request, *handle);
}

ServiceResponse QueryService::ExecuteOnDataset(const ServiceRequest& request,
                                               const DatasetHandle& dataset) {
  ServiceResponse response;
  response.epoch = dataset.epoch();

  // engine=auto: resolve to a concrete engine BEFORE the cache key is
  // computed, so an auto request and an explicit request for the chosen
  // engine share plan and result cache entries. The chooser's decision is
  // stamped onto the response stats afterwards (never cached — a later
  // explicit hit replays the run without another request's rationale).
  ServiceRequest resolved_storage;
  const ServiceRequest* effective = &request;
  std::optional<PlanChoice> choice;
  if (request.options.kind == EngineKind::kAuto) {
    auto chosen = ChooseForDataset(request, dataset);
    if (!chosen.ok()) {
      response.status = chosen.status();
      return response;
    }
    choice = std::move(*chosen);
    resolved_storage = request;
    resolved_storage.options.kind = choice->kind;
    effective = &resolved_storage;
  }

  const std::string key = RequestCacheKey(*effective, dataset.epoch());

  // Shapes the final response from a pre-shaped answer snapshot (fresh
  // or cached). No deep copy anywhere: the response aliases the
  // snapshot's shared sets, so a warm hit costs two refcount bumps and
  // an ExecStats copy regardless of answer size.
  auto shape = [&request, &response](const CachedAnswers& value) {
    response.stats = value.stats;
    if (request.query != nullptr) {
      response.stats.query = SingleQueryName(request);
      response.answers = value.merged;
    } else if (request.batch_mode == BatchMode::kUnion) {
      response.stats.query =
          StringFormat("union-of-%zu", request.batch.size());
      response.answers = value.merged;
    } else {
      response.batch_answers = value.per_query;
    }
    response.status = Status::OK();
  };

  // Annotates the shaped stats with the chooser's decision (auto only).
  auto stamp_choice = [&response, &choice]() {
    if (!choice.has_value()) return;
    response.stats.chosen_engine = EngineKindToString(choice->kind);
    response.stats.plan_candidates = choice->candidates;
    response.stats.plan_rationale = choice->rationale;
  };

  if (request.use_result_cache) {
    // The warm hot path: one shard mutex inside Get, one relaxed
    // fetch_add — no service-wide lock.
    std::shared_ptr<const CachedAnswers> cached;
    if (result_cache_.Get(key, &cached)) {
      stats_.result_cache_hits.fetch_add(1, std::memory_order_relaxed);
      response.result_cache_hit = true;
      shape(*cached);
      stamp_choice();
      return response;
    }
    stats_.result_cache_misses.fetch_add(1, std::memory_order_relaxed);
  }

  auto plan = GetOrCompilePlan(*effective, key, &response.plan_cache_hit);
  if (!plan.ok()) {
    response.status = plan.status();
    return response;
  }

  ExecStats stats;
  std::vector<SolutionSet> answers;
  if (request.query != nullptr) {
    auto exec = RunCompiledQuery(dataset.dfs(), *plan->single,
                                 SingleQueryName(request),
                                 effective->options);
    if (!exec.ok()) {
      response.status = exec.status();
      return response;
    }
    stats = std::move(exec->stats);
    answers.push_back(std::move(exec->answers));
  } else {
    auto exec =
        RunCompiledBatch(dataset.dfs(), *plan->batch, effective->options);
    if (!exec.ok()) {
      response.status = exec.status();
      return response;
    }
    stats = std::move(exec->stats);
    answers = std::move(exec->answers);
  }

  // Shape once into an immutable snapshot. Batch runs precompute BOTH
  // shapes (per-query and the union fold) so a later hit in either mode
  // aliases ready-made sets.
  auto value = std::make_shared<CachedAnswers>();
  value->stats = std::move(stats);
  if (request.query != nullptr) {
    value->merged = std::make_shared<SolutionSet>(
        answers.empty() ? SolutionSet() : std::move(answers.front()));
  } else {
    SolutionSet merged;
    for (const SolutionSet& set : answers) {
      merged.insert(set.begin(), set.end());
    }
    value->merged = std::make_shared<SolutionSet>(std::move(merged));
    value->per_query =
        std::make_shared<std::vector<SolutionSet>>(std::move(answers));
  }
  value->charge = 128;  // fixed overhead for the ExecStats copy
  value->charge += EstimateSetCharge(*value->merged);
  if (value->per_query != nullptr) {
    for (const SolutionSet& set : *value->per_query) {
      value->charge += EstimateSetCharge(set);
    }
  }

  // Cache only complete, decoded, successful runs: failed runs are cheap
  // to re-measure and undecoded runs carry no reusable payload.
  if (request.use_result_cache && value->stats.ok() &&
      request.options.decode_answers) {
    result_cache_.Put(key, value, value->charge);
  }
  shape(*value);
  stamp_choice();
  return response;
}

Result<QueryService::CachedPlan> QueryService::GetOrCompilePlan(
    const ServiceRequest& request, const std::string& key,
    bool* plan_cache_hit) {
  *plan_cache_hit = false;
  if (request.use_plan_cache) {
    std::shared_ptr<const CachedPlan> hit;
    if (plan_cache_.Get(key, &hit)) {
      stats_.plan_cache_hits.fetch_add(1, std::memory_order_relaxed);
      *plan_cache_hit = true;
      return *hit;
    }
    stats_.plan_cache_misses.fetch_add(1, std::memory_order_relaxed);
  }
  // Compile outside any lock: two racing compilations of the same key are
  // both correct; the later Put simply replaces the earlier.
  CachedPlan plan;
  if (request.query != nullptr) {
    RDFMR_ASSIGN_OR_RETURN(
        CompiledPlan compiled,
        CompileQueryPlanTemplate(request.query, DatasetHandle::kBasePath,
                                 request.aggregate, request.options));
    plan.single = std::make_shared<const CompiledPlan>(std::move(compiled));
  } else {
    RDFMR_ASSIGN_OR_RETURN(
        NtgaBatchPlan compiled,
        CompileBatchPlanTemplate(request.batch, DatasetHandle::kBasePath,
                                 request.options));
    plan.batch = std::make_shared<const NtgaBatchPlan>(std::move(compiled));
  }
  if (request.use_plan_cache) {
    plan_cache_.Put(key, std::make_shared<const CachedPlan>(plan), 1);
  }
  return plan;
}

ServiceStatsSnapshot QueryService::SnapshotNow() const {
  // One coherent relaxed load per counter: loads of a single atomic are
  // totally ordered, so successive snapshots are monotone per field, and
  // the derived lookup totals equal hits + misses exactly (lookups is
  // never stored, so it cannot tear against its addends).
  const auto load = [](const std::atomic<uint64_t>& cell) {
    return cell.load(std::memory_order_relaxed);
  };
  ServiceStatsSnapshot snapshot;
  snapshot.submitted = load(stats_.submitted);
  snapshot.served = load(stats_.served);
  snapshot.failed = load(stats_.failed);
  snapshot.rejected = load(stats_.rejected);
  snapshot.cancelled = load(stats_.cancelled);
  snapshot.deadline_expired = load(stats_.deadline_expired);
  snapshot.plan_cache_hits = load(stats_.plan_cache_hits);
  snapshot.plan_cache_misses = load(stats_.plan_cache_misses);
  snapshot.plan_cache_lookups =
      snapshot.plan_cache_hits + snapshot.plan_cache_misses;
  snapshot.result_cache_hits = load(stats_.result_cache_hits);
  snapshot.result_cache_misses = load(stats_.result_cache_misses);
  snapshot.result_cache_lookups =
      snapshot.result_cache_hits + snapshot.result_cache_misses;
  snapshot.queued = load(stats_.queued);
  snapshot.running = load(stats_.running);
  snapshot.queue_depth = stats_.queue_depth.Snapshot();
  snapshot.queue_wait_micros = stats_.queue_wait_micros.Snapshot();
  snapshot.exec_micros = stats_.exec_micros.Snapshot();
  snapshot.cache_shards = cache_shards_;
  snapshot.plan_cache_entries = plan_cache_.size();
  snapshot.result_cache_entries = result_cache_.size();
  snapshot.result_cache_bytes = result_cache_.used();
  snapshot.datasets = registry_.size();
  return snapshot;
}

}  // namespace service
}  // namespace rdfmr
