// Long-lived concurrent query service over the simulated-cluster engines.
//
// One QueryService owns:
//   * a DatasetRegistry (named datasets -> lazily-loaded shared SimDfs
//     bases — the load cost is paid once per dataset, not per query);
//   * a plan cache keyed by (dataset epoch, canonical query text, engine
//     options) holding compiled plan templates, so repeated queries skip
//     compilation and execute via the engine's retargeting path;
//   * a bounded result cache (LRU by answer bytes) whose keys embed the
//     dataset epoch — dropping or reloading a dataset makes its entries
//     unreachable immediately (and they are purged eagerly);
//   * an admission controller: a bounded submission queue feeding a fixed
//     worker pool, per-request deadlines checked at dequeue and at
//     completion, and explicit cancellation of queued requests;
//   * ServiceStats counters and histograms, exported as JSON.
//
// Concurrency design (the warm path must get cheaper per query as workers
// are added, not dearer):
//   * Both caches are ShardedLruCache — power-of-two lock stripes selected
//     by key hash, so concurrent warm lookups only contend when they land
//     on the same shard. Prefix purges visit every shard, keeping
//     epoch/drop invalidation exact.
//   * Every stats counter/gauge is a relaxed std::atomic, and the latency
//     histograms are AtomicHistograms (the same relaxed-atomic discipline
//     as the operator-metrics gate): the execute path never takes a stats
//     lock. SnapshotNow() folds them into one consistent
//     ServiceStatsSnapshot only when the stats/metrics verbs ask.
//   * mu_ guards exactly the cancellation state: the pending-request map
//     and each Pending's cancelled flag. It is held only for O(1) map
//     operations — never across execution, cache access, or stats.
//   * Lock hierarchy: cache-shard mutexes < mu_; in fact no path ever
//     holds two of these locks at once (every critical section is a
//     leaf), so the ordering is vacuous by construction. The registry's
//     internal mutex is likewise independent.
// Net effect: a warm-result Query takes one cache-shard mutex plus two
// O(1) pending-map operations under mu_, and no other lock.
//
// Determinism contract (what the equivalence tests check): a served query's
// answers and all deterministic ExecStats fields are byte-identical to a
// direct RunQuery/RunQueryBatch/RunUnionQuery call with the same options,
// at any worker count — the service executes the very plan-template path
// those functions are built on. A result-cache hit replays the producing
// run's stats verbatim (its *_seconds fields are the producer's wall
// times).

#ifndef RDFMR_SERVICE_QUERY_SERVICE_H_
#define RDFMR_SERVICE_QUERY_SERVICE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/histogram.h"
#include "common/sharded_lru_cache.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "engine/engine.h"
#include "engine/plan_chooser.h"
#include "query/aggregate.h"
#include "query/pattern.h"
#include "service/dataset_registry.h"

namespace rdfmr {
namespace service {

struct ServiceConfig {
  /// Cluster configuration for every dataset's SimDfs.
  ClusterConfig cluster;
  /// Maximum queries executing at once; 0 derives it from
  /// cluster.num_threads (at least 1).
  uint32_t max_concurrent = 0;
  /// Maximum requests admitted but not yet executing; submissions beyond
  /// it are rejected with kUnavailable.
  uint32_t queue_bound = 64;
  /// Plan cache capacity in entries.
  uint64_t plan_cache_entries = 128;
  /// Result cache capacity in (approximate answer) bytes.
  uint64_t result_cache_bytes = 16ULL << 20;
  /// Lock stripes per cache (rounded up to a power of two). 0 derives it
  /// from the worker count: the smallest power of two >= 2x
  /// max_concurrent, clamped to [8, 64] — enough stripes that 16 warm
  /// workers rarely collide. The charge budget stays global (an entry is
  /// refused only when it exceeds the whole capacity), so the shard count
  /// never changes what is cacheable.
  uint32_t cache_shards = 0;
  /// Deadline applied to requests that do not carry one; 0 = none.
  uint64_t default_deadline_ms = 0;
};

/// \brief How a batch request combines its per-query answers.
enum class BatchMode {
  kPerQuery,  ///< RunQueryBatch semantics: answers aligned with queries
  kUnion,     ///< RunUnionQuery semantics: one unioned answer set
};

/// \brief One request. Exactly one of `query` (single, optionally
/// aggregated) or `batch` (shared-scan NTGA batch) must be set.
struct ServiceRequest {
  std::string dataset;
  std::shared_ptr<const GraphPatternQuery> query;
  std::optional<AggregateSpec> aggregate;
  std::vector<std::shared_ptr<const GraphPatternQuery>> batch;
  BatchMode batch_mode = BatchMode::kPerQuery;
  EngineOptions options;
  /// 0 uses the service default; the deadline covers queue wait AND
  /// execution (a request finishing past it reports kDeadlineExceeded).
  uint64_t deadline_ms = 0;
  bool use_plan_cache = true;
  bool use_result_cache = true;
};

struct ServiceResponse {
  /// Infrastructure outcome: OK even when the *measured* run failed
  /// in-workflow (that failure lives in stats.status, mirroring RunQuery);
  /// non-OK for rejection, cancellation, deadline, bad request, unknown
  /// dataset.
  Status status;
  ExecStats stats;
  /// Single-query / union answers. Shared, immutable ownership: warm
  /// result-cache hits alias the cached snapshot (an O(1) refcount bump,
  /// no deep copy), so concurrent warm responses point at the SAME set.
  /// Null when the response carries no answers.
  std::shared_ptr<const SolutionSet> answers;
  /// Batch answers (kPerQuery mode), aligned with the request's queries.
  /// Shared exactly like `answers`.
  std::shared_ptr<const std::vector<SolutionSet>> batch_answers;
  uint64_t epoch = 0;
  bool plan_cache_hit = false;
  bool result_cache_hit = false;
  uint64_t queue_micros = 0;
  uint64_t exec_micros = 0;

  bool ok() const { return status.ok(); }

  /// \brief The single/union answer set (empty set when absent).
  const SolutionSet& answer_set() const {
    static const SolutionSet kEmpty;
    return answers ? *answers : kEmpty;
  }
  /// \brief The per-query batch answers (empty vector when absent).
  const std::vector<SolutionSet>& batch_answer_sets() const {
    static const std::vector<SolutionSet> kEmpty;
    return batch_answers ? *batch_answers : kEmpty;
  }
};

/// \brief Point-in-time service counters (all monotonically increasing
/// except the gauges) plus latency/queue-depth distributions.
///
/// Produced only by QueryService::Stats() (the SnapshotNow fold): each
/// counter is one coherent atomic load, so any counter observed in one
/// snapshot is >= its value in every earlier snapshot, and the derived
/// `*_lookups` fields satisfy `hits + misses == lookups` exactly.
struct ServiceStatsSnapshot {
  uint64_t submitted = 0;
  uint64_t served = 0;            ///< responded with OK status
  uint64_t failed = 0;            ///< infrastructure / bad-request errors
  uint64_t rejected = 0;          ///< queue bound exceeded
  uint64_t cancelled = 0;
  uint64_t deadline_expired = 0;
  uint64_t plan_cache_hits = 0;
  uint64_t plan_cache_misses = 0;
  uint64_t plan_cache_lookups = 0;    ///< derived: hits + misses
  uint64_t result_cache_hits = 0;
  uint64_t result_cache_misses = 0;
  uint64_t result_cache_lookups = 0;  ///< derived: hits + misses
  uint64_t plan_cache_entries = 0;
  uint64_t result_cache_entries = 0;
  uint64_t result_cache_bytes = 0;
  uint64_t cache_shards = 0;  ///< lock stripes per cache (configuration)
  uint64_t datasets = 0;     ///< gauge
  uint64_t queued = 0;       ///< gauge
  uint64_t running = 0;      ///< gauge
  Histogram queue_depth;     ///< sampled at each admission
  Histogram queue_wait_micros;
  Histogram exec_micros;

  /// \brief Canonical JSON object (sorted keys; histograms nested).
  std::string ToJson() const;

  /// \brief Prometheus text exposition of the same snapshot under
  /// `rdfmr_service_*` metric names (convention
  /// `rdfmr_<area>_<name>_<unit>`; histograms as cumulative buckets).
  std::string ToPrometheus() const;
};

/// \brief The service. Thread-safe; one instance serves any number of
/// client threads / socket connections.
class QueryService {
 public:
  explicit QueryService(ServiceConfig config);

  /// \brief Drains every admitted request (their callbacks fire), then
  /// joins the workers.
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  const ServiceConfig& config() const { return config_; }
  uint32_t max_concurrent() const { return max_concurrent_; }

  // ---- datasets -----------------------------------------------------------

  Result<DatasetInfo> LoadDataset(const std::string& name,
                                  std::vector<Triple> triples);
  Result<DatasetInfo> RegisterDataset(const std::string& name,
                                      TripleLoader loader);
  /// \brief Registers `name` backed by a memory-mapped rdx file: the file
  /// is validated now (milliseconds); by default the first query mounts
  /// the mapping for zero-materialization scans, while `materialize`
  /// forces the old decode-into-triples-on-first-query path.
  Result<DatasetInfo> RegisterMappedDataset(const std::string& name,
                                            const std::string& path,
                                            bool materialize = false);
  Status DropDataset(const std::string& name);
  std::vector<DatasetInfo> ListDatasets() const;

  // ---- queries ------------------------------------------------------------

  /// \brief Admits `request`; `done` fires exactly once, possibly inline
  /// (rejection) or on a worker thread. Returns a ticket usable with
  /// Cancel until the request starts executing, or 0 when the request was
  /// rejected at admission (the callback has already fired).
  uint64_t Submit(ServiceRequest request,
                  std::function<void(ServiceResponse)> done);

  /// \brief Synchronous Submit: blocks until the response is ready.
  ServiceResponse Query(ServiceRequest request);

  /// \brief Scores every candidate engine for `request` against the
  /// dataset's stats catalog WITHOUT executing anything — the `explain`
  /// verb. Works for any request shape; the request's `options.kind` is
  /// ignored (the chooser always prices the full candidate table).
  Result<PlanChoice> Explain(const ServiceRequest& request);

  /// \brief Cancels a still-queued request; returns false when it already
  /// started (or finished). A cancelled request responds kCancelled.
  bool Cancel(uint64_t ticket);

  /// \brief Folds the lock-free counters, gauges, and atomic histograms
  /// into one ServiceStatsSnapshot (see the struct's consistency notes).
  /// Identical to Stats(); the explicit name marks it as the ONLY place
  /// the relaxed cells are read back.
  ServiceStatsSnapshot SnapshotNow() const;
  ServiceStatsSnapshot Stats() const { return SnapshotNow(); }

 private:
  struct Pending;
  struct CachedPlan {
    std::shared_ptr<const CompiledPlan> single;
    std::shared_ptr<const NtgaBatchPlan> batch;
  };
  /// Pre-shaped, immutable result snapshot. Warm hits hand out the
  /// shared_ptrs as-is — shaping (and the union fold) happens once, at
  /// insertion, not per hit. `merged` serves single-query and kUnion
  /// responses; `per_query` (null for single queries) serves kPerQuery —
  /// both shapes are kept because the cache key deliberately ignores the
  /// batch mode.
  struct CachedAnswers {
    ExecStats stats;
    std::shared_ptr<const SolutionSet> merged;
    std::shared_ptr<const std::vector<SolutionSet>> per_query;
    uint64_t charge = 0;
  };

  /// \brief Lock-free mirror of the snapshot's counters/gauges: relaxed
  /// atomics updated on the execute path, folded by SnapshotNow(). The
  /// cache lookup counters are the invariant-bearing pair — hits and
  /// misses are each a single fetch_add, lookups is derived at fold time,
  /// so `hits + misses == lookups` can never tear.
  struct StatsCells {
    std::atomic<uint64_t> submitted{0};
    std::atomic<uint64_t> served{0};
    std::atomic<uint64_t> failed{0};
    std::atomic<uint64_t> rejected{0};
    std::atomic<uint64_t> cancelled{0};
    std::atomic<uint64_t> deadline_expired{0};
    std::atomic<uint64_t> plan_cache_hits{0};
    std::atomic<uint64_t> plan_cache_misses{0};
    std::atomic<uint64_t> result_cache_hits{0};
    std::atomic<uint64_t> result_cache_misses{0};
    std::atomic<uint64_t> queued{0};   // gauge; also the admission bound
    std::atomic<uint64_t> running{0};  // gauge
    AtomicHistogram queue_depth;
    AtomicHistogram queue_wait_micros;
    AtomicHistogram exec_micros;
  };

  void RunPending(const std::shared_ptr<Pending>& pending);
  ServiceResponse Execute(const ServiceRequest& request);
  ServiceResponse ExecuteOnDataset(const ServiceRequest& request,
                                   const DatasetHandle& dataset);
  /// Runs the plan chooser for `request` against `dataset`'s catalog.
  Result<PlanChoice> ChooseForDataset(const ServiceRequest& request,
                                      const DatasetHandle& dataset) const;
  Result<CachedPlan> GetOrCompilePlan(const ServiceRequest& request,
                                      const std::string& key,
                                      bool* plan_cache_hit);

  const ServiceConfig config_;
  const uint32_t max_concurrent_;
  const uint32_t cache_shards_;
  DatasetRegistry registry_;

  StatsCells stats_;  ///< lock-free; read back only by SnapshotNow()
  std::atomic<uint64_t> next_ticket_{1};

  /// Striped caches: internally synchronized, one mutex per shard.
  ShardedLruCache<std::shared_ptr<const CachedPlan>> plan_cache_;
  ShardedLruCache<std::shared_ptr<const CachedAnswers>> result_cache_;

  /// Guards pending_ and each Pending's `cancelled` flag — nothing else.
  /// Held only for O(1) map operations; never while holding (or taking) a
  /// cache-shard mutex, executing, or updating stats.
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, std::shared_ptr<Pending>> pending_;

  /// Declared last so it is destroyed first: the destructor drains queued
  /// request tasks, which touch the members above.
  std::unique_ptr<ThreadPool> pool_;
};

// ---- cache-key helpers (exposed for tests) ---------------------------------

/// \brief Deterministic fingerprint of every EngineOptions field that can
/// change a deterministic ExecStats field or the answers. Host parallelism
/// (num_threads) is deliberately excluded: it only moves wall-clock times.
std::string EngineOptionsFingerprint(const EngineOptions& options);

/// \brief Canonical text of a request's query content (patterns, optional
/// aggregate, batch composition + mode), independent of query names.
std::string CanonicalQueryText(const ServiceRequest& request);

/// \brief Full plan/result cache key: dataset, epoch, options fingerprint,
/// canonical query text.
std::string RequestCacheKey(const ServiceRequest& request, uint64_t epoch);

}  // namespace service
}  // namespace rdfmr

#endif  // RDFMR_SERVICE_QUERY_SERVICE_H_
