#include "service/server.h"

#include <utility>

#include "common/json.h"
#include "service/protocol.h"

namespace rdfmr {
namespace service {

namespace {

/// One pre-framed protocol error line (no '\n') for transport-level
/// rejections, shaped exactly like a dispatch error so clients need one
/// error path.
std::string ProtocolErrorLine(const Status& status) {
  JsonValue o = JsonValue::MakeObject();
  o.Set("ok", false);
  o.Set("error", status.message());
  o.Set("code", StatusCodeToString(status.code()));
  o.Set("v", kProtocolVersion);
  return o.Dump();
}

std::string FirstUnixPath(const std::vector<net::Address>& listeners) {
  for (const net::Address& address : listeners) {
    if (address.kind == net::AddressKind::kUnix) return address.path;
  }
  return std::string();
}

}  // namespace

net::NetServerOptions ServiceServer::NetOptions(ServerOptions options) {
  net::NetServerOptions net;
  net.listeners = std::move(options.listeners);
  net.max_connections = options.max_connections;
  net.max_line_bytes = options.max_line_bytes;
  net.max_outbound_bytes = options.max_outbound_bytes;
  net.idle_timeout_ms = options.idle_timeout_ms;
  net.reject_line = ProtocolErrorLine(
      Status::Unavailable("server connection limit reached"));
  net.oversize_line = ProtocolErrorLine(Status::InvalidArgument(
      "request line exceeds the server's line cap"));
  return net;
}

ServiceServer::ServiceServer(QueryService* query_service,
                             ServerOptions options)
    : query_service_(query_service),
      socket_path_(FirstUnixPath(options.listeners)),
      net_(NetOptions(std::move(options)),
           [this](uint64_t conn_id, uint64_t seq, std::string line) {
             OnLine(conn_id, seq, std::move(line));
           }) {}

ServiceServer::ServiceServer(QueryService* query_service,
                             std::string socket_path)
    : ServiceServer(query_service, [&socket_path] {
        ServerOptions options;
        options.listeners.push_back(
            net::Address::Unix(std::move(socket_path)));
        return options;
      }()) {}

ServiceServer::~ServiceServer() { Stop(); }

Status ServiceServer::Start() { return net_.Start(); }

void ServiceServer::Wait() { net_.Wait(); }

void ServiceServer::Stop() { net_.Stop(); }

void ServiceServer::OnLine(uint64_t conn_id, uint64_t seq,
                           std::string line) {
  // The completion may fire inline (fast verbs, admission rejections) or
  // later from a query worker thread; Complete() is safe for both, and
  // Stop() drains every pending completion before `this` can die.
  AsyncDispatch dispatch = HandleRequestLineAsync(
      query_service_, line,
      [this, conn_id, seq](JsonValue response, bool shutdown) {
        net_.Complete(conn_id, seq, response.Dump());
        if (shutdown) net_.RequestStop();
      });
  if (seq == 0 && dispatch.ordered_requested) net_.SetOrdered(conn_id);
}

}  // namespace service
}  // namespace rdfmr
