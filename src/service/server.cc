#include "service/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "service/protocol.h"

namespace rdfmr {
namespace service {

namespace {

constexpr int kPollMillis = 50;
/// Hard per-line cap: a local debugging protocol has no business buffering
/// unbounded input from a runaway client.
constexpr size_t kMaxLineBytes = 64ULL << 20;

bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

ServiceServer::ServiceServer(QueryService* query_service,
                             std::string socket_path)
    : query_service_(query_service), socket_path_(std::move(socket_path)) {}

ServiceServer::~ServiceServer() { Stop(); }

Status ServiceServer::Start() {
  if (socket_path_.empty()) {
    return Status::InvalidArgument("server needs a socket path");
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path_.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path too long: " + socket_path_);
  }
  std::memcpy(addr.sun_path, socket_path_.c_str(), socket_path_.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  ::unlink(socket_path_.c_str());  // replace a stale socket file
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    Status st = Status::IoError("bind " + socket_path_ + ": " +
                                std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  if (::listen(listen_fd_, 64) != 0) {
    Status st = Status::IoError(std::string("listen: ") +
                                std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(socket_path_.c_str());
    return st;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    started_ = true;
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void ServiceServer::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  stop_cv_.wait(lock, [this] {
    return stop_.load(std::memory_order_acquire) || !started_;
  });
}

void ServiceServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) return;
  }
  stop_.store(true, std::memory_order_release);
  stop_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> connections;
  {
    std::lock_guard<std::mutex> lock(mu_);
    connections.swap(connections_);
  }
  for (std::thread& t : connections) {
    if (t.joinable()) t.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(socket_path_.c_str());
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    started_ = false;
  }
}

void ServiceServer::AcceptLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    int ready = ::poll(&pfd, 1, kPollMillis);
    if (ready <= 0) continue;  // timeout / EINTR: re-check the stop flag
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    connections_.emplace_back([this, fd] { HandleConnection(fd); });
  }
}

void ServiceServer::HandleConnection(int fd) {
  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open && !stop_.load(std::memory_order_acquire)) {
    pollfd pfd{fd, POLLIN, 0};
    int ready = ::poll(&pfd, 1, kPollMillis);
    if (ready <= 0) continue;
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;  // peer closed (or hard error): drop the connection
    }
    buffer.append(chunk, static_cast<size_t>(n));
    if (buffer.size() > kMaxLineBytes) break;
    size_t start = 0;
    for (size_t nl = buffer.find('\n', start); nl != std::string::npos;
         nl = buffer.find('\n', start)) {
      std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (line.empty()) continue;
      HandleResult result = HandleRequestLine(query_service_, line);
      if (!SendAll(fd, result.response.Dump() + "\n")) {
        open = false;
        break;
      }
      if (result.shutdown) {
        stop_.store(true, std::memory_order_release);
        stop_cv_.notify_all();
        open = false;
        break;
      }
    }
    buffer.erase(0, start);
  }
  ::close(fd);
}

}  // namespace service
}  // namespace rdfmr
