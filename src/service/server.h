// Socket front end for the query service, built on the src/net event
// loop: one poll(2) thread owns every listener (AF_UNIX and TCP may be
// served simultaneously) and every connection, speaking the
// newline-delimited JSON protocol with request pipelining.
//
// Concurrency model: the loop thread parses and dispatches each line via
// HandleRequestLineAsync — fast verbs complete inline, query/batch verbs
// run on the query service's worker pool and complete back through
// NetServer::Complete(). A connection may therefore have many requests in
// flight; responses are emitted in completion order (correlate by "id")
// unless the connection's first request carried "ordered":true.
//
// The transport enforces the operational limits (connection cap, per-line
// byte cap, outbound backpressure, idle eviction) and reports them as
// structured protocol errors; query admission (concurrency/queue bounds)
// stays in the service where it always was.
//
// Shutdown is cooperative and TSan-clean: Stop() (or a client's
// "shutdown" verb) finishes every in-flight request and flushes every
// connection before the loop exits — see net/net_server.h.

#ifndef RDFMR_SERVICE_SERVER_H_
#define RDFMR_SERVICE_SERVER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "net/net_server.h"
#include "service/query_service.h"

namespace rdfmr {
namespace service {

struct ServerOptions {
  /// Endpoints to serve (unix:PATH and tcp:HOST:PORT freely mixed; TCP
  /// port 0 binds an ephemeral port, visible via bound_addresses()).
  std::vector<net::Address> listeners;
  /// Connections beyond this are told "Unavailable" and closed.
  uint32_t max_connections = 256;
  /// Hard per-line cap: a request protocol has no business buffering
  /// unbounded input from a runaway client.
  uint64_t max_line_bytes = 64ULL << 20;
  /// Per-connection outbound high watermark; past it the server stops
  /// reading from that connection until the peer catches up.
  uint64_t max_outbound_bytes = 8ULL << 20;
  /// Evict connections with nothing in flight after this long (0 = never).
  uint64_t idle_timeout_ms = 0;
};

class ServiceServer {
 public:
  /// \brief Serves `query_service` (not owned, must outlive the server)
  /// at every endpoint in `options.listeners`. Call Start() to begin.
  ServiceServer(QueryService* query_service, ServerOptions options);

  /// \brief Single-AF_UNIX-socket convenience (the pre-TCP signature).
  ServiceServer(QueryService* query_service, std::string socket_path);

  /// \brief Stops and joins if still running.
  ~ServiceServer();

  ServiceServer(const ServiceServer&) = delete;
  ServiceServer& operator=(const ServiceServer&) = delete;

  /// \brief Binds every listener (replacing stale unix socket files) and
  /// starts the event-loop thread. On any failure nothing is listening.
  Status Start();

  /// \brief Blocks until Stop() is called or a client sends "shutdown".
  void Wait();

  /// \brief Requests shutdown, drains in-flight requests, joins the loop
  /// thread, unlinks unix sockets. Idempotent.
  void Stop();

  bool stopped() const { return net_.stopped(); }

  /// \brief The first unix listener's path (empty for TCP-only servers).
  const std::string& socket_path() const { return socket_path_; }

  /// \brief Every bound endpoint, TCP port 0 already resolved. Valid
  /// after a successful Start().
  const std::vector<net::Address>& bound_addresses() const {
    return net_.bound_addresses();
  }

  /// \brief Transport counters (accepts, rejections, stalls, ...).
  net::NetServerStats transport_stats() const { return net_.stats(); }

 private:
  static net::NetServerOptions NetOptions(ServerOptions options);
  void OnLine(uint64_t conn_id, uint64_t seq, std::string line);

  QueryService* const query_service_;
  std::string socket_path_;
  net::NetServer net_;
};

}  // namespace service
}  // namespace rdfmr

#endif  // RDFMR_SERVICE_SERVER_H_
