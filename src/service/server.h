// AF_UNIX socket front end for the query service: accepts local stream
// connections and speaks the newline-delimited JSON protocol, one thread
// per connection (connection concurrency is bounded by the service's
// admission controller, not by the transport).
//
// Shutdown is cooperative and TSan-clean: every blocking loop is a
// poll(2) with a short timeout re-checking an atomic stop flag, so Stop()
// (or a client's "shutdown" verb) quiesces accept and connection threads
// without pthread_cancel or signals.

#ifndef RDFMR_SERVICE_SERVER_H_
#define RDFMR_SERVICE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "service/query_service.h"

namespace rdfmr {
namespace service {

class ServiceServer {
 public:
  /// \brief Serves `query_service` (not owned, must outlive the server) at
  /// `socket_path`. Call Start() to begin listening.
  ServiceServer(QueryService* query_service, std::string socket_path);

  /// \brief Stops and joins if still running.
  ~ServiceServer();

  ServiceServer(const ServiceServer&) = delete;
  ServiceServer& operator=(const ServiceServer&) = delete;

  /// \brief Binds the socket (replacing a stale file), starts listening
  /// and spawns the accept thread.
  Status Start();

  /// \brief Blocks until Stop() is called or a client sends "shutdown".
  void Wait();

  /// \brief Requests shutdown, joins every thread, unlinks the socket.
  /// Idempotent.
  void Stop();

  bool stopped() const { return stop_.load(std::memory_order_acquire); }
  const std::string& socket_path() const { return socket_path_; }

 private:
  void AcceptLoop();
  void HandleConnection(int fd);

  QueryService* const query_service_;
  const std::string socket_path_;

  std::atomic<bool> stop_{false};
  int listen_fd_ = -1;
  std::thread accept_thread_;

  std::mutex mu_;  ///< guards connections_ and started_
  std::vector<std::thread> connections_;
  bool started_ = false;
  std::condition_variable stop_cv_;
};

}  // namespace service
}  // namespace rdfmr

#endif  // RDFMR_SERVICE_SERVER_H_
