// On-disk layout constants of the rdx persistent dataset format (v1).
//
// An .rdx file is a write-once, memory-mapped snapshot of one triple
// relation: a fixed little-endian header, a section table, and three
// sections — a dictionary of distinct terms, dictionary-encoded triple
// records in file order, and a per-property postings index for vertical-
// partition scans. Every section (and the header + table themselves) is
// covered by an FNV-1a 64 checksum, so any single flipped byte anywhere
// in the file is detected at open. The full wire layout is documented in
// docs/FORMAT.md; this header is the single source of truth for the
// constants.

#ifndef RDFMR_STORAGE_FORMAT_H_
#define RDFMR_STORAGE_FORMAT_H_

#include <cstddef>
#include <cstdint>

namespace rdfmr {
namespace storage {

/// \brief First 8 bytes of every rdx file ("RDFMRDX" + newline — the
/// newline catches ASCII-mode transfer mangling, zip/db-style).
inline constexpr unsigned char kRdxMagic[8] = {'R', 'D', 'F', 'M',
                                               'R', 'D', 'X', '\n'};

/// \brief Current (and only) format version.
inline constexpr uint32_t kRdxVersion = 1;

/// \brief v1 has exactly these sections, in this order.
enum class SectionId : uint32_t {
  kDictionary = 1,    ///< term offsets + concatenated term bytes
  kTriples = 2,       ///< triple_count x 3 u32 term ids, file order
  kPropertyIndex = 3  ///< per-property sorted triple-index postings
};

inline constexpr uint32_t kRdxSectionCount = 3;

/// \brief Fixed header size in bytes (magic .. header_checksum).
inline constexpr size_t kRdxHeaderBytes = 48;

/// \brief One section-table entry: id, reserved, offset, size, checksum.
inline constexpr size_t kRdxSectionEntryBytes = 32;

/// \brief Byte offset of the section table (immediately after the header).
inline constexpr size_t kRdxTableOffset = kRdxHeaderBytes;

/// \brief Byte offset of the first section in a v1 file.
inline constexpr size_t kRdxFirstSectionOffset =
    kRdxHeaderBytes + kRdxSectionCount * kRdxSectionEntryBytes;

// Field offsets within the header (see docs/FORMAT.md for the diagram).
inline constexpr size_t kRdxOffMagic = 0;
inline constexpr size_t kRdxOffVersion = 8;
inline constexpr size_t kRdxOffSectionCount = 12;
inline constexpr size_t kRdxOffTripleCount = 16;
inline constexpr size_t kRdxOffTermCount = 24;
inline constexpr size_t kRdxOffFileSize = 32;
inline constexpr size_t kRdxOffHeaderChecksum = 40;

/// \brief Bytes per encoded triple record (3 x u32 term ids).
inline constexpr size_t kRdxTripleRecordBytes = 12;

/// \brief Bytes per property-index entry (property id, reserved,
/// postings start, postings count).
inline constexpr size_t kRdxPropertyEntryBytes = 24;

/// \brief Canonical file extension.
inline constexpr const char kRdxExtension[] = ".rdx";

}  // namespace storage
}  // namespace rdfmr

#endif  // RDFMR_STORAGE_FORMAT_H_
