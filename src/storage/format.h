// On-disk layout constants of the rdx persistent dataset format.
//
// An .rdx file is a write-once, memory-mapped snapshot of one triple
// relation: a fixed little-endian header, a section table, and the
// sections — a dictionary of distinct terms, dictionary-encoded triple
// records in file order, a per-property postings index for vertical-
// partition scans, and (since v2) a graph-statistics catalog so the plan
// chooser prices queries against a mapped dataset without decoding a
// single triple. Every section (and the header + table themselves) is
// covered by an FNV-1a 64 checksum, so any single flipped byte anywhere
// in the file is detected at open. The full wire layout is documented in
// docs/FORMAT.md; this header is the single source of truth for the
// constants.

#ifndef RDFMR_STORAGE_FORMAT_H_
#define RDFMR_STORAGE_FORMAT_H_

#include <cstddef>
#include <cstdint>

namespace rdfmr {
namespace storage {

/// \brief First 8 bytes of every rdx file ("RDFMRDX" + newline — the
/// newline catches ASCII-mode transfer mangling, zip/db-style).
inline constexpr unsigned char kRdxMagic[8] = {'R', 'D', 'F', 'M',
                                               'R', 'D', 'X', '\n'};

/// \brief Current format version (written by `rdfmr index`). v1 files
/// (no graph-stats section) remain readable.
inline constexpr uint32_t kRdxVersion = 2;

/// \brief Oldest version this build still reads.
inline constexpr uint32_t kRdxMinVersion = 1;

/// \brief Sections in file order; v1 ends at the property index, v2
/// appends the graph-stats catalog.
enum class SectionId : uint32_t {
  kDictionary = 1,    ///< term offsets + concatenated term bytes
  kTriples = 2,       ///< triple_count x 3 u32 term ids, file order
  kPropertyIndex = 3, ///< per-property sorted triple-index postings
  kGraphStats = 4     ///< per-property planner statistics (v2+)
};

/// \brief Sections in a file of the given version (3 for v1, 4 for v2).
inline constexpr uint32_t RdxSectionCountForVersion(uint32_t version) {
  return version >= 2 ? 4 : 3;
}

/// \brief Sections in a file this build writes.
inline constexpr uint32_t kRdxSectionCount =
    RdxSectionCountForVersion(kRdxVersion);

/// \brief Fixed header size in bytes (magic .. header_checksum).
inline constexpr size_t kRdxHeaderBytes = 48;

/// \brief One section-table entry: id, reserved, offset, size, checksum.
inline constexpr size_t kRdxSectionEntryBytes = 32;

/// \brief Byte offset of the section table (immediately after the header).
inline constexpr size_t kRdxTableOffset = kRdxHeaderBytes;

/// \brief Byte offset of the first section for the given version (144 in
/// v1, 176 in v2 — the table grows by one entry).
inline constexpr size_t RdxFirstSectionOffsetForVersion(uint32_t version) {
  return kRdxHeaderBytes +
         RdxSectionCountForVersion(version) * kRdxSectionEntryBytes;
}

/// \brief Byte offset of the first section in a file this build writes.
inline constexpr size_t kRdxFirstSectionOffset =
    RdxFirstSectionOffsetForVersion(kRdxVersion);

// Field offsets within the header (see docs/FORMAT.md for the diagram).
inline constexpr size_t kRdxOffMagic = 0;
inline constexpr size_t kRdxOffVersion = 8;
inline constexpr size_t kRdxOffSectionCount = 12;
inline constexpr size_t kRdxOffTripleCount = 16;
inline constexpr size_t kRdxOffTermCount = 24;
inline constexpr size_t kRdxOffFileSize = 32;
inline constexpr size_t kRdxOffHeaderChecksum = 40;

/// \brief Bytes per encoded triple record (3 x u32 term ids).
inline constexpr size_t kRdxTripleRecordBytes = 12;

/// \brief Bytes per property-index entry (property id, reserved,
/// postings start, postings count).
inline constexpr size_t kRdxPropertyEntryBytes = 24;

/// \brief Graph-stats section header: triple count, distinct subjects,
/// number of per-property records (3 x u64).
inline constexpr size_t kRdxStatsHeaderBytes = 24;

/// \brief One graph-stats record: property id, reserved, triple count,
/// subject count, max multiplicity — ascending property id.
inline constexpr size_t kRdxStatsRecordBytes = 32;

/// \brief Canonical file extension.
inline constexpr const char kRdxExtension[] = ".rdx";

}  // namespace storage
}  // namespace rdfmr

#endif  // RDFMR_STORAGE_FORMAT_H_
