#include "storage/mapped_dataset.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strings.h"

namespace rdfmr {
namespace storage {

namespace {

uint32_t EscapedLen(std::string_view term) {
  uint32_t len = static_cast<uint32_t>(term.size());
  for (char c : term) {
    if (c == '\\' || c == '\t' || c == '\n') ++len;
  }
  return len;
}

}  // namespace

MappedDataset::MappedDataset(std::shared_ptr<const RdxReader> reader)
    : reader_(std::move(reader)) {
  RDFMR_CHECK(reader_ != nullptr) << "MappedDataset needs an open reader";
  escaped_len_.reserve(reader_->term_count());
  for (uint32_t id = 0; id < reader_->term_count(); ++id) {
    escaped_len_.push_back(EscapedLen(reader_->term(id)));
  }
  for (uint64_t i = 0; i < reader_->triple_count(); ++i) {
    total_bytes_ += LineBytes(i) + 1;  // +\n, matching SimDfs accounting
  }
}

uint64_t MappedDataset::LineBytes(uint64_t index) const {
  const RdxReader::EncodedTriple t = reader_->encoded(index);
  // Two separating tabs; each field contributes its escaped length.
  return static_cast<uint64_t>(escaped_len_[t.subject]) +
         escaped_len_[t.property] + escaped_len_[t.object] + 2;
}

std::string MappedDataset::Line(uint64_t index) const {
  const RdxReader::EncodedTriple t = reader_->encoded(index);
  // Byte-identical to Triple::Serialize() on the decoded triple.
  std::string out;
  out.reserve(LineBytes(index));
  out += EscapeField(reader_->term(t.subject), '\t');
  out.push_back('\t');
  out += EscapeField(reader_->term(t.property), '\t');
  out.push_back('\t');
  out += EscapeField(reader_->term(t.object), '\t');
  return out;
}

std::vector<uint64_t> MappedDataset::MatchingLines(
    const std::vector<std::string>& properties) const {
  // Each property's postings are ascending triple indices (== line
  // indices); collect the requested runs and merge them into one
  // ascending list.
  std::vector<uint64_t> out;
  for (const std::string& property : properties) {
    for (uint32_t posting : reader_->PropertyPostings(property)) {
      out.push_back(posting);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace storage
}  // namespace rdfmr
