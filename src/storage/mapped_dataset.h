// Zero-materialization scan access to a mapped .rdx dataset.
//
// MappedDataset adapts a validated RdxReader to the dfs LineSource
// interface, so a mapped dataset can be mounted into SimDfs as the base
// relation without decoding the triples into a std::vector<Triple> (and
// without serializing them into a line vector). Line lengths come from a
// per-term escaped-length table computed once at construction; lexical
// forms are resolved through the mapped dictionary only when a scan
// actually needs a line's bytes. Property-pruned scans translate the
// on-disk per-property postings (ascending triple indices) directly into
// matching line indices — the vertical-partition scan of the paper, run
// straight over the mapping.

#ifndef RDFMR_STORAGE_MAPPED_DATASET_H_
#define RDFMR_STORAGE_MAPPED_DATASET_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dfs/line_source.h"
#include "storage/rdx_reader.h"

namespace rdfmr {
namespace storage {

class MappedDataset : public LineSource {
 public:
  /// \brief Wraps a validated reader. Precomputes the per-term escaped
  /// lengths (O(dictionary bytes)) so LineBytes() never touches term
  /// bytes again; everything else stays in the mapping.
  explicit MappedDataset(std::shared_ptr<const RdxReader> reader);

  uint64_t line_count() const override { return reader_->triple_count(); }
  uint64_t total_bytes() const override { return total_bytes_; }
  uint64_t LineBytes(uint64_t index) const override;
  std::string Line(uint64_t index) const override;
  std::vector<uint64_t> MatchingLines(
      const std::vector<std::string>& properties) const override;

  const std::shared_ptr<const RdxReader>& reader() const { return reader_; }

 private:
  std::shared_ptr<const RdxReader> reader_;
  /// Serialized field length of each dictionary term: term bytes plus one
  /// for every character EscapeField doubles ('\\', '\t', '\n').
  std::vector<uint32_t> escaped_len_;
  uint64_t total_bytes_ = 0;
};

}  // namespace storage
}  // namespace rdfmr

#endif  // RDFMR_STORAGE_MAPPED_DATASET_H_
