#include "storage/memmap.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace rdfmr {
namespace storage {

Result<MemMap> MemMap::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IoError(path + ": cannot open: " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    Status status =
        Status::IoError(path + ": cannot stat: " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  if (!S_ISREG(st.st_mode)) {
    ::close(fd);
    return Status::IoError(path + ": not a regular file");
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    // mmap(len=0) is EINVAL; an empty file is a valid (empty) mapping.
    ::close(fd);
    return MemMap(path, nullptr, 0);
  }
  void* mapped = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
  // The mapping keeps its own reference to the file; the descriptor is
  // not needed afterwards.
  ::close(fd);
  if (mapped == MAP_FAILED) {
    return Status::IoError(path + ": mmap failed: " + std::strerror(errno));
  }
  return MemMap(path, static_cast<const uint8_t*>(mapped), size);
}

MemMap::~MemMap() {
  if (data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
  }
}

MemMap::MemMap(MemMap&& other) noexcept
    : path_(std::move(other.path_)), data_(other.data_), size_(other.size_) {
  other.data_ = nullptr;
  other.size_ = 0;
}

MemMap& MemMap::operator=(MemMap&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) ::munmap(const_cast<uint8_t*>(data_), size_);
    path_ = std::move(other.path_);
    data_ = other.data_;
    size_ = other.size_;
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

Status BoundedReader::OutOfBounds(size_t offset, size_t length) const {
  return Status::InvalidArgument(
      map_->path() + ": " + label_ + ": read of " + std::to_string(length) +
      " byte(s) at byte offset " + std::to_string(base_ + offset) +
      " exceeds window [" + std::to_string(base_) + ", " +
      std::to_string(base_ + size_) + ")");
}

Result<uint32_t> BoundedReader::U32(size_t offset) const {
  if (offset > size_ || size_ - offset < 4) return OutOfBounds(offset, 4);
  return LoadU32(map_->data() + base_ + offset);
}

Result<uint64_t> BoundedReader::U64(size_t offset) const {
  if (offset > size_ || size_ - offset < 8) return OutOfBounds(offset, 8);
  return LoadU64(map_->data() + base_ + offset);
}

Result<std::string_view> BoundedReader::Bytes(size_t offset,
                                              size_t length) const {
  if (offset > size_ || size_ - offset < length) {
    return OutOfBounds(offset, length);
  }
  return std::string_view(
      reinterpret_cast<const char*>(map_->data() + base_ + offset), length);
}

}  // namespace storage
}  // namespace rdfmr
