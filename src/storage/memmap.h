// MemMap: RAII read-only memory mapping of a whole file, plus a
// bounds-checked little-endian reader over byte ranges of the mapping.
//
// A mapped dataset is shared page cache: any number of processes opening
// the same .rdx file see one physical copy, and dropping the MemMap
// unmaps without writeback (PROT_READ). All accessors that can go out of
// bounds return structured errors carrying the file path and the
// offending byte offset — the mapping itself is never dereferenced
// unchecked by format-parsing code.

#ifndef RDFMR_STORAGE_MEMMAP_H_
#define RDFMR_STORAGE_MEMMAP_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace rdfmr {
namespace storage {

/// \brief Read-only mmap of one file. Movable, not copyable.
class MemMap {
 public:
  /// \brief Maps `path` read-only (kIoError on open/stat/mmap failure,
  /// with errno text). Zero-byte files map as an empty region.
  static Result<MemMap> Open(const std::string& path);

  MemMap() = default;
  ~MemMap();
  MemMap(MemMap&& other) noexcept;
  MemMap& operator=(MemMap&& other) noexcept;
  MemMap(const MemMap&) = delete;
  MemMap& operator=(const MemMap&) = delete;

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  const std::string& path() const { return path_; }

 private:
  MemMap(std::string path, const uint8_t* data, size_t size)
      : path_(std::move(path)), data_(data), size_(size) {}

  std::string path_;
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

/// \brief Bounds-checked little-endian reads over a [base, base+size)
/// window of a mapping. Offsets in error messages are absolute file
/// offsets (window base + relative offset), so a corruption report can be
/// matched against a hex dump directly.
class BoundedReader {
 public:
  /// `label` names the window in errors ("header", "section 'triples'").
  BoundedReader(const MemMap* map, size_t base, size_t size,
                std::string label)
      : map_(map), base_(base), size_(size), label_(std::move(label)) {}

  size_t size() const { return size_; }

  Result<uint32_t> U32(size_t offset) const;
  Result<uint64_t> U64(size_t offset) const;
  /// \brief A view of `length` bytes at relative `offset`.
  Result<std::string_view> Bytes(size_t offset, size_t length) const;

 private:
  Status OutOfBounds(size_t offset, size_t length) const;

  const MemMap* map_;
  size_t base_;
  size_t size_;
  std::string label_;
};

/// \brief Unchecked little-endian loads (memcpy-based, alignment-safe)
/// for hot paths that run after full validation.
inline uint32_t LoadU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 |
         static_cast<uint32_t>(p[3]) << 24;
}
inline uint64_t LoadU64(const uint8_t* p) {
  return static_cast<uint64_t>(LoadU32(p)) |
         static_cast<uint64_t>(LoadU32(p + 4)) << 32;
}

}  // namespace storage
}  // namespace rdfmr

#endif  // RDFMR_STORAGE_MEMMAP_H_
