#include "storage/rdx_reader.h"

#include <cstring>
#include <limits>
#include <map>
#include <utility>

#include "common/hash.h"
#include "common/strings.h"
#include "storage/format.h"

namespace rdfmr {
namespace storage {
namespace {

const char* SectionName(uint32_t id) {
  switch (static_cast<SectionId>(id)) {
    case SectionId::kDictionary:
      return "dictionary";
    case SectionId::kTriples:
      return "triples";
    case SectionId::kPropertyIndex:
      return "property index";
    case SectionId::kGraphStats:
      return "graph stats";
  }
  return "unknown";
}

std::string_view ViewOf(const uint8_t* data, size_t size) {
  return std::string_view(reinterpret_cast<const char*>(data), size);
}

}  // namespace

bool IsRdxPath(std::string_view path) { return EndsWith(path, kRdxExtension); }

Result<std::shared_ptr<const RdxReader>> RdxReader::Open(
    const std::string& path) {
  RDFMR_ASSIGN_OR_RETURN(MemMap map, MemMap::Open(path));
  auto reader = std::shared_ptr<RdxReader>(new RdxReader(std::move(map)));
  RDFMR_RETURN_NOT_OK(reader->Validate());
  return std::shared_ptr<const RdxReader>(std::move(reader));
}

Status RdxReader::Validate() {
  const std::string& path = map_.path();
  const uint8_t* data = map_.data();
  const uint64_t file_size = map_.size();
  constexpr uint64_t kMaxIds = std::numeric_limits<uint32_t>::max();

  if (file_size < kRdxHeaderBytes) {
    return Status::DataLoss(
        path + ": truncated: " + std::to_string(file_size) +
        " byte(s), an rdx header is " + std::to_string(kRdxHeaderBytes));
  }
  if (std::memcmp(data, kRdxMagic, sizeof(kRdxMagic)) != 0) {
    return Status::InvalidArgument(
        path + ": bad magic at byte offset 0 — not an rdx dataset file");
  }
  const uint32_t version = LoadU32(data + kRdxOffVersion);
  if (version < kRdxMinVersion || version > kRdxVersion) {
    return Status::InvalidArgument(
        path + ": unsupported format version " + std::to_string(version) +
        " at byte offset " + std::to_string(kRdxOffVersion) +
        " (this build reads v" + std::to_string(kRdxMinVersion) + "..v" +
        std::to_string(kRdxVersion) + ")");
  }
  const uint32_t want_sections = RdxSectionCountForVersion(version);
  const size_t first_section_offset =
      RdxFirstSectionOffsetForVersion(version);
  const uint32_t section_count = LoadU32(data + kRdxOffSectionCount);
  if (section_count != want_sections) {
    return Status::InvalidArgument(
        path + ": v" + std::to_string(version) + " files have " +
        std::to_string(want_sections) + " sections, header says " +
        std::to_string(section_count) + " at byte offset " +
        std::to_string(kRdxOffSectionCount));
  }
  if (file_size < first_section_offset) {
    return Status::DataLoss(
        path + ": truncated inside the section table: " +
        std::to_string(file_size) + " byte(s), table ends at " +
        std::to_string(first_section_offset));
  }
  const uint64_t stated_size = LoadU64(data + kRdxOffFileSize);
  if (stated_size != file_size) {
    return Status::DataLoss(
        path + ": file size mismatch: header (byte offset " +
        std::to_string(kRdxOffFileSize) + ") says " +
        std::to_string(stated_size) + " byte(s), file has " +
        std::to_string(file_size) + " — truncated or appended to");
  }
  const uint64_t header_hash = HashCombine(
      Fnv1a64(ViewOf(data, kRdxOffHeaderChecksum)),
      Fnv1a64(ViewOf(data + kRdxTableOffset,
                     want_sections * kRdxSectionEntryBytes)));
  if (header_hash != LoadU64(data + kRdxOffHeaderChecksum)) {
    return Status::DataLoss(
        path + ": header/section-table checksum mismatch at byte offset " +
        std::to_string(kRdxOffHeaderChecksum));
  }

  const uint64_t triple_count = LoadU64(data + kRdxOffTripleCount);
  const uint64_t term_count = LoadU64(data + kRdxOffTermCount);
  if (triple_count > kMaxIds || term_count > kMaxIds) {
    return Status::InvalidArgument(
        path + ": header counts exceed the v1 limit of 2^32-1 (" +
        std::to_string(triple_count) + " triples, " +
        std::to_string(term_count) + " terms)");
  }

  // Section table: ids in order, reserved zero, contiguous in-bounds
  // byte ranges, and a matching checksum per section.
  uint64_t expected_offset = first_section_offset;
  uint64_t offsets[kRdxSectionCount] = {0};
  uint64_t sizes[kRdxSectionCount] = {0};
  for (uint32_t i = 0; i < want_sections; ++i) {
    const uint8_t* entry =
        data + kRdxTableOffset + i * kRdxSectionEntryBytes;
    const size_t entry_at = kRdxTableOffset + i * kRdxSectionEntryBytes;
    const uint32_t id = LoadU32(entry);
    if (id != i + 1) {
      return Status::InvalidArgument(
          path + ": section table entry " + std::to_string(i) +
          " at byte offset " + std::to_string(entry_at) + ": id " +
          std::to_string(id) + ", expected " + std::to_string(i + 1) + " (" +
          SectionName(i + 1) + ")");
    }
    if (LoadU32(entry + 4) != 0) {
      return Status::InvalidArgument(
          path + ": section table entry " + std::to_string(i) +
          ": reserved field at byte offset " + std::to_string(entry_at + 4) +
          " must be zero");
    }
    const uint64_t offset = LoadU64(entry + 8);
    const uint64_t size = LoadU64(entry + 16);
    if (offset > file_size || size > file_size - offset) {
      return Status::InvalidArgument(
          path + ": section '" + SectionName(id) + "' out of bounds: [" +
          std::to_string(offset) + ", +" + std::to_string(size) +
          ") exceeds the " + std::to_string(file_size) + "-byte file");
    }
    if (offset != expected_offset) {
      return Status::InvalidArgument(
          path + ": section '" + SectionName(id) + "' at byte offset " +
          std::to_string(offset) + ", expected " +
          std::to_string(expected_offset) + " (rdx sections are contiguous)");
    }
    const uint64_t hash = Fnv1a64(ViewOf(data + offset, size));
    if (hash != LoadU64(entry + 24)) {
      return Status::DataLoss(
          path + ": section '" + SectionName(id) +
          "' checksum mismatch over byte range [" + std::to_string(offset) +
          ", +" + std::to_string(size) + ")");
    }
    offsets[i] = offset;
    sizes[i] = size;
    expected_offset += size;
  }
  if (expected_offset != file_size) {
    return Status::InvalidArgument(
        path + ": sections end at byte offset " +
        std::to_string(expected_offset) + " but the file has " +
        std::to_string(file_size) + " byte(s)");
  }

  // Dictionary: (term_count+1) ascending u64 offsets, then the blob.
  {
    const uint8_t* section = data + offsets[0];
    const uint64_t size = sizes[0];
    const uint64_t offsets_bytes = 8 * (term_count + 1);
    if (size < offsets_bytes) {
      return Status::InvalidArgument(
          path + ": dictionary section is " + std::to_string(size) +
          " byte(s), too small for " + std::to_string(term_count + 1) +
          " term offsets (header says " + std::to_string(term_count) +
          " terms)");
    }
    const uint64_t blob_bytes = size - offsets_bytes;
    uint64_t previous = 0;
    for (uint64_t i = 0; i <= term_count; ++i) {
      const uint64_t term_offset = LoadU64(section + 8 * i);
      if (term_offset < previous || term_offset > blob_bytes) {
        return Status::InvalidArgument(
            path + ": dictionary term offset " + std::to_string(i) +
            " at byte offset " + std::to_string(offsets[0] + 8 * i) +
            " is " + std::to_string(term_offset) +
            " (must be ascending and within the " +
            std::to_string(blob_bytes) + "-byte blob)");
      }
      previous = term_offset;
    }
    if (previous != blob_bytes) {
      return Status::InvalidArgument(
          path + ": dictionary blob is " + std::to_string(blob_bytes) +
          " byte(s) but the last term ends at " + std::to_string(previous));
    }
    dict_offsets_ = section;
    dict_blob_ = section + offsets_bytes;
  }

  // Triples: exactly triple_count 12-byte records of in-range term ids.
  {
    const uint8_t* section = data + offsets[1];
    const uint64_t size = sizes[1];
    if (size != triple_count * kRdxTripleRecordBytes) {
      return Status::InvalidArgument(
          path + ": triples section is " + std::to_string(size) +
          " byte(s), expected " +
          std::to_string(triple_count * kRdxTripleRecordBytes) + " for " +
          std::to_string(triple_count) + " triple(s)");
    }
    for (uint64_t i = 0; i < triple_count; ++i) {
      const uint8_t* record = section + i * kRdxTripleRecordBytes;
      for (int field = 0; field < 3; ++field) {
        const uint32_t id = LoadU32(record + 4 * field);
        if (id >= term_count) {
          return Status::InvalidArgument(
              path + ": triple " + std::to_string(i) + " field " +
              std::to_string(field) + " at byte offset " +
              std::to_string(offsets[1] + i * kRdxTripleRecordBytes +
                             4 * field) +
              ": term id " + std::to_string(id) + " >= term count " +
              std::to_string(term_count));
        }
      }
    }
    triples_ = section;
  }

  // Property index: entries in ascending property-id order whose
  // postings are exactly the triple indices of that property, ascending.
  // Together with the total-count check this proves the postings are a
  // permutation of [0, triple_count) grouped by property — a VP scan
  // over the index can never silently drop or duplicate a triple.
  {
    const uint8_t* section = data + offsets[2];
    const uint64_t size = sizes[2];
    if (size < 8) {
      return Status::InvalidArgument(
          path + ": property index section is " + std::to_string(size) +
          " byte(s), need at least 8");
    }
    const uint64_t num_properties = LoadU64(section);
    const uint64_t expected_size =
        8 + num_properties * kRdxPropertyEntryBytes + 4 * triple_count;
    if (num_properties > triple_count || size != expected_size) {
      return Status::InvalidArgument(
          path + ": property index section is " + std::to_string(size) +
          " byte(s), expected " + std::to_string(expected_size) + " for " +
          std::to_string(num_properties) + " propert(ies) over " +
          std::to_string(triple_count) + " triple(s)");
    }
    const uint8_t* entries = section + 8;
    const uint8_t* postings =
        entries + num_properties * kRdxPropertyEntryBytes;
    uint64_t running_start = 0;
    uint64_t previous_property = 0;
    for (uint64_t e = 0; e < num_properties; ++e) {
      const uint8_t* entry = entries + e * kRdxPropertyEntryBytes;
      const uint32_t property = LoadU32(entry);
      const uint32_t reserved = LoadU32(entry + 4);
      const uint64_t start = LoadU64(entry + 8);
      const uint64_t count = LoadU64(entry + 16);
      if (reserved != 0) {
        return Status::InvalidArgument(
            path + ": property index entry " + std::to_string(e) +
            ": reserved field must be zero");
      }
      if (property >= term_count ||
          (e > 0 && property <= previous_property)) {
        return Status::InvalidArgument(
            path + ": property index entry " + std::to_string(e) +
            ": property id " + std::to_string(property) +
            " must be in-range and strictly ascending");
      }
      if (start != running_start || count == 0 ||
          count > triple_count - running_start) {
        return Status::InvalidArgument(
            path + ": property index entry " + std::to_string(e) +
            ": postings range [" + std::to_string(start) + ", +" +
            std::to_string(count) + ") is not contiguous within " +
            std::to_string(triple_count) + " posting(s)");
      }
      uint64_t previous_row = 0;
      for (uint64_t j = 0; j < count; ++j) {
        const uint32_t row = LoadU32(postings + 4 * (start + j));
        if (row >= triple_count || (j > 0 && row <= previous_row)) {
          return Status::InvalidArgument(
              path + ": property index entry " + std::to_string(e) +
              " posting " + std::to_string(j) + ": triple index " +
              std::to_string(row) +
              " must be in-range and strictly ascending");
        }
        const uint32_t row_property =
            LoadU32(triples_ + row * kRdxTripleRecordBytes + 4);
        if (row_property != property) {
          return Status::InvalidArgument(
              path + ": property index entry " + std::to_string(e) +
              " posting " + std::to_string(j) + ": triple " +
              std::to_string(row) + " has property id " +
              std::to_string(row_property) + ", not " +
              std::to_string(property));
        }
        previous_row = row;
      }
      previous_property = property;
      running_start += count;
    }
    if (running_start != triple_count) {
      return Status::InvalidArgument(
          path + ": property index covers " + std::to_string(running_start) +
          " posting(s) but the file holds " + std::to_string(triple_count) +
          " triple(s)");
    }
    property_count_ = num_properties;
    index_entries_ = entries;
    index_postings_ = postings;
  }

  // Graph stats (v2+): one record per indexed property, in the index's
  // ascending-id order, each cross-checked against the postings it
  // summarizes — a corrupt catalog can never mislead the plan chooser.
  if (version >= 2) {
    const uint8_t* section = data + offsets[3];
    const uint64_t size = sizes[3];
    const uint64_t expected_size =
        kRdxStatsHeaderBytes + property_count_ * kRdxStatsRecordBytes;
    if (size != expected_size) {
      return Status::InvalidArgument(
          path + ": graph stats section is " + std::to_string(size) +
          " byte(s), expected " + std::to_string(expected_size) + " for " +
          std::to_string(property_count_) + " propert(ies)");
    }
    if (LoadU64(section) != triple_count) {
      return Status::InvalidArgument(
          path + ": graph stats triple count " +
          std::to_string(LoadU64(section)) + " disagrees with the header (" +
          std::to_string(triple_count) + ")");
    }
    const uint64_t distinct_subjects = LoadU64(section + 8);
    if (distinct_subjects > triple_count ||
        (triple_count > 0 && distinct_subjects == 0)) {
      return Status::InvalidArgument(
          path + ": graph stats claim " + std::to_string(distinct_subjects) +
          " distinct subject(s) over " + std::to_string(triple_count) +
          " triple(s)");
    }
    if (LoadU64(section + 16) != property_count_) {
      return Status::InvalidArgument(
          path + ": graph stats record count " +
          std::to_string(LoadU64(section + 16)) +
          " disagrees with the property index (" +
          std::to_string(property_count_) + ")");
    }
    const uint8_t* records = section + kRdxStatsHeaderBytes;
    for (uint64_t e = 0; e < property_count_; ++e) {
      const uint8_t* record = records + e * kRdxStatsRecordBytes;
      const uint8_t* index_entry =
          index_entries_ + e * kRdxPropertyEntryBytes;
      const uint32_t property = LoadU32(record);
      const uint64_t prop_triples = LoadU64(record + 8);
      const uint64_t prop_subjects = LoadU64(record + 16);
      const uint64_t max_multiplicity = LoadU64(record + 24);
      if (LoadU32(record + 4) != 0) {
        return Status::InvalidArgument(
            path + ": graph stats record " + std::to_string(e) +
            ": reserved field must be zero");
      }
      if (property != LoadU32(index_entry)) {
        return Status::InvalidArgument(
            path + ": graph stats record " + std::to_string(e) +
            ": property id " + std::to_string(property) +
            " does not match index entry id " +
            std::to_string(LoadU32(index_entry)));
      }
      if (prop_triples != LoadU64(index_entry + 16)) {
        return Status::InvalidArgument(
            path + ": graph stats record " + std::to_string(e) +
            ": triple count " + std::to_string(prop_triples) +
            " disagrees with the property index (" +
            std::to_string(LoadU64(index_entry + 16)) + ")");
      }
      if (prop_subjects == 0 || prop_subjects > prop_triples ||
          prop_subjects > distinct_subjects) {
        return Status::InvalidArgument(
            path + ": graph stats record " + std::to_string(e) +
            ": subject count " + std::to_string(prop_subjects) +
            " out of range for " + std::to_string(prop_triples) +
            " triple(s)");
      }
      if (max_multiplicity == 0 || max_multiplicity > prop_triples ||
          max_multiplicity * prop_subjects < prop_triples) {
        return Status::InvalidArgument(
            path + ": graph stats record " + std::to_string(e) +
            ": max multiplicity " + std::to_string(max_multiplicity) +
            " inconsistent with " + std::to_string(prop_triples) +
            " triple(s) over " + std::to_string(prop_subjects) +
            " subject(s)");
      }
    }
    stats_section_ = section;
  }

  triple_count_ = triple_count;
  term_count_ = term_count;
  return Status::OK();
}

bool RdxReader::has_graph_stats() const { return stats_section_ != nullptr; }

GraphStats RdxReader::DecodeGraphStats() const {
  if (stats_section_ == nullptr) return GraphStats::Compute(Triples());
  std::map<std::string, PropertyStats> properties;
  const uint8_t* records = stats_section_ + kRdxStatsHeaderBytes;
  for (uint64_t e = 0; e < property_count_; ++e) {
    const uint8_t* record = records + e * kRdxStatsRecordBytes;
    PropertyStats ps;
    ps.triple_count = LoadU64(record + 8);
    ps.subject_count = LoadU64(record + 16);
    ps.max_multiplicity = LoadU64(record + 24);
    properties.emplace(std::string(term(LoadU32(record))), ps);
  }
  return GraphStats::FromParts(LoadU64(stats_section_),
                               LoadU64(stats_section_ + 8),
                               std::move(properties));
}

std::string_view RdxReader::term(uint32_t id) const {
  const uint64_t begin = LoadU64(dict_offsets_ + 8 * id);
  const uint64_t end = LoadU64(dict_offsets_ + 8 * (id + 1));
  return ViewOf(dict_blob_ + begin, end - begin);
}

RdxReader::EncodedTriple RdxReader::encoded(size_t index) const {
  const uint8_t* record = triples_ + index * kRdxTripleRecordBytes;
  return EncodedTriple{LoadU32(record), LoadU32(record + 4),
                       LoadU32(record + 8)};
}

Triple RdxReader::TripleAt(size_t index) const {
  const EncodedTriple ids = encoded(index);
  return Triple(std::string(term(ids.subject)), std::string(term(ids.property)),
                std::string(term(ids.object)));
}

std::vector<Triple> RdxReader::Triples() const {
  std::vector<Triple> out;
  out.reserve(triple_count_);
  for (size_t i = 0; i < triple_count_; ++i) out.push_back(TripleAt(i));
  return out;
}

std::optional<uint32_t> RdxReader::FindTermId(std::string_view needle) const {
  for (size_t id = 0; id < term_count_; ++id) {
    if (term(static_cast<uint32_t>(id)) == needle) {
      return static_cast<uint32_t>(id);
    }
  }
  return std::nullopt;
}

std::vector<std::string_view> RdxReader::Properties() const {
  std::vector<std::string_view> out;
  out.reserve(property_count_);
  for (size_t e = 0; e < property_count_; ++e) {
    out.push_back(term(LoadU32(index_entries_ + e * kRdxPropertyEntryBytes)));
  }
  return out;
}

std::vector<uint32_t> RdxReader::PropertyPostings(
    std::string_view property) const {
  for (size_t e = 0; e < property_count_; ++e) {
    const uint8_t* entry = index_entries_ + e * kRdxPropertyEntryBytes;
    if (term(LoadU32(entry)) != property) continue;
    const uint64_t start = LoadU64(entry + 8);
    const uint64_t count = LoadU64(entry + 16);
    std::vector<uint32_t> rows;
    rows.reserve(count);
    for (uint64_t j = 0; j < count; ++j) {
      rows.push_back(LoadU32(index_postings_ + 4 * (start + j)));
    }
    return rows;
  }
  return {};
}

}  // namespace storage
}  // namespace rdfmr
