// Read-only, memory-mapped access to rdx v1 dataset files.
//
// Open() maps the file and validates it completely before returning:
// magic, version, header checksum, section-table bounds, per-section
// checksums, and the structural invariants of each section (monotone
// dictionary offsets, in-range term ids, a postings index that is a
// permutation of the triple indices grouped by property). Every byte of
// the file is covered by at least one of those checks, so a corrupted
// file yields a structured kInvalidArgument (malformed layout) or
// kDataLoss (failed checksum / truncation) error naming the file path
// and byte offset — never a crash, and never a silently wrong answer.
//
// After Open succeeds all accessors are non-fallible and lock-free: the
// reader is immutable, safe to share across threads, and decoding reads
// straight from the mapping (string_views alias the mapped dictionary
// blob and stay valid while the reader lives).

#ifndef RDFMR_STORAGE_RDX_READER_H_
#define RDFMR_STORAGE_RDX_READER_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "rdf/graph_stats.h"
#include "rdf/triple.h"
#include "storage/memmap.h"

namespace rdfmr {
namespace storage {

/// \brief True iff `path` names an rdx file by extension (".rdx").
bool IsRdxPath(std::string_view path);

class RdxReader {
 public:
  /// \brief Maps and fully validates `path` (see file comment). The
  /// returned reader is immutable and thread-safe.
  static Result<std::shared_ptr<const RdxReader>> Open(
      const std::string& path);

  const std::string& path() const { return map_.path(); }
  uint64_t file_bytes() const { return map_.size(); }
  size_t triple_count() const { return triple_count_; }
  size_t term_count() const { return term_count_; }
  size_t property_count() const { return property_count_; }

  /// \brief The term behind a dictionary id; requires id < term_count().
  /// The view aliases the mapping (valid while the reader lives).
  std::string_view term(uint32_t id) const;

  /// \brief Dictionary-encoded triple `index`; requires
  /// index < triple_count().
  struct EncodedTriple {
    uint32_t subject;
    uint32_t property;
    uint32_t object;
  };
  EncodedTriple encoded(size_t index) const;

  /// \brief Decoded triple `index` (copies the three term strings).
  Triple TripleAt(size_t index) const;

  /// \brief Materializes the whole relation in file order —
  /// byte-identical to the vector the file was indexed from.
  std::vector<Triple> Triples() const;

  /// \brief Dictionary id of `term`, if present (linear scan; callers
  /// that probe repeatedly should build their own map).
  std::optional<uint32_t> FindTermId(std::string_view term) const;

  /// \brief Distinct property terms, in dictionary-id order (the order
  /// of the on-disk index entries).
  std::vector<std::string_view> Properties() const;

  /// \brief Ascending triple indices whose property equals `property`
  /// (the vertical-partition scan); empty when the property is absent.
  std::vector<uint32_t> PropertyPostings(std::string_view property) const;

  /// \brief True iff the file carries a graph-stats section (v2+).
  bool has_graph_stats() const;

  /// \brief The planner catalog. Decoded straight from the v2 stats
  /// section (no triple materialization); for a v1 file, recomputed from
  /// the decoded triples as a fallback.
  GraphStats DecodeGraphStats() const;

 private:
  explicit RdxReader(MemMap map) : map_(std::move(map)) {}

  /// Validates the whole file and caches the section pointers.
  Status Validate();

  MemMap map_;
  size_t triple_count_ = 0;
  size_t term_count_ = 0;
  size_t property_count_ = 0;
  // Cached raw pointers into the validated mapping.
  const uint8_t* dict_offsets_ = nullptr;  // (term_count_+1) x u64
  const uint8_t* dict_blob_ = nullptr;
  const uint8_t* triples_ = nullptr;        // triple_count_ x 12 bytes
  const uint8_t* index_entries_ = nullptr;  // property_count_ x 24 bytes
  const uint8_t* index_postings_ = nullptr;  // triple_count_ x u32
  const uint8_t* stats_section_ = nullptr;  // v2+ graph-stats catalog
};

}  // namespace storage
}  // namespace rdfmr

#endif  // RDFMR_STORAGE_RDX_READER_H_
