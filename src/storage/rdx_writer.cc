#include "storage/rdx_writer.h"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <limits>
#include <map>
#include <unordered_map>
#include <utility>

#include "common/hash.h"
#include "storage/format.h"

namespace rdfmr {
namespace storage {
namespace {

void AppendU32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
  out->push_back(static_cast<char>((v >> 16) & 0xFF));
  out->push_back(static_cast<char>((v >> 24) & 0xFF));
}

void AppendU64(std::string* out, uint64_t v) {
  AppendU32(out, static_cast<uint32_t>(v & 0xFFFFFFFFULL));
  AppendU32(out, static_cast<uint32_t>(v >> 32));
}

void PutU64At(std::string* out, size_t offset, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    (*out)[offset + i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  }
}

}  // namespace

Result<std::string> BuildRdxImage(const std::vector<Triple>& triples) {
  constexpr uint64_t kMaxIds = std::numeric_limits<uint32_t>::max();
  if (triples.size() > kMaxIds) {
    return Status::InvalidArgument(
        "rdx v1 holds at most 2^32-1 triples, got " +
        std::to_string(triples.size()));
  }

  // Dictionary in first-occurrence order: ids are dense, and decoding
  // reproduces the exact input strings.
  std::unordered_map<std::string, uint32_t> ids;
  std::vector<const std::string*> terms;
  auto intern = [&ids, &terms](const std::string& term) -> uint32_t {
    auto [it, inserted] =
        ids.emplace(term, static_cast<uint32_t>(terms.size()));
    if (inserted) terms.push_back(&it->first);
    return it->second;
  };

  std::vector<uint32_t> encoded;
  encoded.reserve(triples.size() * 3);
  // Postings per property term id, std::map so the index section lists
  // properties in ascending-id order deterministically.
  std::map<uint32_t, std::vector<uint32_t>> postings;
  for (size_t i = 0; i < triples.size(); ++i) {
    const Triple& t = triples[i];
    const uint32_t s = intern(t.subject);
    const uint32_t p = intern(t.property);
    const uint32_t o = intern(t.object);
    encoded.push_back(s);
    encoded.push_back(p);
    encoded.push_back(o);
    postings[p].push_back(static_cast<uint32_t>(i));
  }
  if (terms.size() > kMaxIds) {
    return Status::InvalidArgument(
        "rdx v1 holds at most 2^32-1 distinct terms, got " +
        std::to_string(terms.size()));
  }

  // Section payloads.
  std::string dictionary;
  {
    uint64_t blob_offset = 0;
    for (const std::string* term : terms) {
      AppendU64(&dictionary, blob_offset);
      blob_offset += term->size();
    }
    AppendU64(&dictionary, blob_offset);  // offsets[term_count] == blob size
    for (const std::string* term : terms) dictionary.append(*term);
  }

  std::string triple_section;
  triple_section.reserve(encoded.size() * 4);
  for (uint32_t id : encoded) AppendU32(&triple_section, id);

  std::string index;
  AppendU64(&index, postings.size());
  uint64_t postings_start = 0;
  for (const auto& [property, rows] : postings) {
    AppendU32(&index, property);
    AppendU32(&index, 0);  // reserved
    AppendU64(&index, postings_start);
    AppendU64(&index, rows.size());
    postings_start += rows.size();
  }
  for (const auto& entry : postings) {
    for (uint32_t row : entry.second) AppendU32(&index, row);
  }

  // Graph-stats catalog (v2): the same aggregates GraphStats::Compute
  // derives from the decoded triples, computed here over the encoded ids
  // so a mapped dataset serves planner statistics without any decode.
  std::string stats;
  {
    std::unordered_map<uint32_t, uint64_t> subject_seen;
    for (size_t i = 0; i < encoded.size(); i += 3) subject_seen[encoded[i]];
    AppendU64(&stats, triples.size());
    AppendU64(&stats, subject_seen.size());
    AppendU64(&stats, postings.size());
    for (const auto& [property, rows] : postings) {
      // Per-subject triple counts under this property; max is the
      // property's multiplicity.
      std::unordered_map<uint32_t, uint64_t> per_subject;
      for (uint32_t row : rows) {
        per_subject[encoded[static_cast<size_t>(row) * 3]]++;
      }
      uint64_t max_multiplicity = 0;
      for (const auto& [_, count] : per_subject) {
        max_multiplicity = std::max(max_multiplicity, count);
      }
      AppendU32(&stats, property);
      AppendU32(&stats, 0);  // reserved
      AppendU64(&stats, rows.size());
      AppendU64(&stats, per_subject.size());
      AppendU64(&stats, max_multiplicity);
    }
  }

  // Header + section table, checksums patched in after layout.
  std::string image;
  image.append(reinterpret_cast<const char*>(kRdxMagic), sizeof(kRdxMagic));
  AppendU32(&image, kRdxVersion);
  AppendU32(&image, kRdxSectionCount);
  AppendU64(&image, triples.size());
  AppendU64(&image, terms.size());
  const size_t file_size_at = image.size();
  AppendU64(&image, 0);  // file_size, patched below
  const size_t header_checksum_at = image.size();
  AppendU64(&image, 0);  // header_checksum, patched below

  const std::string* payloads[kRdxSectionCount] = {&dictionary,
                                                   &triple_section, &index,
                                                   &stats};
  uint64_t offset = kRdxFirstSectionOffset;
  for (uint32_t i = 0; i < kRdxSectionCount; ++i) {
    AppendU32(&image, i + 1);  // SectionId values are 1-based in order
    AppendU32(&image, 0);      // reserved
    AppendU64(&image, offset);
    AppendU64(&image, payloads[i]->size());
    AppendU64(&image, Fnv1a64(*payloads[i]));
    offset += payloads[i]->size();
  }
  PutU64At(&image, file_size_at, offset);
  // The header checksum covers the fixed header (minus itself) plus the
  // whole section table, so any flipped byte before the sections is
  // caught even when the section checksums still match.
  const uint64_t header_hash = HashCombine(
      Fnv1a64(std::string_view(image.data(), kRdxOffHeaderChecksum)),
      Fnv1a64(std::string_view(image.data() + kRdxTableOffset,
                               kRdxSectionCount * kRdxSectionEntryBytes)));
  PutU64At(&image, header_checksum_at, header_hash);

  for (const std::string* payload : payloads) image.append(*payload);
  return image;
}

Status WriteRdxFile(const std::string& path,
                    const std::vector<Triple>& triples) {
  RDFMR_ASSIGN_OR_RETURN(std::string image, BuildRdxImage(triples));
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError(path + ": cannot open for writing");
  out.write(image.data(), static_cast<std::streamsize>(image.size()));
  out.flush();
  if (!out.good()) return Status::IoError(path + ": write failed");
  return Status::OK();
}

}  // namespace storage
}  // namespace rdfmr
