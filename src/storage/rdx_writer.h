// Writes rdx v1 dataset files (see storage/format.h and docs/FORMAT.md).
//
// Indexing is write-once: the builder dictionary-encodes the triples in
// first-occurrence order (so the decoded relation is byte-identical to
// the input, field strings and ordering included), derives the
// per-property postings index, checksums every section, and emits the
// whole image. The output is deterministic: the same triple vector
// always produces the same bytes, which is what lets the golden-file
// test pin the v1 layout.

#ifndef RDFMR_STORAGE_RDX_WRITER_H_
#define RDFMR_STORAGE_RDX_WRITER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "rdf/triple.h"

namespace rdfmr {
namespace storage {

/// \brief Serializes `triples` into a complete rdx v1 file image.
/// Fails with kInvalidArgument if the relation exceeds the format's
/// limits (2^32-1 distinct terms or triples).
Result<std::string> BuildRdxImage(const std::vector<Triple>& triples);

/// \brief Builds and writes the image to `path` (kIoError on write
/// failure). Overwrites an existing file.
Status WriteRdxFile(const std::string& path,
                    const std::vector<Triple>& triples);

}  // namespace storage
}  // namespace rdfmr

#endif  // RDFMR_STORAGE_RDX_WRITER_H_
