#include "testing/differential.h"

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <fstream>
#include <set>
#include <sstream>

#include "common/strings.h"
#include "common/trace.h"
#include "dfs/fault_plan.h"
#include "query/matcher.h"
#include "testing/invariants.h"

namespace rdfmr {
namespace fuzz {

namespace {

bool IsNtga(EngineKind kind) {
  return kind == EngineKind::kNtgaEager ||
         kind == EngineKind::kNtgaLazyFull ||
         kind == EngineKind::kNtgaLazyPartial ||
         kind == EngineKind::kNtgaLazy;
}

const char* EngineKindCppName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kPig:
      return "EngineKind::kPig";
    case EngineKind::kHive:
      return "EngineKind::kHive";
    case EngineKind::kNtgaEager:
      return "EngineKind::kNtgaEager";
    case EngineKind::kNtgaLazyFull:
      return "EngineKind::kNtgaLazyFull";
    case EngineKind::kNtgaLazyPartial:
      return "EngineKind::kNtgaLazyPartial";
    case EngineKind::kNtgaLazy:
      return "EngineKind::kNtgaLazy";
    case EngineKind::kAuto:
      return "EngineKind::kAuto";
  }
  return "EngineKind::kNtgaLazy";
}

std::vector<EngineKind> AllKinds() {
  return {EngineKind::kPig,          EngineKind::kHive,
          EngineKind::kNtgaEager,    EngineKind::kNtgaLazyFull,
          EngineKind::kNtgaLazyPartial, EngineKind::kNtgaLazy};
}

// C++ string literal with quote/backslash escaping (fuzz terms are plain
// ASCII identifiers and literals, but a repro must round-trip anything).
std::string CppStr(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '\\' || c == '"') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

std::string DescribeAnswerDiff(const SolutionSet& expected,
                               const SolutionSet& got) {
  std::string out = StringFormat("expected %zu answers, got %zu",
                                 expected.size(), got.size());
  size_t shown = 0;
  for (const Solution& s : expected) {
    if (got.count(s) == 0 && shown < 3) {
      out += "; missing {" + s.Serialize() + "}";
      ++shown;
    }
  }
  shown = 0;
  for (const Solution& s : got) {
    if (expected.count(s) == 0 && shown < 3) {
      out += "; spurious {" + s.Serialize() + "}";
      ++shown;
    }
  }
  return out;
}

// FNV-1a over the cell identity: every case x engine x thread cell gets
// its own independent fault stream, so one seed covers many distinct
// fault schedules without coupling cells to each other.
uint64_t FaultSeedFor(uint64_t base_seed, const std::string& case_name,
                      EngineKind kind, uint32_t threads) {
  uint64_t h = 14695981039346656037ULL ^ base_seed;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  for (char c : case_name) mix(static_cast<unsigned char>(c));
  mix(static_cast<uint64_t>(kind) + 1);
  mix(threads);
  return h;
}

bool IsTransientFailure(const Status& status) {
  return status.code() == StatusCode::kIoError ||
         status.code() == StatusCode::kUnavailable;
}

Result<std::shared_ptr<const GraphPatternQuery>> BuildQuery(
    const FuzzCase& fuzz_case) {
  RDFMR_ASSIGN_OR_RETURN(
      GraphPatternQuery query,
      GraphPatternQuery::Create(fuzz_case.name, fuzz_case.patterns));
  return std::make_shared<const GraphPatternQuery>(std::move(query));
}

}  // namespace

DifferentialConfig::DifferentialConfig() {
  cluster.num_nodes = 8;
  cluster.disk_per_node = 64ULL << 20;
  cluster.replication = 1;
  // Small blocks so fuzz-sized inputs still decompose into several map
  // tasks — multi-threaded runs then genuinely interleave, making the
  // byte-identical-stats check meaningful.
  cluster.block_size = 2048;
  cluster.num_reducers = 3;
}

CaseOutcome RunCase(const FuzzCase& fuzz_case,
                    const DifferentialConfig& config) {
  CaseOutcome outcome;
  Result<std::shared_ptr<const GraphPatternQuery>> query =
      BuildQuery(fuzz_case);
  if (!query.ok()) {
    outcome.query_invalid = true;
    return outcome;
  }

  SolutionSet expected =
      fuzz_case.aggregate.has_value()
          ? EvaluateAggregateInMemory(**query, *fuzz_case.aggregate,
                                      fuzz_case.triples)
          : EvaluateQueryInMemory(**query, fuzz_case.triples);
  outcome.expected_answers = expected.size();

  std::vector<std::string> base_lines = SerializeTriples(fuzz_case.triples);
  const std::vector<EngineKind> engines =
      config.engines.empty() ? AllKinds() : config.engines;

  for (EngineKind kind : engines) {
    std::optional<ExecStats> reference_stats;
    std::optional<SolutionSet> reference_answers;
    for (uint32_t threads : config.thread_counts) {
      const std::string tag = StringFormat(
          "[%s t=%u] ", EngineKindToString(kind), (unsigned)threads);
      SimDfs dfs(config.cluster);
      Status load = dfs.WriteFile("base", base_lines);
      if (!load.ok()) {
        outcome.violations.push_back(tag + "loading base relation: " +
                                     load.ToString());
        continue;
      }
      InvariantContext ctx;
      Result<uint64_t> base_size = dfs.FileSize("base");
      ctx.base_bytes_replicated =
          (base_size.ok() ? *base_size : 0) * config.cluster.replication;
      ctx.replication = config.cluster.replication;
      ctx.ntga_engine = IsNtga(kind);

      EngineOptions options;
      options.kind = kind;
      options.phi_partitions = config.phi_partitions;
      options.runtime.num_threads = threads;
      Trace trace;
      RunContext run_ctx;
      if (!config.trace_dir.empty()) run_ctx = RunContext::ForTrace(&trace);
      Result<Execution> exec =
          fuzz_case.aggregate.has_value()
              ? RunAggregateQuery(&dfs, "base", *query,
                                  *fuzz_case.aggregate, options, run_ctx)
              : RunQuery(&dfs, "base", *query, options, run_ctx);
      if (!config.trace_dir.empty()) {
        const std::string path = StringFormat(
            "%s/%s-%s-t%u.json", config.trace_dir.c_str(),
            fuzz_case.name.c_str(), EngineKindToString(kind),
            (unsigned)threads);
        std::ofstream out(path);
        if (out) {
          out << trace.ToChromeJson();
        } else {
          outcome.violations.push_back(tag + "cannot write trace file: " +
                                       path);
        }
      }
      if (!exec.ok()) {
        outcome.violations.push_back(tag + "infrastructure error: " +
                                     exec.status().ToString());
        continue;
      }
      if (!exec->stats.ok()) {
        outcome.violations.push_back(
            tag + StringFormat("engine failed at job %d: ",
                               exec->stats.failed_job_index) +
            exec->stats.status.ToString());
        continue;
      }
      if (exec->answers != expected) {
        outcome.violations.push_back(
            tag + "answer mismatch vs oracle: " +
            DescribeAnswerDiff(expected, exec->answers));
      }
      for (const std::string& violation :
           CheckStatsInvariants(exec->stats, ctx)) {
        outcome.violations.push_back(tag + violation);
      }
      if (!reference_stats.has_value()) {
        reference_stats = exec->stats;
        reference_answers = exec->answers;
      } else {
        for (const std::string& violation :
             CompareStatsIgnoringWallTimes(*reference_stats, exec->stats)) {
          outcome.violations.push_back(tag + violation);
        }
        if (*reference_answers != exec->answers) {
          outcome.violations.push_back(
              tag + "answers differ across thread counts");
        }
      }

      if (!config.inject_faults) continue;
      // Same cell again, on a fresh DFS, under a seeded probabilistic
      // fault plan with retry enabled. Survival is optional (retry
      // exhaustion is a legitimate outcome at these probabilities), but a
      // survivor must match the fault-free run byte-for-byte on answers
      // and every deterministic stat.
      outcome.faulty_runs += 1;
      const std::string fault_tag = tag + "[faults] ";
      SimDfs faulty_dfs(config.cluster);
      Status fault_load = faulty_dfs.WriteFile("base", base_lines);
      if (!fault_load.ok()) {
        outcome.violations.push_back(fault_tag + "loading base relation: " +
                                     fault_load.ToString());
        continue;
      }
      FaultPlan plan;
      plan.seed = FaultSeedFor(config.fault_seed, fuzz_case.name, kind,
                               threads);
      plan.read_failure_prob = config.fault_read_prob;
      plan.write_failure_prob = config.fault_write_prob;
      Status armed = faulty_dfs.SetFaultPlan(plan);
      if (!armed.ok()) {
        outcome.violations.push_back(fault_tag + "installing fault plan: " +
                                     armed.ToString());
        continue;
      }
      EngineOptions faulty_options = options;
      faulty_options.runtime.max_attempts = config.fault_max_attempts;
      Result<Execution> faulty =
          fuzz_case.aggregate.has_value()
              ? RunAggregateQuery(&faulty_dfs, "base", *query,
                                  *fuzz_case.aggregate, faulty_options)
              : RunQuery(&faulty_dfs, "base", *query, faulty_options);
      if (!faulty.ok()) {
        outcome.violations.push_back(fault_tag + "infrastructure error: " +
                                     faulty.status().ToString());
        continue;
      }
      if (!faulty->stats.ok()) {
        if (IsTransientFailure(faulty->stats.status)) {
          outcome.faulty_exhausted += 1;  // ran out of attempts: skip
        } else {
          outcome.violations.push_back(
              fault_tag + "non-transient failure under injected faults: " +
              faulty->stats.status.ToString());
        }
        continue;
      }
      outcome.faulty_survived += 1;
      outcome.faulty_retried_ops += faulty->stats.tasks_retried;
      if (faulty->answers != expected) {
        outcome.violations.push_back(
            fault_tag + "answer mismatch vs oracle: " +
            DescribeAnswerDiff(expected, faulty->answers));
      }
      for (const std::string& violation :
           CompareStatsIgnoringWallTimes(exec->stats, faulty->stats)) {
        outcome.violations.push_back(fault_tag + violation);
      }
    }
  }
  return outcome;
}

namespace {

bool StillFails(const FuzzCase& fuzz_case, const DifferentialConfig& config) {
  CaseOutcome outcome = RunCase(fuzz_case, config);
  return !outcome.query_invalid && !outcome.ok();
}

// One sweep removing `chunk`-sized slices of triples; returns true if
// anything was removed.
bool SweepTriples(FuzzCase* current, const DifferentialConfig& config,
                  size_t chunk) {
  bool removed = false;
  size_t start = 0;
  while (start < current->triples.size()) {
    FuzzCase candidate = *current;
    size_t len = std::min(chunk, candidate.triples.size() - start);
    candidate.triples.erase(
        candidate.triples.begin() + static_cast<ptrdiff_t>(start),
        candidate.triples.begin() + static_cast<ptrdiff_t>(start + len));
    if (StillFails(candidate, config)) {
      *current = std::move(candidate);
      removed = true;  // same start now covers the next slice
    } else {
      start += chunk;
    }
  }
  return removed;
}

}  // namespace

FuzzCase ShrinkCase(const FuzzCase& fuzz_case,
                    const DifferentialConfig& config) {
  FuzzCase current = fuzz_case;
  if (!StillFails(current, config)) return current;  // flaky; keep as-is

  // Pass 1: triples — halving chunk sizes, then single-triple sweeps until
  // a fixpoint.
  for (size_t chunk = std::max<size_t>(current.triples.size() / 2, 1);;) {
    bool removed = SweepTriples(&current, config, chunk);
    if (chunk > 1) {
      chunk /= 2;
    } else if (!removed) {
      break;
    }
  }

  // Pass 2: triple patterns, last to first, until a fixpoint. Removals
  // that break the query (disconnected join graph, all-OPTIONAL star) are
  // rejected by StillFails via query_invalid.
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = current.patterns.size(); i-- > 0;) {
      if (current.patterns.size() <= 1) break;
      FuzzCase candidate = current;
      candidate.patterns.erase(candidate.patterns.begin() +
                               static_cast<ptrdiff_t>(i));
      if (StillFails(candidate, config)) {
        current = std::move(candidate);
        changed = true;
      }
    }
  }

  // Pass 3: the aggregate, if the BGP alone reproduces the failure.
  if (current.aggregate.has_value()) {
    FuzzCase candidate = current;
    candidate.aggregate.reset();
    if (StillFails(candidate, config)) current = std::move(candidate);
  }

  // Pass 4: dropping patterns may have freed more triples.
  while (SweepTriples(&current, config, 1)) {
  }
  return current;
}

std::string ReproTestBody(const FuzzCase& fuzz_case,
                          const CaseOutcome& outcome) {
  std::ostringstream out;
  std::string test_name;
  for (char c : fuzz_case.name) {
    test_name += (std::isalnum(static_cast<unsigned char>(c)) != 0) ? c : '_';
  }
  out << "// Shrunk differential-fuzz repro: " << fuzz_case.name << "\n";
  size_t shown = 0;
  for (const std::string& violation : outcome.violations) {
    if (shown++ == 5) {
      out << "//   ... " << (outcome.violations.size() - 5) << " more\n";
      break;
    }
    out << "//   - " << violation << "\n";
  }
  out << "TEST(FuzzRepro, " << test_name << ") {\n";
  out << "  const std::vector<Triple> triples = {\n";
  for (const Triple& t : fuzz_case.triples) {
    out << "      {" << CppStr(t.subject) << ", " << CppStr(t.property)
        << ", " << CppStr(t.object) << "},\n";
  }
  out << "  };\n";
  out << "  std::vector<TriplePattern> patterns;\n";
  for (const TriplePattern& tp : fuzz_case.patterns) {
    out << "  {\n    TriplePattern tp;\n";
    out << "    tp.subject = NodePattern::Var(" << CppStr(tp.subject.value)
        << ");\n";
    if (tp.property_bound) {
      out << "    tp.property = " << CppStr(tp.property) << ";\n";
    } else {
      out << "    tp.property_bound = false;\n";
      out << "    tp.property = " << CppStr(tp.property) << ";\n";
    }
    if (tp.object.is_constant()) {
      out << "    tp.object = NodePattern::Const(" << CppStr(tp.object.value)
          << ");\n";
    } else if (!tp.object.contains_filter.empty()) {
      out << "    tp.object = NodePattern::Var(" << CppStr(tp.object.value)
          << ", " << CppStr(tp.object.contains_filter) << ");\n";
    } else {
      out << "    tp.object = NodePattern::Var(" << CppStr(tp.object.value)
          << ");\n";
    }
    if (tp.optional) out << "    tp.optional = true;\n";
    out << "    patterns.push_back(std::move(tp));\n  }\n";
  }
  out << "  auto built = GraphPatternQuery::Create(\"repro\", patterns);\n";
  out << "  ASSERT_TRUE(built.ok()) << built.status().ToString();\n";
  out << "  auto query = std::make_shared<const GraphPatternQuery>(\n"
         "      built.MoveValueUnsafe());\n";
  if (fuzz_case.aggregate.has_value()) {
    const AggregateSpec& spec = *fuzz_case.aggregate;
    out << "  AggregateSpec spec;\n";
    out << "  spec.group_vars = {";
    for (size_t i = 0; i < spec.group_vars.size(); ++i) {
      out << (i > 0 ? ", " : "") << CppStr(spec.group_vars[i]);
    }
    out << "};\n";
    out << "  spec.counted_var = " << CppStr(spec.counted_var) << ";\n";
    out << "  spec.count_var = " << CppStr(spec.count_var) << ";\n";
    out << "  spec.distinct = " << (spec.distinct ? "true" : "false")
        << ";\n";
    out << "  spec.min_count = " << spec.min_count << ";\n";
    out << "  const SolutionSet expected =\n"
           "      EvaluateAggregateInMemory(*query, spec, triples);\n";
  } else {
    out << "  const SolutionSet expected = "
           "EvaluateQueryInMemory(*query, triples);\n";
  }
  out << "  for (EngineKind kind :\n       {";
  std::vector<EngineKind> engines = AllKinds();
  for (size_t i = 0; i < engines.size(); ++i) {
    out << (i > 0 ? ", " : "") << EngineKindCppName(engines[i]);
    if (i == 2) out << "\n        ";
  }
  out << "}) {\n";
  out << "    ClusterConfig cluster;\n"
         "    cluster.block_size = 2048;\n"
         "    cluster.num_reducers = 3;\n"
         "    SimDfs dfs(cluster);\n"
         "    ASSERT_TRUE(dfs.WriteFile(\"base\", "
         "SerializeTriples(triples)).ok());\n"
         "    EngineOptions options;\n"
         "    options.kind = kind;\n"
         "    options.phi_partitions = 16;\n";
  if (fuzz_case.aggregate.has_value()) {
    out << "    auto exec = RunAggregateQuery(&dfs, \"base\", query, spec, "
           "options);\n";
  } else {
    out << "    auto exec = RunQuery(&dfs, \"base\", query, options);\n";
  }
  out << "    ASSERT_TRUE(exec.ok()) << exec.status().ToString();\n"
         "    ASSERT_TRUE(exec->stats.ok()) << "
         "exec->stats.status.ToString();\n"
         "    EXPECT_TRUE(exec->answers == expected)\n"
         "        << \"answer mismatch on \" << "
         "EngineKindToString(kind);\n"
         "  }\n"
         "}\n";
  return out.str();
}

FuzzCase MakeCase(const FuzzOptions& options, uint64_t index) {
  // Per-case independent stream: replaying case i never depends on the
  // cases before it.
  Rng rng(options.seed ^ (0x9E3779B97F4A7C15ULL * (index + 1)));
  FuzzCase fuzz_case;
  fuzz_case.name = StringFormat("fuzz-s%llu-c%llu",
                                (unsigned long long)options.seed,
                                (unsigned long long)index);
  fuzz_case.triples = GenerateGraph(options.graph, &rng);
  GraphVocabulary vocab = VocabularyOf(options.graph);
  GeneratedQuery generated = GenerateQuery(options.query, vocab, &rng);
  fuzz_case.patterns = std::move(generated.patterns);
  fuzz_case.aggregate = std::move(generated.aggregate);
  return fuzz_case;
}

std::string FuzzReport::Summary() const {
  std::string summary = StringFormat(
      "%llu cases: %llu with unbound patterns, %llu with OPTIONAL, "
      "%llu with aggregates, %llu multi-star, %llu with non-empty ground "
      "truth; %zu failure(s)",
      (unsigned long long)cases_run, (unsigned long long)with_unbound,
      (unsigned long long)with_optional, (unsigned long long)with_aggregate,
      (unsigned long long)multi_star,
      (unsigned long long)nonempty_ground_truth, failures.size());
  if (faulty_runs > 0) {
    summary += StringFormat(
        "; faults: %llu run(s), %llu survived, %llu exhausted retries, "
        "%llu op(s) retried",
        (unsigned long long)faulty_runs, (unsigned long long)faulty_survived,
        (unsigned long long)faulty_exhausted,
        (unsigned long long)faulty_retried_ops);
  }
  return summary;
}

FuzzReport RunFuzz(const FuzzOptions& options, std::ostream* log) {
  FuzzReport report;
  for (uint64_t i = 0; i < options.cases; ++i) {
    FuzzCase fuzz_case = MakeCase(options, i);
    report.cases_run += 1;

    std::set<std::string> subjects;
    bool unbound = false, optional = false;
    for (const TriplePattern& tp : fuzz_case.patterns) {
      subjects.insert(tp.subject.value);
      unbound = unbound || tp.unbound_property();
      optional = optional || tp.optional;
    }
    if (unbound) report.with_unbound += 1;
    if (optional) report.with_optional += 1;
    if (fuzz_case.aggregate.has_value()) report.with_aggregate += 1;
    if (subjects.size() > 1) report.multi_star += 1;

    CaseOutcome outcome = RunCase(fuzz_case, options.diff);
    if (outcome.expected_answers > 0) report.nonempty_ground_truth += 1;
    report.faulty_runs += outcome.faulty_runs;
    report.faulty_survived += outcome.faulty_survived;
    report.faulty_exhausted += outcome.faulty_exhausted;
    report.faulty_retried_ops += outcome.faulty_retried_ops;
    if (outcome.ok()) {
      if (log != nullptr && (i + 1) % 50 == 0) {
        *log << "  ... " << (i + 1) << "/" << options.cases
             << " cases clean\n";
      }
      continue;
    }

    FuzzFailure failure;
    failure.case_index = i;
    failure.shrunk =
        options.shrink ? ShrinkCase(fuzz_case, options.diff) : fuzz_case;
    failure.outcome = RunCase(failure.shrunk, options.diff);
    if (failure.outcome.ok()) failure.outcome = outcome;  // flaky shrink
    failure.repro = ReproTestBody(failure.shrunk, failure.outcome);
    if (log != nullptr) {
      *log << "FAILURE in case " << i << " (" << fuzz_case.name << "): "
           << failure.outcome.violations.size() << " violation(s)\n";
      for (const std::string& violation : failure.outcome.violations) {
        *log << "  " << violation << "\n";
      }
      *log << "shrunk to " << failure.shrunk.triples.size()
           << " triple(s), " << failure.shrunk.patterns.size()
           << " pattern(s); repro test body:\n\n"
           << failure.repro << "\n";
    }
    report.failures.push_back(std::move(failure));
    if (options.max_failures > 0 &&
        report.failures.size() >= options.max_failures) {
      break;
    }
  }
  if (log != nullptr) *log << report.Summary() << "\n";
  return report;
}

}  // namespace fuzz
}  // namespace rdfmr
