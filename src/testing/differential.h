// Cross-engine differential fuzzing: the load-bearing correctness claim of
// the reproduction is that every engine kind — relational (Pig, Hive) and
// every NTGA β-unnest strategy — computes exactly the same answers
// (Lemma 1), at any thread count, while satisfying the metrics-invariant
// catalog. This module runs one (graph, query) case through the full
// engine x thread-count matrix against the in-memory oracle, shrinks
// failing cases (drop triples, then triple patterns, re-checking each
// step), and renders a failing case as a ready-to-paste C++ test body.

#ifndef RDFMR_TESTING_DIFFERENTIAL_H_
#define RDFMR_TESTING_DIFFERENTIAL_H_

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "dfs/cluster_config.h"
#include "engine/engine.h"
#include "query/aggregate.h"
#include "query/pattern.h"
#include "rdf/triple.h"
#include "testing/graph_gen.h"
#include "testing/query_gen.h"

namespace rdfmr {
namespace fuzz {

/// \brief One self-contained differential test case. Patterns are kept in
/// raw form (not as a built GraphPatternQuery) so the shrinker can drop
/// them and rebuild.
struct FuzzCase {
  std::string name;
  std::vector<Triple> triples;
  std::vector<TriplePattern> patterns;
  std::optional<AggregateSpec> aggregate;
};

/// \brief Execution matrix for one case.
struct DifferentialConfig {
  /// Engines to compare; empty = all six kinds.
  std::vector<EngineKind> engines;
  /// Host thread counts; stats must be byte-identical across them.
  std::vector<uint32_t> thread_counts = {1, 4};
  /// Small φ_m so partition collisions are exercised on small data.
  uint32_t phi_partitions = 16;
  /// Roomy cluster (no artificial disk pressure) used for every run.
  ClusterConfig cluster;
  /// When true, every engine x thread cell additionally runs on a fresh
  /// DFS with a seeded probabilistic FaultPlan installed and retry
  /// enabled. A faulty run that survives must produce answers AND
  /// deterministic stats byte-identical to the fault-free run of the same
  /// cell; one that dies of retry exhaustion (a transient
  /// kIoError/kUnavailable surfacing after max attempts) is counted and
  /// skipped; any other failure is a violation.
  bool inject_faults = false;
  /// Injected per-op failure probabilities and the retry budget.
  double fault_read_prob = 0.08;
  double fault_write_prob = 0.04;
  uint32_t fault_max_attempts = 8;
  /// Base fault-plan seed; each case x engine x thread cell derives its
  /// own independent stream from it.
  uint64_t fault_seed = 1;
  /// When non-empty, every fault-free engine x thread run writes a Chrome
  /// trace-event JSON file `<dir>/<case>-<engine>-t<threads>.json` into
  /// this (existing) directory.
  std::string trace_dir;

  DifferentialConfig();
};

/// \brief Outcome of running one case through the matrix.
struct CaseOutcome {
  /// One line per equivalence or invariant violation (empty = clean).
  std::vector<std::string> violations;
  /// True when the patterns do not form a valid query (only reachable via
  /// shrinking — generated cases are valid by construction).
  bool query_invalid = false;
  /// Ground-truth answer count (coverage signal).
  size_t expected_answers = 0;
  /// Fault-injection coverage (only advanced when
  /// DifferentialConfig::inject_faults is set): faulty runs launched,
  /// survived-and-matched, and skipped for retry exhaustion.
  size_t faulty_runs = 0;
  size_t faulty_survived = 0;
  size_t faulty_exhausted = 0;
  /// Retried operations summed over surviving faulty runs — the vacuity
  /// signal that faults were really armed (the DFS's own injection
  /// counters are reset by the engine's per-run metric sampling).
  size_t faulty_retried_ops = 0;

  bool ok() const { return violations.empty(); }
};

/// \brief Runs `fuzz_case` through every engine x thread count, comparing
/// answers against the in-memory oracle and checking all invariants.
CaseOutcome RunCase(const FuzzCase& fuzz_case,
                    const DifferentialConfig& config);

/// \brief Greedily minimizes a failing case: removes triples (halving
/// chunks down to single triples), then triple patterns, then the
/// aggregate, re-running the matrix after each candidate removal and
/// keeping it only if the case still fails. Returns the smallest failing
/// case found (the input itself if nothing could be removed).
FuzzCase ShrinkCase(const FuzzCase& fuzz_case,
                    const DifferentialConfig& config);

/// \brief Renders `fuzz_case` as a self-contained gtest test body
/// (ready to paste into tests/fuzz_regression_test.cc) that loads the
/// triples, builds the query, and asserts engine/oracle equivalence.
std::string ReproTestBody(const FuzzCase& fuzz_case,
                          const CaseOutcome& outcome);

/// \brief Whole-harness options.
struct FuzzOptions {
  uint64_t seed = 1;
  uint64_t cases = 100;
  GraphGenConfig graph;
  QueryGenConfig query;
  DifferentialConfig diff;
  /// Shrink failing cases before reporting (disable for raw speed).
  bool shrink = true;
  /// Stop after this many failures (0 = run all cases regardless).
  uint64_t max_failures = 1;
};

struct FuzzFailure {
  uint64_t case_index = 0;
  FuzzCase shrunk;
  CaseOutcome outcome;
  std::string repro;
};

struct FuzzReport {
  uint64_t cases_run = 0;
  // Coverage counters over generated cases.
  uint64_t with_unbound = 0;
  uint64_t with_optional = 0;
  uint64_t with_aggregate = 0;
  uint64_t multi_star = 0;
  uint64_t nonempty_ground_truth = 0;
  // Fault-injection coverage (all zero unless diff.inject_faults).
  uint64_t faulty_runs = 0;
  uint64_t faulty_survived = 0;
  uint64_t faulty_exhausted = 0;
  uint64_t faulty_retried_ops = 0;
  std::vector<FuzzFailure> failures;

  bool ok() const { return failures.empty(); }
  std::string Summary() const;
};

/// \brief Deterministically derives case `index` of stream `seed` —
/// exactly the case RunFuzz would run, for standalone replay.
FuzzCase MakeCase(const FuzzOptions& options, uint64_t index);

/// \brief The harness loop: generate, run, shrink, report. `log` (may be
/// null) receives progress lines and repro bodies for failures.
FuzzReport RunFuzz(const FuzzOptions& options, std::ostream* log = nullptr);

}  // namespace fuzz
}  // namespace rdfmr

#endif  // RDFMR_TESTING_DIFFERENTIAL_H_
