#include "testing/graph_gen.h"

#include <algorithm>
#include <set>

#include "common/strings.h"

namespace rdfmr {
namespace fuzz {

namespace {

std::string SubjectId(uint64_t i) { return StringFormat("s%llu", (unsigned long long)i); }
std::string PropertyId(uint64_t i) { return StringFormat("p%llu", (unsigned long long)i); }
std::string ObjectId(uint64_t i) { return StringFormat("o%llu", (unsigned long long)i); }

}  // namespace

GraphVocabulary VocabularyOf(const GraphGenConfig& config) {
  GraphVocabulary vocab;
  vocab.num_subjects = config.num_subjects;
  vocab.num_properties = config.num_properties;
  vocab.object_pool = config.object_pool;
  vocab.literal_tokens = config.literal_tokens;
  return vocab;
}

std::vector<Triple> GenerateGraph(const GraphGenConfig& config, Rng* rng) {
  ZipfSampler property_sampler(std::max<uint64_t>(config.num_properties, 1),
                               config.property_skew);
  std::set<Triple> triples;

  auto pick_object = [&](uint64_t literal_seed) -> std::string {
    double roll = rng->NextDouble();
    if (roll < config.subject_object_prob && config.num_subjects > 0) {
      return SubjectId(rng->Uniform(config.num_subjects));
    }
    if (roll < config.subject_object_prob + config.literal_prob &&
        config.literal_tokens > 0) {
      // Literal with an embedded token; the trailing counter keeps values
      // diverse so CONTAINS filters select strict subsets.
      return StringFormat("lit tok%llu n%llu",
                          (unsigned long long)rng->Uniform(config.literal_tokens),
                          (unsigned long long)(literal_seed % 5));
    }
    return ObjectId(rng->Uniform(std::max<uint64_t>(config.object_pool, 1)));
  };

  for (uint64_t s = 0; s < config.num_subjects; ++s) {
    const std::string subject = SubjectId(s);
    uint64_t pairs =
        1 + rng->Uniform(std::max<uint64_t>(config.max_pairs_per_subject, 1));
    std::vector<std::string> used_properties;
    for (uint64_t k = 0; k < pairs; ++k) {
      std::string property;
      if (!used_properties.empty() && rng->Chance(config.multi_valued_prob)) {
        // Pile another object under a property this subject already has —
        // the multi-valued case that makes β-unnesting expensive.
        property = used_properties[rng->Uniform(used_properties.size())];
      } else {
        property = PropertyId(property_sampler.Sample(rng));
        used_properties.push_back(property);
      }
      triples.insert(Triple(subject, property, pick_object(rng->Next())));
    }
  }
  return std::vector<Triple>(triples.begin(), triples.end());
}

}  // namespace fuzz
}  // namespace rdfmr
