// Seeded random RDF graph generation for the differential fuzz harness.
//
// Unlike the paper-shaped generators in src/datagen (BSBM, Bio2RDF, ...),
// these graphs are adversarial rather than realistic: property choice is
// Zipf-skewed so a few properties are heavily multi-valued, star fan-out
// varies per subject, objects are drawn from a shared pool (so star joins
// actually connect), some objects are other subjects (so Object-Subject
// joins resolve), and some are literals carrying substring tokens (so
// CONTAINS filters select nontrivially).

#ifndef RDFMR_TESTING_GRAPH_GEN_H_
#define RDFMR_TESTING_GRAPH_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "rdf/triple.h"

namespace rdfmr {
namespace fuzz {

struct GraphGenConfig {
  /// Subjects "s0".."s{n-1}".
  uint64_t num_subjects = 14;
  /// Property vocabulary "p0".."p{n-1}"; Zipf-skewed selection makes p0
  /// hot (heavily multi-valued) and the tail sparse.
  uint64_t num_properties = 5;
  double property_skew = 0.9;
  /// Star fan-out: per subject, 1..max (Property, Object) pairs. Kept
  /// modest: candidate sets of unbound patterns grow with fan-out and
  /// β-unnest output is their cartesian product across stars.
  uint64_t max_pairs_per_subject = 6;
  /// Multi-valuedness: extra objects added under an already-used property
  /// with this probability per pair.
  double multi_valued_prob = 0.35;
  /// Shared entity-object pool "o0".."o{n-1}" (join hits across subjects).
  uint64_t object_pool = 16;
  /// Probability an object position references another subject id —
  /// the edges Object-Subject star joins traverse.
  double subject_object_prob = 0.45;
  /// Probability an object is a literal containing a token "tokK"
  /// (CONTAINS-filter bait); tokens range over "tok0".."tok{tokens-1}".
  double literal_prob = 0.2;
  uint64_t literal_tokens = 4;
};

/// \brief The vocabulary a generated graph drew from, for query generation.
struct GraphVocabulary {
  uint64_t num_subjects = 0;
  uint64_t num_properties = 0;
  uint64_t object_pool = 0;
  uint64_t literal_tokens = 0;
};

/// \brief Generates a deterministic random graph (sorted, duplicate-free).
/// Every subject gets at least one triple.
std::vector<Triple> GenerateGraph(const GraphGenConfig& config, Rng* rng);

/// \brief The vocabulary implied by `config` (what GenerateGraph can emit).
GraphVocabulary VocabularyOf(const GraphGenConfig& config);

}  // namespace fuzz
}  // namespace rdfmr

#endif  // RDFMR_TESTING_GRAPH_GEN_H_
