#include "testing/invariants.h"

#include <algorithm>

#include "common/strings.h"

namespace rdfmr {
namespace fuzz {

namespace {

void Violation(std::vector<std::string>* out, const std::string& line) {
  out->push_back(line);
}

std::string U64(uint64_t v) {
  return StringFormat("%llu", (unsigned long long)v);
}

}  // namespace

std::vector<std::string> CheckStatsInvariants(const ExecStats& stats,
                                              const InvariantContext& ctx) {
  std::vector<std::string> v;

  // --- Per-job accounting feeding the totals.
  uint64_t sum_input = 0, sum_shuffle = 0, sum_out = 0, sum_out_repl = 0;
  uint32_t sum_scans = 0;
  uint64_t max_out_repl = 0;
  for (size_t j = 0; j < stats.jobs.size(); ++j) {
    const JobMetrics& job = stats.jobs[j];
    sum_input += job.input_bytes;
    sum_shuffle += job.map_output_bytes;
    sum_out += job.output_bytes;
    sum_out_repl += job.output_bytes_replicated;
    sum_scans += job.full_scans_of_base;
    max_out_repl = std::max(max_out_repl, job.output_bytes_replicated);
    // A job meters its map emissions either as shuffle volume (reduce
    // jobs) or as direct output (map-only jobs) — never as both.
    if (job.map_output_bytes > 0 && job.map_direct_output_bytes > 0) {
      Violation(&v, "job '" + job.job_name +
                        "' metered both shuffle bytes (" +
                        U64(job.map_output_bytes) + ") and direct map "
                        "output bytes (" +
                        U64(job.map_direct_output_bytes) + ")");
    }
    if (job.map_direct_output_bytes > 0 && job.reduce_input_groups > 0) {
      Violation(&v, "job '" + job.job_name +
                        "' has direct map output but nonzero reduce groups");
    }
    // Replication is exact in the simulator: physical = logical x factor.
    if (job.output_bytes_replicated !=
        job.output_bytes * ctx.replication) {
      Violation(&v, "job '" + job.job_name + "' replicated output " +
                        U64(job.output_bytes_replicated) + " != logical " +
                        U64(job.output_bytes) + " x replication " +
                        U64(ctx.replication));
    }
  }

  if (stats.shuffle_bytes != sum_shuffle) {
    Violation(&v, "shuffle_bytes " + U64(stats.shuffle_bytes) +
                      " != sum of per-job map_output_bytes " +
                      U64(sum_shuffle));
  }
  if (stats.hdfs_read_bytes != sum_input) {
    Violation(&v, "hdfs_read_bytes " + U64(stats.hdfs_read_bytes) +
                      " != sum of per-job input_bytes " + U64(sum_input));
  }
  if (stats.hdfs_write_bytes != sum_out) {
    Violation(&v, "hdfs_write_bytes " + U64(stats.hdfs_write_bytes) +
                      " != sum of per-job output_bytes " + U64(sum_out));
  }
  if (stats.hdfs_write_bytes_replicated != sum_out_repl) {
    Violation(&v, "hdfs_write_bytes_replicated " +
                      U64(stats.hdfs_write_bytes_replicated) +
                      " != per-job sum " + U64(sum_out_repl));
  }
  if (stats.full_scans != sum_scans) {
    Violation(&v, "full_scans " + U64(stats.full_scans) +
                      " != per-job sum " + U64(sum_scans));
  }

  // --- Write decomposition: everything written is either intermediate or
  // the final answer file.
  if (stats.intermediate_write_bytes + stats.final_output_bytes !=
      stats.hdfs_write_bytes) {
    Violation(&v, "intermediate " + U64(stats.intermediate_write_bytes) +
                      " + final " + U64(stats.final_output_bytes) +
                      " != hdfs_write_bytes " + U64(stats.hdfs_write_bytes));
  }
  if (stats.final_output_bytes > stats.hdfs_write_bytes) {
    Violation(&v, "final_output_bytes exceeds total writes");
  }

  // --- DFS high-water mark covers the largest live write set: the base
  // relation is live throughout, and a job's freshly written output is
  // live the moment it lands.
  if (stats.peak_dfs_used_bytes < ctx.base_bytes_replicated + max_out_repl) {
    Violation(&v, "peak_dfs_used_bytes " + U64(stats.peak_dfs_used_bytes) +
                      " < base " + U64(ctx.base_bytes_replicated) +
                      " + largest job output " + U64(max_out_repl));
  }
  // On an exclusive DFS nothing is deleted until the workflow ends, so on
  // success the peak equals base + every job's replicated output.
  if (ctx.exclusive_dfs && stats.ok() &&
      stats.peak_dfs_used_bytes != ctx.base_bytes_replicated + sum_out_repl) {
    Violation(&v, "peak_dfs_used_bytes " + U64(stats.peak_dfs_used_bytes) +
                      " != base " + U64(ctx.base_bytes_replicated) +
                      " + all job outputs " + U64(sum_out_repl) +
                      " on an exclusive DFS");
  }

  // --- Completion accounting.
  if (stats.ok()) {
    if (stats.mr_cycles != stats.planned_cycles) {
      Violation(&v, "successful run completed " + U64(stats.mr_cycles) +
                        " of " + U64(stats.planned_cycles) +
                        " planned cycles");
    }
    if (stats.failed_job_index != -1) {
      Violation(&v, "successful run reports failed_job_index " +
                        StringFormat("%d", stats.failed_job_index));
    }
  } else {
    if (stats.failed_job_index < 0 ||
        static_cast<size_t>(stats.failed_job_index) >=
            stats.planned_cycles) {
      Violation(&v, "failed run reports out-of-range failed_job_index " +
                        StringFormat("%d", stats.failed_job_index));
    }
  }

  // --- Redundancy factors: fractions by definition; nested triplegroup
  // intermediates repeat (almost) nothing, flat relational ones may.
  auto check_fraction = [&](double value, const char* name) {
    if (value < 0.0 || value > 1.0) {
      Violation(&v, StringFormat("%s %.4f outside [0, 1]", name, value));
    }
  };
  check_fraction(stats.redundancy_factor, "redundancy_factor");
  check_fraction(stats.final_redundancy_factor, "final_redundancy_factor");
  if (ctx.ntga_engine && stats.redundancy_factor > 0.05) {
    Violation(&v, StringFormat("NTGA star-phase redundancy_factor %.4f "
                               "not ~0 (nested representation leaked "
                               "flat tuples?)",
                               stats.redundancy_factor));
  }

  if (stats.modeled_seconds < 0.0) {
    Violation(&v, "negative modeled_seconds");
  }
  return v;
}

std::vector<std::string> CompareStatsIgnoringWallTimes(const ExecStats& a,
                                                       const ExecStats& b) {
  std::vector<std::string> v;
  auto diff = [&](const char* field, const std::string& lhs,
                  const std::string& rhs) {
    if (lhs != rhs) {
      Violation(&v, std::string(field) + " differs across runs: " + lhs +
                        " vs " + rhs);
    }
  };
  diff("engine", a.engine, b.engine);
  diff("query", a.query, b.query);
  diff("status", a.status.ToString(), b.status.ToString());
  diff("failed_job_index", StringFormat("%d", a.failed_job_index),
       StringFormat("%d", b.failed_job_index));
  diff("mr_cycles", U64(a.mr_cycles), U64(b.mr_cycles));
  diff("planned_cycles", U64(a.planned_cycles), U64(b.planned_cycles));
  diff("full_scans", U64(a.full_scans), U64(b.full_scans));
  diff("hdfs_read_bytes", U64(a.hdfs_read_bytes), U64(b.hdfs_read_bytes));
  diff("hdfs_write_bytes", U64(a.hdfs_write_bytes), U64(b.hdfs_write_bytes));
  diff("hdfs_write_bytes_replicated", U64(a.hdfs_write_bytes_replicated),
       U64(b.hdfs_write_bytes_replicated));
  diff("shuffle_bytes", U64(a.shuffle_bytes), U64(b.shuffle_bytes));
  diff("star_phase_write_bytes", U64(a.star_phase_write_bytes),
       U64(b.star_phase_write_bytes));
  diff("intermediate_write_bytes", U64(a.intermediate_write_bytes),
       U64(b.intermediate_write_bytes));
  diff("final_output_bytes", U64(a.final_output_bytes),
       U64(b.final_output_bytes));
  diff("peak_dfs_used_bytes", U64(a.peak_dfs_used_bytes),
       U64(b.peak_dfs_used_bytes));
  diff("redundancy_factor", StringFormat("%.10f", a.redundancy_factor),
       StringFormat("%.10f", b.redundancy_factor));
  diff("final_redundancy_factor",
       StringFormat("%.10f", a.final_redundancy_factor),
       StringFormat("%.10f", b.final_redundancy_factor));
  diff("modeled_seconds", StringFormat("%.10f", a.modeled_seconds),
       StringFormat("%.10f", b.modeled_seconds));
  if (a.counters != b.counters) {
    Violation(&v, "counters differ across runs");
  }
  if (a.jobs.size() != b.jobs.size()) {
    Violation(&v, "job count differs across runs: " + U64(a.jobs.size()) +
                      " vs " + U64(b.jobs.size()));
    return v;
  }
  for (size_t j = 0; j < a.jobs.size(); ++j) {
    const JobMetrics& ja = a.jobs[j];
    const JobMetrics& jb = b.jobs[j];
    bool same = ja.job_name == jb.job_name &&
                ja.input_records == jb.input_records &&
                ja.input_bytes == jb.input_bytes &&
                ja.map_output_records == jb.map_output_records &&
                ja.map_output_bytes == jb.map_output_bytes &&
                ja.map_direct_output_records == jb.map_direct_output_records &&
                ja.map_direct_output_bytes == jb.map_direct_output_bytes &&
                ja.reduce_input_groups == jb.reduce_input_groups &&
                ja.output_records == jb.output_records &&
                ja.output_bytes == jb.output_bytes &&
                ja.output_bytes_replicated == jb.output_bytes_replicated &&
                ja.full_scans_of_base == jb.full_scans_of_base &&
                ja.counters == jb.counters;
    if (!same) {
      Violation(&v, "job " + U64(j) + " ('" + ja.job_name +
                        "') metrics differ across runs");
    }
  }
  return v;
}

}  // namespace fuzz
}  // namespace rdfmr
