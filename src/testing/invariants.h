// Metrics-invariant catalog for engine executions.
//
// Every ExecStats an engine reports must satisfy structural accounting
// identities regardless of query, data, or engine kind — totals match
// per-job sums, intermediate + final = all writes, the DFS high-water mark
// covers the live write set, a job's volume is metered either as shuffle
// or as direct map output (never both), and nested (NTGA) intermediates
// carry ~zero redundancy. A second entry point checks that two runs of the
// same plan (e.g. at different thread counts) produced byte-identical
// stats, excluding the explicitly nondeterministic host wall times.

#ifndef RDFMR_TESTING_INVARIANTS_H_
#define RDFMR_TESTING_INVARIANTS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "engine/engine.h"

namespace rdfmr {
namespace fuzz {

/// \brief What the invariant checks need to know about the run's context.
struct InvariantContext {
  /// Physical bytes of the base triple relation (logical x replication) —
  /// live in the DFS for the whole workflow.
  uint64_t base_bytes_replicated = 0;
  /// Cluster replication factor.
  uint32_t replication = 1;
  /// True for the NTGA engine kinds (nested intermediates).
  bool ntga_engine = false;
  /// True when the workflow ran alone on a DFS holding only the base
  /// relation (enables the exact peak-usage identity).
  bool exclusive_dfs = true;
};

/// \brief Checks every catalog invariant; returns one human-readable line
/// per violation (empty = clean).
std::vector<std::string> CheckStatsInvariants(const ExecStats& stats,
                                              const InvariantContext& ctx);

/// \brief Field-by-field equality of two ExecStats excluding the host
/// wall-clock *_seconds diagnostics; returns one line per differing field.
std::vector<std::string> CompareStatsIgnoringWallTimes(const ExecStats& a,
                                                       const ExecStats& b);

}  // namespace fuzz
}  // namespace rdfmr

#endif  // RDFMR_TESTING_INVARIANTS_H_
