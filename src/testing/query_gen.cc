#include "testing/query_gen.h"

#include <algorithm>
#include <set>

#include "common/logging.h"
#include "common/strings.h"

namespace rdfmr {
namespace fuzz {

namespace {

// Mutable star under construction; converted to TriplePatterns at the end.
struct StarDraft {
  std::string subject_var;
  std::vector<TriplePattern> patterns;
  uint64_t unbound_count = 0;
};

class QueryBuilder {
 public:
  QueryBuilder(const QueryGenConfig& config, const GraphVocabulary& vocab,
               Rng* rng)
      : config_(config), vocab_(vocab), rng_(rng) {}

  GeneratedQuery Build() {
    uint64_t num_stars = 1 + rng_->Uniform(std::max<uint64_t>(
                                 config_.max_stars, 1));
    for (uint64_t i = 0; i < num_stars; ++i) {
      StarDraft star;
      star.subject_var = StringFormat("qs%llu", (unsigned long long)i);
      stars_.push_back(std::move(star));
    }
    for (uint64_t i = 0; i < num_stars; ++i) FillStar(i);
    // Connect star i to an earlier star: a chain most of the time, a
    // branch back to a random ancestor otherwise (chained-star shapes).
    for (uint64_t i = 1; i < num_stars; ++i) {
      uint64_t parent = rng_->Chance(0.75) ? i - 1 : rng_->Uniform(i);
      ConnectStars(parent, i);
    }
    EnsureMinUnbound();

    GeneratedQuery out;
    for (const StarDraft& star : stars_) {
      out.patterns.insert(out.patterns.end(), star.patterns.begin(),
                          star.patterns.end());
    }
    Result<GraphPatternQuery> query =
        GraphPatternQuery::Create("fuzz", out.patterns);
    // The builder only emits shapes Create accepts; a rejection here is a
    // generator bug worth failing loudly on.
    RDFMR_CHECK(query.ok()) << "generator produced an invalid query: "
                            << query.status().ToString();
    out.query =
        std::make_shared<const GraphPatternQuery>(query.MoveValueUnsafe());
    MaybeAddAggregate(&out);
    return out;
  }

 private:
  std::string FreshObjectVar() {
    return StringFormat("v%llu", (unsigned long long)var_counter_++);
  }
  std::string FreshPropertyVar() {
    return StringFormat("up%llu", (unsigned long long)prop_counter_++);
  }
  std::string RandomProperty() {
    return StringFormat(
        "p%llu", (unsigned long long)rng_->Uniform(
                     std::max<uint64_t>(vocab_.num_properties, 1)));
  }
  std::string RandomConstantObject() {
    if (rng_->Chance(0.4) && vocab_.num_subjects > 0) {
      return StringFormat("s%llu", (unsigned long long)rng_->Uniform(
                                       vocab_.num_subjects));
    }
    return StringFormat("o%llu", (unsigned long long)rng_->Uniform(
                                     std::max<uint64_t>(vocab_.object_pool, 1)));
  }
  std::string RandomToken() {
    return StringFormat("tok%llu", (unsigned long long)rng_->Uniform(
                                       std::max<uint64_t>(vocab_.literal_tokens, 1)));
  }

  // Draws property position for one pattern of `star`, honoring the
  // per-star unbound cap.
  void DrawProperty(StarDraft* star, TriplePattern* tp) {
    if (star->unbound_count < config_.max_unbound_per_star &&
        rng_->Chance(config_.unbound_prob)) {
      tp->property_bound = false;
      tp->property = FreshPropertyVar();
      star->unbound_count += 1;
    } else {
      tp->property_bound = true;
      tp->property = RandomProperty();
    }
  }

  // Object position for a non-join pattern: fresh variable, CONTAINS-
  // filtered fresh variable, or constant.
  NodePattern DrawObject() {
    double roll = rng_->NextDouble();
    if (roll < config_.constant_object_prob) {
      return NodePattern::Const(RandomConstantObject());
    }
    if (roll < config_.constant_object_prob + config_.contains_prob) {
      return NodePattern::Var(FreshObjectVar(), RandomToken());
    }
    return NodePattern::Var(FreshObjectVar());
  }

  void FillStar(uint64_t index) {
    StarDraft& star = stars_[index];
    uint64_t n = 1 + rng_->Uniform(std::max<uint64_t>(
                         config_.max_patterns_per_star, 1));
    for (uint64_t k = 0; k < n; ++k) {
      TriplePattern tp;
      tp.subject = NodePattern::Var(star.subject_var);
      DrawProperty(&star, &tp);
      tp.object = DrawObject();
      // The first pattern stays mandatory so the star survives Create's
      // "only OPTIONAL patterns" rejection; others may be optional when
      // they introduce only fresh variables (true by construction: object
      // and property variables are always freshly drawn).
      tp.optional = k > 0 && tp.object.is_variable() &&
                    rng_->Chance(config_.optional_prob);
      star.patterns.push_back(std::move(tp));
    }
  }

  // Adds the join edge between `parent` and `child`: Object-Subject
  // (parent's object is the child's subject variable) or Object-Object
  // (both stars carry the same fresh object variable). Join patterns are
  // mandatory — OPTIONAL patterns may not share variables.
  void ConnectStars(uint64_t parent, uint64_t child) {
    StarDraft& from = stars_[parent];
    StarDraft& to = stars_[child];
    TriplePattern tp;
    tp.subject = NodePattern::Var(from.subject_var);
    DrawProperty(&from, &tp);
    if (rng_->Chance(0.7)) {
      tp.object = NodePattern::Var(to.subject_var);
      from.patterns.push_back(std::move(tp));
    } else {
      std::string join_var =
          StringFormat("jv%llu", (unsigned long long)var_counter_++);
      tp.object = NodePattern::Var(join_var);
      from.patterns.push_back(std::move(tp));
      TriplePattern back;
      back.subject = NodePattern::Var(to.subject_var);
      DrawProperty(&to, &back);
      back.object = NodePattern::Var(join_var);
      to.patterns.push_back(std::move(back));
    }
  }

  // Converts bound mandatory patterns to unbound until the query carries
  // at least `min_unbound` unbound-property patterns.
  void EnsureMinUnbound() {
    uint64_t have = 0;
    for (const StarDraft& star : stars_) have += star.unbound_count;
    for (StarDraft& star : stars_) {
      for (TriplePattern& tp : star.patterns) {
        if (have >= config_.min_unbound) return;
        if (tp.property_bound && !tp.optional &&
            star.unbound_count < config_.max_unbound_per_star) {
          tp.property_bound = false;
          tp.property = FreshPropertyVar();
          star.unbound_count += 1;
          ++have;
        }
      }
    }
  }

  void MaybeAddAggregate(GeneratedQuery* out) {
    if (!rng_->Chance(config_.aggregate_prob)) return;
    // Group and counted variables come from mandatory patterns only, so
    // every solution binds them and engine-side "incomplete solution"
    // skipping never diverges from the in-memory oracle.
    std::set<std::string> mandatory_vars;
    for (const TriplePattern& tp : out->patterns) {
      if (tp.optional) continue;
      for (const std::string& v : tp.Variables()) mandatory_vars.insert(v);
    }
    std::vector<std::string> vars(mandatory_vars.begin(),
                                  mandatory_vars.end());
    if (vars.size() < 2) return;
    AggregateSpec spec;
    size_t group_idx = rng_->Uniform(vars.size());
    spec.group_vars = {vars[group_idx]};
    size_t counted_idx = rng_->Uniform(vars.size());
    while (counted_idx == group_idx) counted_idx = rng_->Uniform(vars.size());
    spec.counted_var = vars[counted_idx];
    spec.count_var = std::string("n");
    spec.distinct = rng_->Chance(0.7);
    spec.min_count = rng_->Uniform(3);
    if (spec.Validate(*out->query).ok()) out->aggregate = std::move(spec);
  }

  const QueryGenConfig& config_;
  const GraphVocabulary& vocab_;
  Rng* rng_;
  std::vector<StarDraft> stars_;
  uint64_t var_counter_ = 0;
  uint64_t prop_counter_ = 0;
};

}  // namespace

GeneratedQuery GenerateQuery(const QueryGenConfig& config,
                             const GraphVocabulary& vocab, Rng* rng) {
  return QueryBuilder(config, vocab, rng).Build();
}

}  // namespace fuzz
}  // namespace rdfmr
