// Seeded random BGP query generation over a fuzz graph's vocabulary.
//
// Shapes are the ones the paper's engines support (src/query/pattern.h):
// star and chained-star BGPs whose stars connect through Object-Subject or
// Object-Object joins, with 0..k unbound-property triple patterns per
// star, OPTIONAL patterns (fresh variables only), CONTAINS object filters
// (partially-bound objects), constant objects, and an optional COUNT /
// GROUP BY / HAVING aggregate. Every query returned passed
// GraphPatternQuery::Create, so its star decomposition and join graph are
// valid by construction.

#ifndef RDFMR_TESTING_QUERY_GEN_H_
#define RDFMR_TESTING_QUERY_GEN_H_

#include <memory>
#include <optional>
#include <vector>

#include "common/random.h"
#include "query/aggregate.h"
#include "query/pattern.h"
#include "testing/graph_gen.h"

namespace rdfmr {
namespace fuzz {

struct QueryGenConfig {
  uint64_t max_stars = 3;
  uint64_t max_patterns_per_star = 3;
  /// Unbound-property density: probability a pattern's property position is
  /// a variable, capped at `max_unbound_per_star` per star.
  double unbound_prob = 0.35;
  uint64_t max_unbound_per_star = 2;
  /// At least this many unbound-property patterns across the query (the
  /// injected-bug tests pin this to 1 so every case exercises σ^βγ).
  uint64_t min_unbound = 0;
  double optional_prob = 0.15;
  double contains_prob = 0.12;
  double constant_object_prob = 0.15;
  /// Probability the case carries a COUNT/GROUP BY/HAVING aggregate.
  double aggregate_prob = 0.2;
};

/// \brief A generated query plus (sometimes) an aggregation constraint.
struct GeneratedQuery {
  std::vector<TriplePattern> patterns;
  std::shared_ptr<const GraphPatternQuery> query;
  std::optional<AggregateSpec> aggregate;
};

/// \brief Generates one random query against `vocab`. Deterministic given
/// the rng state; always returns a structurally valid query.
GeneratedQuery GenerateQuery(const QueryGenConfig& config,
                             const GraphVocabulary& vocab, Rng* rng);

}  // namespace fuzz
}  // namespace rdfmr

#endif  // RDFMR_TESTING_QUERY_GEN_H_
