// Tests for the statistics-based strategy advisor: its predictions must
// order the strategies the way the measured footprints do, and its φ_m
// recommendation must follow the paper's sizing guidance.

#include <gtest/gtest.h>

#include "engine/advisor.h"
#include "rdf/graph_stats.h"
#include "tests/test_util.h"

namespace rdfmr {
namespace {

using testing_util::MakeDfsWithBase;
using testing_util::RoomyCluster;
using testing_util::SmallDataset;

StrategyAdvice AdviceFor(const std::string& query_id,
                         const std::vector<Triple>& triples) {
  auto query = GetTestbedQuery(query_id);
  EXPECT_TRUE(query.ok());
  GraphStats stats = GraphStats::Compute(triples);
  return AdviseStrategy(**query, stats, RoomyCluster());
}

TEST(AdvisorTest, OrdersStrategiesLikeTheMeasurements) {
  std::vector<Triple> triples = SmallDataset(DatasetFamily::kBsbm);
  for (const std::string q : {"B1", "B3", "B4"}) {
    StrategyAdvice advice = AdviceFor(q, triples);
    EXPECT_LT(advice.lazy_star_bytes, advice.eager_star_bytes) << q;
    EXPECT_LT(advice.eager_star_bytes, advice.relational_star_bytes) << q;
  }
}

TEST(AdvisorTest, PredictionsTrackMeasuredStarPhase) {
  // Order-of-magnitude agreement with real executions (the advisor is a
  // planner heuristic, not a simulator).
  std::vector<Triple> triples = SmallDataset(DatasetFamily::kBsbm);
  auto dfs = MakeDfsWithBase(triples);
  ASSERT_NE(dfs, nullptr);
  auto query = GetTestbedQuery("B4");
  ASSERT_TRUE(query.ok());
  StrategyAdvice advice = AdviceFor("B4", triples);

  EngineOptions hive;
  hive.kind = EngineKind::kHive;
  EngineOptions lazy;
  lazy.kind = EngineKind::kNtgaLazy;
  auto hive_exec = RunQuery(dfs.get(), "base", *query, hive);
  auto lazy_exec = RunQuery(dfs.get(), "base", *query, lazy);
  ASSERT_TRUE(hive_exec.ok() && lazy_exec.ok());
  double measured_rel =
      static_cast<double>(hive_exec->stats.star_phase_write_bytes);
  double measured_lazy =
      static_cast<double>(lazy_exec->stats.star_phase_write_bytes);
  EXPECT_GT(advice.relational_star_bytes, measured_rel / 10);
  EXPECT_LT(advice.relational_star_bytes, measured_rel * 10);
  EXPECT_GT(advice.lazy_star_bytes, measured_lazy / 10);
  EXPECT_LT(advice.lazy_star_bytes, measured_lazy * 10);
  // The predicted ratio must point the same way as the measured one.
  EXPECT_GT(measured_rel, measured_lazy);
  EXPECT_GT(advice.relational_star_bytes, advice.lazy_star_bytes);
}

TEST(AdvisorTest, RedundancyPredictionIsHighForUnboundQueries) {
  std::vector<Triple> triples = SmallDataset(DatasetFamily::kBsbm);
  StrategyAdvice b0 = AdviceFor("B0", triples);
  StrategyAdvice b3 = AdviceFor("B3", triples);
  EXPECT_GT(b3.predicted_redundancy, b0.predicted_redundancy)
      << "double unbound patterns multiply the redundancy";
  EXPECT_GT(b3.predicted_redundancy, 0.5);
}

TEST(AdvisorTest, PhiOnlyForUnboundObjectJoins) {
  std::vector<Triple> triples = SmallDataset(DatasetFamily::kBsbm);
  EXPECT_GT(AdviceFor("B1", triples).phi_partitions, 1u)
      << "B1 joins on an unbound object";
  EXPECT_EQ(AdviceFor("B4", triples).phi_partitions, 1u)
      << "B4's join is subject-side; no partial unnest planned";
  EXPECT_EQ(AdviceFor("B0", triples).phi_partitions, 1u);
}

TEST(AdvisorTest, PhiGrowsWithInputSize) {
  std::vector<Triple> small = SmallDataset(DatasetFamily::kBsbm);
  std::vector<Triple> bigger = small;
  // Double the data by cloning with renamed subjects.
  for (const Triple& t : small) {
    bigger.emplace_back("x_" + t.subject, t.property, t.object);
  }
  uint32_t phi_small = AdviceFor("B1", small).phi_partitions;
  uint32_t phi_big = AdviceFor("B1", bigger).phi_partitions;
  EXPECT_GE(phi_big, phi_small);
}

TEST(AdvisorTest, RationaleMentionsTheDecision) {
  std::vector<Triple> triples = SmallDataset(DatasetFamily::kBsbm);
  StrategyAdvice advice = AdviceFor("B1", triples);
  EXPECT_NE(advice.rationale.find("TG_OptUnbJoin"), std::string::npos);
  EXPECT_EQ(advice.strategy, NtgaStrategy::kLazyAuto);
  StrategyAdvice plain = AdviceFor("B0", triples);
  EXPECT_NE(plain.rationale.find("plain lazy"), std::string::npos);
}

TEST(AdvisorTest, RecommendedPhiWorksEndToEnd) {
  std::vector<Triple> triples = SmallDataset(DatasetFamily::kBsbm);
  StrategyAdvice advice = AdviceFor("B1", triples);
  auto query = GetTestbedQuery("B1");
  ASSERT_TRUE(query.ok());
  auto dfs = MakeDfsWithBase(triples);
  ASSERT_NE(dfs, nullptr);
  EngineOptions options;
  options.kind = EngineKind::kNtgaLazy;
  options.phi_partitions = advice.phi_partitions;
  auto exec = RunQuery(dfs.get(), "base", *query, options);
  ASSERT_TRUE(exec.ok());
  EXPECT_TRUE(exec->stats.ok());
  EXPECT_FALSE(exec->answers.empty());
}

}  // namespace
}  // namespace rdfmr
