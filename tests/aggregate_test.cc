// Tests for the aggregation-constraint extension (the paper's future
// direction): spec validation, in-memory semantics, the SPARQL syntax, and
// cross-engine equivalence of the appended aggregation MR cycle.

#include <gtest/gtest.h>

#include "query/aggregate.h"
#include "query/matcher.h"
#include "query/sparql_parser.h"
#include "tests/test_util.h"

namespace rdfmr {
namespace {

using testing_util::AllEngineKinds;
using testing_util::MakeDfsWithBase;
using testing_util::SmallDataset;

GraphPatternQuery DegreeQuery() {
  auto q = ParseSparql("degree", R"(SELECT * WHERE {
    ?g <label> ?l . ?g ?p ?x .
  })");
  EXPECT_TRUE(q.ok());
  return q.MoveValueUnsafe();
}

AggregateSpec DegreeSpec(uint64_t min_count = 0, bool distinct = true) {
  AggregateSpec spec;
  spec.group_vars = {"g"};
  spec.counted_var = "p";
  spec.count_var = "n";
  spec.distinct = distinct;
  spec.min_count = min_count;
  return spec;
}

// ---- Spec validation -----------------------------------------------------------

TEST(AggregateSpecTest, ValidatesAgainstQueryVariables) {
  GraphPatternQuery q = DegreeQuery();
  EXPECT_TRUE(DegreeSpec().Validate(q).ok());

  AggregateSpec bad_group = DegreeSpec();
  bad_group.group_vars = {"nope"};
  EXPECT_FALSE(bad_group.Validate(q).ok());

  AggregateSpec no_group = DegreeSpec();
  no_group.group_vars.clear();
  EXPECT_FALSE(no_group.Validate(q).ok());

  AggregateSpec bad_counted = DegreeSpec();
  bad_counted.counted_var = "nope";
  EXPECT_FALSE(bad_counted.Validate(q).ok());

  AggregateSpec colliding = DegreeSpec();
  colliding.count_var = "x";  // already a pattern variable
  EXPECT_FALSE(colliding.Validate(q).ok());
}

// ---- In-memory semantics --------------------------------------------------------

TEST(AggregateTest, CountsDistinctEdgeLabels) {
  std::vector<Triple> triples = {
      {"g1", "label", "a"}, {"g1", "xGO", "t1"}, {"g1", "xGO", "t2"},
      {"g1", "xRef", "r1"}, {"g2", "label", "b"}, {"g2", "xGO", "t1"},
  };
  GraphPatternQuery q = DegreeQuery();
  // COUNT(DISTINCT ?p): g1 has {label, xGO, xRef} = 3; g2 has 2.
  SolutionSet result =
      EvaluateAggregateInMemory(q, DegreeSpec(/*min_count=*/0), triples);
  ASSERT_EQ(result.size(), 2u);
  for (const Solution& s : result) {
    if (*s.Get("g") == "g1") {
      EXPECT_EQ(*s.Get("n"), "3");
    } else {
      EXPECT_EQ(*s.Get("n"), "2");
    }
  }
}

TEST(AggregateTest, HavingFiltersGroups) {
  std::vector<Triple> triples = {
      {"g1", "label", "a"}, {"g1", "xGO", "t1"}, {"g1", "xRef", "r1"},
      {"g2", "label", "b"},
  };
  GraphPatternQuery q = DegreeQuery();
  SolutionSet result =
      EvaluateAggregateInMemory(q, DegreeSpec(/*min_count=*/3), triples);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(*result.begin()->Get("g"), "g1");
}

TEST(AggregateTest, NonDistinctCountsSolutionRows) {
  std::vector<Triple> triples = {
      {"g1", "label", "a"}, {"g1", "xGO", "t1"}, {"g1", "xGO", "t2"},
  };
  GraphPatternQuery q = DegreeQuery();
  // Solutions for g1: (label,a), (xGO,t1), (xGO,t2) -> 3 rows, but only 2
  // distinct properties.
  SolutionSet rows = EvaluateAggregateInMemory(
      q, DegreeSpec(0, /*distinct=*/false), triples);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(*rows.begin()->Get("n"), "3");
  SolutionSet distinct = EvaluateAggregateInMemory(
      q, DegreeSpec(0, /*distinct=*/true), triples);
  EXPECT_EQ(*distinct.begin()->Get("n"), "2");
}

TEST(AggregateTest, MultipleGroupVars) {
  std::vector<Triple> triples = {
      {"g1", "label", "a"}, {"g1", "xGO", "t1"}, {"g1", "xGO", "t2"},
  };
  GraphPatternQuery q = DegreeQuery();
  AggregateSpec spec;
  spec.group_vars = {"g", "l"};
  spec.counted_var = "x";
  spec.count_var = "n";
  SolutionSet result = EvaluateAggregateInMemory(q, spec, triples);
  ASSERT_EQ(result.size(), 1u);
  const Solution& s = *result.begin();
  EXPECT_EQ(*s.Get("g"), "g1");
  EXPECT_EQ(*s.Get("l"), "a");
  EXPECT_EQ(*s.Get("n"), "3");  // objects a, t1, t2
}

// ---- SPARQL syntax ---------------------------------------------------------------

TEST(AggregateParseTest, FullSyntax) {
  auto parsed = ParseSparqlQuery("agg", R"(
      SELECT ?g (COUNT(DISTINCT ?p) AS ?n)
      WHERE { ?g <label> ?l . ?g ?p ?x . }
      GROUP BY ?g
      HAVING (COUNT(DISTINCT ?p) >= 3))");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_TRUE(parsed->aggregate.has_value());
  const AggregateSpec& spec = *parsed->aggregate;
  EXPECT_EQ(spec.group_vars, (std::vector<std::string>{"g"}));
  EXPECT_EQ(spec.counted_var, "p");
  EXPECT_EQ(spec.count_var, "n");
  EXPECT_TRUE(spec.distinct);
  EXPECT_EQ(spec.min_count, 3u);
}

TEST(AggregateParseTest, ProjectionDefaultsGroupBy) {
  auto parsed = ParseSparqlQuery("agg", R"(
      SELECT ?g ?l (COUNT(?x) AS ?n)
      WHERE { ?g <label> ?l . ?g ?p ?x . })");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_TRUE(parsed->aggregate.has_value());
  EXPECT_EQ(parsed->aggregate->group_vars,
            (std::vector<std::string>{"g", "l"}));
  EXPECT_FALSE(parsed->aggregate->distinct);
  EXPECT_EQ(parsed->aggregate->min_count, 0u);
}

TEST(AggregateParseTest, Errors) {
  // GROUP BY without COUNT.
  EXPECT_FALSE(ParseSparqlQuery("e", R"(
      SELECT ?g WHERE { ?g <p> ?x . } GROUP BY ?g)")
                   .ok());
  // HAVING with a different expression than projected.
  EXPECT_FALSE(ParseSparqlQuery("e", R"(
      SELECT ?g (COUNT(DISTINCT ?p) AS ?n)
      WHERE { ?g ?p ?x . ?g <label> ?l . }
      HAVING (COUNT(?x) >= 2))")
                   .ok());
  // Unknown counted variable.
  EXPECT_FALSE(ParseSparqlQuery("e", R"(
      SELECT ?g (COUNT(?zzz) AS ?n) WHERE { ?g <p> ?x . })")
                   .ok());
  // ParseSparql rejects aggregates politely.
  EXPECT_FALSE(ParseSparql("e", R"(
      SELECT ?g (COUNT(?x) AS ?n) WHERE { ?g <p> ?x . })")
                   .ok());
}

// ---- Cross-engine equivalence ------------------------------------------------------

struct AggCase {
  std::string bgp_id;  // testbed BGP to aggregate over
  EngineKind engine;
};

std::string AggCaseName(const ::testing::TestParamInfo<AggCase>& info) {
  std::string name =
      info.param.bgp_id + "_" + EngineKindToString(info.param.engine);
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

class AggregateEngineTest : public ::testing::TestWithParam<AggCase> {};

TEST_P(AggregateEngineTest, MatchesOracle) {
  const AggCase& param = GetParam();
  auto entry = GetTestbedEntry(param.bgp_id);
  ASSERT_TRUE(entry.ok());
  auto query = GetTestbedQuery(param.bgp_id);
  ASSERT_TRUE(query.ok());

  // Group by every star subject; count the first unbound property's
  // matches (distinct), with a mild HAVING threshold.
  AggregateSpec spec;
  for (const StarPattern& star : (*query)->stars()) {
    spec.group_vars.push_back(star.subject_var);
  }
  ASSERT_TRUE((*query)->HasUnbound());
  for (const StarPattern& star : (*query)->stars()) {
    std::vector<size_t> unbound = star.UnboundIndexes();
    if (!unbound.empty()) {
      spec.counted_var = star.patterns[unbound[0]].property;
      break;
    }
  }
  spec.count_var = "n";
  spec.distinct = true;
  spec.min_count = 2;

  std::vector<Triple> triples = SmallDataset(entry->dataset);
  SolutionSet oracle = EvaluateAggregateInMemory(**query, spec, triples);

  auto dfs = MakeDfsWithBase(triples);
  ASSERT_NE(dfs, nullptr);
  EngineOptions options;
  options.kind = param.engine;
  options.phi_partitions = 16;
  auto exec = RunAggregateQuery(dfs.get(), "base", *query, spec, options);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  ASSERT_TRUE(exec->stats.ok()) << exec->stats.status.ToString();
  EXPECT_TRUE(exec->answers == oracle)
      << param.bgp_id << " on " << EngineKindToString(param.engine)
      << ": got " << exec->answers.size() << ", oracle "
      << oracle.size();
  // The aggregation adds exactly one MR cycle.
  EngineOptions plain = options;
  auto base_exec = RunQuery(dfs.get(), "base", *query, plain);
  ASSERT_TRUE(base_exec.ok());
  EXPECT_EQ(exec->stats.mr_cycles, base_exec->stats.mr_cycles + 1);
}

std::vector<AggCase> AggCases() {
  std::vector<AggCase> cases;
  for (const char* id : {"B1", "B4", "A1", "A3", "C1", "C4"}) {
    for (EngineKind kind : AllEngineKinds()) {
      cases.push_back(AggCase{id, kind});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Testbed, AggregateEngineTest,
                         ::testing::ValuesIn(AggCases()), AggCaseName);

TEST(AggregateEngineTest, CombinerCutsShuffleWithoutChangingAnswers) {
  std::vector<Triple> triples = SmallDataset(DatasetFamily::kBio2Rdf);
  auto query = GetTestbedQuery("A1");
  ASSERT_TRUE(query.ok());
  AggregateSpec spec;
  spec.group_vars = {"g"};
  spec.counted_var = "up";
  spec.count_var = "n";
  spec.min_count = 1;

  auto dfs = MakeDfsWithBase(triples);
  ASSERT_NE(dfs, nullptr);
  EngineOptions with;
  with.kind = EngineKind::kNtgaLazy;
  with.aggregation_combiner = true;
  EngineOptions without = with;
  without.aggregation_combiner = false;
  auto a = RunAggregateQuery(dfs.get(), "base", *query, spec, with);
  auto b = RunAggregateQuery(dfs.get(), "base", *query, spec, without);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(a->stats.ok() && b->stats.ok());
  EXPECT_EQ(a->answers, b->answers);
  EXPECT_LT(a->stats.jobs.back().map_output_bytes,
            b->stats.jobs.back().map_output_bytes)
      << "map-side dedup must shrink the aggregation shuffle";
}

TEST(AggregateEngineTest, NtgaReadsLessIntoTheAggregationCycle) {
  // The aggregation cycle consumes the engine's final output; NTGA's
  // nested representation makes that input much smaller.
  std::vector<Triple> triples = SmallDataset(DatasetFamily::kBio2Rdf);
  auto query = GetTestbedQuery("A1");
  ASSERT_TRUE(query.ok());
  AggregateSpec spec;
  spec.group_vars = {"g"};
  spec.counted_var = "up";
  spec.count_var = "n";
  spec.min_count = 2;

  auto dfs = MakeDfsWithBase(triples);
  ASSERT_NE(dfs, nullptr);
  EngineOptions hive;
  hive.kind = EngineKind::kHive;
  EngineOptions lazy;
  lazy.kind = EngineKind::kNtgaLazy;
  auto hive_exec = RunAggregateQuery(dfs.get(), "base", *query, spec, hive);
  auto lazy_exec = RunAggregateQuery(dfs.get(), "base", *query, spec, lazy);
  ASSERT_TRUE(hive_exec.ok() && lazy_exec.ok());
  ASSERT_TRUE(hive_exec->stats.ok() && lazy_exec->stats.ok());
  EXPECT_EQ(hive_exec->answers, lazy_exec->answers);
  const JobMetrics& hive_agg = hive_exec->stats.jobs.back();
  const JobMetrics& lazy_agg = lazy_exec->stats.jobs.back();
  EXPECT_LT(lazy_agg.input_bytes, hive_agg.input_bytes)
      << "nested triplegroups feed the count without materializing "
         "combinations";
}

}  // namespace
}  // namespace rdfmr
