// Tests for shared-scan batch execution: a batch of queries must produce
// exactly the per-query answers while scanning and grouping the input
// once.

#include <gtest/gtest.h>

#include "query/matcher.h"
#include "tests/test_util.h"

namespace rdfmr {
namespace {

using testing_util::MakeDfsWithBase;
using testing_util::SmallDataset;

std::vector<std::shared_ptr<const GraphPatternQuery>> BsbmBatch() {
  std::vector<std::shared_ptr<const GraphPatternQuery>> queries;
  for (const char* id : {"B0", "B1", "B4"}) {
    auto q = GetTestbedQuery(id);
    EXPECT_TRUE(q.ok());
    queries.push_back(*q);
  }
  return queries;
}

TEST(BatchTest, AnswersMatchIndividualRuns) {
  std::vector<Triple> triples = SmallDataset(DatasetFamily::kBsbm);
  auto dfs = MakeDfsWithBase(triples);
  ASSERT_NE(dfs, nullptr);
  auto queries = BsbmBatch();

  EngineOptions options;
  options.kind = EngineKind::kNtgaLazy;
  options.phi_partitions = 16;
  auto batch = RunQueryBatch(dfs.get(), "base", queries, options);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_TRUE(batch->stats.ok()) << batch->stats.status.ToString();
  ASSERT_EQ(batch->answers.size(), queries.size());

  for (size_t q = 0; q < queries.size(); ++q) {
    SolutionSet oracle = EvaluateQueryInMemory(*queries[q], triples);
    EXPECT_TRUE(batch->answers[q] == oracle)
        << "query " << queries[q]->name() << ": batch "
        << batch->answers[q].size() << " vs oracle " << oracle.size();
  }
}

TEST(BatchTest, SharesOneScanAndOneGroupingCycle) {
  std::vector<Triple> triples = SmallDataset(DatasetFamily::kBsbm);
  auto dfs = MakeDfsWithBase(triples);
  ASSERT_NE(dfs, nullptr);
  auto queries = BsbmBatch();

  EngineOptions options;
  options.kind = EngineKind::kNtgaLazy;
  auto batch = RunQueryBatch(dfs.get(), "base", queries, options);
  ASSERT_TRUE(batch.ok() && batch->stats.ok());

  EXPECT_EQ(batch->stats.full_scans, 1u)
      << "the whole batch scans the triple relation once";
  // One grouping job plus one join job per two-star query.
  EXPECT_EQ(batch->stats.mr_cycles, 1u + queries.size());

  // Individually the three queries would scan three times and group
  // thrice; the shared plan must read and shuffle strictly less.
  uint64_t individual_reads = 0, individual_shuffle = 0;
  for (const auto& query : queries) {
    auto exec = RunQuery(dfs.get(), "base", query, options);
    ASSERT_TRUE(exec.ok() && exec->stats.ok());
    individual_reads += exec->stats.hdfs_read_bytes;
    individual_shuffle += exec->stats.shuffle_bytes;
  }
  EXPECT_LT(batch->stats.hdfs_read_bytes, individual_reads);
  EXPECT_LT(batch->stats.shuffle_bytes, individual_shuffle);
}

TEST(BatchTest, MixedDatasetQueriesAndStrategies) {
  std::vector<Triple> triples = SmallDataset(DatasetFamily::kBio2Rdf);
  auto dfs = MakeDfsWithBase(triples);
  ASSERT_NE(dfs, nullptr);
  std::vector<std::shared_ptr<const GraphPatternQuery>> queries;
  for (const char* id : {"A1", "A3", "A5"}) {
    auto q = GetTestbedQuery(id);
    ASSERT_TRUE(q.ok());
    queries.push_back(*q);
  }
  for (EngineKind kind :
       {EngineKind::kNtgaEager, EngineKind::kNtgaLazyFull,
        EngineKind::kNtgaLazyPartial, EngineKind::kNtgaLazy}) {
    EngineOptions options;
    options.kind = kind;
    options.phi_partitions = 8;
    auto batch = RunQueryBatch(dfs.get(), "base", queries, options);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    ASSERT_TRUE(batch->stats.ok()) << EngineKindToString(kind);
    for (size_t q = 0; q < queries.size(); ++q) {
      SolutionSet oracle = EvaluateQueryInMemory(*queries[q], triples);
      EXPECT_TRUE(batch->answers[q] == oracle)
          << queries[q]->name() << " under " << EngineKindToString(kind);
    }
  }
}

TEST(BatchTest, SingleQueryBatchEqualsPlainRun) {
  std::vector<Triple> triples = SmallDataset(DatasetFamily::kBsbm);
  auto dfs = MakeDfsWithBase(triples);
  ASSERT_NE(dfs, nullptr);
  auto q = GetTestbedQuery("B1");
  ASSERT_TRUE(q.ok());
  EngineOptions options;
  options.kind = EngineKind::kNtgaLazy;
  auto batch = RunQueryBatch(dfs.get(), "base", {*q}, options);
  auto plain = RunQuery(dfs.get(), "base", *q, options);
  ASSERT_TRUE(batch.ok() && plain.ok());
  ASSERT_TRUE(batch->stats.ok() && plain->stats.ok());
  EXPECT_EQ(batch->answers[0], plain->answers);
  EXPECT_EQ(batch->stats.mr_cycles, plain->stats.mr_cycles);
}

TEST(BatchTest, RejectsRelationalEnginesAndEmptyBatches) {
  std::vector<Triple> triples = SmallDataset(DatasetFamily::kBsbm);
  auto dfs = MakeDfsWithBase(triples);
  ASSERT_NE(dfs, nullptr);
  auto q = GetTestbedQuery("B0");
  ASSERT_TRUE(q.ok());
  EngineOptions pig;
  pig.kind = EngineKind::kPig;
  EXPECT_FALSE(RunQueryBatch(dfs.get(), "base", {*q}, pig).ok());
  EngineOptions lazy;
  lazy.kind = EngineKind::kNtgaLazy;
  EXPECT_FALSE(RunQueryBatch(dfs.get(), "base", {}, lazy).ok());
}

TEST(BatchTest, CleansUpAllTemporaries) {
  std::vector<Triple> triples = SmallDataset(DatasetFamily::kBsbm);
  auto dfs = MakeDfsWithBase(triples);
  ASSERT_NE(dfs, nullptr);
  EngineOptions options;
  options.kind = EngineKind::kNtgaLazy;
  auto batch = RunQueryBatch(dfs.get(), "base", BsbmBatch(), options);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(dfs->ListFiles(), (std::vector<std::string>{"base"}));
}

}  // namespace
}  // namespace rdfmr
