// Unit tests for the common layer: Status/Result, string helpers (with
// escaping roundtrip properties), deterministic RNG, and stable hashing.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/thread_pool.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/strings.h"

namespace rdfmr {
namespace {

// ---- Status / Result --------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.message(), "");
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::OutOfSpace("disk full");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsOutOfSpace());
  EXPECT_EQ(st.message(), "disk full");
  EXPECT_EQ(st.ToString(), "OutOfSpace: disk full");
}

TEST(StatusTest, AllConstructorsSetMatchingCode) {
  EXPECT_EQ(Status::InvalidArgument("x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::ExecutionError("x").code(),
            StatusCode::kExecutionError);
  EXPECT_EQ(Status::NotImplemented("x").code(),
            StatusCode::kNotImplemented);
  EXPECT_EQ(Status::Unknown("x").code(), StatusCode::kUnknown);
}

TEST(StatusTest, WithContextPrepends) {
  Status st = Status::NotFound("file f").WithContext("loading base");
  EXPECT_EQ(st.message(), "loading base: file f");
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_TRUE(Status::OK().WithContext("anything").ok());
}

TEST(StatusTest, CopySharesState) {
  Status a = Status::IoError("oops");
  Status b = a;
  EXPECT_EQ(b.ToString(), a.ToString());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("gone");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, MoveValueUnsafe) {
  Result<std::string> r = std::string("payload");
  std::string v = r.MoveValueUnsafe();
  EXPECT_EQ(v, "payload");
}

Result<int> HalveEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterEven(int x) {
  RDFMR_ASSIGN_OR_RETURN(int half, HalveEven(x));
  return HalveEven(half);
}

TEST(ResultTest, AssignOrReturnMacroPropagates) {
  Result<int> ok = QuarterEven(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  Result<int> bad = QuarterEven(6);  // 6/2 = 3, odd at the second step
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsInvalidArgument());
}

// ---- Strings ---------------------------------------------------------------

TEST(StringsTest, SplitBasics) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringsTest, SplitNLimitsFields) {
  EXPECT_EQ(SplitN("a|b|c", '|', 2),
            (std::vector<std::string>{"a", "b|c"}));
  EXPECT_EQ(SplitN("a|b|c", '|', 5),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitN("abc", '|', 2), (std::vector<std::string>{"abc"}));
}

TEST(StringsTest, JoinInvertsSplit) {
  std::vector<std::string> parts = {"x", "", "yz"};
  EXPECT_EQ(Split(Join(parts, ';'), ';'), parts);
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  a b \t\n"), "a b");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \t "), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_FALSE(StartsWith("he", "hello"));
  EXPECT_TRUE(EndsWith("hello", "llo"));
  EXPECT_FALSE(EndsWith("llo", "hello"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

class EscapeRoundtripTest
    : public ::testing::TestWithParam<std::string> {};

TEST_P(EscapeRoundtripTest, FieldRoundtrips) {
  const std::string& input = GetParam();
  for (char sep : {'\t', ',', ';', '\x1F', '\x1D'}) {
    std::string escaped = EscapeField(input, sep);
    EXPECT_EQ(escaped.find(sep), std::string::npos)
        << "escaped field may not contain the separator";
    EXPECT_EQ(UnescapeField(escaped, sep), input);
  }
}

TEST_P(EscapeRoundtripTest, JoinSplitRoundtrips) {
  const std::string& input = GetParam();
  std::vector<std::string> fields = {input, "plain", input + input, ""};
  for (char sep : {'\t', ',', '\x1F'}) {
    EXPECT_EQ(SplitEscaped(JoinEscaped(fields, sep), sep), fields);
  }
}

INSTANTIATE_TEST_SUITE_P(
    NastyStrings, EscapeRoundtripTest,
    ::testing::Values("", "simple", "with\ttab", "with,comma",
                      "back\\slash", "\\", "\\\\", "trailing\\",
                      "new\nline", "\x1F\x1D\x1E", "a\tb\\c,d;e",
                      "unicode \xE2\x8B\x88 join"));

TEST(StringsTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(0), "0 B");
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(2048), "2.00 KB");
  EXPECT_EQ(HumanBytes(3ULL << 20), "3.00 MB");
  EXPECT_EQ(HumanBytes(5ULL << 30), "5.00 GB");
}

TEST(StringsTest, Padding) {
  EXPECT_EQ(PadRight("ab", 4), "ab  ");
  EXPECT_EQ(PadLeft("ab", 4), "  ab");
  EXPECT_EQ(PadRight("abcd", 2), "abcd");
  EXPECT_EQ(PadLeft("abcd", 2), "abcd");
}

TEST(StringsTest, StringFormat) {
  EXPECT_EQ(StringFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StringFormat("%.2f", 1.005), "1.00");
  EXPECT_EQ(StringFormat("empty"), "empty");
}

// ---- Random ----------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool differs = false;
  for (int i = 0; i < 10; ++i) {
    if (a.Next() != b.Next()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(RngTest, UniformInBounds) {
  Rng rng(99);
  for (uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.Uniform(bound), bound);
    }
  }
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(5);
  std::set<int64_t> seen;
  for (int i = 0; i < 300; ++i) {
    int64_t v = rng.UniformRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u) << "all 5 values should appear in 300 draws";
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(77);
  for (int i = 0; i < 500; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

TEST(RngTest, ForkIndependentButDeterministic) {
  Rng a(42);
  Rng fork1 = a.Fork();
  Rng b(42);
  Rng fork2 = b.Fork();
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(fork1.Next(), fork2.Next());
  }
}

TEST(ZipfTest, SamplesInRange) {
  ZipfSampler zipf(50, 1.1);
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(zipf.Sample(&rng), 50u);
  }
}

TEST(ZipfTest, HeadIsHot) {
  ZipfSampler zipf(100, 1.2);
  Rng rng(13);
  int head = 0, tail = 0;
  for (int i = 0; i < 5000; ++i) {
    uint64_t v = zipf.Sample(&rng);
    if (v < 10) ++head;
    if (v >= 90) ++tail;
  }
  EXPECT_GT(head, 4 * tail)
      << "the first decile must be far more probable than the last";
}

TEST(ZipfTest, SingleElement) {
  ZipfSampler zipf(1, 1.0);
  Rng rng(17);
  EXPECT_EQ(zipf.Sample(&rng), 0u);
}

// ---- Hash ------------------------------------------------------------------

TEST(HashTest, Fnv1aGoldenValues) {
  // Stable across platforms and runs — the MR partitioner depends on it.
  EXPECT_EQ(Fnv1a64(""), 0xCBF29CE484222325ULL);
  EXPECT_EQ(Fnv1a64("a"), 0xAF63DC4C8601EC8CULL);
  EXPECT_EQ(Fnv1a64("foobar"), 0x85944171F73967E8ULL);
}

TEST(HashTest, DifferentInputsDiffer) {
  EXPECT_NE(Fnv1a64("gene9"), Fnv1a64("gene10"));
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

// ---- ThreadPool ------------------------------------------------------------

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexExactlyOnce) {
  for (uint32_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.num_threads(), threads);
    std::vector<std::atomic<int>> visits(1000);
    pool.ParallelFor(visits.size(),
                     [&](size_t i) { visits[i].fetch_add(1); });
    for (size_t i = 0; i < visits.size(); ++i) {
      EXPECT_EQ(visits[i].load(), 1) << "index " << i;
    }
  }
}

TEST(ThreadPoolTest, ParallelForHandlesEmptyAndTinyRanges) {
  ThreadPool pool(4);
  pool.ParallelFor(0, [](size_t) { FAIL() << "must not be called"; });
  std::atomic<int> calls{0};
  pool.ParallelFor(1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPoolTest, SubmittedTasksAllRunBeforeDestruction) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1); });
    }
  }  // destructor drains the queue and joins
  EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPoolTest, PerIndexSlotsMergeDeterministically) {
  // The runtime's pattern: each index writes its own slot; the merged
  // result is identical for any thread count.
  auto run = [](uint32_t threads) {
    ThreadPool pool(threads);
    std::vector<uint64_t> slots(500);
    pool.ParallelFor(slots.size(),
                     [&](size_t i) { slots[i] = Fnv1a64(std::to_string(i)); });
    return slots;
  };
  std::vector<uint64_t> sequential = run(1);
  EXPECT_EQ(run(2), sequential);
  EXPECT_EQ(run(8), sequential);
}

// ---- Logging ---------------------------------------------------------------

TEST(LoggingTest, LevelRoundtrip) {
  LogLevel prev = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  RDFMR_LOG(Info) << "suppressed message";  // must not crash
  SetLogLevel(prev);
}

}  // namespace
}  // namespace rdfmr
