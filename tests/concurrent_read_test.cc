// Concurrency regression tests (run under TSan by tools/check.sh): the
// Dictionary's shared-lock read paths must stay clean while writers
// intern, and two threads querying one loaded dataset through the
// QueryService — sharing a single SimDfs base — must race-freely produce
// the same answers as a direct single-threaded RunQuery.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "rdf/dictionary.h"
#include "service/query_service.h"
#include "tests/test_util.h"

namespace rdfmr {
namespace {

using testing_util::RoomyCluster;
using testing_util::SmallDataset;

TEST(ConcurrentReadTest, DictionaryInternsAndReadsRaceFree) {
  Dictionary dictionary;
  // Seed some terms every thread will read while others intern.
  constexpr int kShared = 64;
  for (int i = 0; i < kShared; ++i) {
    dictionary.Intern("shared-" + std::to_string(i));
  }

  constexpr int kThreads = 4;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&dictionary, t]() {
      for (int i = 0; i < kIters; ++i) {
        // Interleave writes (shared and thread-unique terms) with the
        // shared-lock read paths: Lookup, At, size, StringBytes.
        const std::string shared = "shared-" + std::to_string(i % kShared);
        uint32_t id = dictionary.Intern(shared);
        EXPECT_EQ(dictionary.At(id), shared);
        dictionary.Intern("thread-" + std::to_string(t) + "-" +
                          std::to_string(i));
        auto looked_up = dictionary.Lookup(shared);
        ASSERT_TRUE(looked_up.ok());
        EXPECT_EQ(*looked_up, id);
        EXPECT_GE(dictionary.size(), static_cast<size_t>(kShared));
        EXPECT_GT(dictionary.StringBytes(), 0u);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  // Every term interned exactly once: 64 shared + 4 x 2000 unique.
  EXPECT_EQ(dictionary.size(),
            static_cast<size_t>(kShared + kThreads * kIters));
  for (int i = 0; i < kShared; ++i) {
    const std::string term = "shared-" + std::to_string(i);
    auto id = dictionary.Lookup(term);
    ASSERT_TRUE(id.ok());
    EXPECT_EQ(dictionary.At(*id), term);
  }
}

TEST(ConcurrentReadTest, TwoThreadsQueryOneLoadedDataset) {
  const std::vector<Triple> triples = SmallDataset(DatasetFamily::kBsbm);

  EngineOptions options;
  options.kind = EngineKind::kNtgaLazy;
  std::vector<std::shared_ptr<const GraphPatternQuery>> queries;
  std::vector<SolutionSet> expected;
  {
    auto dfs = testing_util::MakeDfsWithBase(triples);
    ASSERT_NE(dfs, nullptr);
    for (const char* id : {"B0", "B1"}) {
      auto query = GetTestbedQuery(id);
      ASSERT_TRUE(query.ok());
      auto direct = RunQuery(dfs.get(), "base", *query, options);
      ASSERT_TRUE(direct.ok());
      queries.push_back(*query);
      expected.push_back(direct->answers);
    }
  }

  service::ServiceConfig config;
  config.cluster = RoomyCluster();
  config.max_concurrent = 2;
  service::QueryService query_service(config);
  ASSERT_TRUE(query_service.LoadDataset("bsbm", triples).ok());

  // Both threads read the one shared base concurrently; bypassing the
  // result cache forces a real engine execution per iteration.
  constexpr int kIters = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < kIters; ++i) {
        service::ServiceRequest request;
        request.dataset = "bsbm";
        request.query = queries[t];
        request.options = options;
        request.use_result_cache = false;
        service::ServiceResponse response = query_service.Query(request);
        ASSERT_TRUE(response.ok()) << response.status.ToString();
        ASSERT_TRUE(response.stats.ok());
        EXPECT_EQ(response.answer_set(), expected[t])
            << "thread " << t << " iteration " << i;
      }
    });
  }
  for (auto& thread : threads) thread.join();

  service::ServiceStatsSnapshot stats = query_service.Stats();
  EXPECT_EQ(stats.served, static_cast<uint64_t>(2 * kIters));
  EXPECT_EQ(stats.failed, 0u);
}

}  // namespace
}  // namespace rdfmr
