// Tests for the synthetic dataset generators and the testbed catalog:
// determinism, the structural properties the paper's evaluation depends on
// (multi-valuedness, skewed multiplicity, query-relevant tokens), and the
// catalog queries' parseability and non-vacuousness.

#include <gtest/gtest.h>

#include <set>

#include "datagen/bio2rdf.h"
#include "datagen/bsbm.h"
#include "datagen/btc.h"
#include "datagen/dbpedia.h"
#include "datagen/testbed.h"
#include "query/matcher.h"
#include "rdf/graph_stats.h"
#include "tests/test_util.h"

namespace rdfmr {
namespace {

TEST(BsbmTest, DeterministicForSeed) {
  BsbmConfig config;
  config.num_products = 50;
  EXPECT_EQ(GenerateBsbm(config), GenerateBsbm(config));
  config.seed += 1;
  EXPECT_NE(GenerateBsbm(config), GenerateBsbm(BsbmConfig{}));
}

TEST(BsbmTest, ProductsCarryTheQueriedProperties) {
  BsbmConfig config;
  config.num_products = 40;
  GraphStats stats = GraphStats::Compute(GenerateBsbm(config));
  for (const char* property :
       {bsbm::kLabel, bsbm::kType, bsbm::kProducer, bsbm::kProdFeature,
        bsbm::kPropertyNum1, bsbm::kPropertyNum2, bsbm::kPropertyTex1,
        bsbm::kProduct, bsbm::kVendor, bsbm::kPrice, bsbm::kReviewFor,
        bsbm::kTitle, bsbm::kFeatureLabel, bsbm::kFeatureType}) {
    EXPECT_GT(stats.ForProperty(property).triple_count, 0u)
        << "missing property " << property;
  }
}

TEST(BsbmTest, ProdFeatureIsMultiValuedWithinBounds) {
  BsbmConfig config;
  config.num_products = 60;
  config.min_features_per_product = 3;
  config.max_features_per_product = 9;
  GraphStats stats = GraphStats::Compute(GenerateBsbm(config));
  PropertyStats pf = stats.ForProperty(bsbm::kProdFeature);
  EXPECT_TRUE(pf.multi_valued());
  EXPECT_LE(pf.max_multiplicity, 9u);
  EXPECT_GE(pf.avg_multiplicity, 2.0)
      << "duplicated draws aside, multiplicity should stay near the range";
}

TEST(BsbmTest, SelectiveTokensExist) {
  BsbmConfig config;
  config.num_products = 200;
  std::vector<Triple> triples = GenerateBsbm(config);
  size_t gold = 0, awful = 0, labels = 0, titles = 0;
  for (const Triple& t : triples) {
    if (t.property == bsbm::kLabel &&
        t.subject.find("product") == 0) {
      ++labels;
      if (t.object.find("gold") != std::string::npos) ++gold;
    }
    if (t.property == bsbm::kTitle) {
      ++titles;
      if (t.object.find("awful") != std::string::npos) ++awful;
    }
  }
  EXPECT_GT(gold, 0u);
  EXPECT_LT(gold, labels / 4) << "the gold filter must stay selective";
  EXPECT_GT(awful, 0u);
  EXPECT_LT(awful, titles / 4);
}

TEST(BsbmTest, ScaleIsLinearInProducts) {
  BsbmConfig small, large;
  small.num_products = 50;
  large.num_products = 100;
  size_t s = GenerateBsbm(small).size();
  size_t l = GenerateBsbm(large).size();
  EXPECT_GT(l, static_cast<size_t>(1.6 * s));
  EXPECT_LT(l, static_cast<size_t>(2.4 * s));
}

TEST(Bio2RdfTest, DeterministicAndDeduplicated) {
  Bio2RdfConfig config;
  config.num_genes = 60;
  std::vector<Triple> a = GenerateBio2Rdf(config);
  EXPECT_EQ(a, GenerateBio2Rdf(config));
  std::set<Triple> distinct(a.begin(), a.end());
  EXPECT_EQ(distinct.size(), a.size()) << "set semantics";
}

TEST(Bio2RdfTest, MultiplicityIsSkewedAndBounded) {
  Bio2RdfConfig config;
  config.num_genes = 150;
  config.max_multiplicity = 25;
  GraphStats stats = GraphStats::Compute(GenerateBio2Rdf(config));
  PropertyStats xgo = stats.ForProperty(bio::kXGo);
  EXPECT_TRUE(xgo.multi_valued());
  EXPECT_LE(xgo.max_multiplicity, 25u);
  EXPECT_GE(xgo.max_multiplicity, 8u)
      << "hot genes should approach the multiplicity knob";
  EXPECT_LT(xgo.avg_multiplicity, xgo.max_multiplicity / 2.0)
      << "the head must be much hotter than the average (Zipf-like)";
}

TEST(Bio2RdfTest, QueryAnchorsPresent) {
  Bio2RdfConfig config;
  config.num_genes = 200;
  config.hexokinase_fraction = 0.05;
  config.nur77_link_fraction = 0.1;
  std::vector<Triple> triples = GenerateBio2Rdf(config);
  bool hexo = false, nur77_target = false, nur77_link = false;
  for (const Triple& t : triples) {
    if (t.property == bio::kLabel &&
        t.object.find("hexokinase") != std::string::npos) {
      hexo = true;
    }
    if (t.subject == "gene_nur77" && t.property == bio::kLabel) {
      nur77_target = true;
    }
    if (t.object == "gene_nur77") nur77_link = true;
  }
  EXPECT_TRUE(hexo);
  EXPECT_TRUE(nur77_target);
  EXPECT_TRUE(nur77_link);
}

TEST(DbpediaTest, HeterogeneousAndMultiValued) {
  DbpediaConfig config;
  config.num_entities = 400;
  GraphStats stats = GraphStats::Compute(GenerateDbpedia(config));
  EXPECT_GT(stats.MultiValuedFraction(), 0.45)
      << "the paper: >45% of DBpedia/BTC properties are multi-valued";
  // All the queried classes exist.
  std::vector<Triple> triples = GenerateDbpedia(config);
  std::set<std::string> classes;
  for (const Triple& t : triples) {
    if (t.property == dbp::kType) classes.insert(t.object);
  }
  EXPECT_TRUE(classes.count(dbp::kScientist));
  EXPECT_TRUE(classes.count(dbp::kCity));
  EXPECT_TRUE(classes.count(dbp::kTvSeries));
}

TEST(DbpediaTest, ScientistsLinkToCitiesThroughSeveralProperties) {
  DbpediaConfig config;
  config.num_entities = 500;
  std::vector<Triple> triples = GenerateDbpedia(config);
  std::set<std::string> cities;
  for (const Triple& t : triples) {
    if (t.property == dbp::kType && t.object == dbp::kCity) {
      cities.insert(t.subject);
    }
  }
  std::set<std::string> linking_properties;
  for (const Triple& t : triples) {
    if (cities.count(t.object) > 0 && t.property != dbp::kType) {
      linking_properties.insert(t.property);
    }
  }
  EXPECT_GE(linking_properties.size(), 3u)
      << "the 'scientists related to a city in some way' scenario needs "
         "several distinct edge labels";
}

TEST(BtcTest, MixesDomainsAndCrossLinks) {
  BtcConfig config;
  config.num_dbpedia_entities = 200;
  config.num_genes = 50;
  config.num_cross_links = 80;
  std::vector<Triple> triples = GenerateBtc(config);
  bool has_dbp = false, has_bio = false, has_link = false;
  for (const Triple& t : triples) {
    if (t.property == dbp::kType) has_dbp = true;
    if (t.property == bio::kXGo) has_bio = true;
    if (t.property == btc::kSameAs || t.property == btc::kSeeAlso) {
      has_link = true;
    }
  }
  EXPECT_TRUE(has_dbp);
  EXPECT_TRUE(has_bio);
  EXPECT_TRUE(has_link);
}

// ---- Testbed catalog -----------------------------------------------------------

TEST(TestbedTest, CatalogCoversThePapersQuerySets) {
  std::set<std::string> ids;
  for (const TestbedEntry& entry : TestbedCatalog()) {
    ids.insert(entry.id);
    EXPECT_FALSE(entry.sparql.empty());
    EXPECT_FALSE(entry.description.empty());
  }
  for (const char* id :
       {"Q1a", "Q1b", "Q2a", "Q2b", "Q3a", "Q3b", "B0", "B1", "B2", "B3",
        "B4", "B5", "B6", "B1-3bnd", "B1-4bnd", "B1-5bnd", "B1-6bnd", "A1",
        "A2", "A3", "A4", "A5", "A6", "C1", "C2", "C3", "C4"}) {
    EXPECT_TRUE(ids.count(id)) << "catalog is missing " << id;
  }
}

TEST(TestbedTest, LookupByIdWorks) {
  auto entry = GetTestbedEntry("B3");
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry->dataset, DatasetFamily::kBsbm);
  EXPECT_TRUE(GetTestbedEntry("nope").status().IsNotFound());
  EXPECT_FALSE(GetTestbedQuery("nope").ok());
}

class CatalogQueryTest : public ::testing::TestWithParam<std::string> {};

TEST_P(CatalogQueryTest, ParsesAndIsNonVacuous) {
  auto entry = GetTestbedEntry(GetParam());
  ASSERT_TRUE(entry.ok());
  auto query = GetTestbedQuery(GetParam());
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  EXPECT_EQ((*query)->name(), GetParam());
  std::vector<Triple> triples =
      testing_util::SmallDataset(entry->dataset);
  EXPECT_FALSE(EvaluateQueryInMemory(**query, triples).empty())
      << GetParam() << " must have answers on its dataset";
}

std::vector<std::string> AllIds() {
  std::vector<std::string> ids;
  for (const TestbedEntry& entry : TestbedCatalog()) {
    ids.push_back(entry.id);
  }
  return ids;
}

std::string IdName(const ::testing::TestParamInfo<std::string>& info) {
  std::string name = info.param;
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(Catalog, CatalogQueryTest,
                         ::testing::ValuesIn(AllIds()), IdName);

TEST(TestbedTest, UnboundCountsMatchTheQueryDesign) {
  struct Expect {
    const char* id;
    size_t stars;
    size_t unbound;
  };
  for (const Expect& e : std::vector<Expect>{{"B0", 2, 0},
                                             {"B1", 2, 1},
                                             {"B3", 2, 2},
                                             {"B5", 3, 1},
                                             {"B6", 3, 2},
                                             {"A5", 2, 2},
                                             {"C1", 1, 1},
                                             {"C4", 2, 2}}) {
    auto query = GetTestbedQuery(e.id);
    ASSERT_TRUE(query.ok()) << e.id;
    EXPECT_EQ((*query)->stars().size(), e.stars) << e.id;
    EXPECT_EQ((*query)->NumUnbound(), e.unbound) << e.id;
  }
}

}  // namespace
}  // namespace rdfmr
