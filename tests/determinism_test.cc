// Determinism tests for the multi-threaded MR runtime: every engine must
// produce byte-identical answers and metrics for any thread count (only
// the host wall-clock *_seconds fields may differ). Plus regression tests
// for the three runtime bugfixes that rode along with the parallel
// runtime: map-only output metering, per-map-task combiner scope, and
// demuxed-output cleanup on workflow failure.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "datagen/testbed.h"
#include "dfs/sim_dfs.h"
#include "engine/engine.h"
#include "mapreduce/job_runner.h"
#include "mapreduce/workflow.h"
#include "tests/test_util.h"

namespace rdfmr {
namespace {

// Compares every deterministic field of two JobMetrics; the *_seconds
// wall times are the documented exception.
void ExpectSameJobMetrics(const JobMetrics& a, const JobMetrics& b) {
  EXPECT_EQ(a.job_name, b.job_name);
  EXPECT_EQ(a.input_records, b.input_records);
  EXPECT_EQ(a.input_bytes, b.input_bytes);
  EXPECT_EQ(a.map_output_records, b.map_output_records);
  EXPECT_EQ(a.map_output_bytes, b.map_output_bytes);
  EXPECT_EQ(a.map_direct_output_records, b.map_direct_output_records);
  EXPECT_EQ(a.map_direct_output_bytes, b.map_direct_output_bytes);
  EXPECT_EQ(a.reduce_input_groups, b.reduce_input_groups);
  EXPECT_EQ(a.output_records, b.output_records);
  EXPECT_EQ(a.output_bytes, b.output_bytes);
  EXPECT_EQ(a.output_bytes_replicated, b.output_bytes_replicated);
  EXPECT_EQ(a.full_scans_of_base, b.full_scans_of_base);
  EXPECT_EQ(a.counters, b.counters);
}

// Compares every deterministic field of two ExecStats.
void ExpectSameStats(const ExecStats& a, const ExecStats& b) {
  EXPECT_EQ(a.engine, b.engine);
  EXPECT_EQ(a.query, b.query);
  EXPECT_EQ(a.status.code(), b.status.code());
  EXPECT_EQ(a.failed_job_index, b.failed_job_index);
  EXPECT_EQ(a.mr_cycles, b.mr_cycles);
  EXPECT_EQ(a.planned_cycles, b.planned_cycles);
  EXPECT_EQ(a.full_scans, b.full_scans);
  EXPECT_EQ(a.hdfs_read_bytes, b.hdfs_read_bytes);
  EXPECT_EQ(a.hdfs_write_bytes, b.hdfs_write_bytes);
  EXPECT_EQ(a.hdfs_write_bytes_replicated, b.hdfs_write_bytes_replicated);
  EXPECT_EQ(a.shuffle_bytes, b.shuffle_bytes);
  EXPECT_EQ(a.star_phase_write_bytes, b.star_phase_write_bytes);
  EXPECT_EQ(a.intermediate_write_bytes, b.intermediate_write_bytes);
  EXPECT_EQ(a.final_output_bytes, b.final_output_bytes);
  EXPECT_EQ(a.peak_dfs_used_bytes, b.peak_dfs_used_bytes);
  EXPECT_DOUBLE_EQ(a.redundancy_factor, b.redundancy_factor);
  EXPECT_DOUBLE_EQ(a.final_redundancy_factor, b.final_redundancy_factor);
  EXPECT_DOUBLE_EQ(a.modeled_seconds, b.modeled_seconds);
  EXPECT_EQ(a.counters, b.counters);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (size_t i = 0; i < a.jobs.size(); ++i) {
    ExpectSameJobMetrics(a.jobs[i], b.jobs[i]);
  }
}

Execution RunB1(const std::vector<Triple>& triples, EngineKind kind,
                uint32_t option_threads, uint32_t config_threads) {
  ClusterConfig config = testing_util::RoomyCluster();
  config.num_threads = config_threads;
  auto dfs = testing_util::MakeDfsWithBase(triples, config);
  EXPECT_NE(dfs, nullptr);
  dfs->ResetMetrics();
  auto query = GetTestbedQuery("B1");
  EXPECT_TRUE(query.ok());
  EngineOptions options;
  options.kind = kind;
  options.runtime.num_threads = option_threads;
  auto exec = RunQuery(dfs.get(), "base", *query, options);
  EXPECT_TRUE(exec.ok()) << exec.status().ToString();
  return *exec;
}

TEST(EngineDeterminismTest, ByteIdenticalAcrossThreadCountsAllEngines) {
  std::vector<Triple> triples =
      testing_util::SmallDataset(DatasetFamily::kBsbm);
  for (EngineKind kind : testing_util::AllEngineKinds()) {
    SCOPED_TRACE(EngineKindToString(kind));
    Execution reference = RunB1(triples, kind, /*option_threads=*/1,
                                /*config_threads=*/1);
    EXPECT_FALSE(reference.answers.empty());
    for (uint32_t threads : {2u, 8u}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      Execution run = RunB1(triples, kind, threads, /*config_threads=*/1);
      EXPECT_TRUE(run.answers == reference.answers);
      ExpectSameStats(run.stats, reference.stats);
    }
    // The ClusterConfig knob (EngineOptions::num_threads == 0 defers to
    // it) must behave identically to the EngineOptions knob.
    Execution via_config = RunB1(triples, kind, /*option_threads=*/0,
                                 /*config_threads=*/8);
    EXPECT_TRUE(via_config.answers == reference.answers);
    ExpectSameStats(via_config.stats, reference.stats);
  }
}

// Job-level byte identity: the same reduce job through an explicit pool
// writes the exact same output file and metrics as the sequential path.
TEST(JobDeterminismTest, PooledJobMatchesSequentialByteForByte) {
  ClusterConfig config;
  config.num_nodes = 4;
  config.disk_per_node = 64ULL << 20;
  config.replication = 1;
  config.block_size = 4096;
  config.num_reducers = 3;

  std::vector<std::string> input;
  for (int i = 0; i < 3000; ++i) {
    input.push_back("rec" + std::to_string(i % 97) + " " +
                    std::to_string(i));
  }

  JobSpec spec;
  spec.name = "identity";
  spec.inputs.push_back(MapInput{
      "in", [](const std::string& record, const MapEmit& emit,
               Counters* counters) {
        (*counters)["mapped"] += 1;
        size_t space = record.find(' ');
        emit(record.substr(0, space), record.substr(space + 1));
      }});
  spec.reduce = [](const std::string& key,
                   const std::vector<std::string>& values,
                   const RecordEmit& emit, Counters* counters) {
    (*counters)["reduced"] += 1;
    for (const std::string& v : values) emit(key + "=" + v);
  };
  spec.output_path = "out";

  auto run = [&](ThreadPool* pool) {
    SimDfs dfs(config);
    EXPECT_TRUE(dfs.WriteFile("in", input).ok());
    auto metrics = RunJob(&dfs, spec, pool);
    EXPECT_TRUE(metrics.ok()) << metrics.status().ToString();
    auto lines = dfs.ReadFile("out");
    EXPECT_TRUE(lines.ok());
    return std::make_pair(*metrics, *lines);
  };

  auto [seq_metrics, seq_lines] = run(nullptr);
  EXPECT_GT(seq_metrics.map_output_records, 0u);
  for (uint32_t threads : {2u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ThreadPool pool(threads);
    auto [pooled_metrics, pooled_lines] = run(&pool);
    EXPECT_EQ(pooled_lines, seq_lines);
    ExpectSameJobMetrics(pooled_metrics, seq_metrics);
  }
}

// Regression (map-only metering): a map-only job has no shuffle, so its
// output must land in map_direct_output_*, leaving map_output_* — the
// quantity ExecStats reports as shuffle_bytes and the cost model charges
// shuffle+sort time for — at zero.
TEST(MapOnlyMeteringTest, MapOnlyOutputIsNotShuffleVolume) {
  SimDfs dfs(testing_util::RoomyCluster());
  ASSERT_TRUE(dfs.WriteFile("in", {"aa", "bbb", "cccc"}).ok());

  JobSpec spec;
  spec.name = "map_only";
  spec.inputs.push_back(MapInput{
      "in", [](const std::string& record, const MapEmit& emit, Counters*) {
        emit("ignored_key", record + "!");
      }});
  spec.reduce = nullptr;  // map-only
  spec.output_path = "out";

  auto metrics = RunJob(&dfs, spec, nullptr);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_EQ(metrics->map_output_records, 0u);
  EXPECT_EQ(metrics->map_output_bytes, 0u);
  EXPECT_EQ(metrics->map_direct_output_records, 3u);
  // Bytes as written: value + '!' + newline = (2+2) + (3+2) + (4+2).
  EXPECT_EQ(metrics->map_direct_output_bytes, 15u);
  EXPECT_EQ(metrics->output_records, 3u);
}

// Regression (combiner scope): the combiner runs once per block-sized map
// task, not once per input file. A single key spanning several blocks
// must therefore shuffle one combined record per block task — the seed
// collapsed it to one record per file.
TEST(CombinerScopeTest, CombinerRunsPerBlockTaskNotPerFile) {
  ClusterConfig config = testing_util::RoomyCluster();
  config.block_size = 4096;
  SimDfs dfs(config);

  // Uniform 2-byte lines ("x\n"); enough to span several 4 KiB blocks.
  const size_t kLines = 5000;
  std::vector<std::string> input(kLines, "x");
  ASSERT_TRUE(dfs.WriteFile("in", input).ok());

  // Expected task count: the number of distinct blocks holding a line's
  // first byte (mirrors the runner's split rule).
  uint64_t offset = 0;
  uint64_t expected_tasks = 1;
  uint64_t current_block = 0;
  for (size_t i = 0; i < kLines; ++i) {
    uint64_t block = offset / config.block_size;
    if (block != current_block) {
      ++expected_tasks;
      current_block = block;
    }
    offset += 2;
  }
  ASSERT_GT(expected_tasks, 1u) << "input must span multiple blocks";

  JobSpec spec;
  spec.name = "combine_scope";
  spec.inputs.push_back(MapInput{
      "in", [](const std::string&, const MapEmit& emit, Counters*) {
        emit("k", "v");
      }});
  spec.combine = [](const std::string&,
                    const std::vector<std::string>& values,
                    Counters* counters) {
    (*counters)["combine_calls"] += 1;
    // Dedup combiner: all values are "v", so one survives per scope.
    return std::vector<std::string>{values[0]};
  };
  spec.reduce = [](const std::string& key,
                   const std::vector<std::string>& values,
                   const RecordEmit& emit, Counters*) {
    emit(key + ":" + std::to_string(values.size()));
  };
  spec.output_path = "out";

  auto metrics = RunJob(&dfs, spec, nullptr);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  // One combined record per block task crosses the shuffle (the seed bug
  // produced exactly 1 for the whole file).
  EXPECT_EQ(metrics->map_output_records, expected_tasks);
  EXPECT_EQ(metrics->counters["combine_calls"], expected_tasks);
  EXPECT_EQ(metrics->counters["combine_input_records"], kLines);
  auto lines = dfs.ReadFile("out");
  ASSERT_TRUE(lines.ok());
  ASSERT_EQ(lines->size(), 1u);
  EXPECT_EQ((*lines)[0], "k:" + std::to_string(expected_tasks));
}

// Regression (failure cleanup): a failed workflow must also delete the
// demuxed outputs (`output_path + suffix`) of its completed jobs — they
// are data-dependent paths that intermediate_paths cannot list up front.
TEST(WorkflowCleanupTest, FailedWorkflowDeletesDemuxedOutputs) {
  auto make_spec = []() {
    WorkflowSpec spec;
    spec.name = "leaky";
    JobSpec demux_job;
    demux_job.name = "demux";
    demux_job.inputs.push_back(MapInput{
        "in", [](const std::string& record, const MapEmit& emit, Counters*) {
          emit("unused", record);
        }});
    demux_job.reduce = nullptr;  // map-only
    demux_job.output_path = "tmp/out";
    demux_job.demux = [](const std::string& record) {
      return record.substr(0, 2) == "a|" ? std::string("-a")
                                         : std::string("-b");
    };
    demux_job.ensure_outputs = {"tmp/out-a", "tmp/out-b", "tmp/out-c"};
    spec.jobs.push_back(std::move(demux_job));

    JobSpec failing_job;
    failing_job.name = "fails";
    failing_job.inputs.push_back(MapInput{
        "does_not_exist",
        [](const std::string&, const MapEmit&, Counters*) {}});
    failing_job.reduce = nullptr;
    failing_job.output_path = "final";
    spec.jobs.push_back(std::move(failing_job));

    spec.final_output_path = "final";
    return spec;
  };

  {
    SimDfs dfs(testing_util::RoomyCluster());
    ASSERT_TRUE(dfs.WriteFile("in", {"a|1", "b|2", "a|3"}).ok());
    WorkflowResult result = RunWorkflow(&dfs, make_spec());
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.failed_job_index, 1);
    // Only the original input survives: no tmp/out-a, tmp/out-b, or the
    // ensured-but-empty tmp/out-c leak into the next run.
    EXPECT_EQ(dfs.ListFiles(), std::vector<std::string>{"in"});
  }

  // Callers that scrub their own temporary namespace can opt out and
  // still observe the partial outputs after the failure.
  {
    SimDfs dfs(testing_util::RoomyCluster());
    ASSERT_TRUE(dfs.WriteFile("in", {"a|1", "b|2", "a|3"}).ok());
    WorkflowSpec spec = make_spec();
    spec.cleanup_demuxed_on_failure = false;
    WorkflowResult result = RunWorkflow(&dfs, spec);
    ASSERT_FALSE(result.ok());
    EXPECT_TRUE(dfs.Exists("tmp/out-a"));
    EXPECT_TRUE(dfs.Exists("tmp/out-b"));
    EXPECT_TRUE(dfs.Exists("tmp/out-c"));
  }
}

}  // namespace
}  // namespace rdfmr
