// Model-based property test for the simulated DFS: a random sequence of
// write/read/delete operations is executed against both the SimDfs and a
// trivial in-memory reference model; contents, sizes, existence, and
// aggregate usage must agree after every step, and capacity accounting
// must never leak across failed operations.

#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "common/strings.h"
#include "dfs/sim_dfs.h"
#include "rdf/triple.h"

namespace rdfmr {
namespace {

struct ModelFile {
  std::vector<std::string> lines;
  uint64_t bytes = 0;
};

class DfsModelTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DfsModelTest, RandomOperationSequenceAgreesWithModel) {
  Rng rng(GetParam() * 31 + 5);
  ClusterConfig config;
  config.num_nodes = 3;
  config.disk_per_node = 4096;
  config.replication = 1 + static_cast<uint32_t>(rng.Uniform(2));
  config.block_size = 256;
  SimDfs dfs(config);
  std::map<std::string, ModelFile> model;

  auto random_path = [&]() {
    return StringFormat("f%llu",
                        static_cast<unsigned long long>(rng.Uniform(6)));
  };
  auto random_lines = [&]() {
    std::vector<std::string> lines;
    size_t n = rng.Uniform(20);
    for (size_t i = 0; i < n; ++i) {
      lines.push_back(std::string(1 + rng.Uniform(40), 'a' +
                                  static_cast<char>(rng.Uniform(26))));
    }
    return lines;
  };

  for (int step = 0; step < 200; ++step) {
    switch (rng.Uniform(3)) {
      case 0: {  // write
        std::string path = random_path();
        std::vector<std::string> lines = random_lines();
        uint64_t bytes = 0;
        for (const std::string& l : lines) bytes += l.size() + 1;
        uint64_t used_before = dfs.UsedBytes();
        Status st = dfs.WriteFile(path, lines);
        if (model.count(path) > 0) {
          EXPECT_EQ(st.code(), StatusCode::kAlreadyExists) << path;
          EXPECT_EQ(dfs.UsedBytes(), used_before);
        } else if (st.ok()) {
          model[path] = ModelFile{lines, bytes};
          EXPECT_EQ(dfs.UsedBytes(),
                    used_before + bytes * config.replication);
        } else {
          EXPECT_TRUE(st.IsOutOfSpace()) << st.ToString();
          EXPECT_EQ(dfs.UsedBytes(), used_before)
              << "failed writes must roll back fully";
          EXPECT_FALSE(dfs.Exists(path));
        }
        break;
      }
      case 1: {  // read
        std::string path = random_path();
        auto lines = dfs.ReadFile(path);
        auto it = model.find(path);
        if (it == model.end()) {
          EXPECT_TRUE(lines.status().IsNotFound());
        } else {
          ASSERT_TRUE(lines.ok());
          EXPECT_EQ(*lines, it->second.lines);
          auto size = dfs.FileSize(path);
          ASSERT_TRUE(size.ok());
          EXPECT_EQ(*size, it->second.bytes);
        }
        break;
      }
      case 2: {  // delete
        std::string path = random_path();
        uint64_t used_before = dfs.UsedBytes();
        Status st = dfs.DeleteFile(path);
        auto it = model.find(path);
        if (it == model.end()) {
          EXPECT_TRUE(st.IsNotFound());
        } else {
          ASSERT_TRUE(st.ok());
          EXPECT_EQ(dfs.UsedBytes(),
                    used_before - it->second.bytes * config.replication);
          model.erase(it);
        }
        break;
      }
    }
    // Global invariants after every step.
    uint64_t model_bytes = 0;
    for (const auto& [_, f] : model) model_bytes += f.bytes;
    EXPECT_EQ(dfs.UsedBytes(), model_bytes * config.replication);
    EXPECT_EQ(dfs.ListFiles().size(), model.size());
    uint64_t node_sum = 0;
    for (uint64_t u : dfs.NodeUsage()) {
      EXPECT_LE(u, config.disk_per_node);
      node_sum += u;
    }
    EXPECT_EQ(node_sum, dfs.UsedBytes());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DfsModelTest,
                         ::testing::Range<uint64_t>(0, 12));

// Deserializers must never crash on arbitrary input (fuzz-lite).
TEST(RobustnessTest, DeserializersRejectRandomBytesGracefully) {
  Rng rng(99);
  for (int i = 0; i < 500; ++i) {
    std::string junk;
    size_t n = rng.Uniform(60);
    for (size_t j = 0; j < n; ++j) {
      junk.push_back(static_cast<char>(rng.Uniform(256)));
    }
    (void)Triple::Deserialize(junk);  // must not crash
  }
}

}  // namespace
}  // namespace rdfmr
